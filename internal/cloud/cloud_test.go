package cloud

import (
	"bytes"
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"testing/quick"
)

var ctx = context.Background()

func TestPaperProvidersTable(t *testing.T) {
	specs := PaperProviders()
	if len(specs) != 5 {
		t.Fatalf("got %d providers, want 5", len(specs))
	}
	// Spot-check the Fig. 3 rows.
	byName := map[string]Spec{}
	for _, s := range specs {
		byName[s.Name] = s
	}
	s3h := byName[NameS3High]
	if s3h.Pricing.StorageGBMonth != 0.14 || s3h.Durability != 0.99999999999 {
		t.Errorf("S3(h) row mismatch: %+v", s3h)
	}
	s3l := byName[NameS3Low]
	if s3l.Pricing.StorageGBMonth != 0.093 || s3l.Durability != 0.9999 {
		t.Errorf("S3(l) row mismatch: %+v", s3l)
	}
	rs := byName[NameRackspace]
	if rs.Pricing.OpsPer1000 != 0.0 || rs.Pricing.BandwidthOutGB != 0.18 || rs.Pricing.BandwidthInGB != 0.08 {
		t.Errorf("RS row mismatch: %+v", rs)
	}
	ggl := byName[NameGoogle]
	if ggl.Pricing.StorageGBMonth != 0.17 {
		t.Errorf("Ggl row mismatch: %+v", ggl)
	}
	for _, s := range specs {
		if s.Availability != 0.999 {
			t.Errorf("%s availability = %v, want 0.999", s.Name, s.Availability)
		}
	}
}

func TestZones(t *testing.T) {
	byName := map[string]Spec{}
	for _, s := range PaperProviders() {
		byName[s.Name] = s
	}
	if !byName[NameS3High].HasZone(ZoneEU) || !byName[NameS3High].HasZone(ZoneAPAC) {
		t.Error("S3(h) must serve EU and APAC")
	}
	if byName[NameAzure].HasZone(ZoneEU) {
		t.Error("Azure serves only US in Fig. 3")
	}
	if !byName[NameAzure].ServesAny(nil) {
		t.Error("empty zone request must match any provider")
	}
	if byName[NameAzure].ServesAny([]Zone{ZoneEU}) {
		t.Error("Azure must not match an EU-only request")
	}
	if !byName[NameS3Low].ServesAny([]Zone{ZoneEU, ZoneUS}) {
		t.Error("S3(l) must match EU,US request")
	}
}

func TestCheapStor(t *testing.T) {
	cs := CheapStorProvider()
	if cs.Pricing.StorageGBMonth != 0.09 {
		t.Errorf("CheapStor storage price = %v, want 0.09", cs.Pricing.StorageGBMonth)
	}
}

func TestUsageCost(t *testing.T) {
	p := Pricing{StorageGBMonth: 0.10, BandwidthInGB: 0.05, BandwidthOutGB: 0.20, OpsPer1000: 0.01}
	u := Usage{StorageGBHours: HoursPerMonth * 2, BandwidthInGB: 4, BandwidthOutGB: 3, Ops: 5000}
	want := 2*0.10 + 4*0.05 + 3*0.20 + 5*0.01
	if got := u.Cost(p); math.Abs(got-want) > 1e-12 {
		t.Errorf("Cost = %v, want %v", got, want)
	}
}

func TestUsageAddCommutes(t *testing.T) {
	f := func(a1, a2, b1, b2 float64, o1, o2 int64) bool {
		u1 := Usage{StorageGBHours: a1, BandwidthInGB: a2, Ops: o1}
		u2 := Usage{BandwidthOutGB: b1, BandwidthInGB: b2, Ops: o2}
		x, y := u1, u2
		x.Add(u2)
		y.Add(u1)
		return x == y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBlobStorePutGetDelete(t *testing.T) {
	s := NewBlobStore(PaperProviders()[0])
	if err := s.Put(ctx, "a/b", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(ctx, "a/b")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("payload")) {
		t.Fatalf("Get = %q", got)
	}
	if s.UsedBytes() != 7 {
		t.Fatalf("UsedBytes = %d, want 7", s.UsedBytes())
	}
	if err := s.Delete(ctx, "a/b"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(ctx, "a/b"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("expected ErrNotFound, got %v", err)
	}
	if s.UsedBytes() != 0 {
		t.Fatalf("UsedBytes after delete = %d", s.UsedBytes())
	}
}

func TestBlobStoreOverwriteAccounting(t *testing.T) {
	s := NewBlobStore(Spec{Name: "t"})
	s.Put(ctx, "k", make([]byte, 100))
	s.Put(ctx, "k", make([]byte, 40))
	if s.UsedBytes() != 40 {
		t.Fatalf("UsedBytes = %d, want 40", s.UsedBytes())
	}
	if s.ObjectCount() != 1 {
		t.Fatalf("ObjectCount = %d, want 1", s.ObjectCount())
	}
}

func TestBlobStoreGetIsCopy(t *testing.T) {
	s := NewBlobStore(Spec{Name: "t"})
	s.Put(ctx, "k", []byte{1, 2, 3})
	got, _ := s.Get(ctx, "k")
	got[0] = 99
	again, _ := s.Get(ctx, "k")
	if again[0] != 1 {
		t.Fatal("Get must return a defensive copy")
	}
}

func TestBlobStoreUnavailable(t *testing.T) {
	s := NewBlobStore(Spec{Name: "t"})
	s.Put(ctx, "k", []byte("x"))
	s.SetAvailable(false)
	if _, err := s.Get(ctx, "k"); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("Get during outage: %v", err)
	}
	if err := s.Put(ctx, "k2", nil); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("Put during outage: %v", err)
	}
	if err := s.Delete(ctx, "k"); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("Delete during outage: %v", err)
	}
	if _, err := s.List(ctx, ""); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("List during outage: %v", err)
	}
	s.SetAvailable(true)
	if got, err := s.Get(ctx, "k"); err != nil || string(got) != "x" {
		t.Fatal("data must survive a transient outage")
	}
}

func TestBlobStoreChunkLimit(t *testing.T) {
	s := NewBlobStore(Spec{Name: "t", MaxChunkBytes: 10})
	if err := s.Put(ctx, "big", make([]byte, 11)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("expected ErrTooLarge, got %v", err)
	}
	if err := s.Put(ctx, "ok", make([]byte, 10)); err != nil {
		t.Fatal(err)
	}
}

func TestBlobStoreCapacity(t *testing.T) {
	s := NewBlobStore(Spec{Name: "t", CapacityBytes: 100})
	if err := s.Put(ctx, "a", make([]byte, 60)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(ctx, "b", make([]byte, 60)); !errors.Is(err, ErrOverCapacity) {
		t.Fatalf("expected ErrOverCapacity, got %v", err)
	}
	// Overwriting within capacity must be allowed.
	if err := s.Put(ctx, "a", make([]byte, 90)); err != nil {
		t.Fatal(err)
	}
}

func TestBlobStoreList(t *testing.T) {
	s := NewBlobStore(Spec{Name: "t"})
	s.Put(ctx, "x/1", nil)
	s.Put(ctx, "x/2", nil)
	s.Put(ctx, "y/1", nil)
	keys, err := s.List(ctx, "x/")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 || keys[0] != "x/1" || keys[1] != "x/2" {
		t.Fatalf("List = %v", keys)
	}
}

func TestMetering(t *testing.T) {
	s := NewBlobStore(Spec{Name: "t"})
	s.Put(ctx, "k", make([]byte, 1e6))
	s.Get(ctx, "k")
	s.Get(ctx, "k")
	s.AccrueStorage(2)
	u := s.Meter().Snapshot()
	if u.Ops != 3 {
		t.Errorf("Ops = %d, want 3", u.Ops)
	}
	if math.Abs(u.BandwidthInGB-0.001) > 1e-9 {
		t.Errorf("BandwidthInGB = %v, want 0.001", u.BandwidthInGB)
	}
	if math.Abs(u.BandwidthOutGB-0.002) > 1e-9 {
		t.Errorf("BandwidthOutGB = %v, want 0.002", u.BandwidthOutGB)
	}
	if math.Abs(u.StorageGBHours-0.002) > 1e-9 {
		t.Errorf("StorageGBHours = %v, want 0.002", u.StorageGBHours)
	}
}

func TestMeterReset(t *testing.T) {
	var m Meter
	m.RecordIn(1e9)
	u := m.Reset()
	if u.BandwidthInGB != 1 || u.Ops != 1 {
		t.Fatalf("Reset returned %v", u)
	}
	if after := m.Snapshot(); after != (Usage{}) {
		t.Fatalf("meter not zeroed: %v", after)
	}
}

func TestBlobStoreConcurrent(t *testing.T) {
	s := NewBlobStore(Spec{Name: "t"})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(id byte) {
			defer wg.Done()
			key := string([]byte{'k', id})
			for j := 0; j < 100; j++ {
				if err := s.Put(ctx, key, []byte{id, byte(j)}); err != nil {
					t.Error(err)
					return
				}
				if _, err := s.Get(ctx, key); err != nil {
					t.Error(err)
					return
				}
			}
		}(byte(i))
	}
	wg.Wait()
	if s.ObjectCount() != 8 {
		t.Fatalf("ObjectCount = %d, want 8", s.ObjectCount())
	}
}

func TestRegistryLifecycle(t *testing.T) {
	r := NewPaperRegistry()
	if r.Len() != 5 {
		t.Fatalf("Len = %d, want 5", r.Len())
	}
	r.Register(NewBlobStore(CheapStorProvider()))
	if r.Len() != 6 {
		t.Fatalf("Len after register = %d, want 6", r.Len())
	}
	if _, ok := r.Store(NameCheapStor); !ok {
		t.Fatal("CheapStor not found after Register")
	}
	if _, ok := r.Deregister(NameCheapStor); !ok {
		t.Fatal("Deregister failed")
	}
	if _, ok := r.Store(NameCheapStor); ok {
		t.Fatal("CheapStor still present after Deregister")
	}
}

func TestRegistrySnapshotSorted(t *testing.T) {
	r := NewPaperRegistry()
	snap := r.Snapshot()
	for i := 1; i < len(snap); i++ {
		if snap[i-1].Spec().Name >= snap[i].Spec().Name {
			t.Fatal("Snapshot must be sorted by name")
		}
	}
}

func TestRegistryAvailableSpecs(t *testing.T) {
	r := NewPaperRegistry()
	r.MustStore(NameS3Low).(*BlobStore).SetAvailable(false)
	specs := r.AvailableSpecs()
	if len(specs) != 4 {
		t.Fatalf("AvailableSpecs = %d, want 4", len(specs))
	}
	for _, s := range specs {
		if s.Name == NameS3Low {
			t.Fatal("S3(l) must be excluded while down")
		}
	}
}

func TestRegistryWatch(t *testing.T) {
	r := NewRegistry()
	ch := r.Watch()
	r.Register(NewBlobStore(Spec{Name: "a"}))
	select {
	case <-ch:
	default:
		t.Fatal("expected a watch notification")
	}
	// Coalescing: two rapid changes yield at least one pending signal.
	r.Register(NewBlobStore(Spec{Name: "b"}))
	r.Register(NewBlobStore(Spec{Name: "c"}))
	select {
	case <-ch:
	default:
		t.Fatal("expected a coalesced watch notification")
	}
}

func TestRegistryTotals(t *testing.T) {
	r := NewPaperRegistry()
	r.MustStore(NameS3High).(*BlobStore).Put(ctx, "k", make([]byte, 1e9))
	r.MustStore(NameGoogle).(*BlobStore).Put(ctx, "k", make([]byte, 1e9))
	r.AccrueStorage(HoursPerMonth)
	u := r.TotalUsage()
	if math.Abs(u.StorageGBHours-2*HoursPerMonth) > 1e-6 {
		t.Errorf("StorageGBHours = %v", u.StorageGBHours)
	}
	// 1 GB-month at S3(h)=0.14 + 1 at Ggl=0.17, plus 2 PUTs of 1GB in.
	wantCost := 0.14 + 0.17 + 1*0.1 + 1*0.1 + 2.0/1000*0.01
	if got := r.TotalCost(); math.Abs(got-wantCost) > 1e-9 {
		t.Errorf("TotalCost = %v, want %v", got, wantCost)
	}
}

func TestRegistryEpochBumps(t *testing.T) {
	r := NewPaperRegistry()
	e0 := r.Epoch()
	r.Register(NewBlobStore(CheapStorProvider()))
	e1 := r.Epoch()
	if e1 <= e0 {
		t.Fatalf("Register must bump the epoch: %d -> %d", e0, e1)
	}
	if !r.SetAvailable(NameS3Low, false) {
		t.Fatal("SetAvailable on a registered blob store must succeed")
	}
	e2 := r.Epoch()
	if e2 <= e1 {
		t.Fatalf("SetAvailable must bump the epoch: %d -> %d", e1, e2)
	}
	if _, ok := r.Deregister(NameCheapStor); !ok {
		t.Fatal("Deregister failed")
	}
	if e3 := r.Epoch(); e3 <= e2 {
		t.Fatalf("Deregister must bump the epoch: %d -> %d", e2, e3)
	}
	if r.SetAvailable("nope", false) {
		t.Fatal("SetAvailable on an unknown provider must fail")
	}
}

// TestDirectAvailabilityBumpsEpoch is the regression test for the
// registry back-reference: failure injected directly on a registered
// backend (bypassing Registry.SetAvailable) must still advance the
// market epoch and drop the down provider from the cached Market view —
// otherwise placement planners keep serving searches prepared against a
// market that includes the dead provider.
func TestDirectAvailabilityBumpsEpoch(t *testing.T) {
	r := NewPaperRegistry()
	e0, specs0, _ := r.Market()
	if len(specs0) != 5 {
		t.Fatalf("initial market = %d specs, want 5", len(specs0))
	}

	s, ok := r.Store(NameS3Low)
	if !ok {
		t.Fatal("missing provider")
	}
	s.(*BlobStore).SetAvailable(false) // directly on the backend

	e1, specs1, _ := r.Market()
	if e1 <= e0 {
		t.Fatalf("direct SetAvailable must bump the epoch: %d -> %d", e0, e1)
	}
	if len(specs1) != 4 {
		t.Fatalf("market after direct outage = %d specs, want 4", len(specs1))
	}
	for _, spec := range specs1 {
		if spec.Name == NameS3Low {
			t.Fatal("down provider leaked into the market snapshot")
		}
	}

	// Flipping the same state again is a no-op: no spurious epoch churn.
	s.(*BlobStore).SetAvailable(false)
	if e2 := r.Epoch(); e2 != e1 {
		t.Fatalf("unchanged availability must not move the epoch: %d -> %d", e1, e2)
	}

	// Recovery injected directly also restores the market.
	s.(*BlobStore).SetAvailable(true)
	if e3, specs3, _ := r.Market(); e3 <= e1 || len(specs3) != 5 {
		t.Fatalf("direct recovery: epoch %d -> %d, market %d specs", e1, e3, len(specs3))
	}

	// A deregistered store is detached: flipping it no longer moves the
	// registry's epoch.
	dead, _ := r.Deregister(NameS3Low)
	eAfter := r.Epoch()
	dead.(*BlobStore).SetAvailable(false)
	if got := r.Epoch(); got != eAfter {
		t.Fatalf("detached store bumped the epoch: %d -> %d", eAfter, got)
	}
}

// TestSetPricingBumpsEpoch pins the market price event: a runtime
// pricing change through the registry mutates the spec the market
// snapshot serves, bumps the epoch exactly once, and repeating the same
// price sheet is a no-op.
func TestSetPricingBumpsEpoch(t *testing.T) {
	r := NewPaperRegistry()
	e0 := r.Epoch()

	newPrices := Pricing{StorageGBMonth: 0.5, BandwidthInGB: 0.1, BandwidthOutGB: 0.3, OpsPer1000: 0.02}
	if !r.SetPricing(NameAzure, newPrices) {
		t.Fatal("SetPricing on a known BlobStore provider must succeed")
	}
	e1, specs, _ := r.Market()
	if e1 <= e0 {
		t.Fatalf("pricing change must bump the epoch: %d -> %d", e0, e1)
	}
	found := false
	for _, spec := range specs {
		if spec.Name == NameAzure {
			found = true
			if spec.Pricing != newPrices {
				t.Fatalf("market snapshot serves stale pricing: %+v", spec.Pricing)
			}
		}
	}
	if !found {
		t.Fatal("provider missing from market snapshot")
	}

	// Re-applying the identical sheet must not churn the epoch.
	r.SetPricing(NameAzure, newPrices)
	if e2 := r.Epoch(); e2 != e1 {
		t.Fatalf("unchanged pricing must not move the epoch: %d -> %d", e1, e2)
	}

	if r.SetPricing("nope", newPrices) {
		t.Fatal("SetPricing on an unknown provider must report false")
	}
}

func TestRegistryMarketCachesSnapshot(t *testing.T) {
	r := NewPaperRegistry()
	e1, specs1, free1 := r.Market()
	e2, specs2, _ := r.Market()
	if e1 != e2 {
		t.Fatalf("epoch changed without a market event: %d -> %d", e1, e2)
	}
	if len(specs1) != 5 || len(specs2) != 5 {
		t.Fatalf("market sizes = %d, %d, want 5", len(specs1), len(specs2))
	}
	if &specs1[0] != &specs2[0] {
		t.Fatal("unchanged epoch must reuse the cached specs slice")
	}
	if free1 != nil {
		t.Fatalf("paper market has no capacity-bounded providers, free = %v", free1)
	}

	r.SetAvailable(NameS3Low, false)
	e3, specs3, _ := r.Market()
	if e3 == e2 {
		t.Fatal("outage through the registry must move the epoch")
	}
	if len(specs3) != 4 {
		t.Fatalf("market after outage = %d specs, want 4", len(specs3))
	}
	for _, s := range specs3 {
		if s.Name == NameS3Low {
			t.Fatal("down provider leaked into the market snapshot")
		}
	}
}

func TestRegistryMarketFreeCapacity(t *testing.T) {
	r := NewRegistry()
	r.Register(NewBlobStore(Spec{Name: "pub", Durability: 0.999999, Availability: 0.999}))
	capped := NewBlobStore(Spec{Name: "priv", Durability: 0.999999, Availability: 0.999,
		CapacityBytes: 1000, Private: true})
	r.Register(capped)
	if err := capped.Put(ctx, "k", make([]byte, 400)); err != nil {
		t.Fatal(err)
	}
	_, _, free := r.Market()
	if free == nil {
		t.Fatal("capacity-bounded provider must appear in the free map")
	}
	if got := free["priv"]; got != 600 {
		t.Fatalf("free[priv] = %d, want 600", got)
	}
	if _, ok := free["pub"]; ok {
		t.Fatal("uncapped provider must not appear in the free map")
	}
}
