package engine

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func newAPIServer(t *testing.T) (*Broker, *httptest.Server) {
	t.Helper()
	b := NewBroker(Config{})
	t.Cleanup(b.Close)
	ts := httptest.NewServer(NewAPI(b.Engine(0)))
	t.Cleanup(ts.Close)
	return b, ts
}

func TestHTTPPutGetDeleteList(t *testing.T) {
	_, ts := newAPIServer(t)
	client := ts.Client()

	// PUT
	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/docs/hello.txt",
		bytes.NewReader([]byte("hello scalia")))
	req.Header.Set("Content-Type", "text/plain")
	req.Header.Set("X-Scalia-TTL-Hours", "24")
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("PUT status = %d", resp.StatusCode)
	}
	if resp.Header.Get("X-Scalia-M") == "" || resp.Header.Get("X-Scalia-Providers") == "" {
		t.Fatal("placement headers missing")
	}

	// GET
	resp, err = client.Get(ts.URL + "/docs/hello.txt")
	if err != nil {
		t.Fatal(err)
	}
	body := new(bytes.Buffer)
	body.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || body.String() != "hello scalia" {
		t.Fatalf("GET = %d %q", resp.StatusCode, body.String())
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain" {
		t.Fatalf("Content-Type = %q", ct)
	}

	// HEAD
	resp, err = client.Head(ts.URL + "/docs/hello.txt")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get("ETag") == "" {
		t.Fatalf("HEAD = %d", resp.StatusCode)
	}

	// LIST
	resp, err = client.Get(ts.URL + "/docs")
	if err != nil {
		t.Fatal(err)
	}
	var keys []string
	json.NewDecoder(resp.Body).Decode(&keys)
	resp.Body.Close()
	if len(keys) != 1 || keys[0] != "hello.txt" {
		t.Fatalf("LIST = %v", keys)
	}

	// DELETE
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/docs/hello.txt", nil)
	resp, err = client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE status = %d", resp.StatusCode)
	}
	resp, _ = client.Get(ts.URL + "/docs/hello.txt")
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET after delete = %d", resp.StatusCode)
	}
}

func TestHTTPErrors(t *testing.T) {
	_, ts := newAPIServer(t)
	client := ts.Client()

	resp, _ := client.Get(ts.URL + "/")
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty container = %d", resp.StatusCode)
	}

	resp, _ = client.Get(ts.URL + "/docs/missing")
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing object = %d", resp.StatusCode)
	}

	req, _ := http.NewRequest(http.MethodPatch, ts.URL+"/docs/x", nil)
	resp, _ = client.Do(req)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("PATCH = %d", resp.StatusCode)
	}

	// Empty LIST must return a JSON array, not null.
	resp, _ = client.Get(ts.URL + "/empty")
	body := new(bytes.Buffer)
	body.ReadFrom(resp.Body)
	resp.Body.Close()
	if got := strings.TrimSpace(body.String()); got != "[]" {
		t.Fatalf("empty list body = %q", got)
	}
}

func TestHTTPOversizedUpload(t *testing.T) {
	b := NewBroker(Config{})
	t.Cleanup(b.Close)
	api := NewAPI(b.Engine(0))
	api.MaxObjectBytes = 10
	ts := httptest.NewServer(api)
	t.Cleanup(ts.Close)

	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/c/k",
		bytes.NewReader(make([]byte, 11)))
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized PUT = %d", resp.StatusCode)
	}
}

func TestHTTPServiceUnavailableDuringOutage(t *testing.T) {
	b, ts := newAPIServer(t)
	client := ts.Client()
	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/c/k",
		bytes.NewReader(make([]byte, 1000)))
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	meta, err := b.Engine(0).Head("c", "k")
	if err != nil {
		t.Fatal(err)
	}
	// Down enough providers that the object cannot be reconstructed.
	for i, name := range meta.Chunks {
		if i >= len(meta.Chunks)-meta.M+1 {
			break
		}
		blob(t, b, name).SetAvailable(false)
	}
	resp, _ = client.Get(ts.URL + "/c/k")
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("GET during blackout = %d, want 503", resp.StatusCode)
	}
}
