package erasure

import (
	"bytes"
	"errors"
	"fmt"
	"sync/atomic"
)

// Coder is a systematic (m,n) Reed–Solomon erasure coder: Encode splits
// data into m data chunks and n-m parity chunks; any m of the n chunks
// reconstruct the data. The rate r = m/n is the storage efficiency and the
// space overhead factor is 1/r, matching the paper's §II-A definitions.
//
// A Coder is immutable after construction and safe for concurrent use.
type Coder struct {
	m, n int
	// enc is the n x m systematic generator matrix: the top m rows are the
	// identity, so the first m chunks are the raw data stripes.
	enc matrix
}

// Common parameter errors.
var (
	ErrInvalidParams = errors.New("erasure: require 1 <= m <= n <= 256")
	ErrTooFewChunks  = errors.New("erasure: fewer than m chunks available")
	ErrChunkCount    = errors.New("erasure: wrong number of chunks")
	ErrChunkSize     = errors.New("erasure: chunks have inconsistent sizes")
	ErrShortData     = errors.New("erasure: data shorter than declared size")
)

// New returns an (m,n) coder. m is the reconstruction threshold (the
// paper's m / Algorithm 2 output); n is the total number of chunks, one
// per selected provider.
func New(m, n int) (*Coder, error) {
	if m < 1 || n < m || n > fieldSize {
		return nil, fmt.Errorf("%w: m=%d n=%d", ErrInvalidParams, m, n)
	}
	// Build the systematic generator: take the n x m Vandermonde matrix and
	// normalize its top m x m block to the identity by multiplying with the
	// block's inverse. Every m-row subset of the result stays invertible.
	v := vandermonde(n, m)
	top := v.subMatrix(0, 0, m, m)
	topInv, err := top.invert()
	if err != nil {
		// Vandermonde top blocks are always invertible; this is unreachable
		// for valid parameters.
		return nil, err
	}
	return &Coder{m: m, n: n, enc: v.mul(topInv)}, nil
}

// M returns the reconstruction threshold.
func (c *Coder) M() int { return c.m }

// N returns the total chunk count.
func (c *Coder) N() int { return c.n }

// Rate returns the code rate m/n.
func (c *Coder) Rate() float64 { return float64(c.m) / float64(c.n) }

// Overhead returns the storage expansion factor n/m (the paper's 1/r).
func (c *Coder) Overhead() float64 { return float64(c.n) / float64(c.m) }

// ChunkSize returns the nominal per-chunk size for an object of dataLen
// bytes: ceil(dataLen/m). Note ChunkSize(0) == 0, but Encode never
// emits empty chunks — zero-length objects are encoded as one zero
// byte per chunk so providers never store empty blobs. Metadata and
// chunk-key accounting that needs the size of the chunks actually
// written must use EncodedChunkSize.
func (c *Coder) ChunkSize(dataLen int) int {
	return (dataLen + c.m - 1) / c.m
}

// EncodedChunkSize returns the size of the chunks Encode actually
// produces for an object of dataLen bytes: max(1, ChunkSize(dataLen)).
// This makes the zero-length-object invariant explicit at the API:
// an empty object still occupies n chunks of one zero byte each, and
// Decode(chunks, 0) returns the empty object regardless.
func (c *Coder) EncodedChunkSize(dataLen int) int {
	if dataLen == 0 {
		return 1
	}
	return c.ChunkSize(dataLen)
}

// Encode splits data into n chunks of equal size ceil(len(data)/m).
// The data is padded with zeros to a multiple of the chunk size; callers
// must remember the original length (Scalia stores it in object metadata)
// and pass it to Decode.
func (c *Coder) Encode(data []byte) ([][]byte, error) {
	return c.encode(data, nil, nil)
}

// encode is the shared core of Encode and EncodePooled: backing and
// chunks are reused when their capacity suffices (their contents may be
// arbitrary — every byte of the output is written below) and replaced
// with fresh allocations otherwise.
func (c *Coder) encode(data, backing []byte, chunks [][]byte) ([][]byte, error) {
	size := c.EncodedChunkSize(len(data))
	if need := c.n * size; cap(backing) < need {
		backing = make([]byte, need)
	} else {
		backing = backing[:need]
	}
	if cap(chunks) < c.n {
		chunks = make([][]byte, c.n)
	} else {
		chunks = chunks[:c.n]
	}
	for i := range chunks {
		chunks[i] = backing[i*size : (i+1)*size]
	}
	// Data stripes: rows 0..m-1 are plain copies (systematic code). The
	// tail past len(data) is the zero padding — cleared explicitly since
	// pooled backing arrives dirty.
	for i := 0; i < c.m; i++ {
		var n int
		if lo := i * size; lo < len(data) {
			hi := lo + size
			if hi > len(data) {
				hi = len(data)
			}
			n = copy(chunks[i], data[lo:hi])
		}
		clear(chunks[i][n:])
	}
	// Parity stripes: rows m..n-1 are linear combinations of the data
	// rows, computed with the table-driven kernels and fanned out
	// across cores for large stripes (each worker does all parity rows
	// for its span, so data spans are read while cache-hot). The first
	// term assigns rather than accumulates, so parity rows of dirty
	// pooled backing need no pre-zeroing either.
	jb := getJobs()
	parity := *jb
	for r := c.m; r < c.n; r++ {
		parity = append(parity, rsJob{row: c.enc.row(r), in: chunks[:c.m], out: chunks[r]})
	}
	runJobs(parity, size)
	*jb = parity
	putJobs(jb)
	return chunks, nil
}

// Reconstruct fills in missing (nil) chunks in place. chunks must have
// length n; at least m entries must be non-nil and of equal size.
func (c *Coder) Reconstruct(chunks [][]byte) error {
	if len(chunks) != c.n {
		return fmt.Errorf("%w: got %d want %d", ErrChunkCount, len(chunks), c.n)
	}
	size := -1
	present := 0
	for _, ch := range chunks {
		if ch == nil {
			continue
		}
		present++
		if size < 0 {
			size = len(ch)
		} else if len(ch) != size {
			return ErrChunkSize
		}
	}
	if present < c.m {
		return fmt.Errorf("%w: have %d need %d", ErrTooFewChunks, present, c.m)
	}
	if present == c.n {
		return nil // nothing missing
	}
	// One backing allocation serves every missing chunk. It is a plain
	// allocation, not pooled scratch: ownership of the reconstructed
	// chunks passes to the caller through the chunks slice, so the
	// memory can never be recycled from here.
	missing := c.n - present
	backing := make([]byte, missing*size)
	nextOut := func() []byte {
		out := backing[:size:size]
		backing = backing[size:]
		return out
	}

	// Fast path: all m data chunks survived (parity-only loss). The
	// decode sub-matrix would be the identity — generator rows 0..m-1
	// are the identity block of the systematic code — so skip the
	// O(m^3) inversion and regenerate parity straight from the data.
	dataIntact := true
	for i := 0; i < c.m; i++ {
		if chunks[i] == nil {
			dataIntact = false
			break
		}
	}
	sc := reconScratchPool.Get().(*reconScratch)
	defer sc.release()
	if !dataIntact {
		// Build the m x m decode matrix from the generator rows of m
		// surviving chunks, invert it, and recover the data stripes.
		if cap(sc.matData) < c.m*c.m {
			sc.matData = make([]byte, c.m*c.m)
		}
		sub := matrix{rows: c.m, cols: c.m, data: sc.matData[:c.m*c.m]}
		if cap(sc.chunkRefs) < c.m {
			sc.chunkRefs = make([][]byte, c.m)
		}
		subChunks := sc.chunkRefs[:c.m]
		got := 0
		for i := 0; i < c.n && got < c.m; i++ {
			if chunks[i] != nil {
				copy(sub.row(got), c.enc.row(i))
				subChunks[got] = chunks[i]
				got++
			}
		}
		dec, err := sub.invert()
		if err != nil {
			return err
		}
		jobs := sc.jobs[:0]
		for i := 0; i < c.m; i++ {
			if chunks[i] == nil {
				jobs = append(jobs, rsJob{row: dec.row(i), in: subChunks, out: nextOut()})
			}
		}
		runJobs(jobs, size)
		ji := 0
		for i := 0; i < c.m; i++ {
			if chunks[i] == nil {
				chunks[i] = jobs[ji].out
				ji++
			}
		}
		sc.jobs, sc.chunkRefs = jobs, subChunks
	}
	// Regenerate any missing parity stripes from the (now complete)
	// data stripes.
	jobs := sc.jobs[:0]
	for r := c.m; r < c.n; r++ {
		if chunks[r] == nil {
			jobs = append(jobs, rsJob{row: c.enc.row(r), in: chunks[:c.m], out: nextOut()})
		}
	}
	runJobs(jobs, size)
	ji := 0
	for r := c.m; r < c.n; r++ {
		if chunks[r] == nil {
			chunks[r] = jobs[ji].out
			ji++
		}
	}
	sc.jobs = jobs
	return nil
}

// Decode reconstructs missing chunks if needed and reassembles the
// original object of length size.
func (c *Coder) Decode(chunks [][]byte, size int) ([]byte, error) {
	if err := c.Reconstruct(chunks); err != nil {
		return nil, err
	}
	chunkSize := len(chunks[0])
	if c.m*chunkSize < size {
		return nil, fmt.Errorf("%w: chunks hold %d bytes, need %d",
			ErrShortData, c.m*chunkSize, size)
	}
	out := make([]byte, size)
	done := 0
	for i := 0; i < c.m && done < size; i++ {
		done += copy(out[done:], chunks[i])
	}
	return out, nil
}

// Verify checks that the parity chunks are consistent with the data
// chunks. All n chunks must be present.
func (c *Coder) Verify(chunks [][]byte) (bool, error) {
	if len(chunks) != c.n {
		return false, fmt.Errorf("%w: got %d want %d", ErrChunkCount, len(chunks), c.n)
	}
	size := len(chunks[0])
	for _, ch := range chunks {
		if ch == nil {
			return false, ErrTooFewChunks
		}
		if len(ch) != size {
			return false, ErrChunkSize
		}
	}
	// Each span worker recomputes every parity row for its span into a
	// pooled scratch buffer (the first kernel term assigns, so the
	// recycled buffer needs no clearing) and compares against the
	// stored parity. A mismatch flips the shared verdict and later
	// spans short-circuit; workers already running finish their row.
	var bad atomic.Bool
	forEachSpan(size, func(lo, hi int) {
		if bad.Load() {
			return
		}
		buf := getScratch(hi - lo)
		defer putScratch(buf)
		for r := c.m; r < c.n; r++ {
			kernRow(c.enc.row(r), chunks[:c.m], lo, hi, *buf)
			if !bytes.Equal(*buf, chunks[r][lo:hi]) {
				bad.Store(true)
				return
			}
		}
	})
	return !bad.Load(), nil
}
