package cloud

import (
	"fmt"
	"sync"
)

// Usage is a snapshot of billed resources over some interval, in the four
// dimensions the paper prices: stored volume (GB-hours), bandwidth in/out
// (GB) and operation count.
type Usage struct {
	StorageGBHours float64 `json:"storageGBHours"`
	BandwidthInGB  float64 `json:"bandwidthInGB"`
	BandwidthOutGB float64 `json:"bandwidthOutGB"`
	Ops            int64   `json:"ops"`
}

// Add accumulates other into u.
func (u *Usage) Add(other Usage) {
	u.StorageGBHours += other.StorageGBHours
	u.BandwidthInGB += other.BandwidthInGB
	u.BandwidthOutGB += other.BandwidthOutGB
	u.Ops += other.Ops
}

// Cost prices the usage with the given price sheet, in USD.
func (u Usage) Cost(p Pricing) float64 {
	return u.StorageGBHours/HoursPerMonth*p.StorageGBMonth +
		u.BandwidthInGB*p.BandwidthInGB +
		u.BandwidthOutGB*p.BandwidthOutGB +
		float64(u.Ops)/1000.0*p.OpsPer1000
}

// String implements fmt.Stringer.
func (u Usage) String() string {
	return fmt.Sprintf("storage=%.6fGBh in=%.6fGB out=%.6fGB ops=%d",
		u.StorageGBHours, u.BandwidthInGB, u.BandwidthOutGB, u.Ops)
}

// GB converts a byte count to gigabytes (10^9 bytes, the unit cloud
// providers bill in).
func GB(bytes int64) float64 { return float64(bytes) / 1e9 }

// Meter accumulates billable usage for one provider. It is safe for
// concurrent use.
type Meter struct {
	mu    sync.Mutex
	total Usage
}

// RecordIn meters an inbound transfer of n bytes plus one operation.
func (m *Meter) RecordIn(n int64) {
	m.mu.Lock()
	m.total.BandwidthInGB += GB(n)
	m.total.Ops++
	m.mu.Unlock()
}

// RecordOut meters an outbound transfer of n bytes plus one operation.
func (m *Meter) RecordOut(n int64) {
	m.mu.Lock()
	m.total.BandwidthOutGB += GB(n)
	m.total.Ops++
	m.mu.Unlock()
}

// RecordOp meters a bandwidth-free operation (delete, list).
func (m *Meter) RecordOp() {
	m.mu.Lock()
	m.total.Ops++
	m.mu.Unlock()
}

// AccrueStorage meters storedBytes held for the given number of hours.
// The simulator calls this once per sampling period.
func (m *Meter) AccrueStorage(storedBytes int64, hours float64) {
	m.mu.Lock()
	m.total.StorageGBHours += GB(storedBytes) * hours
	m.mu.Unlock()
}

// Snapshot returns the accumulated usage so far.
func (m *Meter) Snapshot() Usage {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.total
}

// Reset zeroes the meter and returns the usage accumulated until now.
func (m *Meter) Reset() Usage {
	m.mu.Lock()
	defer m.mu.Unlock()
	u := m.total
	m.total = Usage{}
	return u
}
