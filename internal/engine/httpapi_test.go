package engine

import (
	"bytes"
	"context"
	"crypto/md5"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"mime"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"scalia/internal/cloud"
	"scalia/internal/core"
)

func newGatewayServer(t *testing.T, cfg Config) (*Broker, *httptest.Server) {
	t.Helper()
	b := NewBroker(cfg)
	t.Cleanup(b.Close)
	ts := httptest.NewServer(NewGateway(b))
	t.Cleanup(ts.Close)
	return b, ts
}

func doReq(t *testing.T, client *http.Client, method, url string, body []byte, hdr map[string]string) *http.Response {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// errCode decodes the typed JSON error envelope.
func errCode(t *testing.T, resp *http.Response) string {
	t.Helper()
	var env map[string]APIError
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("malformed error body: %v", err)
	}
	return env["error"].Code
}

func TestGatewayPutGetHeadDeleteList(t *testing.T) {
	_, ts := newGatewayServer(t, Config{})
	client := ts.Client()

	resp := doReq(t, client, http.MethodPut, ts.URL+"/v1/objects/docs/hello.txt",
		[]byte("hello scalia"), map[string]string{
			"Content-Type": "text/plain", "X-Scalia-TTL-Hours": "24",
		})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("PUT status = %d", resp.StatusCode)
	}
	var meta ObjectMeta
	if err := json.NewDecoder(resp.Body).Decode(&meta); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if meta.Size != 12 || meta.M < 1 || len(meta.Chunks) < meta.M {
		t.Fatalf("PUT meta = %+v", meta)
	}
	if resp.Header.Get("ETag") == "" || resp.Header.Get("X-Scalia-Providers") == "" {
		t.Fatal("placement headers missing")
	}

	resp = doReq(t, client, http.MethodGet, ts.URL+"/v1/objects/docs/hello.txt", nil, nil)
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "hello scalia" {
		t.Fatalf("GET = %d %q", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain" {
		t.Fatalf("Content-Type = %q", ct)
	}
	if cl := resp.Header.Get("Content-Length"); cl != "12" {
		t.Fatalf("Content-Length = %q", cl)
	}

	resp = doReq(t, client, http.MethodHead, ts.URL+"/v1/objects/docs/hello.txt", nil, nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get("ETag") == "" {
		t.Fatalf("HEAD = %d", resp.StatusCode)
	}

	resp = doReq(t, client, http.MethodGet, ts.URL+"/v1/objects/docs", nil, nil)
	var list ListResult
	json.NewDecoder(resp.Body).Decode(&list)
	resp.Body.Close()
	if len(list.Keys) != 1 || list.Keys[0] != "hello.txt" || list.Truncated {
		t.Fatalf("LIST = %+v", list)
	}

	resp = doReq(t, client, http.MethodDelete, ts.URL+"/v1/objects/docs/hello.txt", nil, nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE status = %d", resp.StatusCode)
	}
	resp = doReq(t, client, http.MethodGet, ts.URL+"/v1/objects/docs/hello.txt", nil, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET after delete = %d", resp.StatusCode)
	}
	if code := errCode(t, resp); code != "not_found" {
		t.Fatalf("error code = %q, want not_found", code)
	}
	resp.Body.Close()
}

// TestGatewayStreamsMultiStripeObject proves the acceptance criterion:
// a multi-chunk, multi-stripe object round-trips through the gateway
// with the body split into stripes on the serving path, and every
// stripe is parity-consistent at the providers.
func TestGatewayStreamsMultiStripeObject(t *testing.T) {
	b, ts := newGatewayServer(t, Config{StripeBytes: 1024})
	client := ts.Client()

	payload := make([]byte, 10*1024+137) // 11 stripes, last one partial
	rand.New(rand.NewSource(42)).Read(payload)

	resp := doReq(t, client, http.MethodPut, ts.URL+"/v1/objects/big/blob",
		payload, map[string]string{"Content-Type": "application/octet-stream"})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("PUT status = %d", resp.StatusCode)
	}
	var meta ObjectMeta
	json.NewDecoder(resp.Body).Decode(&meta)
	resp.Body.Close()
	if meta.Stripes != 11 {
		t.Fatalf("Stripes = %d, want 11", meta.Stripes)
	}
	wantSum := md5.Sum(payload)
	if meta.Checksum != hex.EncodeToString(wantSum[:]) {
		t.Fatal("streamed checksum mismatch")
	}

	resp = doReq(t, client, http.MethodGet, ts.URL+"/v1/objects/big/blob", nil, nil)
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Equal(got, payload) {
		t.Fatalf("GET = %d, %d bytes (want %d)", resp.StatusCode, len(got), len(payload))
	}

	// Every stripe must verify against its parity at the providers.
	if _, err := b.Engine(0).VerifyObject(context.Background(), "big", "blob"); err != nil {
		t.Fatalf("VerifyObject: %v", err)
	}

	// Deleting must clear all stripes' chunks everywhere.
	resp = doReq(t, client, http.MethodDelete, ts.URL+"/v1/objects/big/blob", nil, nil)
	resp.Body.Close()
	for _, s := range b.Registry().Snapshot() {
		if bs, ok := s.(*cloud.BlobStore); ok && bs.ObjectCount() != 0 {
			t.Fatalf("%s still holds %d chunks after delete", bs.Spec().Name, bs.ObjectCount())
		}
	}
}

func TestGatewayConditionalRequests(t *testing.T) {
	_, ts := newGatewayServer(t, Config{})
	client := ts.Client()

	resp := doReq(t, client, http.MethodPut, ts.URL+"/v1/objects/c/k", []byte("v1"), nil)
	etag := resp.Header.Get("ETag")
	resp.Body.Close()
	if etag == "" {
		t.Fatal("no ETag on PUT")
	}

	// Conditional GET with the current ETag -> 304, no body.
	resp = doReq(t, client, http.MethodGet, ts.URL+"/v1/objects/c/k", nil,
		map[string]string{"If-None-Match": etag})
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified || len(body) != 0 {
		t.Fatalf("conditional GET = %d, %d body bytes", resp.StatusCode, len(body))
	}

	// Stale ETag -> full 200.
	resp = doReq(t, client, http.MethodGet, ts.URL+"/v1/objects/c/k", nil,
		map[string]string{"If-None-Match": `"deadbeef"`})
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stale conditional GET = %d", resp.StatusCode)
	}

	// PUT with wrong If-Match -> 412; with right If-Match -> 201.
	resp = doReq(t, client, http.MethodPut, ts.URL+"/v1/objects/c/k", []byte("v2"),
		map[string]string{"If-Match": `"deadbeef"`})
	if resp.StatusCode != http.StatusPreconditionFailed {
		t.Fatalf("PUT wrong If-Match = %d", resp.StatusCode)
	}
	if code := errCode(t, resp); code != "precondition_failed" {
		t.Fatalf("error code = %q", code)
	}
	resp.Body.Close()
	resp = doReq(t, client, http.MethodPut, ts.URL+"/v1/objects/c/k", []byte("v2"),
		map[string]string{"If-Match": etag})
	etag2 := resp.Header.Get("ETag")
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || etag2 == etag {
		t.Fatalf("PUT right If-Match = %d, etag %q", resp.StatusCode, etag2)
	}

	// If-None-Match: * refuses to overwrite an existing object.
	resp = doReq(t, client, http.MethodPut, ts.URL+"/v1/objects/c/k", []byte("v3"),
		map[string]string{"If-None-Match": "*"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusPreconditionFailed {
		t.Fatalf("create-only PUT over existing = %d", resp.StatusCode)
	}

	// DELETE with wrong If-Match -> 412, object survives.
	resp = doReq(t, client, http.MethodDelete, ts.URL+"/v1/objects/c/k", nil,
		map[string]string{"If-Match": etag})
	resp.Body.Close()
	if resp.StatusCode != http.StatusPreconditionFailed {
		t.Fatalf("DELETE stale If-Match = %d", resp.StatusCode)
	}
	resp = doReq(t, client, http.MethodDelete, ts.URL+"/v1/objects/c/k", nil,
		map[string]string{"If-Match": etag2})
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE right If-Match = %d", resp.StatusCode)
	}
}

func TestGatewayListPagination(t *testing.T) {
	_, ts := newGatewayServer(t, Config{})
	client := ts.Client()
	for _, k := range []string{"a1", "a2", "a3", "b1", "b2"} {
		resp := doReq(t, client, http.MethodPut, ts.URL+"/v1/objects/c/"+k, []byte("x"), nil)
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("PUT %s = %d", k, resp.StatusCode)
		}
	}

	var page ListResult
	resp := doReq(t, client, http.MethodGet, ts.URL+"/v1/objects/c?prefix=a&limit=2", nil, nil)
	json.NewDecoder(resp.Body).Decode(&page)
	resp.Body.Close()
	if !page.Truncated || page.Next != "a2" || strings.Join(page.Keys, ",") != "a1,a2" {
		t.Fatalf("page 1 = %+v", page)
	}

	resp = doReq(t, client, http.MethodGet, ts.URL+"/v1/objects/c?prefix=a&limit=2&after="+page.Next, nil, nil)
	page = ListResult{}
	json.NewDecoder(resp.Body).Decode(&page)
	resp.Body.Close()
	if page.Truncated || strings.Join(page.Keys, ",") != "a3" {
		t.Fatalf("page 2 = %+v", page)
	}

	// Bad limit -> typed 400.
	resp = doReq(t, client, http.MethodGet, ts.URL+"/v1/objects/c?limit=0", nil, nil)
	if resp.StatusCode != http.StatusBadRequest || errCode(t, resp) != "invalid_argument" {
		t.Fatalf("limit=0 = %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Empty container -> empty JSON array, not null.
	resp = doReq(t, client, http.MethodGet, ts.URL+"/v1/objects/empty", nil, nil)
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(raw), `"keys":[]`) {
		t.Fatalf("empty list body = %s", raw)
	}
}

func TestGatewayTypedErrors(t *testing.T) {
	b, ts := newGatewayServer(t, Config{})
	client := ts.Client()

	// Rule-validation failure -> 400 invalid_rule.
	bad, _ := json.Marshal(core.Rule{Name: "bad", LockIn: 2})
	resp := doReq(t, client, http.MethodPut, ts.URL+"/v1/rules/c", bad, nil)
	if resp.StatusCode != http.StatusBadRequest || errCode(t, resp) != "invalid_rule" {
		t.Fatalf("bad rule = %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Infeasible placement -> 422: APAC-only with two distinct providers,
	// but only the two S3 profiles serve APAC and lock-in 0.3 needs four.
	infeasible, _ := json.Marshal(core.Rule{
		Name: "apac", Durability: 0.9999, Availability: 0.99,
		Zones: []cloud.Zone{cloud.ZoneAPAC}, LockIn: 0.25,
	})
	resp = doReq(t, client, http.MethodPut, ts.URL+"/v1/rules/apac", infeasible, nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("feasible-shaped rule rejected: %d", resp.StatusCode)
	}
	resp = doReq(t, client, http.MethodPut, ts.URL+"/v1/objects/apac/k", []byte("x"), nil)
	if resp.StatusCode != http.StatusUnprocessableEntity || errCode(t, resp) != "infeasible_placement" {
		t.Fatalf("infeasible PUT = %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Outage beyond the erasure threshold -> 503 unavailable.
	resp = doReq(t, client, http.MethodPut, ts.URL+"/v1/objects/c/k", make([]byte, 1000), nil)
	resp.Body.Close()
	meta, err := b.Engine(0).Head(context.Background(), "c", "k")
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range meta.Chunks {
		if i >= len(meta.Chunks)-meta.M+1 {
			break
		}
		s, _ := b.Registry().Store(name)
		s.(*cloud.BlobStore).SetAvailable(false)
	}
	resp = doReq(t, client, http.MethodGet, ts.URL+"/v1/objects/c/k", nil, nil)
	if resp.StatusCode != http.StatusServiceUnavailable || errCode(t, resp) != "unavailable" {
		t.Fatalf("GET during blackout = %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()

	// Missing Content-Length -> 411.
	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/v1/objects/c/chunked", nil)
	pr, pw := io.Pipe()
	req.Body = pr
	req.ContentLength = -1
	go func() { pw.Write([]byte("data")); pw.Close() }()
	lresp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	lresp.Body.Close()
	if lresp.StatusCode != http.StatusLengthRequired {
		t.Fatalf("chunked PUT = %d, want 411", lresp.StatusCode)
	}
}

func TestGatewayOversizedUpload(t *testing.T) {
	b := NewBroker(Config{})
	t.Cleanup(b.Close)
	g := NewGateway(b)
	g.MaxObjectBytes = 10
	ts := httptest.NewServer(g)
	t.Cleanup(ts.Close)

	resp := doReq(t, ts.Client(), http.MethodPut, ts.URL+"/v1/objects/c/k", make([]byte, 11), nil)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge || errCode(t, resp) != "too_large" {
		t.Fatalf("oversized PUT = %d", resp.StatusCode)
	}
}

func TestGatewayAdminSurface(t *testing.T) {
	_, ts := newGatewayServer(t, Config{})
	client := ts.Client()

	// Providers: the five Fig. 3 profiles, all available.
	resp := doReq(t, client, http.MethodGet, ts.URL+"/v1/providers", nil, nil)
	var provs []ProviderStatus
	json.NewDecoder(resp.Body).Decode(&provs)
	resp.Body.Close()
	if len(provs) != 5 {
		t.Fatalf("providers = %d, want 5", len(provs))
	}
	for _, p := range provs {
		if !p.Available {
			t.Fatalf("%s reported unavailable", p.Name)
		}
	}

	// Register CheapStor over the wire, then drop it.
	spec, _ := json.Marshal(cloud.CheapStorProvider())
	resp = doReq(t, client, http.MethodPost, ts.URL+"/v1/providers", spec, nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST provider = %d", resp.StatusCode)
	}
	// A name collision must be refused, not silently replace the live
	// backend (which would orphan its chunks).
	resp = doReq(t, client, http.MethodPost, ts.URL+"/v1/providers", spec, nil)
	if resp.StatusCode != http.StatusConflict || errCode(t, resp) != "already_exists" {
		t.Fatalf("duplicate POST provider = %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp = doReq(t, client, http.MethodGet, ts.URL+"/v1/providers", nil, nil)
	provs = nil
	json.NewDecoder(resp.Body).Decode(&provs)
	resp.Body.Close()
	if len(provs) != 6 {
		t.Fatalf("providers after POST = %d, want 6", len(provs))
	}
	resp = doReq(t, client, http.MethodDelete, ts.URL+"/v1/providers/CheapStor", nil, nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE provider = %d", resp.StatusCode)
	}
	resp = doReq(t, client, http.MethodDelete, ts.URL+"/v1/providers/CheapStor", nil, nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("double DELETE provider = %d", resp.StatusCode)
	}

	// Synchronous (?wait=true) optimize and repair return their reports
	// with a 200 — the pre-jobs blocking contract.
	resp = doReq(t, client, http.MethodPost, ts.URL+"/v1/optimize?wait=true", nil, nil)
	var orep OptimizeReport
	json.NewDecoder(resp.Body).Decode(&orep)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || orep.Leader == "" {
		t.Fatalf("optimize = %d, %+v", resp.StatusCode, orep)
	}
	resp = doReq(t, client, http.MethodPost, ts.URL+"/v1/repair?wait=true&policy=active", nil, nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repair = %d", resp.StatusCode)
	}
	resp = doReq(t, client, http.MethodPost, ts.URL+"/v1/repair?policy=bogus", nil, nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus repair policy = %d", resp.StatusCode)
	}
	resp = doReq(t, client, http.MethodPost, ts.URL+"/v1/repair?wait=maybe", nil, nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus wait = %d", resp.StatusCode)
	}
}

// TestGatewayStatsAndConditionalGet asserts the acceptance criterion:
// GET /v1/stats returns planner hit/miss counters, and a repeated
// conditional GET with the returned ETag yields 304 Not Modified.
func TestGatewayStatsAndConditionalGet(t *testing.T) {
	_, ts := newGatewayServer(t, Config{})
	client := ts.Client()

	resp := doReq(t, client, http.MethodPut, ts.URL+"/v1/objects/c/k", []byte("stats"), nil)
	etag := resp.Header.Get("ETag")
	resp.Body.Close()
	// A second Put of the same rule shape hits the planner cache.
	resp = doReq(t, client, http.MethodPut, ts.URL+"/v1/objects/c/k2", []byte("stats2"), nil)
	resp.Body.Close()

	resp = doReq(t, client, http.MethodGet, ts.URL+"/v1/stats", nil, nil)
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Planner.Misses == 0 {
		t.Fatalf("planner misses = 0, first placement must build a search: %+v", st)
	}
	if st.Planner.Hits == 0 {
		t.Fatalf("planner hits = 0, second placement must reuse the search: %+v", st)
	}
	if st.Engines == 0 || st.Providers != 5 {
		t.Fatalf("deployment shape missing from stats: %+v", st)
	}
	if st.Usage.Ops == 0 || st.CostUSD <= 0 {
		t.Fatalf("usage/cost counters missing: %+v", st)
	}

	resp = doReq(t, client, http.MethodGet, ts.URL+"/v1/objects/c/k", nil,
		map[string]string{"If-None-Match": etag})
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional GET with stats-era ETag = %d, want 304", resp.StatusCode)
	}
}

// TestGatewayRangeRequests drives the Range header end to end: partial
// content with correct Content-Range, suffix and open-ended forms,
// unsatisfiable ranges, and the stripe-aligned mapping (a small range
// of a big object must not fetch every stripe).
func TestGatewayRangeRequests(t *testing.T) {
	b, ts := newGatewayServer(t, Config{StripeBytes: 1024, CacheBytes: 1 << 20})
	client := ts.Client()
	payload := make([]byte, 8*1024+200)
	for i := range payload {
		payload[i] = byte(i * 13)
	}
	resp := doReq(t, client, http.MethodPut, ts.URL+"/v1/objects/big/blob", payload, nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("PUT = %d", resp.StatusCode)
	}
	size := int64(len(payload))

	get := func(rng string) *http.Response {
		t.Helper()
		return doReq(t, client, http.MethodGet, ts.URL+"/v1/objects/big/blob", nil,
			map[string]string{"Range": rng})
	}

	// Absolute range crossing a stripe boundary.
	resp = get("bytes=1500-2499")
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusPartialContent {
		t.Fatalf("range GET = %d, want 206", resp.StatusCode)
	}
	if !bytes.Equal(body, payload[1500:2500]) {
		t.Fatalf("range body mismatch: %d bytes", len(body))
	}
	if cr := resp.Header.Get("Content-Range"); cr != fmt.Sprintf("bytes 1500-2499/%d", size) {
		t.Fatalf("Content-Range = %q", cr)
	}
	if resp.Header.Get("Accept-Ranges") != "bytes" {
		t.Fatal("Accept-Ranges header missing")
	}
	// The 1000-byte range overlaps exactly stripes 1 and 2: only those
	// may have been fetched.
	if rs := b.ReadStats(); rs.StripesFetched != 2 {
		t.Fatalf("ranged GET fetched %d stripes, want 2", rs.StripesFetched)
	}

	// Open-ended and suffix forms.
	resp = get("bytes=8192-")
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusPartialContent || !bytes.Equal(body, payload[8192:]) {
		t.Fatalf("open-ended range = %d, %d bytes", resp.StatusCode, len(body))
	}
	resp = get("bytes=-100")
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusPartialContent || !bytes.Equal(body, payload[size-100:]) {
		t.Fatalf("suffix range = %d, %d bytes", resp.StatusCode, len(body))
	}
	if cr := resp.Header.Get("Content-Range"); cr != fmt.Sprintf("bytes %d-%d/%d", size-100, size-1, size) {
		t.Fatalf("suffix Content-Range = %q", cr)
	}

	// Unsatisfiable: starts at/past the end.
	resp = get(fmt.Sprintf("bytes=%d-", size))
	if resp.StatusCode != http.StatusRequestedRangeNotSatisfiable {
		t.Fatalf("past-end range = %d, want 416", resp.StatusCode)
	}
	if cr := resp.Header.Get("Content-Range"); cr != fmt.Sprintf("bytes */%d", size) {
		t.Fatalf("416 Content-Range = %q", cr)
	}
	if code := errCode(t, resp); code != "range_not_satisfiable" {
		t.Fatalf("error code = %q", code)
	}
	resp.Body.Close()

	// Multi-range headers are served as a true multipart/byteranges 206
	// (RFC 9110 §14.6): one part per range, each with its own
	// Content-Range against the same complete-length.
	resp = get("bytes=1500-2499,4000-4099")
	if resp.StatusCode != http.StatusPartialContent {
		t.Fatalf("multi-range GET = %d, want 206", resp.StatusCode)
	}
	mediatype, params, err := mime.ParseMediaType(resp.Header.Get("Content-Type"))
	if err != nil || mediatype != "multipart/byteranges" || params["boundary"] == "" {
		t.Fatalf("multi-range Content-Type = %q (%v)", resp.Header.Get("Content-Type"), err)
	}
	mr := multipart.NewReader(resp.Body, params["boundary"])
	wantParts := []struct {
		cr   string
		data []byte
	}{
		{fmt.Sprintf("bytes 1500-2499/%d", size), payload[1500:2500]},
		{fmt.Sprintf("bytes 4000-4099/%d", size), payload[4000:4100]},
	}
	for i, want := range wantParts {
		part, err := mr.NextPart()
		if err != nil {
			t.Fatalf("part %d: %v", i, err)
		}
		if cr := part.Header.Get("Content-Range"); cr != want.cr {
			t.Fatalf("part %d Content-Range = %q, want %q", i, cr, want.cr)
		}
		got, err := io.ReadAll(part)
		if err != nil || !bytes.Equal(got, want.data) {
			t.Fatalf("part %d body mismatch: %d bytes (%v)", i, len(got), err)
		}
	}
	if _, err := mr.NextPart(); err != io.EOF {
		t.Fatalf("expected exactly 2 parts, NextPart = %v", err)
	}
	resp.Body.Close()

	// A multi-range mixing satisfiable and unsatisfiable elements serves
	// only the satisfiable subset; all-unsatisfiable is a 416.
	resp = get(fmt.Sprintf("bytes=0-99,%d-", size))
	if resp.StatusCode != http.StatusPartialContent {
		t.Fatalf("partially satisfiable multi-range = %d, want 206", resp.StatusCode)
	}
	_, params, _ = mime.ParseMediaType(resp.Header.Get("Content-Type"))
	mr = multipart.NewReader(resp.Body, params["boundary"])
	part, err := mr.NextPart()
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := io.ReadAll(part); !bytes.Equal(got, payload[:100]) {
		t.Fatalf("satisfiable-subset part mismatch: %d bytes", len(got))
	}
	if _, err := mr.NextPart(); err != io.EOF {
		t.Fatalf("expected exactly 1 part, NextPart = %v", err)
	}
	resp.Body.Close()
	resp = get(fmt.Sprintf("bytes=%d-,-0", size))
	if resp.StatusCode != http.StatusRequestedRangeNotSatisfiable {
		t.Fatalf("all-unsatisfiable multi-range = %d, want 416", resp.StatusCode)
	}
	if cr := resp.Header.Get("Content-Range"); cr != fmt.Sprintf("bytes */%d", size) {
		t.Fatalf("multi-range 416 Content-Range = %q", cr)
	}
	resp.Body.Close()

	// Any malformed element invalidates the whole header (RFC 9110
	// §14.2): the response degrades to the full 200 body.
	for _, rng := range []string{"bytes=abc-def", "bytes=abc-def,0-10", "bytes=0-10,abc-def", "items=0-1"} {
		resp = get(rng)
		body, _ = io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || int64(len(body)) != size {
			t.Fatalf("range %q = %d (%d bytes), want full 200", rng, resp.StatusCode, len(body))
		}
	}
}

// TestGatewayStatsStripeCacheVisible asserts the acceptance criterion:
// stripe-cache hit/miss counters and the read-path fan-out counters are
// visible on GET /v1/stats after a repeat multi-stripe GET.
func TestGatewayStatsStripeCacheVisible(t *testing.T) {
	_, ts := newGatewayServer(t, Config{StripeBytes: 1024, CacheBytes: 1 << 20, EnginesPerDC: 1, Datacenters: []string{"dc1"}})
	client := ts.Client()
	payload := make([]byte, 6*1024)
	resp := doReq(t, client, http.MethodPut, ts.URL+"/v1/objects/big/blob", payload, nil)
	resp.Body.Close()

	for i := 0; i < 2; i++ {
		resp = doReq(t, client, http.MethodGet, ts.URL+"/v1/objects/big/blob", nil, nil)
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	resp = doReq(t, client, http.MethodGet, ts.URL+"/v1/stats", nil, nil)
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.StripeCache.Hits < 6 {
		t.Fatalf("stripe cache hits = %d, want >= 6 (repeat GET of 6 stripes): %+v", st.StripeCache.Hits, st.StripeCache)
	}
	if st.StripeCache.Misses == 0 || st.StripeCache.Entries != 6 {
		t.Fatalf("stripe cache counters = %+v", st.StripeCache)
	}
	if st.ReadPath.StripesFetched != 6 || st.ReadPath.StripesFromCache < 6 {
		t.Fatalf("read path counters = %+v", st.ReadPath)
	}
	if st.ReadPath.PrefetchedStripes == 0 {
		t.Fatalf("prefetch counter missing from stats: %+v", st.ReadPath)
	}
	// Write-path observability: the 6-stripe PUT above must be counted,
	// with the pipeline depth and the (drained) buffer gauges visible.
	if st.WritePath.StripesWritten != 6 || st.WritePath.PipelineDepth != DefaultWritePipelineDepth {
		t.Fatalf("write path counters = %+v", st.WritePath)
	}
	if st.WritePath.BufferedStripesPeak < 1 || st.WritePath.StripesInFlight != 0 {
		t.Fatalf("write buffer gauges = %+v", st.WritePath)
	}
}

// TestGatewayMultipartUpload drives the S3-style multipart protocol end
// to end over HTTP: open, stage parts, list, complete, read the object
// back across the part seam, and the 404 mapping for dead sessions.
func TestGatewayMultipartUpload(t *testing.T) {
	b, ts := newGatewayServer(t, Config{StripeBytes: 1024, CacheBytes: 1 << 20})
	client := ts.Client()
	objURL := ts.URL + "/v1/objects/mp/big"

	part1 := bytes.Repeat([]byte{3}, 2*1024)
	part2 := bytes.Repeat([]byte{4}, 700)
	whole := append(append([]byte(nil), part1...), part2...)

	// Open the session.
	resp := doReq(t, client, http.MethodPost, objURL+"?uploads", nil, map[string]string{
		"Content-Type":       "application/octet-stream",
		"X-Scalia-Size-Hint": fmt.Sprint(len(whole)),
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create upload = %d", resp.StatusCode)
	}
	var up UploadInfo
	if err := json.NewDecoder(resp.Body).Decode(&up); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if up.UploadID == "" || up.Container != "mp" || up.Key != "big" {
		t.Fatalf("upload info = %+v", up)
	}

	// Stage the parts; each answer carries the part's quoted ETag.
	etags := make([]string, 2)
	for i, body := range [][]byte{part1, part2} {
		u := fmt.Sprintf("%s?partNumber=%d&uploadId=%s", objURL, i+1, up.UploadID)
		resp = doReq(t, client, http.MethodPut, u, body, nil)
		var part PartInfo
		if err := json.NewDecoder(resp.Body).Decode(&part); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || part.Size != int64(len(body)) {
			t.Fatalf("part %d = %d (%+v)", i+1, resp.StatusCode, part)
		}
		if got := resp.Header.Get("ETag"); got != `"`+part.ETag+`"` {
			t.Fatalf("part %d ETag header = %q, body etag %q", i+1, got, part.ETag)
		}
		etags[i] = part.ETag
	}

	// List what is staged.
	resp = doReq(t, client, http.MethodGet, objURL+"?uploadId="+up.UploadID, nil, nil)
	var lp ListPartsResult
	if err := json.NewDecoder(resp.Body).Decode(&lp); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(lp.Parts) != 2 || lp.Parts[0].PartNumber != 1 {
		t.Fatalf("list parts = %d (%+v)", resp.StatusCode, lp)
	}

	// Complete with the part list.
	completeBody, _ := json.Marshal(map[string][]CompletedPart{"parts": {
		{PartNumber: 1, ETag: etags[0]}, {PartNumber: 2, ETag: etags[1]},
	}})
	resp = doReq(t, client, http.MethodPost, objURL+"?uploadId="+up.UploadID, completeBody,
		map[string]string{"Content-Type": "application/json"})
	var meta ObjectMeta
	if err := json.NewDecoder(resp.Body).Decode(&meta); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || meta.Size != int64(len(whole)) || !meta.Multipart() {
		t.Fatalf("complete = %d (%+v)", resp.StatusCode, meta)
	}

	// The object serves whole and across the part seam.
	resp = doReq(t, client, http.MethodGet, objURL, nil, nil)
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Equal(body, whole) {
		t.Fatalf("GET completed object = %d (%d bytes)", resp.StatusCode, len(body))
	}
	resp = doReq(t, client, http.MethodGet, objURL, nil,
		map[string]string{"Range": "bytes=1500-2300"}) // spans part 1 -> part 2
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusPartialContent || !bytes.Equal(body, whole[1500:2301]) {
		t.Fatalf("range across part seam = %d (%d bytes)", resp.StatusCode, len(body))
	}

	// The session is gone: 404 with the dedicated code.
	resp = doReq(t, client, http.MethodGet, objURL+"?uploadId="+up.UploadID, nil, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("list after complete = %d, want 404", resp.StatusCode)
	}
	if code := errCode(t, resp); code != "upload_not_found" {
		t.Fatalf("error code = %q, want upload_not_found", code)
	}
	resp.Body.Close()

	// A bare POST on an object path is a protocol error, and an abort of
	// an unknown upload maps to the same 404.
	resp = doReq(t, client, http.MethodPost, objURL, nil, nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bare POST = %d, want 400", resp.StatusCode)
	}
	resp = doReq(t, client, http.MethodDelete, objURL+"?uploadId=ghost", nil, nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("abort unknown upload = %d, want 404", resp.StatusCode)
	}
	if got := b.activeUploads(); got != 0 {
		t.Fatalf("active uploads left behind = %d", got)
	}
}

// TestGatewayRoundRobinsAcrossEngines: consecutive requests must spread
// over every engine of every datacenter (the Engine(0)-only bug).
func TestGatewayRoundRobinsAcrossEngines(t *testing.T) {
	b, ts := newGatewayServer(t, Config{Datacenters: []string{"dc1", "dc2"}, EnginesPerDC: 2})
	client := ts.Client()
	before := b.next.Load()
	const n = 8
	for i := 0; i < n; i++ {
		resp := doReq(t, client, http.MethodPut,
			fmt.Sprintf("%s/v1/objects/c/k%d", ts.URL, i), []byte("x"), nil)
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("PUT %d = %d", i, resp.StatusCode)
		}
	}
	if got := b.next.Load() - before; got < n {
		t.Fatalf("round-robin counter advanced %d, want >= %d", got, n)
	}
	// All four engines share the metadata fabric, so every object must be
	// readable regardless of which engine serves the read.
	b.FlushStats()
	for i := 0; i < n; i++ {
		resp := doReq(t, client, http.MethodGet,
			fmt.Sprintf("%s/v1/objects/c/k%d", ts.URL, i), nil, nil)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET k%d = %d", i, resp.StatusCode)
		}
	}
}

// cancelAfterReader delivers data until n bytes have been read, then
// cancels the context and keeps delivering; the engine must notice the
// cancellation and abort the fan-out.
type cancelAfterReader struct {
	n      int
	cancel context.CancelFunc
	read   int
}

func (r *cancelAfterReader) Read(p []byte) (int, error) {
	if r.read >= r.n && r.cancel != nil {
		r.cancel()
		r.cancel = nil
	}
	for i := range p {
		p[i] = byte(i)
	}
	r.read += len(p)
	return len(p), nil
}

// TestPutReaderCancellationAbortsFanOut asserts the acceptance
// criterion: cancelling the request context aborts the in-flight chunk
// fan-out, no metadata is committed, and written chunks roll back.
func TestPutReaderCancellationAbortsFanOut(t *testing.T) {
	b := newTestBroker(t, Config{StripeBytes: 1024})
	e := b.Engine(0)
	cctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	src := &cancelAfterReader{n: 3 * 1024, cancel: cancel}
	_, err := e.PutReader(cctx, "c", "big", src, 64*1024, PutOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("PutReader after cancel = %v, want context.Canceled", err)
	}
	if _, err := e.Head(context.Background(), "c", "big"); !errors.Is(err, ErrObjectNotFound) {
		t.Fatalf("metadata committed despite cancellation: %v", err)
	}
	// Rollback must leave no orphan chunks at any provider.
	for _, s := range b.Registry().Snapshot() {
		if bs, ok := s.(*cloud.BlobStore); ok && bs.ObjectCount() != 0 {
			t.Fatalf("%s holds %d orphan chunks after cancel", bs.Spec().Name, bs.ObjectCount())
		}
	}
}

// TestGatewayCancelledPutRollsBack drives the same property end to end
// over HTTP: a client that disconnects mid-upload must not leave a
// partial object behind.
func TestGatewayCancelledPutRollsBack(t *testing.T) {
	b, ts := newGatewayServer(t, Config{StripeBytes: 1024})
	client := ts.Client()

	cctx, cancel := context.WithCancel(context.Background())
	pr, pw := io.Pipe()
	req, _ := http.NewRequestWithContext(cctx, http.MethodPut, ts.URL+"/v1/objects/c/huge", pr)
	req.ContentLength = 1 << 20
	done := make(chan error, 1)
	go func() {
		_, err := client.Do(req)
		done <- err
	}()
	pw.Write(make([]byte, 8*1024)) // a few stripes through, then vanish
	cancel()
	pw.CloseWithError(context.Canceled)
	if err := <-done; err == nil {
		t.Fatal("cancelled PUT reported success")
	}

	// The handler rolls back asynchronously; wait for it to settle.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := b.Engine(0).Head(context.Background(), "c", "huge"); errors.Is(err, ErrObjectNotFound) {
			orphans := 0
			for _, s := range b.Registry().Snapshot() {
				if bs, ok := s.(*cloud.BlobStore); ok {
					orphans += bs.ObjectCount()
				}
			}
			if orphans == 0 {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("cancelled PUT left metadata or orphan chunks behind")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestGatewayFaultInjectionRepairSwap is the fault-injection e2e: boot
// the gateway over a registry, flip a provider dead directly on the
// backend (BlobStore.SetAvailable, bypassing the registry), keep a
// streaming GET open across the repair, POST the admin repair endpoint,
// and assert the report shows a chunk swap — not a re-stripe — with the
// repaired chunk parity-verified.
func TestGatewayFaultInjectionRepairSwap(t *testing.T) {
	reg := cloud.NewRegistry()
	for i, name := range []string{"A", "B", "C", "D"} {
		reg.Register(cloud.NewBlobStore(cloud.Spec{
			Name: name, Durability: 0.9999, Availability: 0.999,
			Zones:   []cloud.Zone{cloud.ZoneUS},
			Pricing: cloud.Pricing{StorageGBMonth: 0.10 + 0.01*float64(i), BandwidthInGB: 0.1, BandwidthOutGB: 0.15, OpsPer1000: 0.01},
		}))
	}
	b, ts := newGatewayServer(t, Config{Registry: reg, StripeBytes: 32 << 10})
	client := ts.Client()

	// Pin a wide rule so the placement stripes over {A, B, C} with D as
	// the only spare.
	rule := []byte(`{"name":"wide","durability":0.9999,"availability":0.99,"lockIn":0.334}`)
	resp := doReq(t, client, http.MethodPut, ts.URL+"/v1/rules/bk", rule, nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("set rule: %d", resp.StatusCode)
	}

	payload := make([]byte, 192<<10)
	rand.New(rand.NewSource(3)).Read(payload)
	resp = doReq(t, client, http.MethodPut, ts.URL+"/v1/objects/bk/obj", payload, nil)
	var meta ObjectMeta
	if err := json.NewDecoder(resp.Body).Decode(&meta); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || len(meta.Chunks) != 3 || meta.M != 2 {
		t.Fatalf("put: %d, meta %+v", resp.StatusCode, meta)
	}
	victim := meta.Chunks[0]

	// Fault injection directly on the backend: the change-notifier
	// back-reference must carry the epoch bump into the planner.
	st, ok := b.Registry().Store(victim)
	if !ok {
		t.Fatalf("unknown provider %q", victim)
	}
	st.(*cloud.BlobStore).SetAvailable(false)

	// Open a streaming GET before the repair and drain only half: the
	// stream must survive the in-place repair and finish bitwise intact.
	midReq, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/objects/bk/obj", nil)
	if err != nil {
		t.Fatal(err)
	}
	midResp, err := client.Do(midReq)
	if err != nil {
		t.Fatal(err)
	}
	defer midResp.Body.Close()
	if midResp.StatusCode != http.StatusOK {
		t.Fatalf("degraded GET: %d", midResp.StatusCode)
	}
	head := make([]byte, len(payload)/2)
	if _, err := io.ReadFull(midResp.Body, head); err != nil {
		t.Fatalf("mid-repair stream (first half): %v", err)
	}

	resp = doReq(t, client, http.MethodPost, ts.URL+"/v1/repair?wait=true&policy=active", nil, nil)
	var rep RepairReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repair: %d", resp.StatusCode)
	}
	if rep.Swapped != 1 || rep.Restriped != 0 || rep.Repaired != 1 {
		t.Fatalf("repair must swap, not re-stripe: %+v", rep)
	}
	if rep.ChunksWritten != meta.StripeCount() {
		t.Fatalf("swap wrote %d chunks, want %d", rep.ChunksWritten, meta.StripeCount())
	}

	// Finish the stream opened before the repair.
	tail, err := io.ReadAll(midResp.Body)
	if err != nil {
		t.Fatalf("mid-repair stream (second half): %v", err)
	}
	if !bytes.Equal(append(head, tail...), payload) {
		t.Fatal("stream spanning the repair delivered corrupted bytes")
	}

	// Post-repair: the object references the spare, a fresh GET matches,
	// and the repaired chunk's MD5/parity verifies across all n chunks.
	resp = doReq(t, client, http.MethodGet, ts.URL+"/v1/objects/bk/obj", nil, nil)
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || !bytes.Equal(body, payload) {
		t.Fatalf("post-repair GET mismatch: %v", err)
	}
	if providers := resp.Header.Get("X-Scalia-Providers"); strings.Contains(providers, victim) {
		t.Fatalf("repaired object still references %s: %s", victim, providers)
	}
	sum := md5.Sum(body)
	if hex.EncodeToString(sum[:]) != meta.Checksum {
		t.Fatal("post-repair checksum mismatch")
	}
	reachable, err := b.Engine(0).VerifyObject(context.Background(), "bk", "obj")
	if err != nil {
		t.Fatalf("post-repair parity verification: %v", err)
	}
	if reachable != len(meta.Chunks) {
		t.Fatalf("reachable = %d, want %d", reachable, len(meta.Chunks))
	}

	// The swap is visible on the stats surface.
	resp = doReq(t, client, http.MethodGet, ts.URL+"/v1/stats", nil, nil)
	var stats Stats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Repair.Swapped != 1 || stats.Repair.Passes != 1 {
		t.Fatalf("stats.repair = %+v", stats.Repair)
	}
}
