package privstore

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

var ctx = context.Background()

func newPair(t *testing.T, capacity int64) (*Server, *Client) {
	t.Helper()
	srv, err := NewServer(t.TempDir(), []byte("secret-token"), capacity)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, NewClient(ts.URL, []byte("secret-token"))
}

func TestPutGetDeleteList(t *testing.T) {
	_, c := newPair(t, 0)
	if err := c.Put(ctx, "a/key1", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get(ctx, "a/key1")
	if err != nil || !bytes.Equal(got, []byte("hello")) {
		t.Fatalf("Get = %q, %v", got, err)
	}
	c.Put(ctx, "a/key2", []byte("x"))
	c.Put(ctx, "b/key3", []byte("y"))
	keys, err := c.List(ctx, "a/")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 || keys[0] != "a/key1" || keys[1] != "a/key2" {
		t.Fatalf("List = %v", keys)
	}
	if err := c.Delete(ctx, "a/key1"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(ctx, "a/key1"); !errors.Is(err, ErrRemote) {
		t.Fatalf("Get after delete: %v", err)
	}
}

func TestServerRejectsBadToken(t *testing.T) {
	srv, err := NewServer(t.TempDir(), []byte("right"), 0)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := NewClient(ts.URL, []byte("wrong"))
	if err := c.Put(ctx, "k", []byte("v")); !errors.Is(err, ErrRemote) {
		t.Fatalf("bad token accepted: %v", err)
	}
}

func TestServerRejectsMissingSignature(t *testing.T) {
	srv, _ := NewServer(t.TempDir(), []byte("tok"), 0)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/objects/k")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("status = %d, want 401", resp.StatusCode)
	}
}

func TestServerRejectsReplayedTimestamp(t *testing.T) {
	srv, _ := NewServer(t.TempDir(), []byte("tok"), 0)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := NewClient(ts.URL, []byte("tok"))
	// An old timestamp (beyond the skew window) must be refused even with
	// a valid signature.
	c.now = func() time.Time { return time.Now().Add(-MaxClockSkew - time.Minute) }
	if err := c.Put(ctx, "k", []byte("v")); !errors.Is(err, ErrRemote) {
		t.Fatalf("stale timestamp accepted: %v", err)
	}
}

func TestCapacityLimit(t *testing.T) {
	srv, c := newPair(t, 10)
	if err := c.Put(ctx, "a", make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(ctx, "b", make([]byte, 8)); !errors.Is(err, ErrRemote) {
		t.Fatalf("over-capacity accepted: %v", err)
	}
	// Overwriting within capacity is fine.
	if err := c.Put(ctx, "a", make([]byte, 10)); err != nil {
		t.Fatal(err)
	}
	if srv.UsedBytes() != 10 {
		t.Fatalf("UsedBytes = %d, want 10", srv.UsedBytes())
	}
}

func TestUsageSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	srv, err := NewServer(dir, []byte("tok"), 0)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	c := NewClient(ts.URL, []byte("tok"))
	c.Put(ctx, "k", make([]byte, 123))
	ts.Close()

	srv2, err := NewServer(dir, []byte("tok"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if srv2.UsedBytes() != 123 {
		t.Fatalf("restarted usage = %d, want 123", srv2.UsedBytes())
	}
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()
	c2 := NewClient(ts2.URL, []byte("tok"))
	got, err := c2.Get(ctx, "k")
	if err != nil || len(got) != 123 {
		t.Fatalf("data lost across restart: %v", err)
	}
}

func TestKeysWithSpecialCharacters(t *testing.T) {
	_, c := newPair(t, 0)
	key := "dir/../weird key/äöü/..%2F"
	if err := c.Put(ctx, key, []byte("safe")); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get(ctx, key)
	if err != nil || string(got) != "safe" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	keys, _ := c.List(ctx, "")
	if len(keys) != 1 || keys[0] != key {
		t.Fatalf("List = %v", keys)
	}
}

func TestSignDeterministic(t *testing.T) {
	a := Sign([]byte("t"), "PUT", "/objects/x", 42)
	b := Sign([]byte("t"), "PUT", "/objects/x", 42)
	if a != b {
		t.Fatal("signature must be deterministic")
	}
	if a == Sign([]byte("t"), "GET", "/objects/x", 42) {
		t.Fatal("method must be part of the signature")
	}
	if a == Sign([]byte("t"), "PUT", "/objects/y", 42) {
		t.Fatal("path must be part of the signature")
	}
	if a == Sign([]byte("t"), "PUT", "/objects/x", 43) {
		t.Fatal("timestamp must be part of the signature")
	}
	if a == Sign([]byte("u"), "PUT", "/objects/x", 42) {
		t.Fatal("token must be part of the signature")
	}
}
