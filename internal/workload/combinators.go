package workload

import (
	"fmt"
	"math"
)

// Combinators compose existing scenarios into new ones. Like the
// generators, every derived Load(p) is a pure function of p, so
// combined scenarios replay identically across the simulator's priced
// policies.

// prefixed namespaces a scenario's object keys so multi-part
// combinations never collide (mixing a scenario with itself is legal).
type prefixed struct {
	Scenario
	prefix string
}

func (s prefixed) Load(p int) []PeriodLoad {
	loads := s.Scenario.Load(p)
	out := make([]PeriodLoad, len(loads))
	for i, l := range loads {
		l.Object = s.prefix + l.Object
		out[i] = l
	}
	return out
}

// Mix runs all parts concurrently: period p carries every part's loads
// for p, each part's objects under its own key prefix. The mix lasts as
// long as the longest part.
func Mix(parts ...Scenario) Scenario {
	return &mix{parts: namespaced(parts)}
}

type mix struct {
	parts []Scenario
}

func (m *mix) Name() string { return "mix(" + partNames(m.parts) + ")" }

func (m *mix) Periods() int {
	max := 0
	for _, s := range m.parts {
		if s.Periods() > max {
			max = s.Periods()
		}
	}
	return max
}

func (m *mix) Load(p int) []PeriodLoad {
	var loads []PeriodLoad
	for _, s := range m.parts {
		if p < s.Periods() {
			loads = append(loads, s.Load(p)...)
		}
	}
	return loads
}

// Concat runs the parts back to back: part k starts the period part k-1
// ends. Parts are namespaced, so concatenating a scenario with itself
// creates fresh objects; objects a part leaves alive at its end simply
// stop receiving traffic (they keep accruing storage downstream).
func Concat(parts ...Scenario) Scenario {
	return &concat{parts: namespaced(parts)}
}

type concat struct {
	parts []Scenario
}

func (c *concat) Name() string { return "concat(" + partNames(c.parts) + ")" }

func (c *concat) Periods() int {
	total := 0
	for _, s := range c.parts {
		total += s.Periods()
	}
	return total
}

func (c *concat) Load(p int) []PeriodLoad {
	for _, s := range c.parts {
		if p < s.Periods() {
			return s.Load(p)
		}
		p -= s.Periods()
	}
	return nil
}

// Shift delays a scenario by `by` periods of silence (a cold start
// ahead of the action); the result is `by` periods longer.
func Shift(s Scenario, by int) Scenario {
	if by < 0 {
		by = 0
	}
	return &shift{inner: s, by: by}
}

type shift struct {
	inner Scenario
	by    int
}

func (s *shift) Name() string { return fmt.Sprintf("shift(%s,+%d)", s.inner.Name(), s.by) }

func (s *shift) Periods() int { return s.inner.Periods() + s.by }

func (s *shift) Load(p int) []PeriodLoad {
	if p < s.by {
		return nil
	}
	return s.inner.Load(p - s.by)
}

// Scale multiplies a scenario's read traffic by factor, rounding with a
// running carry across the period's loads so aggregate volume is
// preserved. Writes, sizes and lifecycle flags pass through unchanged
// (scaling creations would corrupt object lifecycles). Negative or NaN
// factors clamp to 0: reads cannot go negative.
func Scale(s Scenario, factor float64) Scenario {
	if factor < 0 || math.IsNaN(factor) {
		factor = 0
	}
	return &scale{inner: s, factor: factor}
}

type scale struct {
	inner  Scenario
	factor float64
}

func (s *scale) Name() string { return fmt.Sprintf("scale(%s,x%g)", s.inner.Name(), s.factor) }

func (s *scale) Periods() int { return s.inner.Periods() }

func (s *scale) Load(p int) []PeriodLoad {
	loads := s.inner.Load(p)
	out := make([]PeriodLoad, 0, len(loads))
	carry := 0.0
	for _, l := range loads {
		orig := l.Reads
		l.Reads = roundCarry(float64(l.Reads)*s.factor, &carry)
		// Elide a record only when scaling removed the one thing it
		// carried — traffic. Records the source emitted for other
		// reasons (lifecycle flags, storage-only presence) pass
		// through, so Scale(s, 1) is the identity.
		if l.Reads > 0 || l.Writes > 0 || l.Created || l.Deleted || orig == 0 {
			out = append(out, l)
		}
	}
	return out
}

// Truncate cuts a scenario to at most `periods` periods.
func Truncate(s Scenario, periods int) Scenario {
	if periods > s.Periods() {
		periods = s.Periods()
	}
	if periods < 0 {
		periods = 0
	}
	return &truncate{inner: s, periods: periods}
}

type truncate struct {
	inner   Scenario
	periods int
}

func (t *truncate) Name() string { return fmt.Sprintf("truncate(%s,%d)", t.inner.Name(), t.periods) }

func (t *truncate) Periods() int { return t.periods }

func (t *truncate) Load(p int) []PeriodLoad {
	if p >= t.periods {
		return nil
	}
	return t.inner.Load(p)
}

// namespaced wraps each part under a "p<k>/" key prefix.
func namespaced(parts []Scenario) []Scenario {
	out := make([]Scenario, len(parts))
	for i, s := range parts {
		out[i] = prefixed{Scenario: s, prefix: fmt.Sprintf("p%d/", i)}
	}
	return out
}

func partNames(parts []Scenario) string {
	names := ""
	for i, s := range parts {
		if i > 0 {
			names += "+"
		}
		names += s.Name()
	}
	return names
}
