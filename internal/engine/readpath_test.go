package engine

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"scalia/internal/cloud"
)

// testPayload builds a deterministic, position-dependent payload so a
// misordered or misaligned stripe cannot compare equal by accident.
func testPayload(n int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(i*7 + i/251)
	}
	return p
}

// TestStripeCacheServesRepeatGet asserts the acceptance criterion: a
// repeat GET of a multi-stripe object is served entirely from the
// stripe-granular cache — zero provider traffic, hit counters moving.
func TestStripeCacheServesRepeatGet(t *testing.T) {
	b := newTestBroker(t, Config{StripeBytes: 1024, CacheBytes: 1 << 20})
	e := b.Engine(0)
	payload := testPayload(8*1024 + 123) // 9 stripes
	meta, err := e.Put(ctx, "big", "obj", payload, PutOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if meta.StripeCount() < 8 {
		t.Fatalf("stripes = %d, want a multi-stripe object", meta.StripeCount())
	}

	got, _, err := e.Get(ctx, "big", "obj")
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("first read: %v", err)
	}
	before := b.Registry().TotalUsage().Ops
	fetchedBefore := b.ReadStats().StripesFetched

	got, _, err = e.Get(ctx, "big", "obj")
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("repeat read: %v", err)
	}
	if after := b.Registry().TotalUsage().Ops; after != before {
		t.Fatalf("repeat read hit providers: ops %d -> %d", before, after)
	}
	rs := b.ReadStats()
	if rs.StripesFetched != fetchedBefore {
		t.Fatalf("repeat read fetched stripes: %d -> %d", fetchedBefore, rs.StripesFetched)
	}
	if rs.StripesFromCache < int64(meta.StripeCount()) {
		t.Fatalf("stripes from cache = %d, want >= %d", rs.StripesFromCache, meta.StripeCount())
	}
	if cs := b.Caches().Stats(); cs.Hits < int64(meta.StripeCount()) {
		t.Fatalf("cache hits = %d, want >= %d", cs.Hits, meta.StripeCount())
	}
}

// TestPartiallyCachedObjectFetchesOnlyMissingStripes: a ranged read
// caches the stripes it touched; the following full read must fetch
// only the others.
func TestPartiallyCachedObjectFetchesOnlyMissingStripes(t *testing.T) {
	b := newTestBroker(t, Config{StripeBytes: 1024, CacheBytes: 1 << 20})
	e := b.Engine(0)
	payload := testPayload(8 * 1024) // 8 stripes
	if _, err := e.Put(ctx, "big", "obj", payload, PutOptions{}); err != nil {
		t.Fatal(err)
	}

	// Bytes [2048, 4096) live exactly in stripes 2 and 3.
	rc, _, err := e.GetRangeReader(ctx, "big", "obj", 2048, 2048)
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(rc)
	rc.Close()
	if err != nil || !bytes.Equal(got, payload[2048:4096]) {
		t.Fatalf("range read mismatch: %v (%d bytes)", err, len(got))
	}
	if rs := b.ReadStats(); rs.StripesFetched != 2 {
		t.Fatalf("range read fetched %d stripes, want 2", rs.StripesFetched)
	}

	full, _, err := e.Get(ctx, "big", "obj")
	if err != nil || !bytes.Equal(full, payload) {
		t.Fatalf("full read after partial cache: %v", err)
	}
	rs := b.ReadStats()
	if rs.StripesFetched != 8 {
		t.Fatalf("total stripes fetched = %d, want 8 (2 ranged + 6 missing)", rs.StripesFetched)
	}
	if rs.StripesFromCache != 2 {
		t.Fatalf("stripes from cache = %d, want the 2 ranged ones", rs.StripesFromCache)
	}
}

func TestGetRangeReader(t *testing.T) {
	b := newTestBroker(t, Config{StripeBytes: 1024})
	e := b.Engine(0)
	payload := testPayload(8*1024 + 300)
	if _, err := e.Put(ctx, "c", "k", payload, PutOptions{}); err != nil {
		t.Fatal(err)
	}

	read := func(off, length int64) []byte {
		t.Helper()
		rc, _, err := e.GetRangeReader(ctx, "c", "k", off, length)
		if err != nil {
			t.Fatalf("GetRangeReader(%d, %d): %v", off, length, err)
		}
		defer rc.Close()
		got, err := io.ReadAll(rc)
		if err != nil {
			t.Fatalf("drain(%d, %d): %v", off, length, err)
		}
		return got
	}

	cases := []struct{ off, length int64 }{
		{0, 1},                       // first byte
		{0, int64(len(payload))},     // whole object
		{1500, 1000},                 // mid-stripe start and end
		{1024, 1024},                 // exactly stripe 1
		{int64(len(payload)) - 1, 1}, // last byte
		{8 * 1024, 1 << 20},          // clamped tail
	}
	for _, c := range cases {
		want := payload[c.off:]
		if c.off+c.length < int64(len(payload)) {
			want = payload[c.off : c.off+c.length]
		}
		if got := read(c.off, c.length); !bytes.Equal(got, want) {
			t.Fatalf("range (%d, %d): got %d bytes, want %d", c.off, c.length, len(got), len(want))
		}
	}

	// length -1 = "to the object end", matching the remote client.
	if got := read(3000, -1); !bytes.Equal(got, payload[3000:]) {
		t.Fatalf("open-ended range: got %d bytes, want %d", len(got), len(payload)-3000)
	}

	if _, _, err := e.GetRangeReader(ctx, "c", "k", int64(len(payload)), 10); !errors.Is(err, ErrRangeNotSatisfiable) {
		t.Fatalf("offset past end: %v, want ErrRangeNotSatisfiable", err)
	}
	if _, _, err := e.GetRangeReader(ctx, "c", "k", -1, 10); !errors.Is(err, ErrInvalidArgument) {
		t.Fatalf("negative offset: %v, want ErrInvalidArgument", err)
	}
	if _, _, err := e.GetRangeReader(ctx, "c", "k", 0, 0); !errors.Is(err, ErrInvalidArgument) {
		t.Fatalf("zero length: %v, want ErrInvalidArgument", err)
	}
	if _, _, err := e.GetRangeReader(ctx, "c", "k", 0, -2); !errors.Is(err, ErrInvalidArgument) {
		t.Fatalf("length -2: %v, want ErrInvalidArgument", err)
	}
}

// flakyBackend reports itself available but fails Gets on demand — the
// §III-D3 race where a provider dies between chunk ranking and fetch.
type flakyBackend struct {
	*cloud.BlobStore
	failGets atomic.Bool
}

func (f *flakyBackend) Get(ctx context.Context, key string) ([]byte, error) {
	if f.failGets.Load() {
		return nil, errors.New("flaky: injected fetch failure")
	}
	return f.BlobStore.Get(ctx, key)
}

func flakyRegistry() (*cloud.Registry, map[string]*flakyBackend) {
	reg := cloud.NewRegistry()
	backends := make(map[string]*flakyBackend)
	for _, spec := range cloud.PaperProviders() {
		fb := &flakyBackend{BlobStore: cloud.NewBlobStore(spec)}
		backends[spec.Name] = fb
		reg.Register(fb)
	}
	return reg, backends
}

// TestParallelFetchFallsBackToSpareProvider: when a ranked provider
// fails mid-read (still "available", so ranking included it), the
// worker pool must fall back to a spare chunk and the fallback counter
// must move.
func TestParallelFetchFallsBackToSpareProvider(t *testing.T) {
	reg, backends := flakyRegistry()
	b := newTestBroker(t, Config{Registry: reg, StripeBytes: 1024, ReadParallelism: 4})
	e := b.Engine(0)
	payload := testPayload(4 * 1024)
	meta, err := e.Put(ctx, "c", "k", payload, PutOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(meta.Chunks) <= meta.M {
		t.Skipf("placement %v has no failure slack", meta.Chunks)
	}
	backends[meta.Chunks[0]].failGets.Store(true)

	got, _, err := e.Get(ctx, "c", "k")
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("read with flaky provider: %v", err)
	}
	if rs := b.ReadStats(); rs.FetchFallbacks == 0 {
		t.Fatal("fallback counter did not move")
	}
}

// gatedBackend blocks Gets of gated keys until the gate opens or the
// fetch context is cancelled, so tests can freeze a read mid-stripe.
type gatedBackend struct {
	*cloud.BlobStore
	gate    chan struct{}
	gateKey func(string) bool
}

func (g *gatedBackend) Get(ctx context.Context, key string) ([]byte, error) {
	if g.gateKey != nil && g.gateKey(key) {
		select {
		case <-g.gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return g.BlobStore.Get(ctx, key)
}

// TestGetReaderCancelTeardown is the read-path teardown test:
// cancelling a multi-stripe GET mid-stream must stop the prefetcher and
// every in-flight chunk fetch without leaking goroutines, and must not
// poison the stripe cache with partial entries.
func TestGetReaderCancelTeardown(t *testing.T) {
	gate := make(chan struct{})
	// Stripe 0 flows; every later stripe's chunks block on the gate.
	gateKey := func(key string) bool {
		return strings.Contains(key, "/s") && !strings.Contains(key, "/s00000/")
	}
	reg := cloud.NewRegistry()
	for _, spec := range cloud.PaperProviders() {
		reg.Register(&gatedBackend{BlobStore: cloud.NewBlobStore(spec), gate: gate, gateKey: gateKey})
	}
	b := newTestBroker(t, Config{
		Registry: reg, StripeBytes: 1024, CacheBytes: 1 << 20,
		ReadParallelism: 4, PrefetchStripes: 4,
	})
	e := b.Engine(0)
	payload := testPayload(16 * 1024) // 16 stripes
	if _, err := e.Put(ctx, "big", "obj", payload, PutOptions{}); err != nil {
		t.Fatal(err)
	}

	base := runtime.NumGoroutine()
	cctx, cancel := context.WithCancel(context.Background())
	rc, _, err := e.GetReader(cctx, "big", "obj")
	if err != nil {
		t.Fatal(err)
	}
	// Drain the eagerly fetched first stripe; the prefetcher is now
	// blocked inside the gated chunk fetches of stripe 1.
	buf := make([]byte, 1024)
	if _, err := io.ReadFull(rc, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, payload[:1024]) {
		t.Fatal("first stripe mismatch")
	}

	cancel()
	rc.Close()

	// Every read-path goroutine (prefetcher + fetch workers) must wind
	// down without the gate ever opening — cancellation alone tears the
	// pipeline apart.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not settle: %d -> %d", base, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The stripe cache must hold only complete stripes: a full re-read
	// (gate open) must reproduce the payload bit for bit, and every
	// cached entry must be a whole stripe.
	close(gate)
	if c := b.Caches().Datacenter(e.Datacenter()); c != nil {
		if used, entries := c.UsedBytes(), int64(c.Len()); used != entries*1024 {
			t.Fatalf("cache holds partial stripes: %d bytes over %d entries", used, entries)
		}
	}
	got, _, err := e.Get(ctx, "big", "obj")
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("read after teardown: %v", err)
	}
}

// TestCancelMidStreamReturnsContextError: a reader consuming a
// cancelled stream must surface context.Canceled, not a payload error.
func TestCancelMidStreamReturnsContextError(t *testing.T) {
	b := newTestBroker(t, Config{StripeBytes: 1024, PrefetchStripes: -1})
	e := b.Engine(0)
	if _, err := e.Put(ctx, "c", "k", testPayload(8*1024), PutOptions{}); err != nil {
		t.Fatal(err)
	}
	cctx, cancel := context.WithCancel(context.Background())
	rc, _, err := e.GetReader(cctx, "c", "k")
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	buf := make([]byte, 1024)
	if _, err := io.ReadFull(rc, buf); err != nil {
		t.Fatal(err)
	}
	cancel()
	if _, err := io.ReadAll(rc); !errors.Is(err, context.Canceled) {
		t.Fatalf("read after cancel = %v, want context.Canceled", err)
	}
}

// TestFullyCachedObjectReadableDuringOutage: the stripe cache must
// absorb reads of popular objects even when too many providers are down
// to reconstruct (the cache exists exactly for the objects that would
// be most expensive to lose).
func TestFullyCachedObjectReadableDuringOutage(t *testing.T) {
	b := newTestBroker(t, Config{StripeBytes: 1024, CacheBytes: 1 << 20})
	e := b.Engine(0)
	payload := testPayload(4 * 1024)
	meta, err := e.Put(ctx, "c", "k", payload, PutOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Get(ctx, "c", "k"); err != nil {
		t.Fatal(err) // fills the stripe cache
	}
	for _, name := range meta.Chunks {
		blob(t, b, name).SetAvailable(false)
	}
	got, _, err := e.Get(ctx, "c", "k")
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("cached read during outage: %v", err)
	}
}

// corruptStripe flips a byte in every stored chunk of one stripe, so
// whichever m chunks the read picks, the decode output is wrong.
func corruptStripe(t *testing.T, b *Broker, meta ObjectMeta, s int) {
	t.Helper()
	for i, name := range meta.Chunks {
		store, ok := b.Registry().Store(name)
		if !ok {
			t.Fatalf("provider %s missing", name)
		}
		key := ChunkKeyAt(meta.SKey, meta.StripeCount(), s, i)
		data, err := store.Get(ctx, key)
		if err != nil {
			t.Fatal(err)
		}
		data[0] ^= 0xff
		if err := store.Put(ctx, key, data); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCorruptStripeNeverEntersCache: bitrot at the providers must fail
// the read with ErrChecksum — before the stripe cache is filled, so a
// repeat read cannot be served corrupted bytes from cache. Covers both
// the full read and a ranged read that never sees the whole object.
func TestCorruptStripeNeverEntersCache(t *testing.T) {
	b := newTestBroker(t, Config{StripeBytes: 1024, CacheBytes: 1 << 20})
	e := b.Engine(0)
	payload := testPayload(4 * 1024)
	meta, err := e.Put(ctx, "c", "k", payload, PutOptions{})
	if err != nil {
		t.Fatal(err)
	}
	corruptStripe(t, b, meta, 2)

	for i := 0; i < 2; i++ { // the repeat read must not hit a poisoned cache
		if _, _, err := e.Get(ctx, "c", "k"); !errors.Is(err, ErrChecksum) {
			t.Fatalf("read %d of corrupt object = %v, want ErrChecksum", i, err)
		}
	}
	// A ranged read touching only the corrupt stripe fails too, even
	// though the whole-object checksum chain never runs.
	rc, _, err := e.GetRangeReader(ctx, "c", "k", 2*1024, 1024)
	if err == nil {
		_, err = io.ReadAll(rc)
		rc.Close()
	}
	if !errors.Is(err, ErrChecksum) {
		t.Fatalf("ranged read of corrupt stripe = %v, want ErrChecksum", err)
	}
	// Nothing corrupt may be cached: every entry still in the cache
	// must serve healthy stripes only (stripes 0, 1, 3 at most).
	if c := b.Caches().Datacenter(e.Datacenter()); c != nil {
		if data, ok := c.GetStripe(stripeCacheID("c/k", meta.UUID), 2); ok {
			t.Fatalf("corrupt stripe cached: %d bytes", len(data))
		}
	}
}

// TestLegacyMetaChecksumFallback: metadata written before per-stripe
// sums existed (StripeSums nil) still fails corrupt full reads via the
// whole-object chain, and the failing stream purges what it cached.
func TestLegacyMetaChecksumFallback(t *testing.T) {
	b := newTestBroker(t, Config{StripeBytes: 1024, CacheBytes: 1 << 20})
	e := b.Engine(0)
	payload := testPayload(4 * 1024)
	meta, err := e.Put(ctx, "c", "k", payload, PutOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite the stored metadata without stripe sums, as a pre-PR-4
	// version would have recorded it.
	legacy := meta
	legacy.StripeSums = nil
	v, err := encodeMeta(legacy, b.Clock().Timestamp())
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Metadata().Put(e.Datacenter(), RowKey("c", "k"), v); err != nil {
		t.Fatal(err)
	}
	// A healthy legacy read passes the whole-object chain but fills no
	// cache: without per-stripe sums there is no checksum that could
	// vouch for an individual cached stripe.
	got, _, err := e.Get(ctx, "c", "k")
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("healthy legacy read: %v", err)
	}
	if c := b.Caches().Datacenter(e.Datacenter()); c != nil && c.Len() != 0 {
		t.Fatalf("legacy read cached %d unverifiable stripes", c.Len())
	}
	corruptStripe(t, b, meta, 2)

	for i := 0; i < 2; i++ {
		if _, _, err := e.Get(ctx, "c", "k"); !errors.Is(err, ErrChecksum) {
			t.Fatalf("legacy read %d of corrupt object = %v, want ErrChecksum", i, err)
		}
		// The condemned stream's cache fills must have been purged.
		if c := b.Caches().Datacenter(e.Datacenter()); c != nil && c.Len() != 0 {
			t.Fatalf("read %d left %d condemned stripes cached", i, c.Len())
		}
	}
}

// TestSlowReaderCannotPoisonNewVersion is the regression test for the
// invalidate-then-fill race: a reader still streaming the old version
// when a Put commits a new one keeps filling the cache — but under the
// old version's keys, so reads of the new version can never be served
// stale stripes.
func TestSlowReaderCannotPoisonNewVersion(t *testing.T) {
	b := newTestBroker(t, Config{StripeBytes: 1024, CacheBytes: 1 << 20})
	e := b.Engine(0)
	v1 := testPayload(4 * 1024)
	if _, err := e.Put(ctx, "c", "k", v1, PutOptions{}); err != nil {
		t.Fatal(err)
	}
	// Open a stream of v1 (first stripe fetched eagerly), then commit
	// v2 while the stream is still in flight.
	rc, _, err := e.GetReader(ctx, "c", "k")
	if err != nil {
		t.Fatal(err)
	}
	v2 := bytes.Repeat([]byte("NEWVERSION!!"), 512) // 6 KiB, different layout
	if _, err := e.Put(ctx, "c", "k", v2, PutOptions{}); err != nil {
		t.Fatal(err)
	}
	// The v1 stream drains after the invalidation, re-filling the cache
	// with v1 stripes — the race the versioned keys exist for. The old
	// chunks are deleted by the update, so the drain may also fail;
	// either way it must not poison v2's reads.
	io.Copy(io.Discard, rc) //nolint:errcheck
	rc.Close()

	got, _, err := e.Get(ctx, "c", "k")
	if err != nil || !bytes.Equal(got, v2) {
		t.Fatalf("read after overlapped update: %v (%d bytes, want v2's %d)", err, len(got), len(v2))
	}
	// And the repeat read — now cache-served — must still be v2.
	got, _, err = e.Get(ctx, "c", "k")
	if err != nil || !bytes.Equal(got, v2) {
		t.Fatalf("cached read after overlapped update: %v", err)
	}
}

// TestSequentialModeMatchesParallel pins the knob semantics: negative
// knobs select the sequential, unpipelined path and it still serves
// correct bytes.
func TestSequentialModeMatchesParallel(t *testing.T) {
	b := newTestBroker(t, Config{StripeBytes: 1024, ReadParallelism: -1, PrefetchStripes: -1})
	e := b.Engine(0)
	payload := testPayload(8*1024 + 5)
	if _, err := e.Put(ctx, "c", "k", payload, PutOptions{}); err != nil {
		t.Fatal(err)
	}
	got, _, err := e.Get(ctx, "c", "k")
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("sequential read: %v", err)
	}
	if rs := b.ReadStats(); rs.PrefetchedStripes != 0 {
		t.Fatalf("sequential mode prefetched %d stripes", rs.PrefetchedStripes)
	}
}

// TestPrefetchPipelineDelivers asserts the pipeline actually runs ahead
// of the consumer under default knobs.
func TestPrefetchPipelineDelivers(t *testing.T) {
	b := newTestBroker(t, Config{StripeBytes: 1024})
	e := b.Engine(0)
	if _, err := e.Put(ctx, "c", "k", testPayload(8*1024), PutOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Get(ctx, "c", "k"); err != nil {
		t.Fatal(err)
	}
	if rs := b.ReadStats(); rs.PrefetchedStripes == 0 {
		t.Fatal("prefetcher delivered no stripes on a multi-stripe read")
	}
}

// TestConcurrentMultiStripeReads hammers one hot object from many
// goroutines under the parallel pipeline; run with -race this guards
// the fan-out and cache-fill synchronization.
func TestConcurrentMultiStripeReads(t *testing.T) {
	b := newTestBroker(t, Config{StripeBytes: 1024, CacheBytes: 1 << 20})
	e := b.Engine(0)
	payload := testPayload(8 * 1024)
	if _, err := e.Put(ctx, "c", "k", payload, PutOptions{}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				got, _, err := e.Get(ctx, "c", "k")
				if err != nil || !bytes.Equal(got, payload) {
					t.Errorf("concurrent read: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestReadBufferBudgetBoundsConcurrentGets is the MaxReadBufferBytes
// satellite: with a 3-stripe budget and many concurrent large GETs, the
// broker must never hold more than 3 fetched stripe buffers at once,
// deliver every byte intact, and return every slot when the streams
// drain.
func TestReadBufferBudgetBoundsConcurrentGets(t *testing.T) {
	const stripe = 16 << 10
	b := newTestBroker(t, Config{
		StripeBytes:        stripe,
		MaxReadBufferBytes: 3 * stripe, // 3 slots across the whole broker
		PrefetchStripes:    2,
	})
	const objects = 6
	payloads := make([][]byte, objects)
	for i := range payloads {
		payloads[i] = bytes.Repeat([]byte{byte('a' + i)}, 8*stripe)
		key := fmt.Sprintf("o%d", i)
		if _, err := b.Engine(0).Put(ctx, "c", key, payloads[i], PutOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	b.FlushStats()

	var wg sync.WaitGroup
	errs := make(chan error, objects)
	for i := 0; i < objects; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rc, _, err := b.Engine(i).GetReader(ctx, "c", fmt.Sprintf("o%d", i))
			if err != nil {
				errs <- err
				return
			}
			defer rc.Close()
			data, err := io.ReadAll(rc)
			if err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(data, payloads[i]) {
				errs <- fmt.Errorf("object %d corrupted", i)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if peak := b.readBufPeak.Load(); peak < 1 || peak > 3 {
		t.Fatalf("buffered-stripe peak = %d, want within (0, 3]", peak)
	}
	// Every slot must return to the budget once the streams drain (the
	// prefetchers tear down asynchronously).
	deadline := time.Now().Add(2 * time.Second)
	for b.readBufInUse.Load() != 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if held := b.readBufInUse.Load(); held != 0 {
		t.Fatalf("%d stripe slots leaked after the streams drained", held)
	}
	if b.ReadStats().BufferedStripesPeak != b.readBufPeak.Load() {
		t.Fatal("BufferedStripesPeak not surfaced on ReadStats")
	}
}

// TestReadBufferBudgetReleasedOnEarlyClose closes a pipelined stream
// mid-flight: the slots held by the current stripe, the pipe buffer and
// the in-flight producers must all come back.
func TestReadBufferBudgetReleasedOnEarlyClose(t *testing.T) {
	const stripe = 16 << 10
	b := newTestBroker(t, Config{
		StripeBytes:        stripe,
		MaxReadBufferBytes: 4 * stripe,
		PrefetchStripes:    3,
	})
	payload := bytes.Repeat([]byte("z"), 12*stripe)
	if _, err := b.Engine(0).Put(ctx, "c", "big", payload, PutOptions{}); err != nil {
		t.Fatal(err)
	}
	rc, _, err := b.Engine(0).GetReader(ctx, "c", "big")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(rc, make([]byte, stripe/2)); err != nil {
		t.Fatal(err)
	}
	rc.Close()
	deadline := time.Now().Add(2 * time.Second)
	for b.readBufInUse.Load() != 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if held := b.readBufInUse.Load(); held != 0 {
		t.Fatalf("%d stripe slots leaked after early Close", held)
	}
}

// TestReadBufferBudgetUnbounded: a negative knob disables the budget
// entirely — no semaphore, no gauges.
func TestReadBufferBudgetUnbounded(t *testing.T) {
	b := newTestBroker(t, Config{StripeBytes: 16 << 10, MaxReadBufferBytes: -1})
	if b.bufSem != nil {
		t.Fatal("negative MaxReadBufferBytes must disable the budget")
	}
	payload := bytes.Repeat([]byte("u"), 64<<10)
	if _, err := b.Engine(0).Put(ctx, "c", "k", payload, PutOptions{}); err != nil {
		t.Fatal(err)
	}
	got, _, err := b.Engine(0).Get(ctx, "c", "k")
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("unbounded read failed: %v", err)
	}
	if b.readBufPeak.Load() != 0 {
		t.Fatal("unbounded mode must not touch the budget gauges")
	}
}
