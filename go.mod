module scalia

go 1.22
