package erasure

import (
	"errors"
	"fmt"
)

// Coder is a systematic (m,n) Reed–Solomon erasure coder: Encode splits
// data into m data chunks and n-m parity chunks; any m of the n chunks
// reconstruct the data. The rate r = m/n is the storage efficiency and the
// space overhead factor is 1/r, matching the paper's §II-A definitions.
//
// A Coder is immutable after construction and safe for concurrent use.
type Coder struct {
	m, n int
	// enc is the n x m systematic generator matrix: the top m rows are the
	// identity, so the first m chunks are the raw data stripes.
	enc matrix
}

// Common parameter errors.
var (
	ErrInvalidParams = errors.New("erasure: require 1 <= m <= n <= 256")
	ErrTooFewChunks  = errors.New("erasure: fewer than m chunks available")
	ErrChunkCount    = errors.New("erasure: wrong number of chunks")
	ErrChunkSize     = errors.New("erasure: chunks have inconsistent sizes")
	ErrShortData     = errors.New("erasure: data shorter than declared size")
)

// New returns an (m,n) coder. m is the reconstruction threshold (the
// paper's m / Algorithm 2 output); n is the total number of chunks, one
// per selected provider.
func New(m, n int) (*Coder, error) {
	if m < 1 || n < m || n > fieldSize {
		return nil, fmt.Errorf("%w: m=%d n=%d", ErrInvalidParams, m, n)
	}
	// Build the systematic generator: take the n x m Vandermonde matrix and
	// normalize its top m x m block to the identity by multiplying with the
	// block's inverse. Every m-row subset of the result stays invertible.
	v := vandermonde(n, m)
	top := v.subMatrix(0, 0, m, m)
	topInv, err := top.invert()
	if err != nil {
		// Vandermonde top blocks are always invertible; this is unreachable
		// for valid parameters.
		return nil, err
	}
	return &Coder{m: m, n: n, enc: v.mul(topInv)}, nil
}

// M returns the reconstruction threshold.
func (c *Coder) M() int { return c.m }

// N returns the total chunk count.
func (c *Coder) N() int { return c.n }

// Rate returns the code rate m/n.
func (c *Coder) Rate() float64 { return float64(c.m) / float64(c.n) }

// Overhead returns the storage expansion factor n/m (the paper's 1/r).
func (c *Coder) Overhead() float64 { return float64(c.n) / float64(c.m) }

// ChunkSize returns the per-chunk size for an object of dataLen bytes.
func (c *Coder) ChunkSize(dataLen int) int {
	return (dataLen + c.m - 1) / c.m
}

// Encode splits data into n chunks of equal size ceil(len(data)/m).
// The data is padded with zeros to a multiple of the chunk size; callers
// must remember the original length (Scalia stores it in object metadata)
// and pass it to Decode.
func (c *Coder) Encode(data []byte) ([][]byte, error) {
	return c.encode(data, nil, nil)
}

// encode is the shared core of Encode and EncodePooled: backing and
// chunks are reused when their capacity suffices (their contents may be
// arbitrary — every byte of the output is written below) and replaced
// with fresh allocations otherwise.
func (c *Coder) encode(data, backing []byte, chunks [][]byte) ([][]byte, error) {
	size := c.ChunkSize(len(data))
	if size == 0 {
		size = 1 // zero-length objects still produce 1-byte chunks
	}
	if need := c.n * size; cap(backing) < need {
		backing = make([]byte, need)
	} else {
		backing = backing[:need]
	}
	if cap(chunks) < c.n {
		chunks = make([][]byte, c.n)
	} else {
		chunks = chunks[:c.n]
	}
	for i := range chunks {
		chunks[i] = backing[i*size : (i+1)*size]
	}
	// Data stripes: rows 0..m-1 are plain copies (systematic code). The
	// tail past len(data) is the zero padding — cleared explicitly since
	// pooled backing arrives dirty.
	for i := 0; i < c.m; i++ {
		var n int
		if lo := i * size; lo < len(data) {
			hi := lo + size
			if hi > len(data) {
				hi = len(data)
			}
			n = copy(chunks[i], data[lo:hi])
		}
		clear(chunks[i][n:])
	}
	// Parity stripes: rows m..n-1 are linear combinations of the data
	// rows. The first term assigns rather than accumulates, so parity
	// rows of dirty pooled backing need no pre-zeroing either.
	for r := c.m; r < c.n; r++ {
		row := c.enc.row(r)
		mulSlice(row[0], chunks[0], chunks[r])
		for k := 1; k < c.m; k++ {
			mulAddSlice(row[k], chunks[k], chunks[r])
		}
	}
	return chunks, nil
}

// Reconstruct fills in missing (nil) chunks in place. chunks must have
// length n; at least m entries must be non-nil and of equal size.
func (c *Coder) Reconstruct(chunks [][]byte) error {
	if len(chunks) != c.n {
		return fmt.Errorf("%w: got %d want %d", ErrChunkCount, len(chunks), c.n)
	}
	size := -1
	present := 0
	for _, ch := range chunks {
		if ch == nil {
			continue
		}
		present++
		if size < 0 {
			size = len(ch)
		} else if len(ch) != size {
			return ErrChunkSize
		}
	}
	if present < c.m {
		return fmt.Errorf("%w: have %d need %d", ErrTooFewChunks, present, c.m)
	}
	if present == c.n {
		return nil // nothing missing
	}
	// Build the m x m decode matrix from the generator rows of m surviving
	// chunks, invert it, and regenerate the data stripes.
	sub := newMatrix(c.m, c.m)
	subChunks := make([][]byte, c.m)
	got := 0
	for i := 0; i < c.n && got < c.m; i++ {
		if chunks[i] != nil {
			copy(sub.row(got), c.enc.row(i))
			subChunks[got] = chunks[i]
			got++
		}
	}
	dec, err := sub.invert()
	if err != nil {
		return err
	}
	// Recover missing data stripes first.
	data := make([][]byte, c.m)
	for i := 0; i < c.m; i++ {
		if chunks[i] != nil {
			data[i] = chunks[i]
			continue
		}
		out := make([]byte, size)
		row := dec.row(i)
		for k := 0; k < c.m; k++ {
			mulAddSlice(row[k], subChunks[k], out)
		}
		data[i] = out
		chunks[i] = out
	}
	// Then regenerate any missing parity stripes from the data stripes.
	for r := c.m; r < c.n; r++ {
		if chunks[r] != nil {
			continue
		}
		out := make([]byte, size)
		row := c.enc.row(r)
		for k := 0; k < c.m; k++ {
			mulAddSlice(row[k], data[k], out)
		}
		chunks[r] = out
	}
	return nil
}

// Decode reconstructs missing chunks if needed and reassembles the
// original object of length size.
func (c *Coder) Decode(chunks [][]byte, size int) ([]byte, error) {
	if err := c.Reconstruct(chunks); err != nil {
		return nil, err
	}
	chunkSize := len(chunks[0])
	if c.m*chunkSize < size {
		return nil, fmt.Errorf("%w: chunks hold %d bytes, need %d",
			ErrShortData, c.m*chunkSize, size)
	}
	out := make([]byte, 0, size)
	for i := 0; i < c.m && len(out) < size; i++ {
		need := size - len(out)
		if need > chunkSize {
			need = chunkSize
		}
		out = append(out, chunks[i][:need]...)
	}
	return out, nil
}

// Verify checks that the parity chunks are consistent with the data
// chunks. All n chunks must be present.
func (c *Coder) Verify(chunks [][]byte) (bool, error) {
	if len(chunks) != c.n {
		return false, fmt.Errorf("%w: got %d want %d", ErrChunkCount, len(chunks), c.n)
	}
	size := len(chunks[0])
	for _, ch := range chunks {
		if ch == nil {
			return false, ErrTooFewChunks
		}
		if len(ch) != size {
			return false, ErrChunkSize
		}
	}
	buf := make([]byte, size)
	for r := c.m; r < c.n; r++ {
		for i := range buf {
			buf[i] = 0
		}
		row := c.enc.row(r)
		for k := 0; k < c.m; k++ {
			mulAddSlice(row[k], chunks[k], buf)
		}
		for i := range buf {
			if buf[i] != chunks[r][i] {
				return false, nil
			}
		}
	}
	return true, nil
}
