package stats

import (
	"crypto/md5"
	"encoding/hex"
	"fmt"
	"sync"
)

// DiscretizeSize rounds an object size up to the closest megabyte, the
// paper's discretize() example. Sizes below 1 MB round to 1.
func DiscretizeSize(sizeBytes int64) int64 {
	const mb = 1 << 20
	if sizeBytes <= 0 {
		return 0
	}
	return (sizeBytes + mb - 1) / mb
}

// ClassKey derives the class of an object from its metadata:
// C(obj) = MD5(obj[mime] | discretize(obj[size])) (paper §III-A1).
func ClassKey(mime string, sizeBytes int64) string {
	h := md5.Sum([]byte(fmt.Sprintf("%s|%d", mime, DiscretizeSize(sizeBytes))))
	return hex.EncodeToString(h[:])
}

// ClassRecord accumulates the resources used by all objects of one class
// (bandwidth in/out, operations, deletion time, ...; Fig. 6 row) plus the
// class lifetime distribution. Per-object-period averages seed the first
// placement of new objects of the class.
type ClassRecord struct {
	mu sync.RWMutex

	objectPeriods int64 // object×period observations folded in
	reads         int64
	writes        int64
	bytesOut      int64
	bytesIn       int64
	storageBytes  int64 // running sum, averaged over observations

	lifetimes *LifetimeDist
}

func newClassRecord() *ClassRecord {
	return &ClassRecord{lifetimes: NewLifetimeDist(0)}
}

// ObserveSample folds one object's sampling-period statistics into the
// class aggregate.
func (c *ClassRecord) ObserveSample(s Sample) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.objectPeriods++
	c.reads += s.Reads
	c.writes += s.Writes
	c.bytesOut += s.BytesOut
	c.bytesIn += s.BytesIn
	c.storageBytes += s.StorageBytes
}

// ObserveDeletion records a completed object lifetime (hours).
func (c *ClassRecord) ObserveDeletion(lifetimeHours float64) {
	c.lifetimes.Observe(lifetimeHours)
}

// Lifetimes exposes the class lifetime distribution.
func (c *ClassRecord) Lifetimes() *LifetimeDist { return c.lifetimes }

// ExpectedSummary returns the statistically expected per-period resource
// usage of a new object of this class — the input to the first-placement
// decision (Fig. 6). ok is false when the class has no observations yet.
func (c *ClassRecord) ExpectedSummary() (Summary, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.objectPeriods == 0 {
		return Summary{}, false
	}
	n := float64(c.objectPeriods)
	return Summary{
		Periods:      1,
		Reads:        float64(c.reads) / n,
		Writes:       float64(c.writes) / n,
		BytesOut:     float64(c.bytesOut) / n,
		BytesIn:      float64(c.bytesIn) / n,
		StorageBytes: float64(c.storageBytes) / n,
	}, true
}

// ClassStats is the per-class statistics table, keyed by ClassKey. It is
// refreshed incrementally rather than by the paper's periodic map-reduce
// job; RefreshJob provides the batch path as well.
type ClassStats struct {
	mu      sync.RWMutex
	classes map[string]*ClassRecord
}

// NewClassStats returns an empty class-statistics table.
func NewClassStats() *ClassStats {
	return &ClassStats{classes: make(map[string]*ClassRecord)}
}

// Class returns the record for a class key, creating it if needed.
func (cs *ClassStats) Class(key string) *ClassRecord {
	cs.mu.RLock()
	rec, ok := cs.classes[key]
	cs.mu.RUnlock()
	if ok {
		return rec
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if rec, ok = cs.classes[key]; ok {
		return rec
	}
	rec = newClassRecord()
	cs.classes[key] = rec
	return rec
}

// Lookup returns the record for a class key without creating it.
func (cs *ClassStats) Lookup(key string) (*ClassRecord, bool) {
	cs.mu.RLock()
	defer cs.mu.RUnlock()
	rec, ok := cs.classes[key]
	return rec, ok
}

// Len returns the number of known classes.
func (cs *ClassStats) Len() int {
	cs.mu.RLock()
	defer cs.mu.RUnlock()
	return len(cs.classes)
}

// ExpectedTTL predicts the time left to live (hours) for an object of the
// given class at the given age. ok is false with no usable distribution.
func (cs *ClassStats) ExpectedTTL(key string, ageHours float64) (float64, bool) {
	rec, ok := cs.Lookup(key)
	if !ok {
		return 0, false
	}
	return rec.Lifetimes().ExpectedTTL(ageHours)
}
