package workload

import (
	"math"
	"strings"
	"testing"
)

func totalReads(s Scenario) int64 {
	var total int64
	for p := 0; p < s.Periods(); p++ {
		for _, l := range s.Load(p) {
			total += l.Reads
		}
	}
	return total
}

func TestMix(t *testing.T) {
	a, b := NewSlashdot(), NewZipf(1)
	m := Mix(a, b)
	if m.Periods() != a.Periods() { // slashdot (180) outlasts zipf (168)
		t.Fatalf("Periods = %d, want %d", m.Periods(), a.Periods())
	}
	// Period 0 carries both parts' creations under distinct prefixes.
	prefixes := map[string]bool{}
	for _, l := range m.Load(0) {
		prefixes[l.Object[:strings.Index(l.Object, "/")+1]] = true
	}
	if !prefixes["p0/"] || !prefixes["p1/"] {
		t.Fatalf("missing part namespaces: %v", prefixes)
	}
	// Past zipf's end only slashdot contributes.
	for _, l := range m.Load(175) {
		if !strings.HasPrefix(l.Object, "p0/") {
			t.Fatalf("late period leaks finished part: %v", l)
		}
	}
	if got, want := totalReads(m), totalReads(a)+totalReads(b); got != want {
		t.Fatalf("mixed reads = %d, want %d", got, want)
	}
}

func TestMixSelf(t *testing.T) {
	m := Mix(NewSlashdot(), NewSlashdot())
	seen := map[string]bool{}
	for _, l := range m.Load(0) {
		if seen[l.Object] {
			t.Fatalf("self-mix collides on %q", l.Object)
		}
		seen[l.Object] = true
	}
	if len(seen) != 2 {
		t.Fatalf("want 2 namespaced objects, got %d", len(seen))
	}
}

func TestConcat(t *testing.T) {
	a, b := NewSlashdot(), NewSlashdot()
	c := Concat(a, b)
	if c.Periods() != 360 {
		t.Fatalf("Periods = %d", c.Periods())
	}
	first, second := c.Load(0), c.Load(180)
	if len(first) != 1 || !strings.HasPrefix(first[0].Object, "p0/") || !first[0].Created {
		t.Fatalf("part 0 creation wrong: %+v", first)
	}
	if len(second) != 1 || !strings.HasPrefix(second[0].Object, "p1/") || !second[0].Created {
		t.Fatalf("part 1 creation wrong: %+v", second)
	}
	// Part 1's spike replays at its own offset.
	if got := c.Load(180 + 50); len(got) != 1 || got[0].Reads != a.ReadsAt(50) {
		t.Fatalf("part 1 spike = %+v", got)
	}
}

func TestShift(t *testing.T) {
	s := Shift(NewSlashdot(), 24)
	if s.Periods() != 204 {
		t.Fatalf("Periods = %d", s.Periods())
	}
	for p := 0; p < 24; p++ {
		if len(s.Load(p)) != 0 {
			t.Fatalf("load during the shift at %d", p)
		}
	}
	got := s.Load(24)
	if len(got) != 1 || !got[0].Created {
		t.Fatalf("creation must move to period 24: %+v", got)
	}
	if s.Load(24 + 50)[0].Reads != NewSlashdot().ReadsAt(50) {
		t.Fatal("shifted loads must replay the original offsets")
	}
}

func TestScale(t *testing.T) {
	base := NewSlashdot()
	doubled := Scale(base, 2)
	if got, want := totalReads(doubled), 2*totalReads(base); got != want {
		t.Fatalf("doubled reads = %d, want %d", got, want)
	}
	// Fractional factors keep aggregate volume via the rounding carry.
	gallery := NewGallery()
	third := Scale(gallery, 1.0/3)
	got, want := totalReads(third), totalReads(gallery)/3
	if got < want-int64(gallery.Periods()) || got > want+int64(gallery.Periods()) {
		t.Fatalf("third reads = %d, want ~%d", got, want)
	}
	// Writes and lifecycle flags pass through.
	if l := doubled.Load(0); len(l) != 1 || l[0].Writes != 1 || !l[0].Created {
		t.Fatalf("scale must not touch writes: %+v", l)
	}
	// Negative and NaN factors clamp to zero traffic.
	if got := totalReads(Scale(base, -2)); got != 0 {
		t.Fatalf("negative factor reads = %d", got)
	}
	if got := totalReads(Scale(base, math.NaN())); got != 0 {
		t.Fatalf("NaN factor reads = %d", got)
	}
}

func TestScaleIdentity(t *testing.T) {
	// Scale(s, 1) must be the identity even for records that carry no
	// traffic — storage-only presence and lifecycle flags included.
	in := `{"format":"scalia-workload-trace","version":1,"name":"x","periods":3}` + "\n" +
		`{"p":0,"obj":"a","size":9,"writes":1,"created":true}` + "\n" +
		`{"p":1,"obj":"a","size":9}` + "\n" + // storage-only record
		`{"p":2,"obj":"a","size":9,"deleted":true}` + "\n"
	tr, err := Import(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if !sameScenario(Scale(tr, 1), tr) {
		t.Fatal("Scale(s, 1) must pass every record through unchanged")
	}
	for _, sc := range []Scenario{NewSlashdot(), NewGallery(), NewChurn(3)} {
		if !sameScenario(Scale(sc, 1), sc) {
			t.Fatalf("%s: Scale(s, 1) not identity", sc.Name())
		}
	}
}

func TestTruncate(t *testing.T) {
	tr := Truncate(NewSlashdot(), 50)
	if tr.Periods() != 50 {
		t.Fatalf("Periods = %d", tr.Periods())
	}
	if len(tr.Load(60)) != 0 {
		t.Fatal("loads past the cut must vanish")
	}
	if Truncate(NewSlashdot(), 999).Periods() != 180 {
		t.Fatal("truncate cannot extend a scenario")
	}
}
