package workload

import (
	"math"
	"testing"

	"scalia/internal/trend"
)

func TestSlashdotShape(t *testing.T) {
	s := NewSlashdot()
	if s.Periods() != 180 {
		t.Fatalf("Periods = %d", s.Periods())
	}
	// Quiet before hour 48.
	for p := 0; p < 48; p++ {
		if s.ReadsAt(p) != 0 {
			t.Fatalf("reads at quiet hour %d = %d", p, s.ReadsAt(p))
		}
	}
	// Ramp reaches the peak within 3 hours.
	if s.ReadsAt(50) != 150 {
		t.Fatalf("peak = %d, want 150", s.ReadsAt(50))
	}
	// Decay at 2/hour afterwards.
	if s.ReadsAt(51) != 148 || s.ReadsAt(52) != 146 {
		t.Fatalf("decay = %d, %d", s.ReadsAt(51), s.ReadsAt(52))
	}
	// Never negative.
	for p := 0; p < s.Periods(); p++ {
		if s.ReadsAt(p) < 0 {
			t.Fatalf("negative reads at %d", p)
		}
	}
	// The creation write happens exactly once.
	writes := 0
	for p := 0; p < s.Periods(); p++ {
		for _, l := range s.Load(p) {
			writes += int(l.Writes)
			if l.Created && p != 0 {
				t.Fatal("creation must be at period 0")
			}
		}
	}
	if writes != 1 {
		t.Fatalf("total writes = %d", writes)
	}
}

func TestWebsiteDailyVolume(t *testing.T) {
	w := NewWebsite()
	series := w.HourlySeries(24)
	total := 0.0
	for _, v := range series {
		total += v
	}
	if math.Abs(total-2500) > 125 { // integral approximation tolerance
		t.Fatalf("daily volume = %v, want ~2500", total)
	}
	// The pattern must actually be diurnal: max/min ratio well above 1.
	min, max := math.MaxFloat64, 0.0
	for _, v := range series {
		min = math.Min(min, v)
		max = math.Max(max, v)
	}
	if max/min < 2 {
		t.Fatalf("flat pattern: min=%v max=%v", min, max)
	}
}

func TestWebsiteDeterministic(t *testing.T) {
	a := NewWebsite().HourlySeries(100)
	b := NewWebsite().HourlySeries(100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("trace must be deterministic")
		}
	}
}

func TestWebsiteDailySeriesWeekly(t *testing.T) {
	w := NewWebsite()
	days := w.DailySeries(14)
	if len(days) != 14 {
		t.Fatalf("len = %d", len(days))
	}
	// Weekends are quieter than weekdays.
	if days[5] >= days[2] || days[6] >= days[2] {
		t.Fatalf("weekend %v,%v not below weekday %v", days[5], days[6], days[2])
	}
}

func TestGalleryWeightsSkewed(t *testing.T) {
	g := NewGallery()
	if len(g.weights) != 200 {
		t.Fatalf("weights = %d", len(g.weights))
	}
	sum := 0.0
	for _, w := range g.weights {
		sum += w
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("weights sum = %v", sum)
	}
	if g.weights[0] <= g.weights[99] {
		t.Fatal("popularity must be decreasing in rank")
	}
	// Pareto shape 1: the top pictures dominate the traffic.
	top10 := 0.0
	for i := 0; i < 10; i++ {
		top10 += g.weights[i]
	}
	if top10 < 0.3 {
		t.Fatalf("top-10 share = %v, want heavy skew", top10)
	}
}

func TestGalleryDecayMonotonic(t *testing.T) {
	// The popularity decay across ranks must be strictly monotonic: it is
	// what produces the clean hot/cold tiering of Figs. 15/16.
	g := NewGallery()
	for i := 1; i < len(g.weights); i++ {
		if g.weights[i] >= g.weights[i-1] {
			t.Fatalf("weight[%d]=%v >= weight[%d]=%v", i, g.weights[i], i-1, g.weights[i-1])
		}
	}
}

func TestWebsiteTrendDetections(t *testing.T) {
	// Figs. 8 and 9: the synthesized website series must trip the paper's
	// momentum detector (ma 3, limit 0.1) at the diurnal edges — twice a
	// day on the hourly series — and on the weekly/burst structure of the
	// daily series. The series are deterministic, so the counts are exact.
	hourly := trend.Detect(NewWebsite().HourlySeries(7*24), 3, 0.1)
	if len(hourly) != 14 {
		t.Fatalf("hourly detections = %d (%v), want 14 (2/day over 7 days)", len(hourly), hourly)
	}
	daily := trend.Detect(NewWebsite().DailySeries(90), 3, 0.1)
	if len(daily) != 28 {
		t.Fatalf("daily detections = %d (%v), want 28", len(daily), daily)
	}
	// Sparseness is the whole point of the gate: far fewer recomputation
	// triggers than periods.
	if len(hourly) > 7*24/4 || len(daily) > 90/2 {
		t.Fatal("trend gate too chatty on the website series")
	}
}

func TestGalleryVolumePreserved(t *testing.T) {
	g := NewGallery()
	// The deterministic rounding must not lose volume: total reads over a
	// day tracks the website volume.
	var reads int64
	for p := 0; p < 24; p++ {
		for _, l := range g.Load(p) {
			reads += l.Reads
		}
	}
	if reads < 2200 || reads > 2700 {
		t.Fatalf("daily gallery reads = %d, want ~2500", reads)
	}
}

func TestGalleryCreationOnlyAtZero(t *testing.T) {
	g := NewGallery()
	created := 0
	for _, l := range g.Load(0) {
		if l.Created {
			created++
		}
	}
	if created != 200 {
		t.Fatalf("created at 0 = %d, want 200", created)
	}
	for _, l := range g.Load(5) {
		if l.Created || l.Writes > 0 {
			t.Fatal("no creations after period 0")
		}
	}
}

func TestGalleryObjectNames(t *testing.T) {
	g := NewGallery()
	if g.PictureName(0) != "pictures/img000" || g.PictureName(123) != "pictures/img123" {
		t.Fatalf("names: %q %q", g.PictureName(0), g.PictureName(123))
	}
}

func TestBackupStream(t *testing.T) {
	b := NewBackup(600)
	count := 0
	for p := 0; p < b.Periods(); p++ {
		loads := b.Load(p)
		if p%5 == 0 {
			if len(loads) != 1 || !loads[0].Created || loads[0].Size != 40<<20 {
				t.Fatalf("period %d: %+v", p, loads)
			}
			count++
		} else if len(loads) != 0 {
			t.Fatalf("unexpected load at %d", p)
		}
	}
	if count != 120 {
		t.Fatalf("objects = %d, want 120", count)
	}
	if b.ObjectName(45) != "backups/obj00045" {
		t.Fatalf("name = %q", b.ObjectName(45))
	}
}
