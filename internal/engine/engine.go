package engine

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"scalia/internal/cloud"
	"scalia/internal/core"
	"scalia/internal/erasure"
	"scalia/internal/metadata"
	"scalia/internal/stats"
)

// Engine errors.
var (
	ErrObjectNotFound  = errors.New("engine: object not found")
	ErrChecksum        = errors.New("engine: checksum mismatch after reconstruction")
	ErrNotEnoughChunks = errors.New("engine: not enough reachable chunks to reconstruct")
)

// Engine is one stateless broker engine. All state lives in the shared
// metadata, cache and statistics layers, so engines scale by addition
// (§III-A). Each engine belongs to one datacenter and serves requests
// against that datacenter's metadata node and cache.
type Engine struct {
	id    string
	dc    string
	b     *Broker
	agent *stats.Agent

	mu    sync.Mutex
	alive bool
}

// ID returns the engine identifier.
func (e *Engine) ID() string { return e.id }

// Datacenter returns the engine's datacenter.
func (e *Engine) Datacenter() string { return e.dc }

// SetAlive marks the engine up or down (for leader-election tests and
// failure injection).
func (e *Engine) SetAlive(up bool) {
	e.mu.Lock()
	e.alive = up
	e.mu.Unlock()
}

// Alive reports whether the engine participates in optimization.
func (e *Engine) Alive() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.alive
}

// PutOptions carries optional write parameters.
type PutOptions struct {
	MIME string
	// TTLHours is the user's lifetime hint (§III-A: "an indication of the
	// object lifetime may be provided by the end user at write time").
	TTLHours float64
	// Rule overrides rule resolution for this object.
	Rule *core.Rule
}

// objectName joins container and key into the statistics identity.
func objectName(container, key string) string { return container + "/" + key }

// Put stores (or updates) an object: it picks the best provider set for
// the object's class and rule, erasure-codes the payload into chunks,
// writes them under a fresh UUID-derived storage key, records metadata
// via MVCC, invalidates caches and logs statistics (§III-D1).
func (e *Engine) Put(container, key string, data []byte, opts PutOptions) (ObjectMeta, error) {
	if container == "" || key == "" {
		return ObjectMeta{}, fmt.Errorf("engine: container and key are required")
	}
	class := stats.ClassKey(opts.MIME, int64(len(data)))
	rule := e.b.rules.Resolve(container, key, class)
	if opts.Rule != nil {
		rule = *opts.Rule
	}
	obj := objectName(container, key)
	now := e.b.clock.Period()

	load := e.writeLoad(obj, class, int64(len(data)))
	res, err := e.placeWithRetry(rule, load, int64(len(data)))
	if err != nil {
		return ObjectMeta{}, err
	}

	// Fetch previous version (if any) for post-write cleanup.
	row := RowKey(container, key)
	node := e.b.meta.Store(e.dc)
	var prev *ObjectMeta
	if v, losers, err := node.Get(row); err == nil {
		if m, err := decodeMeta(v); err == nil {
			prev = &m
		}
		e.cleanupVersions(losers)
	}

	uuid := NewUUID()
	meta := ObjectMeta{
		Container: container,
		Key:       key,
		MIME:      opts.MIME,
		Size:      int64(len(data)),
		Checksum:  Checksum(data),
		RuleName:  rule.Name,
		Class:     class,
		SKey:      StorageKey(container, key, uuid),
		M:         res.Placement.M,
		UUID:      uuid,
		TTLHours:  opts.TTLHours,
		CreatedAt: now,
	}
	if prev != nil {
		meta.CreatedAt = prev.CreatedAt
	}
	if err := e.writeChunks(&meta, res.Placement, data); err != nil {
		return ObjectMeta{}, err
	}

	ts := e.b.clock.Timestamp()
	version, err := encodeMeta(meta, ts)
	if err != nil {
		return ObjectMeta{}, err
	}
	if err := e.b.meta.Put(e.dc, row, version); err != nil {
		return ObjectMeta{}, fmt.Errorf("engine: metadata write: %w", err)
	}
	if err := e.b.writeIndex(e.dc, container, key, uuid, ts); err != nil {
		return ObjectMeta{}, err
	}

	// Update is in place: discard the superseded version's chunks.
	if prev != nil {
		e.deleteChunks(*prev)
	}
	e.b.caches.InvalidateAll(obj)
	e.b.setPlacement(obj, res.Placement)
	e.agent.Log(stats.Event{
		Object: obj, Class: class, Kind: stats.EventWrite,
		Bytes: int64(len(data)), StorageBytes: int64(len(data)), Period: now,
	})
	return meta, nil
}

// writeLoad builds the pricing summary for a write: the object's own
// history when present, otherwise the class expectation (Fig. 6),
// otherwise just this write.
func (e *Engine) writeLoad(obj, class string, size int64) stats.Summary {
	if h := e.b.statsDB.History(obj); h != nil && h.Len() > 0 {
		now := e.b.clock.Period()
		d := e.decisionWindow(obj, now)
		sum := h.Summary(now, d)
		sum.StorageBytes = float64(size)
		return sum
	}
	if rec, ok := e.b.statsDB.Classes().Lookup(class); ok {
		if sum, ok := rec.ExpectedSummary(); ok {
			sum.StorageBytes = float64(size)
			return sum
		}
	}
	return stats.Summary{
		Periods: 1, Writes: 1,
		BytesIn: float64(size), StorageBytes: float64(size),
	}
}

// placeWithRetry plans the placement through the broker's shared
// planner, excluding providers that fail mid-write ("Scalia will choose
// the best placement that does not include the faulty provider",
// §III-D3). The common case is a single planner hit; a provider found
// unreachable after the decision (including one whose outage was
// injected directly on the backend, bypassing the registry's market
// epoch) drops to an ad-hoc search over the reduced market. The retry
// loop is bounded by the provider count.
func (e *Engine) placeWithRetry(rule core.Rule, load stats.Summary, size int64) (core.Result, error) {
	epoch, specs, free := e.b.market()
	planned := true
	for len(specs) > 0 {
		var res core.Result
		var err error
		if planned {
			res, err = e.b.planner.Best(epoch, specs, rule, load, size, free)
		} else {
			res, err = core.BestPlacement(specs, rule, load, core.Options{
				PeriodHours: e.b.cfg.PeriodHours,
				Pruned:      e.b.cfg.Pruned,
				FreeBytes:   free,
				ObjectBytes: size,
			})
		}
		if err != nil {
			return core.Result{}, err
		}
		// Verify reachability now (a provider may have gone down between
		// the snapshot and the placement decision).
		ok := true
		for _, spec := range res.Placement.Providers {
			if s, found := e.b.registry.Store(spec.Name); !found || !s.Available() {
				specs = removeSpec(specs, spec.Name)
				planned = false
				ok = false
				break
			}
		}
		if ok {
			return res, nil
		}
	}
	return core.Result{}, core.ErrNoProviders
}

// removeSpec returns specs without the named provider. It copies: the
// input may be the registry's shared market snapshot.
func removeSpec(specs []cloud.Spec, name string) []cloud.Spec {
	out := make([]cloud.Spec, 0, len(specs))
	for _, s := range specs {
		if s.Name != name {
			out = append(out, s)
		}
	}
	return out
}

// writeChunks encodes data with (m, n) from the placement and stores one
// chunk per provider; on an individual failure it returns an error (the
// caller's placement retry handles exclusion).
func (e *Engine) writeChunks(meta *ObjectMeta, p core.Placement, data []byte) error {
	coder, err := erasure.New(p.M, p.N())
	if err != nil {
		return err
	}
	chunks, err := coder.Encode(data)
	if err != nil {
		return err
	}
	meta.Chunks = make([]string, p.N())
	for i, spec := range p.Providers {
		store, ok := e.b.registry.Store(spec.Name)
		if !ok {
			return fmt.Errorf("engine: provider %s vanished", spec.Name)
		}
		if err := store.Put(ChunkKey(meta.SKey, i), chunks[i]); err != nil {
			// Roll back already written chunks; postpone if unreachable.
			for j := 0; j < i; j++ {
				e.deleteChunkAt(meta.Chunks[j], ChunkKey(meta.SKey, j))
			}
			return fmt.Errorf("engine: chunk write to %s: %w", spec.Name, err)
		}
		meta.Chunks[i] = spec.Name
	}
	return nil
}

// Get serves an object: cache first, otherwise reconstruct from the m
// cheapest reachable chunks, fill the cache and log the read (§III-D2).
func (e *Engine) Get(container, key string) ([]byte, ObjectMeta, error) {
	obj := objectName(container, key)
	row := RowKey(container, key)
	node := e.b.meta.Store(e.dc)
	v, losers, err := node.Get(row)
	if err != nil {
		if errors.Is(err, metadata.ErrRowNotFound) {
			return nil, ObjectMeta{}, ErrObjectNotFound
		}
		return nil, ObjectMeta{}, err
	}
	e.cleanupVersions(losers)
	meta, err := decodeMeta(v)
	if err != nil {
		return nil, ObjectMeta{}, err
	}
	now := e.b.clock.Period()

	if data, ok := e.b.caches.Get(e.dc, obj); ok {
		e.agent.Log(stats.Event{
			Object: obj, Class: meta.Class, Kind: stats.EventRead,
			Bytes: int64(len(data)), StorageBytes: meta.Size, Period: now,
		})
		return data, meta, nil
	}

	data, err := e.fetchAndDecode(meta)
	if err != nil {
		return nil, ObjectMeta{}, err
	}
	e.b.caches.Put(e.dc, obj, data)
	e.agent.Log(stats.Event{
		Object: obj, Class: meta.Class, Kind: stats.EventRead,
		Bytes: int64(len(data)), StorageBytes: meta.Size, Period: now,
	})
	return data, meta, nil
}

// fetchAndDecode retrieves m chunks, preferring the cheapest providers,
// and reassembles the object. Unreachable providers are skipped as long
// as m chunks remain (§III-D3 read-path error handling).
func (e *Engine) fetchAndDecode(meta ObjectMeta) ([]byte, error) {
	n := len(meta.Chunks)
	coder, err := erasure.New(meta.M, n)
	if err != nil {
		return nil, err
	}
	// Rank chunk indexes by marginal read cost at their provider.
	type ranked struct {
		idx  int
		cost float64
	}
	order := make([]ranked, 0, n)
	chunkGB := cloud.GB((meta.Size + int64(meta.M) - 1) / int64(meta.M))
	for i, name := range meta.Chunks {
		store, ok := e.b.registry.Store(name)
		if !ok || !store.Available() {
			continue
		}
		pr := store.Spec().Pricing
		order = append(order, ranked{idx: i, cost: chunkGB*pr.BandwidthOutGB + pr.OpsPer1000/1000})
	}
	if len(order) < meta.M {
		return nil, fmt.Errorf("%w: %d of %d providers reachable, need %d",
			ErrNotEnoughChunks, len(order), n, meta.M)
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].cost != order[j].cost {
			return order[i].cost < order[j].cost
		}
		return order[i].idx < order[j].idx
	})

	chunks := make([][]byte, n)
	got := 0
	for _, r := range order {
		if got >= meta.M {
			break
		}
		store, _ := e.b.registry.Store(meta.Chunks[r.idx])
		data, err := store.Get(ChunkKey(meta.SKey, r.idx))
		if err != nil {
			continue // provider failed between ranking and fetch
		}
		chunks[r.idx] = data
		got++
	}
	if got < meta.M {
		return nil, fmt.Errorf("%w: fetched %d, need %d", ErrNotEnoughChunks, got, meta.M)
	}
	data, err := coder.Decode(chunks, int(meta.Size))
	if err != nil {
		return nil, err
	}
	if Checksum(data) != meta.Checksum {
		return nil, ErrChecksum
	}
	return data, nil
}

// Delete removes an object: tombstones its metadata, deletes chunks
// (postponing those at faulty providers), invalidates caches and logs
// the deletion for lifetime statistics.
func (e *Engine) Delete(container, key string) error {
	obj := objectName(container, key)
	row := RowKey(container, key)
	node := e.b.meta.Store(e.dc)
	v, losers, err := node.Get(row)
	if err != nil {
		if errors.Is(err, metadata.ErrRowNotFound) {
			return ErrObjectNotFound
		}
		return err
	}
	e.cleanupVersions(losers)
	meta, err := decodeMeta(v)
	if err != nil {
		return err
	}
	ts := e.b.clock.Timestamp()
	if err := e.b.meta.Put(e.dc, row, metadata.Version{
		UUID: NewUUID(), Timestamp: ts, Deleted: true,
	}); err != nil {
		return err
	}
	if err := e.b.removeIndex(e.dc, container, key, NewUUID(), ts); err != nil {
		return err
	}
	e.deleteChunks(meta)
	e.b.caches.InvalidateAll(obj)
	e.b.dropPlacement(obj)
	e.agent.Log(stats.Event{
		Object: obj, Class: meta.Class, Kind: stats.EventDelete,
		StorageBytes: 0, Period: e.b.clock.Period(),
	})
	return nil
}

// List returns the keys stored in a container.
func (e *Engine) List(container string) ([]string, error) {
	return e.b.listContainer(e.dc, container)
}

// Head returns an object's metadata without transferring the payload.
func (e *Engine) Head(container, key string) (ObjectMeta, error) {
	node := e.b.meta.Store(e.dc)
	v, losers, err := node.Get(RowKey(container, key))
	if err != nil {
		if errors.Is(err, metadata.ErrRowNotFound) {
			return ObjectMeta{}, ErrObjectNotFound
		}
		return ObjectMeta{}, err
	}
	e.cleanupVersions(losers)
	return decodeMeta(v)
}

// deleteChunks removes every chunk of a version, postponing deletions at
// unreachable providers.
func (e *Engine) deleteChunks(meta ObjectMeta) {
	for i, name := range meta.Chunks {
		e.deleteChunkAt(name, ChunkKey(meta.SKey, i))
	}
}

func (e *Engine) deleteChunkAt(provider, chunkKey string) {
	store, ok := e.b.registry.Store(provider)
	if !ok {
		return // provider gone; chunks die with it
	}
	if err := store.Delete(chunkKey); err != nil {
		if errors.Is(err, cloud.ErrUnavailable) {
			e.b.enqueuePendingDelete(provider, chunkKey)
		}
		// Missing chunks are already gone; nothing to do.
	}
}

// cleanupVersions garbage-collects MVCC conflict losers: their chunks
// are removed from the storage providers (Fig. 10).
func (e *Engine) cleanupVersions(losers []metadata.Version) {
	for _, v := range losers {
		if v.Deleted {
			continue
		}
		if m, err := decodeMeta(v); err == nil {
			e.deleteChunks(m)
		}
	}
}

// decisionWindow returns the object's current decision period D_obj.
func (e *Engine) decisionWindow(obj string, now int64) int {
	e.b.mu.Lock()
	defer e.b.mu.Unlock()
	if dc, ok := e.b.decisions[obj]; ok {
		return dc.D()
	}
	return e.b.cfg.DecisionPeriod
}
