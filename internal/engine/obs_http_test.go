package engine

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"scalia/internal/cloud"
)

// promValues parses Prometheus text output into sample lines:
// "name{labels}" -> value. HELP/TYPE lines are skipped.
func promValues(t *testing.T, body string) map[string]float64 {
	t.Helper()
	out := make(map[string]float64)
	sc := bufio.NewScanner(strings.NewReader(body))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		out[line[:sp]] = v
	}
	return out
}

func scrape(t *testing.T, client *http.Client, base string) (string, map[string]float64) {
	t.Helper()
	resp := doReq(t, client, http.MethodGet, base+"/metrics", nil, nil)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("metrics Content-Type = %q, want Prometheus text 0.0.4", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw), promValues(t, string(raw))
}

// TestGatewayMetricsEndpoint drives traffic through the gateway and
// asserts (a) /metrics is valid Prometheus text carrying the request
// histogram, cache/planner counters and per-provider gauges, and (b)
// every /v1/stats counter equals its registry series — one bookkeeping
// path, two views.
func TestGatewayMetricsEndpoint(t *testing.T) {
	_, ts := newGatewayServer(t, Config{CacheBytes: 1 << 20})
	client := ts.Client()

	payload := bytes.Repeat([]byte("m"), 4096)
	resp := doReq(t, client, http.MethodPut, ts.URL+"/v1/objects/c/obj", payload, nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("PUT = %d", resp.StatusCode)
	}
	for i := 0; i < 3; i++ { // first GET fetches, rest hit the stripe cache
		resp = doReq(t, client, http.MethodGet, ts.URL+"/v1/objects/c/obj", nil, nil)
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
	}

	text, vals := scrape(t, client, ts.URL)

	// Request histogram: buckets, sum, count for the GET object route.
	getSeries := `scalia_http_request_duration_seconds_count{method="GET",route="/v1/objects/{container}/{key...}"}`
	if vals[getSeries] != 3 {
		t.Errorf("%s = %v, want 3", getSeries, vals[getSeries])
	}
	if !strings.Contains(text, `scalia_http_request_duration_seconds_bucket{method="GET",route="/v1/objects/{container}/{key...}",le="+Inf"}`) {
		t.Error("request histogram +Inf bucket missing")
	}
	putCount := `scalia_http_requests_total{method="PUT",route="/v1/objects/{container}/{key...}",code="201"}`
	if vals[putCount] != 1 {
		t.Errorf("%s = %v, want 1", putCount, vals[putCount])
	}

	// Stage histogram series exist for the write and read hot stages.
	for _, stage := range []string{"plan", "encode", "fanout", "commit", "fetch", "decode"} {
		key := fmt.Sprintf(`scalia_stage_duration_seconds_count{stage=%q}`, stage)
		if vals[key] == 0 {
			t.Errorf("stage %q unobserved", stage)
		}
	}

	// /v1/stats must be a view over the same registry.
	resp = doReq(t, client, http.MethodGet, ts.URL+"/v1/stats", nil, nil)
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// Scrape again AFTER /v1/stats so monotonic counters cannot go down
	// between the two reads; equality still must hold because no object
	// traffic runs in between (the /v1/stats request itself only touches
	// HTTP series).
	_, vals = scrape(t, client, ts.URL)

	if got := vals["scalia_read_stripes_cached_total"]; got != float64(st.ReadPath.StripesFromCache) {
		t.Errorf("registry cached=%v, /v1/stats=%d", got, st.ReadPath.StripesFromCache)
	}
	if got := vals["scalia_read_stripes_fetched_total"]; got != float64(st.ReadPath.StripesFetched) {
		t.Errorf("registry fetched=%v, /v1/stats=%d", got, st.ReadPath.StripesFetched)
	}
	if got := vals["scalia_read_fallbacks_total"]; got != float64(st.ReadPath.FetchFallbacks) {
		t.Errorf("registry fallbacks=%v, /v1/stats=%d", got, st.ReadPath.FetchFallbacks)
	}
	if got := vals["scalia_planner_cache_hits_total"]; got != float64(st.Planner.Hits) {
		t.Errorf("registry planner hits=%v, /v1/stats=%d", got, st.Planner.Hits)
	}
	if got := vals["scalia_planner_cache_misses_total"]; got != float64(st.Planner.Misses) {
		t.Errorf("registry planner misses=%v, /v1/stats=%d", got, st.Planner.Misses)
	}
	var cacheHits, cacheMisses float64
	for series, v := range vals {
		if strings.HasPrefix(series, "scalia_cache_hits_total{") {
			cacheHits += v
		}
		if strings.HasPrefix(series, "scalia_cache_misses_total{") {
			cacheMisses += v
		}
	}
	if cacheHits != float64(st.StripeCache.Hits) {
		t.Errorf("registry cache hits=%v, /v1/stats=%d", cacheHits, st.StripeCache.Hits)
	}
	if cacheMisses != float64(st.StripeCache.Misses) {
		t.Errorf("registry cache misses=%v, /v1/stats=%d", cacheMisses, st.StripeCache.Misses)
	}
	if got := vals["scalia_cost_usd_total"]; got != st.CostUSD {
		t.Errorf("registry cost=%v, /v1/stats=%v", got, st.CostUSD)
	}
	if got := vals["scalia_pending_deletes"]; got != float64(st.PendingDeletes) {
		t.Errorf("registry pending=%v, /v1/stats=%d", got, st.PendingDeletes)
	}
	if got := vals["scalia_engines"]; got != float64(st.Engines) {
		t.Errorf("registry engines=%v, /v1/stats=%d", got, st.Engines)
	}

	// Per-provider gauges: one scalia_provider_up series per provider,
	// all 1 (nothing injected a failure).
	up := 0
	for series, v := range vals {
		if strings.HasPrefix(series, "scalia_provider_up{") {
			up++
			if v != 1 {
				t.Errorf("%s = %v, want 1", series, v)
			}
		}
	}
	if up != st.Providers {
		t.Errorf("provider_up series = %d, providers = %d", up, st.Providers)
	}
	// Provider op histograms observed puts and gets.
	var providerOps float64
	for series, v := range vals {
		if strings.HasPrefix(series, "scalia_provider_op_duration_seconds_count{") {
			providerOps += v
		}
	}
	if providerOps == 0 {
		t.Error("no provider op latency observed")
	}
}

func TestGatewayHealthz(t *testing.T) {
	b, ts := newGatewayServer(t, Config{})
	client := ts.Client()

	resp := doReq(t, client, http.MethodPut, ts.URL+"/v1/objects/c/k", []byte("data"), nil)
	resp.Body.Close()

	var h Health
	resp = doReq(t, client, http.MethodGet, ts.URL+"/v1/healthz", nil, nil)
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if h.Status != "ok" {
		t.Errorf("status = %q, want ok", h.Status)
	}
	if h.GoVersion == "" || h.UptimeSeconds < 0 || h.Engines == 0 {
		t.Errorf("malformed health: %+v", h)
	}
	if len(h.Providers) == 0 {
		t.Fatal("no providers in health")
	}
	var sawCalls bool
	for _, p := range h.Providers {
		if !p.Available {
			t.Errorf("provider %s reported down", p.Name)
		}
		if p.Calls > 0 {
			sawCalls = true
			if p.P50Ms < 0 || p.P99Ms < p.P50Ms {
				t.Errorf("provider %s percentiles p50=%v p99=%v", p.Name, p.P50Ms, p.P99Ms)
			}
		}
	}
	if !sawCalls {
		t.Error("no provider recorded calls after a PUT")
	}

	// Down a provider: status degrades, the row flips.
	victim := h.Providers[0].Name
	store, _ := b.Registry().Store(victim)
	store.(cloud.AvailabilitySetter).SetAvailable(false)
	resp = doReq(t, client, http.MethodGet, ts.URL+"/v1/healthz", nil, nil)
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if h.Status != "degraded" {
		t.Errorf("status = %q, want degraded", h.Status)
	}
	for _, p := range h.Providers {
		if p.Name == victim && p.Available {
			t.Errorf("victim %s still reported available", victim)
		}
	}
}

func TestGatewayRequestID(t *testing.T) {
	_, ts := newGatewayServer(t, Config{})
	client := ts.Client()

	// Client-provided IDs echo back.
	resp := doReq(t, client, http.MethodGet, ts.URL+"/v1/stats", nil,
		map[string]string{"X-Request-ID": "req-42"})
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "req-42" {
		t.Errorf("echoed request ID = %q, want req-42", got)
	}

	// Absent IDs are generated (32 hex chars).
	resp = doReq(t, client, http.MethodGet, ts.URL+"/v1/stats", nil, nil)
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); len(got) != 32 {
		t.Errorf("generated request ID = %q, want 32 hex chars", got)
	}
}

// syncBuffer is a goroutine-safe buffer for the access-log handler (the
// server handles requests on its own goroutines).
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func TestGatewayAccessLog(t *testing.T) {
	b := NewBroker(Config{CacheBytes: 1 << 20})
	t.Cleanup(b.Close)
	g := NewGateway(b)
	var buf syncBuffer
	g.Logger = slog.New(slog.NewJSONHandler(&buf, nil))
	ts := httptest.NewServer(g)
	t.Cleanup(ts.Close)
	client := ts.Client()

	resp := doReq(t, client, http.MethodPut, ts.URL+"/v1/objects/c/logged", []byte("hello"), nil)
	resp.Body.Close()
	resp = doReq(t, client, http.MethodGet, ts.URL+"/v1/objects/c/logged", nil,
		map[string]string{"X-Request-ID": "trace-me"})
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()

	logs := buf.String()
	var getLine map[string]any
	for _, line := range strings.Split(strings.TrimSpace(logs), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("unparseable log line %q: %v", line, err)
		}
		if rec["method"] == "GET" {
			getLine = rec
		}
	}
	if getLine == nil {
		t.Fatalf("no GET access log in %q", logs)
	}
	if getLine["requestID"] != "trace-me" {
		t.Errorf("logged requestID = %v", getLine["requestID"])
	}
	if getLine["path"] != "/v1/objects/c/logged" {
		t.Errorf("logged path = %v", getLine["path"])
	}
	if getLine["status"] != float64(http.StatusOK) {
		t.Errorf("logged status = %v", getLine["status"])
	}
	if getLine["bytes"] != float64(5) {
		t.Errorf("logged bytes = %v, want 5", getLine["bytes"])
	}
	// The GET fetched its one stripe from providers (cold cache).
	if getLine["stripesFetched"] != float64(1) {
		t.Errorf("logged stripesFetched = %v, want 1", getLine["stripesFetched"])
	}
	if spans, _ := getLine["spans"].(string); !strings.Contains(spans, "fetch=") ||
		!strings.Contains(spans, "decode=") {
		t.Errorf("logged spans = %v, want fetch/decode", getLine["spans"])
	}
}

func TestGatewayIfRange(t *testing.T) {
	_, ts := newGatewayServer(t, Config{})
	client := ts.Client()

	payload := bytes.Repeat([]byte("r"), 100)
	resp := doReq(t, client, http.MethodPut, ts.URL+"/v1/objects/c/ranged", payload, nil)
	etag := resp.Header.Get("ETag")
	resp.Body.Close()
	if etag == "" {
		t.Fatal("PUT returned no ETag")
	}

	get := func(hdr map[string]string) *http.Response {
		return doReq(t, client, http.MethodGet, ts.URL+"/v1/objects/c/ranged", nil, hdr)
	}

	// Current ETag -> the 206 partial the client asked for.
	resp = get(map[string]string{"Range": "bytes=0-9", "If-Range": etag})
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusPartialContent || len(body) != 10 {
		t.Errorf("current If-Range: status=%d len=%d, want 206/10", resp.StatusCode, len(body))
	}

	// Stale ETag -> full 200 body, no Content-Range.
	resp = get(map[string]string{"Range": "bytes=0-9", "If-Range": `"stale"`})
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(body) != 100 {
		t.Errorf("stale If-Range: status=%d len=%d, want 200/100", resp.StatusCode, len(body))
	}
	if resp.Header.Get("Content-Range") != "" {
		t.Error("stale If-Range must not carry Content-Range")
	}

	// Weak validator -> never a match (strong comparison only).
	resp = get(map[string]string{"Range": "bytes=0-9", "If-Range": "W/" + etag})
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(body) != 100 {
		t.Errorf("weak If-Range: status=%d len=%d, want 200/100", resp.StatusCode, len(body))
	}

	// HTTP-date validator -> stale (no Last-Modified served).
	resp = get(map[string]string{"Range": "bytes=0-9", "If-Range": "Tue, 29 Oct 2024 16:56:32 GMT"})
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(body) != 100 {
		t.Errorf("date If-Range: status=%d len=%d, want 200/100", resp.StatusCode, len(body))
	}

	// Without If-Range the Range still works as before.
	resp = get(map[string]string{"Range": "bytes=90-"})
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusPartialContent || len(body) != 10 {
		t.Errorf("plain Range: status=%d len=%d, want 206/10", resp.StatusCode, len(body))
	}

	// If-Range on a missing object is still a 404.
	resp = doReq(t, client, http.MethodGet, ts.URL+"/v1/objects/c/ghost", nil,
		map[string]string{"Range": "bytes=0-9", "If-Range": etag})
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("If-Range on missing object = %d, want 404", resp.StatusCode)
	}
}

func TestGatewayPprofGated(t *testing.T) {
	b := NewBroker(Config{})
	t.Cleanup(b.Close)
	g := NewGateway(b)
	ts := httptest.NewServer(g)
	t.Cleanup(ts.Close)

	// Off by default.
	resp := doReq(t, ts.Client(), http.MethodGet, ts.URL+"/debug/pprof/", nil, nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof without EnablePprof = %d, want 404", resp.StatusCode)
	}

	g2 := NewGateway(b)
	g2.EnablePprof()
	ts2 := httptest.NewServer(g2)
	t.Cleanup(ts2.Close)
	resp = doReq(t, ts2.Client(), http.MethodGet, ts2.URL+"/debug/pprof/", nil, nil)
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "goroutine") {
		t.Errorf("pprof index = %d, body %.60q", resp.StatusCode, string(body))
	}
}
