package engine

import (
	"crypto/md5"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"scalia/internal/metadata"
)

// ObjectMeta is the metadata Scalia stores per object version — the
// paper's Fig. 11: file metadata (name, mime, checksum, size, policy,
// container) and striping metadata (chunk -> provider map, threshold m,
// storage key).
type ObjectMeta struct {
	Container string `json:"container"`
	Key       string `json:"key"`
	MIME      string `json:"mime"`
	Size      int64  `json:"size"`
	Checksum  string `json:"checksum"` // MD5 of the object payload
	RuleName  string `json:"policy"`
	Class     string `json:"class"`

	SKey      string   `json:"skey"`      // MD5(container | key | UUID)
	M         int      `json:"m"`         // erasure threshold
	Chunks    []string `json:"chunks"`    // chunk index -> provider name
	UUID      string   `json:"uuid"`      // version identity
	TTLHours  float64  `json:"ttlHours"`  // user lifetime hint; 0 = none
	CreatedAt int64    `json:"createdAt"` // period of first write

	// Stripes and StripeBytes describe the streaming layout: the object
	// is split into Stripes consecutive stripes of up to StripeBytes
	// payload each, and every stripe is erasure-coded independently, so
	// reads and writes proceed stripe by stripe without materializing
	// the whole object. Stripes <= 1 marks a single-stripe object, which
	// keeps the legacy chunk-key layout.
	Stripes     int   `json:"stripes,omitempty"`
	StripeBytes int64 `json:"stripeBytes,omitempty"`
	// StripeSums holds the MD5 of each stripe's payload, so the read
	// path can verify every decoded stripe independently — before it
	// enters the stripe cache, and on ranged reads that never see the
	// whole object. Metadata written before stripe sums existed leaves
	// this nil; such reads fall back to the whole-object Checksum.
	StripeSums []string `json:"stripeSums,omitempty"`
	// PartStripes, set on objects assembled from a multipart upload,
	// records how many stripes each part contributed (part 1 first; the
	// values sum to Stripes). Multipart chunk keys are part-scoped — the
	// keys the parts were staged under ARE the committed keys, so
	// completing an upload moves no chunk data. Every part except the
	// last covers a whole number of stripes, so the global stripe
	// geometry (stripeSpan, stripeLen) is identical to a plain object's.
	PartStripes []int `json:"partStripes,omitempty"`
}

// Multipart reports whether this version was assembled from a
// multipart upload. Such versions use part-scoped chunk keys and an
// ETag-of-ETags checksum instead of a whole-body MD5.
func (m ObjectMeta) Multipart() bool { return len(m.PartStripes) > 0 }

// stripeSum returns the stored MD5 of stripe s, or "" when this
// version's metadata predates per-stripe checksums.
func (m ObjectMeta) stripeSum(s int) string {
	if s < 0 || s >= len(m.StripeSums) {
		return ""
	}
	return m.StripeSums[s]
}

// StripeCount returns the number of stripes the object is stored as
// (at least 1; legacy single-stripe metadata reports 1).
func (m ObjectMeta) StripeCount() int {
	if m.Stripes <= 1 {
		return 1
	}
	return m.Stripes
}

// stripeSpan returns the nominal payload bytes per stripe — the
// divisor that maps a byte offset to its stripe index. Single-stripe
// objects span their whole size regardless of the recorded StripeBytes.
func (m ObjectMeta) stripeSpan() int64 {
	if m.StripeCount() == 1 || m.StripeBytes <= 0 {
		if m.Size > 0 {
			return m.Size
		}
		return 1
	}
	return m.StripeBytes
}

// stripeLen returns the payload length of stripe s.
func (m ObjectMeta) stripeLen(s int) int64 {
	if m.StripeCount() == 1 {
		return m.Size
	}
	start := int64(s) * m.StripeBytes
	if left := m.Size - start; left < m.StripeBytes {
		return left
	}
	return m.StripeBytes
}

// ETag returns the object's entity tag for conditional HTTP requests:
// the quoted content checksum, as S3 does for simple uploads.
func (m ObjectMeta) ETag() string { return `"` + m.Checksum + `"` }

// RowKey returns the metadata row key: MD5(container | key) (§III-D1).
func RowKey(container, key string) string {
	sum := md5.Sum([]byte(container + "|" + key))
	return hex.EncodeToString(sum[:])
}

// StorageKey derives skey = MD5(container | key | UUID) (§III-D1); the
// UUID makes concurrent updates write disjoint chunk keys so they cannot
// corrupt each other.
func StorageKey(container, key, uuid string) string {
	sum := md5.Sum([]byte(container + "|" + key + "|" + uuid))
	return hex.EncodeToString(sum[:])
}

// ChunkKey names chunk i of a single-stripe object version.
func ChunkKey(skey string, i int) string {
	return fmt.Sprintf("%s/chunk%03d", skey, i)
}

// ChunkKeyAt names chunk i of stripe s for an object stored as stripes
// stripes. Single-stripe objects keep the legacy ChunkKey layout so
// metadata written before striping stays addressable.
func ChunkKeyAt(skey string, stripes, s, i int) string {
	if stripes <= 1 {
		return ChunkKey(skey, i)
	}
	return fmt.Sprintf("%s/s%05d/chunk%03d", skey, s, i)
}

// PartChunkKey names chunk i of local stripe s of part number part of a
// multipart upload. Parts stage their chunks under these keys, and a
// completed multipart object keeps them, so completion is a metadata-
// only commit.
func PartChunkKey(skey string, part, s, i int) string {
	return fmt.Sprintf("%s/p%05d/s%05d/chunk%03d", skey, part, s, i)
}

// chunkKey names chunk i of stripe s of this object version. For
// multipart versions the global stripe index is mapped to (part, local
// stripe) through PartStripes.
func (m ObjectMeta) chunkKey(s, i int) string {
	if len(m.PartStripes) > 0 {
		part := 1
		for _, ns := range m.PartStripes {
			if s < ns {
				return PartChunkKey(m.SKey, part, s, i)
			}
			s -= ns
			part++
		}
		// A stripe index past the recorded parts indicates corrupt
		// metadata; fall through to the plain layout, which will miss.
	}
	return ChunkKeyAt(m.SKey, m.StripeCount(), s, i)
}

// Checksum computes the MD5 content checksum in Fig. 11's format.
func Checksum(data []byte) string {
	sum := md5.Sum(data)
	return hex.EncodeToString(sum[:])
}

// NewUUID returns a random 128-bit identifier (RFC 4122 v4 layout).
func NewUUID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("engine: system randomness unavailable: " + err.Error())
	}
	b[6] = (b[6] & 0x0f) | 0x40
	b[8] = (b[8] & 0x3f) | 0x80
	return fmt.Sprintf("%x-%x-%x-%x-%x", b[0:4], b[4:6], b[6:8], b[8:10], b[10:16])
}

// metaColumn is the column name holding the JSON-encoded ObjectMeta.
const metaColumn = "meta"

// encodeMeta packs an ObjectMeta into an MVCC version.
func encodeMeta(m ObjectMeta, timestamp int64) (metadata.Version, error) {
	blob, err := json.Marshal(m)
	if err != nil {
		return metadata.Version{}, fmt.Errorf("engine: encode meta: %w", err)
	}
	return metadata.Version{
		UUID:      m.UUID,
		Timestamp: timestamp,
		Columns:   map[string]string{metaColumn: string(blob)},
	}, nil
}

// decodeMeta unpacks an MVCC version into an ObjectMeta.
func decodeMeta(v metadata.Version) (ObjectMeta, error) {
	var m ObjectMeta
	if err := json.Unmarshal([]byte(v.Columns[metaColumn]), &m); err != nil {
		return ObjectMeta{}, fmt.Errorf("engine: decode meta: %w", err)
	}
	return m, nil
}
