package engine

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"scalia/internal/cloud"
	"scalia/internal/core"
)

// maintMarket builds a small four-provider market with one designated
// victim, all feasible under the default rule.
func maintMarket() *cloud.Registry {
	reg := cloud.NewRegistry()
	for i, name := range []string{"A", "B", "C", "V"} {
		reg.Register(cloud.NewBlobStore(cloud.Spec{
			Name: name, Durability: 0.99999, Availability: 0.999,
			Zones: []cloud.Zone{cloud.ZoneUS, cloud.ZoneEU},
			Pricing: cloud.Pricing{
				StorageGBMonth: 0.08 + 0.01*float64(i),
				BandwidthInGB:  0.05, BandwidthOutGB: 0.12, OpsPer1000: 0.01,
			},
		}))
	}
	return reg
}

// TestRepairIndexedOutage1M is the tentpole acceptance test: a
// metadata-only synthetic store of 1,000,000 objects where only 10,000
// hold a chunk on the failed provider. The repair pass must enumerate
// its candidates through the provider→objects index — touching exactly
// the affected objects (a 100x reduction, well past the required 10x)
// and never calling statsDB.Objects() (the full-scan enumerator).
func TestRepairIndexedOutage1M(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-object synthetic store is not a -short test")
	}
	reg := maintMarket()
	b := newTestBroker(t, Config{Registry: reg})
	e0 := b.Engine(0)

	specOf := func(name string) cloud.Spec {
		s, ok := reg.Store(name)
		if !ok {
			t.Fatalf("unknown provider %s", name)
		}
		return s.Spec()
	}
	// 990k unaffected objects: placement on healthy providers only,
	// committed through setPlacement — the same hook Put/migrate/repair
	// use — so the inverted index sees them. No metadata rows exist for
	// them: an O(affected) repair never looks.
	pHealthy := core.Placement{M: 2, Providers: []cloud.Spec{specOf("A"), specOf("B"), specOf("C")}}
	const total, affected = 1_000_000, 10_000
	for i := 0; i < total-affected; i++ {
		b.setPlacement(fmt.Sprintf("bulk/obj%07d", i), pHealthy)
	}
	// 10k affected objects: a chunk on the victim, plus real metadata
	// rows so the pass can Head them.
	pVictim := core.Placement{M: 2, Providers: []cloud.Spec{specOf("V"), specOf("A"), specOf("B")}}
	ts := b.clock.Timestamp()
	for i := 0; i < affected; i++ {
		key := fmt.Sprintf("obj%07d", i)
		uuid := NewUUID()
		meta := ObjectMeta{
			Container: "hot", Key: key, Size: 64, M: 2,
			Chunks: []string{"V", "A", "B"},
			UUID:   uuid, SKey: StorageKey("hot", key, uuid),
		}
		version, err := encodeMeta(meta, ts)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.meta.Put(e0.dc, RowKey("hot", key), version); err != nil {
			t.Fatal(err)
		}
		b.setPlacement("hot/"+key, pVictim)
	}
	if got := b.ProviderIndex().Len(); got != total {
		t.Fatalf("indexed objects = %d, want %d", got, total)
	}

	reg.SetAvailable("V", false)

	objCalls0 := b.statsDB.ObjectsCalls()
	indexed0 := b.metrics.repairIndexed.Value()
	rep, err := b.Repair(ctx, RepairWait)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Checked != affected || rep.Affected != affected || rep.Waited != affected {
		t.Fatalf("repair touched the wrong population: %+v", rep)
	}
	if delta := b.statsDB.ObjectsCalls() - objCalls0; delta != 0 {
		t.Fatalf("repair fell back to statsDB.Objects() %d times", delta)
	}
	if got := b.metrics.repairIndexed.Value() - indexed0; got != affected {
		t.Fatalf("repair.objectsIndexed = %d, want %d", got, affected)
	}
	// The acceptance ratio: indexed enumeration touches >= 10x fewer
	// objects than a full scan of the store would.
	if ratio := total / rep.Checked; ratio < 10 {
		t.Fatalf("indexed repair touched 1/%d of the store, want >= 1/10", ratio)
	}
}

// TestMaintQueueDrainsInvalidatedSet asserts the event-driven
// reoptimization contract: a pricing bump on one provider enqueues
// exactly the objects holding a chunk there (deduplicated), the drain
// re-plans exactly that set, and the whole cycle never enumerates the
// object population through statsDB.Objects().
func TestMaintQueueDrainsInvalidatedSet(t *testing.T) {
	b := newTestBroker(t, Config{})
	e := b.Engine(0)
	for i := 0; i < 24; i++ {
		if _, err := e.Put(ctx, "c", fmt.Sprintf("k%02d", i), []byte(strings.Repeat("x", 256)), PutOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	b.FlushStats()

	// Pick the provider carrying the most chunks; its object set is the
	// invalidated population.
	var victim string
	for _, name := range b.ProviderIndex().ProviderNames() {
		if victim == "" || b.ProviderIndex().Count(name) > b.ProviderIndex().Count(victim) {
			victim = name
		}
	}
	invalidated := b.ProviderIndex().Objects(victim)
	if len(invalidated) == 0 {
		t.Fatal("no objects indexed on any provider")
	}

	objCalls0 := b.statsDB.ObjectsCalls()
	st0 := b.MaintStats()
	if _, err := b.Registry().UpdatePricing(victim, cloud.Pricing{
		StorageGBMonth: 5, BandwidthInGB: 1, BandwidthOutGB: 1, OpsPer1000: 1,
	}); err != nil {
		t.Fatal(err)
	}
	st1 := b.MaintStats()
	if got := st1.Enqueued - st0.Enqueued; got != int64(len(invalidated)) {
		t.Fatalf("enqueued %d, want exactly the %d invalidated objects", got, len(invalidated))
	}
	if st1.QueueDepth != len(invalidated) || st1.Events-st0.Events != 1 {
		t.Fatalf("queue state after bump: %+v", st1)
	}
	// A second bump before draining is fully deduplicated.
	if _, err := b.Registry().UpdatePricing(victim, cloud.Pricing{
		StorageGBMonth: 6, BandwidthInGB: 1, BandwidthOutGB: 1, OpsPer1000: 1,
	}); err != nil {
		t.Fatal(err)
	}
	if st2 := b.MaintStats(); st2.Enqueued != st1.Enqueued {
		t.Fatalf("duplicate invalidations enqueued: %+v", st2)
	}

	if n := b.DrainMaintenance(ctx); n != len(invalidated) {
		t.Fatalf("drained %d, want %d", n, len(invalidated))
	}
	st3 := b.MaintStats()
	if st3.QueueDepth != 0 || st3.Drained-st0.Drained != int64(len(invalidated)) {
		t.Fatalf("queue state after drain: %+v", st3)
	}
	if delta := b.statsDB.ObjectsCalls() - objCalls0; delta != 0 {
		t.Fatalf("event-driven reoptimization called statsDB.Objects() %d times", delta)
	}
}

// TestMaintQueueConcurrentMutations runs market events against
// concurrent Put/Delete traffic with background drain workers enabled;
// under -race this asserts the index/queue/commit-hook locking. After
// the dust settles every accepted invalidation must have drained.
func TestMaintQueueConcurrentMutations(t *testing.T) {
	b := newTestBroker(t, Config{ReoptWorkers: 2})
	e := b.Engine(0)
	seed := func(i int) string { return fmt.Sprintf("k%03d", i) }
	for i := 0; i < 8; i++ {
		if _, err := e.Put(ctx, "c", seed(i), []byte("seed"), PutOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	b.FlushStats()
	victim := b.ProviderIndex().ProviderNames()[0]

	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 8; i < 40; i++ {
			if _, err := e.Put(ctx, "c", seed(i), []byte("churn"), PutOptions{}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			if err := e.Delete(ctx, "c", seed(i)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if _, err := b.Registry().UpdatePricing(victim, cloud.Pricing{
				StorageGBMonth: 0.1 + 0.01*float64(i),
				BandwidthInGB:  0.05, BandwidthOutGB: 0.12, OpsPer1000: 0.01,
			}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()

	waitCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := b.WaitMaintIdle(waitCtx); err != nil {
		t.Fatalf("queue never went idle: %v", err)
	}
	st := b.MaintStats()
	if st.QueueDepth != 0 || st.Drained != st.Enqueued {
		t.Fatalf("idle queue should have drained every accepted invalidation: %+v", st)
	}
	if st.Dropped != 0 {
		t.Fatalf("default queue depth dropped invalidations: %+v", st)
	}
}

// TestGatewayAsyncJobs is the jobs-API e2e: POST /v1/repair and
// /v1/optimize answer 202 with a job resource and Location header, the
// job is pollable to completion with its final report attached,
// ?wait=true preserves the old synchronous 200 contract, and GET
// /v1/jobs pages with the object-listing shape.
func TestGatewayAsyncJobs(t *testing.T) {
	_, ts := newGatewayServer(t, Config{})
	client := ts.Client()

	resp := doReq(t, client, http.MethodPut, ts.URL+"/v1/objects/c/k", []byte("jobs"), nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("put = %d", resp.StatusCode)
	}

	poll := func(t *testing.T, loc string) JobView {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for {
			resp := doReq(t, client, http.MethodGet, ts.URL+loc, nil, nil)
			var job JobView
			if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("poll %s = %d", loc, resp.StatusCode)
			}
			if job.State != JobRunning {
				return job
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s still running: %+v", loc, job)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// Async repair: 202 + Location, poll to done, report attached.
	resp = doReq(t, client, http.MethodPost, ts.URL+"/v1/repair?policy=active", nil, nil)
	var dispatched JobView
	if err := json.NewDecoder(resp.Body).Decode(&dispatched); err != nil {
		t.Fatal(err)
	}
	loc := resp.Header.Get("Location")
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || dispatched.ID == "" || loc != "/v1/jobs/"+dispatched.ID {
		t.Fatalf("dispatch repair = %d, job %+v, location %q", resp.StatusCode, dispatched, loc)
	}
	if dispatched.Kind != JobRepair || dispatched.Policy != "active" {
		t.Fatalf("dispatched job = %+v", dispatched)
	}
	job := poll(t, loc)
	if job.State != JobDone || job.Repair == nil || job.FinishedAt == nil || job.Error != "" {
		t.Fatalf("finished repair job = %+v", job)
	}
	if job.Processed != int64(job.Repair.Checked) {
		t.Fatalf("progress counter %d != checked %d", job.Processed, job.Repair.Checked)
	}

	// Async optimize: same lifecycle, optimize report attached.
	resp = doReq(t, client, http.MethodPost, ts.URL+"/v1/optimize", nil, nil)
	if err := json.NewDecoder(resp.Body).Decode(&dispatched); err != nil {
		t.Fatal(err)
	}
	loc = resp.Header.Get("Location")
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || dispatched.Kind != JobOptimize {
		t.Fatalf("dispatch optimize = %d, %+v", resp.StatusCode, dispatched)
	}
	job = poll(t, loc)
	if job.State != JobDone || job.Optimize == nil || job.Optimize.Leader == "" {
		t.Fatalf("finished optimize job = %+v", job)
	}

	// ?wait=true keeps the pre-jobs synchronous contract: 200 + report.
	resp = doReq(t, client, http.MethodPost, ts.URL+"/v1/repair?wait=true&policy=active", nil, nil)
	var rep RepairReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("wait=true repair = %d", resp.StatusCode)
	}

	// Listing: three jobs exist (wait=true runs inline, minting none);
	// page size 1 walks them in creation order via the cursor.
	var ids []string
	after := ""
	for {
		resp = doReq(t, client, http.MethodGet, ts.URL+"/v1/jobs?limit=1&after="+after, nil, nil)
		var page JobList
		if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if len(page.Jobs) > 1 {
			t.Fatalf("limit=1 page returned %d jobs", len(page.Jobs))
		}
		for _, j := range page.Jobs {
			ids = append(ids, j.ID)
		}
		if !page.Truncated {
			break
		}
		after = page.Next
	}
	if len(ids) != 2 || ids[0] >= ids[1] {
		t.Fatalf("paged job IDs = %v, want 2 ascending", ids)
	}

	// Unknown jobs are typed 404s.
	resp = doReq(t, client, http.MethodGet, ts.URL+"/v1/jobs/j99999999", nil, nil)
	if resp.StatusCode != http.StatusNotFound || errCode(t, resp) != "job_not_found" {
		t.Fatalf("unknown job = %d", resp.StatusCode)
	}
	resp.Body.Close()
}
