package workload

import (
	"fmt"
	"math"
)

// Synthetic scenario generators. All randomness is derived by hashing
// (seed, period, object, draw) with splitmix64, never by advancing a
// shared stream: the simulator replays Load(p) once per priced policy
// (Scalia, the ideal, and every static set), so Load must be a pure
// function of p. Two generators built with the same seed produce
// byte-identical load sequences in any call order.

// mix64 is the splitmix64 finalizer: a bijective avalanche hash.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// rand01 hashes the seed with an arbitrary stream key into [0, 1).
func rand01(seed uint64, stream ...uint64) float64 {
	h := mix64(seed)
	for _, s := range stream {
		h = mix64(h ^ s)
	}
	return float64(h>>11) / (1 << 53)
}

// poisson draws a Poisson(lambda) variate from the hashed uniform
// stream (seed, stream..., k) using Knuth's product method; lambda is
// split into exp(500)-sized slabs so the running product never
// underflows for large rates.
func poisson(lambda float64, seed uint64, stream ...uint64) int64 {
	if lambda <= 0 {
		return 0
	}
	var n int64
	key := append(append(make([]uint64, 0, len(stream)+1), stream...), 0)
	draw := &key[len(key)-1]
	for lambda > 0 {
		slab := lambda
		if slab > 500 {
			slab = 500
		}
		lambda -= slab
		limit := math.Exp(-slab)
		prod := 1.0
		for {
			prod *= rand01(seed, key...)
			*draw++
			if prod <= limit {
				break
			}
			n++
		}
	}
	return n
}

// expVariate draws an Exp(1/mean) variate from the hashed stream.
func expVariate(mean float64, seed uint64, stream ...uint64) float64 {
	u := rand01(seed, stream...)
	return -mean * math.Log(1-u)
}

// ZipfWeights returns n popularity shares following the rank-size rule
// weight ~ rank^-s, normalized to sum to 1.
func ZipfWeights(n int, s float64) []float64 {
	w := make([]float64, n)
	var total float64
	for i := range w {
		w[i] = math.Pow(float64(i+1), -s)
		total += w[i]
	}
	for i := range w {
		w[i] /= total
	}
	return w
}

// roundCarry floor-rounds x while accumulating the fractional
// remainder in carry, so a sequence of calls preserves aggregate
// volume (used when splitting a real-valued rate into integer reads).
func roundCarry(x float64, carry *float64) int64 {
	exact := x + *carry
	whole := math.Floor(exact)
	*carry = exact - whole
	return int64(whole)
}

// ExpDecay returns the exponential decay factor 2^(-age/halfLife) for
// age >= 0, and 0 for negative ages (the event has not happened yet).
func ExpDecay(age, halfLife float64) float64 {
	if age < 0 || halfLife <= 0 {
		return 0
	}
	return math.Exp2(-age / halfLife)
}

// --- Zipf: skewed static popularity (the gallery's synthetic cousin) ---

// Zipf serves a fixed object population whose per-period reads follow
// Poisson rates proportional to Zipf popularity ranks: a few hot
// objects over a long cold tail, constant in time.
type Zipf struct {
	Seed         uint64
	Objects      int
	SizeBytes    int64
	Exponent     float64 // rank exponent s (weight ~ rank^-s)
	OpsPerPeriod float64 // expected total reads per period
	TotalPeriods int

	weights []float64
}

// NewZipf returns a week of 40 one-megabyte objects sharing 400
// reads/hour under a Zipf(1.1) popularity law.
func NewZipf(seed uint64) *Zipf {
	z := &Zipf{
		Seed:         seed,
		Objects:      40,
		SizeBytes:    1 << 20,
		Exponent:     1.1,
		OpsPerPeriod: 400,
		TotalPeriods: 7 * 24,
	}
	z.weights = ZipfWeights(z.Objects, z.Exponent)
	return z
}

// Name implements Scenario.
func (z *Zipf) Name() string { return fmt.Sprintf("zipf-%d", z.Seed) }

// Periods implements Scenario.
func (z *Zipf) Periods() int { return z.TotalPeriods }

// Load implements Scenario.
func (z *Zipf) Load(p int) []PeriodLoad {
	loads := make([]PeriodLoad, 0, z.Objects)
	for i := 0; i < z.Objects; i++ {
		load := PeriodLoad{
			Object: fmt.Sprintf("zipf/obj%03d", i),
			Size:   z.SizeBytes,
			Reads:  poisson(z.OpsPerPeriod*z.weights[i], z.Seed, uint64(p), uint64(i)),
		}
		if p == 0 {
			load.Writes = 1
			load.Created = true
		}
		if load.Reads > 0 || load.Writes > 0 {
			loads = append(loads, load)
		}
	}
	return loads
}

// --- FlashCrowd: seeded Slashdot effects ---

// FlashCrowd models a population of quiet objects that each get
// slashdotted once: at a seeded hour reads jump to a seeded peak and
// then decay exponentially, on top of a low Poisson base rate.
type FlashCrowd struct {
	Seed          uint64
	Objects       int
	SizeBytes     int64
	BaseReads     float64 // expected quiet reads per object-period
	SpikePeak     float64 // expected reads at the spike's first hour
	SpikeHalfLife float64 // decay half-life in periods
	TotalPeriods  int
}

// NewFlashCrowd returns a week of 8 one-megabyte pages, each spiking
// once to ~120 reads/hour with a 6-hour half-life.
func NewFlashCrowd(seed uint64) *FlashCrowd {
	return &FlashCrowd{
		Seed:          seed,
		Objects:       8,
		SizeBytes:     1 << 20,
		BaseReads:     2,
		SpikePeak:     120,
		SpikeHalfLife: 6,
		TotalPeriods:  7 * 24,
	}
}

// Name implements Scenario.
func (f *FlashCrowd) Name() string { return fmt.Sprintf("flashcrowd-%d", f.Seed) }

// Periods implements Scenario.
func (f *FlashCrowd) Periods() int { return f.TotalPeriods }

// SpikeAt returns the seeded hour at which object i's flash crowd
// starts. Spikes land in the middle [1/8, 7/8) stretch of the scenario
// so both the quiet baseline and the decay are observable.
func (f *FlashCrowd) SpikeAt(i int) int {
	lo := f.TotalPeriods / 8
	hi := f.TotalPeriods * 7 / 8
	return lo + int(rand01(f.Seed, uint64(i), 'S')*float64(hi-lo))
}

// peak is object i's seeded spike height in [0.5, 1.5) x SpikePeak.
func (f *FlashCrowd) peak(i int) float64 {
	return f.SpikePeak * (0.5 + rand01(f.Seed, uint64(i), 'P'))
}

// RateAt returns object i's expected reads during period p.
func (f *FlashCrowd) RateAt(i, p int) float64 {
	return f.BaseReads + f.peak(i)*ExpDecay(float64(p-f.SpikeAt(i)), f.SpikeHalfLife)
}

// Load implements Scenario.
func (f *FlashCrowd) Load(p int) []PeriodLoad {
	loads := make([]PeriodLoad, 0, f.Objects)
	for i := 0; i < f.Objects; i++ {
		load := PeriodLoad{
			Object: fmt.Sprintf("flash/page%02d", i),
			Size:   f.SizeBytes,
			Reads:  poisson(f.RateAt(i, p), f.Seed, uint64(p), uint64(i)),
		}
		if p == 0 {
			load.Writes = 1
			load.Created = true
		}
		if load.Reads > 0 || load.Writes > 0 {
			loads = append(loads, load)
		}
	}
	return loads
}

// --- Churn: Poisson arrivals with lifetime-distributed deletes ---

// Churn models an object population under churn: new objects arrive as
// a Poisson process, live for an exponentially distributed number of
// periods while serving reads, and are then deleted — the dynamics
// behind the paper's lifetime statistics (Fig. 5).
type Churn struct {
	Seed              uint64
	ArrivalsPerPeriod float64 // Poisson arrival rate
	MeanLifetime      float64 // exponential mean lifetime in periods
	SizeBytes         int64
	ReadsPerPeriod    float64 // expected reads per live object-period
	TotalPeriods      int
}

// NewChurn returns a week with ~0.5 arrivals/hour of 4 MB objects
// living ~2 days each and serving ~3 reads/hour while alive.
func NewChurn(seed uint64) *Churn {
	return &Churn{
		Seed:              seed,
		ArrivalsPerPeriod: 0.5,
		MeanLifetime:      48,
		SizeBytes:         4 << 20,
		ReadsPerPeriod:    3,
		TotalPeriods:      7 * 24,
	}
}

// Name implements Scenario.
func (c *Churn) Name() string { return fmt.Sprintf("churn-%d", c.Seed) }

// Periods implements Scenario.
func (c *Churn) Periods() int { return c.TotalPeriods }

// arrivals returns how many objects are created during period q.
func (c *Churn) arrivals(q int) int64 {
	return poisson(c.ArrivalsPerPeriod, c.Seed, uint64(q), 'A')
}

// deathPeriod returns the period at whose end object j born in q is
// deleted. Every object lives at least its creation period.
func (c *Churn) deathPeriod(q int, j int64) int {
	life := expVariate(c.MeanLifetime, c.Seed, uint64(q), uint64(j), 'L')
	return q + int(life)
}

// Load implements Scenario: it enumerates every object born at q <= p
// that is still alive at p. O(p x arrivals) per call, which is fine at
// simulation scale.
func (c *Churn) Load(p int) []PeriodLoad {
	var loads []PeriodLoad
	for q := 0; q <= p; q++ {
		n := c.arrivals(q)
		for j := int64(0); j < n; j++ {
			death := c.deathPeriod(q, j)
			if death < p {
				continue
			}
			load := PeriodLoad{
				Object: fmt.Sprintf("churn/p%04dn%02d", q, j),
				Size:   c.SizeBytes,
				Reads:  poisson(c.ReadsPerPeriod, c.Seed, uint64(p), uint64(q), uint64(j), 'R'),
			}
			if q == p {
				load.Writes = 1
				load.Created = true
			}
			if death == p {
				load.Deleted = true
			}
			if load.Reads > 0 || load.Writes > 0 || load.Deleted {
				loads = append(loads, load)
			}
		}
	}
	return loads
}
