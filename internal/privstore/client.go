package privstore

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"scalia/internal/cloud"
)

// Client addresses a private storage web service through the same Store
// interface as simulated public providers, signing every request with
// the resource's private token.
type Client struct {
	base  string
	token []byte
	http  *http.Client
	now   func() time.Time
}

// ErrRemote wraps non-2xx responses.
var ErrRemote = errors.New("privstore: remote error")

// NewClient returns a client for the service at baseURL.
func NewClient(baseURL string, token []byte) *Client {
	return &Client{
		base:  baseURL,
		token: token,
		http:  &http.Client{Timeout: 30 * time.Second},
		now:   time.Now,
	}
}

func (c *Client) do(ctx context.Context, method, path string, body []byte) (*http.Response, error) {
	var reader io.Reader
	if body != nil {
		reader = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, reader)
	if err != nil {
		return nil, err
	}
	ts := c.now().Unix()
	req.Header.Set(HeaderTimestamp, fmt.Sprintf("%d", ts))
	req.Header.Set(HeaderSignature, Sign(c.token, method, req.URL.Path, ts))
	return c.http.Do(req)
}

// Put implements cloud.Store.
func (c *Client) Put(ctx context.Context, key string, data []byte) error {
	resp, err := c.do(ctx, http.MethodPut, "/objects/"+url.PathEscape(key), data)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return remoteErr(resp)
	}
	return nil
}

// Get implements cloud.Store.
func (c *Client) Get(ctx context.Context, key string) ([]byte, error) {
	resp, err := c.do(ctx, http.MethodGet, "/objects/"+url.PathEscape(key), nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, remoteErr(resp)
	}
	return io.ReadAll(resp.Body)
}

// Delete implements cloud.Store.
func (c *Client) Delete(ctx context.Context, key string) error {
	resp, err := c.do(ctx, http.MethodDelete, "/objects/"+url.PathEscape(key), nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return remoteErr(resp)
	}
	return nil
}

// List implements cloud.Store.
func (c *Client) List(ctx context.Context, prefix string) ([]string, error) {
	resp, err := c.do(ctx, http.MethodGet, "/list?prefix="+url.QueryEscape(prefix), nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, remoteErr(resp)
	}
	var keys []string
	if err := json.NewDecoder(resp.Body).Decode(&keys); err != nil {
		return nil, err
	}
	return keys, nil
}

func remoteErr(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	return fmt.Errorf("%w: %s: %s", ErrRemote, resp.Status, bytes.TrimSpace(body))
}

var _ cloud.Store = (*Client)(nil)
