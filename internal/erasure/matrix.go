package erasure

import (
	"errors"
	"fmt"
)

// matrix is a dense byte matrix over GF(2^8), stored row-major.
type matrix struct {
	rows, cols int
	data       []byte
}

func newMatrix(rows, cols int) matrix {
	return matrix{rows: rows, cols: cols, data: make([]byte, rows*cols)}
}

func (m matrix) at(r, c int) byte     { return m.data[r*m.cols+c] }
func (m matrix) set(r, c int, v byte) { m.data[r*m.cols+c] = v }
func (m matrix) row(r int) []byte     { return m.data[r*m.cols : (r+1)*m.cols] }
func (m matrix) String() string       { return fmt.Sprintf("matrix(%dx%d)", m.rows, m.cols) }
func (m matrix) clone() matrix {
	out := newMatrix(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// identityMatrix returns the n x n identity matrix.
func identityMatrix(n int) matrix {
	m := newMatrix(n, n)
	for i := 0; i < n; i++ {
		m.set(i, i, 1)
	}
	return m
}

// vandermonde returns the rows x cols Vandermonde matrix with entries
// v[r][c] = r^c. Any square submatrix built from distinct rows is
// invertible, which is the property Reed–Solomon relies on.
func vandermonde(rows, cols int) matrix {
	m := newMatrix(rows, cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			m.set(r, c, gfExp(byte(r), c))
		}
	}
	return m
}

// mul returns m * other.
func (m matrix) mul(other matrix) matrix {
	if m.cols != other.rows {
		panic("erasure: matrix dimension mismatch in mul")
	}
	out := newMatrix(m.rows, other.cols)
	for r := 0; r < m.rows; r++ {
		for c := 0; c < other.cols; c++ {
			var v byte
			for k := 0; k < m.cols; k++ {
				v ^= gfMul(m.at(r, k), other.at(k, c))
			}
			out.set(r, c, v)
		}
	}
	return out
}

// subMatrix returns the submatrix [rmin:rmax) x [cmin:cmax).
func (m matrix) subMatrix(rmin, cmin, rmax, cmax int) matrix {
	out := newMatrix(rmax-rmin, cmax-cmin)
	for r := rmin; r < rmax; r++ {
		for c := cmin; c < cmax; c++ {
			out.set(r-rmin, c-cmin, m.at(r, c))
		}
	}
	return out
}

// swapRows exchanges rows r1 and r2 in place.
func (m matrix) swapRows(r1, r2 int) {
	if r1 == r2 {
		return
	}
	a, b := m.row(r1), m.row(r2)
	for i := range a {
		a[i], b[i] = b[i], a[i]
	}
}

// errSingular is returned when a matrix that must be invertible is not;
// with distinct Vandermonde rows this indicates corrupted shard indices.
var errSingular = errors.New("erasure: matrix is singular")

// invert returns the inverse of a square matrix using Gauss–Jordan
// elimination, or errSingular.
func (m matrix) invert() (matrix, error) {
	if m.rows != m.cols {
		panic("erasure: cannot invert non-square matrix")
	}
	n := m.rows
	work := newMatrix(n, 2*n)
	for r := 0; r < n; r++ {
		copy(work.row(r)[:n], m.row(r))
		work.set(r, n+r, 1)
	}
	for c := 0; c < n; c++ {
		// Find a pivot.
		pivot := -1
		for r := c; r < n; r++ {
			if work.at(r, c) != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return matrix{}, errSingular
		}
		work.swapRows(c, pivot)
		// Scale pivot row to 1.
		if pv := work.at(c, c); pv != 1 {
			inv := gfInv(pv)
			mulSlice(inv, work.row(c), work.row(c))
		}
		// Eliminate column c from all other rows.
		for r := 0; r < n; r++ {
			if r == c {
				continue
			}
			if f := work.at(r, c); f != 0 {
				mulAddSlice(f, work.row(c), work.row(r))
			}
		}
	}
	return work.subMatrix(0, n, n, 2*n), nil
}
