package erasure

// Scalar reference implementations retained in every build as the
// differential-test oracle for the table-driven, span-parallel
// production paths. They mirror the package's original textbook
// single-byte code exactly: sequential, log/exp multiplication, one
// allocation per chunk. Tests assert Encode/Reconstruct/Verify are
// byte-identical to these; under -tags erasure_ref the production
// kernels themselves route through the same scalar arithmetic, making
// the comparison an identity check of the surrounding plumbing.

// encodeRef is the scalar reference Encode.
func (c *Coder) encodeRef(data []byte) [][]byte {
	size := c.EncodedChunkSize(len(data))
	chunks := make([][]byte, c.n)
	for i := range chunks {
		chunks[i] = make([]byte, size)
	}
	for i := 0; i < c.m; i++ {
		if lo := i * size; lo < len(data) {
			hi := min(lo+size, len(data))
			copy(chunks[i], data[lo:hi])
		}
	}
	for r := c.m; r < c.n; r++ {
		row := c.enc.row(r)
		mulSlice(row[0], chunks[0], chunks[r])
		for k := 1; k < c.m; k++ {
			mulAddSlice(row[k], chunks[k], chunks[r])
		}
	}
	return chunks
}

// reconstructRef is the scalar reference Reconstruct: always builds and
// inverts the decode matrix (no parity-only fast path), sequential.
func (c *Coder) reconstructRef(chunks [][]byte) error {
	if len(chunks) != c.n {
		return ErrChunkCount
	}
	size, present := -1, 0
	for _, ch := range chunks {
		if ch == nil {
			continue
		}
		present++
		if size < 0 {
			size = len(ch)
		} else if len(ch) != size {
			return ErrChunkSize
		}
	}
	if present < c.m {
		return ErrTooFewChunks
	}
	if present == c.n {
		return nil
	}
	sub := newMatrix(c.m, c.m)
	subChunks := make([][]byte, c.m)
	got := 0
	for i := 0; i < c.n && got < c.m; i++ {
		if chunks[i] != nil {
			copy(sub.row(got), c.enc.row(i))
			subChunks[got] = chunks[i]
			got++
		}
	}
	dec, err := sub.invert()
	if err != nil {
		return err
	}
	data := make([][]byte, c.m)
	for i := 0; i < c.m; i++ {
		if chunks[i] != nil {
			data[i] = chunks[i]
			continue
		}
		out := make([]byte, size)
		row := dec.row(i)
		for k := 0; k < c.m; k++ {
			mulAddSlice(row[k], subChunks[k], out)
		}
		data[i] = out
		chunks[i] = out
	}
	for r := c.m; r < c.n; r++ {
		if chunks[r] != nil {
			continue
		}
		out := make([]byte, size)
		row := c.enc.row(r)
		for k := 0; k < c.m; k++ {
			mulAddSlice(row[k], data[k], out)
		}
		chunks[r] = out
	}
	return nil
}
