package obs

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// DefaultLatencyBuckets are the upper bounds (seconds) used for every
// latency histogram in scalia: 100µs up to 10s, roughly ×2–×2.5 per
// step. The simulated blobstores answer in the tens of microseconds to
// low milliseconds; a real deployment lands mid-range.
var DefaultLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket histogram with lock-free observation:
// one atomic count per bucket (plus the implicit +Inf overflow bucket)
// and a CAS-maintained float64 sum.
type Histogram struct {
	bounds []float64       // sorted upper bounds, exclusive of +Inf
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	sum    atomic.Uint64   // math.Float64bits of the running sum
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets
	}
	bounds = append([]float64(nil), bounds...)
	sort.Float64s(bounds)
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one value. An observation v lands in the first
// bucket whose upper bound is >= v (Prometheus "le" semantics).
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the elapsed time since start, in seconds.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Seconds())
}

// Snapshot returns a point-in-time copy. Concurrent Observe calls may
// or may not be included, but each bucket count is individually
// consistent and snapshots taken later never show smaller counts.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds, // immutable after construction; shared
		Counts: make([]uint64, len(h.counts)),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	s.Sum = math.Float64frombits(h.sum.Load())
	return s
}

// HistogramSnapshot is an immutable copy of a histogram's state, the
// unit of quantile math, merging (across label series) and diffing
// (per-benchmark windows).
type HistogramSnapshot struct {
	Bounds []float64
	Counts []uint64 // len(Bounds)+1; last bucket is +Inf
	Count  uint64
	Sum    float64
}

// Quantile returns an estimate of the q-quantile (0 < q <= 1) assuming
// values are uniformly distributed inside each bucket. When the rank
// q·Count lands exactly on a bucket's cumulative count, the estimate is
// exact: it returns that bucket's upper bound. Returns NaN for an
// empty snapshot.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || q <= 0 || q > 1 || len(s.Counts) != len(s.Bounds)+1 {
		return math.NaN()
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		prev := cum
		cum += c
		if cum < rank {
			continue
		}
		if i == len(s.Bounds) {
			// Overflow bucket: no finite upper bound; report the
			// largest finite bound as the floor of the estimate.
			return s.Bounds[len(s.Bounds)-1]
		}
		hi := s.Bounds[i]
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		return lo + (hi-lo)*float64(rank-prev)/float64(c)
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Merge returns the element-wise sum of two snapshots over identical
// bucket layouts; it panics if the layouts differ (all scalia latency
// histograms share DefaultLatencyBuckets). Merging an empty snapshot
// (no bounds) with a populated one returns the populated one.
func (s HistogramSnapshot) Merge(o HistogramSnapshot) HistogramSnapshot {
	if len(s.Bounds) == 0 {
		return o
	}
	if len(o.Bounds) == 0 {
		return s
	}
	if len(s.Bounds) != len(o.Bounds) {
		panic("obs: merging histograms with different bucket layouts")
	}
	out := HistogramSnapshot{
		Bounds: s.Bounds,
		Counts: make([]uint64, len(s.Counts)),
		Count:  s.Count + o.Count,
		Sum:    s.Sum + o.Sum,
	}
	for i := range s.Counts {
		out.Counts[i] = s.Counts[i] + o.Counts[i]
	}
	return out
}

// Sub returns the per-bucket difference s − earlier, for isolating a
// measurement window (e.g. one benchmark run) out of cumulative
// counts. Buckets where earlier exceeds s clamp to zero.
func (s HistogramSnapshot) Sub(earlier HistogramSnapshot) HistogramSnapshot {
	if len(earlier.Bounds) == 0 {
		return s
	}
	if len(s.Bounds) != len(earlier.Bounds) {
		panic("obs: diffing histograms with different bucket layouts")
	}
	out := HistogramSnapshot{
		Bounds: s.Bounds,
		Counts: make([]uint64, len(s.Counts)),
	}
	for i := range s.Counts {
		if s.Counts[i] > earlier.Counts[i] {
			out.Counts[i] = s.Counts[i] - earlier.Counts[i]
		}
		out.Count += out.Counts[i]
	}
	if s.Sum > earlier.Sum {
		out.Sum = s.Sum - earlier.Sum
	}
	return out
}
