package workload

import (
	"bytes"
	"strings"
	"testing"
)

func TestTraceRoundTrip(t *testing.T) {
	scenarios := []Scenario{
		NewSlashdot(),                     // single object, quiet periods
		NewChurn(3),                       // creations, deletes, empty periods
		Mix(NewZipf(1), NewFlashCrowd(2)), // combinator output
	}
	for _, sc := range scenarios {
		var buf bytes.Buffer
		if err := Export(&buf, sc); err != nil {
			t.Fatalf("%s: export: %v", sc.Name(), err)
		}
		got, err := Import(&buf)
		if err != nil {
			t.Fatalf("%s: import: %v", sc.Name(), err)
		}
		if got.Name() != sc.Name() || got.Periods() != sc.Periods() {
			t.Fatalf("%s: header mismatch: %q/%d", sc.Name(), got.Name(), got.Periods())
		}
		for p := 0; p < sc.Periods(); p++ {
			if !loadsEqual(got.Load(p), sc.Load(p)) {
				t.Fatalf("%s: period %d differs:\n got %+v\nwant %+v",
					sc.Name(), p, got.Load(p), sc.Load(p))
			}
		}
	}
}

func TestRecordMatchesSource(t *testing.T) {
	sc := NewGallery()
	rec := Record(sc)
	if !sameScenario(rec, sc) {
		t.Fatal("recorded trace must replay the source exactly")
	}
	if rec.Load(-1) != nil || rec.Load(rec.Periods()) != nil {
		t.Fatal("out-of-range loads must be nil")
	}
}

func TestImportRejectsGarbage(t *testing.T) {
	const hdr = `{"format":"scalia-workload-trace","version":1,"name":"x","periods":1}` + "\n"
	cases := map[string]string{
		"empty":         "",
		"not json":      "hello\n",
		"wrong format":  `{"format":"other","version":1,"name":"x","periods":1}` + "\n",
		"wrong version": `{"format":"scalia-workload-trace","version":99,"name":"x","periods":1}` + "\n",
		"bad record":    hdr + "not json\n",
		"period out of range": hdr +
			`{"p":5,"obj":"a","size":1}` + "\n",
		"periods negative": `{"format":"scalia-workload-trace","version":1,"name":"x","periods":-1}` + "\n",
		"periods absurd":   `{"format":"scalia-workload-trace","version":1,"name":"x","periods":4611686018427387904}` + "\n",
		"negative size": hdr +
			`{"p":0,"obj":"a","size":-1048576,"reads":10}` + "\n",
		"negative reads": hdr +
			`{"p":0,"obj":"a","size":1,"reads":-10}` + "\n",
		"duplicate record": hdr +
			`{"p":0,"obj":"a","size":1,"reads":10}` + "\n" +
			`{"p":0,"obj":"a","size":1,"reads":10}` + "\n",
		"record after delete": `{"format":"scalia-workload-trace","version":1,"name":"x","periods":3}` + "\n" +
			`{"p":2,"obj":"a","size":1,"reads":1}` + "\n" + // out of line order on purpose
			`{"p":0,"obj":"a","size":1,"writes":1,"created":true,"deleted":true}` + "\n",
	}
	for name, in := range cases {
		if _, err := Import(strings.NewReader(in)); err == nil {
			t.Errorf("%s: import accepted invalid input", name)
		}
	}
}
