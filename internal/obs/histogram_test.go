package obs

import (
	"math"
	"sync"
	"testing"
)

func TestHistogramBucketAssignment(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 4, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// le=1 gets {0.5, 1}; le=2 gets {1.5, 2}; le=4 gets {3, 4}; +Inf gets {100}.
	want := []uint64{2, 2, 2, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d: got %d want %d (counts=%v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 7 {
		t.Errorf("Count = %d, want 7", s.Count)
	}
	if got, want := s.Sum, 0.5+1+1.5+2+3+4+100; math.Abs(got-want) > 1e-9 {
		t.Errorf("Sum = %v, want %v", got, want)
	}
}

func TestQuantileExactAtBucketEdges(t *testing.T) {
	// 100 observations split 50/50 across the first two buckets: the
	// p50 rank lands exactly on the first bucket's cumulative count, so
	// the estimate must be exactly the bucket bound — no interpolation
	// slack.
	h := newHistogram([]float64{1, 2, 3})
	for i := 0; i < 50; i++ {
		h.Observe(0.5)
		h.Observe(1.5)
	}
	s := h.Snapshot()
	if got := s.Quantile(0.5); got != 1.0 {
		t.Errorf("p50 = %v, want exactly 1.0", got)
	}
	if got := s.Quantile(1.0); got != 2.0 {
		t.Errorf("p100 = %v, want exactly 2.0", got)
	}
	// Rank interior to the second bucket: interpolated within (1, 2].
	if got := s.Quantile(0.75); got <= 1.0 || got > 2.0 {
		t.Errorf("p75 = %v, want in (1.0, 2.0]", got)
	}
}

func TestQuantileBounds(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	if !math.IsNaN(h.Snapshot().Quantile(0.5)) {
		t.Error("empty histogram quantile should be NaN")
	}
	h.Observe(0.5)
	s := h.Snapshot()
	if !math.IsNaN(s.Quantile(0)) || !math.IsNaN(s.Quantile(1.5)) {
		t.Error("out-of-range q should be NaN")
	}
	// Single observation: every quantile falls in the first bucket.
	if got := s.Quantile(0.99); got <= 0 || got > 1 {
		t.Errorf("q=0.99 with one sample = %v, want in (0, 1]", got)
	}
	// Overflow-bucket quantile reports the largest finite bound.
	h2 := newHistogram([]float64{1, 2})
	h2.Observe(50)
	if got := h2.Snapshot().Quantile(0.5); got != 2 {
		t.Errorf("overflow quantile = %v, want 2 (largest finite bound)", got)
	}
}

func TestSnapshotMergeAndSub(t *testing.T) {
	a := newHistogram([]float64{1, 2})
	b := newHistogram([]float64{1, 2})
	a.Observe(0.5)
	a.Observe(1.5)
	b.Observe(1.5)
	b.Observe(5)

	m := a.Snapshot().Merge(b.Snapshot())
	if m.Count != 4 {
		t.Errorf("merged Count = %d, want 4", m.Count)
	}
	if got := []uint64{m.Counts[0], m.Counts[1], m.Counts[2]}; got[0] != 1 || got[1] != 2 || got[2] != 1 {
		t.Errorf("merged counts = %v, want [1 2 1]", got)
	}
	if math.Abs(m.Sum-8.5) > 1e-9 {
		t.Errorf("merged Sum = %v, want 8.5", m.Sum)
	}

	// Merging with an empty snapshot is the identity.
	if got := a.Snapshot().Merge(HistogramSnapshot{}); got.Count != 2 {
		t.Errorf("merge with zero snapshot lost data: %+v", got)
	}

	early := a.Snapshot()
	a.Observe(1.8)
	a.Observe(1.9)
	d := a.Snapshot().Sub(early)
	if d.Count != 2 || d.Counts[1] != 2 {
		t.Errorf("diff = %+v, want 2 observations in bucket le=2", d)
	}
	if math.Abs(d.Sum-3.7) > 1e-9 {
		t.Errorf("diff Sum = %v, want 3.7", d.Sum)
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines
// while a reader repeatedly snapshots, checking that (a) snapshots are
// monotonically non-decreasing per bucket, and (b) the final tallies
// are exact. Run under -race this also proves the lock-free paths are
// data-race clean.
func TestHistogramConcurrent(t *testing.T) {
	const (
		writers        = 8
		perWriter      = 5000
		observedValue  = 1.5 // always lands in bucket le=2
		expectedBucket = 1
	)
	h := newHistogram([]float64{1, 2, 3})

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errc := make(chan string, 4)

	// Concurrent observers.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				h.Observe(observedValue)
			}
		}()
	}
	// Concurrent snapshotters asserting per-bucket monotonicity.
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			var last HistogramSnapshot
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := h.Snapshot()
				if last.Counts != nil {
					for i := range s.Counts {
						if s.Counts[i] < last.Counts[i] {
							select {
							case errc <- "bucket count went backwards":
							default:
							}
							return
						}
					}
					if s.Count < last.Count {
						select {
						case errc <- "total count went backwards":
						default:
						}
						return
					}
				}
				last = s
			}
		}()
	}

	wg.Wait()
	close(stop)
	readers.Wait()
	select {
	case msg := <-errc:
		t.Fatal(msg)
	default:
	}

	s := h.Snapshot()
	want := uint64(writers * perWriter)
	if s.Count != want {
		t.Errorf("final Count = %d, want %d", s.Count, want)
	}
	if s.Counts[expectedBucket] != want {
		t.Errorf("bucket le=2 = %d, want %d", s.Counts[expectedBucket], want)
	}
	if wantSum := float64(want) * observedValue; math.Abs(s.Sum-wantSum) > 1e-6*wantSum {
		t.Errorf("final Sum = %v, want %v", s.Sum, wantSum)
	}
}
