package scalia

// One benchmark per table/figure of the paper's evaluation (the
// regenerators behind DESIGN.md's experiment index), plus the ablation
// benches for the design choices DESIGN.md calls out. Figure benches
// report the headline reproduction metric (over-cost %) via
// b.ReportMetric, so `go test -bench .` doubles as the reproduction
// harness summary.

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"scalia/internal/cloud"
	"scalia/internal/core"
	"scalia/internal/engine"
	"scalia/internal/erasure"
	"scalia/internal/sim"
	"scalia/internal/stats"
	"scalia/internal/trend"
	"scalia/internal/workload"
)

var bgctx = context.Background()

// --- Figure/table regenerators ---

func BenchmarkFig02Rules(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, r := range core.PaperRules() {
			if err := r.Validate(); err != nil {
				b.Fatal(err)
			}
			_ = r.MinProviders()
		}
	}
}

func BenchmarkFig03Providers(b *testing.B) {
	load := stats.Summary{Periods: 1, Reads: 10, BytesOut: 1e7, StorageBytes: 1e6}
	for i := 0; i < b.N; i++ {
		specs := cloud.PaperProviders()
		p := core.Placement{Providers: specs, M: 4}
		_ = core.PeriodCost(p, load, 1)
	}
}

func BenchmarkFig05Lifetime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d := stats.NewLifetimeDist(0)
		for j := 0; j < 20; j++ {
			d.Observe(6 * float64(j) / 19)
		}
		_ = d.TTLCurve(0.5, 6)
	}
}

func BenchmarkFig08TrendHourly(b *testing.B) {
	series := workload.NewWebsite().HourlySeries(7 * 24)
	b.ResetTimer()
	var changes int
	for i := 0; i < b.N; i++ {
		changes = len(trend.Detect(series, 3, 0.1))
	}
	b.ReportMetric(float64(changes), "detections")
}

func BenchmarkFig09TrendDaily(b *testing.B) {
	series := workload.NewWebsite().DailySeries(90)
	b.ResetTimer()
	var changes int
	for i := 0; i < b.N; i++ {
		changes = len(trend.Detect(series, 3, 0.1))
	}
	b.ReportMetric(float64(changes), "detections")
}

func BenchmarkFig12SlashdotResources(b *testing.B) {
	var peak float64
	for i := 0; i < b.N; i++ {
		res, err := sim.SlashdotExperiment()
		if err != nil {
			b.Fatal(err)
		}
		for _, pt := range res.Resources {
			if pt.BwOutGB > peak {
				peak = pt.BwOutGB
			}
		}
	}
	b.ReportMetric(peak, "peak-bwout-GB")
}

func BenchmarkFig13Sets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if got := len(sim.StaticSets()); got != 26 {
			b.Fatalf("sets = %d", got)
		}
	}
}

func BenchmarkFig14SlashdotOverCost(b *testing.B) {
	var over float64
	for i := 0; i < b.N; i++ {
		res, err := sim.SlashdotExperiment()
		if err != nil {
			b.Fatal(err)
		}
		over = res.ScaliaOverPct
	}
	b.ReportMetric(over, "scalia-over-%")
}

func BenchmarkFig15GalleryResources(b *testing.B) {
	var storage float64
	for i := 0; i < b.N; i++ {
		res, err := sim.GalleryExperiment()
		if err != nil {
			b.Fatal(err)
		}
		storage = res.Resources[len(res.Resources)-1].StorageGB
	}
	b.ReportMetric(storage, "final-storage-GB")
}

func BenchmarkFig16GalleryOverCost(b *testing.B) {
	var over float64
	for i := 0; i < b.N; i++ {
		res, err := sim.GalleryExperiment()
		if err != nil {
			b.Fatal(err)
		}
		over = res.ScaliaOverPct
	}
	b.ReportMetric(over, "scalia-over-%")
}

func BenchmarkFig17AddProvider(b *testing.B) {
	var over float64
	for i := 0; i < b.N; i++ {
		res, err := sim.AddProviderExperiment()
		if err != nil {
			b.Fatal(err)
		}
		over = res.ScaliaOverPct
	}
	b.ReportMetric(over, "scalia-over-%")
}

func BenchmarkFig18ActiveRepair(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		res, static, err := sim.RepairExperiment()
		if err != nil {
			b.Fatal(err)
		}
		gap = static[len(static)-1] - res.CumulativeScalia[len(res.CumulativeScalia)-1]
	}
	b.ReportMetric(gap, "scalia-saving-USD")
}

// --- Ablations (DESIGN.md §5) ---

func benchPlacement(b *testing.B, pruned bool) {
	load := stats.Summary{Periods: 1, Reads: 25, BytesOut: 25e6, StorageBytes: 1e6}
	rule := core.Rule{Durability: 0.99999, Availability: 0.9999, LockIn: 1}
	specs := cloud.PaperProviders()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.BestPlacement(specs, rule, load, core.Options{Pruned: pruned}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlacementExact(b *testing.B)  { benchPlacement(b, false) }
func BenchmarkPlacementPruned(b *testing.B) { benchPlacement(b, true) }

func BenchmarkPlacementPrepared(b *testing.B) {
	load := stats.Summary{Periods: 1, Reads: 25, BytesOut: 25e6, StorageBytes: 1e6}
	rule := core.Rule{Durability: 0.99999, Availability: 0.9999, LockIn: 1}
	search, err := core.NewSearch(cloud.PaperProviders(), rule, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := search.Best(load, 0, nil); !r.Feasible {
			b.Fatal("infeasible")
		}
	}
}

// BenchmarkPlannerReuse contrasts per-object placement from scratch
// (core.BestPlacement re-runs feasibility filtering for every object)
// against the shared planner's epoch-cached prepared searches, across
// 1k objects with mixed rules — the hot-path win of the planner layer.
// ns/op is per 1000 placements.
func BenchmarkPlannerReuse(b *testing.B) {
	specs := cloud.PaperProviders()
	rules := core.PaperRules()
	const objects = 1000
	loads := make([]stats.Summary, objects)
	for i := range loads {
		loads[i] = stats.Summary{
			Periods: 1, Reads: float64(i % 50), Writes: 1,
			BytesOut: float64(i%50) * 1e6, BytesIn: 1e6,
			StorageBytes: float64(1+i%40) * 1e6,
		}
	}
	b.Run("per-object-bestplacement", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for j := 0; j < objects; j++ {
				if _, err := core.BestPlacement(specs, rules[j%len(rules)], loads[j], core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("planner-cached", func(b *testing.B) {
		b.ReportAllocs()
		planner := core.NewPlanner(1, false)
		for i := 0; i < b.N; i++ {
			for j := 0; j < objects; j++ {
				if _, err := planner.Best(1, specs, rules[j%len(rules)], loads[j], 0, nil); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

func newBenchBroker(b *testing.B, objects int) (*engine.Broker, *engine.SimClock) {
	b.Helper()
	clock := engine.NewSimClock()
	br := engine.NewBroker(engine.Config{Clock: clock})
	b.Cleanup(br.Close)
	e := br.Engine(0)
	for i := 0; i < objects; i++ {
		if _, err := e.Put(bgctx, "c", fmt.Sprintf("k%d", i), make([]byte, 4096), engine.PutOptions{}); err != nil {
			b.Fatal(err)
		}
	}
	br.FlushStats()
	return br, clock
}

func BenchmarkOptimizeTrendGated(b *testing.B) {
	br, clock := newBenchBroker(b, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clock.Advance(1)
		if _, err := br.Optimize(bgctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOptimizeFullScan(b *testing.B) {
	br, clock := newBenchBroker(b, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clock.Advance(1)
		if _, err := br.OptimizeFullScan(bgctx); err != nil {
			b.Fatal(err)
		}
	}
}

func benchRead(b *testing.B, cacheBytes int64) {
	br := engine.NewBroker(engine.Config{CacheBytes: cacheBytes})
	b.Cleanup(br.Close)
	e := br.Engine(0)
	if _, err := e.Put(bgctx, "c", "k", make([]byte, 256<<10), engine.PutOptions{}); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(256 << 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := e.Get(bgctx, "c", "k"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadCached(b *testing.B)   { benchRead(b, 64<<20) }
func BenchmarkReadUncached(b *testing.B) { benchRead(b, 0) }

func BenchmarkDecisionCoupling(b *testing.B) {
	h := stats.NewHistory(0)
	for p := int64(0); p < 200; p++ {
		h.Record(stats.Sample{Period: p, Reads: p % 24, BytesOut: (p % 24) * 1e6, StorageBytes: 1e6})
	}
	rule := core.Rule{Durability: 0.99999, Availability: 0.9999, LockIn: 1}
	search, err := core.NewSearch(cloud.PaperProviders(), rule, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctl := core.NewDecisionController(24, 0)
		for round := 0; round < 16; round++ {
			if !ctl.Tick() {
				continue
			}
			cands := ctl.Candidates(h.Span(199))
			bestIdx, bestPrice := 1, 0.0
			for j, d := range cands {
				sum := h.Summary(199, d)
				r := search.Best(sum, 0, nil)
				if j == 0 || r.Price < bestPrice {
					bestIdx, bestPrice = j, r.Price
				}
			}
			ctl.Update(bestIdx, cands)
		}
	}
}

func benchErasure(b *testing.B, m, n, size int) {
	coder, err := erasure.New(m, n)
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i)
	}
	b.SetBytes(int64(size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := coder.Encode(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkErasureEncode_m1n2_1MB(b *testing.B)  { benchErasure(b, 1, 2, 1<<20) }
func BenchmarkErasureEncode_m3n5_1MB(b *testing.B)  { benchErasure(b, 3, 5, 1<<20) }
func BenchmarkErasureEncode_m4n5_1MB(b *testing.B)  { benchErasure(b, 4, 5, 1<<20) }
func BenchmarkErasureEncode_m4n5_40MB(b *testing.B) { benchErasure(b, 4, 5, 40<<20) }

// BenchmarkEncode is the bench-gate guard for the table-driven encode
// kernels: the acceptance geometry (m=4, n=8) at a 4 MiB stripe on the
// pooled path, which must stay at 0 allocs/op. MB/s here is what the
// write and repair paths see per stripe.
func BenchmarkEncode(b *testing.B) {
	coder, err := erasure.Cached(4, 8)
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, 4<<20)
	for i := range data {
		data[i] = byte(i * 13)
	}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		chunks, err := coder.EncodePooled(data)
		if err != nil {
			b.Fatal(err)
		}
		erasure.ReleaseChunks(chunks)
	}
}

// BenchmarkDecode is the bench-gate guard for the reconstruct kernels:
// the same geometry with one data and one parity chunk lost, so every
// iteration pays the decode-matrix inversion plus the kernel work of
// regenerating both chunks and reassembling the stripe.
func BenchmarkDecode(b *testing.B) {
	coder, err := erasure.Cached(4, 8)
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, 4<<20)
	for i := range data {
		data[i] = byte(i * 31)
	}
	chunks, err := coder.Encode(data)
	if err != nil {
		b.Fatal(err)
	}
	damaged := make([][]byte, len(chunks))
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(damaged, chunks)
		damaged[1], damaged[6] = nil, nil
		got, err := coder.Decode(damaged, len(data))
		if err != nil {
			b.Fatal(err)
		}
		if len(got) != len(data) {
			b.Fatal("short decode")
		}
	}
}

func BenchmarkErasureDecodeWithLoss(b *testing.B) {
	coder, _ := erasure.New(3, 5)
	data := make([]byte, 1<<20)
	chunks, _ := coder.Encode(data)
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		damaged := make([][]byte, len(chunks))
		copy(damaged, chunks)
		damaged[0], damaged[3] = nil, nil
		if _, err := coder.Decode(damaged, len(data)); err != nil {
			b.Fatal(err)
		}
	}
}

// slowBackend delays chunk fetches by a fixed latency, standing in for
// the provider round-trip that dominates real GET latency. Writes stay
// fast so benchmark setup is cheap.
type slowBackend struct {
	*cloud.BlobStore
	delay time.Duration
}

func (s *slowBackend) Get(ctx context.Context, key string) ([]byte, error) {
	select {
	case <-time.After(s.delay):
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return s.BlobStore.Get(ctx, key)
}

func slowRegistry(delay time.Duration) *cloud.Registry {
	reg := cloud.NewRegistry()
	for _, spec := range cloud.PaperProviders() {
		reg.Register(&slowBackend{BlobStore: cloud.NewBlobStore(spec), delay: delay})
	}
	return reg
}

// BenchmarkGetLargeObject measures the streaming GET of an 8-stripe,
// m=4 object against providers with a simulated per-fetch round-trip:
// the sequential seed path (one chunk at a time, no read-ahead) vs the
// parallel chunk fan-out with stripe prefetch, vs a stripe-cache hit.
// The acceptance bar for the read-path rebuild is parallel-prefetch
// >= 2x faster than sequential; the bench-gate CI job watches all
// three for regressions.
func BenchmarkGetLargeObject(b *testing.B) {
	const (
		stripeBytes  = 256 << 10
		stripes      = 8
		chunkLatency = 300 * time.Microsecond
	)
	payload := make([]byte, stripes*stripeBytes)
	for i := range payload {
		payload[i] = byte(i)
	}
	rule := core.Rule{Name: "bench", Durability: 0.99999, Availability: 0.9999, LockIn: 1}

	run := func(b *testing.B, cfg engine.Config, warmCache bool) {
		b.Helper()
		cfg.Registry = slowRegistry(chunkLatency)
		cfg.StripeBytes = stripeBytes
		br := engine.NewBroker(cfg)
		b.Cleanup(br.Close)
		e := br.Engine(0)
		meta, err := e.Put(bgctx, "big", "blob", payload, engine.PutOptions{Rule: &rule})
		if err != nil {
			b.Fatal(err)
		}
		if meta.M != 4 || meta.StripeCount() != stripes {
			b.Fatalf("placement m=%d stripes=%d, want m=4 stripes=%d", meta.M, meta.StripeCount(), stripes)
		}
		if warmCache {
			if _, _, err := e.Get(bgctx, "big", "blob"); err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(int64(len(payload)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			got, _, err := e.Get(bgctx, "big", "blob")
			if err != nil || len(got) != len(payload) {
				b.Fatalf("get: %v (%d bytes)", err, len(got))
			}
		}
	}

	b.Run("sequential", func(b *testing.B) {
		run(b, engine.Config{ReadParallelism: -1, PrefetchStripes: -1}, false)
	})
	b.Run("parallel-prefetch", func(b *testing.B) {
		run(b, engine.Config{}, false)
	})
	b.Run("stripe-cached", func(b *testing.B) {
		run(b, engine.Config{CacheBytes: 64 << 20}, true)
	})
}

func slowRWRegistry(delay time.Duration) *cloud.Registry {
	reg := cloud.NewRegistry()
	for _, spec := range cloud.PaperProviders() {
		reg.Register(&slowRWBackend{BlobStore: cloud.NewBlobStore(spec), delay: delay})
	}
	return reg
}

// BenchmarkPutLargeObject measures the streaming PUT of an 8-stripe,
// m=4 object against providers with a simulated per-op round-trip: the
// sequential seed path (encode stripe s, fan it out, wait, touch
// stripe s+1) vs the write pipeline (stripe s+1 erasure-codes while
// stripe s's chunks are in flight) vs the pipeline squeezed through a
// two-slot shared buffer budget. The acceptance bar for the write-path
// rebuild is pipelined >= 2x faster than sequential; the bench-gate CI
// job watches all three for regressions.
func BenchmarkPutLargeObject(b *testing.B) {
	const (
		stripeBytes  = 256 << 10
		stripes      = 8
		chunkLatency = 5 * time.Millisecond
	)
	payload := make([]byte, stripes*stripeBytes)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	rule := core.Rule{Name: "bench", Durability: 0.99999, Availability: 0.9999, LockIn: 1}

	run := func(b *testing.B, cfg engine.Config) {
		b.Helper()
		cfg.Registry = slowRWRegistry(chunkLatency)
		cfg.StripeBytes = stripeBytes
		br := engine.NewBroker(cfg)
		b.Cleanup(br.Close)
		e := br.Engine(0)
		meta, err := e.PutReader(bgctx, "big", "blob", bytes.NewReader(payload), int64(len(payload)), engine.PutOptions{Rule: &rule})
		if err != nil {
			b.Fatal(err)
		}
		if meta.M != 4 || meta.StripeCount() != stripes {
			b.Fatalf("placement m=%d stripes=%d, want m=4 stripes=%d", meta.M, meta.StripeCount(), stripes)
		}
		b.SetBytes(int64(len(payload)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := e.PutReader(bgctx, "big", "blob", bytes.NewReader(payload), int64(len(payload)), engine.PutOptions{Rule: &rule}); err != nil {
				b.Fatal(err)
			}
		}
	}

	b.Run("sequential", func(b *testing.B) {
		run(b, engine.Config{WritePipelineDepth: -1})
	})
	b.Run("pipelined", func(b *testing.B) {
		run(b, engine.Config{})
	})
	b.Run("pipelined-budget-contended", func(b *testing.B) {
		// Two budget slots for eight stripes: the pipeline stalls on the
		// shared read/write buffer budget, not on the providers. Still
		// faster than sequential (two stripes overlap), but bounded.
		run(b, engine.Config{MaxBufferBytes: 2 * stripeBytes})
	})
}

func BenchmarkBrokerPut(b *testing.B) {
	br := engine.NewBroker(engine.Config{})
	b.Cleanup(br.Close)
	e := br.Engine(0)
	payload := make([]byte, 64<<10)
	b.SetBytes(64 << 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Put(bgctx, "c", fmt.Sprintf("k%d", i), payload, engine.PutOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// slowRWBackend delays both chunk reads and writes by the provider
// round-trip, for benchmarks whose hot path is write traffic (repair).
type slowRWBackend struct {
	*cloud.BlobStore
	delay time.Duration
}

func (s *slowRWBackend) Get(ctx context.Context, key string) ([]byte, error) {
	select {
	case <-time.After(s.delay):
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return s.BlobStore.Get(ctx, key)
}

func (s *slowRWBackend) Put(ctx context.Context, key string, data []byte) error {
	select {
	case <-time.After(s.delay):
	case <-ctx.Done():
		return ctx.Err()
	}
	return s.BlobStore.Put(ctx, key, data)
}

// PutBatch pays the round-trip ONCE for the whole batch — the
// amortization the swap batcher exists to exploit. Without this
// override the embedded BlobStore's PutBatch would be free of the
// simulated latency entirely.
func (s *slowRWBackend) PutBatch(ctx context.Context, items []cloud.BatchItem) error {
	select {
	case <-time.After(s.delay):
	case <-ctx.Done():
		return ctx.Err()
	}
	return s.BlobStore.PutBatch(ctx, items)
}

// BenchmarkRepairSwap measures one active repair of an 8-stripe (m=2,
// n=3) object after a single provider failure, against providers with a
// simulated per-op round-trip: the same-(m,n) chunk-swap path (write
// only the missing chunk of every stripe, update metadata in place) vs
// the forced full re-stripe (read, re-encode and rewrite everything).
// The paper's §IV-E claim is the acceptance bar: the swap must write
// strictly fewer bytes — reported as bytes-written/op and chunks/op —
// and take less wall time per repair. The bench-gate CI job watches
// both for regressions.
func BenchmarkRepairSwap(b *testing.B) {
	const (
		stripeBytes = 128 << 10
		stripes     = 8
		opLatency   = 300 * time.Microsecond
	)
	payload := make([]byte, stripes*stripeBytes)
	for i := range payload {
		payload[i] = byte(i * 13)
	}
	rule := core.Rule{Name: "wide", Durability: 0.9999, Availability: 0.99, LockIn: 1.0 / 3}

	run := func(b *testing.B, force bool) {
		b.Helper()
		reg := cloud.NewRegistry()
		// D is priced so the optimizer never includes it up front: it
		// exists purely as the repair spare.
		prices := []cloud.Pricing{
			{StorageGBMonth: 0.10, BandwidthInGB: 0.1, BandwidthOutGB: 0.15, OpsPer1000: 0.01},
			{StorageGBMonth: 0.11, BandwidthInGB: 0.1, BandwidthOutGB: 0.15, OpsPer1000: 0.01},
			{StorageGBMonth: 0.12, BandwidthInGB: 0.1, BandwidthOutGB: 0.15, OpsPer1000: 0.01},
			{StorageGBMonth: 0.50, BandwidthInGB: 0.5, BandwidthOutGB: 0.15, OpsPer1000: 0.01},
		}
		for i, name := range []string{"A", "B", "C", "D"} {
			reg.Register(&slowRWBackend{BlobStore: cloud.NewBlobStore(cloud.Spec{
				Name: name, Durability: 0.9999, Availability: 0.999,
				Zones:   []cloud.Zone{cloud.ZoneUS},
				Pricing: prices[i],
			}), delay: opLatency})
		}
		br := engine.NewBroker(engine.Config{
			Registry: reg, StripeBytes: stripeBytes, ForceRestripeRepair: force,
		})
		b.Cleanup(br.Close)
		br.Rules().SetContainerRule("bk", rule)
		e := br.Engine(0)
		meta, err := e.Put(bgctx, "bk", "obj", payload, engine.PutOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if meta.M != 2 || len(meta.Chunks) != 3 {
			b.Fatalf("placement m=%d n=%d, want (2, 3)", meta.M, len(meta.Chunks))
		}
		var bytesWritten, chunksWritten int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			meta, err := e.Head(bgctx, "bk", "obj")
			if err != nil {
				b.Fatal(err)
			}
			victim := meta.Chunks[0]
			if !br.Registry().SetAvailable(victim, false) {
				b.Fatalf("cannot down %s", victim)
			}
			b.StartTimer()
			rep, err := br.Repair(bgctx, engine.RepairActive)
			b.StopTimer()
			if err != nil || rep.Repaired != 1 {
				b.Fatalf("repair: %v (%+v)", err, rep)
			}
			if force && rep.Restriped != 1 || !force && rep.Swapped != 1 {
				b.Fatalf("wrong repair mechanism: %+v (force=%v)", rep, force)
			}
			bytesWritten += rep.BytesWritten
			chunksWritten += int64(rep.ChunksWritten)
			br.Registry().SetAvailable(victim, true)
			br.ProcessPendingDeletes(bgctx)
			b.StartTimer()
		}
		b.ReportMetric(float64(bytesWritten)/float64(b.N), "bytes-written/op")
		b.ReportMetric(float64(chunksWritten)/float64(b.N), "chunks/op")
	}

	b.Run("swap", func(b *testing.B) { run(b, false) })
	b.Run("restripe", func(b *testing.B) { run(b, true) })
}

// BenchmarkRepairAffected measures one repair pass after a
// single-provider outage affecting ~1% of a multi-thousand-object
// store: the provider→objects inverted index enumerates only the
// affected objects, against the pre-index full scan kept as
// RepairFullScan. objects-checked/op is the headline ablation metric —
// indexed stays at the affected count while fullscan walks the store.
func BenchmarkRepairAffected(b *testing.B) {
	const total, affectedPct = 3000, 100 // 1 in 100 objects lands on the victim
	setup := func(b *testing.B) *engine.Broker {
		b.Helper()
		reg := cloud.NewRegistry()
		for _, name := range []string{"A", "B", "C"} {
			reg.Register(cloud.NewBlobStore(cloud.Spec{
				Name: name, Durability: 0.99999, Availability: 0.999,
				Zones:   []cloud.Zone{cloud.ZoneUS},
				Pricing: cloud.Pricing{StorageGBMonth: 0.10, BandwidthInGB: 0.1, BandwidthOutGB: 0.15, OpsPer1000: 0.01},
			}))
		}
		// The victim serves a zone of its own so only the "vic"
		// container's rule ever places chunks there.
		reg.Register(cloud.NewBlobStore(cloud.Spec{
			Name: "V", Durability: 0.99999, Availability: 0.999,
			Zones:   []cloud.Zone{cloud.ZoneAPAC},
			Pricing: cloud.Pricing{StorageGBMonth: 0.10, BandwidthInGB: 0.1, BandwidthOutGB: 0.15, OpsPer1000: 0.01},
		}))
		br := engine.NewBroker(engine.Config{Registry: reg, Clock: engine.NewSimClock()})
		b.Cleanup(br.Close)
		br.Rules().SetContainerRule("hot", core.Rule{
			Durability: 0.9999, Availability: 0.99, Zones: []cloud.Zone{cloud.ZoneUS}, LockIn: 1.0 / 3,
		})
		br.Rules().SetContainerRule("vic", core.Rule{
			Durability: 0.999, Availability: 0.99, Zones: []cloud.Zone{cloud.ZoneAPAC}, LockIn: 1,
		})
		e := br.Engine(0)
		payload := make([]byte, 512)
		for i := 0; i < total; i++ {
			container := "hot"
			if i%affectedPct == 0 {
				container = "vic"
			}
			if _, err := e.Put(bgctx, container, fmt.Sprintf("k%d", i), payload, engine.PutOptions{}); err != nil {
				b.Fatal(err)
			}
		}
		br.FlushStats()
		return br
	}
	run := func(b *testing.B, pass func(*engine.Broker) (engine.RepairReport, error)) {
		b.Helper()
		br := setup(b)
		var checked, affected int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			br.Registry().SetAvailable("V", false)
			rep, err := pass(br)
			if err != nil || rep.Affected != total/affectedPct {
				b.Fatalf("repair: %v (%+v)", err, rep)
			}
			br.Registry().SetAvailable("V", true)
			checked += int64(rep.Checked)
			affected += int64(rep.Affected)
		}
		b.ReportMetric(float64(checked)/float64(b.N), "objects-checked/op")
		b.ReportMetric(float64(affected)/float64(b.N), "objects-affected/op")
	}
	b.Run("indexed", func(b *testing.B) {
		run(b, func(br *engine.Broker) (engine.RepairReport, error) {
			return br.Repair(bgctx, engine.RepairWait)
		})
	})
	b.Run("fullscan", func(b *testing.B) {
		run(b, func(br *engine.Broker) (engine.RepairReport, error) {
			return br.RepairFullScan(bgctx, engine.RepairWait)
		})
	})
}

// BenchmarkReoptimizeEvent measures reacting to one market event (a
// pricing change on a provider carrying data): the event-driven path
// drains exactly the invalidated objects from the maintenance queue,
// against the periodic full-store Optimize the event path replaces.
// The two pricing sheets differ by a hair so the re-plan keeps every
// placement put — isolating invalidation + re-plan cost from migration
// traffic.
func BenchmarkReoptimizeEvent(b *testing.B) {
	sheets := []cloud.Pricing{
		{StorageGBMonth: 0.100, BandwidthInGB: 0.10, BandwidthOutGB: 0.15, OpsPer1000: 0.01},
		{StorageGBMonth: 0.101, BandwidthInGB: 0.10, BandwidthOutGB: 0.15, OpsPer1000: 0.01},
	}
	b.Run("event-drain", func(b *testing.B) {
		br, _ := newBenchBroker(b, 512)
		victim := br.ProviderIndex().ProviderNames()[0]
		var drained int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := br.Registry().UpdatePricing(victim, sheets[i%2]); err != nil {
				b.Fatal(err)
			}
			drained += int64(br.DrainMaintenance(bgctx))
		}
		b.ReportMetric(float64(drained)/float64(b.N), "objects-replanned/op")
	})
	b.Run("full-optimize", func(b *testing.B) {
		br, clock := newBenchBroker(b, 512)
		victim := br.ProviderIndex().ProviderNames()[0]
		var scanned int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := br.Registry().UpdatePricing(victim, sheets[i%2]); err != nil {
				b.Fatal(err)
			}
			clock.Advance(1)
			rep, err := br.OptimizeFullScan(bgctx)
			if err != nil {
				b.Fatal(err)
			}
			scanned += int64(rep.Scanned)
		}
		b.ReportMetric(float64(scanned)/float64(b.N), "objects-replanned/op")
	})
}
