package workload

import (
	"math"
	"testing"
)

// loadsEqual compares two per-period load slices element-wise.
func loadsEqual(a, b []PeriodLoad) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// sameScenario reports whether two scenarios produce identical loads.
func sameScenario(a, b Scenario) bool {
	if a.Periods() != b.Periods() {
		return false
	}
	for p := 0; p < a.Periods(); p++ {
		if !loadsEqual(a.Load(p), b.Load(p)) {
			return false
		}
	}
	return true
}

func TestPoissonMean(t *testing.T) {
	for _, lambda := range []float64{0.5, 3, 40, 800} {
		var sum int64
		n := 2000
		for i := 0; i < n; i++ {
			sum += poisson(lambda, 42, uint64(i))
		}
		mean := float64(sum) / float64(n)
		if math.Abs(mean-lambda) > 4*math.Sqrt(lambda/float64(n))+0.05 {
			t.Errorf("poisson(%v) mean = %v", lambda, mean)
		}
	}
	if poisson(0, 1, 2) != 0 || poisson(-1, 1, 2) != 0 {
		t.Error("non-positive rates must yield 0")
	}
}

func TestZipfWeights(t *testing.T) {
	w := ZipfWeights(50, 1.1)
	sum := 0.0
	for i, v := range w {
		sum += v
		if i > 0 && v >= w[i-1] {
			t.Fatalf("weights must strictly decrease: w[%d]=%v w[%d]=%v", i-1, w[i-1], i, v)
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("weights sum = %v", sum)
	}
}

func TestExpDecay(t *testing.T) {
	if ExpDecay(-1, 6) != 0 {
		t.Fatal("future events must contribute 0")
	}
	if ExpDecay(0, 6) != 1 {
		t.Fatal("decay at age 0 must be 1")
	}
	if math.Abs(ExpDecay(6, 6)-0.5) > 1e-12 {
		t.Fatalf("one half-life = %v", ExpDecay(6, 6))
	}
}

func TestGeneratorsDeterministicUnderSeed(t *testing.T) {
	pairs := []struct {
		name string
		a, b Scenario
	}{
		{"zipf", NewZipf(7), NewZipf(7)},
		{"flashcrowd", NewFlashCrowd(7), NewFlashCrowd(7)},
		{"churn", NewChurn(7), NewChurn(7)},
	}
	for _, p := range pairs {
		if !sameScenario(p.a, p.b) {
			t.Errorf("%s: same seed must reproduce identical loads", p.name)
		}
	}
	diff := []struct {
		name string
		a, b Scenario
	}{
		{"zipf", NewZipf(7), NewZipf(8)},
		{"flashcrowd", NewFlashCrowd(7), NewFlashCrowd(8)},
		{"churn", NewChurn(7), NewChurn(8)},
	}
	for _, p := range diff {
		if sameScenario(p.a, p.b) {
			t.Errorf("%s: different seeds must differ", p.name)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	z := NewZipf(1)
	reads := map[string]int64{}
	creations := 0
	for p := 0; p < z.Periods(); p++ {
		for _, l := range z.Load(p) {
			reads[l.Object] += l.Reads
			if l.Created {
				creations++
			}
		}
	}
	if creations != z.Objects {
		t.Fatalf("creations = %d, want %d", creations, z.Objects)
	}
	hot, cold := reads["zipf/obj000"], reads["zipf/obj039"]
	if hot < 10*cold {
		t.Fatalf("popularity skew too flat: hot=%d cold=%d", hot, cold)
	}
	var total int64
	for _, r := range reads {
		total += r
	}
	want := z.OpsPerPeriod * float64(z.Periods())
	if math.Abs(float64(total)-want) > 0.1*want {
		t.Fatalf("total reads = %d, want ~%v", total, want)
	}
}

func TestFlashCrowdSpike(t *testing.T) {
	f := NewFlashCrowd(2)
	for i := 0; i < f.Objects; i++ {
		at := f.SpikeAt(i)
		if at < f.TotalPeriods/8 || at >= f.TotalPeriods*7/8 {
			t.Fatalf("object %d spikes at %d, outside the mid-run band", i, at)
		}
		if f.RateAt(i, at) < f.SpikePeak/2 {
			t.Fatalf("object %d spike rate = %v, want >= %v", i, f.RateAt(i, at), f.SpikePeak/2)
		}
		// Long before the spike the rate is the quiet base.
		if r := f.RateAt(i, 0); r > f.BaseReads+1 {
			t.Fatalf("object %d not quiet at start: %v", i, r)
		}
		// Decay: well after the spike the rate has come back down.
		after := at + 10*int(f.SpikeHalfLife)
		if r := f.RateAt(i, after); r > f.BaseReads+1 {
			t.Fatalf("object %d not decayed by %d: %v", i, after, r)
		}
	}
}

func TestChurnLifecycle(t *testing.T) {
	c := NewChurn(3)
	created := map[string]int{}
	deleted := map[string]int{}
	lastSeen := map[string]int{}
	for p := 0; p < c.Periods(); p++ {
		for _, l := range c.Load(p) {
			if l.Created {
				if _, dup := created[l.Object]; dup {
					t.Fatalf("%s created twice", l.Object)
				}
				created[l.Object] = p
			}
			if l.Deleted {
				if _, dup := deleted[l.Object]; dup {
					t.Fatalf("%s deleted twice", l.Object)
				}
				deleted[l.Object] = p
			}
			lastSeen[l.Object] = p
		}
	}
	if len(created) < 20 {
		t.Fatalf("only %d arrivals in a week at 0.5/hour", len(created))
	}
	if len(deleted) == 0 {
		t.Fatal("48 h mean lifetimes must produce deletes within a week")
	}
	if len(deleted) >= len(created) {
		t.Fatalf("all %d objects died; some must outlive the scenario", len(created))
	}
	for obj, dp := range deleted {
		cp, ok := created[obj]
		if !ok {
			t.Fatalf("%s deleted but never created", obj)
		}
		if dp < cp {
			t.Fatalf("%s deleted at %d before creation at %d", obj, dp, cp)
		}
		if lastSeen[obj] > dp {
			t.Fatalf("%s has load at %d after deletion at %d", obj, lastSeen[obj], dp)
		}
	}
}
