package scalia

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"sync"
	"testing"

	"scalia/internal/engine"
)

var ctx = context.Background()

func newClient(t *testing.T, opts Options) *Client {
	t.Helper()
	c, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestFacadeRoundTrip(t *testing.T) {
	c := newClient(t, Options{})
	payload := bytes.Repeat([]byte("multi-cloud"), 500)
	meta, err := c.Put(ctx, "docs", "readme.txt", payload, WithMIME("text/plain"))
	if err != nil {
		t.Fatal(err)
	}
	if meta.M < 1 || len(meta.Chunks) < 2 {
		t.Fatalf("placement: %+v", meta)
	}
	got, gotMeta, err := c.Get(ctx, "docs", "readme.txt")
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("Get: %v", err)
	}
	if gotMeta.MIME != "text/plain" {
		t.Fatalf("MIME = %q", gotMeta.MIME)
	}
	keys, err := c.List(ctx, "docs")
	if err != nil || len(keys) != 1 || keys[0] != "readme.txt" {
		t.Fatalf("List = %v, %v", keys, err)
	}
	if err := c.Delete(ctx, "docs", "readme.txt"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Get(ctx, "docs", "readme.txt"); err == nil {
		t.Fatal("object must be gone")
	}
}

// TestFacadeGetRangeAndReadKnobs drives the ranged read and the
// read-path knobs through the embedded facade: a mid-object range
// returns exactly its bytes, and a deployment pinned to the sequential
// path still serves correct data.
func TestFacadeGetRangeAndReadKnobs(t *testing.T) {
	c := newClient(t, Options{StripeBytes: 2048, CacheBytes: 1 << 20})
	payload := bytes.Repeat([]byte("stripes!"), 2048) // 16 KiB, 8 stripes
	if _, err := c.Put(ctx, "big", "blob", payload); err != nil {
		t.Fatal(err)
	}
	rc, meta, err := c.GetRange(ctx, "big", "blob", 5000, 3000)
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(rc)
	rc.Close()
	if err != nil || !bytes.Equal(got, payload[5000:8000]) {
		t.Fatalf("GetRange: %v, %d bytes", err, len(got))
	}
	if meta.Stripes < 8 {
		t.Fatalf("Stripes = %d, want a striped object", meta.Stripes)
	}

	seq := newClient(t, Options{StripeBytes: 2048, ReadParallelism: -1, PrefetchStripes: -1})
	if _, err := seq.Put(ctx, "big", "blob", payload); err != nil {
		t.Fatal(err)
	}
	got2, _, err := seq.Get(ctx, "big", "blob")
	if err != nil || !bytes.Equal(got2, payload) {
		t.Fatalf("sequential-mode Get: %v", err)
	}
}

func TestFacadeRuleOptions(t *testing.T) {
	c := newClient(t, Options{})
	rule := Rule{Name: "wide", Durability: 0.99999, Availability: 0.99, LockIn: 0.2}
	meta, err := c.Put(ctx, "c", "k", make([]byte, 4096), WithRule(rule), WithTTL(48))
	if err != nil {
		t.Fatal(err)
	}
	if len(meta.Chunks) < 5 {
		t.Fatalf("lock-in 0.2 demands 5 providers, got %v", meta.Chunks)
	}
	if meta.TTLHours != 48 {
		t.Fatalf("TTL = %v", meta.TTLHours)
	}
}

func TestFacadeInvalidDefaultRule(t *testing.T) {
	if _, err := New(Options{DefaultRule: Rule{LockIn: 2}}); err == nil {
		t.Fatal("invalid rule must be rejected")
	}
}

func TestFacadeProviderLifecycle(t *testing.T) {
	c := newClient(t, Options{})
	cheap := Provider{
		Name: "budget", Durability: 0.999999, Availability: 0.999,
		Zones:   []Zone{ZoneUS},
		Pricing: Pricing{StorageGBMonth: 0.01, BandwidthInGB: 0.01, BandwidthOutGB: 0.01},
	}
	c.AddProvider(cheap)
	meta, err := c.Put(ctx, "c", "k", make([]byte, 1000))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range meta.Chunks {
		if p == "budget" {
			found = true
		}
	}
	if !found {
		t.Fatalf("dirt-cheap provider ignored: %v", meta.Chunks)
	}
	if !c.RemoveProvider("budget") {
		t.Fatal("RemoveProvider failed")
	}
	if c.RemoveProvider("budget") {
		t.Fatal("double remove must report false")
	}
}

func TestFacadeOutageAndRepair(t *testing.T) {
	c := newClient(t, Options{})
	meta, err := c.Put(ctx, "c", "k", make([]byte, 10000))
	if err != nil {
		t.Fatal(err)
	}
	if !c.SetProviderAvailable(meta.Chunks[0], false) {
		t.Fatal("SetProviderAvailable failed")
	}
	// Reads survive the outage thanks to erasure redundancy.
	got, _, err := c.Get(ctx, "c", "k")
	if err != nil || len(got) != 10000 {
		t.Fatalf("read during outage: %v", err)
	}
	rep, err := c.Repair(ctx, RepairActive)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Repaired != 1 {
		t.Fatalf("repair report: %+v", rep)
	}
	if rep.Swapped+rep.Restriped != rep.Repaired || rep.ChunksWritten == 0 {
		t.Fatalf("repair mechanism split missing from the report: %+v", rep)
	}
	after, _ := c.Head(ctx, "c", "k")
	for _, p := range after.Chunks {
		if p == meta.Chunks[0] {
			t.Fatal("repaired object still on the failed provider")
		}
	}
}

func TestFacadeOptimizeAndCosting(t *testing.T) {
	clock := engine.NewSimClock()
	c := newClient(t, Options{Clock: clock, CacheBytes: 0})
	if _, err := c.Put(ctx, "c", "k", make([]byte, 1<<20)); err != nil {
		t.Fatal(err)
	}
	for h := 0; h < 5; h++ {
		clock.Advance(1)
		for r := 0; r < 120; r++ {
			if _, _, err := c.Get(ctx, "c", "k"); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := c.Optimize(ctx); err != nil {
			t.Fatal(err)
		}
		c.AccrueStorage(1)
	}
	p, ok := c.CurrentPlacement("c", "k")
	if !ok {
		t.Fatal("placement unknown")
	}
	if p.M != 1 {
		t.Fatalf("hot object placement %v, want m:1", p)
	}
	if c.TotalCost() <= 0 {
		t.Fatal("usage must have accrued cost")
	}
	u := c.TotalUsage()
	if u.BandwidthOutGB <= 0 || u.Ops <= 0 || u.StorageGBHours <= 0 {
		t.Fatalf("usage = %+v", u)
	}
}

func TestFacadeContainerRule(t *testing.T) {
	c := newClient(t, Options{})
	err := c.SetContainerRule("eu-only", Rule{
		Name: "eu", Durability: 0.9999, Availability: 0.9999,
		Zones: []Zone{ZoneEU}, LockIn: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	meta, err := c.Put(ctx, "eu-only", "doc", make([]byte, 100))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range meta.Chunks {
		if p != "S3(h)" && p != "S3(l)" {
			t.Fatalf("non-EU provider %s for EU container", p)
		}
	}
	if err := c.SetContainerRule("bad", Rule{LockIn: -1}); err == nil {
		t.Fatal("invalid container rule accepted")
	}
}

func TestPaperTables(t *testing.T) {
	if got := len(PaperProviders()); got != 5 {
		t.Fatalf("PaperProviders = %d", got)
	}
	if got := len(PaperRules()); got != 3 {
		t.Fatalf("PaperRules = %d", got)
	}
}

// TestConcurrentRoundRobin is the -race regression for the engine()
// round-robin counter: Put/Get/Delete from many goroutines must neither
// race nor skew the rotation out of range.
func TestConcurrentRoundRobin(t *testing.T) {
	c := newClient(t, Options{EnginesPerDC: 3})
	if _, err := c.Put(ctx, "c", "shared", bytes.Repeat([]byte("x"), 4096)); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			key := fmt.Sprintf("own-%d", g)
			for i := 0; i < 25; i++ {
				if _, err := c.Put(ctx, "c", key, []byte("payload")); err != nil {
					errs <- err
					return
				}
				if _, _, err := c.Get(ctx, "c", "shared"); err != nil {
					errs <- err
					return
				}
				if _, _, err := c.Get(ctx, "c", key); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestMarketEventsInvalidateCachedSearches is the §IV-D CheapStor
// regression: AddProvider / SetProviderAvailable / RemoveProvider
// mid-run must bump the market epoch and invalidate the broker's cached
// placement searches, so the next Optimize() (and the next write) sees
// the new market instead of a stale one.
func TestMarketEventsInvalidateCachedSearches(t *testing.T) {
	clock := engine.NewSimClock()
	c := newClient(t, Options{Clock: clock, DecisionPeriod: 4, MigrationHorizon: 5000})
	reg := c.Broker().Registry()
	rule := Rule{Name: "lockin", Durability: 0.99999, Availability: 0.99, LockIn: 0.2}
	payload := bytes.Repeat([]byte("b"), 40<<20) // 40 MB backup object
	if _, err := c.Put(ctx, "bk", "o", payload, WithRule(rule)); err != nil {
		t.Fatal(err)
	}
	before, _ := c.CurrentPlacement("bk", "o")
	if before.Has("CheapStor") {
		t.Fatal("CheapStor not in the market yet")
	}

	// Arrival: the epoch must move and the optimizer must migrate onto
	// the cheaper provider, as in the paper's Fig. 17 scenario.
	e0 := reg.Epoch()
	c.AddProvider(Provider{
		Name: "CheapStor", Durability: 0.999999, Availability: 0.999,
		Zones:   []Zone{ZoneUS},
		Pricing: Pricing{StorageGBMonth: 0.09, BandwidthInGB: 0.1, BandwidthOutGB: 0.15, OpsPer1000: 0.01},
	})
	if reg.Epoch() == e0 {
		t.Fatal("AddProvider must bump the market epoch")
	}
	clock.Advance(1)
	c.Get(ctx, "bk", "o")
	clock.Advance(1)
	c.Get(ctx, "bk", "o")
	for i := 0; i < 6; i++ {
		clock.Advance(1)
		if _, err := c.Optimize(ctx); err != nil {
			t.Fatal(err)
		}
	}
	after, _ := c.CurrentPlacement("bk", "o")
	if !after.Has("CheapStor") {
		t.Fatalf("placement %v ignores the arrival; cached search went stale", after)
	}

	// Outage through the facade: epoch bump, planner rebuild, and the
	// next write plans around the down provider.
	e1 := reg.Epoch()
	miss0 := c.Broker().Planner().Stats().Misses
	if !c.SetProviderAvailable("CheapStor", false) {
		t.Fatal("SetProviderAvailable failed")
	}
	if reg.Epoch() == e1 {
		t.Fatal("SetProviderAvailable must bump the market epoch")
	}
	meta, err := c.Put(ctx, "bk", "fresh", bytes.Repeat([]byte("x"), 4096), WithRule(rule))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range meta.Chunks {
		if name == "CheapStor" {
			t.Fatal("write placed a chunk on the down provider")
		}
	}
	if c.Broker().Planner().Stats().Misses == miss0 {
		t.Fatal("outage must invalidate the cached search (expected a planner miss)")
	}

	// Departure: epoch bump and the market shrinks for good.
	e2 := reg.Epoch()
	if !c.RemoveProvider("CheapStor") {
		t.Fatal("RemoveProvider failed")
	}
	if reg.Epoch() == e2 {
		t.Fatal("RemoveProvider must bump the market epoch")
	}
	if _, specs, _ := reg.Market(); len(specs) != 5 {
		t.Fatalf("market after departure = %d providers, want 5", len(specs))
	}
}
