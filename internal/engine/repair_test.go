package engine

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"scalia/internal/cloud"
	"scalia/internal/core"
)

// repairMarket builds a 4-provider market where the rule's lock-in
// forces placement onto the three cheap providers {A, B, C} (m = 2) and
// the expensive D is the only spare — a fully deterministic swap
// scenario.
func repairMarket() *cloud.Registry {
	reg := cloud.NewRegistry()
	for i, name := range []string{"A", "B", "C", "D"} {
		storage := 0.10 + 0.01*float64(i) // D is strictly the priciest
		reg.Register(cloud.NewBlobStore(cloud.Spec{
			Name: name, Durability: 0.9999, Availability: 0.999,
			Zones:   []cloud.Zone{cloud.ZoneUS},
			Pricing: cloud.Pricing{StorageGBMonth: storage, BandwidthInGB: 0.1, BandwidthOutGB: 0.15, OpsPer1000: 0.01},
		}))
	}
	return reg
}

var repairRule = core.Rule{Name: "wide", Durability: 0.9999, Availability: 0.99, LockIn: 1.0 / 3}

// putRepairObject stores a multi-stripe object under the wide rule and
// returns its payload and metadata. The rule is pinned on the container
// so the repair pass resolves the same rule the write used.
func putRepairObject(t *testing.T, b *Broker, key string, size int) ([]byte, ObjectMeta) {
	t.Helper()
	b.Rules().SetContainerRule("bk", repairRule)
	payload := make([]byte, size)
	rng := rand.New(rand.NewSource(7))
	rng.Read(payload)
	meta, err := b.Engine(0).Put(ctx, "bk", key, payload, PutOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b.FlushStats() // replicate metadata so engines of every DC serve reads
	if len(meta.Chunks) != 3 || meta.M != 2 {
		t.Fatalf("scenario expects (m=2, n=3), got m=%d chunks=%v", meta.M, meta.Chunks)
	}
	if meta.StripeCount() < 2 {
		t.Fatalf("scenario expects a multi-stripe object, got %d stripes", meta.StripeCount())
	}
	return payload, meta
}

// TestRepairSwapPreservesIdentity is the tentpole unit test: a swap
// repair must write only the missing chunks, keep the object version's
// identity (UUID, storage key, per-stripe MD5s), change the chunk map
// at exactly the dead slot, and leave the object bitwise intact —
// parity-verified across all n chunks.
func TestRepairSwapPreservesIdentity(t *testing.T) {
	b := newTestBroker(t, Config{Registry: repairMarket(), StripeBytes: 64 << 10})
	payload, meta := putRepairObject(t, b, "obj", 256<<10)

	deadSlot := 1
	victim := meta.Chunks[deadSlot]
	blob(t, b, victim).SetAvailable(false)

	rep, err := b.Repair(ctx, RepairActive)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Affected != 1 || rep.Repaired != 1 || rep.Swapped != 1 || rep.Restriped != 0 || rep.Skipped != 0 {
		t.Fatalf("repair report = %+v", rep)
	}
	if rep.ChunksWritten != meta.StripeCount() {
		t.Fatalf("swap wrote %d chunks, want %d (one per stripe)", rep.ChunksWritten, meta.StripeCount())
	}
	if rep.BytesWritten <= 0 || rep.BytesWritten >= int64(len(payload)) {
		t.Fatalf("swap wrote %d bytes, want ~size/m = %d", rep.BytesWritten, len(payload)/meta.M)
	}

	after, err := b.Engine(0).Head(ctx, "bk", "obj")
	if err != nil {
		t.Fatal(err)
	}
	if after.UUID != meta.UUID || after.SKey != meta.SKey {
		t.Fatalf("swap must update metadata in place: uuid %s->%s skey %s->%s",
			meta.UUID, after.UUID, meta.SKey, after.SKey)
	}
	for s := range meta.StripeSums {
		if after.StripeSums[s] != meta.StripeSums[s] {
			t.Fatalf("stripe %d sum changed across swap", s)
		}
	}
	for i, name := range after.Chunks {
		switch {
		case i == deadSlot && (name == victim || name != "D"):
			t.Fatalf("slot %d = %q, want the spare D", i, name)
		case i != deadSlot && name != meta.Chunks[i]:
			t.Fatalf("surviving slot %d changed %q -> %q", i, meta.Chunks[i], name)
		}
	}
	got, _, err := b.Engine(0).Get(ctx, "bk", "obj")
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("payload lost in swap repair: %v", err)
	}
	// The replacement chunks must be parity-consistent with the
	// survivors: VerifyObject reads all n chunks (the new set is fully
	// reachable) and checks the erasure parity per stripe.
	reachable, err := b.Engine(0).VerifyObject(ctx, "bk", "obj")
	if err != nil {
		t.Fatalf("post-swap verification: %v", err)
	}
	if reachable != len(after.Chunks) {
		t.Fatalf("reachable = %d, want %d", reachable, len(after.Chunks))
	}
	// Lifetime totals reached the broker stats.
	totals := b.RepairTotals()
	if totals.Passes != 1 || totals.Swapped != 1 || totals.ChunksWritten != rep.ChunksWritten {
		t.Fatalf("repair totals = %+v", totals)
	}
}

// TestRepairSwapQueuesStaleChunkDeletes: the dead provider's copies of
// the replaced chunks are orphaned by the swap; their deletion must be
// postponed until the provider recovers (§III-D3).
func TestRepairSwapQueuesStaleChunkDeletes(t *testing.T) {
	b := newTestBroker(t, Config{Registry: repairMarket(), StripeBytes: 64 << 10})
	_, meta := putRepairObject(t, b, "obj", 256<<10)
	victim := meta.Chunks[0]
	vs := blob(t, b, victim)
	vs.SetAvailable(false)

	if _, err := b.Repair(ctx, RepairActive); err != nil {
		t.Fatal(err)
	}
	if got := b.PendingDeletes(); got != meta.StripeCount() {
		t.Fatalf("pending deletes = %d, want %d (one stale chunk per stripe)", got, meta.StripeCount())
	}
	vs.SetAvailable(true)
	if done := b.ProcessPendingDeletes(ctx); done != meta.StripeCount() {
		t.Fatalf("processed %d pending deletes, want %d", done, meta.StripeCount())
	}
	if n := vs.ObjectCount(); n != 0 {
		t.Fatalf("recovered provider still holds %d stale chunks", n)
	}
}

// TestRepairSwapWritesFewerBytesThanRestripe runs the same failure
// scenario twice — swap allowed vs ForceRestripeRepair — and asserts
// the acceptance criterion: the swap writes strictly fewer bytes.
func TestRepairSwapWritesFewerBytesThanRestripe(t *testing.T) {
	run := func(force bool) RepairReport {
		b := newTestBroker(t, Config{Registry: repairMarket(), StripeBytes: 64 << 10,
			ForceRestripeRepair: force})
		_, meta := putRepairObject(t, b, "obj", 256<<10)
		blob(t, b, meta.Chunks[0]).SetAvailable(false)
		rep, err := b.Repair(ctx, RepairActive)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Repaired != 1 {
			t.Fatalf("force=%v: report %+v", force, rep)
		}
		return rep
	}
	swap := run(false)
	restripe := run(true)
	if swap.Swapped != 1 || restripe.Restriped != 1 {
		t.Fatalf("mechanism split wrong: swap=%+v restripe=%+v", swap, restripe)
	}
	if swap.BytesWritten >= restripe.BytesWritten {
		t.Fatalf("swap wrote %d bytes, re-stripe %d — swap must write strictly fewer",
			swap.BytesWritten, restripe.BytesWritten)
	}
	if swap.ChunksWritten >= restripe.ChunksWritten {
		t.Fatalf("swap wrote %d chunks, re-stripe %d", swap.ChunksWritten, restripe.ChunksWritten)
	}
}

// TestRepairSkippedWhenInfeasible: with no spare and a rule the
// surviving market cannot satisfy, the active pass must report the
// object skipped — and leave it readable from the survivors.
func TestRepairSkippedWhenInfeasible(t *testing.T) {
	reg := cloud.NewRegistry()
	for _, name := range []string{"A", "B", "C"} {
		reg.Register(cloud.NewBlobStore(cloud.Spec{
			Name: name, Durability: 0.9999, Availability: 0.999,
			Zones:   []cloud.Zone{cloud.ZoneUS},
			Pricing: cloud.Pricing{StorageGBMonth: 0.1, BandwidthInGB: 0.1, BandwidthOutGB: 0.15, OpsPer1000: 0.01},
		}))
	}
	b := newTestBroker(t, Config{Registry: reg})
	payload := bytes.Repeat([]byte("x"), 30<<10)
	rule := core.Rule{Name: "all3", Durability: 0.9999, Availability: 0.99, LockIn: 1.0 / 3}
	b.Rules().SetContainerRule("bk", rule)
	meta, err := b.Engine(0).Put(ctx, "bk", "obj", payload, PutOptions{})
	if err != nil {
		t.Fatal(err)
	}
	blob(t, b, meta.Chunks[0]).SetAvailable(false)
	rep, err := b.Repair(ctx, RepairActive)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Affected != 1 || rep.Skipped != 1 || rep.Repaired != 0 {
		t.Fatalf("repair report = %+v", rep)
	}
	got, _, err := b.Engine(0).Get(ctx, "bk", "obj")
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("skipped object must stay readable: %v", err)
	}
}

// cancellingBackend wraps a BlobStore and cancels the repair context
// after the first successful chunk write, failing all later writes —
// the deterministic mid-swap teardown.
type cancellingBackend struct {
	*cloud.BlobStore
	cancel context.CancelFunc
	puts   atomic.Int32
}

func (c *cancellingBackend) Put(ctx context.Context, key string, data []byte) error {
	if c.puts.Add(1) > 1 {
		c.cancel()
		return context.Canceled
	}
	return c.BlobStore.Put(ctx, key, data)
}

// TestRepairSwapCancellationRollsBack cancels the repair context after
// the swap target accepted one stripe's replacement chunk: the
// partially written chunks must be rolled back, the metadata left
// untouched, and the object still readable from the survivors.
func TestRepairSwapCancellationRollsBack(t *testing.T) {
	repairCtx, cancel := context.WithCancel(context.Background())
	defer cancel()
	reg := cloud.NewRegistry()
	for i, name := range []string{"A", "B", "C"} {
		reg.Register(cloud.NewBlobStore(cloud.Spec{
			Name: name, Durability: 0.9999, Availability: 0.999,
			Zones:   []cloud.Zone{cloud.ZoneUS},
			Pricing: cloud.Pricing{StorageGBMonth: 0.10 + 0.01*float64(i), BandwidthInGB: 0.1, BandwidthOutGB: 0.15, OpsPer1000: 0.01},
		}))
	}
	target := &cancellingBackend{
		BlobStore: cloud.NewBlobStore(cloud.Spec{
			Name: "D", Durability: 0.9999, Availability: 0.999,
			Zones:   []cloud.Zone{cloud.ZoneUS},
			Pricing: cloud.Pricing{StorageGBMonth: 0.2, BandwidthInGB: 0.1, BandwidthOutGB: 0.15, OpsPer1000: 0.01},
		}),
		cancel: cancel,
	}
	reg.Register(target)
	b := newTestBroker(t, Config{Registry: reg, StripeBytes: 64 << 10})
	payload, meta := putRepairObject(t, b, "obj", 256<<10)
	victim := meta.Chunks[0]
	blob(t, b, victim).SetAvailable(false)

	rep, err := b.Repair(repairCtx, RepairActive)
	if err == nil {
		t.Fatalf("cancelled repair must report the context error; report %+v", rep)
	}
	if rep.Repaired != 0 || rep.Swapped != 0 {
		t.Fatalf("cancelled repair must not count a success: %+v", rep)
	}
	// Rollback: the target accepted one chunk and must hold none now.
	deadline := time.Now().Add(2 * time.Second)
	for target.ObjectCount() != 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := target.ObjectCount(); n != 0 {
		t.Fatalf("swap target still holds %d partially written chunks", n)
	}
	after, err := b.Engine(0).Head(ctx, "bk", "obj")
	if err != nil {
		t.Fatal(err)
	}
	if !sameChunks(after.Chunks, meta.Chunks) || after.UUID != meta.UUID {
		t.Fatalf("cancelled swap must leave metadata untouched: %v -> %v", meta.Chunks, after.Chunks)
	}
	got, _, err := b.Engine(0).Get(ctx, "bk", "obj")
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("object unreadable after cancelled repair: %v", err)
	}
}

// TestRepairConcurrentWithReads runs GetReader streams against an
// object while it is being swap-repaired (run under -race): every read
// must deliver the exact payload, before, during and after the repair —
// the in-place metadata update never cuts readers off.
func TestRepairConcurrentWithReads(t *testing.T) {
	b := newTestBroker(t, Config{Registry: repairMarket(), StripeBytes: 16 << 10})
	payload, meta := putRepairObject(t, b, "obj", 256<<10)
	blob(t, b, meta.Chunks[2]).SetAvailable(false)

	const readers = 8
	stop := make(chan struct{})
	errs := make(chan error, readers)
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			e := b.Engine(r)
			for {
				select {
				case <-stop:
					return
				default:
				}
				rc, _, err := e.GetReader(ctx, "bk", "obj")
				if err != nil {
					errs <- fmt.Errorf("reader %d open: %w", r, err)
					return
				}
				data, err := io.ReadAll(rc)
				rc.Close()
				if err != nil {
					errs <- fmt.Errorf("reader %d read: %w", r, err)
					return
				}
				if !bytes.Equal(data, payload) {
					errs <- fmt.Errorf("reader %d payload mismatch", r)
					return
				}
			}
		}(r)
	}
	rep, err := b.Repair(ctx, RepairActive)
	close(stop)
	wg.Wait()
	close(errs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Swapped != 1 {
		t.Fatalf("repair report = %+v", rep)
	}
	for e := range errs {
		t.Error(e)
	}
}
