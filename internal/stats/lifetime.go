package stats

import (
	"math"
	"sort"
	"sync"
)

// LifetimeDist tracks the observed lifetimes (insert-to-delete ages, in
// hours) of the objects of one class and answers the Fig. 5 question:
// given an object of this class that is already t hours old, how many
// more hours is it expected to live?
//
// Observations are kept exactly up to maxSamples and then reservoir-style
// downsampled, which keeps the estimator O(1) memory under unbounded
// object churn.
type LifetimeDist struct {
	mu         sync.RWMutex
	lifetimes  []float64
	seen       int64 // total observations, including evicted ones
	maxSamples int
	sorted     bool
}

// DefaultMaxLifetimeSamples bounds the per-class reservoir.
const DefaultMaxLifetimeSamples = 4096

// NewLifetimeDist returns an empty distribution (maxSamples <= 0 selects
// DefaultMaxLifetimeSamples).
func NewLifetimeDist(maxSamples int) *LifetimeDist {
	if maxSamples <= 0 {
		maxSamples = DefaultMaxLifetimeSamples
	}
	return &LifetimeDist{maxSamples: maxSamples}
}

// Observe records the lifetime (hours) of a deleted object.
func (d *LifetimeDist) Observe(hours float64) {
	if hours < 0 || math.IsNaN(hours) || math.IsInf(hours, 0) {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.seen++
	if len(d.lifetimes) < d.maxSamples {
		d.lifetimes = append(d.lifetimes, hours)
		d.sorted = false
		return
	}
	// Reservoir sampling: replace a uniformly random slot with probability
	// maxSamples/seen, using a cheap deterministic hash of the counter so
	// the package stays free of global rand state.
	x := uint64(d.seen) * 0x9E3779B97F4A7C15
	x ^= x >> 31
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	idx := int(x % uint64(d.seen))
	if idx < d.maxSamples {
		d.lifetimes[idx] = hours
		d.sorted = false
	}
}

// Count returns the total number of observed deletions.
func (d *LifetimeDist) Count() int64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.seen
}

func (d *LifetimeDist) ensureSortedLocked() {
	if !d.sorted {
		sort.Float64s(d.lifetimes)
		d.sorted = true
	}
}

// ExpectedTTL returns the expected remaining lifetime E[L-t | L > t] of
// an object that is already ageHours old. The boolean is false when the
// distribution has no observation exceeding ageHours (the object has
// outlived everything seen so far; callers fall back to the history span
// as the paper's min(TTL, H) clamp then degenerates to H).
func (d *LifetimeDist) ExpectedTTL(ageHours float64) (float64, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.ensureSortedLocked()
	// First lifetime strictly greater than ageHours.
	i := sort.SearchFloat64s(d.lifetimes, math.Nextafter(ageHours, math.MaxFloat64))
	if i >= len(d.lifetimes) {
		return 0, false
	}
	var sum float64
	for _, l := range d.lifetimes[i:] {
		sum += l - ageHours
	}
	return sum / float64(len(d.lifetimes)-i), true
}

// Quantile returns the q-quantile (0 <= q <= 1) of observed lifetimes.
func (d *LifetimeDist) Quantile(q float64) (float64, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.lifetimes) == 0 {
		return 0, false
	}
	d.ensureSortedLocked()
	if q <= 0 {
		return d.lifetimes[0], true
	}
	if q >= 1 {
		return d.lifetimes[len(d.lifetimes)-1], true
	}
	idx := int(q * float64(len(d.lifetimes)-1))
	return d.lifetimes[idx], true
}

// Histogram buckets the observed lifetimes into equal-width bins of the
// given width (hours) and returns the per-bin counts; the Fig. 5 left
// panel is this histogram.
func (d *LifetimeDist) Histogram(binWidth float64, bins int) []int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]int, bins)
	for _, l := range d.lifetimes {
		b := int(l / binWidth)
		if b >= bins {
			b = bins - 1
		}
		out[b]++
	}
	return out
}

// TTLCurve evaluates ExpectedTTL at ages 0, step, 2*step, ... up to
// maxAge and returns the series — the Fig. 5 right panel.
func (d *LifetimeDist) TTLCurve(step, maxAge float64) []float64 {
	var out []float64
	for age := 0.0; age <= maxAge+1e-9; age += step {
		ttl, ok := d.ExpectedTTL(age)
		if !ok {
			ttl = 0
		}
		out = append(out, ttl)
	}
	return out
}
