package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// NewRequestID returns a 16-byte random hex request ID.
func NewRequestID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; degrade to a
		// fixed marker rather than an empty ID.
		return "rnd-unavailable"
	}
	return hex.EncodeToString(b[:])
}

// Trace accumulates per-request span timings and counters as a request
// flows Gateway→Broker→Engine→read path/repair→backend. It is carried
// in a context.Context; every method is safe on a nil receiver so
// instrumented code never has to check whether a trace is attached
// (background work like the optimizer runs traceless).
type Trace struct {
	ID    string
	start time.Time

	mu     sync.Mutex
	spans  map[string]*spanAgg
	counts map[string]int64
}

type spanAgg struct {
	n     int64
	total time.Duration
}

// NewTrace returns a trace with the given request ID, started now.
func NewTrace(id string) *Trace {
	return &Trace{ID: id, start: time.Now()}
}

// AddSpan records one timed occurrence of a named stage ("plan",
// "encode", "fanout", "commit", "fetch", "decode", ...). Repeats of
// the same name aggregate (count + total duration).
func (t *Trace) AddSpan(name string, d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.spans == nil {
		t.spans = make(map[string]*spanAgg, 8)
	}
	s := t.spans[name]
	if s == nil {
		s = &spanAgg{}
		t.spans[name] = s
	}
	s.n++
	s.total += d
	t.mu.Unlock()
}

// Count bumps a named per-request counter ("stripes_cached",
// "stripes_fetched", "fallbacks", ...).
func (t *Trace) Count(name string, delta int64) {
	if t == nil || delta == 0 {
		return
	}
	t.mu.Lock()
	if t.counts == nil {
		t.counts = make(map[string]int64, 8)
	}
	t.counts[name] += delta
	t.mu.Unlock()
}

// Counts returns a copy of the per-request counters.
func (t *Trace) Counts() map[string]int64 {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]int64, len(t.counts))
	for k, v := range t.counts {
		out[k] = v
	}
	return out
}

// SpanSummary renders the aggregated spans as a compact, sorted,
// log-friendly string like "decode=3x1.2ms fetch=3x8.1ms plan=1x0.3ms".
func (t *Trace) SpanSummary() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	parts := make([]string, 0, len(t.spans))
	for name, s := range t.spans {
		parts = append(parts, fmt.Sprintf("%s=%dx%s", name, s.n,
			s.total.Round(10*time.Microsecond)))
	}
	t.mu.Unlock()
	sort.Strings(parts)
	return strings.Join(parts, " ")
}

// Elapsed is the time since the trace started.
func (t *Trace) Elapsed() time.Duration {
	if t == nil {
		return 0
	}
	return time.Since(t.start)
}

type traceKey struct{}

// WithTrace attaches t to ctx.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFrom returns the trace attached to ctx, or nil. The nil result
// is usable as-is: all Trace methods accept a nil receiver.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}
