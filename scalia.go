// Package scalia is an adaptive multi-cloud storage broker, a full
// reproduction of "Scalia: An Adaptive Scheme for Efficient Multi-Cloud
// Storage" (Papaioannou, Bonvin, Aberer — SC 2012).
//
// Scalia stores every object as n erasure-coded chunks spread over a
// dynamically chosen set of storage providers, such that any m chunks
// reconstruct the object. The provider set is picked per object to
// minimize expected cost subject to customer rules (durability,
// availability, geographic zones, vendor lock-in), and is continuously
// re-optimized from the object's observed access pattern: placement is
// recomputed only when a momentum detector sees the access trend change,
// and chunks migrate only when the projected savings cover the migration
// cost.
//
// The package wraps a complete deployment: simulated (or private,
// HTTP-backed) storage providers, a multi-datacenter MVCC metadata
// store, per-datacenter caches, a statistics pipeline, and stateless
// broker engines with the periodic optimization procedure.
//
// # The v1 API
//
// Every I/O method takes a context.Context; cancelling it aborts the
// in-flight chunk fan-out against the providers. Large objects stream:
// PutReader and GetReader split the body into erasure-coded stripes so
// the serving path never buffers a whole object, while Put and Get
// remain as byte-slice conveniences. The same surface is served over
// HTTP by the v1 gateway (engine.NewGateway / cmd/scalia-server) and
// consumed remotely by the typed scalia/client package — embedded and
// remote callers share one method set.
//
// Quick start:
//
//	client, err := scalia.New(scalia.Options{})
//	if err != nil { ... }
//	defer client.Close()
//	ctx := context.Background()
//	client.Put(ctx, "pictures", "cat.gif", data, scalia.WithMIME("image/gif"))
//	blob, _, err := client.Get(ctx, "pictures", "cat.gif")
package scalia

import (
	"context"
	"io"

	"scalia/internal/cache"
	"scalia/internal/cloud"
	"scalia/internal/core"
	"scalia/internal/engine"
	"scalia/internal/privstore"
)

// Re-exported domain types. These are aliases so values flow freely
// between the facade and the internal packages.
type (
	// Rule is a per-object/-container placement rule: minimum durability
	// and availability, acceptable zones, and the lock-in factor 1/N.
	Rule = core.Rule
	// Placement is a chosen provider set with its erasure threshold m.
	Placement = core.Placement
	// Provider describes a storage provider: SLA and price sheet.
	Provider = cloud.Spec
	// Pricing is a provider price sheet (USD/GB and USD/1000 ops).
	Pricing = cloud.Pricing
	// Zone is a geographic region.
	Zone = cloud.Zone
	// ObjectMeta is the stored per-object metadata (Fig. 11).
	ObjectMeta = engine.ObjectMeta
	// Usage aggregates billed resources.
	Usage = cloud.Usage
	// OptimizeReport summarizes one optimization round.
	OptimizeReport = engine.OptimizeReport
	// RepairReport summarizes a repair pass.
	RepairReport = engine.RepairReport
	// OptimizeTotals accumulates optimization rounds over a deployment's
	// lifetime (served on GET /v1/stats).
	OptimizeTotals = engine.OptimizeTotals
	// RepairTotals accumulates repair passes over a deployment's
	// lifetime: chunk swaps vs full re-stripes, and the replacement
	// chunks/bytes written (served on GET /v1/stats).
	RepairTotals = engine.RepairTotals
	// Stats is the operational counter snapshot of GET /v1/stats.
	Stats = engine.Stats
	// ListResult is the paginated container listing of the v1 protocol.
	ListResult = engine.ListResult
	// CacheStats is the stripe-cache counter snapshot (GET /v1/stats).
	CacheStats = cache.Stats
	// ReadPathStats is the streaming-read counter snapshot: stripes from
	// cache vs fetched, prefetch deliveries, fan-out fallbacks.
	ReadPathStats = engine.ReadPathStats
	// WritePathStats is the streaming-write counter snapshot: pipeline
	// depth, stripes fanned out, write buffers in flight against the
	// shared budget, open multipart uploads.
	WritePathStats = engine.WritePathStats
	// UploadInfo identifies an open multipart upload session.
	UploadInfo = engine.UploadInfo
	// PartInfo describes one staged part of a multipart upload.
	PartInfo = engine.PartInfo
	// CompletedPart names one part in a CompleteUpload request.
	CompletedPart = engine.CompletedPart
	// ProviderStatus is one market participant on GET /v1/providers.
	ProviderStatus = engine.ProviderStatus
	// RepairPolicy selects how repair treats chunks at failed providers.
	RepairPolicy = engine.RepairPolicy
	// Job is an asynchronous maintenance job resource (POST /v1/repair
	// and /v1/optimize dispatch one; GET /v1/jobs/{id} polls it).
	Job = engine.JobView
	// JobList is the paginated job listing of GET /v1/jobs.
	JobList = engine.JobList
	// MaintStats is the event-driven reoptimization queue's counter
	// snapshot (GET /v1/stats).
	MaintStats = engine.MaintStats
	// ProviderMutation is the epoch-echoing response of the admin
	// provider-mutation routes.
	ProviderMutation = engine.ProviderMutation
)

// Job states and kinds of the asynchronous maintenance jobs API.
const (
	JobRunning  = engine.JobRunning
	JobDone     = engine.JobDone
	JobFailed   = engine.JobFailed
	JobRepair   = engine.JobRepair
	JobOptimize = engine.JobOptimize
)

// Zones.
const (
	ZoneEU   = cloud.ZoneEU
	ZoneUS   = cloud.ZoneUS
	ZoneAPAC = cloud.ZoneAPAC
)

// Repair policies.
const (
	RepairWait   = engine.RepairWait
	RepairActive = engine.RepairActive
)

// Sentinel errors, re-exported so callers can errors.Is against the
// facade without importing internal packages. The typed remote client
// maps v1 wire errors back onto the same values.
var (
	ErrObjectNotFound       = engine.ErrObjectNotFound
	ErrPreconditionFailed   = engine.ErrPreconditionFailed
	ErrInvalidArgument      = engine.ErrInvalidArgument
	ErrNotEnoughChunks      = engine.ErrNotEnoughChunks
	ErrRangeNotSatisfiable  = engine.ErrRangeNotSatisfiable
	ErrUploadNotFound       = engine.ErrUploadNotFound
	ErrInfeasiblePlacement  = core.ErrNoProviders
	ErrProviderUnavailable  = cloud.ErrUnavailable
	ErrProviderOverCapacity = cloud.ErrOverCapacity
	ErrObjectTooLarge       = cloud.ErrTooLarge
	ErrUnknownProvider      = cloud.ErrUnknownProvider
	ErrUnsupportedMutation  = cloud.ErrUnsupportedMutation
)

// PaperProviders returns the five provider profiles of the paper's
// Fig. 3 (Amazon S3 high/low durability, Rackspace, Azure, Google).
func PaperProviders() []Provider { return cloud.PaperProviders() }

// PaperRules returns the example rules of the paper's Fig. 2.
func PaperRules() []Rule { return core.PaperRules() }

// Options configures a broker deployment.
type Options struct {
	// Datacenters names the deployment's datacenters (default dc1, dc2).
	Datacenters []string
	// EnginesPerDC sets the stateless engine count per datacenter.
	EnginesPerDC int
	// CacheBytes enables the per-datacenter read cache when > 0.
	CacheBytes int64
	// Providers overrides the provider market (default: PaperProviders,
	// as in-memory simulated stores).
	Providers []Provider
	// DefaultRule applies when no finer-grained rule matches.
	DefaultRule Rule
	// PeriodHours is the statistics sampling period (default 1 hour).
	PeriodHours float64
	// DecisionPeriod is the initial per-object decision period D, in
	// sampling periods (default 24).
	DecisionPeriod int
	// MigrationHorizon stretches the migration payback horizon (periods).
	MigrationHorizon int
	// Pruned selects the polynomial placement heuristic instead of the
	// exact subset enumeration.
	Pruned bool
	// StripeBytes bounds the per-stripe payload of streaming reads and
	// writes (default engine.DefaultStripeBytes, 4 MiB).
	StripeBytes int64
	// ReadParallelism bounds concurrent chunk fetches per stripe read
	// (default engine.DefaultReadParallelism). Negative forces the
	// sequential ranked scan.
	ReadParallelism int
	// PrefetchStripes is the streaming GET read-ahead depth: stripes
	// decoded in the background while the previous one drains to the
	// caller (default engine.DefaultPrefetchStripes). Negative disables
	// prefetching.
	PrefetchStripes int
	// WritePipelineDepth bounds how many stripes a streaming write keeps
	// in flight at once: stripe s+1 erasure-codes while stripe s's chunks
	// fan out to the providers (default engine.DefaultWritePipelineDepth).
	// Negative forces the sequential encode-then-fan-out loop.
	WritePipelineDepth int
	// MaxBufferBytes bounds the stripe buffers ALL streaming reads and
	// writes of the deployment hold concurrently — one shared budget, so
	// any mix of concurrent large GETs and PUTs cannot blow up broker
	// memory (default engine.DefaultMaxBufferBytes; negative removes the
	// bound).
	MaxBufferBytes int64
	// MaxReadBufferBytes is the deprecated name of MaxBufferBytes, kept
	// so existing callers keep compiling; it is consulted only when
	// MaxBufferBytes is zero.
	MaxReadBufferBytes int64
	// ForceRestripeRepair disables the chunk-swap repair fast path so
	// every active repair fully re-places the object — an ablation knob
	// for benchmarks comparing the two repair mechanisms.
	ForceRestripeRepair bool
	// ReoptWorkers sets the background worker pool that drains the
	// event-driven reoptimization queue (market events → affected
	// objects). 0 (the default) enqueues only; drain explicitly with
	// DrainMaintenance. scalia-server enables workers via -reopt-workers.
	ReoptWorkers int
	// ReoptQueueDepth bounds the reoptimization queue (default
	// engine.DefaultReoptQueueDepth). Overflow invalidations are dropped
	// and counted; the periodic Optimize pass is their backstop.
	ReoptQueueDepth int
	// SwapBatchSize bounds how many prepared single-stripe chunk swaps a
	// repair pass accumulates before flushing them as one batched write
	// per target provider (default engine.DefaultSwapBatchSize; negative
	// disables batching).
	SwapBatchSize int
	// Clock overrides time (tests and simulations use a manual clock).
	Clock engine.Clock
}

// Client is a Scalia deployment handle. It is safe for concurrent use.
type Client struct {
	broker *engine.Broker
}

// New builds a broker deployment.
func New(opts Options) (*Client, error) {
	cfg := engine.Config{
		Datacenters:         opts.Datacenters,
		EnginesPerDC:        opts.EnginesPerDC,
		CacheBytes:          opts.CacheBytes,
		PeriodHours:         opts.PeriodHours,
		DefaultRule:         opts.DefaultRule,
		DecisionPeriod:      opts.DecisionPeriod,
		MigrationHorizon:    opts.MigrationHorizon,
		Pruned:              opts.Pruned,
		StripeBytes:         opts.StripeBytes,
		ReadParallelism:     opts.ReadParallelism,
		PrefetchStripes:     opts.PrefetchStripes,
		WritePipelineDepth:  opts.WritePipelineDepth,
		MaxBufferBytes:      opts.MaxBufferBytes,
		MaxReadBufferBytes:  opts.MaxReadBufferBytes,
		ForceRestripeRepair: opts.ForceRestripeRepair,
		ReoptWorkers:        opts.ReoptWorkers,
		ReoptQueueDepth:     opts.ReoptQueueDepth,
		SwapBatchSize:       opts.SwapBatchSize,
		Clock:               opts.Clock,
	}
	if len(opts.Providers) > 0 {
		reg := cloud.NewRegistry()
		for _, spec := range opts.Providers {
			reg.Register(cloud.NewBlobStore(spec))
		}
		cfg.Registry = reg
	}
	if opts.DefaultRule.LockIn != 0 {
		if err := opts.DefaultRule.Validate(); err != nil {
			return nil, err
		}
	}
	return &Client{broker: engine.NewBroker(cfg)}, nil
}

// Close releases the deployment's background pipelines.
func (c *Client) Close() { c.broker.Close() }

// engine returns the next engine round-robin, matching the paper's
// "requests are routed to all datacenters indifferently". The counter
// lives on the broker and is shared with the HTTP gateway, so mixed
// embedded/remote traffic spreads evenly.
func (c *Client) engine() *engine.Engine { return c.broker.NextEngine() }

// PutOption customizes a write.
type PutOption func(*engine.PutOptions)

// WithMIME sets the object's MIME type (classification input).
func WithMIME(mime string) PutOption {
	return func(o *engine.PutOptions) { o.MIME = mime }
}

// WithTTL hints the object's expected lifetime in hours.
func WithTTL(hours float64) PutOption {
	return func(o *engine.PutOptions) { o.TTLHours = hours }
}

// WithRule pins a placement rule for this object.
func WithRule(r Rule) PutOption {
	return func(o *engine.PutOptions) { o.Rule = &r }
}

// WithIfMatch makes the write conditional on the stored version's ETag
// ("*" = any existing version); a mismatch fails with
// ErrPreconditionFailed.
func WithIfMatch(etag string) PutOption {
	return func(o *engine.PutOptions) { o.IfMatch = etag }
}

// WithIfAbsent makes the write create-only: it fails with
// ErrPreconditionFailed when the object already exists (the facade
// counterpart of the wire's If-None-Match: *).
func WithIfAbsent() PutOption {
	return func(o *engine.PutOptions) { o.IfAbsent = true }
}

// Put stores or updates an object from an in-memory payload.
func (c *Client) Put(ctx context.Context, container, key string, data []byte, opts ...PutOption) (ObjectMeta, error) {
	var po engine.PutOptions
	for _, opt := range opts {
		opt(&po)
	}
	meta, err := c.engine().Put(ctx, container, key, data, po)
	if err != nil {
		return meta, err
	}
	// Synchronously drain inter-DC metadata replication so the facade
	// offers read-your-writes across datacenters (the underlying store is
	// eventually consistent, §III-D3).
	c.broker.Metadata().Flush()
	return meta, nil
}

// PutReader stores or updates an object streamed from r. size must be
// the exact body length; at most one stripe is buffered at a time, so
// arbitrarily large objects upload in constant memory. Cancelling ctx
// aborts the in-flight chunk fan-out and rolls back written chunks.
func (c *Client) PutReader(ctx context.Context, container, key string, r io.Reader, size int64, opts ...PutOption) (ObjectMeta, error) {
	var po engine.PutOptions
	for _, opt := range opts {
		opt(&po)
	}
	meta, err := c.engine().PutReader(ctx, container, key, r, size, po)
	if err != nil {
		return meta, err
	}
	c.broker.Metadata().Flush()
	return meta, nil
}

// CreateUpload opens a resumable multipart upload for an object. The
// placement — provider set and erasure threshold — is planned once,
// using sizeHint (0 = unknown) as the cost-model input, and every part
// inherits it. Stream the parts with UploadPart (each except the final
// one a whole multiple of the stripe size), then CompleteUpload with
// the part list; a dropped connection costs only the part it
// interrupted (ListParts reports what survived).
func (c *Client) CreateUpload(ctx context.Context, container, key string, sizeHint int64, opts ...PutOption) (UploadInfo, error) {
	var po engine.PutOptions
	for _, opt := range opts {
		opt(&po)
	}
	return c.engine().CreateUpload(ctx, container, key, sizeHint, po)
}

// UploadPart streams one part of an open upload through the write
// pipeline. size must be the exact part length; re-sending a part
// number replaces the earlier attempt.
func (c *Client) UploadPart(ctx context.Context, uploadID string, partNumber int, r io.Reader, size int64) (PartInfo, error) {
	return c.engine().UploadPart(ctx, uploadID, partNumber, r, size)
}

// ListParts reports an open upload's staged parts, sorted by number.
func (c *Client) ListParts(ctx context.Context, uploadID string) (UploadInfo, []PartInfo, error) {
	return c.engine().ListParts(ctx, uploadID)
}

// CompleteUpload assembles the staged parts into the live object
// version in one batched metadata commit — no chunk data moves. parts
// must name every part, consecutively from 1; a mismatch fails with
// ErrInvalidArgument and leaves the upload open for a retry.
func (c *Client) CompleteUpload(ctx context.Context, uploadID string, parts []CompletedPart) (ObjectMeta, error) {
	meta, err := c.engine().CompleteUpload(ctx, uploadID, parts)
	if err != nil {
		return meta, err
	}
	c.broker.Metadata().Flush()
	return meta, nil
}

// AbortUpload tears an upload session down and garbage-collects every
// staged part's chunks.
func (c *Client) AbortUpload(ctx context.Context, uploadID string) error {
	return c.engine().AbortUpload(ctx, uploadID)
}

// Get fetches an object fully buffered, with its metadata.
func (c *Client) Get(ctx context.Context, container, key string) ([]byte, ObjectMeta, error) {
	return c.engine().Get(ctx, container, key)
}

// GetReader fetches an object as a stream: each stripe is served from
// the stripe cache or reconstructed from the m cheapest reachable
// providers with a bounded parallel chunk fan-out, while the next
// stripes prefetch in the background. The caller must Close the reader.
func (c *Client) GetReader(ctx context.Context, container, key string) (io.ReadCloser, ObjectMeta, error) {
	return c.engine().GetReader(ctx, container, key)
}

// GetRange fetches the byte range [offset, offset+length) of an object
// as a stream. The range maps onto whole stripes, so only the stripes
// it overlaps are consulted in the cache or fetched. length is clamped
// to the object end and -1 means "to the end" (as in the remote
// client's GetRange); a range starting at or past the end fails with
// ErrRangeNotSatisfiable. The caller must Close the reader.
func (c *Client) GetRange(ctx context.Context, container, key string, offset, length int64) (io.ReadCloser, ObjectMeta, error) {
	return c.engine().GetRangeReader(ctx, container, key, offset, length)
}

// Head fetches an object's metadata only.
func (c *Client) Head(ctx context.Context, container, key string) (ObjectMeta, error) {
	return c.engine().Head(ctx, container, key)
}

// Delete removes an object.
func (c *Client) Delete(ctx context.Context, container, key string) error {
	if err := c.engine().Delete(ctx, container, key); err != nil {
		return err
	}
	c.broker.Metadata().Flush()
	return nil
}

// DeleteIf removes an object only if its stored ETag matches ifMatch
// ("*" = any existing version).
func (c *Client) DeleteIf(ctx context.Context, container, key, ifMatch string) error {
	if err := c.engine().DeleteIf(ctx, container, key, ifMatch); err != nil {
		return err
	}
	c.broker.Metadata().Flush()
	return nil
}

// List returns the keys of a container, sorted.
func (c *Client) List(ctx context.Context, container string) ([]string, error) {
	return c.engine().List(ctx, container)
}

// SetDefaultRule replaces the default placement rule.
func (c *Client) SetDefaultRule(r Rule) error {
	if err := r.Validate(); err != nil {
		return err
	}
	c.broker.Rules().SetDefault(r)
	return nil
}

// SetContainerRule pins a rule to a container.
func (c *Client) SetContainerRule(container string, r Rule) error {
	if err := r.Validate(); err != nil {
		return err
	}
	c.broker.Rules().SetContainerRule(container, r)
	return nil
}

// AddProvider registers a storage provider at runtime (the paper's
// CheapStor scenario); existing objects migrate when the optimizer finds
// the new market cheaper.
func (c *Client) AddProvider(spec Provider) {
	c.broker.Registry().Register(cloud.NewBlobStore(spec))
}

// AddPrivateResource registers a corporate private storage resource
// served by a privstore web service (§III-E). The spec carries the
// resource's capacity and prices; requests are HMAC-signed with token.
func (c *Client) AddPrivateResource(baseURL string, token []byte, spec Provider) {
	client := privstore.NewClient(baseURL, token)
	c.broker.Registry().Register(privstore.NewBackend(client, spec))
}

// NewPrivateStoreServer creates the standalone web service that exposes
// a local directory as an authenticated private storage resource; serve
// it with net/http and register it via AddPrivateResource.
func NewPrivateStoreServer(dir string, token []byte, capacityBytes int64) (*privstore.Server, error) {
	return privstore.NewServer(dir, token, capacityBytes)
}

// RemoveProvider deregisters a provider (market exit).
func (c *Client) RemoveProvider(name string) bool {
	_, ok := c.broker.Registry().Deregister(name)
	return ok
}

// SetProviderAvailable injects or clears a transient provider outage on
// backends that support failure injection (simulated providers do). The
// change goes through the registry, so it bumps the market epoch and
// invalidates the broker's cached placement searches immediately.
func (c *Client) SetProviderAvailable(name string, up bool) bool {
	return c.broker.Registry().SetAvailable(name, up)
}

// UpdateProviderAvailability is SetProviderAvailable with the unified
// admin contract: it returns the market epoch the mutation advanced the
// registry to, ErrUnknownProvider for absent providers, and
// ErrUnsupportedMutation for backends without failure injection.
func (c *Client) UpdateProviderAvailability(name string, up bool) (uint64, error) {
	return c.broker.Registry().UpdateAvailability(name, up)
}

// SetProviderPricing replaces a provider's price sheet at runtime — the
// paper's market price event. The market epoch bumps so cached
// placement searches re-plan against the new prices; false means the
// provider is unknown or its backend has immutable pricing.
func (c *Client) SetProviderPricing(name string, p Pricing) bool {
	return c.broker.Registry().SetPricing(name, p)
}

// UpdateProviderPricing is SetProviderPricing with the unified admin
// contract: new market epoch on success, ErrUnknownProvider /
// ErrUnsupportedMutation on failure.
func (c *Client) UpdateProviderPricing(name string, p Pricing) (uint64, error) {
	return c.broker.Registry().UpdatePricing(name, p)
}

// Optimize runs one periodic optimization procedure (leader election,
// trend-gated recomputation, cost-justified migration). Cancelling ctx
// stops the shard scans early.
func (c *Client) Optimize(ctx context.Context) (OptimizeReport, error) {
	rep, err := c.broker.Optimize(ctx)
	c.broker.Metadata().Flush()
	return rep, err
}

// Repair scans for objects with chunks at unreachable providers and
// applies the policy. The candidate set comes from the provider→objects
// index, so the pass costs O(affected), not O(store).
func (c *Client) Repair(ctx context.Context, policy engine.RepairPolicy) (RepairReport, error) {
	rep, err := c.broker.Repair(ctx, policy)
	c.broker.Metadata().Flush()
	return rep, err
}

// StartOptimize dispatches an asynchronous optimization round and
// returns its job resource immediately; poll with Job.
func (c *Client) StartOptimize() Job { return c.broker.StartOptimize() }

// StartRepair dispatches an asynchronous repair pass and returns its
// job resource immediately; poll with Job.
func (c *Client) StartRepair(policy RepairPolicy) Job { return c.broker.StartRepair(policy) }

// Job returns one maintenance job by ID.
func (c *Client) Job(id string) (Job, bool) { return c.broker.Job(id) }

// Jobs lists maintenance jobs with the object-listing pagination shape
// (prefix/after/limit; limit <= 0 means no cap).
func (c *Client) Jobs(prefix, after string, limit int) JobList {
	return c.broker.Jobs(prefix, after, limit)
}

// DrainMaintenance synchronously re-plans the objects queued by market
// events until the queue is empty or ctx is cancelled, returning how
// many it processed. Deployments with Options.ReoptWorkers > 0 drain in
// the background and rarely need this; tests and worker-less embedders
// call it for deterministic draining.
func (c *Client) DrainMaintenance(ctx context.Context) int {
	return c.broker.DrainMaintenance(ctx)
}

// MaintStats snapshots the event-driven reoptimization queue counters.
func (c *Client) MaintStats() MaintStats { return c.broker.MaintStats() }

// ProcessPendingDeletes retries chunk deletions postponed during
// provider outages.
func (c *Client) ProcessPendingDeletes(ctx context.Context) int {
	return c.broker.ProcessPendingDeletes(ctx)
}

// CurrentPlacement reports an object's provider set and threshold.
func (c *Client) CurrentPlacement(container, key string) (Placement, bool) {
	return c.broker.CurrentPlacement(container + "/" + key)
}

// TotalCost prices all provider usage so far (USD).
func (c *Client) TotalCost() float64 { return c.broker.Registry().TotalCost() }

// TotalUsage aggregates billed resources across providers.
func (c *Client) TotalUsage() Usage { return c.broker.Registry().TotalUsage() }

// AccrueStorage advances storage billing by the given hours (simulated
// deployments call this at period boundaries).
func (c *Client) AccrueStorage(hours float64) { c.broker.Registry().AccrueStorage(hours) }

// Flush drains the statistics pipeline and metadata replication;
// deterministic tests call it before reading statistics.
func (c *Client) Flush() { c.broker.FlushStats() }

// Broker exposes the underlying deployment for advanced integration
// (HTTP serving via engine.NewGateway, direct registry access, the
// Broker().Metrics() observability registry backing /metrics and
// /v1/stats).
func (c *Client) Broker() *engine.Broker { return c.broker }

// NewGateway wraps the deployment in the versioned v1 HTTP interface:
// object routes under /v1/objects (streaming bodies, conditional
// requests, paginated listing), the admin surface (/v1/providers,
// /v1/rules, /v1/optimize, /v1/repair, /v1/stats) and the
// observability endpoints (/metrics in Prometheus text format,
// /v1/healthz; optional pprof via Gateway.EnablePprof, structured
// access logs via Gateway.Logger). Requests round-robin across all
// engines of all datacenters and carry an X-Request-ID echoed on the
// response. Serve it with net/http; the scalia/client package speaks
// the matching wire protocol.
func (c *Client) NewGateway() *engine.Gateway { return engine.NewGateway(c.broker) }
