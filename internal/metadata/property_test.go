package metadata

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestClusterConvergenceProperty drives random write/partition/heal
// schedules against a 2-3 DC cluster and checks that after healing,
// anti-entropy and conflict resolution every node agrees on every row —
// the eventual-consistency guarantee §III-D3 relies on.
func TestClusterConvergenceProperty(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nodes := []*Store{NewStore("dc1"), NewStore("dc2")}
		if seed%3 == 0 {
			nodes = append(nodes, NewStore("dc3"))
		}
		c := NewCluster(nodes...)
		partitioned := false

		ts := int64(0)
		for op := 0; op < 60; op++ {
			switch rng.Intn(10) {
			case 0:
				if !partitioned && len(nodes) >= 2 {
					c.Partition("dc1", "dc2")
					partitioned = true
				}
			case 1:
				if partitioned {
					c.Heal("dc1", "dc2")
					partitioned = false
				}
			case 2:
				c.Flush()
			default:
				node := nodes[rng.Intn(len(nodes))].Node()
				row := fmt.Sprintf("row%d", rng.Intn(5))
				ts++
				v := Version{
					UUID:      fmt.Sprintf("u%d-%d", seed, op),
					Timestamp: ts,
					Columns:   map[string]string{"op": fmt.Sprintf("%d", op)},
				}
				if rng.Intn(8) == 0 {
					v.Deleted = true
				}
				if err := c.Put(node, row, v); err != nil {
					t.Fatalf("seed %d op %d: %v", seed, op, err)
				}
			}
		}
		if partitioned {
			c.Heal("dc1", "dc2")
		}
		c.Flush()
		c.AntiEntropy()
		// Resolve all conflicts everywhere, then re-sync the resolutions.
		for _, s := range nodes {
			for _, row := range s.Rows() {
				s.Get(row) //nolint:errcheck
			}
		}
		c.AntiEntropy()

		// All nodes must agree on the winning version of every row.
		ref := nodes[0]
		for _, row := range ref.Rows() {
			want, _, err := ref.Get(row)
			if err != nil {
				continue
			}
			for _, other := range nodes[1:] {
				got, _, err := other.Get(row)
				if err != nil {
					t.Fatalf("seed %d: row %s missing at %s: %v", seed, row, other.Node(), err)
				}
				if got.UUID != want.UUID {
					t.Fatalf("seed %d: row %s diverged: %s=%s vs %s=%s",
						seed, row, ref.Node(), want.UUID, other.Node(), got.UUID)
				}
			}
		}
	}
}

// TestFreshestAlwaysWinsProperty: regardless of write interleaving, the
// version with the highest timestamp wins resolution on every node.
func TestFreshestAlwaysWinsProperty(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed + 1000))
		dc1, dc2 := NewStore("dc1"), NewStore("dc2")
		c := NewCluster(dc1, dc2)
		c.Partition("dc1", "dc2") // force concurrency

		var maxTS int64
		var maxUUID string
		writes := 2 + rng.Intn(6)
		for i := 0; i < writes; i++ {
			node := "dc1"
			if rng.Intn(2) == 1 {
				node = "dc2"
			}
			ts := int64(rng.Intn(1000))
			uuid := fmt.Sprintf("u%d", i)
			if ts > maxTS {
				maxTS, maxUUID = ts, uuid
			} else if ts == maxTS && uuid > maxUUID {
				maxUUID = uuid
			}
			if err := c.Put(node, "r", Version{UUID: uuid, Timestamp: ts}); err != nil {
				t.Fatal(err)
			}
		}
		c.Heal("dc1", "dc2")
		c.Flush()
		c.AntiEntropy()
		for _, s := range []*Store{dc1, dc2} {
			got, _, err := s.Get("r")
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			// The winner must carry the globally freshest timestamp among
			// the surviving concurrent heads. Later same-node writes
			// supersede earlier ones causally, so the freshest *surviving*
			// version may differ from the raw max; what must always hold is
			// that both replicas agree and the timestamp is not below any
			// other surviving head's.
			heads, _ := s.Heads("r")
			for _, h := range heads {
				if h.Timestamp > got.Timestamp {
					t.Fatalf("seed %d: winner %d older than head %d", seed, got.Timestamp, h.Timestamp)
				}
			}
		}
	}
}
