package engine

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// API serves an engine over HTTP with an S3-like REST interface
// ("engines provide an Amazon S3-like interface ... where the users can
// put, get, list and delete their data using a key-value data model",
// §III).
//
//	PUT    /{container}/{key}   store object (Content-Type = MIME,
//	                            X-Scalia-TTL-Hours = lifetime hint)
//	GET    /{container}/{key}   fetch object
//	HEAD   /{container}/{key}   fetch metadata only
//	DELETE /{container}/{key}   delete object
//	GET    /{container}         list keys (JSON array)
type API struct {
	engine *Engine
	// MaxObjectBytes bounds accepted uploads (default 1 GiB).
	MaxObjectBytes int64
}

// NewAPI wraps an engine in the REST interface.
func NewAPI(e *Engine) *API {
	return &API{engine: e, MaxObjectBytes: 1 << 30}
}

// ServeHTTP implements http.Handler.
func (a *API) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	container, key := splitPath(r.URL.Path)
	if container == "" {
		httpError(w, http.StatusBadRequest, "container required")
		return
	}
	switch {
	case key == "" && r.Method == http.MethodGet:
		a.list(w, container)
	case key == "":
		httpError(w, http.StatusMethodNotAllowed, "object key required")
	case r.Method == http.MethodPut:
		a.put(w, r, container, key)
	case r.Method == http.MethodGet:
		a.get(w, container, key)
	case r.Method == http.MethodHead:
		a.head(w, container, key)
	case r.Method == http.MethodDelete:
		a.delete(w, container, key)
	default:
		httpError(w, http.StatusMethodNotAllowed, "unsupported method")
	}
}

func splitPath(p string) (container, key string) {
	p = strings.TrimPrefix(p, "/")
	if i := strings.IndexByte(p, '/'); i >= 0 {
		return p[:i], p[i+1:]
	}
	return p, ""
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg}) //nolint:errcheck
}

func (a *API) put(w http.ResponseWriter, r *http.Request, container, key string) {
	body, err := io.ReadAll(io.LimitReader(r.Body, a.MaxObjectBytes+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if int64(len(body)) > a.MaxObjectBytes {
		httpError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("object exceeds %d bytes", a.MaxObjectBytes))
		return
	}
	opts := PutOptions{MIME: r.Header.Get("Content-Type")}
	if ttl := r.Header.Get("X-Scalia-TTL-Hours"); ttl != "" {
		if v, err := strconv.ParseFloat(ttl, 64); err == nil && v > 0 {
			opts.TTLHours = v
		}
	}
	meta, err := a.engine.Put(container, key, body, opts)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeMetaHeaders(w, meta)
	w.WriteHeader(http.StatusCreated)
}

func (a *API) get(w http.ResponseWriter, container, key string) {
	data, meta, err := a.engine.Get(container, key)
	if err != nil {
		statusFromErr(w, err)
		return
	}
	writeMetaHeaders(w, meta)
	if meta.MIME != "" {
		w.Header().Set("Content-Type", meta.MIME)
	}
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	w.WriteHeader(http.StatusOK)
	w.Write(data) //nolint:errcheck
}

func (a *API) head(w http.ResponseWriter, container, key string) {
	meta, err := a.engine.Head(container, key)
	if err != nil {
		statusFromErr(w, err)
		return
	}
	writeMetaHeaders(w, meta)
	w.WriteHeader(http.StatusOK)
}

func (a *API) delete(w http.ResponseWriter, container, key string) {
	if err := a.engine.Delete(container, key); err != nil {
		statusFromErr(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (a *API) list(w http.ResponseWriter, container string) {
	keys, err := a.engine.List(container)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	if keys == nil {
		keys = []string{}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(keys) //nolint:errcheck
}

func writeMetaHeaders(w http.ResponseWriter, meta ObjectMeta) {
	w.Header().Set("ETag", `"`+meta.Checksum+`"`)
	w.Header().Set("X-Scalia-M", strconv.Itoa(meta.M))
	w.Header().Set("X-Scalia-Providers", strings.Join(meta.Chunks, ","))
	w.Header().Set("X-Scalia-Size", strconv.FormatInt(meta.Size, 10))
}

func statusFromErr(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrObjectNotFound):
		httpError(w, http.StatusNotFound, err.Error())
	case errors.Is(err, ErrNotEnoughChunks):
		httpError(w, http.StatusServiceUnavailable, err.Error())
	default:
		httpError(w, http.StatusInternalServerError, err.Error())
	}
}
