package core

import (
	"math"
	"testing"
	"testing/quick"

	"scalia/internal/cloud"
	"scalia/internal/stats"
)

func specsByName() map[string]cloud.Spec {
	m := map[string]cloud.Spec{}
	for _, s := range cloud.PaperProviders() {
		m[s.Name] = s
	}
	return m
}

func pick(names ...string) []cloud.Spec {
	by := specsByName()
	out := make([]cloud.Spec, 0, len(names))
	for _, n := range names {
		out = append(out, by[n])
	}
	return out
}

func TestRuleValidate(t *testing.T) {
	bad := []Rule{
		{LockIn: 0, Durability: 0.9, Availability: 0.9},
		{LockIn: 1.5, Durability: 0.9, Availability: 0.9},
		{LockIn: 1, Durability: 1.0, Availability: 0.9},
		{LockIn: 1, Durability: 0.9, Availability: -0.1},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
	good := Rule{LockIn: 0.5, Durability: 0.99999, Availability: 0.9999}
	if err := good.Validate(); err != nil {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestRuleMinProviders(t *testing.T) {
	cases := []struct {
		lockin float64
		want   int
	}{{1, 1}, {0.5, 2}, {0.34, 2}, {0.3, 3}, {0.2, 5}, {0.25, 4}}
	for _, c := range cases {
		r := Rule{LockIn: c.lockin}
		if got := r.MinProviders(); got != c.want {
			t.Errorf("lockin %v: MinProviders = %d, want %d", c.lockin, got, c.want)
		}
	}
}

func TestPaperRules(t *testing.T) {
	rules := PaperRules()
	if len(rules) != 3 {
		t.Fatalf("got %d rules", len(rules))
	}
	// Fig. 2 row 1: lock-in 0.3 => at least 4 providers (1/0.3 = 3.33).
	if got := rules[0].MinProviders(); got != 3 {
		// 1/0.3 = 3.33; the paper's integer floor semantics give N=3
		// (lockin 1/3 = 0.333 > 0.3 fails; see TestLockInFilterExact).
		t.Logf("Rule 1 MinProviders = %d", got)
	}
}

// --- Algorithm 2: GetThreshold ---

func TestGetThresholdPaperSlashdotCases(t *testing.T) {
	// Slashdot scenario: durability 99.999%.
	const dr = 0.99999
	// {S3(h), S3(l)}: surviving both has P ~ 0.9999 < dr, tolerating one
	// failure pushes it over => threshold 1 (paper: m:1 during the peak).
	if got := GetThreshold(pick("S3(h)", "S3(l)"), dr); got != 1 {
		t.Errorf("threshold S3h+S3l = %d, want 1", got)
	}
	// {S3(h), S3(l), Azu, RS}: m:3 before the peak.
	if got := GetThreshold(pick("S3(h)", "S3(l)", "Azu", "RS"), dr); got != 3 {
		t.Errorf("threshold 4-set = %d, want 3", got)
	}
	// All five: m:4 after the peak.
	if got := GetThreshold(pick("S3(h)", "S3(l)", "Azu", "Ggl", "RS"), dr); got != 4 {
		t.Errorf("threshold 5-set = %d, want 4", got)
	}
}

func TestGetThresholdSingleProvider(t *testing.T) {
	// S3(h) alone (11 nines) meets 99.999% durability with m = 1.
	if got := GetThreshold(pick("S3(h)"), 0.99999); got != 1 {
		t.Errorf("S3(h) alone = %d, want 1", got)
	}
	// S3(l) alone (99.99%) cannot meet 99.999%.
	if got := GetThreshold(pick("S3(l)"), 0.99999); got > 0 {
		t.Errorf("S3(l) alone = %d, want <= 0", got)
	}
}

func TestGetThresholdMonotonicInDurability(t *testing.T) {
	pset := pick("S3(h)", "S3(l)", "Azu", "Ggl", "RS")
	prev := 6
	for _, dr := range []float64{0.9, 0.999, 0.99999, 0.9999999, 0.999999999999} {
		th := GetThreshold(pset, dr)
		if th > prev {
			t.Errorf("threshold must not increase with stricter durability: dr=%v th=%d prev=%d", dr, th, prev)
		}
		prev = th
	}
}

func TestGetThresholdZeroDurabilityIsMaximal(t *testing.T) {
	pset := pick("S3(h)", "S3(l)", "Azu")
	// A zero requirement is met with zero tolerated failures: m = n.
	if got := GetThreshold(pset, 0); got != 3 {
		t.Errorf("threshold = %d, want 3", got)
	}
}

// --- Availability ---

func TestGetAvailabilityTwoProviders(t *testing.T) {
	// m=1, two providers at 0.999: av = 1 - 0.001^2 = 0.999999.
	got := GetAvailability(pick("S3(h)", "S3(l)"), 1)
	if math.Abs(got-0.999999) > 1e-12 {
		t.Errorf("av = %.12f, want 0.999999", got)
	}
	// m=2 of 2: av = 0.999^2.
	got = GetAvailability(pick("S3(h)", "S3(l)"), 2)
	if math.Abs(got-0.999*0.999) > 1e-12 {
		t.Errorf("av = %.12f, want %v", got, 0.999*0.999)
	}
}

func TestGetAvailabilitySingleProviderFailsSlashdotRule(t *testing.T) {
	// The paper notes the 99.99% availability constraint requires at
	// least 2 providers: a single 99.9% provider falls short.
	got := GetAvailability(pick("S3(h)"), 1)
	if got >= 0.9999 {
		t.Errorf("single provider av = %v, must be < 0.9999", got)
	}
}

func TestGetAvailabilityFourOfFive(t *testing.T) {
	// m=4, n=5 at 0.999 each: av = a^5 + 5 a^4 (1-a).
	a := 0.999
	want := math.Pow(a, 5) + 5*math.Pow(a, 4)*(1-a)
	got := GetAvailability(pick("S3(h)", "S3(l)", "Azu", "Ggl", "RS"), 4)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("av = %.12f, want %.12f", got, want)
	}
	if got < 0.9999 {
		t.Error("5-set m:4 must satisfy the 99.99% availability rule")
	}
}

func TestGetAvailabilityBounds(t *testing.T) {
	pset := pick("S3(h)", "S3(l)", "Azu")
	if got := GetAvailability(pset, 0); got != 0 {
		t.Errorf("m=0 => 0, got %v", got)
	}
	if got := GetAvailability(pset, 4); got != 0 {
		t.Errorf("m>n => 0, got %v", got)
	}
	f := func(seed uint8) bool {
		m := int(seed%3) + 1
		av := GetAvailability(pset, m)
		return av >= 0 && av <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAvailabilityDecreasesWithM(t *testing.T) {
	pset := pick("S3(h)", "S3(l)", "Azu", "Ggl", "RS")
	prev := 1.0
	for m := 1; m <= 5; m++ {
		av := GetAvailability(pset, m)
		if av > prev+1e-15 {
			t.Errorf("availability must decrease with m: m=%d av=%v prev=%v", m, av, prev)
		}
		prev = av
	}
}

// --- Combinations ---

func TestForEachCombinationCounts(t *testing.T) {
	cases := []struct{ n, k, want int }{
		{5, 0, 1}, {5, 1, 5}, {5, 2, 10}, {5, 3, 10}, {5, 5, 1}, {3, 4, 0},
	}
	for _, c := range cases {
		count := 0
		forEachCombination(c.n, c.k, func([]int) { count++ })
		if count != c.want {
			t.Errorf("C(%d,%d) enumerated %d, want %d", c.n, c.k, count, c.want)
		}
	}
}

func TestProbExactlyKFailSumsToOne(t *testing.T) {
	pset := pick("S3(h)", "S3(l)", "Azu", "RS")
	total := 0.0
	for k := 0; k <= len(pset); k++ {
		total += probExactlyKFail(pset, k, func(s cloud.Spec) float64 { return s.Availability })
	}
	if math.Abs(total-1) > 1e-12 {
		t.Errorf("failure probabilities sum to %v, want 1", total)
	}
}

// --- Pricing ---

func coldLoad(sizeBytes int64) stats.Summary {
	return stats.Summary{Periods: 1, StorageBytes: float64(sizeBytes)}
}

func TestPeriodCostStorageOnly(t *testing.T) {
	p := Placement{Providers: pick("S3(h)", "S3(l)"), M: 1}
	load := coldLoad(1e9) // 1 GB
	got := PeriodCost(p, load, 1)
	want := (0.14 + 0.093) / cloud.HoursPerMonth // both hold a full replica
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("cost = %v, want %v", got, want)
	}
}

func TestPeriodCostChunkScaling(t *testing.T) {
	// With m=2 each chunk is half the object: storage halves per provider.
	p := Placement{Providers: pick("S3(h)", "S3(l)"), M: 2}
	load := coldLoad(1e9)
	got := PeriodCost(p, load, 1)
	want := (0.14 + 0.093) / 2 / cloud.HoursPerMonth
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("cost = %v, want %v", got, want)
	}
}

func TestPeriodCostReadPathUsesCheapestM(t *testing.T) {
	// RS has the most expensive bandwidth-out (0.18) but free ops; with a
	// large object the read path must avoid RS when m < n.
	p := Placement{Providers: pick("S3(h)", "S3(l)", "RS"), M: 2}
	load := stats.Summary{Periods: 1, Reads: 1, BytesOut: 1e9, StorageBytes: 1e9}
	got := PeriodCost(p, load, 1)
	storage := (0.14 + 0.093 + 0.15) / 2 / cloud.HoursPerMonth
	// Read: 0.5 GB from each of the two cheapest: S3(h) and S3(l) at 0.15
	// plus 1 op each at 0.01/1000.
	read := 2 * (0.5*0.15 + 0.01/1000)
	if math.Abs(got-(storage+read)) > 1e-9 {
		t.Errorf("cost = %v, want %v", got, storage+read)
	}
}

func TestPeriodCostOpsDominateSmallObjects(t *testing.T) {
	// For a tiny object with many reads, a smaller m is cheaper because
	// each read costs m operations — the gallery experiment's tiering
	// force.
	small := stats.Summary{Periods: 1, Reads: 1000, BytesOut: 1000 * 250e3, StorageBytes: 250e3}
	m1 := Placement{Providers: pick("S3(h)", "S3(l)"), M: 1}
	m2 := Placement{Providers: pick("S3(h)", "S3(l)", "Azu"), M: 2}
	if PeriodCost(m1, small, 1) >= PeriodCost(m2, small, 1) {
		t.Error("hot small object must be cheaper on [S3h,S3l; m:1] than [S3h,S3l,Azu; m:2]")
	}
}

func TestPeriodCostWritePath(t *testing.T) {
	p := Placement{Providers: pick("S3(h)", "RS"), M: 1}
	load := stats.Summary{Periods: 1, Writes: 2, BytesIn: 2e9, StorageBytes: 1e9}
	got := PeriodCost(p, load, 1)
	storage := (0.14 + 0.15) / cloud.HoursPerMonth * 2 / 2 // full replica each... wait m=1: chunk = 1GB each
	_ = storage
	wantStorage := (0.14 + 0.15) * 1.0 / cloud.HoursPerMonth
	wantWrite := 2.0*0.1 + 2.0*0.08 + // 2 GB in at each provider's in-price
		2*0.01/1000 + 2*0.0/1000 // 2 PUT ops each
	if math.Abs(got-(wantStorage+wantWrite)) > 1e-9 {
		t.Errorf("cost = %v, want %v", got, wantStorage+wantWrite)
	}
}

func TestWindowCostScalesLinearly(t *testing.T) {
	p := Placement{Providers: pick("S3(h)"), M: 1}
	load := coldLoad(1e9)
	one := WindowCost(p, load, 1, 1)
	week := WindowCost(p, load, 1, 168)
	if math.Abs(week-168*one) > 1e-12 {
		t.Errorf("week = %v, want %v", week, 168*one)
	}
}

func TestMigrationCostSameThresholdDirectCopy(t *testing.T) {
	// Same m and n: the Ggl chunk moves to RS by direct copy — the
	// paper's "cheapest case" (§IV-E); no reconstruction happens.
	from := Placement{Providers: pick("S3(h)", "Azu", "Ggl"), M: 2}
	to := Placement{Providers: pick("S3(h)", "Azu", "RS"), M: 2}
	got := MigrationCost(from, to, 1.0) // 1 GB object
	// Read the 0.5 GB chunk from Ggl (0.15/GB out + 1 op).
	read := 0.5*0.15 + 0.01/1000
	// Write it to RS: 0.5 GB at 0.08 in, ops free.
	write := 0.5 * 0.08
	// Delete the Ggl chunk: one op.
	del := 0.01 / 1000
	want := read + write + del
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("migration = %v, want %v", got, want)
	}
}

func TestMigrationCostDirectCopyCheaperThanRestripe(t *testing.T) {
	from := Placement{Providers: pick("S3(h)", "Azu", "Ggl"), M: 2}
	to := Placement{Providers: pick("S3(h)", "Azu", "RS"), M: 2}
	restripe := Placement{Providers: pick("S3(h)", "Azu", "RS"), M: 3}
	if MigrationCost(from, to, 1.0) >= MigrationCost(from, restripe, 1.0) {
		t.Error("a direct chunk copy must cost less than a re-stripe")
	}
}

func TestMigrationCostRestripeRewritesAll(t *testing.T) {
	from := Placement{Providers: pick("S3(h)", "S3(l)"), M: 1}
	to := Placement{Providers: pick("S3(h)", "S3(l)", "Azu"), M: 2}
	got := MigrationCost(from, to, 1.0)
	// Read 1 chunk (full object) from the cheapest source.
	read := 1.0*0.15 + 0.01/1000
	// Rewrite all three chunks of 0.5 GB.
	write := 0.5*(0.1+0.1+0.1) + 3*0.01/1000
	// Delete both old chunks.
	del := 2 * 0.01 / 1000
	want := read + write + del
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("migration = %v, want %v", got, want)
	}
}

func TestMigrationCostIdenticalPlacementFree(t *testing.T) {
	p := Placement{Providers: pick("S3(h)", "S3(l)"), M: 1}
	got := MigrationCost(p, p, 5.0)
	// Same set, same m: nothing to write or delete; reconstruction reads
	// nothing because no chunk changes... the model still charges the
	// read of m chunks only when something must be written.
	if got > 1.0*0.15+1e-6 {
		t.Errorf("no-op migration should cost at most one chunk read, got %v", got)
	}
}

// --- Placement (Algorithm 1) ---

func slashdotRule() Rule {
	return Rule{Name: "slashdot", Durability: 0.99999, Availability: 0.9999, LockIn: 1}
}

func TestBestPlacementColdObjectPrefersStorageCheapSets(t *testing.T) {
	res, err := BestPlacement(cloud.PaperProviders(), slashdotRule(), coldLoad(1e6), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Cold data: storage-dominated. The optimum is a wide set with a high
	// threshold (per-provider chunk share shrinks as m grows).
	if res.Placement.M < 3 {
		t.Errorf("cold placement %v: expected a high threshold", res.Placement)
	}
	if res.Evaluated != 31 {
		t.Errorf("exact search evaluated %d sets, want 31", res.Evaluated)
	}
}

func TestBestPlacementHotObjectPicksM1PairPaperShape(t *testing.T) {
	// During the Slashdot peak (150 reads/hour on a 1 MB object) the
	// paper reports [S3(h), S3(l); m:1] as the cheapest feasible set.
	load := stats.Summary{Periods: 1, Reads: 150, BytesOut: 150 * 1e6, StorageBytes: 1e6}
	res, err := BestPlacement(cloud.PaperProviders(), slashdotRule(), load, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := Placement{Providers: pick("S3(h)", "S3(l)"), M: 1}
	if !res.Placement.Equal(want) {
		t.Errorf("hot placement = %v, want %v", res.Placement, want)
	}
}

func TestBestPlacementRespectsAvailability(t *testing.T) {
	// A single provider never satisfies 99.99% availability at 99.9% SLA.
	res, err := BestPlacement(cloud.PaperProviders(), slashdotRule(), coldLoad(1e6), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Placement.N() < 2 {
		t.Errorf("placement %v violates the 2-provider availability bound", res.Placement)
	}
	if av := GetAvailability(res.Placement.Providers, res.Placement.M); av < 0.9999 {
		t.Errorf("availability %v < 0.9999", av)
	}
}

func TestBestPlacementLockInForcesWidth(t *testing.T) {
	rule := Rule{Durability: 0.9999, Availability: 0.999, LockIn: 0.25}
	res, err := BestPlacement(cloud.PaperProviders(), rule, coldLoad(40e6), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Placement.N() < 4 {
		t.Errorf("lock-in 0.25 requires >= 4 providers, got %v", res.Placement)
	}
}

func TestLockInFilterExact(t *testing.T) {
	// lockin(pset) = 1/|pset| <= rule.LockIn. With LockIn = 0.5 a
	// single-provider set (lockin 1) must be rejected even if cheapest.
	rule := Rule{Durability: 0.99, Availability: 0.99, LockIn: 0.5}
	res, err := BestPlacement(cloud.PaperProviders(), rule, coldLoad(1e6), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Placement.N() < 2 {
		t.Errorf("placement %v violates lock-in", res.Placement)
	}
}

func TestBestPlacementZoneFilter(t *testing.T) {
	// EU-only rule: only the two S3 profiles serve EU in Fig. 3.
	rule := Rule{Durability: 0.9999, Availability: 0.9999,
		Zones: []cloud.Zone{cloud.ZoneEU}, LockIn: 1}
	res, err := BestPlacement(cloud.PaperProviders(), rule, coldLoad(1e6), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range res.Placement.Names() {
		if name != "S3(h)" && name != "S3(l)" {
			t.Errorf("non-EU provider %s selected for EU rule", name)
		}
	}
}

func TestBestPlacementInfeasible(t *testing.T) {
	// Durability demand beyond any combination of the weak providers.
	weak := []cloud.Spec{
		{Name: "w1", Durability: 0.9, Availability: 0.9, Pricing: cloud.Pricing{StorageGBMonth: 0.1}},
		{Name: "w2", Durability: 0.9, Availability: 0.9, Pricing: cloud.Pricing{StorageGBMonth: 0.1}},
	}
	rule := Rule{Durability: 0.999999999, Availability: 0.99, LockIn: 1}
	if _, err := BestPlacement(weak, rule, coldLoad(1e6), Options{}); err == nil {
		t.Fatal("expected ErrNoProviders")
	}
}

func TestBestPlacementChunkConstraintExcludesProvider(t *testing.T) {
	specs := cloud.PaperProviders()
	// Give Azure a 1 KB max chunk: any set including it is infeasible for
	// a 1 MB object, so the optimizer must route around it.
	for i := range specs {
		if specs[i].Name == "Azu" {
			specs[i].MaxChunkBytes = 1 << 10
		}
	}
	rule := Rule{Durability: 0.9999, Availability: 0.9999, LockIn: 1}
	res, err := BestPlacement(specs, rule, coldLoad(1<<20), Options{ObjectBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if res.Placement.Has("Azu") {
		t.Errorf("constrained provider included: %v", res.Placement)
	}
}

func TestBestPlacementFreeBytesConstraint(t *testing.T) {
	rule := Rule{Durability: 0.9999, Availability: 0.9999, LockIn: 1}
	free := map[string]int64{"S3(l)": 10} // S3(l) almost full
	res, err := BestPlacement(cloud.PaperProviders(), rule, coldLoad(1e6),
		Options{ObjectBytes: 1e6, FreeBytes: free})
	if err != nil {
		t.Fatal(err)
	}
	if res.Placement.Has("S3(l)") {
		t.Errorf("full provider included: %v", res.Placement)
	}
}

func TestBestPlacementDeterministic(t *testing.T) {
	load := stats.Summary{Periods: 1, Reads: 3, BytesOut: 3e6, StorageBytes: 1e6}
	a, err := BestPlacement(cloud.PaperProviders(), slashdotRule(), load, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		b, err := BestPlacement(cloud.PaperProviders(), slashdotRule(), load, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !a.Placement.Equal(b.Placement) {
			t.Fatalf("non-deterministic: %v vs %v", a.Placement, b.Placement)
		}
	}
}

func TestPrunedMatchesExactOnPaperScenarios(t *testing.T) {
	loads := []stats.Summary{
		coldLoad(1e6),
		{Periods: 1, Reads: 150, BytesOut: 150e6, StorageBytes: 1e6},
		{Periods: 1, Reads: 10, BytesOut: 10 * 250e3, StorageBytes: 250e3},
		{Periods: 1, Writes: 1, BytesIn: 40e6, StorageBytes: 40e6},
	}
	for i, load := range loads {
		exact, err := BestPlacement(cloud.PaperProviders(), slashdotRule(), load, Options{})
		if err != nil {
			t.Fatal(err)
		}
		pruned, err := BestPlacement(cloud.PaperProviders(), slashdotRule(), load, Options{Pruned: true})
		if err != nil {
			t.Fatal(err)
		}
		// The heuristic may be suboptimal but must stay within 10% and
		// must evaluate far fewer candidates.
		if pruned.Price > exact.Price*1.10+1e-12 {
			t.Errorf("load %d: pruned price %v > 1.1 x exact %v", i, pruned.Price, exact.Price)
		}
		if pruned.Evaluated >= exact.Evaluated {
			t.Errorf("load %d: pruned evaluated %d >= exact %d", i, pruned.Evaluated, exact.Evaluated)
		}
	}
}

func TestPlacementStringAndKey(t *testing.T) {
	p := Placement{Providers: pick("S3(l)", "S3(h)"), M: 1}
	if p.String() != "[S3(h), S3(l); m:1]" {
		t.Errorf("String = %q", p.String())
	}
	if p.Key() != p.String() {
		t.Error("Key must equal String")
	}
}

func TestPlacementEqualIgnoresOrder(t *testing.T) {
	a := Placement{Providers: pick("S3(h)", "Azu"), M: 1}
	b := Placement{Providers: pick("Azu", "S3(h)"), M: 1}
	if !a.Equal(b) {
		t.Error("order must not matter")
	}
	c := Placement{Providers: pick("Azu", "S3(h)"), M: 2}
	if a.Equal(c) {
		t.Error("different m must differ")
	}
}

// --- Decision controller ---

func TestDecisionControllerCoupling(t *testing.T) {
	c := NewDecisionController(24, 0)
	if !c.Tick() {
		t.Fatal("first tick must evaluate (T=1)")
	}
	cands := c.Candidates(0)
	if cands != [3]int{12, 24, 48} {
		t.Fatalf("candidates = %v", cands)
	}
	// Middle wins: D stays, T doubles.
	c.Update(1, cands)
	if c.D() != 24 || c.T() != 2 {
		t.Fatalf("after adequate D: D=%d T=%d", c.D(), c.T())
	}
	if c.Tick() {
		t.Fatal("tick 1 of 2 must not evaluate")
	}
	if !c.Tick() {
		t.Fatal("tick 2 of 2 must evaluate")
	}
	// 2D wins: D doubles, T resets.
	cands = c.Candidates(0)
	c.Update(2, cands)
	if c.D() != 48 || c.T() != 1 {
		t.Fatalf("after D change: D=%d T=%d", c.D(), c.T())
	}
}

func TestDecisionControllerClamp(t *testing.T) {
	c := NewDecisionController(24, 0)
	cands := c.Candidates(30) // min(TTL, |H|) = 30
	if cands[2] != 30 {
		t.Fatalf("2D must clamp to 30, got %v", cands)
	}
	// If the clamped candidate equals D, choosing it is "adequate".
	c2 := NewDecisionController(24, 0)
	cands2 := c2.Candidates(24)
	c2.Update(2, cands2) // 2D clamped to 24 == D
	if c2.D() != 24 || c2.T() != 2 {
		t.Fatalf("clamped-equal candidate must count as adequate: D=%d T=%d", c2.D(), c2.T())
	}
}

func TestDecisionControllerMaxT(t *testing.T) {
	c := NewDecisionController(24, 8)
	for i := 0; i < 10; i++ {
		c.Update(1, c.Candidates(0))
	}
	if c.T() != 8 {
		t.Fatalf("T = %d, want capped at 8", c.T())
	}
}

func TestDecisionControllerHalving(t *testing.T) {
	c := NewDecisionController(24, 0)
	c.Update(0, c.Candidates(0))
	if c.D() != 12 || c.T() != 1 {
		t.Fatalf("after halving: D=%d T=%d", c.D(), c.T())
	}
	// D can never fall below the minimum.
	c2 := NewDecisionController(1, 0)
	c2.Update(0, c2.Candidates(0))
	if c2.D() < MinDecisionPeriod {
		t.Fatalf("D below minimum: %d", c2.D())
	}
}
