package engine

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"mime/multipart"
	"net/http"
	"net/http/pprof"
	"net/textproto"
	"runtime"
	"strconv"
	"strings"
	"time"

	"scalia/internal/cache"
	"scalia/internal/cloud"
	"scalia/internal/core"
	"scalia/internal/obs"
)

// Gateway is the versioned HTTP surface of a whole Scalia deployment —
// the paper's "Amazon S3-like interface ... where the users can put,
// get, list and delete their data" (§III), grown into a v1 wire
// protocol. Unlike a per-engine handler, the gateway fronts the broker:
// every request is routed round-robin across all engines of all
// datacenters (through the same atomic counter the embedded facade
// uses), object bodies stream stripe by stripe in both directions, and
// the request context cancels in-flight chunk fan-out.
//
// Object routes:
//
//	PUT    /v1/objects/{container}/{key}  store (streaming body;
//	       Content-Type = MIME, X-Scalia-TTL-Hours = lifetime hint,
//	       If-Match / If-None-Match:* = conditional write)
//	GET    /v1/objects/{container}/{key}  fetch (streaming; If-None-Match -> 304;
//	       Range: bytes=... -> 206, mapped onto whole stripes so only
//	       the overlapped stripes are fetched or served from cache;
//	       multi-range requests stream a multipart/byteranges body)
//	HEAD   /v1/objects/{container}/{key}  metadata only
//	DELETE /v1/objects/{container}/{key}  delete (If-Match = conditional)
//	GET    /v1/objects/{container}?prefix=&limit=&after=  paginated list
//
// Multipart routes (S3-style, selected by query parameters on the
// object path):
//
//	POST   /v1/objects/{container}/{key}?uploads            open an upload
//	       session (X-Scalia-Size-Hint = expected total bytes for
//	       placement planning; Content-Type / TTL / preconditions as PUT)
//	PUT    /v1/objects/{container}/{key}?partNumber=N&uploadId=ID
//	       stage one part (streaming body; every part except the final
//	       one must be a whole multiple of the stripe size); the response
//	       ETag is the part's MD5, quoted
//	POST   /v1/objects/{container}/{key}?uploadId=ID        complete: JSON
//	       body {"parts":[{"partNumber":1,"etag":"..."}, ...]}
//	GET    /v1/objects/{container}/{key}?uploadId=ID        list staged parts
//	DELETE /v1/objects/{container}/{key}?uploadId=ID        abort
//
// Admin routes:
//
//	GET    /v1/providers        provider market with availability + usage
//	POST   /v1/providers        register a provider (JSON cloud.Spec)
//	DELETE /v1/providers/{name} deregister a provider
//	PUT    /v1/providers/{name}/availability  inject/clear an outage
//	       (JSON {"available": bool} — scripted chaos)
//	PUT    /v1/providers/{name}/pricing  replace the price sheet at
//	       runtime (JSON cloud.Pricing — scripted market event)
//	PUT    /v1/rules/{container} pin a placement rule (JSON core.Rule)
//	POST   /v1/optimize         run one optimization round
//	POST   /v1/repair?policy=wait|active  run a repair pass
//	GET    /v1/stats            planner/optimizer/usage/cost counters,
//	       stripe-cache hit/miss/evictions and read-path fan-out counters
//
// Observability routes:
//
//	GET    /metrics     Prometheus text exposition of the broker registry
//	GET    /v1/healthz  build info, uptime, per-provider alive + latency
//	GET    /debug/pprof/*  runtime profiles (only after EnablePprof)
//
// Every request runs through the gateway middleware: a request ID
// (client-provided X-Request-ID or generated) starts an obs.Trace that
// rides the request context through the broker, the response carries
// the ID back, the request latency/count/bytes land in the metric
// registry under the matched route pattern, and — when Logger is set —
// one structured access-log line records method, path, status, bytes,
// duration and the trace's stripe fan-out / cache-hit / fallback
// counts and span timings.
//
// Errors are typed JSON: {"error": {"code": "...", "message": "..."}}.
type Gateway struct {
	broker *Broker
	mux    *http.ServeMux
	// MaxObjectBytes bounds accepted uploads (default 1 GiB).
	MaxObjectBytes int64
	// Logger, when non-nil, receives one structured access-log line per
	// request. Nil (the default) disables access logging — embedded
	// deployments and tests stay quiet.
	Logger *slog.Logger
}

// NewGateway wraps a broker deployment in the v1 REST interface.
func NewGateway(b *Broker) *Gateway {
	g := &Gateway{broker: b, MaxObjectBytes: 1 << 30}
	mux := http.NewServeMux()
	mux.HandleFunc("PUT /v1/objects/{container}/{key...}", g.putObject)
	mux.HandleFunc("GET /v1/objects/{container}/{key...}", g.getObject)
	mux.HandleFunc("POST /v1/objects/{container}/{key...}", g.postObject)
	mux.HandleFunc("DELETE /v1/objects/{container}/{key...}", g.deleteObject)
	mux.HandleFunc("GET /v1/objects/{container}", g.listObjects)
	mux.HandleFunc("GET /v1/providers", g.listProviders)
	mux.HandleFunc("POST /v1/providers", g.addProvider)
	mux.HandleFunc("DELETE /v1/providers/{name}", g.removeProvider)
	mux.HandleFunc("PUT /v1/providers/{name}/availability", g.setProviderAvailability)
	mux.HandleFunc("PUT /v1/providers/{name}/pricing", g.setProviderPricing)
	mux.HandleFunc("PUT /v1/rules/{container}", g.setRule)
	mux.HandleFunc("POST /v1/optimize", g.optimize)
	mux.HandleFunc("POST /v1/repair", g.repair)
	mux.HandleFunc("GET /v1/jobs", g.listJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", g.getJob)
	mux.HandleFunc("GET /v1/stats", g.stats)
	mux.HandleFunc("GET /v1/healthz", g.healthz)
	mux.HandleFunc("GET /metrics", g.metricsHandler)
	g.mux = mux
	return g
}

// EnablePprof mounts the net/http/pprof profile handlers under
// /debug/pprof/. Call at most once, before serving; the endpoints
// expose goroutine dumps and heap contents, so production deployments
// keep them behind the -pprof flag.
func (g *Gateway) EnablePprof() {
	g.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	g.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	g.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	g.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	g.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}

// ServeHTTP implements http.Handler: the observability middleware
// around the route mux.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	reqID := strings.TrimSpace(r.Header.Get("X-Request-ID"))
	if reqID == "" {
		reqID = obs.NewRequestID()
	}
	tr := obs.NewTrace(reqID)
	r = r.WithContext(obs.WithTrace(r.Context(), tr))
	w.Header().Set("X-Request-ID", reqID)

	// Resolve the route pattern for the metric label before dispatch
	// (the mux does not expose it on the outer request afterwards). The
	// pattern keeps label cardinality bounded — raw paths would mint one
	// series per object key.
	_, pattern := g.mux.Handler(r)
	route := pattern
	if i := strings.IndexByte(route, ' '); i >= 0 {
		route = route[i+1:]
	}
	if route == "" {
		route = "unmatched"
	}

	sw := &statusWriter{ResponseWriter: w}
	start := time.Now()
	g.mux.ServeHTTP(sw, r)
	dur := time.Since(start)

	code := sw.status
	if code == 0 {
		code = http.StatusOK
	}
	m := g.broker.metrics
	m.httpDur.With(r.Method, route).Observe(dur.Seconds())
	m.httpReqs.With(r.Method, route, strconv.Itoa(code)).Inc()
	m.httpBytes.With(r.Method, route).Add(sw.bytes)

	if g.Logger != nil {
		counts := tr.Counts()
		g.Logger.Info("request",
			"requestID", reqID,
			"method", r.Method,
			"path", r.URL.Path,
			"route", route,
			"status", code,
			"bytes", sw.bytes,
			"durMs", float64(dur.Microseconds())/1000,
			"stripesCached", counts["stripes_cached"],
			"stripesFetched", counts["stripes_fetched"],
			"fallbacks", counts["fallbacks"],
			"spans", tr.SpanSummary(),
		)
	}
}

// statusWriter captures the status code and body bytes of a response.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	n, err := sw.ResponseWriter.Write(p)
	sw.bytes += int64(n)
	return n, err
}

// Flush forwards streaming flushes so wrapping does not buffer
// stripe-by-stripe object bodies.
func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// engine picks the serving engine for one request: round-robin over all
// engines of all datacenters via the broker's shared counter.
func (g *Gateway) engine() *Engine { return g.broker.NextEngine() }

// --- wire error schema ---

// APIError is the typed error payload of the v1 protocol.
type APIError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// Error implements error (the typed client returns APIError values).
func (e *APIError) Error() string { return e.Code + ": " + e.Message }

func writeError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]APIError{ //nolint:errcheck
		"error": {Code: code, Message: msg},
	})
}

// statusFromErr maps engine/core/cloud sentinel errors onto protocol
// status codes: client mistakes are 4xx (malformed input 400,
// infeasible rules 422, stale preconditions 412) and only genuine
// server trouble is 5xx.
func statusFromErr(err error) (int, string) {
	switch {
	case errors.Is(err, ErrObjectNotFound):
		return http.StatusNotFound, "not_found"
	case errors.Is(err, ErrUploadNotFound):
		return http.StatusNotFound, "upload_not_found"
	case errors.Is(err, ErrPreconditionFailed):
		return http.StatusPreconditionFailed, "precondition_failed"
	case errors.Is(err, ErrInvalidArgument):
		return http.StatusBadRequest, "invalid_argument"
	case errors.Is(err, ErrRangeNotSatisfiable):
		return http.StatusRequestedRangeNotSatisfiable, "range_not_satisfiable"
	case errors.Is(err, core.ErrBadLockIn), errors.Is(err, core.ErrBadProbability):
		return http.StatusBadRequest, "invalid_rule"
	case errors.Is(err, core.ErrNoProviders):
		// The rule is well-formed but no feasible provider set satisfies
		// it on the current market: the request is semantically
		// unprocessable, not a server fault.
		return http.StatusUnprocessableEntity, "infeasible_placement"
	case errors.Is(err, cloud.ErrUnknownProvider):
		return http.StatusNotFound, "unknown_provider"
	case errors.Is(err, cloud.ErrUnsupportedMutation):
		// The provider exists but its backend cannot take this mutation
		// (remote private resources have no failure injection, fixed
		// pricing): the request is well-formed but unprocessable here.
		return http.StatusUnprocessableEntity, "unsupported_mutation"
	case errors.Is(err, cloud.ErrTooLarge):
		return http.StatusRequestEntityTooLarge, "too_large"
	case errors.Is(err, cloud.ErrOverCapacity):
		return http.StatusInsufficientStorage, "over_capacity"
	case errors.Is(err, cloud.ErrUnavailable):
		// A provider dropped between the placement decision and the chunk
		// fan-out (§III-D3's race) — transient, retryable, not a fault of
		// the deployment itself.
		return http.StatusServiceUnavailable, "provider_unavailable"
	case errors.Is(err, ErrNotEnoughChunks), errors.Is(err, ErrNoLeader):
		return http.StatusServiceUnavailable, "unavailable"
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// The client went away mid-request; it will not read the status,
		// but logs and tests should not see a 500.
		return http.StatusRequestTimeout, "request_cancelled"
	default:
		return http.StatusInternalServerError, "internal"
	}
}

func failErr(w http.ResponseWriter, err error) {
	status, code := statusFromErr(err)
	writeError(w, status, code, err.Error())
}

// --- object routes ---

// parsePutOptions extracts the write options shared by PUT and the
// multipart session open: MIME, conditional headers and the TTL hint.
// A non-"*" If-None-Match reports an error — silently ignoring a value
// the client explicitly asked for would drop a precondition
// (RFC 9110 §13.1.2).
func parsePutOptions(r *http.Request) (PutOptions, error) {
	if inm := r.Header.Get("If-None-Match"); inm != "" && inm != "*" {
		return PutOptions{}, fmt.Errorf(`writes support only If-None-Match: *`)
	}
	opts := PutOptions{
		MIME:    r.Header.Get("Content-Type"),
		IfMatch: r.Header.Get("If-Match"),
		// Create only if absent; enforced by the engine against the
		// stored version, not a separate Head probe.
		IfAbsent: r.Header.Get("If-None-Match") == "*",
	}
	if ttl := r.Header.Get("X-Scalia-TTL-Hours"); ttl != "" {
		if v, err := strconv.ParseFloat(ttl, 64); err == nil && v > 0 {
			opts.TTLHours = v
		}
	}
	return opts, nil
}

func (g *Gateway) putObject(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("uploadId") != "" || r.URL.Query().Get("partNumber") != "" {
		g.uploadPart(w, r)
		return
	}
	container, key := r.PathValue("container"), r.PathValue("key")
	size := r.ContentLength
	if size < 0 {
		writeError(w, http.StatusLengthRequired, "length_required",
			"streaming writes need a declared Content-Length")
		return
	}
	if size > g.MaxObjectBytes {
		writeError(w, http.StatusRequestEntityTooLarge, "too_large",
			fmt.Sprintf("object exceeds %d bytes", g.MaxObjectBytes))
		return
	}
	opts, err := parsePutOptions(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid_argument", err.Error())
		return
	}
	meta, err := g.engine().PutReader(r.Context(), container, key, r.Body, size, opts)
	if err != nil {
		failErr(w, err)
		return
	}
	g.broker.Metadata().Flush()
	writeMetaHeaders(w, meta)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	json.NewEncoder(w).Encode(meta) //nolint:errcheck
}

func (g *Gateway) getObject(w http.ResponseWriter, r *http.Request) {
	if id := r.URL.Query().Get("uploadId"); id != "" {
		g.listParts(w, r, id)
		return
	}
	container, key := r.PathValue("container"), r.PathValue("key")
	e := g.engine()
	w.Header().Set("Accept-Ranges", "bytes")
	// HEAD and conditional GET resolve from metadata alone, so the
	// common revalidation case (ETag still current -> 304) never touches
	// a chunk. A stale ETag pays one extra in-memory metadata read when
	// GetReader re-resolves below — and serves whatever version is live
	// at that moment, which is the later of the two and self-consistent
	// with its own headers.
	if inm := r.Header.Get("If-None-Match"); inm != "" || r.Method == http.MethodHead {
		meta, err := e.Head(r.Context(), container, key)
		if err != nil {
			failErr(w, err)
			return
		}
		if inm != "" && etagMatches(inm, meta) {
			w.Header().Set("ETag", meta.ETag())
			w.WriteHeader(http.StatusNotModified)
			return
		}
		if r.Method == http.MethodHead {
			writeMetaHeaders(w, meta)
			if meta.MIME != "" {
				w.Header().Set("Content-Type", meta.MIME)
			}
			w.Header().Set("Content-Length", strconv.FormatInt(meta.Size, 10))
			w.WriteHeader(http.StatusOK)
			return
		}
	}
	if specs, ok := parseRangeHeader(r.Header.Get("Range")); ok {
		serve := true
		if ir := strings.TrimSpace(r.Header.Get("If-Range")); ir != "" {
			// If-Range gates the range on validator currency (RFC 9110
			// §13.1.5): current ETag -> the 206 the client asked for,
			// stale -> the full 200 body so a resumed download cannot
			// splice bytes of two different versions.
			head, err := e.Head(r.Context(), container, key)
			if err != nil {
				failErr(w, err)
				return
			}
			serve = ifRangeMatches(ir, head)
		}
		if serve {
			if len(specs) == 1 {
				g.serveRange(w, r, e, container, key, specs[0])
			} else {
				g.serveMultiRange(w, r, e, container, key, specs)
			}
			return
		}
	}
	rc, meta, err := e.GetReader(r.Context(), container, key)
	if err != nil {
		failErr(w, err)
		return
	}
	defer rc.Close()
	writeMetaHeaders(w, meta)
	if meta.MIME != "" {
		w.Header().Set("Content-Type", meta.MIME)
	}
	w.Header().Set("Content-Length", strconv.FormatInt(meta.Size, 10))
	w.WriteHeader(http.StatusOK)
	// The body streams stripe by stripe; a mid-stream failure can only
	// truncate the response (the status is already on the wire), which
	// the client detects against Content-Length.
	io.Copy(w, rc) //nolint:errcheck
}

// rangeSpec is one parsed single-range header. Exactly one of the two
// forms is set: suffix < 0 means an absolute range [start, start+length)
// with length < 0 standing for "to the object end"; suffix >= 0 means
// "the last suffix bytes".
type rangeSpec struct {
	start, length int64
	suffix        int64
}

// parseRangeHeader parses a "bytes=" Range header into its full
// ranges-specifier list. One element yields a plain 206 (serveRange);
// several yield a multipart/byteranges body (serveMultiRange, RFC 9110
// §14.6). Any syntactically invalid element invalidates the whole
// header (§14.2 — an invalid ranges-specifier is ignored), reported as
// !ok so the caller falls back to the full 200 body.
func parseRangeHeader(h string) ([]rangeSpec, bool) {
	const prefix = "bytes="
	if !strings.HasPrefix(h, prefix) {
		return nil, false
	}
	parts := strings.Split(strings.TrimPrefix(h, prefix), ",")
	specs := make([]rangeSpec, 0, len(parts))
	for _, part := range parts {
		spec, ok := parseRangeSpec(strings.TrimSpace(part))
		if !ok {
			return nil, false
		}
		specs = append(specs, spec)
	}
	return specs, true
}

// parseRangeSpec parses one ranges-specifier element ("a-b", "a-",
// "-n").
func parseRangeSpec(val string) (rangeSpec, bool) {
	spec := rangeSpec{suffix: -1}
	if val == "" {
		return spec, false
	}
	dash := strings.IndexByte(val, '-')
	if dash < 0 {
		return spec, false
	}
	first, last := strings.TrimSpace(val[:dash]), strings.TrimSpace(val[dash+1:])
	if first == "" {
		// Suffix form: bytes=-N, the last N bytes.
		n, err := strconv.ParseInt(last, 10, 64)
		if err != nil || n < 0 {
			return spec, false
		}
		spec.suffix = n
		return spec, true
	}
	start, err := strconv.ParseInt(first, 10, 64)
	if err != nil || start < 0 {
		return spec, false
	}
	spec.start = start
	spec.length = -1 // open-ended: bytes=N-
	if last != "" {
		end, err := strconv.ParseInt(last, 10, 64)
		if err != nil || end < start {
			return spec, false
		}
		spec.length = end - start + 1
	}
	return spec, true
}

// serveRange answers a single-range GET: the engine maps the byte range
// onto the stripes it overlaps, so only those are consulted in the
// stripe cache or fetched from the providers. GetRangeReader owns the
// clamp and the unsatisfiable check; the gateway only translates the
// suffix form (which needs the object size before the offset exists)
// and the wire headers.
func (g *Gateway) serveRange(w http.ResponseWriter, r *http.Request, e *Engine, container, key string, spec rangeSpec) {
	offset, length := spec.start, spec.length
	if spec.suffix >= 0 {
		// Head is a pure in-memory metadata read.
		head, err := e.Head(r.Context(), container, key)
		if err != nil {
			failErr(w, err)
			return
		}
		if spec.suffix == 0 {
			w.Header().Set("Content-Range", "bytes */"+strconv.FormatInt(head.Size, 10))
			writeError(w, http.StatusRequestedRangeNotSatisfiable, "range_not_satisfiable",
				"zero-length suffix range")
			return
		}
		offset = head.Size - spec.suffix
		if offset < 0 {
			offset = 0
		}
		length = -1
	}
	rc, meta, err := e.GetRangeReader(r.Context(), container, key, offset, length)
	if err != nil {
		if errors.Is(err, ErrRangeNotSatisfiable) {
			if head, herr := e.Head(r.Context(), container, key); herr == nil {
				w.Header().Set("Content-Range", "bytes */"+strconv.FormatInt(head.Size, 10))
			}
		}
		failErr(w, err)
		return
	}
	defer rc.Close()
	// Mirror the reader's clamp against the meta it actually resolved.
	served := length
	if rest := meta.Size - offset; served < 0 || served > rest {
		served = rest
	}
	writeMetaHeaders(w, meta)
	if meta.MIME != "" {
		w.Header().Set("Content-Type", meta.MIME)
	}
	w.Header().Set("Content-Range",
		fmt.Sprintf("bytes %d-%d/%d", offset, offset+served-1, meta.Size))
	w.Header().Set("Content-Length", strconv.FormatInt(served, 10))
	w.WriteHeader(http.StatusPartialContent)
	io.Copy(w, rc) //nolint:errcheck
}

// serveMultiRange answers a multi-range GET with a multipart/byteranges
// body (RFC 9110 §14.6): one part per satisfiable requested range, in
// request order, each carrying its own Content-Range. All ranges are
// resolved against a single metadata snapshot so every Content-Range
// names the same complete-length. Unsatisfiable elements are dropped
// (§15.3.7 allows serving the satisfiable subset); a request with no
// satisfiable range at all is a 416. Ranges are served as requested —
// overlapping or out-of-order elements are not coalesced. The body
// streams stripe by stripe per part, so there is no Content-Length; a
// mid-stream failure truncates the multipart payload, which the client
// detects by the missing closing boundary.
func (g *Gateway) serveMultiRange(w http.ResponseWriter, r *http.Request, e *Engine, container, key string, specs []rangeSpec) {
	head, err := e.Head(r.Context(), container, key)
	if err != nil {
		failErr(w, err)
		return
	}
	type window struct{ offset, length int64 }
	windows := make([]window, 0, len(specs))
	for _, spec := range specs {
		offset, length := spec.start, spec.length
		if spec.suffix >= 0 {
			if spec.suffix == 0 {
				continue
			}
			offset = head.Size - spec.suffix
			if offset < 0 {
				offset = 0
			}
			length = -1
		}
		if offset >= head.Size {
			continue
		}
		if rest := head.Size - offset; length < 0 || length > rest {
			length = rest
		}
		windows = append(windows, window{offset, length})
	}
	if len(windows) == 0 {
		w.Header().Set("Content-Range", "bytes */"+strconv.FormatInt(head.Size, 10))
		writeError(w, http.StatusRequestedRangeNotSatisfiable, "range_not_satisfiable",
			"no satisfiable range")
		return
	}

	mw := multipart.NewWriter(w)
	writeMetaHeaders(w, head)
	w.Header().Set("Content-Type", "multipart/byteranges; boundary="+mw.Boundary())
	w.WriteHeader(http.StatusPartialContent)
	for _, win := range windows {
		rc, _, err := e.GetRangeReader(r.Context(), container, key, win.offset, win.length)
		if err != nil {
			// The 206 status line is already on the wire: all we can do
			// is stop, leaving the payload visibly truncated.
			return
		}
		ph := make(textproto.MIMEHeader)
		if head.MIME != "" {
			ph.Set("Content-Type", head.MIME)
		}
		ph.Set("Content-Range",
			fmt.Sprintf("bytes %d-%d/%d", win.offset, win.offset+win.length-1, head.Size))
		pw, err := mw.CreatePart(ph)
		if err != nil {
			rc.Close()
			return
		}
		_, err = io.Copy(pw, rc)
		rc.Close()
		if err != nil {
			return
		}
	}
	mw.Close() //nolint:errcheck
}

// ifRangeMatches evaluates an If-Range validator against the stored
// version. Only a strong entity-tag comparison can authorize the range
// (RFC 9110 §13.1.5): a weak ETag ("W/...") never matches, and an
// HTTP-date validator is treated as stale because the gateway does not
// serve Last-Modified. Anything but an exact current ETag falls back
// to the full 200 body.
func ifRangeMatches(header string, meta ObjectMeta) bool {
	if strings.HasPrefix(header, "W/") {
		return false
	}
	if strings.HasPrefix(header, `"`) {
		return header == meta.ETag()
	}
	return false
}

// etagMatches evaluates an If-None-Match header against the stored
// version: "*", the quoted ETag, or a comma-separated candidate list.
func etagMatches(header string, meta ObjectMeta) bool {
	if header == "*" {
		return true
	}
	for _, cand := range strings.Split(header, ",") {
		cand = strings.TrimSpace(cand)
		if cand == meta.ETag() || cand == meta.Checksum {
			return true
		}
	}
	return false
}

func (g *Gateway) deleteObject(w http.ResponseWriter, r *http.Request) {
	if id := r.URL.Query().Get("uploadId"); id != "" {
		if err := g.engine().AbortUpload(r.Context(), id); err != nil {
			failErr(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
		return
	}
	container, key := r.PathValue("container"), r.PathValue("key")
	if err := g.engine().DeleteIf(r.Context(), container, key, r.Header.Get("If-Match")); err != nil {
		failErr(w, err)
		return
	}
	g.broker.Metadata().Flush()
	w.WriteHeader(http.StatusNoContent)
}

// --- multipart routes ---

// postObject dispatches the two POST forms of the object path:
// ?uploads opens a multipart session, ?uploadId=… completes one.
func (g *Gateway) postObject(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	switch {
	case q.Has("uploads"):
		g.createUpload(w, r)
	case q.Get("uploadId") != "":
		g.completeUpload(w, r, q.Get("uploadId"))
	default:
		writeError(w, http.StatusBadRequest, "invalid_argument",
			"POST on an object needs ?uploads or ?uploadId=")
	}
}

func (g *Gateway) createUpload(w http.ResponseWriter, r *http.Request) {
	container, key := r.PathValue("container"), r.PathValue("key")
	opts, err := parsePutOptions(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid_argument", err.Error())
		return
	}
	var sizeHint int64
	if h := r.Header.Get("X-Scalia-Size-Hint"); h != "" {
		v, err := strconv.ParseInt(h, 10, 64)
		if err != nil || v < 0 {
			writeError(w, http.StatusBadRequest, "invalid_argument",
				"X-Scalia-Size-Hint must be a non-negative byte count")
			return
		}
		sizeHint = v
	}
	info, err := g.engine().CreateUpload(r.Context(), container, key, sizeHint, opts)
	if err != nil {
		failErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

func (g *Gateway) uploadPart(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	id := q.Get("uploadId")
	if id == "" || q.Get("partNumber") == "" {
		writeError(w, http.StatusBadRequest, "invalid_argument",
			"part uploads need both ?partNumber= and ?uploadId=")
		return
	}
	partNumber, err := strconv.Atoi(q.Get("partNumber"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid_argument", "partNumber must be an integer")
		return
	}
	size := r.ContentLength
	if size < 0 {
		writeError(w, http.StatusLengthRequired, "length_required",
			"part uploads need a declared Content-Length")
		return
	}
	if size > g.MaxObjectBytes {
		writeError(w, http.StatusRequestEntityTooLarge, "too_large",
			fmt.Sprintf("part exceeds %d bytes", g.MaxObjectBytes))
		return
	}
	part, err := g.engine().UploadPart(r.Context(), id, partNumber, r.Body, size)
	if err != nil {
		failErr(w, err)
		return
	}
	w.Header().Set("ETag", `"`+part.ETag+`"`)
	writeJSON(w, http.StatusOK, part)
}

// completeUploadRequest is the JSON body of POST …?uploadId=….
type completeUploadRequest struct {
	Parts []CompletedPart `json:"parts"`
}

func (g *Gateway) completeUpload(w http.ResponseWriter, r *http.Request, id string) {
	var req completeUploadRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid_argument", "malformed part list: "+err.Error())
		return
	}
	meta, err := g.engine().CompleteUpload(r.Context(), id, req.Parts)
	if err != nil {
		failErr(w, err)
		return
	}
	g.broker.Metadata().Flush()
	writeMetaHeaders(w, meta)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	json.NewEncoder(w).Encode(meta) //nolint:errcheck
}

// ListPartsResult is the GET …?uploadId=… response document.
type ListPartsResult struct {
	Upload UploadInfo `json:"upload"`
	Parts  []PartInfo `json:"parts"`
}

func (g *Gateway) listParts(w http.ResponseWriter, r *http.Request, id string) {
	info, parts, err := g.engine().ListParts(r.Context(), id)
	if err != nil {
		failErr(w, err)
		return
	}
	if parts == nil {
		parts = []PartInfo{}
	}
	writeJSON(w, http.StatusOK, ListPartsResult{Upload: info, Parts: parts})
}

// ListResult is the paginated response of GET /v1/objects/{container}.
type ListResult struct {
	Container string   `json:"container"`
	Keys      []string `json:"keys"`
	Truncated bool     `json:"truncated"`
	// Next is the cursor to pass as ?after= for the following page; set
	// only when Truncated.
	Next string `json:"next,omitempty"`
}

// defaultListLimit caps one list page when the client does not ask for
// a limit.
const defaultListLimit = 1000

func (g *Gateway) listObjects(w http.ResponseWriter, r *http.Request) {
	container := r.PathValue("container")
	q := r.URL.Query()
	limit := defaultListLimit
	if s := q.Get("limit"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 1 {
			writeError(w, http.StatusBadRequest, "invalid_argument", "limit must be a positive integer")
			return
		}
		if v < limit {
			limit = v
		}
	}
	prefix, after := q.Get("prefix"), q.Get("after")

	keys, err := g.engine().List(r.Context(), container)
	if err != nil {
		failErr(w, err)
		return
	}
	res := ListResult{Container: container, Keys: []string{}}
	for _, k := range keys { // keys are sorted; cursor = last key served
		if !strings.HasPrefix(k, prefix) || (after != "" && k <= after) {
			continue
		}
		if len(res.Keys) == limit {
			res.Truncated = true
			res.Next = res.Keys[len(res.Keys)-1]
			break
		}
		res.Keys = append(res.Keys, k)
	}
	writeJSON(w, http.StatusOK, res)
}

// --- admin routes ---

// ProviderStatus describes one market participant on GET /v1/providers.
type ProviderStatus struct {
	cloud.Spec
	Available bool  `json:"available"`
	UsedBytes int64 `json:"usedBytes"`
}

func (g *Gateway) listProviders(w http.ResponseWriter, r *http.Request) {
	stores := g.broker.Registry().Snapshot()
	out := make([]ProviderStatus, 0, len(stores))
	for _, s := range stores {
		out = append(out, ProviderStatus{
			Spec: s.Spec(), Available: s.Available(), UsedBytes: s.UsedBytes(),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func (g *Gateway) addProvider(w http.ResponseWriter, r *http.Request) {
	var spec cloud.Spec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "invalid_argument", "malformed provider spec: "+err.Error())
		return
	}
	if spec.Name == "" {
		writeError(w, http.StatusBadRequest, "invalid_argument", "provider name is required")
		return
	}
	// Replacing a live backend would orphan every chunk stored at it;
	// the wire surface only ever adds.
	if !g.broker.Registry().RegisterIfAbsent(cloud.NewBlobStore(spec)) {
		writeError(w, http.StatusConflict, "already_exists",
			"provider "+spec.Name+" is already registered")
		return
	}
	writeJSON(w, http.StatusCreated, spec)
}

func (g *Gateway) removeProvider(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if _, ok := g.broker.Registry().Deregister(name); !ok {
		writeError(w, http.StatusNotFound, "not_found", "unknown provider "+name)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// ProviderMutation is the unified response of both admin mutation
// routes (PUT /v1/providers/{name}/availability and .../pricing): the
// provider acted on, which field changed, its new value, and the market
// epoch the mutation advanced the registry to — so a caller can
// correlate the event with subsequent placement decisions and stats.
type ProviderMutation struct {
	Provider string `json:"provider"`
	// Epoch is the market epoch after the mutation; every cached
	// placement search from before it is now invalid.
	Epoch uint64 `json:"epoch"`
	// Field names the mutated attribute: "availability" or "pricing".
	Field     string         `json:"field"`
	Available *bool          `json:"available,omitempty"`
	Pricing   *cloud.Pricing `json:"pricing,omitempty"`
}

// setProviderAvailability is the scripted-chaos admin route: it injects
// or clears a transient outage on a provider that supports failure
// injection. The flip goes through the registry, so the market epoch
// bumps, cached placement searches are invalidated and the maintenance
// queue sees the event — exactly the semantics of flipping the backend
// in-process, but reachable from a load generator on the other side of
// the wire. Unknown providers are 404 unknown_provider; backends
// without failure injection (remote private resources) are 422
// unsupported_mutation.
func (g *Gateway) setProviderAvailability(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req struct {
		Available *bool `json:"available"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Available == nil {
		writeError(w, http.StatusBadRequest, "invalid_argument",
			`body must be {"available": true|false}`)
		return
	}
	epoch, err := g.broker.Registry().UpdateAvailability(name, *req.Available)
	if err != nil {
		failErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ProviderMutation{
		Provider: name, Epoch: epoch, Field: "availability", Available: req.Available,
	})
}

// setProviderPricing replaces a provider's price sheet at runtime — a
// scripted market price event (the paper's provider "suddenly
// increasing its pricing policy"). The registry bumps the market epoch
// so subsequent placements re-plan against the new prices and the
// maintenance queue re-plans the objects placed on the provider.
// Unknown providers are 404 unknown_provider; backends with immutable
// pricing are 422 unsupported_mutation.
func (g *Gateway) setProviderPricing(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req struct {
		Pricing *cloud.Pricing `json:"pricing"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Pricing == nil {
		writeError(w, http.StatusBadRequest, "invalid_argument",
			`body must be {"pricing": {...}}`)
		return
	}
	epoch, err := g.broker.Registry().UpdatePricing(name, *req.Pricing)
	if err != nil {
		failErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ProviderMutation{
		Provider: name, Epoch: epoch, Field: "pricing", Pricing: req.Pricing,
	})
}

func (g *Gateway) setRule(w http.ResponseWriter, r *http.Request) {
	container := r.PathValue("container")
	var rule core.Rule
	if err := json.NewDecoder(r.Body).Decode(&rule); err != nil {
		writeError(w, http.StatusBadRequest, "invalid_argument", "malformed rule: "+err.Error())
		return
	}
	if err := rule.Validate(); err != nil {
		failErr(w, err)
		return
	}
	g.broker.Rules().SetContainerRule(container, rule)
	w.WriteHeader(http.StatusNoContent)
}

// wantWait reports whether the maintenance dispatch should block:
// ?wait=true is the synchronous back-compat mode that holds the request
// open and returns the final report with a 200, exactly the pre-jobs
// contract.
func wantWait(r *http.Request) (bool, error) {
	s := r.URL.Query().Get("wait")
	if s == "" {
		return false, nil
	}
	v, err := strconv.ParseBool(s)
	if err != nil {
		return false, fmt.Errorf("%w: wait must be a boolean", ErrInvalidArgument)
	}
	return v, nil
}

// optimize dispatches an optimization round. Default: 202 Accepted with
// the job resource and a Location header pointing at /v1/jobs/{id};
// poll there for progress and the final report. ?wait=true blocks and
// answers 200 with the report.
func (g *Gateway) optimize(w http.ResponseWriter, r *http.Request) {
	wait, err := wantWait(r)
	if err != nil {
		failErr(w, err)
		return
	}
	if wait {
		rep, err := g.broker.Optimize(r.Context())
		if err != nil {
			failErr(w, err)
			return
		}
		g.broker.Metadata().Flush()
		writeJSON(w, http.StatusOK, rep)
		return
	}
	job := g.broker.StartOptimize()
	w.Header().Set("Location", "/v1/jobs/"+job.ID)
	writeJSON(w, http.StatusAccepted, job)
}

// repair dispatches a repair pass; the async/wait contract mirrors
// optimize's.
func (g *Gateway) repair(w http.ResponseWriter, r *http.Request) {
	policy := RepairWait
	switch r.URL.Query().Get("policy") {
	case "", "wait":
	case "active":
		policy = RepairActive
	default:
		writeError(w, http.StatusBadRequest, "invalid_argument", "policy must be wait or active")
		return
	}
	wait, err := wantWait(r)
	if err != nil {
		failErr(w, err)
		return
	}
	if wait {
		rep, err := g.broker.Repair(r.Context(), policy)
		if err != nil {
			failErr(w, err)
			return
		}
		g.broker.Metadata().Flush()
		writeJSON(w, http.StatusOK, rep)
		return
	}
	job := g.broker.StartRepair(policy)
	w.Header().Set("Location", "/v1/jobs/"+job.ID)
	writeJSON(w, http.StatusAccepted, job)
}

// getJob serves one job resource: state, live progress, and the final
// report once the pass finishes.
func (g *Gateway) getJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, ok := g.broker.Job(id)
	if !ok {
		writeError(w, http.StatusNotFound, "job_not_found", "unknown job "+id)
		return
	}
	writeJSON(w, http.StatusOK, job)
}

// listJobs pages through the job registry with the same
// prefix/limit/after shape as the object listing.
func (g *Gateway) listJobs(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	limit := defaultListLimit
	if s := q.Get("limit"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 1 {
			writeError(w, http.StatusBadRequest, "invalid_argument", "limit must be a positive integer")
			return
		}
		if v < limit {
			limit = v
		}
	}
	res := g.broker.Jobs(q.Get("prefix"), q.Get("after"), limit)
	if res.Jobs == nil {
		res.Jobs = []JobView{}
	}
	writeJSON(w, http.StatusOK, res)
}

// Stats is the operational counter snapshot served on GET /v1/stats.
type Stats struct {
	// Planner reports the shared placement planner's prepared-search
	// cache hits and misses (process lifetime).
	Planner core.PlannerStats `json:"planner"`
	// Optimizer accumulates the periodic optimization rounds.
	Optimizer OptimizeTotals `json:"optimizer"`
	// Repair accumulates the repair passes: how many objects were fixed
	// by a same-(m,n) chunk swap versus a full re-stripe, how many were
	// skipped, and the replacement chunks/bytes written.
	Repair RepairTotals `json:"repair"`
	// Usage and CostUSD aggregate billed resources across providers.
	Usage   cloud.Usage `json:"usage"`
	CostUSD float64     `json:"costUSD"`
	// StripeCache aggregates the stripe-granular read cache across all
	// datacenters: hits, misses, evictions and the current footprint.
	StripeCache cache.Stats `json:"stripeCache"`
	// ReadPath reports the streaming read path: stripes served from
	// cache vs fetched, prefetch pipeline deliveries, and parallel-fetch
	// fallbacks onto spare providers.
	ReadPath ReadPathStats `json:"readPath"`
	// WritePath reports the streaming write path: configured pipeline
	// depth, stripes fanned out, write buffers in flight against the
	// shared budget (current and peak), and open multipart uploads.
	WritePath WritePathStats `json:"writePath"`
	// Maint reports the event-driven reoptimization queue: depth, worker
	// pool size, and the enqueue/drain/drop counters.
	Maint MaintStats `json:"maint"`

	Engines        int `json:"engines"`
	Providers      int `json:"providers"`
	PendingDeletes int `json:"pendingDeletes"`
	// StripeBytes is the deployment's stripe size. Multipart callers
	// need it to build stripe-aligned non-final parts.
	StripeBytes int64 `json:"stripeBytes"`
}

func (g *Gateway) stats(w http.ResponseWriter, r *http.Request) {
	b := g.broker
	writeJSON(w, http.StatusOK, Stats{
		Planner:        b.Planner().Stats(),
		Optimizer:      b.OptimizeTotals(),
		Repair:         b.RepairTotals(),
		Usage:          b.Registry().TotalUsage(),
		CostUSD:        b.Registry().TotalCost(),
		StripeCache:    b.Caches().Stats(),
		ReadPath:       b.ReadStats(),
		WritePath:      b.WriteStats(),
		Maint:          b.MaintStats(),
		Engines:        len(b.Engines()),
		Providers:      b.Registry().Len(),
		PendingDeletes: b.PendingDeletes(),
		StripeBytes:    b.cfg.StripeBytes,
	})
}

// --- observability routes ---

// metricsHandler serves the broker registry in Prometheus text format.
func (g *Gateway) metricsHandler(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", obs.ContentType)
	g.broker.Metrics().WritePrometheus(w) //nolint:errcheck
}

// ProviderHealth is one provider's row on GET /v1/healthz: liveness,
// footprint and observed backend-call latency (merged across get, put
// and delete; zero until the provider has served a call).
type ProviderHealth struct {
	Name      string  `json:"name"`
	Available bool    `json:"available"`
	UsedBytes int64   `json:"usedBytes"`
	Calls     uint64  `json:"calls"`
	Errors    int64   `json:"errors"`
	P50Ms     float64 `json:"p50Ms"`
	P99Ms     float64 `json:"p99Ms"`
}

// Health is the GET /v1/healthz document.
type Health struct {
	// Status is "ok", or "degraded" when any provider is unreachable.
	Status         string           `json:"status"`
	GoVersion      string           `json:"goVersion"`
	UptimeSeconds  float64          `json:"uptimeSeconds"`
	Engines        int              `json:"engines"`
	PendingDeletes int              `json:"pendingDeletes"`
	Providers      []ProviderHealth `json:"providers"`
}

func (g *Gateway) healthz(w http.ResponseWriter, r *http.Request) {
	b := g.broker
	// Per-provider latency: merge that provider's get/put/delete series
	// out of the backend-call histogram family.
	byProvider := make(map[string]obs.HistogramSnapshot)
	errsByProvider := make(map[string]int64)
	for _, lh := range b.Metrics().Histograms(metricProviderOp) {
		p := lh.Labels["provider"]
		byProvider[p] = byProvider[p].Merge(lh.Snapshot)
	}
	for _, s := range b.registry.Snapshot() {
		name := s.Spec().Name
		errsByProvider[name] = b.metrics.providerErrs.With(name, "get").Value() +
			b.metrics.providerErrs.With(name, "put").Value() +
			b.metrics.providerErrs.With(name, "delete").Value()
	}

	h := Health{
		Status:         "ok",
		GoVersion:      runtime.Version(),
		UptimeSeconds:  time.Since(b.metrics.start).Seconds(),
		Engines:        len(b.Engines()),
		PendingDeletes: b.PendingDeletes(),
		Providers:      []ProviderHealth{},
	}
	for _, s := range b.registry.Snapshot() {
		name := s.Spec().Name
		ph := ProviderHealth{
			Name:      name,
			Available: s.Available(),
			UsedBytes: s.UsedBytes(),
			Errors:    errsByProvider[name],
		}
		if snap, ok := byProvider[name]; ok && snap.Count > 0 {
			ph.Calls = snap.Count
			// Quantile is NaN only on empty snapshots, which Count>0
			// excludes — and NaN must never reach encoding/json.
			ph.P50Ms = snap.Quantile(0.5) * 1000
			ph.P99Ms = snap.Quantile(0.99) * 1000
		}
		if !ph.Available {
			h.Status = "degraded"
		}
		h.Providers = append(h.Providers, ph)
	}
	// Degraded still answers 200: the deployment serves reads through
	// erasure redundancy while providers are down, and a load balancer
	// pulling the gateway for that would kill the one path that works.
	// Probes read the status field.
	writeJSON(w, http.StatusOK, h)
}

// --- helpers ---

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //nolint:errcheck
}

func writeMetaHeaders(w http.ResponseWriter, meta ObjectMeta) {
	w.Header().Set("ETag", meta.ETag())
	w.Header().Set("X-Scalia-M", strconv.Itoa(meta.M))
	w.Header().Set("X-Scalia-Providers", strings.Join(meta.Chunks, ","))
	w.Header().Set("X-Scalia-Size", strconv.FormatInt(meta.Size, 10))
	w.Header().Set("X-Scalia-Stripes", strconv.Itoa(meta.StripeCount()))
}
