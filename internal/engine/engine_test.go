package engine

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"scalia/internal/cloud"
	"scalia/internal/core"
	"scalia/internal/stats"
)

var ctx = context.Background()

// blob fetches a simulated provider for failure injection and
// inspection in tests.
func blob(t *testing.T, b *Broker, name string) *cloud.BlobStore {
	t.Helper()
	s, ok := b.Registry().Store(name)
	if !ok {
		t.Fatalf("unknown provider %q", name)
	}
	return s.(*cloud.BlobStore)
}

func newTestBroker(t *testing.T, cfg Config) *Broker {
	t.Helper()
	b := NewBroker(cfg)
	t.Cleanup(b.Close)
	return b
}

func TestPutGetRoundTrip(t *testing.T) {
	b := newTestBroker(t, Config{})
	e := b.Engine(0)
	payload := bytes.Repeat([]byte("scalia"), 1000)
	meta, err := e.Put(ctx, "pics", "vacation.gif", payload, PutOptions{MIME: "image/gif"})
	if err != nil {
		t.Fatal(err)
	}
	if meta.M < 1 || len(meta.Chunks) < meta.M {
		t.Fatalf("bad placement meta: %+v", meta)
	}
	got, gotMeta, err := e.Get(ctx, "pics", "vacation.gif")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload mismatch")
	}
	if gotMeta.Checksum != meta.Checksum {
		t.Fatal("checksum mismatch")
	}
}

func TestGetMissing(t *testing.T) {
	b := newTestBroker(t, Config{})
	if _, _, err := b.Engine(0).Get(ctx, "c", "nope"); !errors.Is(err, ErrObjectNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestPutValidation(t *testing.T) {
	b := newTestBroker(t, Config{})
	if _, err := b.Engine(0).Put(ctx, "", "k", nil, PutOptions{}); err == nil {
		t.Fatal("empty container must fail")
	}
	if _, err := b.Engine(0).Put(ctx, "c", "", nil, PutOptions{}); err == nil {
		t.Fatal("empty key must fail")
	}
}

func TestChunksLandOnDistinctProviders(t *testing.T) {
	b := newTestBroker(t, Config{})
	meta, err := b.Engine(0).Put(ctx, "c", "k", make([]byte, 4096), PutOptions{})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, name := range meta.Chunks {
		if seen[name] {
			t.Fatalf("provider %s holds two chunks", name)
		}
		seen[name] = true
		store := blob(t, b, name)
		if store.ObjectCount() == 0 {
			t.Fatalf("provider %s holds no data", name)
		}
	}
}

func TestUpdateReplacesChunks(t *testing.T) {
	b := newTestBroker(t, Config{})
	e := b.Engine(0)
	m1, err := e.Put(ctx, "c", "k", []byte("version-one"), PutOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := e.Put(ctx, "c", "k", []byte("version-two"), PutOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m1.SKey == m2.SKey {
		t.Fatal("update must write under a fresh skey")
	}
	// Old chunks must be gone.
	for i, name := range m1.Chunks {
		store, _ := b.Registry().Store(name)
		if _, err := store.Get(ctx, ChunkKey(m1.SKey, i)); err == nil {
			t.Fatalf("stale chunk %d at %s survived the update", i, name)
		}
	}
	got, _, err := e.Get(ctx, "c", "k")
	if err != nil || string(got) != "version-two" {
		t.Fatalf("Get = %q, %v", got, err)
	}
}

func TestDeleteRemovesEverything(t *testing.T) {
	b := newTestBroker(t, Config{})
	e := b.Engine(0)
	meta, _ := e.Put(ctx, "c", "k", []byte("payload"), PutOptions{})
	if err := e.Delete(ctx, "c", "k"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Get(ctx, "c", "k"); !errors.Is(err, ErrObjectNotFound) {
		t.Fatalf("Get after delete: %v", err)
	}
	for i, name := range meta.Chunks {
		store, _ := b.Registry().Store(name)
		if _, err := store.Get(ctx, ChunkKey(meta.SKey, i)); err == nil {
			t.Fatalf("chunk %d at %s survived deletion", i, name)
		}
	}
	keys, _ := e.List(ctx, "c")
	if len(keys) != 0 {
		t.Fatalf("List after delete = %v", keys)
	}
	if err := e.Delete(ctx, "c", "k"); !errors.Is(err, ErrObjectNotFound) {
		t.Fatalf("double delete: %v", err)
	}
}

func TestListContainer(t *testing.T) {
	b := newTestBroker(t, Config{})
	e := b.Engine(0)
	e.Put(ctx, "c", "b-key", []byte("1"), PutOptions{})
	e.Put(ctx, "c", "a-key", []byte("2"), PutOptions{})
	e.Put(ctx, "other", "x", []byte("3"), PutOptions{})
	keys, err := e.List(ctx, "c")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 || keys[0] != "a-key" || keys[1] != "b-key" {
		t.Fatalf("List = %v", keys)
	}
}

func TestCacheServesSecondRead(t *testing.T) {
	b := newTestBroker(t, Config{CacheBytes: 1 << 20})
	e := b.Engine(0)
	payload := make([]byte, 10000)
	e.Put(ctx, "c", "k", payload, PutOptions{})

	if _, _, err := e.Get(ctx, "c", "k"); err != nil {
		t.Fatal(err)
	}
	before := b.Registry().TotalUsage().Ops
	if _, _, err := e.Get(ctx, "c", "k"); err != nil {
		t.Fatal(err)
	}
	after := b.Registry().TotalUsage().Ops
	if after != before {
		t.Fatalf("cached read hit providers: ops %d -> %d", before, after)
	}
}

func TestCacheInvalidatedOnUpdate(t *testing.T) {
	b := newTestBroker(t, Config{CacheBytes: 1 << 20})
	e := b.Engine(0)
	e.Put(ctx, "c", "k", []byte("old"), PutOptions{})
	e.Get(ctx, "c", "k") // fill cache
	e.Put(ctx, "c", "k", []byte("new"), PutOptions{})
	got, _, err := e.Get(ctx, "c", "k")
	if err != nil || string(got) != "new" {
		t.Fatalf("Get = %q, %v", got, err)
	}
}

func TestReadSurvivesProviderOutage(t *testing.T) {
	b := newTestBroker(t, Config{})
	e := b.Engine(0)
	meta, err := e.Put(ctx, "c", "k", make([]byte, 50000), PutOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(meta.Chunks) <= meta.M {
		t.Skipf("placement %v has no failure slack", meta.Chunks)
	}
	blob(t, b, meta.Chunks[0]).SetAvailable(false)
	got, _, err := e.Get(ctx, "c", "k")
	if err != nil {
		t.Fatalf("read during outage: %v", err)
	}
	if len(got) != 50000 {
		t.Fatal("payload mismatch")
	}
}

func TestReadFailsWhenTooManyProvidersDown(t *testing.T) {
	b := newTestBroker(t, Config{})
	e := b.Engine(0)
	meta, _ := e.Put(ctx, "c", "k", make([]byte, 1000), PutOptions{})
	downed := 0
	for _, name := range meta.Chunks {
		blob(t, b, name).SetAvailable(false)
		downed++
		if downed > len(meta.Chunks)-meta.M {
			break
		}
	}
	if _, _, err := e.Get(ctx, "c", "k"); !errors.Is(err, ErrNotEnoughChunks) {
		t.Fatalf("err = %v, want ErrNotEnoughChunks", err)
	}
}

func TestWriteExcludesFaultyProvider(t *testing.T) {
	b := newTestBroker(t, Config{})
	blob(t, b, cloud.NameS3Low).SetAvailable(false)
	meta, err := b.Engine(0).Put(ctx, "c", "k", make([]byte, 1000), PutOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range meta.Chunks {
		if name == cloud.NameS3Low {
			t.Fatal("faulty provider received a chunk")
		}
	}
}

func TestDeletepostponedAtFaultyProvider(t *testing.T) {
	b := newTestBroker(t, Config{})
	e := b.Engine(0)
	meta, _ := e.Put(ctx, "c", "k", make([]byte, 1000), PutOptions{})
	victim := meta.Chunks[0]
	vs := blob(t, b, victim)
	vs.SetAvailable(false)
	if err := e.Delete(ctx, "c", "k"); err != nil {
		t.Fatal(err)
	}
	if b.PendingDeletes() == 0 {
		t.Fatal("expected a postponed delete")
	}
	vs.SetAvailable(true)
	if done := b.ProcessPendingDeletes(ctx); done == 0 {
		t.Fatal("pending delete must complete after recovery")
	}
	if _, err := vs.Get(ctx, ChunkKey(meta.SKey, 0)); err == nil {
		t.Fatal("chunk must be gone after postponed delete")
	}
}

func TestMultiDatacenterReadAfterReplication(t *testing.T) {
	b := newTestBroker(t, Config{Datacenters: []string{"dc1", "dc2"}, EnginesPerDC: 1})
	e1, e2 := b.Engine(0), b.Engine(1)
	if e1.Datacenter() == e2.Datacenter() {
		t.Fatal("engines must live in different DCs")
	}
	e1.Put(ctx, "c", "k", []byte("cross-dc"), PutOptions{})
	b.FlushStats() // drains replication
	got, _, err := e2.Get(ctx, "c", "k")
	if err != nil || string(got) != "cross-dc" {
		t.Fatalf("cross-DC read = %q, %v", got, err)
	}
}

func TestConcurrentUpdateConflictResolution(t *testing.T) {
	// Fig. 10: concurrent updates in two DCs; the freshest wins and the
	// loser's chunks are garbage-collected on the next read.
	b := newTestBroker(t, Config{Datacenters: []string{"dc1", "dc2"}, EnginesPerDC: 1})
	e1, e2 := b.Engine(0), b.Engine(1)
	e1.Put(ctx, "c", "k", []byte("from-dc1"), PutOptions{})
	m2, _ := e2.Put(ctx, "c", "k", []byte("from-dc2"), PutOptions{})
	b.FlushStats()

	got, _, err := e1.Get(ctx, "c", "k")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "from-dc2" {
		t.Fatalf("winner = %q, want the freshest write", got)
	}
	_ = m2
}

func TestHeadDoesNotTouchProviders(t *testing.T) {
	b := newTestBroker(t, Config{})
	e := b.Engine(0)
	e.Put(ctx, "c", "k", make([]byte, 1000), PutOptions{})
	before := b.Registry().TotalUsage().Ops
	meta, err := e.Head(ctx, "c", "k")
	if err != nil {
		t.Fatal(err)
	}
	if meta.Size != 1000 {
		t.Fatalf("Size = %d", meta.Size)
	}
	if b.Registry().TotalUsage().Ops != before {
		t.Fatal("Head must not touch providers")
	}
}

func TestVerifyObject(t *testing.T) {
	b := newTestBroker(t, Config{})
	e := b.Engine(0)
	meta, _ := e.Put(ctx, "c", "k", make([]byte, 5000), PutOptions{})
	reachable, err := e.VerifyObject(ctx, "c", "k")
	if err != nil {
		t.Fatal(err)
	}
	if reachable != len(meta.Chunks) {
		t.Fatalf("reachable = %d, want %d", reachable, len(meta.Chunks))
	}
}

func TestRuleResolutionPrecedence(t *testing.T) {
	b := newTestBroker(t, Config{})
	rs := b.Rules()
	contRule := core.Rule{Name: "container", Durability: 0.9999, Availability: 0.999, LockIn: 1}
	objRule := core.Rule{Name: "object", Durability: 0.99999, Availability: 0.9999, LockIn: 0.5}
	rs.SetContainerRule("c", contRule)
	rs.SetObjectRule("c", "special", objRule)
	if got := rs.Resolve("c", "plain", "cls"); got.Name != "container" {
		t.Fatalf("container rule not applied: %v", got.Name)
	}
	if got := rs.Resolve("c", "special", "cls"); got.Name != "object" {
		t.Fatalf("object rule not applied: %v", got.Name)
	}
	if got := rs.Resolve("other", "k", "cls"); got.Name != "default" {
		t.Fatalf("default rule not applied: %v", got.Name)
	}
}

func TestClassRuleApplies(t *testing.T) {
	b := newTestBroker(t, Config{})
	class := stats.ClassKey("video/mp4", 1000)
	b.Rules().SetClassRule(class, core.Rule{Name: "video", Durability: 0.9999, Availability: 0.999, LockIn: 1})
	if got := b.Rules().Resolve("c", "k", class); got.Name != "video" {
		t.Fatalf("class rule not applied: %v", got.Name)
	}
}

// TestConditionalWritesAreAtomic races conditional operations on one
// key: exactly one create-only write may win, and exactly one If-Match
// update against a given ETag may win. The row lock serializes the
// check-and-commit step, so the losers fail with ErrPreconditionFailed
// instead of silently clobbering the winner.
func TestConditionalWritesAreAtomic(t *testing.T) {
	b := newTestBroker(t, Config{})
	e := b.Engine(0)

	const racers = 8
	var wg sync.WaitGroup
	var created atomic.Int32
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := e.Put(ctx, "c", "once", []byte(fmt.Sprintf("writer-%d", i)),
				PutOptions{IfAbsent: true})
			switch {
			case err == nil:
				created.Add(1)
			case errors.Is(err, ErrPreconditionFailed):
			default:
				t.Errorf("unexpected error: %v", err)
			}
		}(i)
	}
	wg.Wait()
	if got := created.Load(); got != 1 {
		t.Fatalf("create-only writes succeeded %d times, want exactly 1", got)
	}

	meta, err := e.Head(ctx, "c", "once")
	if err != nil {
		t.Fatal(err)
	}
	var updated atomic.Int32
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := e.Put(ctx, "c", "once", []byte(fmt.Sprintf("update-%d", i)),
				PutOptions{IfMatch: meta.ETag()})
			switch {
			case err == nil:
				updated.Add(1)
			case errors.Is(err, ErrPreconditionFailed):
			default:
				t.Errorf("unexpected error: %v", err)
			}
		}(i)
	}
	wg.Wait()
	if got := updated.Load(); got != 1 {
		t.Fatalf("If-Match updates succeeded %d times, want exactly 1", got)
	}
	// No loser may have leaked chunks: the sole live version accounts
	// for every stored chunk.
	after, err := e.Head(ctx, "c", "once")
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range b.Registry().Snapshot() {
		if bs, ok := s.(*cloud.BlobStore); ok {
			total += bs.ObjectCount()
		}
	}
	if want := len(after.Chunks) * after.StripeCount(); total != want {
		t.Fatalf("provider chunk count = %d, want %d (orphans from losing writers?)", total, want)
	}
}

// --- Optimization ---

func TestOptimizeMigratesOnFlashCrowd(t *testing.T) {
	clock := NewSimClock()
	b := newTestBroker(t, Config{Clock: clock, DecisionPeriod: 24})
	e := b.Engine(0)
	payload := make([]byte, 1<<20) // 1 MB, as in §IV-B
	rule := core.Rule{Name: "slashdot", Durability: 0.99999, Availability: 0.9999, LockIn: 1}
	meta, err := e.Put(ctx, "web", "page", payload, PutOptions{Rule: &rule})
	if err != nil {
		t.Fatal(err)
	}
	before, _ := b.CurrentPlacement("web/page")
	_ = meta

	// Two quiet days, then the flash crowd.
	for h := 0; h < 48; h++ {
		clock.Advance(1)
	}
	for h := 0; h < 6; h++ {
		clock.Advance(1)
		for r := 0; r < 150; r++ {
			if _, _, err := e.Get(ctx, "web", "page"); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := b.Optimize(ctx); err != nil {
			t.Fatal(err)
		}
	}
	after, ok := b.CurrentPlacement("web/page")
	if !ok {
		t.Fatal("placement lost")
	}
	if after.Equal(before) {
		t.Fatalf("hot object not migrated: still %v", after)
	}
	if after.M != 1 {
		t.Fatalf("hot placement %v, want m:1 (read-optimized)", after)
	}
	// Data must survive the migration.
	got, _, err := e.Get(ctx, "web", "page")
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("data lost in migration: %v", err)
	}
}

func TestOptimizeSkipsQuietObjects(t *testing.T) {
	clock := NewSimClock()
	b := newTestBroker(t, Config{Clock: clock})
	e := b.Engine(0)
	for i := 0; i < 10; i++ {
		e.Put(ctx, "c", fmt.Sprintf("k%d", i), make([]byte, 100), PutOptions{})
	}
	// Settle: histories exist, no further access.
	clock.Advance(10)
	if _, err := b.Optimize(ctx); err != nil {
		t.Fatal(err)
	}
	clock.Advance(10)
	rep, err := b.Optimize(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Scanned != 0 {
		t.Fatalf("quiet objects scanned: %+v", rep)
	}
}

func TestOptimizeLeaderElection(t *testing.T) {
	b := newTestBroker(t, Config{EnginesPerDC: 2})
	rep, err := b.Optimize(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Leader != "engine0" {
		t.Fatalf("leader = %s, want engine0", rep.Leader)
	}
	b.Engines()[0].SetAlive(false)
	rep, err = b.Optimize(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Leader != "engine1" {
		t.Fatalf("leader after failure = %s, want engine1", rep.Leader)
	}
	for _, e := range b.Engines() {
		e.SetAlive(false)
	}
	if _, err := b.Optimize(ctx); !errors.Is(err, ErrNoLeader) {
		t.Fatalf("err = %v, want ErrNoLeader", err)
	}
}

func TestOptimizeFullScanTouchesEverything(t *testing.T) {
	clock := NewSimClock()
	b := newTestBroker(t, Config{Clock: clock})
	e := b.Engine(0)
	for i := 0; i < 5; i++ {
		e.Put(ctx, "c", fmt.Sprintf("k%d", i), make([]byte, 100), PutOptions{})
	}
	b.FlushStats()
	rep, err := b.OptimizeFullScan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Recomputed != 5 {
		t.Fatalf("full scan recomputed %d, want 5", rep.Recomputed)
	}
}

func TestRepairActiveMovesChunks(t *testing.T) {
	clock := NewSimClock()
	b := newTestBroker(t, Config{Clock: clock})
	e := b.Engine(0)
	rule := core.Rule{Name: "backup", Durability: 0.9999999, Availability: 0.99, LockIn: 0.5}
	payload := make([]byte, 40<<10)
	if _, err := e.Put(ctx, "bk", "obj", payload, PutOptions{Rule: &rule}); err != nil {
		t.Fatal(err)
	}
	meta, _ := e.Head(ctx, "bk", "obj")
	victim := meta.Chunks[0]
	vs := blob(t, b, victim)
	vs.SetAvailable(false)

	rep, err := b.Repair(ctx, RepairActive)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Affected != 1 || rep.Repaired != 1 {
		t.Fatalf("repair report = %+v", rep)
	}
	newMeta, _ := e.Head(ctx, "bk", "obj")
	for _, name := range newMeta.Chunks {
		if name == victim {
			t.Fatal("repaired object still references the down provider")
		}
	}
	got, _, err := e.Get(ctx, "bk", "obj")
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("data lost in repair: %v", err)
	}
}

func TestRepairWaitLeavesChunks(t *testing.T) {
	b := newTestBroker(t, Config{})
	e := b.Engine(0)
	e.Put(ctx, "c", "k", make([]byte, 1000), PutOptions{})
	meta, _ := e.Head(ctx, "c", "k")
	blob(t, b, meta.Chunks[0]).SetAvailable(false)
	rep, err := b.Repair(ctx, RepairWait)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Affected != 1 || rep.Waited != 1 || rep.Repaired != 0 {
		t.Fatalf("repair report = %+v", rep)
	}
	after, _ := e.Head(ctx, "c", "k")
	if after.SKey != meta.SKey {
		t.Fatal("wait policy must not rewrite the object")
	}
}

func TestProviderArrivalTriggersCheaperPlacement(t *testing.T) {
	// §IV-D: CheapStor arrives and the optimizer migrates to include it.
	clock := NewSimClock()
	// A long migration horizon lets slow-payback storage savings justify
	// the chunk move, as the paper's §IV-D scenario does.
	b := newTestBroker(t, Config{Clock: clock, DecisionPeriod: 4, MigrationHorizon: 5000})
	e := b.Engine(0)
	rule := core.Rule{Name: "lockin", Durability: 0.99999, Availability: 0.99, LockIn: 0.2}
	payload := make([]byte, 40<<20) // 40 MB backup object
	if _, err := e.Put(ctx, "bk", "o", payload, PutOptions{Rule: &rule}); err != nil {
		t.Fatal(err)
	}
	before, _ := b.CurrentPlacement("bk/o")
	if before.Has(cloud.NameCheapStor) {
		t.Fatal("CheapStor not registered yet")
	}
	b.Registry().Register(cloud.NewBlobStore(cloud.CheapStorProvider()))
	// Keep the object minimally warm so it appears in the accessed set.
	clock.Advance(1)
	e.Get(ctx, "bk", "o")
	clock.Advance(1)
	e.Get(ctx, "bk", "o")
	for i := 0; i < 6; i++ {
		clock.Advance(1)
		if _, err := b.Optimize(ctx); err != nil {
			t.Fatal(err)
		}
	}
	after, _ := b.CurrentPlacement("bk/o")
	if !after.Has(cloud.NameCheapStor) {
		t.Fatalf("placement %v ignores the cheaper provider", after)
	}
}

// TestOptimizeReportsPlannerEffectiveness asserts the satellite
// requirement that OptimizeReport surfaces the shared planner's cache
// counters and the sets-evaluated ablation metric.
func TestOptimizeReportsPlannerEffectiveness(t *testing.T) {
	clock := NewSimClock()
	b := newTestBroker(t, Config{Clock: clock})
	e := b.Engine(0)
	const objects = 8
	for i := 0; i < objects; i++ {
		if _, err := e.Put(ctx, "c", fmt.Sprintf("k%d", i), make([]byte, 2048), PutOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	// Quiet periods, then a read burst: the SMA momentum gate fires for
	// every object, forcing a placement recomputation per object.
	clock.Advance(4)
	for i := 0; i < objects; i++ {
		for r := 0; r < 40; r++ {
			if _, _, err := e.Get(ctx, "c", fmt.Sprintf("k%d", i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	rep, err := b.Optimize(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Recomputed != objects {
		t.Fatalf("recomputed = %d, want %d", rep.Recomputed, objects)
	}
	// Every recomputation must have planned through the shared planner:
	// the market did not change since the Puts prepared the search, so
	// the round is all hits and zero misses.
	if rep.PlannerMisses != 0 {
		t.Fatalf("stable market must not rebuild searches: %+v", rep)
	}
	if rep.PlannerHits == 0 {
		t.Fatalf("optimization did not use the planner: %+v", rep)
	}
	// The paper market has 26 feasible sets per search (Fig. 13); every
	// recomputed object examines at least those.
	if rep.Evaluated < 26*rep.Recomputed {
		t.Fatalf("evaluated = %d, want >= %d", rep.Evaluated, 26*rep.Recomputed)
	}

	// A market event invalidates: the next round must rebuild (miss).
	b.Registry().Register(cloud.NewBlobStore(cloud.CheapStorProvider()))
	clock.Advance(4)
	for i := 0; i < objects; i++ {
		for r := 0; r < 40; r++ {
			if _, _, err := e.Get(ctx, "c", fmt.Sprintf("k%d", i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	rep2, err := b.Optimize(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Recomputed == 0 {
		t.Fatalf("burst after the arrival did not recompute: %+v", rep2)
	}
	if rep2.PlannerMisses == 0 {
		t.Fatalf("market change must force a planner rebuild: %+v", rep2)
	}
}

// TestRepairShardsAcrossEngines exercises the parallel repair fan-out:
// with several engines alive and many affected objects, every shard
// must run and the union must repair everything.
func TestRepairShardsAcrossEngines(t *testing.T) {
	b := newTestBroker(t, Config{EnginesPerDC: 2})
	e := b.Engine(0)
	rule := core.Rule{Name: "backup", Durability: 0.9999999, Availability: 0.99, LockIn: 0.5}
	const objects = 12
	for i := 0; i < objects; i++ {
		if _, err := e.Put(ctx, "bk", fmt.Sprintf("o%d", i), make([]byte, 8192), PutOptions{Rule: &rule}); err != nil {
			t.Fatal(err)
		}
	}
	// Down one provider that holds chunks of every object (lock-in 0.5
	// with the 5-provider market stripes wide, so any provider works).
	meta, err := e.Head(ctx, "bk", "o0")
	if err != nil {
		t.Fatal(err)
	}
	victim := meta.Chunks[0]
	if !b.Registry().SetAvailable(victim, false) {
		t.Fatal("failed to down the victim provider")
	}
	rep, err := b.Repair(ctx, RepairActive)
	if err != nil {
		t.Fatal(err)
	}
	// Shards in other datacenters wrote migrated metadata to their own
	// nodes; drain replication before reading through engine 0.
	b.FlushStats()
	if rep.Checked != objects {
		t.Fatalf("checked = %d, want %d", rep.Checked, objects)
	}
	if rep.Repaired != rep.Affected || rep.Affected == 0 {
		t.Fatalf("repair report = %+v", rep)
	}
	// Every object must be readable and off the victim.
	for i := 0; i < objects; i++ {
		key := fmt.Sprintf("o%d", i)
		m, err := e.Head(ctx, "bk", key)
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range m.Chunks {
			if name == victim {
				t.Fatalf("%s still references the down provider", key)
			}
		}
		if _, _, err := e.Get(ctx, "bk", key); err != nil {
			t.Fatalf("read after repair: %v", err)
		}
	}
}
