// Package trend implements Scalia's access-pattern change detection
// (paper §III-A3): a momentum indicator on a simple moving average of
// per-period operation counts. Only objects whose trend changed by more
// than a threshold limit get their placement recomputed, which is what
// keeps the periodic optimization cheap (Figs. 8 and 9).
package trend

import "math"

// DefaultWindow is the statistics window w = 3 sampling periods.
const DefaultWindow = 3

// DefaultLimit is the experimentally adequate 10% momentum threshold.
const DefaultLimit = 0.1

// Detector detects trend changes in a univariate series using momentum:
// the relative change of the simple moving average between consecutive
// observations. It is a small value type; use one detector per object.
//
// High window values detect trend changes on long time scales, small
// values detect frequent changes (paper §III-A3).
type Detector struct {
	window int
	limit  float64

	buf   []float64 // ring buffer of the last `window` values
	next  int
	count int

	prevSMA float64
	primed  bool
}

// NewDetector returns a detector with the given SMA window and relative
// momentum limit. Non-positive arguments select the paper defaults
// (w = 3, limit = 0.1).
func NewDetector(window int, limit float64) *Detector {
	if window <= 0 {
		window = DefaultWindow
	}
	if limit <= 0 {
		limit = DefaultLimit
	}
	return &Detector{window: window, limit: limit, buf: make([]float64, window)}
}

// Window returns the SMA window size.
func (d *Detector) Window() int { return d.window }

// Limit returns the current momentum limit.
func (d *Detector) Limit() float64 { return d.limit }

// SetLimit updates the momentum limit; the engine adjusts it dynamically
// to the minimum momentum per object class that would change the best
// provider set.
func (d *Detector) SetLimit(limit float64) {
	if limit > 0 {
		d.limit = limit
	}
}

// SMA returns the current simple moving average (over up to window
// observations).
func (d *Detector) SMA() float64 {
	if d.count == 0 {
		return 0
	}
	n := d.count
	if n > d.window {
		n = d.window
	}
	var sum float64
	for i := 0; i < n; i++ {
		sum += d.buf[i]
	}
	return sum / float64(n)
}

// Observe feeds the next per-period value (typically the object's
// operation count) and reports whether a trend change was detected at
// this observation.
func (d *Detector) Observe(v float64) bool {
	d.buf[d.next] = v
	d.next = (d.next + 1) % d.window
	d.count++

	sma := d.SMA()
	if !d.primed {
		// The first SMA only establishes the baseline; detection begins
		// once the window has filled.
		if d.count >= d.window {
			d.primed = true
			d.prevSMA = sma
		}
		return false
	}
	changed := Momentum(d.prevSMA, sma) > d.limit
	d.prevSMA = sma
	return changed
}

// Momentum returns the relative momentum between two consecutive SMA
// values: |cur - prev| normalized by the previous level. A previous
// level below 1 op/period is clamped to 1 so that a series waking up
// from silence registers as |cur| rather than dividing by zero.
func Momentum(prev, cur float64) float64 {
	base := math.Abs(prev)
	if base < 1 {
		base = 1
	}
	return math.Abs(cur-prev) / base
}

// Detect runs a fresh detector over a whole series and returns the
// indexes at which a trend change fires — the marker series of Figs. 8
// and 9.
func Detect(series []float64, window int, limit float64) []int {
	d := NewDetector(window, limit)
	var changes []int
	for i, v := range series {
		if d.Observe(v) {
			changes = append(changes, i)
		}
	}
	return changes
}

// MinimumMomentum searches for the smallest relative load change that
// flips a placement decision, which is how the engine derives a per-class
// dynamic limit. flips(scale) must report whether multiplying the
// object's load by (1+scale) changes the best provider set; the search
// assumes monotonicity and runs a bisection over (lo, hi].
func MinimumMomentum(flips func(scale float64) bool, lo, hi float64, iters int) (float64, bool) {
	if hi <= lo || !flips(hi) {
		return 0, false
	}
	for i := 0; i < iters; i++ {
		mid := (lo + hi) / 2
		if flips(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, true
}
