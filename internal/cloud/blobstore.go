package cloud

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Store is the minimal key-value blob interface every Scalia backend
// implements: simulated public providers, private storage resources, and
// the HTTP client for remote private stores. Every operation takes a
// context: cancelling it aborts the call (remote backends abort the HTTP
// request; the simulated store fails fast), which is how the engine's
// chunk fan-out is cancelled mid-flight.
type Store interface {
	Put(ctx context.Context, key string, data []byte) error
	Get(ctx context.Context, key string) ([]byte, error)
	Delete(ctx context.Context, key string) error
	List(ctx context.Context, prefix string) ([]string, error)
}

// Errors returned by blob stores.
var (
	ErrUnavailable  = errors.New("cloud: provider unavailable")
	ErrNotFound     = errors.New("cloud: object not found")
	ErrTooLarge     = errors.New("cloud: object exceeds provider chunk-size limit")
	ErrOverCapacity = errors.New("cloud: provider capacity exhausted")
)

// BlobStore is an in-memory simulated storage provider. All operations
// are metered; transient failures can be injected with SetAvailable,
// matching the §IV-E active-repair experiment.
type BlobStore struct {
	mu sync.RWMutex
	// spec is guarded by mu: the price sheet can change at runtime
	// (SetPricing market events); everything else is fixed at creation.
	spec    Spec
	objects map[string][]byte
	used    int64
	down    bool
	// notify is the registry back-reference installed at Register time:
	// it is called (outside the store lock) whenever availability
	// changes, so failure injected directly on the backend — bypassing
	// Registry.SetAvailable — still bumps the market epoch and
	// invalidates cached placement searches.
	notify func()

	meter Meter
}

// NewBlobStore creates an empty simulated provider with the given spec.
func NewBlobStore(spec Spec) *BlobStore {
	return &BlobStore{spec: spec, objects: make(map[string][]byte)}
}

// Spec returns the provider's description and price sheet.
func (s *BlobStore) Spec() Spec {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.spec
}

// SetPricing replaces the provider's price sheet at runtime — the
// paper's market price event (§IV-D, a provider "suddenly increasing
// its pricing policy"). When the store is attached to a registry, the
// change is pushed back so the market epoch advances and cached
// placement searches re-plan against the new prices.
func (s *BlobStore) SetPricing(p Pricing) {
	s.mu.Lock()
	changed := s.spec.Pricing != p
	s.spec.Pricing = p
	notify := s.notify
	s.mu.Unlock()
	if changed && notify != nil {
		notify()
	}
}

// Meter returns the provider's billing meter.
func (s *BlobStore) Meter() *Meter { return &s.meter }

// SetAvailable injects or clears a transient outage. While down, every
// operation fails with ErrUnavailable but stored data is retained (the
// paper's transient failures recover with data intact). When the store
// is attached to a registry, the availability flip is pushed back so
// the market epoch advances even though the registry was bypassed.
func (s *BlobStore) SetAvailable(up bool) {
	s.mu.Lock()
	changed := s.down == up
	s.down = !up
	notify := s.notify
	s.mu.Unlock()
	if changed && notify != nil {
		notify()
	}
}

// SetChangeNotifier installs (or clears, with nil) the registry
// back-reference; Registry.Register calls it.
func (s *BlobStore) SetChangeNotifier(fn func()) {
	s.mu.Lock()
	s.notify = fn
	s.mu.Unlock()
}

// Available reports whether the provider is currently reachable.
func (s *BlobStore) Available() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return !s.down
}

// Put stores data under key, replacing any previous value.
func (s *BlobStore) Put(ctx context.Context, key string, data []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if key == "" {
		return fmt.Errorf("cloud: empty key")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.down {
		return fmt.Errorf("%w: %s", ErrUnavailable, s.spec.Name)
	}
	if s.spec.MaxChunkBytes > 0 && int64(len(data)) > s.spec.MaxChunkBytes {
		return fmt.Errorf("%w: %s limit %d got %d", ErrTooLarge, s.spec.Name, s.spec.MaxChunkBytes, len(data))
	}
	delta := int64(len(data))
	if old, ok := s.objects[key]; ok {
		delta -= int64(len(old))
	}
	if s.spec.CapacityBytes > 0 && s.used+delta > s.spec.CapacityBytes {
		return fmt.Errorf("%w: %s", ErrOverCapacity, s.spec.Name)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	s.objects[key] = cp
	s.used += delta
	s.meter.RecordIn(int64(len(data)))
	return nil
}

// BatchItem is one write of a provider batch.
type BatchItem struct {
	Key  string
	Data []byte
}

// BatchWriter is implemented by backends that can accept many chunk
// writes in one provider round-trip. Repairing many small objects onto
// the same spare amortizes the per-op latency that otherwise dominates:
// the engine groups prepared swap chunks by target provider and
// flushes them through PutBatch.
type BatchWriter interface {
	PutBatch(ctx context.Context, items []BatchItem) error
}

// PutBatch stores every item under one lock acquisition — the simulated
// equivalent of a single provider round-trip. Validation (availability,
// chunk-size limit, capacity) runs over the whole batch before any
// write lands, so a rejected batch leaves the store untouched; each
// item is still metered individually, keeping billing identical to
// per-item Puts.
func (s *BlobStore) PutBatch(ctx context.Context, items []BatchItem) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.down {
		return fmt.Errorf("%w: %s", ErrUnavailable, s.spec.Name)
	}
	var delta int64
	for _, it := range items {
		if it.Key == "" {
			return fmt.Errorf("cloud: empty key")
		}
		if s.spec.MaxChunkBytes > 0 && int64(len(it.Data)) > s.spec.MaxChunkBytes {
			return fmt.Errorf("%w: %s limit %d got %d", ErrTooLarge, s.spec.Name, s.spec.MaxChunkBytes, len(it.Data))
		}
		delta += int64(len(it.Data))
		if old, ok := s.objects[it.Key]; ok {
			delta -= int64(len(old))
		}
	}
	if s.spec.CapacityBytes > 0 && s.used+delta > s.spec.CapacityBytes {
		return fmt.Errorf("%w: %s", ErrOverCapacity, s.spec.Name)
	}
	for _, it := range items {
		cp := make([]byte, len(it.Data))
		copy(cp, it.Data)
		if old, ok := s.objects[it.Key]; ok {
			s.used -= int64(len(old))
		}
		s.objects[it.Key] = cp
		s.used += int64(len(cp))
		s.meter.RecordIn(int64(len(cp)))
	}
	return nil
}

// Get retrieves the object stored under key.
func (s *BlobStore) Get(ctx context.Context, key string) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.down {
		return nil, fmt.Errorf("%w: %s", ErrUnavailable, s.spec.Name)
	}
	data, ok := s.objects[key]
	if !ok {
		return nil, fmt.Errorf("%w: %s/%s", ErrNotFound, s.spec.Name, key)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	s.meter.RecordOut(int64(len(data)))
	return cp, nil
}

// Delete removes the object stored under key. Deleting a missing key is
// an error so the engine can distinguish postponed deletes.
func (s *BlobStore) Delete(ctx context.Context, key string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.down {
		return fmt.Errorf("%w: %s", ErrUnavailable, s.spec.Name)
	}
	data, ok := s.objects[key]
	if !ok {
		return fmt.Errorf("%w: %s/%s", ErrNotFound, s.spec.Name, key)
	}
	s.used -= int64(len(data))
	delete(s.objects, key)
	s.meter.RecordOp()
	return nil
}

// List returns the keys with the given prefix, sorted.
func (s *BlobStore) List(ctx context.Context, prefix string) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.down {
		return nil, fmt.Errorf("%w: %s", ErrUnavailable, s.spec.Name)
	}
	var keys []string
	for k := range s.objects {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	s.meter.RecordOp()
	return keys, nil
}

// UsedBytes returns the total bytes currently stored.
func (s *BlobStore) UsedBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.used
}

// ObjectCount returns the number of stored objects.
func (s *BlobStore) ObjectCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.objects)
}

// AccrueStorage meters the current footprint held for the given hours.
func (s *BlobStore) AccrueStorage(hours float64) {
	s.meter.AccrueStorage(s.UsedBytes(), hours)
}

var (
	_ Store       = (*BlobStore)(nil)
	_ BatchWriter = (*BlobStore)(nil)
)
