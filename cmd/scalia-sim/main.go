// Command scalia-sim regenerates the paper's tables and figures from
// the simulator. Each -experiment value corresponds to one artifact of
// the evaluation section (see DESIGN.md for the index).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"scalia/internal/cloud"
	"scalia/internal/core"
	"scalia/internal/sim"
	"scalia/internal/workload"
)

func main() {
	experiment := flag.String("experiment", "all",
		"one of: rules, providers, lifetime, trend-hourly, trend-daily, "+
			"slashdot, gallery, sets, addprovider, repair, custom, all")
	every := flag.Int("every", 6, "print one resource/price row every N periods")
	workloadName := flag.String("workload", "zipf-flashcrowd",
		"registered workload the custom experiment runs (see -list), or @FILE to replay a trace")
	exportTrace := flag.String("export-trace", "",
		"write the -workload scenario as a line-delimited JSON trace to FILE and exit")
	list := flag.Bool("list", false, "list experiments and registered workloads, then exit")
	flag.Parse()

	var customScenario workload.Scenario // resolved below, before any runner fires
	runners := map[string]func(int) error{
		"rules":        runRules,
		"providers":    runProviders,
		"lifetime":     runLifetime,
		"trend-hourly": runTrendHourly,
		"trend-daily":  runTrendDaily,
		"slashdot":     runSlashdot,
		"gallery":      runGallery,
		"sets":         runSets,
		"addprovider":  runAddProvider,
		"repair":       runRepair,
		"custom":       func(every int) error { return runCustom(customScenario, every) },
	}
	order := []string{"rules", "providers", "lifetime", "trend-hourly", "trend-daily",
		"sets", "slashdot", "gallery", "addprovider", "repair", "custom"}

	if *list {
		fmt.Println("experiments:")
		for _, name := range order {
			fmt.Printf("  %s\n", name)
		}
		fmt.Println("\nworkloads (-experiment custom -workload NAME):")
		for _, name := range workload.Names() {
			e, _ := workload.Describe(name)
			fmt.Printf("  %-16s %s\n", name, e.Desc)
		}
		return
	}

	// The custom runner and -export-trace share one upfront resolution:
	// a bad -workload must fail before, not after, ten finished paper
	// experiments, and an @FILE trace is read exactly once.
	if *exportTrace != "" || *experiment == "all" || *experiment == "custom" {
		sc, err := resolveWorkload(*workloadName)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(2)
		}
		customScenario = sc
	}

	if *exportTrace != "" {
		if err := writeTrace(customScenario, *exportTrace); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		return
	}

	if *experiment == "all" {
		for _, name := range order {
			fmt.Printf("==== %s ====\n", name)
			if err := runners[name](*every); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
			fmt.Println()
		}
		return
	}
	run, ok := runners[*experiment]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *experiment)
		os.Exit(2)
	}
	if err := run(*every); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

func runRules(int) error {
	fmt.Println("Fig. 2 — example storage rules:")
	fmt.Printf("%-8s %12s %10s %-8s %8s %4s\n", "name", "durability", "avail.", "zones", "lock-in", "N")
	for _, r := range core.PaperRules() {
		fmt.Printf("%-8s %12.7f %10.5f %-8v %8.2f %4d\n",
			r.Name, r.Durability, r.Availability, r.Zones, r.LockIn, r.MinProviders())
	}
	return nil
}

func runProviders(int) error {
	fmt.Println("Fig. 3 — provider profiles (USD/GB, USD/1000 ops):")
	fmt.Printf("%-10s %14s %8s %16s %8s %8s %8s %6s\n",
		"name", "durability", "avail.", "zones", "storage", "bdw-in", "bdw-out", "ops")
	for _, s := range cloud.PaperProviders() {
		fmt.Printf("%-10s %14.11f %8.3f %16v %8.3f %8.2f %8.2f %6.2f\n",
			s.Name, s.Durability, s.Availability, s.Zones,
			s.Pricing.StorageGBMonth, s.Pricing.BandwidthInGB,
			s.Pricing.BandwidthOutGB, s.Pricing.OpsPer1000)
	}
	return nil
}

func runLifetime(int) error {
	fmt.Println("Fig. 5 — class lifetime distribution and time left to live:")
	_, out := sim.LifetimeFigure()
	fmt.Print(out)
	return nil
}

func runTrendHourly(int) error {
	fmt.Println("Fig. 8 — trend detection (ma 3, limit 0.1, s 1 h, 7 days):")
	fmt.Print(sim.FormatTrend(sim.TrendHourly()))
	return nil
}

func runTrendDaily(int) error {
	fmt.Println("Fig. 9 — trend detection (ma 3, limit 0.1, s 1 d, 3 months):")
	fmt.Print(sim.FormatTrend(sim.TrendDaily()))
	return nil
}

func runSets(int) error {
	fmt.Println("Fig. 13 — provider sets:")
	for _, s := range sim.StaticSets() {
		fmt.Printf("%2d  %s\n", s.Index, s.Label())
	}
	fmt.Printf("%2d  Scalia\n", sim.ScaliaIndex)
	return nil
}

func runSlashdot(every int) error {
	res, err := sim.SlashdotExperiment()
	if err != nil {
		return err
	}
	fmt.Println("Fig. 12 — Slashdot scenario, total resources:")
	fmt.Print(sim.FormatResources(res, every))
	fmt.Println("\nScalia placement changes:")
	fmt.Print(sim.FormatChanges(res))
	fmt.Println("\nFig. 14 — Slashdot scenario, over-cost per provider set:")
	fmt.Print(sim.FormatOverCost(res))
	return nil
}

func runGallery(every int) error {
	res, err := sim.GalleryExperiment()
	if err != nil {
		return err
	}
	fmt.Println("Fig. 15 — gallery scenario, total resources:")
	fmt.Print(sim.FormatResources(res, every))
	fmt.Println("\nFig. 16 — gallery scenario, over-cost per provider set:")
	fmt.Print(sim.FormatOverCost(res))
	return nil
}

func runAddProvider(every int) error {
	res, err := sim.AddProviderExperiment()
	if err != nil {
		return err
	}
	fmt.Println("Fig. 17 — provider addition (CheapStor at hour 400), resources:")
	fmt.Print(sim.FormatResources(res, every*4))
	fmt.Println("\nScalia placement changes (first 10):")
	for i, ch := range res.Changes {
		if i >= 10 {
			fmt.Printf("... and %d more\n", len(res.Changes)-10)
			break
		}
		fmt.Printf("hour %4d  %-18s %s -> %s (%s)\n", ch.Period, ch.Object, ch.From, ch.To, ch.Reason)
	}
	fmt.Println("\nOver-cost per provider set:")
	fmt.Print(sim.FormatOverCost(res))
	return nil
}

// resolveWorkload builds a scenario from a registry name, or replays a
// trace file when the name is "@FILE".
func resolveWorkload(name string) (workload.Scenario, error) {
	if !strings.HasPrefix(name, "@") {
		return workload.New(name)
	}
	f, err := os.Open(strings.TrimPrefix(name, "@"))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return workload.Import(f)
}

func writeTrace(sc workload.Scenario, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := workload.Export(f, sc); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %d-period trace of %q to %s\n", sc.Periods(), sc.Name(), path)
	return nil
}

func runCustom(sc workload.Scenario, every int) error {
	res, err := sim.CustomRun(sc)
	if err != nil {
		return err
	}
	fmt.Printf("custom workload %q (%d periods) — total resources:\n", res.Scenario, res.Periods)
	fmt.Print(sim.FormatResources(res, every))
	fmt.Println("\nScalia placement changes:")
	fmt.Print(sim.FormatChanges(res))
	fmt.Println("\nOver-cost per provider set:")
	fmt.Print(sim.FormatOverCost(res))
	return nil
}

func runRepair(every int) error {
	res, static, err := sim.RepairExperiment()
	if err != nil {
		return err
	}
	fmt.Println("Fig. 18 — active repair: cumulative price, Scalia vs fixed set:")
	fmt.Print(sim.FormatCumulative(res.CumulativeScalia, static, sim.RepairStaticSet.Label(), every))
	fmt.Println("\nScalia placement changes:")
	fmt.Print(sim.FormatChanges(res))
	return nil
}
