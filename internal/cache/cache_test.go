package cache

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

func TestLRUBasic(t *testing.T) {
	c := NewLRU(100)
	c.Put("a", []byte("hello"))
	got, ok := c.Get("a")
	if !ok || !bytes.Equal(got, []byte("hello")) {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	if _, ok := c.Get("missing"); ok {
		t.Fatal("missing key must miss")
	}
}

func TestLRUReturnsCopies(t *testing.T) {
	c := NewLRU(100)
	data := []byte("abc")
	c.Put("k", data)
	data[0] = 'X'
	got, _ := c.Get("k")
	if got[0] != 'a' {
		t.Fatal("Put must copy")
	}
	got[1] = 'Y'
	again, _ := c.Get("k")
	if again[1] != 'b' {
		t.Fatal("Get must copy")
	}
}

func TestLRUEvictsOldestFirst(t *testing.T) {
	c := NewLRU(10)
	c.Put("a", make([]byte, 4))
	c.Put("b", make([]byte, 4))
	c.Get("a")                  // a becomes most recent
	c.Put("c", make([]byte, 4)) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a must survive")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("c must be present")
	}
	_, _, ev := c.Stats()
	if ev != 1 {
		t.Fatalf("evictions = %d, want 1", ev)
	}
}

func TestLRUCapacityAccounting(t *testing.T) {
	c := NewLRU(10)
	c.Put("a", make([]byte, 6))
	c.Put("a", make([]byte, 2)) // overwrite shrinks usage
	if c.UsedBytes() != 2 {
		t.Fatalf("UsedBytes = %d, want 2", c.UsedBytes())
	}
	c.Put("b", make([]byte, 8))
	if c.UsedBytes() != 10 || c.Len() != 2 {
		t.Fatalf("used=%d len=%d", c.UsedBytes(), c.Len())
	}
}

func TestLRUOversizedObjectSkipped(t *testing.T) {
	c := NewLRU(5)
	c.Put("big", make([]byte, 6))
	if c.Len() != 0 {
		t.Fatal("oversized object must not be cached")
	}
}

func TestLRUDisabled(t *testing.T) {
	c := NewLRU(0)
	c.Put("k", []byte("x"))
	if _, ok := c.Get("k"); ok {
		t.Fatal("zero-capacity cache must store nothing")
	}
}

func TestLRUInvalidate(t *testing.T) {
	c := NewLRU(100)
	c.Put("k", []byte("x"))
	c.Invalidate("k")
	if _, ok := c.Get("k"); ok {
		t.Fatal("invalidated key must miss")
	}
	if c.UsedBytes() != 0 {
		t.Fatalf("UsedBytes = %d after invalidate", c.UsedBytes())
	}
	// Invalidating a missing key is a no-op.
	c.Invalidate("missing")
}

func TestLRUHitMissCounters(t *testing.T) {
	c := NewLRU(100)
	c.Put("k", []byte("x"))
	c.Get("k")
	c.Get("k")
	c.Get("nope")
	hits, misses, _ := c.Stats()
	if hits != 2 || misses != 1 {
		t.Fatalf("hits=%d misses=%d", hits, misses)
	}
}

func TestLRUConcurrent(t *testing.T) {
	c := NewLRU(1 << 20)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				key := fmt.Sprintf("k%d", j%20)
				c.Put(key, bytes.Repeat([]byte{byte(id)}, 100))
				c.Get(key)
				if j%50 == 0 {
					c.Invalidate(key)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.UsedBytes() < 0 || c.UsedBytes() > 1<<20 {
		t.Fatalf("UsedBytes out of bounds: %d", c.UsedBytes())
	}
}

func TestClusterInvalidateAll(t *testing.T) {
	cc := NewCluster()
	cc.AddDatacenter("dc1", 1000)
	cc.AddDatacenter("dc2", 1000)
	cc.Put("dc1", "k", []byte("v"))
	cc.Put("dc2", "k", []byte("v"))
	cc.InvalidateAll("k")
	if _, ok := cc.Get("dc1", "k"); ok {
		t.Fatal("dc1 must be invalidated")
	}
	if _, ok := cc.Get("dc2", "k"); ok {
		t.Fatal("dc2 must be invalidated")
	}
}

func TestClusterLocalFill(t *testing.T) {
	cc := NewCluster()
	cc.AddDatacenter("dc1", 1000)
	cc.AddDatacenter("dc2", 1000)
	cc.Put("dc1", "k", []byte("v"))
	if _, ok := cc.Get("dc2", "k"); ok {
		t.Fatal("reads fill only the local datacenter")
	}
	if got, ok := cc.Get("dc1", "k"); !ok || string(got) != "v" {
		t.Fatal("local read must hit")
	}
}

func TestClusterUnknownDatacenter(t *testing.T) {
	cc := NewCluster()
	if _, ok := cc.Get("ghost", "k"); ok {
		t.Fatal("unknown datacenter must miss")
	}
	cc.Put("ghost", "k", []byte("v")) // must not panic
}
