package engine

import (
	"bytes"
	"context"
	"errors"
	"io"
	"strings"
	"sync"
	"testing"
	"testing/iotest"

	"scalia/internal/cloud"
)

// countingBackend wraps a simulated provider and counts Put calls per
// key, so tests can prove which chunks were (re-)transferred.
type countingBackend struct {
	*cloud.BlobStore
	mu   sync.Mutex
	puts map[string]int
}

func (c *countingBackend) Put(ctx context.Context, key string, data []byte) error {
	c.mu.Lock()
	if c.puts == nil {
		c.puts = make(map[string]int)
	}
	c.puts[key]++
	c.mu.Unlock()
	return c.BlobStore.Put(ctx, key, data)
}

// putCounts returns a copy of the per-key Put tallies whose key
// contains substr.
func (c *countingBackend) putCounts(substr string) map[string]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int)
	for k, n := range c.puts {
		if strings.Contains(k, substr) {
			out[k] = n
		}
	}
	return out
}

func countingRegistry() (*cloud.Registry, []*countingBackend) {
	reg := cloud.NewRegistry()
	var backends []*countingBackend
	for _, spec := range cloud.PaperProviders() {
		cb := &countingBackend{BlobStore: cloud.NewBlobStore(spec)}
		backends = append(backends, cb)
		reg.Register(cb)
	}
	return reg, backends
}

// TestMultipartResumeAfterDroppedPart is the resumability acceptance
// test: part 2's connection drops mid-stream, ListParts reports what
// survived, the client re-sends ONLY the missing part, and the
// completed object reads back whole — with part 1's chunks provably
// transferred exactly once.
func TestMultipartResumeAfterDroppedPart(t *testing.T) {
	reg, backends := countingRegistry()
	b := newTestBroker(t, Config{StripeBytes: 1024, Registry: reg})
	e := b.Engine(0)
	ctx := context.Background()

	part1 := bytes.Repeat([]byte{1}, 2*1024) // two whole stripes
	part2 := bytes.Repeat([]byte{2}, 1536)   // final part: 1.5 stripes

	up, err := e.CreateUpload(ctx, "mp", "big", int64(len(part1)+len(part2)), PutOptions{MIME: "application/octet-stream"})
	if err != nil {
		t.Fatal(err)
	}
	p1, err := e.UploadPart(ctx, up.UploadID, 1, bytes.NewReader(part1), int64(len(part1)))
	if err != nil {
		t.Fatal(err)
	}
	if p1.Stripes != 2 || p1.ETag == "" {
		t.Fatalf("part 1 = %+v", p1)
	}

	// Part 2 drops after one stripe: the upload must fail, roll its own
	// chunks back, and leave part 1 untouched.
	boom := errors.New("connection reset mid-part")
	_, err = e.UploadPart(ctx, up.UploadID, 2,
		io.MultiReader(bytes.NewReader(part2[:1024]), iotest.ErrReader(boom)), int64(len(part2)))
	if !errors.Is(err, boom) {
		t.Fatalf("dropped part = %v, want the transport error", err)
	}
	staged, part1Chunks := 0, 0
	for _, cb := range backends {
		staged += cb.ObjectCount()
		part1Chunks += len(cb.putCounts("/p00001/"))
	}
	if part1Chunks == 0 || staged != part1Chunks {
		t.Fatalf("%d chunks staged after dropped part, want exactly part 1's %d", staged, part1Chunks)
	}

	// Resume: list what survived, re-send only the missing part.
	info, parts, err := e.ListParts(ctx, up.UploadID)
	if err != nil || info.UploadID != up.UploadID {
		t.Fatalf("ListParts: %v (%+v)", err, info)
	}
	if len(parts) != 1 || parts[0].PartNumber != 1 || parts[0].ETag != p1.ETag {
		t.Fatalf("surviving parts = %+v, want exactly part 1", parts)
	}
	p2, err := e.UploadPart(ctx, up.UploadID, 2, bytes.NewReader(part2), int64(len(part2)))
	if err != nil {
		t.Fatal(err)
	}

	// Completing with a gap or out-of-order numbering fails and leaves
	// the session open for the corrected retry.
	if _, err := e.CompleteUpload(ctx, up.UploadID, []CompletedPart{{PartNumber: 2, ETag: p2.ETag}}); !errors.Is(err, ErrInvalidArgument) {
		t.Fatalf("complete with missing part 1 = %v, want ErrInvalidArgument", err)
	}
	if _, err := e.CompleteUpload(ctx, up.UploadID, []CompletedPart{
		{PartNumber: 1, ETag: "deadbeef"}, {PartNumber: 2, ETag: p2.ETag},
	}); !errors.Is(err, ErrInvalidArgument) {
		t.Fatalf("complete with wrong etag = %v, want ErrInvalidArgument", err)
	}

	meta, err := e.CompleteUpload(ctx, up.UploadID, []CompletedPart{
		{PartNumber: 1, ETag: p1.ETag}, {PartNumber: 2, ETag: p2.ETag},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := append(append([]byte(nil), part1...), part2...)
	if meta.Size != int64(len(want)) || meta.StripeCount() != 4 || !meta.Multipart() {
		t.Fatalf("completed meta = %+v", meta)
	}
	if !strings.HasSuffix(meta.Checksum, "-2") {
		t.Fatalf("multipart checksum %q should carry the part count suffix", meta.Checksum)
	}
	got, gotMeta, err := e.Get(ctx, "mp", "big")
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("completed object round-trip: %v (%d bytes)", err, len(got))
	}
	if gotMeta.Checksum != meta.Checksum {
		t.Fatalf("read meta = %+v", gotMeta)
	}

	// The resume must not have re-transferred the completed part: every
	// part-1 chunk was put exactly once, ever.
	for _, cb := range backends {
		for key, n := range cb.putCounts("/p00001/") {
			if n != 1 {
				t.Fatalf("%s chunk %s was transferred %d times, want 1", cb.Spec().Name, key, n)
			}
		}
	}

	// The session is gone once completed.
	if _, _, err := e.ListParts(ctx, up.UploadID); !errors.Is(err, ErrUploadNotFound) {
		t.Fatalf("ListParts after complete = %v, want ErrUploadNotFound", err)
	}
}

// TestAbortUploadGarbageCollectsParts asserts the satellite criterion:
// aborting an upload removes every staged chunk from every provider,
// and the session stops answering.
func TestAbortUploadGarbageCollectsParts(t *testing.T) {
	reg, backends := countingRegistry()
	b := newTestBroker(t, Config{StripeBytes: 1024, Registry: reg})
	e := b.Engine(0)
	ctx := context.Background()

	up, err := e.CreateUpload(ctx, "mp", "doomed", 0, PutOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for n, size := range map[int]int{1: 2 * 1024, 2: 3 * 1024} {
		if _, err := e.UploadPart(ctx, up.UploadID, n, bytes.NewReader(make([]byte, size)), int64(size)); err != nil {
			t.Fatalf("part %d: %v", n, err)
		}
	}
	staged := 0
	for _, cb := range backends {
		staged += cb.ObjectCount()
	}
	if staged == 0 {
		t.Fatal("no chunks staged before abort")
	}
	if got := b.activeUploads(); got != 1 {
		t.Fatalf("active uploads = %d, want 1", got)
	}

	if err := e.AbortUpload(ctx, up.UploadID); err != nil {
		t.Fatal(err)
	}
	for _, cb := range backends {
		if n := cb.ObjectCount(); n != 0 {
			t.Fatalf("%s holds %d chunks after abort", cb.Spec().Name, n)
		}
	}
	if got := b.activeUploads(); got != 0 {
		t.Fatalf("active uploads after abort = %d", got)
	}
	if _, err := e.UploadPart(ctx, up.UploadID, 3, bytes.NewReader(make([]byte, 8)), 8); !errors.Is(err, ErrUploadNotFound) {
		t.Fatalf("UploadPart after abort = %v, want ErrUploadNotFound", err)
	}
	if err := e.AbortUpload(ctx, up.UploadID); !errors.Is(err, ErrUploadNotFound) {
		t.Fatalf("double abort = %v, want ErrUploadNotFound", err)
	}
}

// TestMultipartValidation covers the session-less argument errors.
func TestMultipartValidation(t *testing.T) {
	b := newTestBroker(t, Config{StripeBytes: 1024})
	e := b.Engine(0)
	ctx := context.Background()

	if _, err := e.CreateUpload(ctx, "", "k", 0, PutOptions{}); !errors.Is(err, ErrInvalidArgument) {
		t.Fatalf("empty container = %v", err)
	}
	if _, err := e.UploadPart(ctx, "nope", 1, bytes.NewReader([]byte{1}), 1); !errors.Is(err, ErrUploadNotFound) {
		t.Fatalf("unknown upload = %v", err)
	}
	up, err := e.CreateUpload(ctx, "mp", "k", 0, PutOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.UploadPart(ctx, up.UploadID, 0, bytes.NewReader([]byte{1}), 1); !errors.Is(err, ErrInvalidArgument) {
		t.Fatalf("part 0 = %v", err)
	}
	if _, err := e.UploadPart(ctx, up.UploadID, 1, bytes.NewReader(nil), 0); !errors.Is(err, ErrInvalidArgument) {
		t.Fatalf("empty part = %v", err)
	}
	// A non-final part that is not stripe-aligned is caught at complete
	// time, when the final part is known.
	if _, err := e.UploadPart(ctx, up.UploadID, 1, bytes.NewReader(make([]byte, 700)), 700); err != nil {
		t.Fatal(err)
	}
	if _, err := e.UploadPart(ctx, up.UploadID, 2, bytes.NewReader(make([]byte, 1024)), 1024); err != nil {
		t.Fatal(err)
	}
	_, err = e.CompleteUpload(ctx, up.UploadID, []CompletedPart{{PartNumber: 1}, {PartNumber: 2}})
	if !errors.Is(err, ErrInvalidArgument) {
		t.Fatalf("unaligned non-final part = %v, want ErrInvalidArgument", err)
	}
	if err := e.AbortUpload(ctx, up.UploadID); err != nil {
		t.Fatal(err)
	}
}
