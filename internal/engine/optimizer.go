package engine

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"scalia/internal/core"
	"scalia/internal/erasure"
	"scalia/internal/stats"
	"scalia/internal/trend"
)

// OptimizeReport summarizes one periodic optimization procedure
// (paper Fig. 7).
type OptimizeReport struct {
	Leader       string
	Scanned      int // |A|: objects accessed since the last round
	TrendChanged int // objects whose access pattern changed
	Recomputed   int // placements recomputed (Algorithm 1 runs)
	Migrated     int // objects actually moved
	MigrationUSD float64
}

// ErrNoLeader is returned when no engine is alive to lead a round.
var ErrNoLeader = errors.New("engine: no alive engine for leader election")

// Optimize runs one optimization procedure: a leader elected among all
// engines retrieves the set A of objects accessed since the last round,
// splits it evenly across engines, and each engine recomputes placement
// only for objects whose access trend changed (§III-A3). Migration
// happens only when the projected savings over the decision period
// exceed the migration cost.
func (b *Broker) Optimize() (OptimizeReport, error) {
	leader := b.electLeader()
	if leader == nil {
		return OptimizeReport{}, ErrNoLeader
	}
	b.FlushStats()

	b.mu.Lock()
	since := b.lastOpt
	now := b.clock.Period()
	b.lastOpt = now
	b.mu.Unlock()

	accessed := b.statsDB.AccessedSince(since)
	report := OptimizeReport{Leader: leader.id, Scanned: len(accessed)}

	// Fan out over alive engines (step 3-4 of Fig. 7).
	var alive []*Engine
	for _, e := range b.engines {
		if e.Alive() {
			alive = append(alive, e)
		}
	}
	shards := make([][]string, len(alive))
	for i, obj := range accessed {
		shards[i%len(alive)] = append(shards[i%len(alive)], obj)
	}

	var mu sync.Mutex
	var wg sync.WaitGroup
	for i, e := range alive {
		if len(shards[i]) == 0 {
			continue
		}
		wg.Add(1)
		go func(e *Engine, objs []string) {
			defer wg.Done()
			local := e.optimizeShard(objs, now, false)
			mu.Lock()
			report.TrendChanged += local.TrendChanged
			report.Recomputed += local.Recomputed
			report.Migrated += local.Migrated
			report.MigrationUSD += local.MigrationUSD
			mu.Unlock()
		}(e, shards[i])
	}
	wg.Wait()
	return report, nil
}

// OptimizeFullScan recomputes every known object's placement without
// trend gating — the full-table-scan baseline the paper rejects as
// unscalable; kept for the ablation benchmark.
func (b *Broker) OptimizeFullScan() (OptimizeReport, error) {
	leader := b.electLeader()
	if leader == nil {
		return OptimizeReport{}, ErrNoLeader
	}
	b.FlushStats()
	now := b.clock.Period()
	report := leader.optimizeShard(b.statsDB.Objects(), now, true)
	report.Leader = leader.id
	report.Scanned = report.Recomputed
	return report, nil
}

// electLeader picks the alive engine with the lowest identifier — a
// deterministic stand-in for the paper's leader election among engines
// of all datacenters.
func (b *Broker) electLeader() *Engine {
	var leader *Engine
	for _, e := range b.engines {
		if !e.Alive() {
			continue
		}
		if leader == nil || e.id < leader.id {
			leader = e
		}
	}
	return leader
}

// optimizeShard processes one engine's share of the accessed-object set.
// When force is true the trend gate is bypassed.
func (e *Engine) optimizeShard(objs []string, now int64, force bool) OptimizeReport {
	var report OptimizeReport
	for _, obj := range objs {
		changed := force || e.detectTrendChange(obj, now)
		if !changed {
			continue
		}
		if !force {
			report.TrendChanged++
		}
		migrated, cost, recomputed := e.reoptimizeObject(obj, now)
		if recomputed {
			report.Recomputed++
		}
		if migrated {
			report.Migrated++
			report.MigrationUSD += cost
		}
	}
	return report
}

// detectTrendChange applies the momentum detector statelessly over the
// object's recorded history: it compares the SMA of the last w periods
// against the SMA of the preceding w periods.
func (e *Engine) detectTrendChange(obj string, now int64) bool {
	h := e.b.statsDB.History(obj)
	if h == nil {
		return false
	}
	w := e.b.cfg.DetectWindow
	series := h.OpsSeries(now, w+1)
	if len(series) < w+1 {
		return true // young object: history shorter than the window
	}
	var prev, cur float64
	for i := 0; i < w; i++ {
		prev += series[i]
		cur += series[i+1]
	}
	prev /= float64(w)
	cur /= float64(w)
	return trend.Momentum(prev, cur) > e.b.cfg.DetectLimit
}

// reoptimizeObject recomputes an object's placement from its access
// history over the adaptive decision period, migrating when worthwhile.
func (e *Engine) reoptimizeObject(obj string, now int64) (migrated bool, cost float64, recomputed bool) {
	container, key, ok := splitObjectName(obj)
	if !ok {
		return false, 0, false
	}
	meta, err := e.Head(container, key)
	if err != nil {
		return false, 0, false
	}
	h := e.b.statsDB.History(obj)
	if h == nil {
		return false, 0, false
	}
	rule := e.b.rules.Resolve(container, key, meta.Class)

	d := e.updateDecisionPeriod(obj, meta, h, rule, now)
	sum := h.Summary(now, d)
	sum.StorageBytes = float64(meta.Size)

	specs, free := e.b.availableSpecs()
	res, err := core.BestPlacement(specs, rule, sum, core.Options{
		PeriodHours: e.b.cfg.PeriodHours,
		Pruned:      e.b.cfg.Pruned,
		FreeBytes:   free,
		ObjectBytes: meta.Size,
	})
	if err != nil {
		return false, 0, true
	}
	cur := currentPlacementFromMeta(e, meta)
	if res.Placement.Equal(cur) {
		return false, 0, true
	}
	// Migrate only if the savings over the benefit horizon cover the
	// migration cost (§III-A3). The horizon is the decision period,
	// stretched to the object's expected remaining lifetime and the
	// configured minimum.
	horizon := d
	if ttl := e.ttlPeriods(obj, meta, now); ttl > horizon {
		horizon = ttl
	}
	if e.b.cfg.MigrationHorizon > horizon {
		horizon = e.b.cfg.MigrationHorizon
	}
	curPrice := core.PeriodCost(cur, sum, e.b.cfg.PeriodHours)
	saving := (curPrice - res.Price) * float64(horizon)
	migCost := core.MigrationCost(cur, res.Placement, float64(meta.Size)/1e9)
	if saving <= migCost {
		return false, 0, true
	}
	if err := e.migrate(meta, res.Placement); err != nil {
		return false, 0, true
	}
	e.b.setPlacement(obj, res.Placement)
	return true, migCost, true
}

// updateDecisionPeriod runs the coupling evaluation (D/2, D, 2D) when
// the object's controller is due, returning the decision period to use.
func (e *Engine) updateDecisionPeriod(obj string, meta ObjectMeta, h *stats.History, rule core.Rule, now int64) int {
	e.b.mu.Lock()
	ctl, ok := e.b.decisions[obj]
	if !ok {
		initial := e.b.cfg.DecisionPeriod
		// Seed from the class's expected lifetime when available: a
		// short-lived class should not be optimized with a long horizon.
		if ttl, ok := e.b.statsDB.Classes().ExpectedTTL(meta.Class, e.b.statsDB.AgeHours(obj, now)); ok {
			if p := int(ttl / e.b.cfg.PeriodHours); p >= core.MinDecisionPeriod && p < initial {
				initial = p
			}
		}
		ctl = core.NewDecisionController(initial, 0)
		e.b.decisions[obj] = ctl
	}
	due := ctl.Tick()
	e.b.mu.Unlock()
	if !due {
		return ctl.D()
	}

	// limit = min(TTL_obj, |H_obj|) in sampling periods.
	limit := h.Span(now)
	if ttl := e.ttlPeriods(obj, meta, now); ttl > 0 && ttl < limit {
		limit = ttl
	}
	cands := ctl.Candidates(limit)
	specs, free := e.b.availableSpecs()
	bestIdx, bestPrice := 1, 0.0
	for i, d := range cands {
		sum := h.Summary(now, d)
		sum.StorageBytes = float64(meta.Size)
		res, err := core.BestPlacement(specs, rule, sum, core.Options{
			PeriodHours: e.b.cfg.PeriodHours,
			Pruned:      e.b.cfg.Pruned,
			FreeBytes:   free,
			ObjectBytes: meta.Size,
		})
		if err != nil {
			continue
		}
		if i == 0 || res.Price < bestPrice {
			bestIdx, bestPrice = i, res.Price
		}
	}
	e.b.mu.Lock()
	ctl.Update(bestIdx, cands)
	d := ctl.D()
	e.b.mu.Unlock()
	return d
}

// ttlPeriods resolves the object's time left to live in sampling
// periods: the user hint first, then the class lifetime statistics.
func (e *Engine) ttlPeriods(obj string, meta ObjectMeta, now int64) int {
	age := e.b.statsDB.AgeHours(obj, now)
	if meta.TTLHours > 0 {
		left := meta.TTLHours - age
		if left < 0 {
			left = 0
		}
		return int(left / e.b.cfg.PeriodHours)
	}
	if ttl, ok := e.b.statsDB.Classes().ExpectedTTL(meta.Class, age); ok {
		return int(ttl / e.b.cfg.PeriodHours)
	}
	return 0
}

// currentPlacementFromMeta rebuilds the Placement from stored chunk
// locations (engines are stateless; the broker's placement map is only a
// cache).
func currentPlacementFromMeta(e *Engine, meta ObjectMeta) core.Placement {
	if p, ok := e.b.CurrentPlacement(objectName(meta.Container, meta.Key)); ok {
		return p
	}
	p := core.Placement{M: meta.M}
	for _, name := range meta.Chunks {
		if s, ok := e.b.registry.Store(name); ok {
			p.Providers = append(p.Providers, s.Spec())
		}
	}
	return p
}

// migrate moves an object to a new placement: reconstruct from the
// current chunks, re-encode, write the new chunks, update metadata, and
// delete superseded chunks.
func (e *Engine) migrate(meta ObjectMeta, to core.Placement) error {
	data, err := e.fetchAndDecode(meta)
	if err != nil {
		return fmt.Errorf("engine: migrate read: %w", err)
	}
	uuid := NewUUID()
	newMeta := meta
	newMeta.UUID = uuid
	newMeta.SKey = StorageKey(meta.Container, meta.Key, uuid)
	newMeta.M = to.M
	if err := e.writeChunks(&newMeta, to, data); err != nil {
		return fmt.Errorf("engine: migrate write: %w", err)
	}
	ts := e.b.clock.Timestamp()
	version, err := encodeMeta(newMeta, ts)
	if err != nil {
		return err
	}
	row := RowKey(meta.Container, meta.Key)
	if err := e.b.meta.Put(e.dc, row, version); err != nil {
		return err
	}
	e.deleteChunks(meta)
	e.b.caches.InvalidateAll(objectName(meta.Container, meta.Key))
	return nil
}

// RepairReport summarizes an active-repair pass (§IV-E).
type RepairReport struct {
	Checked  int
	Affected int // objects with chunks at unreachable providers
	Repaired int
	Waited   int // objects left for the provider to recover
}

// RepairPolicy selects how to treat chunks at failed providers.
type RepairPolicy int

// Repair policies: wait for recovery, or actively move chunks.
const (
	RepairWait RepairPolicy = iota
	RepairActive
)

// Repair scans all objects and applies the policy to those with chunks
// at unreachable providers. Under RepairActive the placement is
// recomputed over the reachable providers and the object migrated.
func (b *Broker) Repair(policy RepairPolicy) (RepairReport, error) {
	leader := b.electLeader()
	if leader == nil {
		return RepairReport{}, ErrNoLeader
	}
	b.FlushStats()
	var report RepairReport
	now := b.clock.Period()
	for _, obj := range b.statsDB.Objects() {
		container, key, ok := splitObjectName(obj)
		if !ok {
			continue
		}
		meta, err := leader.Head(container, key)
		if err != nil {
			continue
		}
		report.Checked++
		affected := false
		for _, name := range meta.Chunks {
			s, found := b.registry.Store(name)
			if !found || !s.Available() {
				affected = true
				break
			}
		}
		if !affected {
			continue
		}
		report.Affected++
		if policy == RepairWait {
			report.Waited++
			continue
		}
		rule := b.rules.Resolve(container, key, meta.Class)
		h := b.statsDB.History(obj)
		sum := stats.Summary{Periods: 1, StorageBytes: float64(meta.Size)}
		if h != nil {
			sum = h.Summary(now, leader.decisionWindow(obj, now))
			sum.StorageBytes = float64(meta.Size)
		}
		specs, free := b.availableSpecs()
		res, err := core.BestPlacement(specs, rule, sum, core.Options{
			PeriodHours: b.cfg.PeriodHours,
			Pruned:      b.cfg.Pruned,
			FreeBytes:   free,
			ObjectBytes: meta.Size,
		})
		if err != nil {
			report.Waited++
			continue
		}
		if err := leader.migrate(meta, res.Placement); err != nil {
			report.Waited++
			continue
		}
		b.setPlacement(obj, res.Placement)
		report.Repaired++
	}
	return report, nil
}

// VerifyObject checks that an object's stored chunks are sufficient and
// parity-consistent, returning the number of reachable chunks.
func (e *Engine) VerifyObject(container, key string) (reachable int, err error) {
	meta, err := e.Head(container, key)
	if err != nil {
		return 0, err
	}
	n := len(meta.Chunks)
	coder, err := erasure.New(meta.M, n)
	if err != nil {
		return 0, err
	}
	chunks := make([][]byte, n)
	for i, name := range meta.Chunks {
		s, ok := e.b.registry.Store(name)
		if !ok || !s.Available() {
			continue
		}
		if data, err := s.Get(ChunkKey(meta.SKey, i)); err == nil {
			chunks[i] = data
			reachable++
		}
	}
	if reachable < meta.M {
		return reachable, ErrNotEnoughChunks
	}
	if reachable == n {
		ok, err := coder.Verify(chunks)
		if err != nil {
			return reachable, err
		}
		if !ok {
			return reachable, ErrChecksum
		}
	}
	return reachable, nil
}

// splitObjectName parses "container/key" (keys may contain slashes).
func splitObjectName(obj string) (container, key string, ok bool) {
	i := strings.IndexByte(obj, '/')
	if i <= 0 || i == len(obj)-1 {
		return "", "", false
	}
	return obj[:i], obj[i+1:], true
}
