// Package sim is the cost simulator behind the paper's evaluation (§IV):
// it replays a workload scenario against (a) Scalia's adaptive placement,
// (b) all 26 static provider sets of Fig. 13, and (c) the per-period
// ideal placement, producing the over-cost comparisons of Figs. 14, 16
// and the resource/price series of Figs. 12, 15, 17 and 18.
package sim

import (
	"fmt"

	"scalia/internal/cloud"
)

// CanonicalOrder is the provider order Fig. 13 enumerates subsets in.
var CanonicalOrder = []string{
	cloud.NameS3High, cloud.NameS3Low, cloud.NameAzure,
	cloud.NameGoogle, cloud.NameRackspace,
}

// StaticSet is one numbered provider subset from Fig. 13. Index runs
// 1..26; Scalia is plotted as 27.
type StaticSet struct {
	Index int
	Names []string
}

// Label renders the paper's hyphenated label, e.g. "S3(h)-S3(l)-Azu".
func (s StaticSet) Label() string {
	out := ""
	for i, n := range s.Names {
		if i > 0 {
			out += "-"
		}
		out += n
	}
	return out
}

// ScaliaIndex is the bar number the paper assigns to Scalia.
const ScaliaIndex = 27

// StaticSets enumerates the 26 subsets (size >= 2) of the five paper
// providers in Fig. 13's order: depth-first lexicographic extension over
// the canonical provider order.
func StaticSets() []StaticSet {
	var sets []StaticSet
	var emit func(prefix []int, next int)
	emit = func(prefix []int, next int) {
		if len(prefix) >= 2 {
			names := make([]string, len(prefix))
			for i, idx := range prefix {
				names[i] = CanonicalOrder[idx]
			}
			sets = append(sets, StaticSet{Index: len(sets) + 1, Names: names})
		}
		for i := next; i < len(CanonicalOrder); i++ {
			emit(append(prefix, i), i+1)
		}
	}
	for first := 0; first < len(CanonicalOrder); first++ {
		emit([]int{first}, first+1)
	}
	return sets
}

// SetByLabel finds a static set by its Fig. 13 label.
func SetByLabel(label string) (StaticSet, error) {
	for _, s := range StaticSets() {
		if s.Label() == label {
			return s, nil
		}
	}
	return StaticSet{}, fmt.Errorf("sim: unknown provider set %q", label)
}
