package stats

import (
	"sync"
)

// Agent is the per-engine log agent (paper §III-C2): engines log each
// handled request to their agent, which forwards to a log aggregator.
// Log never blocks the request path: when the aggregator is saturated
// the event is buffered locally and delivered by the background pump.
type Agent struct {
	agg *Aggregator

	mu      sync.Mutex
	backlog []Event
}

// Log records one request event.
func (a *Agent) Log(ev Event) {
	select {
	case a.agg.ch <- ev:
	default:
		a.mu.Lock()
		a.backlog = append(a.backlog, ev)
		a.mu.Unlock()
	}
}

// drainBacklog moves locally buffered events to the aggregator,
// blocking; called by the aggregator's pump goroutine.
func (a *Agent) drainBacklog() {
	a.mu.Lock()
	pending := a.backlog
	a.backlog = nil
	a.mu.Unlock()
	for _, ev := range pending {
		a.agg.apply(ev)
	}
}

// Aggregator collects events from many agents and writes them to the
// statistics database. It models the paper's Flume/Scribe log collectors.
type Aggregator struct {
	db     *DB
	ch     chan Event
	syncCh chan chan struct{}

	mu     sync.Mutex
	agents []*Agent

	wg     sync.WaitGroup
	closed chan struct{}
}

// NewAggregator starts an aggregator writing into db. Close releases it.
func NewAggregator(db *DB, buffer int) *Aggregator {
	if buffer <= 0 {
		buffer = 1024
	}
	agg := &Aggregator{
		db:     db,
		ch:     make(chan Event, buffer),
		syncCh: make(chan chan struct{}),
		closed: make(chan struct{}),
	}
	agg.wg.Add(1)
	go agg.pump()
	return agg
}

// NewAgent registers and returns a new log agent feeding this aggregator.
func (g *Aggregator) NewAgent() *Agent {
	a := &Agent{agg: g}
	g.mu.Lock()
	g.agents = append(g.agents, a)
	g.mu.Unlock()
	return a
}

func (g *Aggregator) apply(ev Event) { g.db.Apply(ev) }

func (g *Aggregator) pump() {
	defer g.wg.Done()
	for {
		select {
		case ev := <-g.ch:
			g.apply(ev)
		case done := <-g.syncCh:
			g.drainAll()
			close(done)
		case <-g.closed:
			g.drainAll()
			return
		}
	}
}

// drainAll applies everything queued or backlogged until both the
// channel and all agent backlogs are observed empty.
func (g *Aggregator) drainAll() {
	for {
		select {
		case ev := <-g.ch:
			g.apply(ev)
		default:
			g.drainAgents()
			if len(g.ch) == 0 {
				return
			}
		}
	}
}

func (g *Aggregator) drainAgents() {
	g.mu.Lock()
	agents := append([]*Agent(nil), g.agents...)
	g.mu.Unlock()
	for _, a := range agents {
		a.drainBacklog()
	}
}

// Flush synchronously applies all events logged before the call; tests
// and the simulator call it at period boundaries for determinism. The
// drain happens inside the pump goroutine so no event is left in flight.
func (g *Aggregator) Flush() {
	done := make(chan struct{})
	select {
	case g.syncCh <- done:
		<-done
	case <-g.closed:
		// Closed aggregators have already drained.
	}
}

// Close stops the aggregator after draining pending events.
func (g *Aggregator) Close() {
	select {
	case <-g.closed:
		return
	default:
	}
	close(g.closed)
	g.wg.Wait()
}
