package cloud

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Typed errors for the admin mutation surface: callers can distinguish
// a name that is not in the market from a backend that exists but does
// not support the requested mutation (remote private resources have no
// injectable outage or mutable price sheet).
var (
	ErrUnknownProvider     = errors.New("cloud: unknown provider")
	ErrUnsupportedMutation = errors.New("cloud: provider does not support this mutation")
)

// MarketEventKind classifies a market change.
type MarketEventKind string

// Market event kinds. KindChange covers state flipped directly on a
// backend (bypassing the registry): the notifier back-reference carries
// the provider identity but not which of availability/pricing moved.
const (
	KindRegister     MarketEventKind = "register"
	KindDeregister   MarketEventKind = "deregister"
	KindAvailability MarketEventKind = "availability"
	KindPricing      MarketEventKind = "pricing"
	KindChange       MarketEventKind = "change"
)

// MarketEvent is one market change with provider identity — the signal
// behind event-driven maintenance. Epoch is the market epoch after the
// change.
type MarketEvent struct {
	Epoch    uint64          `json:"epoch"`
	Provider string          `json:"provider,omitempty"`
	Kind     MarketEventKind `json:"kind"`
}

// Backend is a storage provider attached to the registry: the blob
// Store operations plus the descriptive surface the placement engine
// needs. In-memory simulated providers (*BlobStore) and remote private
// resources (privstore.Backend) both implement it.
type Backend interface {
	Store
	// Spec returns the provider description and price sheet.
	Spec() Spec
	// Available reports whether the provider is currently reachable.
	Available() bool
	// UsedBytes returns the stored byte volume (capacity accounting).
	UsedBytes() int64
}

// Meterer is implemented by backends that meter billable usage.
type Meterer interface {
	Meter() *Meter
}

// StorageAccruer is implemented by backends whose storage billing is
// advanced by simulated time.
type StorageAccruer interface {
	AccrueStorage(hours float64)
}

// AvailabilitySetter is implemented by backends supporting failure
// injection.
type AvailabilitySetter interface {
	SetAvailable(up bool)
}

// PricingSetter is implemented by backends whose price sheet can change
// at runtime (simulated providers support scripted market price
// events); remote private resources have no mutable price sheet.
type PricingSetter interface {
	SetPricing(p Pricing)
}

// ChangeNotifierSetter is implemented by backends that accept a
// registry back-reference: the registry installs a notifier at
// Register time, and the backend calls it whenever its availability
// changes through a path that bypasses the registry (failure injection
// directly on the backend). Without this, a backend downed directly
// would keep the market epoch — and every placement search cached
// against it — valid until the next registry event.
type ChangeNotifierSetter interface {
	SetChangeNotifier(fn func())
}

// Registry is the dynamic, non-static set of storage resources Scalia
// orchestrates (public providers plus private resources, §III). Providers
// can be registered and deregistered at runtime; the placement engine
// reads a consistent snapshot each time it optimizes, which is how the
// CheapStor-arrival experiment (§IV-D) and provider bankruptcy are
// modelled.
type Registry struct {
	mu     sync.RWMutex
	stores map[string]Backend
	// watchers are notified (non-blocking) on membership changes so
	// engines can trigger re-optimization when P(obj) changes.
	watchers []chan struct{}
	// epoch increases monotonically on every market change (Register,
	// Deregister, SetAvailable). Placement planners key their prepared
	// searches on it: an unchanged epoch means the feasible-set work of
	// Algorithm 1 is still valid.
	epoch uint64
	// snap caches the available-provider view for the current epoch.
	snap *marketSnapshot
	// subscribers receive every MarketEvent, called synchronously
	// outside the registry lock after the epoch bump. Callbacks must be
	// fast and non-blocking; the engine's maintenance queue uses one to
	// enqueue invalidated objects.
	subscribers []func(MarketEvent)
}

// marketSnapshot is the immutable available-provider view at one epoch.
// Callers receive the specs slice directly and must not mutate it.
type marketSnapshot struct {
	epoch  uint64
	specs  []Spec    // available providers, sorted by name
	capped []Backend // available capacity-bounded backends (free bytes vary per call)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{stores: make(map[string]Backend)}
}

// NewPaperRegistry returns a registry pre-populated with the five Fig. 3
// providers.
func NewPaperRegistry() *Registry {
	r := NewRegistry()
	for _, spec := range PaperProviders() {
		r.Register(NewBlobStore(spec))
	}
	return r
}

// Register adds a provider. Registering an existing name replaces its
// spec (a provider "suddenly increasing its pricing policy").
func (r *Registry) Register(s Backend) {
	name := s.Spec().Name
	r.attach(s)
	r.mu.Lock()
	old := r.stores[name]
	r.stores[name] = s
	r.bumpEpochLocked()
	epoch := r.epoch
	r.notifyLocked()
	r.mu.Unlock()
	if old != nil && old != s {
		if n, ok := old.(ChangeNotifierSetter); ok {
			n.SetChangeNotifier(nil) // the replaced backend is detached
		}
	}
	r.emit(MarketEvent{Epoch: epoch, Provider: name, Kind: KindRegister})
}

// attach installs the registry back-reference on backends that support
// it, so availability flipped directly on the backend still bumps the
// market epoch. The closure captures the provider name: out-of-band
// changes arrive as named MarketEvents, which is what lets the
// maintenance queue invalidate only the affected objects.
func (r *Registry) attach(s Backend) {
	if n, ok := s.(ChangeNotifierSetter); ok {
		name := s.Spec().Name
		n.SetChangeNotifier(func() { r.noteBackendChange(name) })
	}
}

// noteBackendChange records an out-of-band backend state change:
// advance the market epoch, wake the membership watchers, and emit a
// named MarketEvent. It is the callback handed to ChangeNotifierSetter
// backends (wrapped to capture the provider name).
func (r *Registry) noteBackendChange(name string) {
	r.mu.Lock()
	r.bumpEpochLocked()
	epoch := r.epoch
	r.notifyLocked()
	r.mu.Unlock()
	r.emit(MarketEvent{Epoch: epoch, Provider: name, Kind: KindChange})
}

// Subscribe registers fn to be called (synchronously, outside the
// registry lock) after every market change. Callbacks must not block:
// they run on whatever goroutine performed the mutation, including
// engine write paths that downed a provider mid-flight.
func (r *Registry) Subscribe(fn func(MarketEvent)) {
	r.mu.Lock()
	r.subscribers = append(r.subscribers, fn)
	r.mu.Unlock()
}

// emit delivers ev to every subscriber. Called outside r.mu.
func (r *Registry) emit(ev MarketEvent) {
	r.mu.RLock()
	subs := r.subscribers
	r.mu.RUnlock()
	for _, fn := range subs {
		fn(ev)
	}
}

// RegisterIfAbsent adds a provider only when its name is free,
// reporting whether it was added. Unlike Register it never replaces a
// live backend — admin surfaces use it so a name collision cannot
// silently orphan the chunks stored at the existing provider.
func (r *Registry) RegisterIfAbsent(s Backend) bool {
	r.mu.Lock()
	name := s.Spec().Name
	if _, exists := r.stores[name]; exists {
		r.mu.Unlock()
		return false
	}
	r.stores[name] = s
	r.bumpEpochLocked()
	epoch := r.epoch
	r.notifyLocked()
	r.mu.Unlock()
	r.attach(s)
	r.emit(MarketEvent{Epoch: epoch, Provider: name, Kind: KindRegister})
	return true
}

// Deregister removes a provider (business exit / boycott). The store is
// returned so callers can drain still-needed chunks.
func (r *Registry) Deregister(name string) (Backend, bool) {
	r.mu.Lock()
	s, ok := r.stores[name]
	var epoch uint64
	if ok {
		delete(r.stores, name)
		r.bumpEpochLocked()
		epoch = r.epoch
		r.notifyLocked()
	}
	r.mu.Unlock()
	if ok {
		// Detach: a store outside the registry must not keep bumping the
		// market epoch.
		if n, isNotifiable := s.(ChangeNotifierSetter); isNotifiable {
			n.SetChangeNotifier(nil)
		}
		r.emit(MarketEvent{Epoch: epoch, Provider: name, Kind: KindDeregister})
	}
	return s, ok
}

// SetAvailable injects or clears a transient outage on the named
// provider, when its backend supports failure injection. Backends with
// a registry back-reference (ChangeNotifierSetter, e.g. *BlobStore)
// bump the market epoch themselves — exactly once, and only when the
// state actually flips — so failure injection directly on the backend
// invalidates cached placement searches too; the registry bumps only
// for backends without one. The setter runs outside the registry lock:
// its back-reference notification re-enters the registry.
func (r *Registry) SetAvailable(name string, up bool) bool {
	_, err := r.UpdateAvailability(name, up)
	return err == nil
}

// UpdateAvailability is SetAvailable with the unified admin contract:
// it reports the market epoch after the change and distinguishes an
// unknown provider (ErrUnknownProvider) from a backend without failure
// injection (ErrUnsupportedMutation).
func (r *Registry) UpdateAvailability(name string, up bool) (uint64, error) {
	r.mu.RLock()
	s, ok := r.stores[name]
	r.mu.RUnlock()
	if !ok {
		return r.Epoch(), fmt.Errorf("%w: %s", ErrUnknownProvider, name)
	}
	setter, ok := s.(AvailabilitySetter)
	if !ok {
		return r.Epoch(), fmt.Errorf("%w: %s has no availability injection", ErrUnsupportedMutation, name)
	}
	setter.SetAvailable(up)
	if _, selfNotifying := s.(ChangeNotifierSetter); !selfNotifying {
		r.noteNamed(name, KindAvailability)
	}
	return r.Epoch(), nil
}

// SetPricing replaces the named provider's price sheet at runtime, when
// its backend supports pricing mutation (PricingSetter). Epoch
// bookkeeping mirrors SetAvailable: self-notifying backends push the
// change back themselves (exactly once, only on a real change); the
// registry bumps for the rest. The setter runs outside the registry
// lock because its back-reference notification re-enters the registry.
func (r *Registry) SetPricing(name string, p Pricing) bool {
	_, err := r.UpdatePricing(name, p)
	return err == nil
}

// UpdatePricing is SetPricing with the unified admin contract: it
// reports the market epoch after the change and distinguishes an
// unknown provider (ErrUnknownProvider) from a backend without a
// mutable price sheet (ErrUnsupportedMutation).
func (r *Registry) UpdatePricing(name string, p Pricing) (uint64, error) {
	r.mu.RLock()
	s, ok := r.stores[name]
	r.mu.RUnlock()
	if !ok {
		return r.Epoch(), fmt.Errorf("%w: %s", ErrUnknownProvider, name)
	}
	setter, ok := s.(PricingSetter)
	if !ok {
		return r.Epoch(), fmt.Errorf("%w: %s has no mutable price sheet", ErrUnsupportedMutation, name)
	}
	setter.SetPricing(p)
	if _, selfNotifying := s.(ChangeNotifierSetter); !selfNotifying {
		r.noteNamed(name, KindPricing)
	}
	return r.Epoch(), nil
}

// noteNamed bumps the epoch for a registry-mediated change on a backend
// without a notifier back-reference, emitting the precise event kind.
func (r *Registry) noteNamed(name string, kind MarketEventKind) {
	r.mu.Lock()
	r.bumpEpochLocked()
	epoch := r.epoch
	r.notifyLocked()
	r.mu.Unlock()
	r.emit(MarketEvent{Epoch: epoch, Provider: name, Kind: kind})
}

// Epoch returns the current market epoch. The epoch increases on every
// Register, Deregister and SetAvailable; two equal epochs guarantee the
// available-provider market has not changed through the registry.
func (r *Registry) Epoch() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.epoch
}

// bumpEpochLocked advances the market epoch and drops the cached
// snapshot. Callers hold r.mu.
func (r *Registry) bumpEpochLocked() {
	r.epoch++
	r.snap = nil
}

// Market returns the epoch-cached view of the available market: the
// current epoch, the specs of reachable providers (sorted by name, the
// slice is shared — callers must not mutate it), and the free capacity
// of capacity-bounded providers (nil when the market has none, the
// common case). The specs slice is rebuilt only when the epoch changes;
// free bytes are recomputed per call because they move with every write.
//
// Availability flipped directly on a backend (bypassing
// Registry.SetAvailable) is not visible until the next epoch bump;
// write paths must re-verify reachability of chosen providers, which
// the engine's placement retry loop does (§III-D3).
func (r *Registry) Market() (epoch uint64, specs []Spec, free map[string]int64) {
	r.mu.RLock()
	snap := r.snap
	r.mu.RUnlock()
	if snap == nil {
		snap = r.rebuildSnapshot()
	}
	if len(snap.capped) > 0 {
		free = make(map[string]int64, len(snap.capped))
		for _, s := range snap.capped {
			spec := s.Spec()
			free[spec.Name] = spec.CapacityBytes - s.UsedBytes()
		}
	}
	return snap.epoch, snap.specs, free
}

// rebuildSnapshot recomputes the cached market view. Availability
// probes run outside the registry lock — a remote private resource
// answers them over HTTP and must not stall concurrent registry reads.
func (r *Registry) rebuildSnapshot() *marketSnapshot {
	r.mu.RLock()
	if r.snap != nil {
		snap := r.snap
		r.mu.RUnlock()
		return snap
	}
	epoch := r.epoch
	backends := make([]Backend, 0, len(r.stores))
	for _, s := range r.stores {
		backends = append(backends, s)
	}
	r.mu.RUnlock()

	sort.Slice(backends, func(i, j int) bool {
		return backends[i].Spec().Name < backends[j].Spec().Name
	})
	snap := &marketSnapshot{epoch: epoch}
	for _, s := range backends {
		if !s.Available() {
			continue
		}
		spec := s.Spec()
		snap.specs = append(snap.specs, spec)
		if spec.CapacityBytes > 0 {
			snap.capped = append(snap.capped, s)
		}
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if r.epoch == epoch {
		if r.snap == nil {
			r.snap = snap
		}
		return r.snap
	}
	// The market moved while we probed: serve the view we built (it was
	// consistent at probe time) without caching it; the next call
	// rebuilds against the new epoch.
	return snap
}

// Store returns the provider with the given name.
func (r *Registry) Store(name string) (Backend, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.stores[name]
	return s, ok
}

// MustStore is Store for callers holding a name from a fresh snapshot.
func (r *Registry) MustStore(name string) Backend {
	s, ok := r.Store(name)
	if !ok {
		panic(fmt.Sprintf("cloud: unknown provider %q", name))
	}
	return s
}

// Snapshot returns the current provider set, sorted by name.
func (r *Registry) Snapshot() []Backend {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Backend, 0, len(r.stores))
	for _, s := range r.stores {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Spec().Name < out[j].Spec().Name })
	return out
}

// Specs returns the specs of all registered providers, sorted by name.
func (r *Registry) Specs() []Spec {
	stores := r.Snapshot()
	specs := make([]Spec, len(stores))
	for i, s := range stores {
		specs[i] = s.Spec()
	}
	return specs
}

// AvailableSpecs returns only the specs of providers that are currently
// reachable; write-time placement excludes faulty providers (§III-D3).
func (r *Registry) AvailableSpecs() []Spec {
	var specs []Spec
	for _, s := range r.Snapshot() {
		if s.Available() {
			specs = append(specs, s.Spec())
		}
	}
	return specs
}

// Len returns the number of registered providers.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.stores)
}

// Watch returns a channel that receives a signal after each membership
// change. The channel has capacity 1 and drops signals when full, so
// slow consumers coalesce changes.
func (r *Registry) Watch() <-chan struct{} {
	ch := make(chan struct{}, 1)
	r.mu.Lock()
	r.watchers = append(r.watchers, ch)
	r.mu.Unlock()
	return ch
}

func (r *Registry) notifyLocked() {
	for _, ch := range r.watchers {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// TotalUsage sums the billing meters of all metered providers.
func (r *Registry) TotalUsage() Usage {
	var total Usage
	for _, s := range r.Snapshot() {
		if m, ok := s.(Meterer); ok {
			total.Add(m.Meter().Snapshot())
		}
	}
	return total
}

// TotalCost prices every metered provider's usage with its own sheet.
func (r *Registry) TotalCost() float64 {
	var cost float64
	for _, s := range r.Snapshot() {
		if m, ok := s.(Meterer); ok {
			cost += m.Meter().Snapshot().Cost(s.Spec().Pricing)
		}
	}
	return cost
}

// AccrueStorage advances simulated time by the given hours on every
// provider that meters storage.
func (r *Registry) AccrueStorage(hours float64) {
	for _, s := range r.Snapshot() {
		if a, ok := s.(StorageAccruer); ok {
			a.AccrueStorage(hours)
		}
	}
}
