// Package loadgen maps the registered workload scenarios (or imported
// NDJSON traces) onto real HTTP operations against a live Scalia
// deployment, at configurable concurrency and offered rate, with a
// replayable chaos schedule executing admin-API events mid-run.
//
// The generator is open loop: a single dispatcher schedules op i at
// start + i/rate regardless of how fast the deployment absorbs it, and
// latency is measured from that scheduled dispatch time — a saturated
// deployment shows its queueing delay instead of silently throttling
// the probe (no coordinated omission). Execution is deterministic at
// the op-sequence level: the same scenario, seed and op cap always
// dispatch the same ops in the same order, and the optional op trace
// (NDJSON) captures that order byte-for-byte for replay diffing.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"scalia"
	"scalia/client"
	"scalia/internal/obs"
	"scalia/internal/workload"
)

// Defaults for Config zero values.
const (
	DefaultWorkers        = 8
	DefaultRate           = 100.0
	DefaultContainer      = "loadgen"
	DefaultMaxObjectBytes = 1 << 20
)

// Config parameterizes one load run.
type Config struct {
	// Client speaks to the target deployment. Required.
	Client *client.Client
	// Scenario supplies the op mix. Required.
	Scenario workload.Scenario
	// Container namespaces the run's objects (default "loadgen").
	Container string
	// Seed drives op shuffling; same seed = same op sequence.
	Seed uint64
	// Workers is the executor pool size (default 8).
	Workers int
	// Rate is the offered op rate per second (default 100).
	Rate float64
	// Duration: 0 runs exactly one pass over the compiled ops (fully
	// deterministic volume); > 0 cycles the op sequence until the
	// elapsed wall time reaches it.
	Duration time.Duration
	// MaxOps caps the compiled sequence (default workload.DefaultMaxOps).
	MaxOps int
	// MaxObjectBytes clamps scenario object sizes so heavyweight
	// scenarios (gallery: 2 GiB archives) stay runnable; negative
	// disables the clamp. Default 1 MiB.
	MaxObjectBytes int64
	// Chaos, when set, executes against the deployment while the load
	// runs.
	Chaos *Schedule
	// OpTrace, when set, receives the dispatched op sequence as NDJSON:
	// a header line, then one record per dispatched op. Two runs with
	// equal config produce byte-identical traces.
	OpTrace io.Writer
}

type task struct {
	op  workload.Op
	due time.Time
}

// objGate serializes writers against readers per object so a paced Get
// never observes a half-replayed Put of the same object, while distinct
// objects proceed in parallel.
type objGate struct {
	mu      sync.Mutex
	cond    *sync.Cond
	readers int
	writer  bool
}

func (g *objGate) lock(write bool) {
	g.mu.Lock()
	if write {
		for g.writer || g.readers > 0 {
			g.cond.Wait()
		}
		g.writer = true
	} else {
		for g.writer {
			g.cond.Wait()
		}
		g.readers++
	}
	g.mu.Unlock()
}

func (g *objGate) unlock(write bool) {
	g.mu.Lock()
	if write {
		g.writer = false
	} else {
		g.readers--
	}
	g.cond.Broadcast()
	g.mu.Unlock()
}

type gateTable struct {
	mu    sync.Mutex
	gates map[string]*objGate
}

func (t *gateTable) get(obj string) *objGate {
	t.mu.Lock()
	defer t.mu.Unlock()
	g := t.gates[obj]
	if g == nil {
		g = &objGate{}
		g.cond = sync.NewCond(&g.mu)
		t.gates[obj] = g
	}
	return g
}

// runner owns the mutable state shared by the worker pool.
type runner struct {
	cfg     Config
	payload []byte
	gates   gateTable
	lat     *obs.HistogramVec

	mu           sync.Mutex
	counts       map[string]int64
	errs         map[string]int64
	errsByCode   map[string]map[string]int64
	totalErrCode map[string]int64
}

func (r *runner) record(kind string, since time.Duration, err error) {
	r.lat.With(kind).Observe(since.Seconds())
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counts[kind]++
	if err != nil {
		code := errCode(err)
		r.errs[kind]++
		m := r.errsByCode[kind]
		if m == nil {
			m = map[string]int64{}
			r.errsByCode[kind] = m
		}
		m[code]++
		r.totalErrCode[code]++
	}
}

// errCode buckets an operation error by its typed sentinel so the
// report can distinguish chaos-induced 404s from transport failures.
func errCode(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, scalia.ErrObjectNotFound):
		return "not_found"
	case errors.Is(err, scalia.ErrUploadNotFound):
		return "upload_not_found"
	case errors.Is(err, scalia.ErrPreconditionFailed):
		return "precondition_failed"
	case errors.Is(err, scalia.ErrInvalidArgument):
		return "invalid_argument"
	case errors.Is(err, scalia.ErrRangeNotSatisfiable):
		return "range_not_satisfiable"
	case errors.Is(err, scalia.ErrInfeasiblePlacement):
		return "infeasible_placement"
	case errors.Is(err, scalia.ErrProviderUnavailable):
		return "provider_unavailable"
	case errors.Is(err, scalia.ErrProviderOverCapacity):
		return "over_capacity"
	case errors.Is(err, scalia.ErrObjectTooLarge):
		return "too_large"
	case errors.Is(err, scalia.ErrNotEnoughChunks):
		return "not_enough_chunks"
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return "cancelled"
	default:
		return "transport"
	}
}

// execute performs one op against the deployment. Get bodies stream to
// io.Discard — a mid-stream failure (e.g. a chaos outage racing the
// read) is charged to the op like any other error.
func (r *runner) execute(ctx context.Context, op workload.Op) error {
	c := r.cfg.Client
	switch op.Kind {
	case workload.OpPut:
		return putErr(c.Put(ctx, r.cfg.Container, op.Object, r.payload[:op.Size]))
	case workload.OpGet:
		rc, _, err := c.GetReader(ctx, r.cfg.Container, op.Object)
		if err != nil {
			return err
		}
		_, err = io.Copy(io.Discard, rc)
		if cerr := rc.Close(); err == nil {
			err = cerr
		}
		return err
	case workload.OpDelete:
		return c.Delete(ctx, r.cfg.Container, op.Object)
	default:
		return fmt.Errorf("loadgen: unknown op kind %v", op.Kind)
	}
}

func putErr(_ scalia.ObjectMeta, err error) error { return err }

// traceHeader and traceRecord are the NDJSON op-trace line shapes.
type traceHeader struct {
	Format    string `json:"format"`
	Version   int    `json:"version"`
	Scenario  string `json:"scenario"`
	Seed      uint64 `json:"seed"`
	Ops       int    `json:"ops"`
	Container string `json:"container"`
}

type traceRecord struct {
	Seq    int    `json:"seq"`
	Cycle  int    `json:"cycle"`
	Op     string `json:"op"`
	Object string `json:"obj"`
	Size   int64  `json:"size,omitempty"`
}

// Run executes one load run and returns its report. The context
// cancels the run early (ops already dispatched still drain).
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if cfg.Client == nil {
		return nil, errors.New("loadgen: Config.Client is required")
	}
	if cfg.Scenario == nil {
		return nil, errors.New("loadgen: Config.Scenario is required")
	}
	if cfg.Container == "" {
		cfg.Container = DefaultContainer
	}
	if cfg.Workers <= 0 {
		cfg.Workers = DefaultWorkers
	}
	if cfg.Rate <= 0 {
		cfg.Rate = DefaultRate
	}
	if cfg.MaxOps <= 0 {
		cfg.MaxOps = workload.DefaultMaxOps
	}
	if cfg.MaxObjectBytes == 0 {
		cfg.MaxObjectBytes = DefaultMaxObjectBytes
	}

	ops := workload.CompileOps(cfg.Scenario, cfg.Seed, cfg.MaxOps)
	if len(ops) == 0 {
		return nil, errors.New("loadgen: scenario compiled to zero ops")
	}
	var maxSize int64
	for i := range ops {
		if cfg.MaxObjectBytes > 0 && ops[i].Size > cfg.MaxObjectBytes {
			ops[i].Size = cfg.MaxObjectBytes
		}
		if ops[i].Size > maxSize {
			maxSize = ops[i].Size
		}
	}

	r := &runner{
		cfg:          cfg,
		payload:      makePayload(maxSize, cfg.Seed),
		gates:        gateTable{gates: map[string]*objGate{}},
		counts:       map[string]int64{},
		errs:         map[string]int64{},
		errsByCode:   map[string]map[string]int64{},
		totalErrCode: map[string]int64{},
	}
	reg := obs.NewRegistry()
	r.lat = reg.HistogramVec("loadgen_op_duration_seconds",
		"Latency from scheduled dispatch to completion, per op type.",
		obs.DefaultLatencyBuckets, "op")

	before, beforeErr := cfg.Client.Stats(ctx)

	// Seed phase (untimed): Put each object once, in first-appearance
	// order, so paced Gets and Deletes always target objects this run
	// wrote — even when worker reordering runs a Get ahead of the
	// trace's own Put.
	seedOps, seedErrs := r.seedNamespace(ctx, ops)

	if cfg.OpTrace != nil {
		hdr, err := json.Marshal(traceHeader{
			Format: "scalia-loadgen-ops", Version: 1,
			Scenario: cfg.Scenario.Name(), Seed: cfg.Seed,
			Ops: len(ops), Container: cfg.Container,
		})
		if err != nil {
			return nil, err
		}
		if _, err := cfg.OpTrace.Write(append(hdr, '\n')); err != nil {
			return nil, fmt.Errorf("loadgen: op trace: %w", err)
		}
	}

	start := time.Now()

	chaosCtx, stopChaos := context.WithCancel(ctx)
	defer stopChaos()
	chaosDone := make(chan []ExecutedEvent, 1)
	go func() { chaosDone <- cfg.Chaos.run(chaosCtx, start, cfg.Client) }()

	tasks := make(chan task, 4*cfg.Workers)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range tasks {
				kind := t.op.Kind.String()
				write := t.op.Kind != workload.OpGet
				g := r.gates.get(t.op.Object)
				g.lock(write)
				err := r.execute(ctx, t.op)
				g.unlock(write)
				r.record(kind, time.Since(t.due), err)
			}
		}()
	}

	// Open-loop dispatcher: op i is due at start + i/rate; the trace
	// records dispatch order, which is single-threaded and so
	// reproducible run-to-run.
	var dispatchErr error
dispatch:
	for i := 0; ; i++ {
		if cfg.Duration <= 0 {
			if i >= len(ops) {
				break
			}
		} else if time.Since(start) >= cfg.Duration {
			break
		}
		op := ops[i%len(ops)]
		due := start.Add(time.Duration(float64(i) / cfg.Rate * float64(time.Second)))
		if wait := time.Until(due); wait > 0 {
			timer := time.NewTimer(wait)
			select {
			case <-ctx.Done():
				timer.Stop()
				break dispatch
			case <-timer.C:
			}
		} else if ctx.Err() != nil {
			break
		}
		if cfg.OpTrace != nil {
			rec, err := json.Marshal(traceRecord{
				Seq: i, Cycle: i / len(ops), Op: op.Kind.String(),
				Object: op.Object, Size: op.Size,
			})
			if err != nil {
				dispatchErr = err
				break
			}
			if _, err := cfg.OpTrace.Write(append(rec, '\n')); err != nil {
				dispatchErr = fmt.Errorf("loadgen: op trace: %w", err)
				break
			}
		}
		tasks <- task{op: op, due: due}
	}
	close(tasks)
	wg.Wait()
	elapsed := time.Since(start)

	stopChaos()
	chaos := <-chaosDone

	rep := r.buildReport(reg, elapsed, seedOps, seedErrs, chaos)
	if after, err := cfg.Client.Stats(ctx); err == nil && beforeErr == nil {
		rep.StatsDelta = diffStats(before, after)
	}
	return rep, dispatchErr
}

// seedNamespace puts every distinct object once before pacing starts.
// Uses the worker count for parallelism but stays untimed.
func (r *runner) seedNamespace(ctx context.Context, ops []workload.Op) (int64, int64) {
	type seed struct {
		obj  string
		size int64
	}
	seen := map[string]bool{}
	var order []seed
	for _, op := range ops {
		if op.Kind == workload.OpPut && !seen[op.Object] {
			seen[op.Object] = true
			order = append(order, seed{op.Object, op.Size})
		}
	}
	var errs int64
	var mu sync.Mutex
	sem := make(chan struct{}, r.cfg.Workers)
	var wg sync.WaitGroup
	for _, s := range order {
		wg.Add(1)
		sem <- struct{}{}
		go func(s seed) {
			defer wg.Done()
			defer func() { <-sem }()
			if _, err := r.cfg.Client.Put(ctx, r.cfg.Container, s.obj, r.payload[:s.size]); err != nil {
				mu.Lock()
				errs++
				mu.Unlock()
			}
		}(s)
	}
	wg.Wait()
	return int64(len(order)), errs
}

func (r *runner) buildReport(reg *obs.Registry, elapsed time.Duration,
	seedOps, seedErrs int64, chaos []ExecutedEvent) *Report {
	r.mu.Lock()
	defer r.mu.Unlock()

	quantiles := map[string]obs.HistogramSnapshot{}
	for _, lh := range reg.Histograms("loadgen_op_duration_seconds") {
		quantiles[lh.Labels["op"]] = lh.Snapshot
	}

	opStats := make(map[string]OpStats, len(r.counts))
	var totalOps, totalErrs int64
	for kind, n := range r.counts {
		s := OpStats{Count: n, Errors: r.errs[kind]}
		if snap, ok := quantiles[kind]; ok {
			s.P50Ms = snap.Quantile(0.50) * 1e3
			s.P90Ms = snap.Quantile(0.90) * 1e3
			s.P99Ms = snap.Quantile(0.99) * 1e3
		}
		if m := r.errsByCode[kind]; len(m) > 0 {
			s.ErrorsByCode = m
		}
		opStats[kind] = s
		totalOps += n
		totalErrs += s.Errors
	}

	rep := &Report{
		Schema:            ReportSchema,
		Scenario:          r.cfg.Scenario.Name(),
		Seed:              r.cfg.Seed,
		Workers:           r.cfg.Workers,
		OfferedRatePerSec: r.cfg.Rate,
		DurationSeconds:   elapsed.Seconds(),
		SeedOps:           seedOps,
		SeedErrors:        seedErrs,
		TotalOps:          totalOps,
		TotalErrors:       totalErrs,
		Ops:               opStats,
		Chaos:             chaos,
	}
	if len(r.totalErrCode) > 0 {
		rep.ErrorsByCode = r.totalErrCode
	}
	if elapsed > 0 {
		rep.AchievedRatePerSec = float64(totalOps) / elapsed.Seconds()
	}
	if totalOps > 0 {
		rep.ErrorRate = float64(totalErrs) / float64(totalOps)
	}
	return rep
}

// makePayload builds one shared pattern buffer; every Put slices a
// prefix of it. The pattern is seed-dependent but cheap — the content
// only has to be stable for a given seed, not random.
func makePayload(n int64, seed uint64) []byte {
	if n <= 0 {
		return nil
	}
	block := make([]byte, 256)
	for i := range block {
		block[i] = byte(uint64(i)*1103515245 + seed)
	}
	return bytes.Repeat(block, int((n+255)/256))[:n]
}
