package stats

import (
	"reflect"
	"sort"
	"testing"
)

func TestProviderIndexSetDiffsMembership(t *testing.T) {
	ix := NewProviderIndex()
	ix.Set("c/a", []string{"P1", "P2"})
	ix.Set("c/b", []string{"P2", "P3"})
	if ix.Len() != 2 || ix.Count("P2") != 2 || ix.Count("P1") != 1 {
		t.Fatalf("after seed: len=%d P1=%d P2=%d", ix.Len(), ix.Count("P1"), ix.Count("P2"))
	}
	// Duplicate provider names in one placement index once.
	ix.Set("c/dup", []string{"P1", "P1", "P1"})
	if ix.Count("P1") != 2 {
		t.Fatalf("duplicate providers double-indexed: P1=%d", ix.Count("P1"))
	}
	// Re-set moves the object: stale postings drop, new ones appear.
	ix.Set("c/a", []string{"P3", "P4"})
	if ix.Count("P1") != 1 || ix.Count("P2") != 1 || ix.Count("P4") != 1 {
		t.Fatalf("re-set left stale postings: P1=%d P2=%d P4=%d",
			ix.Count("P1"), ix.Count("P2"), ix.Count("P4"))
	}
	if got := ix.Providers("c/a"); !reflect.DeepEqual(got, []string{"P3", "P4"}) {
		t.Fatalf("Providers(c/a) = %v", got)
	}
	// Idempotent re-set is a no-op.
	ix.Set("c/a", []string{"P3", "P4"})
	if ix.Len() != 3 || ix.Count("P3") != 2 {
		t.Fatalf("idempotent re-set mutated the index: len=%d P3=%d", ix.Len(), ix.Count("P3"))
	}
	// Setting an empty placement deletes the object outright.
	ix.Set("c/dup", nil)
	if ix.Len() != 2 || ix.Count("P1") != 0 || ix.Providers("c/dup") != nil {
		t.Fatalf("empty placement did not delete: len=%d P1=%d", ix.Len(), ix.Count("P1"))
	}
}

func TestProviderIndexDrop(t *testing.T) {
	ix := NewProviderIndex()
	ix.Set("c/a", []string{"P1", "P2"})
	ix.Set("c/b", []string{"P1"})
	ix.Drop("c/a")
	if ix.Len() != 1 || ix.Count("P1") != 1 || ix.Count("P2") != 0 {
		t.Fatalf("after drop: len=%d P1=%d P2=%d", ix.Len(), ix.Count("P1"), ix.Count("P2"))
	}
	// A provider with no postings vanishes from the name list.
	if names := ix.ProviderNames(); !reflect.DeepEqual(names, []string{"P1"}) {
		t.Fatalf("ProviderNames = %v", names)
	}
	ix.Drop("c/missing") // unknown object: no-op
	if ix.Len() != 1 {
		t.Fatalf("dropping a missing object changed the index")
	}
}

func TestProviderIndexObjectsSortedAndUnion(t *testing.T) {
	ix := NewProviderIndex()
	ix.Set("c/z", []string{"P1"})
	ix.Set("c/a", []string{"P1", "P2"})
	ix.Set("c/m", []string{"P2"})
	if got := ix.Objects("P1"); !sort.StringsAreSorted(got) || len(got) != 2 {
		t.Fatalf("Objects(P1) = %v, want 2 sorted", got)
	}
	// ObjectsOn unions without duplicating objects shared across the set.
	got := ix.ObjectsOn([]string{"P1", "P2", "P404"})
	want := []string{"c/a", "c/m", "c/z"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ObjectsOn = %v, want %v", got, want)
	}
	if got := ix.ObjectsOn(nil); len(got) != 0 {
		t.Fatalf("ObjectsOn(nil) = %v, want empty", got)
	}
	if got := ix.Objects("P404"); len(got) != 0 {
		t.Fatalf("Objects(unknown) = %v, want empty", got)
	}
}
