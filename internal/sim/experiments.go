package sim

import (
	"scalia/internal/cloud"
	"scalia/internal/core"
	"scalia/internal/workload"
)

// Rules of the evaluation scenarios (§IV). Where the paper leaves a
// constraint unspecified the value is chosen so the paper's reported
// thresholds come out of Algorithm 2 (see EXPERIMENTS.md).
var (
	// SlashdotRule: "1 MB, minimum availability 99.99% and durability
	// 99.999%" (§IV-B).
	SlashdotRule = core.Rule{
		Name: "slashdot", Durability: 0.99999, Availability: 0.9999, LockIn: 1,
	}
	// GalleryRule: "minimum availability per picture is set to 99.99%"
	// (§IV-C); durability as in the Slashdot scenario.
	GalleryRule = core.Rule{
		Name: "gallery", Durability: 0.99999, Availability: 0.9999, LockIn: 1,
	}
	// BackupRule: "each object has to be stored at 2 different providers
	// at least" (§IV-D) — lock-in 0.5; "unlike preceding scenarios ...
	// the availability constraint" is not the driver, so it is lax, and
	// durability is high enough that every pair must tolerate one
	// provider loss — which yields the paper's m = n-1 thresholds and its
	// [S3(h), S3(l), Azu, Ggl, RS; m:4] pre-arrival placement.
	BackupRule = core.Rule{
		Name: "backup", Durability: 0.9999999, Availability: 0.99, LockIn: 0.5,
	}
	// RepairRule (§IV-E): the paper's Scalia chooses [S3(h), S3(l), Azu;
	// m:2] there, which Algorithm 1 only produces when availability is
	// tight enough to exclude the wider m = n-1 sets: 0.999995 admits
	// triples at m:2 (av 0.999997) but rejects quadruples at m:3
	// (0.999994) and the 5-set at m:4 (0.9999900). §IV-D and §IV-E thus
	// imply different availability requirements.
	RepairRule = core.Rule{
		Name: "repair", Durability: 0.9999999, Availability: 0.999995, LockIn: 0.5,
	}
)

// SlashdotExperiment reproduces §IV-B: Figs. 12 (resources) and 14
// (over-cost of all 27 sets).
func SlashdotExperiment() (*Result, error) {
	return Run(workload.NewSlashdot(), Config{
		Rule:            SlashdotRule,
		StaticBaselines: StaticSets(),
		TrackResources:  true,
		DecisionPeriod:  24,
	})
}

// GalleryExperiment reproduces §IV-C: Figs. 15 and 16.
func GalleryExperiment() (*Result, error) {
	return Run(workload.NewGallery(), Config{
		Rule:            GalleryRule,
		StaticBaselines: StaticSets(),
		TrackResources:  true,
		DecisionPeriod:  24,
	})
}

// AddProviderExperiment reproduces §IV-D (Fig. 17): a 40 MB backup
// every 5 hours for 4 weeks; CheapStor registers at hour 400 and Scalia
// migrates the stored objects. The migration horizon is the objects'
// effective lifetime (backups live for months), which is what makes the
// slow-payback storage saving worth the chunk move, as in the paper.
func AddProviderExperiment() (*Result, error) {
	return Run(workload.NewBackup(600), Config{
		Rule:             BackupRule,
		StaticBaselines:  StaticSets(),
		TrackResources:   true,
		DecisionPeriod:   24,
		MigrationHorizon: 24 * 180, // six months of expected backup lifetime
		MigrationBilling: BillOpsOnly,
		Arrivals: []Arrival{{
			Spec: cloud.CheapStorProvider(), AtPeriod: 400,
		}},
	})
}

// CustomRule is the rule applied to registry workloads run through
// CustomExperiment: the Slashdot scenario's constraints (which every
// paper provider set can satisfy), derived so the two never drift.
var CustomRule = func() core.Rule {
	r := SlashdotRule
	r.Name = "custom"
	return r
}()

// CustomExperiment runs any registered workload (see workload.Names)
// through the standard Scalia-versus-static comparison.
func CustomExperiment(workloadName string) (*Result, error) {
	sc, err := workload.New(workloadName)
	if err != nil {
		return nil, err
	}
	return CustomRun(sc)
}

// CustomRun runs an arbitrary scenario — registered, combined, or
// replayed from a trace — through the same comparison.
func CustomRun(sc workload.Scenario) (*Result, error) {
	return Run(sc, Config{
		Rule:            CustomRule,
		StaticBaselines: StaticSets(),
		TrackResources:  true,
		DecisionPeriod:  24,
	})
}

// RepairStaticSet is the fixed comparison set of §IV-E.
var RepairStaticSet = StaticSet{Index: 2, Names: []string{
	cloud.NameS3High, cloud.NameS3Low, cloud.NameAzure,
}}

// RepairExperiment reproduces §IV-E (Fig. 18): 40 MB backups every 5
// hours over 7.5 days, S3(l) unreachable during hours 60-120, Scalia
// repairing actively versus the fixed set [S3(h), S3(l), Azu].
// It returns the full result (with Scalia's cumulative price series)
// plus the static set's cumulative series.
func RepairExperiment() (*Result, []float64, error) {
	scenario := workload.NewBackup(180)
	cfg := Config{
		Rule:             RepairRule,
		DecisionPeriod:   24,
		ActiveRepair:     true,
		TrackResources:   true,
		MigrationHorizon: 24 * 180,
		MigrationBilling: BillOpsOnly,
		Outages:          []Outage{{Provider: cloud.NameS3Low, From: 60, To: 120}},
	}
	res, err := Run(scenario, cfg)
	if err != nil {
		return nil, nil, err
	}
	static, err := StaticCumulative(scenario, cfg, RepairStaticSet)
	if err != nil {
		return nil, nil, err
	}
	return res, static, nil
}
