// Command scalia-server runs a Scalia broker deployment behind the
// versioned v1 HTTP gateway. Requests round-robin across all engines of
// all datacenters; object bodies stream stripe by stripe in both
// directions, and a client disconnect cancels the in-flight chunk
// fan-out.
//
// Object routes:
//
//	PUT    /v1/objects/{container}/{key}  store (Content-Type = MIME,
//	       X-Scalia-TTL-Hours = lifetime hint, If-Match conditional)
//	GET    /v1/objects/{container}/{key}  fetch (If-None-Match -> 304,
//	       Range: bytes=... -> 206 served stripe-aligned)
//	HEAD   /v1/objects/{container}/{key}  metadata only
//	DELETE /v1/objects/{container}/{key}  delete (If-Match conditional)
//	GET    /v1/objects/{container}?prefix=&limit=&after=  paginated list
//	POST   /v1/objects/{container}/{key}?uploads        open multipart upload
//	PUT    /v1/objects/{container}/{key}?partNumber=N&uploadId=ID  stage part
//	POST   /v1/objects/{container}/{key}?uploadId=ID    complete upload
//	GET    /v1/objects/{container}/{key}?uploadId=ID    list staged parts
//	DELETE /v1/objects/{container}/{key}?uploadId=ID    abort upload
//
// Admin routes:
//
//	GET/POST /v1/providers, DELETE /v1/providers/{name}
//	PUT  /v1/rules/{container}
//	POST /v1/optimize, POST /v1/repair?policy=wait|active
//	GET  /v1/stats  (planner hit/miss, optimizer, usage/cost counters,
//	     stripe-cache and read-path counters)
//
// The default deployment brokers across the five simulated providers of
// the paper's Fig. 3 and runs the periodic optimization procedure in
// the background (default every 5 minutes, as in §III-A3). The typed
// scalia/client package speaks this wire protocol.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"scalia"
	"scalia/internal/engine"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cacheMB := flag.Int64("cache-mb", 256, "per-datacenter cache size (MB)")
	optimizeEvery := flag.Duration("optimize-every", 5*time.Minute,
		"periodic optimization interval")
	periodHours := flag.Float64("period-hours", 1, "statistics sampling period (hours)")
	stripeMB := flag.Int64("stripe-mb", 4, "streaming stripe size (MB)")
	enginesPerDC := flag.Int("engines-per-dc", 2, "stateless engines per datacenter")
	readParallelism := flag.Int("read-parallelism", engine.DefaultReadParallelism,
		"concurrent chunk fetches per stripe read (negative = sequential)")
	prefetchStripes := flag.Int("prefetch-stripes", engine.DefaultPrefetchStripes,
		"stripes decoded ahead of the client on streaming GETs (negative = none)")
	writeDepth := flag.Int("write-pipeline-depth", engine.DefaultWritePipelineDepth,
		"stripes a streaming write keeps in flight at once (negative = sequential)")
	maxBufferMB := flag.Int64("max-buffer-mb", engine.DefaultMaxBufferBytes>>20,
		"total stripe buffers streaming reads AND writes may hold at once (MB; negative = unbounded)")
	maxReadBufferMB := flag.Int64("max-read-buffer-mb", 0,
		"deprecated alias of -max-buffer-mb; consulted only when -max-buffer-mb is left at its default")
	multipartTTL := flag.Duration("multipart-ttl", 24*time.Hour,
		"evict multipart upload sessions idle this long and GC their staged chunks (0 = never)")
	reoptWorkers := flag.Int("reopt-workers", 2,
		"background workers draining the event-driven reoptimization queue (0 = enqueue only)")
	reoptQueue := flag.Int("reopt-queue", engine.DefaultReoptQueueDepth,
		"bound on queued placement invalidations (overflow is dropped and left to periodic optimize)")
	swapBatch := flag.Int("swap-batch", engine.DefaultSwapBatchSize,
		"prepared chunk swaps batched per provider write during repair (negative = unbatched)")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	accessLog := flag.Bool("access-log", true, "log one structured line per gateway request")
	flag.Parse()

	maxBuffer := *maxBufferMB << 20
	if *maxBufferMB == engine.DefaultMaxBufferBytes>>20 && *maxReadBufferMB != 0 {
		maxBuffer = *maxReadBufferMB << 20
		if *maxReadBufferMB < 0 {
			maxBuffer = -1
		}
	} else if *maxBufferMB < 0 {
		maxBuffer = -1
	}
	client, err := scalia.New(scalia.Options{
		EnginesPerDC:       *enginesPerDC,
		CacheBytes:         *cacheMB << 20,
		PeriodHours:        *periodHours,
		StripeBytes:        *stripeMB << 20,
		ReadParallelism:    *readParallelism,
		PrefetchStripes:    *prefetchStripes,
		WritePipelineDepth: *writeDepth,
		MaxBufferBytes:     maxBuffer,
		ReoptWorkers:       *reoptWorkers,
		ReoptQueueDepth:    *reoptQueue,
		SwapBatchSize:      *swapBatch,
		Clock:              engine.NewWallClock(*periodHours),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	go func() {
		ticker := time.NewTicker(*optimizeEvery)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
			}
			rep, err := client.Optimize(ctx)
			if err != nil {
				log.Printf("optimize: %v", err)
				continue
			}
			log.Printf("optimize: leader=%s scanned=%d trend-changed=%d migrated=%d planner-hits=%d",
				rep.Leader, rep.Scanned, rep.TrendChanged, rep.Migrated, rep.PlannerHits)
		}
	}()

	if *multipartTTL > 0 {
		go func() {
			// Sweeping at a quarter of the TTL bounds over-retention to
			// 1.25x the deadline without busy-scanning the table.
			every := *multipartTTL / 4
			if every > time.Minute {
				every = time.Minute
			}
			ticker := time.NewTicker(every)
			defer ticker.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-ticker.C:
				}
				if n := client.Broker().SweepExpiredUploads(*multipartTTL); n > 0 {
					log.Printf("multipart-gc: evicted %d abandoned upload sessions (ttl %s)", n, multipartTTL)
				}
			}
		}()
	}

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	gw := client.NewGateway()
	if *accessLog {
		gw.Logger = logger
	}
	if *pprofOn {
		gw.EnablePprof()
	}

	logger.Info("scalia-server starting",
		"addr", *addr,
		"engines", len(client.Broker().Engines()),
		"enginesPerDC", *enginesPerDC,
		"stripeBytes", *stripeMB<<20,
		"cacheBytes", *cacheMB<<20,
		"bufferBytes", maxBuffer,
		"readParallelism", *readParallelism,
		"prefetchStripes", *prefetchStripes,
		"writePipelineDepth", *writeDepth,
		"optimizeEvery", optimizeEvery.String(),
		"multipartTTL", multipartTTL.String(),
		"periodHours", *periodHours,
		"pprof", *pprofOn,
		"providers", "Fig. 3 simulated set")

	srv := &http.Server{Addr: *addr, Handler: gw}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()

	select {
	case err := <-errCh:
		log.Fatal(err) // bind failure etc.; never ErrServerClosed here
	case <-ctx.Done():
	}

	// Drain in-flight requests and report how long the drain took: slow
	// drains surface stuck streams before a supervisor's SIGKILL does.
	drainStart := time.Now()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	drainErr := srv.Shutdown(shutdownCtx)
	if err := <-errCh; !errors.Is(err, http.ErrServerClosed) {
		logger.Error("serve", "err", err)
	}
	if drainErr != nil {
		logger.Error("scalia-server shutdown: drain timed out",
			"drain", time.Since(drainStart).String(), "err", drainErr)
		return
	}
	logger.Info("scalia-server shut down cleanly",
		"drain", time.Since(drainStart).String())
}
