// Quickstart: store, read and delete an object through the Scalia
// broker, inspect the placement the engine chose, and watch the
// optimizer react to a changing access pattern.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"

	"scalia"
	"scalia/internal/engine"
)

func main() {
	ctx := context.Background()
	clock := engine.NewSimClock()
	client, err := scalia.New(scalia.Options{
		CacheBytes: 64 << 20,
		Clock:      clock,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	// Store a picture under a rule requiring 99.99% availability and
	// tolerating full vendor lock-in.
	payload := bytes.Repeat([]byte("cat picture bytes "), 2000)
	meta, err := client.Put(ctx, "pictures", "cat.gif", payload,
		scalia.WithMIME("image/gif"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stored %q: %d bytes, erasure (m=%d, n=%d)\n",
		meta.Key, meta.Size, meta.M, len(meta.Chunks))
	fmt.Printf("chunk placement: %v\n", meta.Chunks)

	// Read it back (first read reconstructs from chunks and fills the
	// cache; the second is served from the cache).
	data, _, err := client.Get(ctx, "pictures", "cat.gif")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read back %d bytes, intact: %v\n", len(data), bytes.Equal(data, payload))

	// Make the object popular and let the periodic optimization migrate
	// it to a read-optimized provider set.
	for hour := 0; hour < 6; hour++ {
		clock.Advance(1)
		for i := 0; i < 200; i++ {
			if _, _, err := client.Get(ctx, "pictures", "cat.gif"); err != nil {
				log.Fatal(err)
			}
		}
		rep, err := client.Optimize(ctx)
		if err != nil {
			log.Fatal(err)
		}
		if rep.Migrated > 0 {
			fmt.Printf("hour %d: optimizer migrated the object (leader %s)\n", hour, rep.Leader)
		}
		client.AccrueStorage(1)
	}
	if p, ok := client.CurrentPlacement("pictures", "cat.gif"); ok {
		fmt.Printf("placement after the flash crowd: %v\n", p)
	}
	fmt.Printf("total provider spend so far: %.6f USD\n", client.TotalCost())

	if err := client.Delete(ctx, "pictures", "cat.gif"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("deleted; chunks removed from all providers")
}
