// Package erasure implements systematic Reed–Solomon erasure coding over
// GF(2^8), the (m,n) redundant striping scheme Scalia uses to place an
// object's chunks across storage providers: any m of the n chunks suffice
// to rebuild the original data (paper §II-A).
//
// The implementation is self-contained (standard library only): GF(2^8)
// arithmetic with log/exp tables, a Vandermonde-derived systematic
// generator matrix, and Gaussian-elimination decoding. The bulk slice
// kernels are table-driven (see kernel.go) and fan large stripes out
// across cores; build with -tags erasure_ref to route them through the
// textbook single-byte scalar path instead, which serves as the
// differential-test oracle.
package erasure

// GF(2^8) with the primitive polynomial x^8 + x^4 + x^3 + x^2 + 1 (0x11d),
// the same field used by most production Reed–Solomon codecs.
const fieldPoly = 0x11d

// fieldSize is the number of elements in GF(2^8).
const fieldSize = 256

// kernBlock is the unroll granularity of the bulk slice kernels and
// the alignment of parallel span boundaries (one cache line).
const kernBlock = 64

var (
	expTable [2 * fieldSize]byte // exp[i] = generator^i, doubled to avoid mod in mul
	logTable [fieldSize]int

	// mulTable[c] is the full 256-entry product table of the constant c:
	// mulTable[c][x] = c*x. One 64 KiB table shared by every Coder gives
	// each generator-matrix coefficient its precomputed table for free —
	// a coder "constructs" its per-coefficient tables by taking
	// &mulTable[coeff] — and turns the hot slice kernels into a single
	// branch-free lookup per byte (a byte index into a [256]byte array
	// needs no bounds check), replacing the two log/exp lookups plus
	// zero-test of the scalar path.
	mulTable [fieldSize][fieldSize]byte
)

func init() {
	x := 1
	for i := 0; i < fieldSize-1; i++ {
		expTable[i] = byte(x)
		logTable[x] = i
		x <<= 1
		if x&0x100 != 0 {
			x ^= fieldPoly
		}
	}
	// Replicate so gfMul can index exp[logA+logB] without a modulo.
	for i := fieldSize - 1; i < 2*fieldSize; i++ {
		expTable[i] = expTable[i-(fieldSize-1)]
	}
	// Product tables; row 0 and column 0 stay zero.
	for c := 1; c < fieldSize; c++ {
		lc := logTable[c]
		t := &mulTable[c]
		for v := 1; v < fieldSize; v++ {
			t[v] = expTable[lc+logTable[v]]
		}
	}
}

// gfAdd returns a+b in GF(2^8); addition is XOR.
func gfAdd(a, b byte) byte { return a ^ b }

// gfMul returns a*b in GF(2^8).
func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return expTable[logTable[a]+logTable[b]]
}

// gfDiv returns a/b in GF(2^8). Division by zero panics: it indicates a
// programming error in matrix inversion, not a recoverable condition.
func gfDiv(a, b byte) byte {
	if b == 0 {
		panic("erasure: division by zero in GF(2^8)")
	}
	if a == 0 {
		return 0
	}
	d := logTable[a] - logTable[b]
	if d < 0 {
		d += fieldSize - 1
	}
	return expTable[d]
}

// gfInv returns the multiplicative inverse of a in GF(2^8).
func gfInv(a byte) byte { return gfDiv(1, a) }

// gfExp returns a^p in GF(2^8).
func gfExp(a byte, p int) byte {
	if p == 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	l := (logTable[a] * p) % (fieldSize - 1)
	if l < 0 {
		l += fieldSize - 1
	}
	return expTable[l]
}

// mulSlice sets out[i] = c*in[i] for all i.
func mulSlice(c byte, in, out []byte) {
	if c == 0 {
		for i := range out {
			out[i] = 0
		}
		return
	}
	lc := logTable[c]
	for i, v := range in {
		if v == 0 {
			out[i] = 0
		} else {
			out[i] = expTable[lc+logTable[v]]
		}
	}
}

// mulAddSlice sets out[i] ^= c*in[i] for all i.
func mulAddSlice(c byte, in, out []byte) {
	if c == 0 {
		return
	}
	lc := logTable[c]
	for i, v := range in {
		if v != 0 {
			out[i] ^= expTable[lc+logTable[v]]
		}
	}
}
