package cache

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

func TestLRUBasic(t *testing.T) {
	c := NewLRU(100)
	c.Put("a", []byte("hello"))
	got, ok := c.Get("a")
	if !ok || !bytes.Equal(got, []byte("hello")) {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	if _, ok := c.Get("missing"); ok {
		t.Fatal("missing key must miss")
	}
}

func TestLRUReturnsCopies(t *testing.T) {
	c := NewLRU(100)
	data := []byte("abc")
	c.Put("k", data)
	data[0] = 'X'
	got, _ := c.Get("k")
	if got[0] != 'a' {
		t.Fatal("Put must copy")
	}
	got[1] = 'Y'
	again, _ := c.Get("k")
	if again[1] != 'b' {
		t.Fatal("Get must copy")
	}
}

func TestLRUEvictsOldestFirst(t *testing.T) {
	c := NewLRU(10)
	c.Put("a", make([]byte, 4))
	c.Put("b", make([]byte, 4))
	c.Get("a")                  // a becomes most recent
	c.Put("c", make([]byte, 4)) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a must survive")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("c must be present")
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
}

func TestLRUCapacityAccounting(t *testing.T) {
	c := NewLRU(10)
	c.Put("a", make([]byte, 6))
	c.Put("a", make([]byte, 2)) // overwrite shrinks usage
	if c.UsedBytes() != 2 {
		t.Fatalf("UsedBytes = %d, want 2", c.UsedBytes())
	}
	c.Put("b", make([]byte, 8))
	if c.UsedBytes() != 10 || c.Len() != 2 {
		t.Fatalf("used=%d len=%d", c.UsedBytes(), c.Len())
	}
}

func TestLRUOversizedObjectSkipped(t *testing.T) {
	c := NewLRU(5)
	c.Put("big", make([]byte, 6))
	if c.Len() != 0 {
		t.Fatal("oversized object must not be cached")
	}
}

func TestLRUDisabled(t *testing.T) {
	c := NewLRU(0)
	c.Put("k", []byte("x"))
	if _, ok := c.Get("k"); ok {
		t.Fatal("zero-capacity cache must store nothing")
	}
}

func TestLRUInvalidate(t *testing.T) {
	c := NewLRU(100)
	c.Put("k", []byte("x"))
	c.Invalidate("k")
	if _, ok := c.Get("k"); ok {
		t.Fatal("invalidated key must miss")
	}
	if c.UsedBytes() != 0 {
		t.Fatalf("UsedBytes = %d after invalidate", c.UsedBytes())
	}
	// Invalidating a missing key is a no-op.
	c.Invalidate("missing")
}

func TestLRUHitMissCounters(t *testing.T) {
	c := NewLRU(100)
	c.Put("k", []byte("x"))
	c.Get("k")
	c.Get("k")
	c.Get("nope")
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("hits=%d misses=%d", st.Hits, st.Misses)
	}
}

func TestLRUConcurrent(t *testing.T) {
	c := NewLRU(1 << 20)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				key := fmt.Sprintf("k%d", j%20)
				c.Put(key, bytes.Repeat([]byte{byte(id)}, 100))
				c.Get(key)
				if j%50 == 0 {
					c.Invalidate(key)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.UsedBytes() < 0 || c.UsedBytes() > 1<<20 {
		t.Fatalf("UsedBytes out of bounds: %d", c.UsedBytes())
	}
}

func TestStripeGetPut(t *testing.T) {
	c := NewLRU(1 << 10)
	c.PutStripe("c/k", 0, []byte("stripe-zero"))
	c.PutStripe("c/k", 3, []byte("stripe-three"))
	if got, ok := c.GetStripe("c/k", 3); !ok || string(got) != "stripe-three" {
		t.Fatalf("GetStripe(3) = %q, %v", got, ok)
	}
	if _, ok := c.GetStripe("c/k", 1); ok {
		t.Fatal("missing stripe must miss")
	}
	// Stripes of different objects are distinct entries.
	c.PutStripe("c/other", 3, []byte("other"))
	if got, _ := c.GetStripe("c/k", 3); string(got) != "stripe-three" {
		t.Fatal("stripe keys must be object-scoped")
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3 stripes", c.Len())
	}
}

func TestInvalidateRemovesAllStripes(t *testing.T) {
	c := NewLRU(1 << 10)
	for s := 0; s < 5; s++ {
		c.PutStripe("c/k", s, []byte{byte(s), 1, 2, 3})
	}
	c.PutStripe("c/other", 0, []byte("stay"))
	c.Invalidate("c/k")
	for s := 0; s < 5; s++ {
		if _, ok := c.GetStripe("c/k", s); ok {
			t.Fatalf("stripe %d survived object invalidation", s)
		}
	}
	if _, ok := c.GetStripe("c/other", 0); !ok {
		t.Fatal("unrelated object must survive")
	}
	if c.UsedBytes() != 4 {
		t.Fatalf("UsedBytes = %d after invalidation, want 4", c.UsedBytes())
	}
}

func TestStripeEvictionUpdatesObjectIndex(t *testing.T) {
	c := NewLRU(10)
	c.PutStripe("o", 0, make([]byte, 4))
	c.PutStripe("o", 1, make([]byte, 4))
	c.PutStripe("o", 2, make([]byte, 4)) // evicts stripe 0
	if _, ok := c.GetStripe("o", 0); ok {
		t.Fatal("stripe 0 should have been evicted")
	}
	// Invalidation after partial eviction must not panic and must drop
	// the surviving stripes.
	c.Invalidate("o")
	if c.Len() != 0 || c.UsedBytes() != 0 {
		t.Fatalf("len=%d used=%d after invalidate", c.Len(), c.UsedBytes())
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
}

func TestClusterStripeOpsAndStats(t *testing.T) {
	cc := NewCluster()
	cc.AddDatacenter("dc1", 1000)
	cc.AddDatacenter("dc2", 1000)
	cc.PutStripe("dc1", "c/k", 0, []byte("a"))
	cc.PutStripe("dc1", "c/k", 1, []byte("b"))
	cc.PutStripe("dc2", "c/k", 0, []byte("a"))
	if _, ok := cc.GetStripe("dc1", "c/k", 1); !ok {
		t.Fatal("dc1 stripe 1 must hit")
	}
	if _, ok := cc.GetStripe("dc2", "c/k", 1); ok {
		t.Fatal("dc2 stripe 1 must miss")
	}
	cc.InvalidateAll("c/k")
	for _, dc := range []string{"dc1", "dc2"} {
		for s := 0; s < 2; s++ {
			if _, ok := cc.GetStripe(dc, "c/k", s); ok {
				t.Fatalf("%s stripe %d survived InvalidateAll", dc, s)
			}
		}
	}
	st := cc.Stats()
	if st.Hits != 1 || st.Entries != 0 || st.UsedBytes != 0 {
		t.Fatalf("cluster stats = %+v", st)
	}
	if st.Misses == 0 {
		t.Fatalf("cluster stats must aggregate misses: %+v", st)
	}
}

func TestClusterInvalidateAll(t *testing.T) {
	cc := NewCluster()
	cc.AddDatacenter("dc1", 1000)
	cc.AddDatacenter("dc2", 1000)
	cc.Put("dc1", "k", []byte("v"))
	cc.Put("dc2", "k", []byte("v"))
	cc.InvalidateAll("k")
	if _, ok := cc.Get("dc1", "k"); ok {
		t.Fatal("dc1 must be invalidated")
	}
	if _, ok := cc.Get("dc2", "k"); ok {
		t.Fatal("dc2 must be invalidated")
	}
}

func TestClusterLocalFill(t *testing.T) {
	cc := NewCluster()
	cc.AddDatacenter("dc1", 1000)
	cc.AddDatacenter("dc2", 1000)
	cc.Put("dc1", "k", []byte("v"))
	if _, ok := cc.Get("dc2", "k"); ok {
		t.Fatal("reads fill only the local datacenter")
	}
	if got, ok := cc.Get("dc1", "k"); !ok || string(got) != "v" {
		t.Fatal("local read must hit")
	}
}

func TestClusterUnknownDatacenter(t *testing.T) {
	cc := NewCluster()
	if _, ok := cc.Get("ghost", "k"); ok {
		t.Fatal("unknown datacenter must miss")
	}
	cc.Put("ghost", "k", []byte("v")) // must not panic
}

func TestClusterStatsByDC(t *testing.T) {
	cc := NewCluster()
	cc.AddDatacenter("dc1", 1000)
	cc.AddDatacenter("dc2", 1000)
	cc.Put("dc1", "k", []byte("vvvv"))
	cc.Get("dc1", "k") // hit
	cc.Get("dc2", "k") // miss

	by := cc.StatsByDC()
	if len(by) != 2 {
		t.Fatalf("got %d datacenters, want 2", len(by))
	}
	if by["dc1"].Hits != 1 || by["dc1"].Entries != 1 || by["dc1"].UsedBytes != 4 {
		t.Errorf("dc1 stats = %+v", by["dc1"])
	}
	if by["dc2"].Misses != 1 || by["dc2"].Entries != 0 {
		t.Errorf("dc2 stats = %+v", by["dc2"])
	}
	// The per-DC split must sum to the aggregate.
	agg := cc.Stats()
	var sum Stats
	for _, s := range by {
		sum.add(s)
	}
	if sum != agg {
		t.Errorf("per-DC sum %+v != aggregate %+v", sum, agg)
	}
}
