package core

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"scalia/internal/cloud"
	"scalia/internal/stats"
)

func TestPlannerCachesPerEpochAndRule(t *testing.T) {
	p := NewPlanner(1, false)
	specs := cloud.PaperProviders()
	rules := PaperRules()
	load := stats.Summary{Periods: 1, Reads: 5, BytesOut: 5e6, StorageBytes: 1e6}

	for round := 0; round < 10; round++ {
		for _, r := range rules {
			if _, err := p.Best(1, specs, r, load, 0, nil); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := p.Stats()
	if st.Misses != uint64(len(rules)) {
		t.Fatalf("misses = %d, want one per rule (%d)", st.Misses, len(rules))
	}
	if st.Hits != uint64(9*len(rules)) {
		t.Fatalf("hits = %d, want %d", st.Hits, 9*len(rules))
	}
}

func TestPlannerEpochInvalidates(t *testing.T) {
	p := NewPlanner(1, false)
	rule := Rule{Durability: 0.99999, Availability: 0.9999, LockIn: 1}
	load := stats.Summary{Periods: 1, StorageBytes: 40e9}

	before, err := p.Best(1, cloud.PaperProviders(), rule, load, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if before.Placement.Has(cloud.NameCheapStor) {
		t.Fatal("CheapStor not in the market yet")
	}
	// CheapStor arrives: new epoch, new market. The cached search for the
	// old epoch must not leak into the answer.
	grown := append(cloud.PaperProviders(), cloud.CheapStorProvider())
	after, err := p.Best(2, grown, rule, load, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !after.Placement.Has(cloud.NameCheapStor) {
		t.Fatalf("placement %v ignores the cheaper arrival after the epoch bump", after.Placement)
	}
	st := p.Stats()
	if st.Misses != 2 {
		t.Fatalf("misses = %d, want 2 (one per epoch)", st.Misses)
	}
}

func TestPlannerMatchesBestPlacement(t *testing.T) {
	for _, pruned := range []bool{false, true} {
		p := NewPlanner(1, pruned)
		rule := Rule{Durability: 0.99999, Availability: 0.9999, LockIn: 1}
		rng := rand.New(rand.NewSource(7))
		for trial := 0; trial < 100; trial++ {
			load := stats.Summary{
				Periods:      1,
				Reads:        float64(rng.Intn(200)),
				Writes:       float64(rng.Intn(3)),
				StorageBytes: float64(1+rng.Intn(100)) * 1e6,
			}
			load.BytesOut = load.Reads * load.StorageBytes
			load.BytesIn = load.Writes * load.StorageBytes

			want, err := BestPlacement(cloud.PaperProviders(), rule, load, Options{Pruned: pruned})
			if err != nil {
				t.Fatal(err)
			}
			got, err := p.Best(1, cloud.PaperProviders(), rule, load, 0, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Placement.Equal(want.Placement) || got.Price != want.Price {
				t.Fatalf("pruned=%v trial %d: planner %v ($%g) != direct %v ($%g)",
					pruned, trial, got.Placement, got.Price, want.Placement, want.Price)
			}
		}
	}
}

func TestPlannerCachesInfeasibleRule(t *testing.T) {
	p := NewPlanner(1, false)
	weak := []cloud.Spec{{Name: "w", Durability: 0.5, Availability: 0.5}}
	rule := Rule{Durability: 0.999999, Availability: 0.99, LockIn: 1}
	for i := 0; i < 3; i++ {
		if _, err := p.Best(1, weak, rule, stats.Summary{Periods: 1}, 0, nil); !errors.Is(err, ErrNoProviders) {
			t.Fatalf("err = %v, want ErrNoProviders", err)
		}
	}
	if st := p.Stats(); st.Misses != 1 || st.Hits != 2 {
		t.Fatalf("infeasible rule not cached: %+v", st)
	}
}

func TestPlannerConcurrent(t *testing.T) {
	p := NewPlanner(1, false)
	specs := cloud.PaperProviders()
	rules := PaperRules()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				epoch := uint64(1 + i/25) // epoch moves mid-run
				rule := rules[(g+i)%len(rules)]
				load := stats.Summary{Periods: 1, Reads: float64(i), StorageBytes: 1e6}
				if _, err := p.Best(epoch, specs, rule, load, 0, nil); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestSearchAppliesCapacityAtEvalTime(t *testing.T) {
	// Two providers, one tiny: the prepared search is object-agnostic,
	// and the same instance must serve both a small object (fits
	// everywhere) and a large one (must avoid the full provider).
	specs := []cloud.Spec{
		{Name: "big", Durability: 0.999999, Availability: 0.999,
			Pricing: cloud.Pricing{StorageGBMonth: 0.2}},
		{Name: "full", Durability: 0.999999, Availability: 0.999,
			Pricing: cloud.Pricing{StorageGBMonth: 0.01}},
		{Name: "mid", Durability: 0.999999, Availability: 0.999,
			Pricing: cloud.Pricing{StorageGBMonth: 0.1}},
	}
	rule := Rule{Durability: 0.99999, Availability: 0.99, LockIn: 1}
	search, err := NewSearch(specs, rule, Options{})
	if err != nil {
		t.Fatal(err)
	}
	free := map[string]int64{"full": 100}
	load := stats.Summary{Periods: 1, StorageBytes: 1e6}

	small := search.Best(load, 50, free)
	if !small.Feasible || !small.Placement.Has("full") {
		t.Fatalf("small object should use the cheap provider: %v", small.Placement)
	}
	large := search.Best(load, 1<<20, free)
	if !large.Feasible {
		t.Fatal("large object must still place somewhere")
	}
	if large.Placement.Has("full") {
		t.Fatalf("large object placed on a full provider: %v", large.Placement)
	}
}

func TestSearchAppliesChunkLimitAtEvalTime(t *testing.T) {
	specs := []cloud.Spec{
		{Name: "a", Durability: 0.999999, Availability: 0.999,
			Pricing: cloud.Pricing{StorageGBMonth: 0.01}, MaxChunkBytes: 1000},
		{Name: "b", Durability: 0.999999, Availability: 0.999,
			Pricing: cloud.Pricing{StorageGBMonth: 0.1}},
		{Name: "c", Durability: 0.999999, Availability: 0.999,
			Pricing: cloud.Pricing{StorageGBMonth: 0.2}},
	}
	rule := Rule{Durability: 0.99999, Availability: 0.99, LockIn: 1}
	search, err := NewSearch(specs, rule, Options{})
	if err != nil {
		t.Fatal(err)
	}
	load := stats.Summary{Periods: 1, StorageBytes: 1e6}
	res := search.Best(load, 1<<20, nil)
	if !res.Feasible {
		t.Fatal("object must place on the unconstrained providers")
	}
	if chunk := (int64(1<<20) + int64(res.Placement.M) - 1) / int64(res.Placement.M); res.Placement.Has("a") && chunk > 1000 {
		t.Fatalf("placement %v violates a's chunk limit (chunk %d)", res.Placement, chunk)
	}
}

func TestRuleFingerprint(t *testing.T) {
	a := Rule{Name: "x", Durability: 0.999, Availability: 0.99, LockIn: 0.5,
		Zones: []cloud.Zone{cloud.ZoneUS, cloud.ZoneEU}}
	b := Rule{Name: "y", Durability: 0.999, Availability: 0.99, LockIn: 0.5,
		Zones: []cloud.Zone{cloud.ZoneEU, cloud.ZoneUS}}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("fingerprint must ignore display name and zone order")
	}
	c := b
	c.LockIn = 0.25
	if b.Fingerprint() == c.Fingerprint() {
		t.Fatal("fingerprint must reflect lock-in")
	}
}
