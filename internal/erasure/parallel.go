package erasure

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Span-parallel kernel dispatch. Large stripes are split into
// contiguous byte spans and fanned out across a small pool of
// persistent workers; each worker computes ALL output rows for its
// span, so every input byte a worker touches is read while hot in its
// cache. Small stripes stay single-threaded: below the threshold the
// handoff costs more than the arithmetic it hides. The workers are
// long-lived and the dispatch path recycles its WaitGroups, so
// parallel encode allocates nothing in steady state.

// defaultSpanThreshold is the minimum number of bytes a worker must own
// before encode/reconstruct/verify fan out. 128 KiB keeps a worker's
// full input+output working set around L2 size at common (m,n).
const defaultSpanThreshold = 128 << 10

var spanThresholdBytes atomic.Int64

func init() { spanThresholdBytes.Store(defaultSpanThreshold) }

// SpanThreshold returns the current parallel span threshold in bytes.
func SpanThreshold() int { return int(spanThresholdBytes.Load()) }

// SetSpanThreshold sets the minimum per-worker span size in bytes for
// parallel encode/reconstruct/verify. Chunks smaller than twice the
// threshold are processed single-threaded. A non-positive value
// disables parallelism entirely. Safe for concurrent use; intended for
// deployment tuning and tests.
func SetSpanThreshold(bytes int) { spanThresholdBytes.Store(int64(bytes)) }

// spanWorkerCount returns how many workers a chunk of size bytes
// should fan out over: enough that each owns at least the threshold,
// capped at the core count. 1 means stay serial.
func spanWorkerCount(size int) int {
	t := SpanThreshold()
	if t <= 0 || size < 2*t {
		return 1
	}
	w := size / t
	if p := runtime.GOMAXPROCS(0); w > p {
		w = p
	}
	return w
}

// rsJob is one output row of a span-parallel matrix-vector product:
// out = sum_k row[k] * in[k], assigned (not accumulated) on the first
// term so dirty output buffers need no pre-zeroing.
type rsJob struct {
	row []byte   // coefficients, one per input
	in  [][]byte // source chunks, len(row) of them
	out []byte
}

// spanTask is one worker's share of a parallel call: either all rows of
// a runJobs batch over one span, or an arbitrary fn (forEachSpan).
type spanTask struct {
	jobs   []rsJob
	fn     func(lo, hi int)
	lo, hi int
	done   *sync.WaitGroup
}

var (
	spanWorkersOnce sync.Once
	spanWork        chan spanTask
	wgPool          = sync.Pool{New: func() any { return new(sync.WaitGroup) }}
)

// startSpanWorkers lazily launches the persistent worker pool, sized to
// the core count at first parallel use.
func startSpanWorkers() {
	spanWork = make(chan spanTask, 4*runtime.GOMAXPROCS(0))
	for w := runtime.GOMAXPROCS(0); w > 0; w-- {
		go func() {
			for t := range spanWork {
				if t.fn != nil {
					t.fn(t.lo, t.hi)
				} else {
					runJobSpan(t.jobs, t.lo, t.hi)
				}
				t.done.Done()
			}
		}()
	}
}

// runJobs computes every job over [0, size), fanning spans out to the
// worker pool when size warrants it. All jobs share the same input
// length, and outputs are disjoint from inputs.
func runJobs(jobs []rsJob, size int) {
	if len(jobs) == 0 {
		return
	}
	workers := spanWorkerCount(size)
	if workers <= 1 {
		runJobSpan(jobs, 0, size)
		return
	}
	spanWorkersOnce.Do(startSpanWorkers)
	span := (size/workers + kernBlock - 1) &^ (kernBlock - 1)
	wg := wgPool.Get().(*sync.WaitGroup)
	for lo := 0; lo < size; lo += span {
		wg.Add(1)
		spanWork <- spanTask{jobs: jobs, lo: lo, hi: min(lo+span, size), done: wg}
	}
	wg.Wait()
	wgPool.Put(wg)
}

// forEachSpan runs fn over [0, size) split into near-equal spans
// aligned to the kernel block size, through the worker pool when size
// warrants it. fn must be safe to call concurrently on disjoint spans.
func forEachSpan(size int, fn func(lo, hi int)) {
	workers := spanWorkerCount(size)
	if workers <= 1 {
		fn(0, size)
		return
	}
	spanWorkersOnce.Do(startSpanWorkers)
	span := (size/workers + kernBlock - 1) &^ (kernBlock - 1)
	wg := wgPool.Get().(*sync.WaitGroup)
	for lo := 0; lo < size; lo += span {
		wg.Add(1)
		spanWork <- spanTask{fn: fn, lo: lo, hi: min(lo+span, size), done: wg}
	}
	wg.Wait()
	wgPool.Put(wg)
}
