package engine

import (
	"fmt"
	"testing"

	"scalia/internal/core"
)

// TestClassStatsImproveFirstPlacement verifies the Fig. 6 behaviour: a
// new object has no access history, so Scalia uses the statistics of
// its class to make the first placement. After the broker observes many
// heavily-read small images, a brand-new image of the same class must be
// born on a read-optimized (low-m) set, while a fresh class with no
// statistics defaults to a write/storage-shaped placement.
func TestClassStatsImproveFirstPlacement(t *testing.T) {
	clock := NewSimClock()
	b := newTestBroker(t, Config{Clock: clock})
	e := b.Engine(0)
	rule := core.Rule{Name: "img", Durability: 0.99999, Availability: 0.9999, LockIn: 1}

	// A cold object with no class history lands on the storage-optimal
	// wide set (high m).
	coldMeta, err := e.Put(ctx, "pics", "first.gif", make([]byte, 256<<10),
		PutOptions{MIME: "image/gif", Rule: &rule})
	if err != nil {
		t.Fatal(err)
	}
	if coldMeta.M < 2 {
		t.Fatalf("cold first placement m=%d, expected a wide storage set", coldMeta.M)
	}

	// Train the class: many popular images of the same class.
	for i := 0; i < 10; i++ {
		key := fmt.Sprintf("train%d.gif", i)
		if _, err := e.Put(ctx, "pics", key, make([]byte, 256<<10),
			PutOptions{MIME: "image/gif", Rule: &rule}); err != nil {
			t.Fatal(err)
		}
	}
	for h := 0; h < 4; h++ {
		clock.Advance(1)
		for i := 0; i < 10; i++ {
			key := fmt.Sprintf("train%d.gif", i)
			for r := 0; r < 40; r++ {
				if _, _, err := e.Get(ctx, "pics", key); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	b.FlushStats()

	// A brand-new object of the trained class must be born read-optimized.
	newMeta, err := e.Put(ctx, "pics", "fresh.gif", make([]byte, 256<<10),
		PutOptions{MIME: "image/gif", Rule: &rule})
	if err != nil {
		t.Fatal(err)
	}
	if newMeta.M != 1 {
		t.Fatalf("class-informed first placement m=%d want 1 (chunks %v)",
			newMeta.M, newMeta.Chunks)
	}
	if newMeta.Class != coldMeta.Class {
		t.Fatal("same mime and size bucket must share a class")
	}

	// A different class (different size bucket) is unaffected.
	otherMeta, err := e.Put(ctx, "pics", "huge.gif", make([]byte, 8<<20),
		PutOptions{MIME: "image/gif", Rule: &rule})
	if err != nil {
		t.Fatal(err)
	}
	if otherMeta.Class == newMeta.Class {
		t.Fatal("8 MB image must classify differently from 256 KB image")
	}
}

// TestDeletionLifetimesFeedTTL: deleting objects of a class builds its
// lifetime distribution, which then bounds new objects' decision
// periods (observable through the class TTL estimate).
func TestDeletionLifetimesFeedTTL(t *testing.T) {
	clock := NewSimClock()
	b := newTestBroker(t, Config{Clock: clock})
	e := b.Engine(0)

	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("tmp%d.log", i)
		if _, err := e.Put(ctx, "logs", key, make([]byte, 1024), PutOptions{MIME: "text/log"}); err != nil {
			t.Fatal(err)
		}
	}
	clock.Advance(6) // objects live 6 hours
	for i := 0; i < 5; i++ {
		if err := e.Delete(ctx, "logs", fmt.Sprintf("tmp%d.log", i)); err != nil {
			t.Fatal(err)
		}
	}
	b.FlushStats()

	meta, err := e.Put(ctx, "logs", "new.log", make([]byte, 1024), PutOptions{MIME: "text/log"})
	if err != nil {
		t.Fatal(err)
	}
	ttl, ok := b.Stats().Classes().ExpectedTTL(meta.Class, 0)
	if !ok {
		t.Fatal("class lifetime distribution missing after deletions")
	}
	if ttl != 6 {
		t.Fatalf("expected TTL = %v, want 6 (all observed lifetimes were 6h)", ttl)
	}
}
