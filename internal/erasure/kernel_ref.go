//go:build erasure_ref

package erasure

// Scalar reference kernels: the textbook single-byte log/exp path the
// table-driven kernels (kernel.go) must match byte for byte. Building
// the whole module with -tags erasure_ref routes every encode,
// reconstruct and verify through these, turning the full test suite
// into a cross-check of everything above the kernel layer.

// kernRow computes dst = sum_k coefs[k] * ins[k][lo:hi] via the scalar
// reference path.
func kernRow(coefs []byte, ins [][]byte, lo, hi int, dst []byte) {
	if len(ins) == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	mulSlice(coefs[0], ins[0][lo:hi], dst)
	for k := 1; k < len(ins); k++ {
		mulAddSlice(coefs[k], ins[k][lo:hi], dst)
	}
}

// runJobSpan computes all jobs over one span, row at a time (the
// reference build has no fused micro-kernels).
func runJobSpan(jobs []rsJob, lo, hi int) {
	for _, j := range jobs {
		kernRow(j.row, j.in, lo, hi, j.out[lo:hi])
	}
}

// kernMul sets out[i] = c*in[i] via the scalar reference path.
func kernMul(c byte, in, out []byte) { mulSlice(c, in[:len(out)], out) }

// kernMulAdd sets out[i] ^= c*in[i] via the scalar reference path.
func kernMulAdd(c byte, in, out []byte) { mulAddSlice(c, in[:len(out)], out) }
