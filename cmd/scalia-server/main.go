// Command scalia-server runs a Scalia broker as an HTTP gateway with an
// S3-like REST interface:
//
//	PUT    /{container}/{key}   store (Content-Type, X-Scalia-TTL-Hours)
//	GET    /{container}/{key}   fetch
//	HEAD   /{container}/{key}   metadata
//	DELETE /{container}/{key}   delete
//	GET    /{container}         list keys
//
// The default deployment brokers across the five simulated providers of
// the paper's Fig. 3 and runs the periodic optimization procedure in the
// background (default every 5 minutes, as in §III-A3).
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"scalia"
	"scalia/internal/engine"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cacheMB := flag.Int64("cache-mb", 256, "per-datacenter cache size (MB)")
	optimizeEvery := flag.Duration("optimize-every", 5*time.Minute,
		"periodic optimization interval")
	periodHours := flag.Float64("period-hours", 1, "statistics sampling period (hours)")
	flag.Parse()

	client, err := scalia.New(scalia.Options{
		CacheBytes:  *cacheMB << 20,
		PeriodHours: *periodHours,
		Clock:       engine.NewWallClock(*periodHours),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	go func() {
		ticker := time.NewTicker(*optimizeEvery)
		defer ticker.Stop()
		for range ticker.C {
			rep, err := client.Optimize()
			if err != nil {
				log.Printf("optimize: %v", err)
				continue
			}
			log.Printf("optimize: leader=%s scanned=%d trend-changed=%d migrated=%d",
				rep.Leader, rep.Scanned, rep.TrendChanged, rep.Migrated)
		}
	}()

	api := engine.NewAPI(client.Broker().Engine(0))
	log.Printf("scalia-server listening on %s (providers: Fig. 3 simulated set)", *addr)
	log.Fatal(http.ListenAndServe(*addr, api))
}
