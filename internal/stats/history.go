package stats

import (
	"sort"
	"sync"
)

// History holds the access statistics H(obj) of one data object: one
// Sample per sampling period, bounded to the most recent maxPeriods
// entries. It is safe for concurrent use.
type History struct {
	mu         sync.RWMutex
	samples    map[int64]Sample
	maxPeriods int
}

// DefaultMaxHistory bounds per-object history length; at a one-hour
// sampling period this spans about three months, comfortably above the
// paper's maximum decision periods (weeks).
const DefaultMaxHistory = 2232

// NewHistory returns an empty history bounded to maxPeriods samples
// (DefaultMaxHistory if maxPeriods <= 0).
func NewHistory(maxPeriods int) *History {
	if maxPeriods <= 0 {
		maxPeriods = DefaultMaxHistory
	}
	return &History{samples: make(map[int64]Sample), maxPeriods: maxPeriods}
}

// Record merges a sample into the history at its period.
func (h *History) Record(s Sample) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cur, ok := h.samples[s.Period]
	if ok {
		cur.Merge(s)
	} else {
		cur = s
	}
	h.samples[s.Period] = cur
	if len(h.samples) > h.maxPeriods {
		h.evictOldestLocked()
	}
}

func (h *History) evictOldestLocked() {
	oldest := int64(1<<63 - 1)
	for p := range h.samples {
		if p < oldest {
			oldest = p
		}
	}
	delete(h.samples, oldest)
}

// Window returns the samples of the periods (now-n, now], oldest first.
// Periods with no recorded sample are omitted; Summarize with total = n
// treats them as zero-access periods.
func (h *History) Window(now int64, n int) []Sample {
	h.mu.RLock()
	defer h.mu.RUnlock()
	out := make([]Sample, 0, n)
	for p := now - int64(n) + 1; p <= now; p++ {
		if s, ok := h.samples[p]; ok {
			out = append(out, s)
		}
	}
	return out
}

// Summary aggregates the last n periods ending at now.
func (h *History) Summary(now int64, n int) Summary {
	return Summarize(h.Window(now, n), n)
}

// Len returns the number of recorded (non-empty) periods.
func (h *History) Len() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.samples)
}

// Span returns the number of periods covered from the oldest recorded
// sample to now (the |H_obj| available for decision-period search).
func (h *History) Span(now int64) int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	if len(h.samples) == 0 {
		return 0
	}
	oldest := int64(1<<63 - 1)
	for p := range h.samples {
		if p < oldest {
			oldest = p
		}
	}
	if oldest > now {
		return 0
	}
	return int(now - oldest + 1)
}

// Periods returns the recorded period indexes, ascending.
func (h *History) Periods() []int64 {
	h.mu.RLock()
	defer h.mu.RUnlock()
	out := make([]int64, 0, len(h.samples))
	for p := range h.samples {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// OpsSeries returns the per-period operation counts for the periods
// (now-n, now], with zeros for unrecorded periods — the input the trend
// detector consumes (Figs. 8, 9 plot this series).
func (h *History) OpsSeries(now int64, n int) []float64 {
	h.mu.RLock()
	defer h.mu.RUnlock()
	out := make([]float64, 0, n)
	for p := now - int64(n) + 1; p <= now; p++ {
		out = append(out, float64(h.samples[p].Ops()))
	}
	return out
}
