package erasure

import "sync"

// Encode scratch pooling. Every encoded stripe needs an n-chunk backing
// array plus the chunk-slice header; on the streaming write path that
// is two garbage allocations per stripe, and at production stripe sizes
// the allocator — not the Galois arithmetic — shows up first in
// BrokerPut's allocs/op. The pools below recycle both. Buffers of
// mixed deployments converge to the largest stripe in use, which is
// bounded by the deployment's configured stripe size.

var (
	// backingPool recycles chunk backing arrays. *[]byte keeps the
	// slice header off the heap on Put.
	backingPool = sync.Pool{New: func() any { b := []byte(nil); return &b }}
	// chunksPool recycles the chunk-slice headers.
	chunksPool = sync.Pool{New: func() any { c := [][]byte(nil); return &c }}
)

// EncodePooled is Encode with the chunk array and its backing drawn
// from an internal pool instead of the garbage collector. The caller
// owns every returned chunk until it hands the whole slice back via
// ReleaseChunks; after that the memory is recycled, so no chunk may be
// retained past the release (backends that keep payload references
// beyond Put's return cannot be used with the pooled path — the
// in-tree backends all copy or serialize before returning).
func (c *Coder) EncodePooled(data []byte) ([][]byte, error) {
	bp := backingPool.Get().(*[]byte)
	cp := chunksPool.Get().(*[][]byte)
	return c.encode(data, *bp, *cp)
}

// ReleaseChunks returns a chunk set obtained from EncodePooled to the
// pool. The chunks share one backing array whose full capacity is
// reachable through chunk 0, so the set is recycled wholesale.
func ReleaseChunks(chunks [][]byte) {
	if len(chunks) == 0 {
		return
	}
	b := chunks[0][:0]
	backingPool.Put(&b)
	for i := range chunks {
		chunks[i] = nil
	}
	cs := chunks[:0]
	chunksPool.Put(&cs)
}
