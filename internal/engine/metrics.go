package engine

import (
	"runtime"
	"time"

	"scalia/internal/obs"
)

// brokerMetrics is the broker's observability surface: the obs.Registry
// behind GET /metrics, the owned hot-path instruments (HTTP latency,
// stage timings, per-provider op latency, read-path counters), and
// func-backed collectors that read the counters other subsystems
// already keep — the planner cache, the stripe caches, the provider
// registry and meters, the optimizer and repair totals. /v1/stats and
// /metrics therefore report the very same bookkeeping.
type brokerMetrics struct {
	reg   *obs.Registry
	start time.Time

	// HTTP serving, observed by the gateway middleware.
	httpDur   *obs.HistogramVec // {method, route}
	httpReqs  *obs.CounterVec   // {method, route, code}
	httpBytes *obs.CounterVec   // {method, route}

	// Hot-stage timings: plan, encode, fanout, commit, fetch, decode,
	// repair, optimize.
	stageDur *obs.HistogramVec // {stage}

	// Per-provider backend calls, observed at the engine call sites
	// (wrapping cloud.Backend itself would break the failure-injection
	// type assertions tests rely on).
	providerDur  *obs.HistogramVec // {provider, op}
	providerErrs *obs.CounterVec   // {provider, op}

	// Read-path counters. These are the registry-owned source of truth;
	// Broker.ReadStats (and hence /v1/stats) reads them back out.
	readCached     *obs.Counter
	readFetched    *obs.Counter
	readPrefetched *obs.Counter
	readFallbacks  *obs.Counter

	// Write-path counters, Broker.WriteStats's source of truth.
	writeStripes *obs.Counter

	// repairIndexed counts candidate objects enumerated through the
	// provider→objects index by Repair passes — compare against
	// scalia_objects to see the O(affected) win over a full scan.
	repairIndexed *obs.Counter
}

// Metric family names, shared by the encoder output, the health
// endpoint and the bench harness.
const (
	metricHTTPDuration = "scalia_http_request_duration_seconds"
	metricProviderOp   = "scalia_provider_op_duration_seconds"
	metricStage        = "scalia_stage_duration_seconds"
)

// newBrokerMetrics builds the broker's registry. It must run after the
// broker's registry/caches/planner/engines are in place, because the
// func collectors capture b and read them at scrape time.
func newBrokerMetrics(b *Broker) *brokerMetrics {
	reg := obs.NewRegistry()
	m := &brokerMetrics{
		reg:   reg,
		start: time.Now(),

		httpDur: reg.HistogramVec(metricHTTPDuration,
			"Gateway request latency by method and route.",
			obs.DefaultLatencyBuckets, "method", "route"),
		httpReqs: reg.CounterVec("scalia_http_requests_total",
			"Gateway requests by method, route and status code.",
			"method", "route", "code"),
		httpBytes: reg.CounterVec("scalia_http_response_bytes_total",
			"Response body bytes written by method and route.",
			"method", "route"),

		stageDur: reg.HistogramVec(metricStage,
			"Latency of serving-path stages (plan, encode, fanout, commit, fetch, decode, repair, optimize).",
			obs.DefaultLatencyBuckets, "stage"),

		providerDur: reg.HistogramVec(metricProviderOp,
			"Backend call latency by provider and operation (get, put, delete).",
			obs.DefaultLatencyBuckets, "provider", "op"),
		providerErrs: reg.CounterVec("scalia_provider_op_errors_total",
			"Failed backend calls by provider and operation.",
			"provider", "op"),

		readCached: reg.Counter("scalia_read_stripes_cached_total",
			"Stripes served from the stripe cache."),
		readFetched: reg.Counter("scalia_read_stripes_fetched_total",
			"Stripes fetched from providers via chunk fan-out."),
		readPrefetched: reg.Counter("scalia_read_stripes_prefetched_total",
			"Stripes delivered by the background prefetcher."),
		readFallbacks: reg.Counter("scalia_read_fallbacks_total",
			"Chunk fetches that failed and fell back to a spare provider."),

		writeStripes: reg.Counter("scalia_write_stripes_total",
			"Stripes fanned out to providers by completed writes."),

		repairIndexed: reg.Counter("scalia_repair_objects_indexed_total",
			"Candidate objects repair passes enumerated through the provider index."),
	}

	// Planner cache (source: core.Planner's own counters).
	reg.CounterFunc("scalia_planner_cache_hits_total",
		"Placement-planner cache hits.",
		func() float64 { return float64(b.planner.Stats().Hits) })
	reg.CounterFunc("scalia_planner_cache_misses_total",
		"Placement-planner cache misses.",
		func() float64 { return float64(b.planner.Stats().Misses) })

	// Stripe caches, one series per datacenter (source: cache.Cluster).
	registerCacheFamily(reg, b, "scalia_cache_hits_total", obs.KindCounter,
		"Stripe-cache hits by datacenter.", func(hits, misses, ev, entries, used int64) int64 { return hits })
	registerCacheFamily(reg, b, "scalia_cache_misses_total", obs.KindCounter,
		"Stripe-cache misses by datacenter.", func(hits, misses, ev, entries, used int64) int64 { return misses })
	registerCacheFamily(reg, b, "scalia_cache_evictions_total", obs.KindCounter,
		"Stripe-cache evictions by datacenter.", func(hits, misses, ev, entries, used int64) int64 { return ev })
	registerCacheFamily(reg, b, "scalia_cache_entries", obs.KindGauge,
		"Cached stripes by datacenter.", func(hits, misses, ev, entries, used int64) int64 { return entries })
	registerCacheFamily(reg, b, "scalia_cache_used_bytes", obs.KindGauge,
		"Cached byte volume by datacenter.", func(hits, misses, ev, entries, used int64) int64 { return used })

	// Provider health and footprint (source: cloud.Registry).
	reg.CollectFunc("scalia_provider_up",
		"Provider reachability (1 = available).",
		obs.KindGauge, []string{"provider"}, func() []obs.Sample {
			var out []obs.Sample
			for _, s := range b.registry.Snapshot() {
				v := 0.0
				if s.Available() {
					v = 1
				}
				out = append(out, obs.Sample{LabelValues: []string{s.Spec().Name}, Value: v})
			}
			return out
		})
	reg.CollectFunc("scalia_provider_used_bytes",
		"Bytes stored per provider.",
		obs.KindGauge, []string{"provider"}, func() []obs.Sample {
			var out []obs.Sample
			for _, s := range b.registry.Snapshot() {
				out = append(out, obs.Sample{LabelValues: []string{s.Spec().Name}, Value: float64(s.UsedBytes())})
			}
			return out
		})

	// Billable usage and cost (source: per-backend cloud.Meters).
	reg.CounterFunc("scalia_usage_ops_total",
		"Billable provider operations.",
		func() float64 { return float64(b.registry.TotalUsage().Ops) })
	reg.CounterFunc("scalia_usage_bandwidth_in_gb",
		"Cumulative inbound bandwidth, GB.",
		func() float64 { return b.registry.TotalUsage().BandwidthInGB })
	reg.CounterFunc("scalia_usage_bandwidth_out_gb",
		"Cumulative outbound bandwidth, GB.",
		func() float64 { return b.registry.TotalUsage().BandwidthOutGB })
	reg.CounterFunc("scalia_usage_storage_gb_hours",
		"Accrued storage, GB-hours.",
		func() float64 { return b.registry.TotalUsage().StorageGBHours })
	reg.CounterFunc("scalia_cost_usd_total",
		"Accrued provider cost, USD.",
		func() float64 { return b.registry.TotalCost() })

	// Optimizer lifetime totals (source: Broker.totals).
	reg.CounterFunc("scalia_optimize_rounds_total",
		"Optimization rounds run.",
		func() float64 { return float64(b.OptimizeTotals().Rounds) })
	reg.CounterFunc("scalia_optimize_migrated_total",
		"Objects migrated by the optimizer.",
		func() float64 { return float64(b.OptimizeTotals().Migrated) })
	reg.CounterFunc("scalia_optimize_migration_usd_total",
		"Migration cost paid by the optimizer, USD.",
		func() float64 { return b.OptimizeTotals().MigrationUSD })

	// Repair lifetime totals (source: Broker.repairTotals).
	reg.CounterFunc("scalia_repair_passes_total",
		"Repair passes run.",
		func() float64 { return float64(b.RepairTotals().Passes) })
	reg.CounterFunc("scalia_repair_repaired_total",
		"Objects repaired.",
		func() float64 { return float64(b.RepairTotals().Repaired) })
	reg.CounterFunc("scalia_repair_swapped_total",
		"Objects repaired via chunk swap.",
		func() float64 { return float64(b.RepairTotals().Swapped) })
	reg.CounterFunc("scalia_repair_restriped_total",
		"Objects repaired via full re-placement.",
		func() float64 { return float64(b.RepairTotals().Restriped) })
	reg.CounterFunc("scalia_repair_chunks_written_total",
		"Chunks written by repair.",
		func() float64 { return float64(b.RepairTotals().ChunksWritten) })
	reg.CounterFunc("scalia_repair_bytes_written_total",
		"Bytes written by repair.",
		func() float64 { return float64(b.RepairTotals().BytesWritten) })

	// Event-driven maintenance queue (source: maintQueue counters).
	reg.GaugeFunc("scalia_maint_queue_depth",
		"Invalidated objects waiting in the reoptimization queue.",
		func() float64 { return float64(b.maint.stats().QueueDepth) })
	reg.GaugeFunc("scalia_maint_workers",
		"Background maintenance drain workers (0 = manual drain).",
		func() float64 { return float64(b.maint.stats().Workers) })
	reg.CounterFunc("scalia_maint_enqueued_total",
		"Objects whose cached placement a market event invalidated.",
		func() float64 { return float64(b.maint.stats().Enqueued) })
	reg.CounterFunc("scalia_maint_drained_total",
		"Invalidated objects re-planned by the maintenance queue.",
		func() float64 { return float64(b.maint.stats().Drained) })
	reg.CounterFunc("scalia_maint_dropped_total",
		"Invalidations discarded because the queue was full.",
		func() float64 { return float64(b.maint.stats().Dropped) })
	reg.CounterFunc("scalia_maint_migrated_total",
		"Queue-drained objects that actually moved.",
		func() float64 { return float64(b.maint.stats().Migrated) })
	reg.CounterFunc("scalia_maint_events_total",
		"Market events received by the maintenance subscriber.",
		func() float64 { return float64(b.maint.stats().Events) })

	// Deployment shape and transient state.
	reg.GaugeFunc("scalia_pending_deletes",
		"Chunk deletions postponed behind unreachable providers.",
		func() float64 { return float64(b.PendingDeletes()) })
	reg.GaugeFunc("scalia_engines",
		"Stateless engines in the deployment.",
		func() float64 { return float64(len(b.engines)) })
	reg.GaugeFunc("scalia_providers",
		"Providers in the storage registry.",
		func() float64 { return float64(len(b.registry.Snapshot())) })
	reg.GaugeFunc("scalia_read_buffered_stripes",
		"Stripe buffers currently held by reads under the shared budget.",
		func() float64 { return float64(b.readBufInUse.Load()) })
	reg.GaugeFunc("scalia_read_buffered_stripes_peak",
		"High-water mark of stripe buffers held by reads under the shared budget.",
		func() float64 { return float64(b.readBufPeak.Load()) })
	reg.GaugeFunc("scalia_write_pipeline_depth",
		"Configured streaming-PUT encode-ahead depth (0 = sequential).",
		func() float64 { return float64(b.cfg.WritePipelineDepth) })
	reg.GaugeFunc("scalia_write_buffered_stripes",
		"Stripe buffers currently held by writes under the shared budget.",
		func() float64 { return float64(b.writeBufInUse.Load()) })
	reg.GaugeFunc("scalia_write_buffered_stripes_peak",
		"High-water mark of stripe buffers held by writes under the shared budget.",
		func() float64 { return float64(b.writeBufPeak.Load()) })
	reg.GaugeFunc("scalia_multipart_uploads_active",
		"Open multipart upload sessions.",
		func() float64 { return float64(b.activeUploads()) })

	// Process vitals.
	reg.GaugeFunc("scalia_uptime_seconds",
		"Seconds since the broker was built.",
		func() float64 { return time.Since(m.start).Seconds() })
	reg.GaugeFunc("go_goroutines",
		"Live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc("go_heap_alloc_bytes",
		"Heap bytes allocated and in use.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapAlloc)
		})

	return m
}

// registerCacheFamily registers one per-datacenter series family backed
// by cache.Cluster.StatsByDC.
func registerCacheFamily(reg *obs.Registry, b *Broker, name string, kind obs.Kind, help string,
	pick func(hits, misses, evictions, entries, usedBytes int64) int64) {
	reg.CollectFunc(name, help, kind, []string{"dc"}, func() []obs.Sample {
		by := b.caches.StatsByDC()
		out := make([]obs.Sample, 0, len(by))
		for dc, s := range by {
			out = append(out, obs.Sample{
				LabelValues: []string{dc},
				Value:       float64(pick(s.Hits, s.Misses, s.Evictions, s.Entries, s.UsedBytes)),
			})
		}
		return out
	})
}

// Metrics exposes the broker's metric registry (the gateway's /metrics
// endpoint, the bench harness and embedded deployments scrape it).
func (b *Broker) Metrics() *obs.Registry { return b.metrics.reg }

// observeProviderOp records one backend call's latency (and failure)
// under the per-provider series.
func (b *Broker) observeProviderOp(provider, op string, start time.Time, err error) {
	b.metrics.providerDur.With(provider, op).ObserveSince(start)
	if err != nil {
		b.metrics.providerErrs.With(provider, op).Inc()
	}
}

// observeStage records one serving-path stage: into the broker-wide
// stage histogram and, when the request carries a trace, into its
// per-request span aggregation.
func (b *Broker) observeStage(tr *obs.Trace, stage string, start time.Time) {
	d := time.Since(start)
	b.metrics.stageDur.With(stage).Observe(d.Seconds())
	tr.AddSpan(stage, d)
}
