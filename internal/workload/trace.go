package workload

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Trace is a fully materialized scenario: every period's loads held in
// memory. It is what Import returns and what Record produces, making
// any scenario — including a live capture — replayable bit-for-bit.
type Trace struct {
	TraceName string
	loads     [][]PeriodLoad
}

// Record materializes a scenario into a trace.
func Record(s Scenario) *Trace {
	t := &Trace{TraceName: s.Name(), loads: make([][]PeriodLoad, s.Periods())}
	for p := range t.loads {
		t.loads[p] = s.Load(p)
	}
	return t
}

// Name implements Scenario.
func (t *Trace) Name() string { return t.TraceName }

// Periods implements Scenario.
func (t *Trace) Periods() int { return len(t.loads) }

// Load implements Scenario.
func (t *Trace) Load(p int) []PeriodLoad {
	if p < 0 || p >= len(t.loads) {
		return nil
	}
	return t.loads[p]
}

// The line-delimited JSON trace format: one header line followed by one
// line per (period, object) load record. Zero fields are omitted, so
// quiet periods cost nothing on disk.
type traceHeader struct {
	Format  string `json:"format"`
	Version int    `json:"version"`
	Name    string `json:"name"`
	Periods int    `json:"periods"`
}

type traceKey struct {
	period int
	object string
}

type traceRecord struct {
	Period  int    `json:"p"`
	Object  string `json:"obj"`
	Size    int64  `json:"size"`
	Reads   int64  `json:"reads,omitempty"`
	Writes  int64  `json:"writes,omitempty"`
	Created bool   `json:"created,omitempty"`
	Deleted bool   `json:"deleted,omitempty"`
}

const (
	traceFormat  = "scalia-workload-trace"
	traceVersion = 1
)

// MaxTracePeriods bounds the period count a trace header may declare:
// the per-period index is allocated from the header before any record
// is read, so the bound caps what a hostile file can make Import
// allocate (~24 MB). One million hourly periods is over a century of
// simulated time.
const MaxTracePeriods = 1_000_000

// Export writes a scenario as a line-delimited JSON trace.
func Export(w io.Writer, s Scenario) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(traceHeader{
		Format: traceFormat, Version: traceVersion,
		Name: s.Name(), Periods: s.Periods(),
	}); err != nil {
		return err
	}
	for p := 0; p < s.Periods(); p++ {
		for _, l := range s.Load(p) {
			if err := enc.Encode(traceRecord{
				Period: p, Object: l.Object, Size: l.Size,
				Reads: l.Reads, Writes: l.Writes,
				Created: l.Created, Deleted: l.Deleted,
			}); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Import reads a line-delimited JSON trace back into a replayable
// scenario.
func Import(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("workload: empty trace")
	}
	var hdr traceHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return nil, fmt.Errorf("workload: bad trace header: %w", err)
	}
	if hdr.Format != traceFormat || hdr.Version != traceVersion {
		return nil, fmt.Errorf("workload: not a v%d %s file: %+v", traceVersion, traceFormat, hdr)
	}
	if hdr.Periods < 0 || hdr.Periods > MaxTracePeriods {
		return nil, fmt.Errorf("workload: period count %d outside [0,%d]", hdr.Periods, MaxTracePeriods)
	}
	t := &Trace{TraceName: hdr.Name, loads: make([][]PeriodLoad, hdr.Periods)}
	seen := make(map[traceKey]struct{})
	line := 1
	for sc.Scan() {
		line++
		var rec traceRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("workload: trace line %d: %w", line, err)
		}
		if rec.Period < 0 || rec.Period >= hdr.Periods {
			return nil, fmt.Errorf("workload: trace line %d: period %d outside [0,%d)",
				line, rec.Period, hdr.Periods)
		}
		if rec.Size < 0 || rec.Reads < 0 || rec.Writes < 0 {
			return nil, fmt.Errorf("workload: trace line %d: negative size/reads/writes: %+v", line, rec)
		}
		// The simulator keys a period's loads by object, so a duplicate
		// would silently drop the earlier record's traffic — reject it.
		key := traceKey{rec.Period, rec.Object}
		if _, dup := seen[key]; dup {
			return nil, fmt.Errorf("workload: trace line %d: duplicate record for %q in period %d",
				line, rec.Object, rec.Period)
		}
		seen[key] = struct{}{}
		t.loads[rec.Period] = append(t.loads[rec.Period], PeriodLoad{
			Object: rec.Object, Size: rec.Size,
			Reads: rec.Reads, Writes: rec.Writes,
			Created: rec.Created, Deleted: rec.Deleted,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	// Reject records that resurrect a deleted object: the simulator's
	// policy runners disagree on such input (the adaptive and static
	// runners skip dead objects forever; the ideal runner re-prices
	// them), which would silently skew the over-cost comparison.
	// Records may appear in any line order, so walk periods in order.
	dead := make(map[string]int)
	for p, loads := range t.loads {
		for _, l := range loads {
			if dp, killed := dead[l.Object]; killed {
				return nil, fmt.Errorf("workload: record for %q at period %d after its deletion at %d",
					l.Object, p, dp)
			}
			if l.Deleted {
				dead[l.Object] = p
			}
		}
	}
	return t, nil
}
