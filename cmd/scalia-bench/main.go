// Command scalia-bench runs every evaluation experiment and prints a
// paper-versus-measured summary — the data behind EXPERIMENTS.md.
package main

import (
	"fmt"
	"log"

	"scalia/internal/sim"
)

func main() {
	fmt.Println("Scalia reproduction — paper vs measured")
	fmt.Println()

	slash, err := sim.SlashdotExperiment()
	if err != nil {
		log.Fatal(err)
	}
	report("Fig. 14 Slashdot over-cost", []row{
		{"Scalia over ideal", "0.12%", pct(slash.ScaliaOverPct)},
		{"best static over ideal", "0.40%", pct(slash.BestStatic().OverPct) + " (" + slash.BestStatic().Label + ")"},
		{"worst static over ideal", "16%", pct(slash.WorstStatic().OverPct) + " (" + slash.WorstStatic().Label + ")"},
	})

	gal, err := sim.GalleryExperiment()
	if err != nil {
		log.Fatal(err)
	}
	report("Fig. 16 gallery over-cost", []row{
		{"Scalia over ideal", "1.06%", pct(gal.ScaliaOverPct)},
		{"best static over ideal", "4.14%", pct(gal.BestStatic().OverPct) + " (" + gal.BestStatic().Label + ")"},
		{"worst static over ideal", "31.58%", pct(gal.WorstStatic().OverPct) + " (" + gal.WorstStatic().Label + ")"},
	})

	add, err := sim.AddProviderExperiment()
	if err != nil {
		log.Fatal(err)
	}
	migrated := 0
	for _, ch := range add.Changes {
		if ch.Period >= 400 {
			migrated++
		}
	}
	report("Fig. 17 provider addition", []row{
		{"Scalia over ideal", "0.35%", pct(add.ScaliaOverPct)},
		{"best static over ideal", "7.88%", pct(add.BestStatic().OverPct) + " (" + add.BestStatic().Label + ")"},
		{"worst static over ideal", "96.35%", pct(add.WorstStatic().OverPct) + " (" + add.WorstStatic().Label + ")"},
		{"objects migrated to CheapStor", "all stored", fmt.Sprintf("%d", migrated)},
	})

	rep, static, err := sim.RepairExperiment()
	if err != nil {
		log.Fatal(err)
	}
	repairs := 0
	for _, ch := range rep.Changes {
		if ch.Reason == "active-repair" {
			repairs++
		}
	}
	report("Fig. 18 active repair", []row{
		{"Scalia final cumulative", "below static", fmt.Sprintf("%.4f USD", rep.CumulativeScalia[len(rep.CumulativeScalia)-1])},
		{"static final cumulative", "above Scalia", fmt.Sprintf("%.4f USD", static[len(static)-1])},
		{"active repairs during outage", ">0", fmt.Sprintf("%d", repairs)},
	})

	hourly, daily := sim.TrendHourly(), sim.TrendDaily()
	report("Figs. 8/9 trend detection", []row{
		{"hourly detections / periods", "sparse", fmt.Sprintf("%d / %d", len(hourly.Changes), len(hourly.Series))},
		{"daily detections / periods", "sparse", fmt.Sprintf("%d / %d", len(daily.Changes), len(daily.Series))},
	})
}

type row struct{ name, paper, measured string }

func report(title string, rows []row) {
	fmt.Println(title)
	fmt.Printf("  %-32s %-14s %s\n", "metric", "paper", "measured")
	for _, r := range rows {
		fmt.Printf("  %-32s %-14s %s\n", r.name, r.paper, r.measured)
	}
	fmt.Println()
}

func pct(v float64) string { return fmt.Sprintf("%.2f%%", v) }
