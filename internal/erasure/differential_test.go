package erasure

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
)

// TestDifferentialFuzzKernels drives the table-driven, span-parallel
// production paths against the retained scalar reference across random
// geometries (m in [1,16], n in [m,32]) and sizes — including 0, 1 and
// non-multiples of m — asserting byte-identical results for Encode,
// Reconstruct (random erasure patterns) and Verify (clean and with a
// corrupted byte). The span threshold is dropped so large cases
// exercise the parallel kernels.
func TestDifferentialFuzzKernels(t *testing.T) {
	old := SpanThreshold()
	SetSpanThreshold(1 << 10)
	defer SetSpanThreshold(old)

	rng := rand.New(rand.NewSource(20260808))
	sizes := []int{0, 1, 2, 63, 64, 65, 1000, 4096, 12289}
	for trial := 0; trial < 250; trial++ {
		m := 1 + rng.Intn(16)
		n := m + rng.Intn(33-m)
		c, err := Cached(m, n)
		if err != nil {
			t.Fatalf("trial %d: Cached(%d,%d): %v", trial, m, n, err)
		}
		size := sizes[rng.Intn(len(sizes))]
		if rng.Intn(4) == 0 {
			size = rng.Intn(8 << 10)
		}
		data := make([]byte, size)
		rng.Read(data)

		want := c.encodeRef(data)
		got, err := c.Encode(data)
		if err != nil {
			t.Fatalf("trial %d (m=%d n=%d size=%d): Encode: %v", trial, m, n, size, err)
		}
		for i := range want {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("trial %d (m=%d n=%d size=%d): chunk %d differs from scalar reference",
					trial, m, n, size, i)
			}
		}

		// Random erasure pattern within tolerance, applied to two
		// copies: production Reconstruct vs the scalar reference.
		erase := rng.Intn(n - m + 1)
		perm := rng.Perm(n)
		prod := make([][]byte, n)
		ref := make([][]byte, n)
		for i := range got {
			prod[i] = append([]byte(nil), got[i]...)
			ref[i] = append([]byte(nil), want[i]...)
		}
		for i := 0; i < erase; i++ {
			prod[perm[i]], ref[perm[i]] = nil, nil
		}
		if err := c.Reconstruct(prod); err != nil {
			t.Fatalf("trial %d: Reconstruct: %v", trial, err)
		}
		if err := c.reconstructRef(ref); err != nil {
			t.Fatalf("trial %d: reconstructRef: %v", trial, err)
		}
		for i := range prod {
			if !bytes.Equal(prod[i], ref[i]) {
				t.Fatalf("trial %d (m=%d n=%d size=%d erase=%d): reconstructed chunk %d differs from scalar reference",
					trial, m, n, size, erase, i)
			}
			if !bytes.Equal(prod[i], want[i]) {
				t.Fatalf("trial %d: reconstructed chunk %d differs from original", trial, i)
			}
		}

		if ok, err := c.Verify(prod); err != nil || !ok {
			t.Fatalf("trial %d: clean Verify = %v, %v", trial, ok, err)
		}
		back, err := c.Decode(prod, size)
		if err != nil || !bytes.Equal(back, data) {
			t.Fatalf("trial %d: Decode mismatch (err=%v)", trial, err)
		}
		if size > 0 && n > m {
			chunkLen := len(prod[0])
			prod[rng.Intn(n)][rng.Intn(chunkLen)] ^= 1 + byte(rng.Intn(255))
			ok, err := c.Verify(prod)
			if err != nil {
				t.Fatalf("trial %d: corrupted Verify: %v", trial, err)
			}
			if ok {
				t.Fatalf("trial %d (m=%d n=%d size=%d): Verify missed a corrupted byte", trial, m, n, size)
			}
		}
	}
}

// TestReconstructParityOnlyFastPath pins the identity fast path: when
// every data chunk survives, Reconstruct regenerates parity without
// touching the decode-matrix machinery, and the regenerated parity is
// byte-identical to the scalar reference's inversion-based result.
func TestReconstructParityOnlyFastPath(t *testing.T) {
	c, err := New(4, 9)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 5000)
	rand.New(rand.NewSource(11)).Read(data)
	want := c.encodeRef(data)
	chunks := make([][]byte, c.n)
	for i := 0; i < c.m; i++ {
		chunks[i] = append([]byte(nil), want[i]...)
	}
	// All n-m parity chunks lost, all m data chunks intact.
	if err := c.Reconstruct(chunks); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !bytes.Equal(chunks[i], want[i]) {
			t.Fatalf("chunk %d differs after parity-only reconstruct", i)
		}
	}
}

// TestZeroLengthInvariant makes the empty-object encoding contract
// explicit: ChunkSize(0) is 0 but Encode emits EncodedChunkSize(0) == 1
// byte per chunk, and the whole chunk set round-trips (including
// reconstruction) back to the empty object.
func TestZeroLengthInvariant(t *testing.T) {
	c, err := New(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.ChunkSize(0); got != 0 {
		t.Fatalf("ChunkSize(0) = %d, want 0", got)
	}
	if got := c.EncodedChunkSize(0); got != 1 {
		t.Fatalf("EncodedChunkSize(0) = %d, want 1", got)
	}
	for _, dataLen := range []int{1, 3, 4, 300, 301} {
		if got, want := c.EncodedChunkSize(dataLen), c.ChunkSize(dataLen); got != want {
			t.Fatalf("EncodedChunkSize(%d) = %d, want ChunkSize = %d", dataLen, got, want)
		}
	}
	chunks, err := c.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, ch := range chunks {
		if len(ch) != 1 || ch[0] != 0 {
			t.Fatalf("chunk %d = %v, want one zero byte", i, ch)
		}
	}
	chunks[0], chunks[3] = nil, nil
	if err := c.Reconstruct(chunks); err != nil {
		t.Fatal(err)
	}
	got, err := c.Decode(chunks, 0)
	if err != nil || len(got) != 0 {
		t.Fatalf("Decode = %d bytes, %v; want empty", len(got), err)
	}
}

// TestCoderCache checks identity, validation and the bounded epoch
// reset of the package-level coder cache.
func TestCoderCache(t *testing.T) {
	a, err := Cached(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Cached(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("Cached(4,8) must return the same coder")
	}
	if _, err := Cached(0, 4); err == nil {
		t.Fatal("Cached(0,4): expected ErrInvalidParams")
	}
	if _, err := Cached(5, 4); err == nil {
		t.Fatal("Cached(5,4): expected ErrInvalidParams")
	}
	// Walk more (m, n) pairs than the bound holds; the cache must stay
	// correct (and bounded) across the epoch reset.
	count := 0
	for m := 1; m <= 16 && count <= maxCachedCoders; m++ {
		for n := m; n <= m+20 && count <= maxCachedCoders; n++ {
			if _, err := Cached(m, n); err != nil {
				t.Fatalf("Cached(%d,%d): %v", m, n, err)
			}
			count++
		}
	}
	coderMu.RLock()
	size := len(coderCache)
	coderMu.RUnlock()
	if size > maxCachedCoders {
		t.Fatalf("cache grew to %d entries, bound is %d", size, maxCachedCoders)
	}
	c, err := Cached(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("post-eviction coders must still work")
	chunks, err := c.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := c.Decode(chunks, len(data)); err != nil || !bytes.Equal(got, data) {
		t.Fatalf("post-eviction round-trip failed: %v", err)
	}
}

// TestCoderCacheParallelHammer exercises the coder cache and the
// span-parallel kernels concurrently; run with -race it proves both
// are data-race free while sharing one coder across goroutines.
func TestCoderCacheParallelHammer(t *testing.T) {
	old := SpanThreshold()
	SetSpanThreshold(512)
	defer SetSpanThreshold(old)

	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 40; i++ {
				m := 1 + rng.Intn(6)
				n := m + rng.Intn(5)
				c, err := Cached(m, n)
				if err != nil {
					t.Errorf("Cached(%d,%d): %v", m, n, err)
					return
				}
				data := make([]byte, 1+rng.Intn(16<<10))
				rng.Read(data)
				chunks, err := c.EncodePooled(data)
				if err != nil {
					t.Errorf("EncodePooled: %v", err)
					return
				}
				if ok, err := c.Verify(chunks); err != nil || !ok {
					t.Errorf("Verify = %v, %v", ok, err)
					return
				}
				damaged := make([][]byte, n)
				for j := range chunks {
					damaged[j] = append([]byte(nil), chunks[j]...)
				}
				ReleaseChunks(chunks)
				for j := 0; j < n-m; j++ {
					damaged[rng.Intn(n)] = nil
				}
				got, err := c.Decode(damaged, len(data))
				if err != nil || !bytes.Equal(got, data) {
					t.Errorf("Decode mismatch (m=%d n=%d): %v", m, n, err)
					return
				}
			}
		}(int64(w + 1))
	}
	wg.Wait()
}
