package core

// DecisionController adapts an object's decision period D_obj — the span
// of historical access statistics used when recomputing its placement
// (paper §III-A). D is searched dichotomically: every T optimization
// rounds the engine evaluates the candidate windows D/2, D and 2D in
// parallel ("coupling") and keeps the one whose best provider set prices
// cheapest. When D is found adequate (the middle candidate wins), T
// doubles; otherwise T resets to 1. T is capped so D is revisited at
// least every maxT rounds (the paper bounds it at "a period of weeks").
type DecisionController struct {
	d    int // current decision period, in sampling periods
	t    int // rounds between evaluations
	left int // rounds until the next evaluation
	maxT int
}

// Default decision-period controller parameters.
const (
	DefaultDecisionPeriod = 24  // 1 day at hourly sampling
	DefaultMaxT           = 336 // 2 weeks of hourly optimization rounds
	MinDecisionPeriod     = 1
)

// NewDecisionController returns a controller starting at initialD
// sampling periods with T = 1 (evaluate at the first opportunity).
func NewDecisionController(initialD, maxT int) *DecisionController {
	if initialD < MinDecisionPeriod {
		initialD = DefaultDecisionPeriod
	}
	if maxT < 1 {
		maxT = DefaultMaxT
	}
	return &DecisionController{d: initialD, t: 1, left: 1, maxT: maxT}
}

// D returns the current decision period.
func (c *DecisionController) D() int { return c.d }

// T returns the current evaluation interval.
func (c *DecisionController) T() int { return c.t }

// Tick marks one optimization round and reports whether this round must
// run the three-window coupling evaluation.
func (c *DecisionController) Tick() bool {
	c.left--
	if c.left <= 0 {
		c.left = c.t
		return true
	}
	return false
}

// Candidates returns the coupling windows {D/2, D, 2D}, clamped to
// [MinDecisionPeriod, limit]. limit is the paper's dichotomic-search
// bound min(TTL_obj, |H_obj|); pass limit <= 0 for no bound.
func (c *DecisionController) Candidates(limit int) [3]int {
	half := c.d / 2
	if half < MinDecisionPeriod {
		half = MinDecisionPeriod
	}
	double := c.d * 2
	cands := [3]int{half, c.d, double}
	if limit > 0 {
		for i := range cands {
			if cands[i] > limit {
				cands[i] = limit
			}
			if cands[i] < MinDecisionPeriod {
				cands[i] = MinDecisionPeriod
			}
		}
	}
	return cands
}

// Update records which candidate window (0 = D/2, 1 = D, 2 = 2D) priced
// cheapest. Keeping the middle window means D was adequate: T doubles.
// Any change of D resets T to 1 so the new value is re-examined soon.
func (c *DecisionController) Update(bestIdx int, candidates [3]int) {
	switch {
	case bestIdx == 1 || candidates[bestIdx] == c.d:
		c.t *= 2
		if c.t > c.maxT {
			c.t = c.maxT
		}
	default:
		c.d = candidates[bestIdx]
		c.t = 1
	}
	c.left = c.t
}
