package engine

import (
	"context"
	"crypto/md5"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"scalia/internal/core"
	"scalia/internal/obs"
	"scalia/internal/stats"
)

// Resumable multipart uploads. A large PUT whose connection drops at
// stripe 400/500 should resume, not restart: the client opens an
// upload session, streams stripe-aligned parts (each erasure-coded and
// fanned out through the write pipeline like a regular PUT), and
// completes the upload with the part list. Parts stage their chunks
// under part-scoped keys that ARE the committed object's chunk keys
// (ObjectMeta.PartStripes maps global stripe indexes onto them), so
// completion is one batched metadata commit under the row lock — no
// chunk data moves. A dropped part is simply re-sent; completed parts
// are never re-transferred (ListParts reports what survived).
//
// Wire-level the /v1 gateway mirrors S3: POST …?uploads opens a
// session, PUT …?partNumber=N&uploadId=… stages a part and returns its
// ETag, POST …?uploadId=… completes, DELETE …?uploadId=… aborts, and
// GET …?uploadId=… lists staged parts.

// ErrUploadNotFound marks operations against an unknown (or already
// completed/aborted) multipart upload; gateways map it to 404.
var ErrUploadNotFound = errors.New("engine: multipart upload not found")

// MaxUploadParts bounds the parts of one multipart upload (S3's limit).
const MaxUploadParts = 10000

// UploadInfo identifies an open multipart upload session.
type UploadInfo struct {
	UploadID  string `json:"uploadId"`
	Container string `json:"container"`
	Key       string `json:"key"`
}

// PartInfo describes one staged part of a multipart upload.
type PartInfo struct {
	PartNumber int    `json:"partNumber"`
	ETag       string `json:"etag"` // MD5 of the part payload, hex
	Size       int64  `json:"size"`
	Stripes    int    `json:"stripes"`
}

// CompletedPart names one part in a CompleteUpload request. ETag is
// optional ("" skips verification) but strongly recommended.
type CompletedPart struct {
	PartNumber int    `json:"partNumber"`
	ETag       string `json:"etag"`
}

// uploadSession is one open multipart upload. The placement — and with
// it the (m, n) code and provider set — is planned once at creation so
// every part stripes identically.
type uploadSession struct {
	id        string
	container string
	key       string
	opts      PutOptions
	ruleName  string
	uuid      string // version identity the completed object commits under
	skey      string
	placement core.Placement
	names     []string // provider name per chunk index, placement order
	createdAt int64

	mu       sync.Mutex
	closed   bool
	inflight map[int]bool        // part numbers currently streaming
	parts    map[int]*stagedPart // staged (fully written) parts
	// lastActive is the broker wall-clock of the session's most recent
	// use (creation, part claim/settle, part listing); the TTL sweep
	// evicts sessions idle past the deadline.
	lastActive time.Time
}

// stagedPart records one fully staged part.
type stagedPart struct {
	number     int
	size       int64
	etag       string
	stripes    int
	stripeSums []string
}

// --- broker session table ---

func (b *Broker) activeUploads() int {
	b.uploadsMu.Lock()
	defer b.uploadsMu.Unlock()
	return len(b.uploads)
}

func (b *Broker) addUpload(s *uploadSession) {
	b.uploadsMu.Lock()
	b.uploads[s.id] = s
	b.uploadsMu.Unlock()
}

func (b *Broker) getUpload(id string) (*uploadSession, error) {
	b.uploadsMu.Lock()
	s, ok := b.uploads[id]
	b.uploadsMu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUploadNotFound, id)
	}
	return s, nil
}

func (b *Broker) removeUpload(id string) {
	b.uploadsMu.Lock()
	delete(b.uploads, id)
	b.uploadsMu.Unlock()
}

// --- engine operations ---

// CreateUpload opens a multipart upload session for an object. The
// placement is planned now — sizeHint (0 = unknown, planned at one
// stripe) feeds the cost model — and every part inherits it, so all
// parts stripe across the same provider set with the same threshold.
// opts preconditions are fast-checked here and re-checked
// authoritatively when the upload completes.
func (e *Engine) CreateUpload(ctx context.Context, container, key string, sizeHint int64, opts PutOptions) (UploadInfo, error) {
	if err := ctx.Err(); err != nil {
		return UploadInfo{}, err
	}
	if container == "" || key == "" {
		return UploadInfo{}, fmt.Errorf("%w: container and key are required", ErrInvalidArgument)
	}
	if sizeHint < 0 {
		return UploadInfo{}, fmt.Errorf("%w: negative size hint", ErrInvalidArgument)
	}
	planBytes := sizeHint
	if planBytes == 0 {
		planBytes = e.b.cfg.StripeBytes
	}
	class := stats.ClassKey(opts.MIME, planBytes)
	rule := e.b.rules.Resolve(container, key, class)
	if opts.Rule != nil {
		rule = *opts.Rule
		if err := rule.Validate(); err != nil {
			return UploadInfo{}, err
		}
	}
	res, err := e.placeWithRetry(rule, e.writeLoad(objectName(container, key), class, planBytes), planBytes)
	if err != nil {
		return UploadInfo{}, err
	}
	prev, losers := e.currentVersion(RowKey(container, key))
	e.cleanupVersions(losers)
	if err := checkWriteConditions(opts, prev); err != nil {
		return UploadInfo{}, err
	}

	uuid := NewUUID()
	names := make([]string, 0, res.Placement.N())
	for _, spec := range res.Placement.Providers {
		names = append(names, spec.Name)
	}
	s := &uploadSession{
		id:         NewUUID(),
		container:  container,
		key:        key,
		opts:       opts,
		ruleName:   rule.Name,
		uuid:       uuid,
		skey:       StorageKey(container, key, uuid),
		placement:  res.Placement,
		names:      names,
		createdAt:  e.b.clock.Period(),
		inflight:   make(map[int]bool),
		parts:      make(map[int]*stagedPart),
		lastActive: e.b.now(),
	}
	e.b.addUpload(s)
	return UploadInfo{UploadID: s.id, Container: container, Key: key}, nil
}

// UploadPart streams one part of an open upload through the write
// pipeline, staging its chunks under part-scoped keys. size must be
// the exact part length; re-sending a part number replaces the earlier
// attempt. Every part except the upload's final one must be a whole
// multiple of the deployment's stripe size, so the assembled object's
// stripe geometry stays uniform (violations surface at CompleteUpload,
// where the final part is known).
func (e *Engine) UploadPart(ctx context.Context, uploadID string, partNumber int, r io.Reader, size int64) (PartInfo, error) {
	if partNumber < 1 || partNumber > MaxUploadParts {
		return PartInfo{}, fmt.Errorf("%w: part number %d outside [1, %d]", ErrInvalidArgument, partNumber, MaxUploadParts)
	}
	if size < 1 {
		return PartInfo{}, fmt.Errorf("%w: parts must declare a positive size", ErrInvalidArgument)
	}
	s, err := e.b.getUpload(uploadID)
	if err != nil {
		return PartInfo{}, err
	}

	// Claim the part number: concurrent uploads of different parts
	// proceed in parallel, concurrent uploads of the same part conflict.
	// A replaced attempt's record is removed before its chunks are — a
	// mid-replace crash leaves no record, so the part reads as missing
	// and the client re-sends it.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return PartInfo{}, fmt.Errorf("%w: %s", ErrUploadNotFound, uploadID)
	}
	if s.inflight[partNumber] {
		s.mu.Unlock()
		return PartInfo{}, fmt.Errorf("%w: part %d is already uploading", ErrInvalidArgument, partNumber)
	}
	s.inflight[partNumber] = true
	s.lastActive = e.b.now()
	replaced := s.parts[partNumber]
	delete(s.parts, partNumber)
	s.mu.Unlock()
	settle := func() { // drop the claim on every exit path
		s.mu.Lock()
		delete(s.inflight, partNumber)
		s.lastActive = e.b.now()
		s.mu.Unlock()
	}
	if replaced != nil {
		e.deletePartChunks(s, replaced)
	}

	stripes := stripeCount(size, e.b.cfg.StripeBytes)
	plan, err := e.partWritePlan(s, partNumber, size, stripes)
	if err != nil {
		settle()
		return PartInfo{}, err
	}
	etag, stripeSums, err := e.writeStripes(ctx, plan, r)
	if err != nil {
		settle()
		return PartInfo{}, err
	}
	part := &stagedPart{
		number: partNumber, size: size, etag: etag,
		stripes: stripes, stripeSums: stripeSums,
	}
	s.mu.Lock()
	if s.closed {
		// The upload was aborted while this part streamed; its chunks
		// are ours to clean up.
		s.mu.Unlock()
		e.deletePartChunks(s, part)
		return PartInfo{}, fmt.Errorf("%w: %s", ErrUploadNotFound, uploadID)
	}
	s.parts[partNumber] = part
	delete(s.inflight, partNumber)
	s.lastActive = e.b.now()
	s.mu.Unlock()
	return PartInfo{PartNumber: partNumber, ETag: etag, Size: size, Stripes: stripes}, nil
}

// partWritePlan builds the pipeline plan for one part: the session's
// frozen placement, the part's local stripe geometry, part-scoped keys.
func (e *Engine) partWritePlan(s *uploadSession, partNumber int, size int64, stripes int) (stripeWritePlan, error) {
	coder, stores, names, err := e.resolvePlacement(s.placement)
	if err != nil {
		return stripeWritePlan{}, err
	}
	stripeBytes := e.b.cfg.StripeBytes
	return stripeWritePlan{
		coder: coder, stores: stores, names: names,
		stripes: stripes,
		stripeLen: func(st int) int64 {
			if left := size - int64(st)*stripeBytes; left < stripeBytes {
				return left
			}
			return stripeBytes
		},
		key: func(st, i int) string { return PartChunkKey(s.skey, partNumber, st, i) },
	}, nil
}

// ListParts reports the staged parts of an open upload, sorted by part
// number — the resume protocol's "what survived" answer.
func (e *Engine) ListParts(ctx context.Context, uploadID string) (UploadInfo, []PartInfo, error) {
	if err := ctx.Err(); err != nil {
		return UploadInfo{}, nil, err
	}
	s, err := e.b.getUpload(uploadID)
	if err != nil {
		return UploadInfo{}, nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return UploadInfo{}, nil, fmt.Errorf("%w: %s", ErrUploadNotFound, uploadID)
	}
	s.lastActive = e.b.now() // a resume probe is activity
	out := make([]PartInfo, 0, len(s.parts))
	for _, p := range s.parts {
		out = append(out, PartInfo{PartNumber: p.number, ETag: p.etag, Size: p.size, Stripes: p.stripes})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PartNumber < out[j].PartNumber })
	return UploadInfo{UploadID: s.id, Container: s.container, Key: s.key}, out, nil
}

// CompleteUpload assembles the staged parts into the live object
// version: one batched metadata commit under the row lock, no chunk
// movement. parts must name every part of the object — consecutive
// numbers from 1 — and non-final parts must be stripe-aligned; a
// mismatched or missing part fails with ErrInvalidArgument and leaves
// the session open, so the client can re-send the part and retry.
// Staged parts left out of the list are garbage-collected.
func (e *Engine) CompleteUpload(ctx context.Context, uploadID string, parts []CompletedPart) (ObjectMeta, error) {
	if err := ctx.Err(); err != nil {
		return ObjectMeta{}, err
	}
	if len(parts) == 0 {
		return ObjectMeta{}, fmt.Errorf("%w: empty part list", ErrInvalidArgument)
	}
	s, err := e.b.getUpload(uploadID)
	if err != nil {
		return ObjectMeta{}, err
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ObjectMeta{}, fmt.Errorf("%w: %s", ErrUploadNotFound, uploadID)
	}
	staged, extra, err := matchParts(s, parts, e.b.cfg.StripeBytes)
	if err != nil {
		s.mu.Unlock()
		return ObjectMeta{}, err // session stays open for a retry
	}
	if len(s.inflight) > 0 {
		s.mu.Unlock()
		return ObjectMeta{}, fmt.Errorf("%w: %d parts still uploading", ErrInvalidArgument, len(s.inflight))
	}
	s.closed = true
	s.mu.Unlock()
	e.b.removeUpload(uploadID)

	// Staged-but-unlisted parts will not be part of the object; GC them.
	for _, p := range extra {
		e.deletePartChunks(s, p)
	}

	var (
		size        int64
		totalStripe int
		partStripes = make([]int, len(staged))
		stripeSums  []string
		etagSum     = md5.New()
	)
	for i, p := range staged {
		size += p.size
		totalStripe += p.stripes
		partStripes[i] = p.stripes
		stripeSums = append(stripeSums, p.stripeSums...)
		if raw, err := hex.DecodeString(p.etag); err == nil {
			etagSum.Write(raw) //nolint:errcheck
		}
	}
	now := e.b.clock.Period()
	class := stats.ClassKey(s.opts.MIME, size)
	meta := ObjectMeta{
		Container: s.container,
		Key:       s.key,
		MIME:      s.opts.MIME,
		Size:      size,
		// S3-style composite: MD5 over the concatenated part digests,
		// suffixed with the part count. Not a body MD5 — the read path
		// relies on the per-stripe sums instead.
		Checksum:    hex.EncodeToString(etagSum.Sum(nil)) + "-" + strconv.Itoa(len(staged)),
		RuleName:    s.ruleName,
		Class:       class,
		SKey:        s.skey,
		M:           s.placement.M,
		Chunks:      s.names,
		UUID:        s.uuid,
		TTLHours:    s.opts.TTLHours,
		CreatedAt:   now,
		Stripes:     totalStripe,
		StripeBytes: e.b.cfg.StripeBytes,
		StripeSums:  stripeSums,
		PartStripes: partStripes,
	}

	tr := obs.TraceFrom(ctx)
	commitStart := time.Now()
	prev, err := e.commitObject(&meta, s.opts)
	e.b.observeStage(tr, "commit", commitStart)
	if err != nil {
		return ObjectMeta{}, err
	}
	if prev != nil {
		e.deleteChunks(*prev)
		e.invalidateCached(*prev)
	}
	obj := objectName(s.container, s.key)
	e.b.setPlacement(obj, s.placement)
	e.agent.Log(stats.Event{
		Object: obj, Class: class, Kind: stats.EventWrite,
		Bytes: size, StorageBytes: size, Period: now,
	})
	return meta, nil
}

// matchParts validates a CompleteUpload part list against the staged
// parts: consecutive numbers from 1, ETags matching, and every part but
// the last stripe-aligned. It returns the staged parts in part order
// plus the staged parts the list leaves out.
func matchParts(s *uploadSession, parts []CompletedPart, stripeBytes int64) (staged []*stagedPart, extra []*stagedPart, err error) {
	listed := make(map[int]bool, len(parts))
	ordered := append([]CompletedPart(nil), parts...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].PartNumber < ordered[j].PartNumber })
	staged = make([]*stagedPart, 0, len(ordered))
	for i, cp := range ordered {
		if cp.PartNumber != i+1 {
			return nil, nil, fmt.Errorf("%w: part numbers must be consecutive from 1 (got %d at position %d)",
				ErrInvalidArgument, cp.PartNumber, i+1)
		}
		p, ok := s.parts[cp.PartNumber]
		if !ok {
			return nil, nil, fmt.Errorf("%w: part %d was never uploaded", ErrInvalidArgument, cp.PartNumber)
		}
		if want := strings.Trim(cp.ETag, `"`); want != "" && want != p.etag {
			return nil, nil, fmt.Errorf("%w: part %d etag mismatch", ErrInvalidArgument, cp.PartNumber)
		}
		listed[cp.PartNumber] = true
		staged = append(staged, p)
	}
	for i, p := range staged[:len(staged)-1] {
		if p.size%stripeBytes != 0 {
			return nil, nil, fmt.Errorf("%w: part %d (%d bytes) is not stripe-aligned; only the final part may be",
				ErrInvalidArgument, i+1, p.size)
		}
	}
	for n, p := range s.parts {
		if !listed[n] {
			extra = append(extra, p)
		}
	}
	return staged, extra, nil
}

// AbortUpload tears an upload session down and garbage-collects every
// staged part's chunks. Parts still streaming clean up after
// themselves when they finish.
func (e *Engine) AbortUpload(ctx context.Context, uploadID string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	s, err := e.b.getUpload(uploadID)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUploadNotFound, uploadID)
	}
	s.closed = true
	staged := make([]*stagedPart, 0, len(s.parts))
	for _, p := range s.parts {
		staged = append(staged, p)
	}
	s.parts = nil
	s.mu.Unlock()
	e.b.removeUpload(uploadID)
	for _, p := range staged {
		e.deletePartChunks(s, p)
	}
	return nil
}

// deletePartChunks best-effort removes every chunk a staged part wrote.
func (e *Engine) deletePartChunks(s *uploadSession, p *stagedPart) {
	for st := 0; st < p.stripes; st++ {
		for i, name := range s.names {
			e.deleteChunkAt(name, PartChunkKey(s.skey, p.number, st, i))
		}
	}
}

// SweepExpiredUploads evicts multipart upload sessions whose last
// activity (creation, part upload, part listing) is at least ttl ago:
// abandoned sessions would otherwise pin their staged chunks — and the
// provider bytes billed for them — in perpetuity, since sessions live
// only in broker memory. Eviction follows the abort path: the session
// closes, leaves the table (the activeUploads gauge is the table
// length, so it drops with it) and every staged part's chunks are
// garbage-collected. Sessions with a part currently streaming are
// skipped — an in-flight part is activity, whatever the clock says.
// ttl <= 0 disables the sweep. Returns the number of sessions evicted.
func (b *Broker) SweepExpiredUploads(ttl time.Duration) int {
	if ttl <= 0 {
		return 0
	}
	now := b.now()
	b.uploadsMu.Lock()
	sessions := make([]*uploadSession, 0, len(b.uploads))
	for _, s := range b.uploads {
		sessions = append(sessions, s)
	}
	b.uploadsMu.Unlock()

	e := b.Engine(0)
	evicted := 0
	for _, s := range sessions {
		s.mu.Lock()
		if s.closed || len(s.inflight) > 0 || now.Sub(s.lastActive) < ttl {
			s.mu.Unlock()
			continue
		}
		s.closed = true
		staged := make([]*stagedPart, 0, len(s.parts))
		for _, p := range s.parts {
			staged = append(staged, p)
		}
		s.parts = nil
		s.mu.Unlock()
		b.removeUpload(s.id)
		for _, p := range staged {
			e.deletePartChunks(s, p)
		}
		evicted++
	}
	return evicted
}
