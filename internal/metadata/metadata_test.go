package metadata

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

// --- Vector clocks ---

func TestVectorClockCompare(t *testing.T) {
	a := VectorClock{"dc1": 2, "dc2": 1}
	b := VectorClock{"dc1": 2, "dc2": 1}
	if a.Compare(b) != Equal {
		t.Error("identical clocks must be Equal")
	}
	b = VectorClock{"dc1": 3, "dc2": 1}
	if a.Compare(b) != Before {
		t.Error("a must be Before b")
	}
	if b.Compare(a) != After {
		t.Error("b must be After a")
	}
	c := VectorClock{"dc1": 1, "dc2": 5}
	if a.Compare(c) != Concurrent {
		t.Error("a and c must be Concurrent")
	}
}

func TestVectorClockMissingEntries(t *testing.T) {
	a := VectorClock{"dc1": 1}
	b := VectorClock{"dc1": 1, "dc2": 1}
	if a.Compare(b) != Before {
		t.Errorf("a.Compare(b) = %v, want before", a.Compare(b))
	}
	// Zero entries are equivalent to absent ones.
	c := VectorClock{"dc1": 1, "dc2": 0}
	if a.Compare(c) != Equal {
		t.Errorf("a.Compare(c) = %v, want equal", a.Compare(c))
	}
}

func TestVectorClockTickMerge(t *testing.T) {
	a := VectorClock{}
	a.Tick("dc1").Tick("dc1")
	if a["dc1"] != 2 {
		t.Fatalf("ticks = %d", a["dc1"])
	}
	b := VectorClock{"dc2": 7, "dc1": 1}
	a.Merge(b)
	if a["dc1"] != 2 || a["dc2"] != 7 {
		t.Fatalf("merge = %v", a)
	}
	if !a.Dominates(b) {
		t.Error("merged clock must dominate its input")
	}
}

func TestVectorClockCompareAntisymmetric(t *testing.T) {
	f := func(a1, a2, b1, b2 uint8) bool {
		a := VectorClock{"x": uint64(a1), "y": uint64(a2)}
		b := VectorClock{"x": uint64(b1), "y": uint64(b2)}
		ab, ba := a.Compare(b), b.Compare(a)
		switch ab {
		case Equal:
			return ba == Equal
		case Before:
			return ba == After
		case After:
			return ba == Before
		default:
			return ba == Concurrent
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// --- Store ---

func ver(uuid string, ts int64, cols map[string]string) Version {
	return Version{UUID: uuid, Timestamp: ts, Columns: cols}
}

func TestStorePutGet(t *testing.T) {
	s := NewStore("dc1")
	if err := s.Put("row1", ver("u1", 100, map[string]string{"meta": "a"})); err != nil {
		t.Fatal(err)
	}
	got, losers, err := s.Get("row1")
	if err != nil {
		t.Fatal(err)
	}
	if got.UUID != "u1" || got.Columns["meta"] != "a" || len(losers) != 0 {
		t.Fatalf("Get = %+v losers=%v", got, losers)
	}
}

func TestStoreGetMissing(t *testing.T) {
	s := NewStore("dc1")
	if _, _, err := s.Get("nope"); !errors.Is(err, ErrRowNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestStoreLocalOverwriteSupersedes(t *testing.T) {
	s := NewStore("dc1")
	s.Put("r", ver("u1", 100, nil))
	s.Put("r", ver("u2", 200, nil))
	heads, err := s.Heads("r")
	if err != nil {
		t.Fatal(err)
	}
	if len(heads) != 1 || heads[0].UUID != "u2" {
		t.Fatalf("heads = %+v", heads)
	}
}

func TestStoreVersionIsolation(t *testing.T) {
	s := NewStore("dc1")
	cols := map[string]string{"k": "v"}
	s.Put("r", ver("u1", 1, cols))
	cols["k"] = "mutated"
	got, _, _ := s.Get("r")
	if got.Columns["k"] != "v" {
		t.Error("store must deep-copy versions")
	}
	got.Columns["k"] = "mutated2"
	again, _, _ := s.Get("r")
	if again.Columns["k"] != "v" {
		t.Error("returned versions must be copies")
	}
}

func TestStoreTombstone(t *testing.T) {
	s := NewStore("dc1")
	s.Put("r", ver("u1", 1, nil))
	if err := s.Delete("r", "u2", 2); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Get("r"); !errors.Is(err, ErrRowNotFound) {
		t.Fatalf("deleted row err = %v", err)
	}
	if got := s.Rows(); len(got) != 0 {
		t.Fatalf("Rows = %v", got)
	}
	s.Purge("r")
	if s.Len() != 0 {
		t.Fatal("purge must remove the row")
	}
}

func TestStoreDownNode(t *testing.T) {
	s := NewStore("dc1")
	s.Put("r", ver("u1", 1, nil))
	s.SetAvailable(false)
	if err := s.Put("r", ver("u2", 2, nil)); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("Put on down node: %v", err)
	}
	if _, _, err := s.Get("r"); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("Get on down node: %v", err)
	}
	s.SetAvailable(true)
	if _, _, err := s.Get("r"); err != nil {
		t.Fatalf("recovered node: %v", err)
	}
}

func TestStoreConcurrentWriters(t *testing.T) {
	s := NewStore("dc1")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				row := fmt.Sprintf("row%d", j%10)
				s.Put(row, ver(fmt.Sprintf("u%d-%d", id, j), int64(j), nil))
			}
		}(i)
	}
	wg.Wait()
	if got := len(s.Rows()); got != 10 {
		t.Fatalf("rows = %d, want 10", got)
	}
	for _, row := range s.Rows() {
		if _, _, err := s.Get(row); err != nil {
			t.Fatal(err)
		}
	}
}

// --- Cluster: the paper's Fig. 10 concurrent-write scenario ---

func twoDC() (*Cluster, *Store, *Store) {
	dc1, dc2 := NewStore("dc1"), NewStore("dc2")
	return NewCluster(dc1, dc2), dc1, dc2
}

func TestClusterReplication(t *testing.T) {
	c, _, dc2 := twoDC()
	if err := c.Put("dc1", "r", ver("u1", 100, map[string]string{"m": "x"})); err != nil {
		t.Fatal(err)
	}
	if _, _, err := dc2.Get("r"); !errors.Is(err, ErrRowNotFound) {
		t.Fatal("replication must be asynchronous")
	}
	c.Flush()
	got, _, err := dc2.Get("r")
	if err != nil {
		t.Fatal(err)
	}
	if got.UUID != "u1" || got.Columns["m"] != "x" {
		t.Fatalf("replicated version = %+v", got)
	}
}

func TestClusterConcurrentWriteConflictFreshestWins(t *testing.T) {
	// Fig. 10: the same row key updated concurrently in two datacenters
	// yields two versions; on detection the freshest timestamp wins and
	// the deprecated version is reported for chunk cleanup.
	c, dc1, dc2 := twoDC()
	c.Put("dc1", "r", ver("old", 100, map[string]string{"v": "old"}))
	c.Put("dc2", "r", ver("new", 200, map[string]string{"v": "new"}))
	c.Flush()

	for _, s := range []*Store{dc1, dc2} {
		heads, err := s.Heads("r")
		if err != nil {
			t.Fatal(err)
		}
		if len(heads) != 2 {
			t.Fatalf("%s: %d heads, want 2 (conflict)", s.Node(), len(heads))
		}
		winner, losers, err := s.Get("r")
		if err != nil {
			t.Fatal(err)
		}
		if winner.UUID != "new" {
			t.Fatalf("%s: winner = %s, want freshest", s.Node(), winner.UUID)
		}
		if len(losers) != 1 || losers[0].UUID != "old" {
			t.Fatalf("%s: losers = %+v", s.Node(), losers)
		}
		// Conflict is resolved permanently.
		if heads, _ := s.Heads("r"); len(heads) != 1 {
			t.Fatalf("%s: conflict must collapse to one head", s.Node())
		}
	}
}

func TestClusterResolutionConverges(t *testing.T) {
	c, dc1, dc2 := twoDC()
	c.Put("dc1", "r", ver("a", 100, nil))
	c.Put("dc2", "r", ver("b", 200, nil))
	c.Flush()
	dc1.Get("r") // resolve at dc1
	c.AntiEntropy()
	heads, err := dc2.Heads("r")
	if err != nil {
		t.Fatal(err)
	}
	if len(heads) != 1 || heads[0].UUID != "b" {
		t.Fatalf("dc2 after anti-entropy: %+v", heads)
	}
}

func TestClusterPartitionAndHeal(t *testing.T) {
	c, dc1, dc2 := twoDC()
	c.Partition("dc1", "dc2")
	c.Put("dc1", "r", ver("u1", 100, nil))
	c.Flush()
	if _, _, err := dc2.Get("r"); !errors.Is(err, ErrRowNotFound) {
		t.Fatal("partitioned peer must not receive the write")
	}
	if c.PendingReplication() == 0 {
		t.Fatal("events must queue during the partition")
	}
	c.Heal("dc1", "dc2")
	c.Flush()
	if _, _, err := dc2.Get("r"); err != nil {
		t.Fatalf("after heal: %v", err)
	}
	_ = dc1
}

func TestClusterDownNodeCatchesUp(t *testing.T) {
	c, _, dc2 := twoDC()
	dc2.SetAvailable(false)
	c.Put("dc1", "r", ver("u1", 100, nil))
	if n := c.Flush(); n != 0 {
		t.Fatalf("delivered %d to a down node", n)
	}
	dc2.SetAvailable(true)
	c.Flush()
	if _, _, err := dc2.Get("r"); err != nil {
		t.Fatalf("recovered node must converge: %v", err)
	}
}

func TestClusterWritesSurviveSingleDCOutage(t *testing.T) {
	// §III-D3: "as long as a single database node is up and running, no
	// operation will fail".
	c, dc1, dc2 := twoDC()
	dc2.SetAvailable(false)
	if err := c.Put("dc1", "r", ver("u1", 100, nil)); err != nil {
		t.Fatalf("write during DC outage: %v", err)
	}
	if _, _, err := dc1.Get("r"); err != nil {
		t.Fatal(err)
	}
	_ = dc2
}

func TestClusterTombstoneReplicates(t *testing.T) {
	c, dc1, dc2 := twoDC()
	c.Put("dc1", "r", ver("u1", 100, nil))
	c.Flush()
	if err := dc1.Delete("r", "u2", 200); err != nil {
		t.Fatal(err)
	}
	c.AntiEntropy()
	if _, _, err := dc2.Get("r"); !errors.Is(err, ErrRowNotFound) {
		t.Fatalf("tombstone must replicate, got %v", err)
	}
}

func TestClusterThreeDatacenters(t *testing.T) {
	dc1, dc2, dc3 := NewStore("dc1"), NewStore("dc2"), NewStore("dc3")
	c := NewCluster(dc1, dc2, dc3)
	c.Put("dc1", "a", ver("u1", 1, nil))
	c.Put("dc2", "b", ver("u2", 2, nil))
	c.Put("dc3", "c", ver("u3", 3, nil))
	c.Flush()
	for _, s := range c.Stores() {
		if got := len(s.Rows()); got != 3 {
			t.Fatalf("%s has %d rows, want 3", s.Node(), got)
		}
	}
}

func TestClusterConcurrentUse(t *testing.T) {
	c, _, _ := twoDC()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			node := "dc1"
			if id%2 == 1 {
				node = "dc2"
			}
			for j := 0; j < 50; j++ {
				row := fmt.Sprintf("r%d", j%5)
				c.Put(node, row, ver(fmt.Sprintf("u%d-%d", id, j), int64(id*1000+j), nil))
				c.Flush()
			}
		}(g)
	}
	wg.Wait()
	c.AntiEntropy()
	// Resolve everything everywhere; stores must converge.
	for _, s := range c.Stores() {
		for _, row := range s.Rows() {
			s.Get(row)
		}
	}
	c.AntiEntropy()
	a, b := c.Stores()[0], c.Stores()[1]
	for _, row := range a.Rows() {
		va, _, _ := a.Get(row)
		vb, _, _ := b.Get(row)
		if va.UUID != vb.UUID {
			t.Fatalf("row %s diverged: %s vs %s", row, va.UUID, vb.UUID)
		}
	}
}
