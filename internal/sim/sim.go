package sim

import (
	"sort"

	"scalia/internal/cloud"
	"scalia/internal/core"
	"scalia/internal/stats"
	"scalia/internal/trend"
	"scalia/internal/workload"
)

// Arrival registers a new provider mid-experiment (§IV-D).
type Arrival struct {
	Spec     cloud.Spec
	AtPeriod int
}

// Outage makes a provider unreachable during [From, To) (§IV-E).
type Outage struct {
	Provider string
	From, To int
}

// Config parameterizes a simulation run.
type Config struct {
	// Specs is the initial provider market (default: the Fig. 3 five).
	Specs []cloud.Spec
	// Rule is the customer rule applied to every object of the scenario.
	Rule core.Rule
	// PeriodHours is the sampling-period length (default 1).
	PeriodHours float64
	// DetectWindow/DetectLimit parameterize trend gating (defaults 3, 0.1).
	DetectWindow int
	DetectLimit  float64
	// DecisionPeriod is the initial D_obj (default 24).
	DecisionPeriod int
	// MigrationHorizon stretches the migration payback horizon (periods).
	MigrationHorizon int
	// Arrivals and Outages inject market/membership events.
	Arrivals []Arrival
	Outages  []Outage
	// ActiveRepair moves chunks away from failed providers instead of
	// waiting out the outage (§IV-E).
	ActiveRepair bool
	// StaticBaselines prices the scenario on these fixed sets; use
	// StaticSets() for the full Fig. 13 sweep.
	StaticBaselines []StaticSet
	// TrackResources enables the per-period resource series (Figs. 12/15/17).
	TrackResources bool
	// MigrationBilling selects how migrations are priced. The default
	// (BillFull) charges provider bandwidth for every moved byte.
	// BillOpsOnly charges only the operations — the accounting the
	// paper's §IV-D/§IV-E results imply (see EXPERIMENTS.md: under full
	// billing the ~80 chunk moves of the CheapStor experiment alone cost
	// ~21% of the experiment total, versus the paper's reported 0.35%).
	MigrationBilling MigrationBilling
	// Pruned selects the heuristic placement search in Scalia's engine.
	Pruned bool
}

// MigrationBilling modes.
type MigrationBilling int

// Billing modes for migration traffic.
const (
	BillFull MigrationBilling = iota
	BillOpsOnly
)

func (c *Config) fill() {
	if len(c.Specs) == 0 {
		c.Specs = cloud.PaperProviders()
	}
	if c.PeriodHours <= 0 {
		c.PeriodHours = 1
	}
	if c.DetectWindow <= 0 {
		c.DetectWindow = trend.DefaultWindow
	}
	if c.DetectLimit <= 0 {
		c.DetectLimit = trend.DefaultLimit
	}
	if c.DecisionPeriod <= 0 {
		c.DecisionPeriod = core.DefaultDecisionPeriod
	}
}

// SeriesPoint is one period of the Fig. 12/15/17 resource series.
type SeriesPoint struct {
	Period    int
	StorageGB float64 // GB held at providers (with erasure overhead)
	BwInGB    float64 // GB uploaded this period
	BwOutGB   float64 // GB downloaded this period
}

// StaticCost is the priced outcome of one fixed provider set.
type StaticCost struct {
	Index   int
	Label   string
	CostUSD float64
	OverPct float64
}

// PlacementChange records one Scalia migration for the experiment log.
type PlacementChange struct {
	Period int
	Object string
	From   string
	To     string
	Reason string
}

// Result aggregates a simulation run.
type Result struct {
	Scenario  string
	Periods   int
	IdealUSD  float64
	ScaliaUSD float64
	// ScaliaOverPct = (ScaliaUSD/IdealUSD - 1) * 100.
	ScaliaOverPct float64
	MigrationUSD  float64
	Migrations    int
	Statics       []StaticCost
	Resources     []SeriesPoint
	Changes       []PlacementChange
	// CumulativeScalia/CumulativeStatic hold per-period running totals
	// (Fig. 18); CumulativeStatic follows Config.StaticBaselines[0].
	CumulativeScalia []float64
	CumulativeStatic []float64
	// TrendRecomputations counts placement recomputation triggers.
	TrendRecomputations int
	// PlannerHits/PlannerMisses report the shared planner's prepared-
	// search cache effectiveness for the adaptive policy: misses equal
	// the number of market epochs the run saw, hits everything else.
	PlannerHits   uint64
	PlannerMisses uint64
}

// BestStatic returns the cheapest static baseline.
func (r *Result) BestStatic() StaticCost {
	best := r.Statics[0]
	for _, s := range r.Statics[1:] {
		if s.CostUSD < best.CostUSD {
			best = s
		}
	}
	return best
}

// WorstStatic returns the priciest static baseline.
func (r *Result) WorstStatic() StaticCost {
	worst := r.Statics[0]
	for _, s := range r.Statics[1:] {
		if s.CostUSD > worst.CostUSD {
			worst = s
		}
	}
	return worst
}

// simObject is the simulator's view of one stored object.
type simObject struct {
	name      string
	size      int64
	placement core.Placement
	hist      *stats.History
	ctl       *core.DecisionController
	createdAt int
	alive     bool
}

// market tracks provider membership and reachability over time.
type market struct {
	specs    []cloud.Spec
	arrivals []Arrival
	outages  []Outage
	// epochs[p] is the market epoch at period p: it increments on every
	// membership change (arrival, outage start, recovery), mirroring
	// cloud.Registry's epoch so the shared core.Planner can key prepared
	// searches. Built lazily; the sim is single-threaded.
	epochs []uint64
}

// epochAt returns the market epoch at period p.
func (m *market) epochAt(p int) uint64 {
	for len(m.epochs) <= p {
		q := len(m.epochs)
		if q == 0 {
			m.epochs = append(m.epochs, 0)
			continue
		}
		e := m.epochs[q-1]
		if m.membershipChanged(q) {
			e++
		}
		m.epochs = append(m.epochs, e)
	}
	return m.epochs[p]
}

// specsAt returns (registered, reachable) providers at period p.
func (m *market) specsAt(p int) (all, up []cloud.Spec) {
	all = append(all, m.specs...)
	for _, a := range m.arrivals {
		if p >= a.AtPeriod {
			all = append(all, a.Spec)
		}
	}
	for _, s := range all {
		if m.isUp(s.Name, p) {
			up = append(up, s)
		}
	}
	return all, up
}

func (m *market) isUp(name string, p int) bool {
	for _, o := range m.outages {
		if o.Provider == name && p >= o.From && p < o.To {
			return false
		}
	}
	return true
}

// membershipChanged reports whether the provider market differs between
// consecutive periods (arrival, failure, recovery) — the paper's other
// recompute trigger besides access-pattern change.
func (m *market) membershipChanged(p int) bool {
	if p == 0 {
		return false
	}
	prevAll, prevUp := m.specsAt(p - 1)
	curAll, curUp := m.specsAt(p)
	return len(prevAll) != len(curAll) || len(prevUp) != len(curUp) ||
		!sameNames(prevUp, curUp)
}

func sameNames(a, b []cloud.Spec) bool {
	if len(a) != len(b) {
		return false
	}
	an := make([]string, len(a))
	bn := make([]string, len(b))
	for i := range a {
		an[i], bn[i] = a[i].Name, b[i].Name
	}
	sort.Strings(an)
	sort.Strings(bn)
	for i := range an {
		if an[i] != bn[i] {
			return false
		}
	}
	return true
}

// Run simulates the scenario under cfg.
func Run(sc workload.Scenario, cfg Config) (*Result, error) {
	cfg.fill()
	if err := cfg.Rule.Validate(); err != nil {
		return nil, err
	}
	mkt := &market{specs: cfg.Specs, arrivals: cfg.Arrivals, outages: cfg.Outages}
	res := &Result{Scenario: sc.Name(), Periods: sc.Periods()}

	if err := runScalia(sc, cfg, mkt, res); err != nil {
		return nil, err
	}
	if err := runIdeal(sc, cfg, mkt, res); err != nil {
		return nil, err
	}
	for _, set := range cfg.StaticBaselines {
		cost, err := runStatic(sc, cfg, mkt, set)
		if err != nil {
			return nil, err
		}
		res.Statics = append(res.Statics, StaticCost{
			Index: set.Index, Label: set.Label(), CostUSD: cost,
		})
	}
	if res.IdealUSD > 0 {
		res.ScaliaOverPct = (res.ScaliaUSD/res.IdealUSD - 1) * 100
		for i := range res.Statics {
			res.Statics[i].OverPct = (res.Statics[i].CostUSD/res.IdealUSD - 1) * 100
		}
	}
	return res, nil
}

// periodSummary converts one period's actual load into a pricing summary.
func periodSummary(l workload.PeriodLoad, alive bool) stats.Summary {
	sum := stats.Summary{Periods: 1}
	sum.Reads = float64(l.Reads)
	sum.Writes = float64(l.Writes)
	sum.BytesOut = float64(l.Reads) * float64(l.Size)
	sum.BytesIn = float64(l.Writes) * float64(l.Size)
	if alive {
		sum.StorageBytes = float64(l.Size)
	}
	return sum
}

// reachablePlacement restricts a placement to reachable providers for
// the read path; storage is still billed at every provider holding a
// chunk. ok is false when fewer than m chunks are reachable.
func reachablePlacement(p core.Placement, mkt *market, period int) (core.Placement, bool) {
	up := core.Placement{M: p.M}
	for _, s := range p.Providers {
		if mkt.isUp(s.Name, period) {
			up.Providers = append(up.Providers, s)
		}
	}
	return up, up.N() >= p.M
}

// placementPeriodCost prices one object-period under outages: storage
// accrues at all n providers; reads are served by the m cheapest
// reachable ones; writes upload to all n (the simulator only bills
// writes at creation, when placements never include down providers).
func placementPeriodCost(p core.Placement, mkt *market, period int, load stats.Summary, periodHours float64) float64 {
	storageOnly := load
	storageOnly.Reads, storageOnly.BytesOut = 0, 0
	cost := core.PeriodCost(p, storageOnly, periodHours)
	if load.Reads > 0 {
		up, ok := reachablePlacement(p, mkt, period)
		if !ok {
			return cost // reads fail; no transfer billed
		}
		readOnly := load
		readOnly.Writes, readOnly.BytesIn, readOnly.StorageBytes = 0, 0, 0
		cost += core.PeriodCost(up, readOnly, periodHours)
	}
	return cost
}
