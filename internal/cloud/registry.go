package cloud

import (
	"fmt"
	"sort"
	"sync"
)

// Backend is a storage provider attached to the registry: the blob
// Store operations plus the descriptive surface the placement engine
// needs. In-memory simulated providers (*BlobStore) and remote private
// resources (privstore.Backend) both implement it.
type Backend interface {
	Store
	// Spec returns the provider description and price sheet.
	Spec() Spec
	// Available reports whether the provider is currently reachable.
	Available() bool
	// UsedBytes returns the stored byte volume (capacity accounting).
	UsedBytes() int64
}

// Meterer is implemented by backends that meter billable usage.
type Meterer interface {
	Meter() *Meter
}

// StorageAccruer is implemented by backends whose storage billing is
// advanced by simulated time.
type StorageAccruer interface {
	AccrueStorage(hours float64)
}

// AvailabilitySetter is implemented by backends supporting failure
// injection.
type AvailabilitySetter interface {
	SetAvailable(up bool)
}

// Registry is the dynamic, non-static set of storage resources Scalia
// orchestrates (public providers plus private resources, §III). Providers
// can be registered and deregistered at runtime; the placement engine
// reads a consistent snapshot each time it optimizes, which is how the
// CheapStor-arrival experiment (§IV-D) and provider bankruptcy are
// modelled.
type Registry struct {
	mu     sync.RWMutex
	stores map[string]Backend
	// watchers are notified (non-blocking) on membership changes so
	// engines can trigger re-optimization when P(obj) changes.
	watchers []chan struct{}
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{stores: make(map[string]Backend)}
}

// NewPaperRegistry returns a registry pre-populated with the five Fig. 3
// providers.
func NewPaperRegistry() *Registry {
	r := NewRegistry()
	for _, spec := range PaperProviders() {
		r.Register(NewBlobStore(spec))
	}
	return r
}

// Register adds a provider. Registering an existing name replaces its
// spec (a provider "suddenly increasing its pricing policy").
func (r *Registry) Register(s Backend) {
	r.mu.Lock()
	r.stores[s.Spec().Name] = s
	r.notifyLocked()
	r.mu.Unlock()
}

// Deregister removes a provider (business exit / boycott). The store is
// returned so callers can drain still-needed chunks.
func (r *Registry) Deregister(name string) (Backend, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.stores[name]
	if ok {
		delete(r.stores, name)
		r.notifyLocked()
	}
	return s, ok
}

// Store returns the provider with the given name.
func (r *Registry) Store(name string) (Backend, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.stores[name]
	return s, ok
}

// MustStore is Store for callers holding a name from a fresh snapshot.
func (r *Registry) MustStore(name string) Backend {
	s, ok := r.Store(name)
	if !ok {
		panic(fmt.Sprintf("cloud: unknown provider %q", name))
	}
	return s
}

// Snapshot returns the current provider set, sorted by name.
func (r *Registry) Snapshot() []Backend {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Backend, 0, len(r.stores))
	for _, s := range r.stores {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Spec().Name < out[j].Spec().Name })
	return out
}

// Specs returns the specs of all registered providers, sorted by name.
func (r *Registry) Specs() []Spec {
	stores := r.Snapshot()
	specs := make([]Spec, len(stores))
	for i, s := range stores {
		specs[i] = s.Spec()
	}
	return specs
}

// AvailableSpecs returns only the specs of providers that are currently
// reachable; write-time placement excludes faulty providers (§III-D3).
func (r *Registry) AvailableSpecs() []Spec {
	var specs []Spec
	for _, s := range r.Snapshot() {
		if s.Available() {
			specs = append(specs, s.Spec())
		}
	}
	return specs
}

// Len returns the number of registered providers.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.stores)
}

// Watch returns a channel that receives a signal after each membership
// change. The channel has capacity 1 and drops signals when full, so
// slow consumers coalesce changes.
func (r *Registry) Watch() <-chan struct{} {
	ch := make(chan struct{}, 1)
	r.mu.Lock()
	r.watchers = append(r.watchers, ch)
	r.mu.Unlock()
	return ch
}

func (r *Registry) notifyLocked() {
	for _, ch := range r.watchers {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// TotalUsage sums the billing meters of all metered providers.
func (r *Registry) TotalUsage() Usage {
	var total Usage
	for _, s := range r.Snapshot() {
		if m, ok := s.(Meterer); ok {
			total.Add(m.Meter().Snapshot())
		}
	}
	return total
}

// TotalCost prices every metered provider's usage with its own sheet.
func (r *Registry) TotalCost() float64 {
	var cost float64
	for _, s := range r.Snapshot() {
		if m, ok := s.(Meterer); ok {
			cost += m.Meter().Snapshot().Cost(s.Spec().Pricing)
		}
	}
	return cost
}

// AccrueStorage advances simulated time by the given hours on every
// provider that meters storage.
func (r *Registry) AccrueStorage(hours float64) {
	for _, s := range r.Snapshot() {
		if a, ok := s.(StorageAccruer); ok {
			a.AccrueStorage(hours)
		}
	}
}
