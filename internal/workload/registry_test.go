package workload

import "testing"

func TestRegistryBuiltins(t *testing.T) {
	want := []string{
		"backup", "backup-repair", "churn", "churn-doubled", "flashcrowd",
		"gallery", "slashdot", "zipf", "zipf-flashcrowd",
	}
	names := Names()
	have := map[string]bool{}
	for _, n := range names {
		have[n] = true
	}
	for _, n := range want {
		if !have[n] {
			t.Errorf("builtin %q missing from registry (have %v)", n, names)
		}
	}
}

func TestRegistryBuildsFreshDeterministicScenarios(t *testing.T) {
	for _, name := range Names() {
		a, err := New(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, _ := New(name)
		if a == b {
			t.Errorf("%s: New must build fresh instances", name)
		}
		if a.Periods() <= 0 {
			t.Errorf("%s: Periods = %d", name, a.Periods())
		}
		if a.Name() == "" {
			t.Errorf("%s: empty scenario name", name)
		}
		if !sameScenario(a, b) {
			t.Errorf("%s: registered scenario not deterministic", name)
		}
		e, ok := Describe(name)
		if !ok || e.Desc == "" {
			t.Errorf("%s: missing description", name)
		}
	}
}

func TestRegistryUnknown(t *testing.T) {
	if _, err := New("no-such-scenario"); err == nil {
		t.Fatal("unknown scenario must error")
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration must panic")
		}
	}()
	Register("slashdot", "dup", func() Scenario { return NewSlashdot() })
}
