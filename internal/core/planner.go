package core

import (
	"sync"
	"sync/atomic"

	"scalia/internal/cloud"
	"scalia/internal/stats"
)

// Planner is the shared placement-planning layer: it caches prepared
// Searches keyed by (market epoch, rule fingerprint) so the
// market-scoped feasibility work of Algorithm 1 runs once per market
// change instead of once per object. The engine's Put path, the
// periodic optimizer, the decision-period coupling probe, the repair
// pass and the cost simulator all plan through one Planner. It is safe
// for concurrent use: optimize and repair shards on many engines plan
// against the same instance.
type Planner struct {
	periodHours float64
	pruned      bool

	mu    sync.RWMutex
	epoch uint64
	cache map[string]plannerEntry // rule fingerprint -> prepared search

	hits   atomic.Uint64
	misses atomic.Uint64
}

// plannerEntry caches the prepared search or the preparation error
// (e.g. ErrNoProviders for a rule no market subset satisfies — caching
// the failure keeps repeated infeasible requests from re-enumerating).
type plannerEntry struct {
	search *Search
	err    error
}

// PlannerStats reports cache effectiveness counters. Hits and Misses
// are cumulative over the Planner's lifetime.
type PlannerStats struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
}

// NewPlanner creates a planner. periodHours is the sampling-period
// length used for pricing (default 1); pruned selects the polynomial
// heuristic instead of the exact enumeration.
func NewPlanner(periodHours float64, pruned bool) *Planner {
	if periodHours <= 0 {
		periodHours = 1
	}
	return &Planner{
		periodHours: periodHours,
		pruned:      pruned,
		cache:       make(map[string]plannerEntry),
	}
}

// Search returns the prepared search for the rule on the market
// identified by epoch, preparing (and caching) it on first use. specs
// must be the market's available providers at that epoch; a changed
// epoch invalidates every cached search.
func (p *Planner) Search(epoch uint64, specs []cloud.Spec, rule Rule) (*Search, error) {
	fp := rule.Fingerprint()

	p.mu.RLock()
	if p.epoch == epoch {
		if e, ok := p.cache[fp]; ok {
			p.mu.RUnlock()
			p.hits.Add(1)
			return e.search, e.err
		}
	}
	p.mu.RUnlock()

	// Prepare outside the lock: NewSearch is the expensive exponential
	// enumeration and must not serialize concurrent shards.
	search, err := NewSearch(specs, rule, Options{PeriodHours: p.periodHours, Pruned: p.pruned})
	p.misses.Add(1)

	p.mu.Lock()
	if p.epoch != epoch {
		// Either the market moved on (our result is stale — return it for
		// this call but don't poison the cache with it) or the cache holds
		// an older epoch (reset it before storing).
		if epochNewer(epoch, p.epoch) {
			p.epoch = epoch
			p.cache = map[string]plannerEntry{fp: {search: search, err: err}}
		}
		p.mu.Unlock()
		return search, err
	}
	if e, ok := p.cache[fp]; ok {
		// A concurrent caller prepared the same search first; converge on
		// the cached instance so every shard shares one Search.
		p.mu.Unlock()
		return e.search, e.err
	}
	p.cache[fp] = plannerEntry{search: search, err: err}
	p.mu.Unlock()
	return search, err
}

// epochNewer reports whether a is a later epoch than b. Registry epochs
// increase monotonically; the comparison only matters when a planner is
// fed from one registry, where wraparound is unreachable.
func epochNewer(a, b uint64) bool { return a > b }

// Best plans the cheapest feasible placement for one object: it
// resolves the prepared search for (epoch, rule) and evaluates it under
// the object's load, size and the market's free-capacity map. The
// returned Placement owns its Providers slice — unlike Search.Best, the
// result does not alias the cached feasible set, so callers (and the
// public API surfaces the engine forwards it to) may hold or mutate it
// freely.
func (p *Planner) Best(epoch uint64, specs []cloud.Spec, rule Rule,
	load stats.Summary, objectBytes int64, free map[string]int64) (Result, error) {
	search, err := p.Search(epoch, specs, rule)
	if err != nil {
		return Result{}, err
	}
	res := search.Best(load, objectBytes, free)
	if !res.Feasible {
		return Result{Evaluated: res.Evaluated}, ErrNoProviders
	}
	res.Placement.Providers = append([]cloud.Spec(nil), res.Placement.Providers...)
	return res, nil
}

// Stats returns the cumulative cache hit/miss counters.
func (p *Planner) Stats() PlannerStats {
	return PlannerStats{Hits: p.hits.Load(), Misses: p.misses.Load()}
}
