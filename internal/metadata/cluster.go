package metadata

import (
	"sync"
)

// replEvent is one version awaiting delivery to a peer datacenter.
type replEvent struct {
	row string
	v   Version
}

// Cluster wires several datacenter Stores into a multi-master replicated
// database: every write is queued for asynchronous delivery to all other
// datacenters, network partitions buffer the queues, and anti-entropy
// synchronization reconciles full version sets after recovery. Reads are
// served by the local node (eventual consistency), matching the paper's
// Cassandra deployment.
type Cluster struct {
	mu     sync.Mutex
	stores []*Store
	queues map[string]map[string][]replEvent // src -> dst -> pending
	links  map[string]map[string]bool        // src -> dst -> up
}

// NewCluster builds a cluster over the given datacenter nodes; all
// inter-DC links start connected.
func NewCluster(stores ...*Store) *Cluster {
	c := &Cluster{
		stores: stores,
		queues: make(map[string]map[string][]replEvent),
		links:  make(map[string]map[string]bool),
	}
	for _, src := range stores {
		c.queues[src.Node()] = make(map[string][]replEvent)
		c.links[src.Node()] = make(map[string]bool)
		for _, dst := range stores {
			if src != dst {
				c.links[src.Node()][dst.Node()] = true
			}
		}
	}
	return c
}

// Stores returns the member nodes.
func (c *Cluster) Stores() []*Store { return c.stores }

// Store returns the node with the given name, or nil.
func (c *Cluster) Store(node string) *Store {
	for _, s := range c.stores {
		if s.Node() == node {
			return s
		}
	}
	return nil
}

// Put writes through the named node and enqueues replication to peers.
func (c *Cluster) Put(node, row string, v Version) error {
	src := c.Store(node)
	if src == nil {
		return ErrNodeDown
	}
	if err := src.Put(row, v); err != nil {
		return err
	}
	// Replicate the post-write head set (the version as causally stamped
	// by the source node).
	heads, err := src.Heads(row)
	if err != nil && err != ErrRowNotFound {
		return err
	}
	c.mu.Lock()
	for _, dst := range c.stores {
		if dst == src {
			continue
		}
		for _, h := range heads {
			c.queues[src.Node()][dst.Node()] = append(c.queues[src.Node()][dst.Node()],
				replEvent{row: row, v: h})
		}
		if len(heads) == 0 { // tombstone write
			if hs := src.dump()[row]; hs != nil {
				for _, h := range hs {
					c.queues[src.Node()][dst.Node()] = append(c.queues[src.Node()][dst.Node()],
						replEvent{row: row, v: h})
				}
			}
		}
	}
	c.mu.Unlock()
	return nil
}

// Partition severs the links between two nodes in both directions;
// writes keep queueing locally.
func (c *Cluster) Partition(a, b string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.links[a][b] = false
	c.links[b][a] = false
}

// Heal restores the links between two nodes.
func (c *Cluster) Heal(a, b string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.links[a][b] = true
	c.links[b][a] = true
}

// Flush delivers every queued replication event whose link is up.
// Returns the number of delivered events.
func (c *Cluster) Flush() int {
	c.mu.Lock()
	type delivery struct {
		src, dst string
		ev       replEvent
	}
	var deliveries []delivery
	for srcName, byDst := range c.queues {
		for dstName, events := range byDst {
			if !c.links[srcName][dstName] {
				continue
			}
			dst := c.Store(dstName)
			if dst == nil || !dst.Available() {
				continue
			}
			for _, ev := range events {
				deliveries = append(deliveries, delivery{src: srcName, dst: dstName, ev: ev})
			}
			c.queues[srcName][dstName] = nil
		}
	}
	c.mu.Unlock()

	delivered := 0
	for _, d := range deliveries {
		// A node that went down mid-flush keeps its events queued.
		if err := c.Store(d.dst).merge(d.ev.row, d.ev.v); err != nil {
			c.mu.Lock()
			c.queues[d.src][d.dst] = append(c.queues[d.src][d.dst], d.ev)
			c.mu.Unlock()
			continue
		}
		delivered++
	}
	return delivered
}

// AntiEntropy performs a full pairwise reconciliation: every node's
// version sets are exchanged and merged, converging all reachable nodes
// to identical row states (Cassandra's repair path; run after partitions
// heal).
func (c *Cluster) AntiEntropy() {
	for _, src := range c.stores {
		if !src.Available() {
			continue
		}
		snapshot := src.dump()
		for _, dst := range c.stores {
			if dst == src || !dst.Available() {
				continue
			}
			c.mu.Lock()
			linked := c.links[src.Node()][dst.Node()]
			c.mu.Unlock()
			if !linked {
				continue
			}
			for row, versions := range snapshot {
				for _, v := range versions {
					dst.merge(row, v) //nolint:errcheck // down nodes re-sync later
				}
			}
		}
	}
}

// PendingReplication counts undelivered replication events.
func (c *Cluster) PendingReplication() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, byDst := range c.queues {
		for _, events := range byDst {
			n += len(events)
		}
	}
	return n
}
