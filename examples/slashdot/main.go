// Slashdot: reproduce the paper's §IV-B flash-crowd scenario
// end-to-end through the real broker data path (not the cost
// simulator): a 1 MB page is quiet for two days, suddenly receives 150
// reads/hour, and the optimizer migrates it from a storage-optimized
// wide stripe to a read-optimized [S3(h), S3(l); m:1] placement.
package main

import (
	"context"
	"fmt"
	"log"

	"scalia"
	"scalia/internal/engine"
	"scalia/internal/workload"
)

func main() {
	ctx := context.Background()
	clock := engine.NewSimClock()
	rule := scalia.Rule{
		Name: "slashdot", Durability: 0.99999, Availability: 0.9999, LockIn: 1,
	}
	client, err := scalia.New(scalia.Options{Clock: clock})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	scenario := workload.NewSlashdot()
	page := make([]byte, scenario.SizeBytes)
	if _, err := client.Put(ctx, "web", "page", page, scalia.WithRule(rule)); err != nil {
		log.Fatal(err)
	}
	start, _ := client.CurrentPlacement("web", "page")
	fmt.Printf("hour   0: initial placement %v\n", start)

	last := start
	for hour := 1; hour < scenario.Periods(); hour++ {
		clock.Advance(1)
		reads := scenario.ReadsAt(hour)
		for r := int64(0); r < reads; r++ {
			if _, _, err := client.Get(ctx, "web", "page"); err != nil {
				log.Fatal(err)
			}
		}
		if _, err := client.Optimize(ctx); err != nil {
			log.Fatal(err)
		}
		client.AccrueStorage(1)
		if p, ok := client.CurrentPlacement("web", "page"); ok && !p.Equal(last) {
			fmt.Printf("hour %3d: reads=%3d placement %v -> %v\n", hour, reads, last, p)
			last = p
		}
	}
	usage := client.TotalUsage()
	fmt.Printf("\nfinal placement: %v\n", last)
	fmt.Printf("total resources: %s\n", usage)
	fmt.Printf("total provider spend: %.4f USD\n", client.TotalCost())
}
