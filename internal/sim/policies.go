package sim

import (
	"fmt"

	"scalia/internal/cloud"
	"scalia/internal/core"
	"scalia/internal/stats"
	"scalia/internal/trend"
	"scalia/internal/workload"
)

// runScalia simulates the adaptive policy, filling res.ScaliaUSD,
// resource series, placement-change log and cumulative series. The
// placement searches run through the shared core.Planner — the same
// layer the production engine uses — keyed by the market's epoch, so
// almost every period reuses the previous prepared search.
func runScalia(sc workload.Scenario, cfg Config, mkt *market, res *Result) error {
	objects := make(map[string]*simObject)
	var order []string
	planner := core.NewPlanner(cfg.PeriodHours, cfg.Pruned)

	var total float64
	for p := 0; p < sc.Periods(); p++ {
		_, up := mkt.specsAt(p)
		search, err := planner.Search(mkt.epochAt(p), up, cfg.Rule)
		if err != nil {
			return fmt.Errorf("sim: period %d: %w", p, err)
		}
		membership := mkt.membershipChanged(p)
		loads := sc.Load(p)
		loadByObj := make(map[string]workload.PeriodLoad, len(loads))
		for _, l := range loads {
			loadByObj[l.Object] = l
			if _, ok := objects[l.Object]; !ok {
				// First placement: no access history; price the creation
				// write itself (class statistics are the engine-layer
				// refinement; scenario objects are homogeneous).
				sum := stats.Summary{
					Periods: 1, Writes: 1,
					BytesIn:      float64(l.Size),
					StorageBytes: float64(l.Size),
				}
				best := search.Best(sum, 0, nil)
				if !best.Feasible {
					return fmt.Errorf("sim: no feasible placement for %s", l.Object)
				}
				objects[l.Object] = &simObject{
					name:      l.Object,
					size:      l.Size,
					placement: best.Placement,
					hist:      stats.NewHistory(0),
					ctl:       core.NewDecisionController(cfg.DecisionPeriod, 0),
					createdAt: p,
					alive:     true,
				}
				order = append(order, l.Object)
			}
		}

		point := SeriesPoint{Period: p}
		var periodCost float64
		for _, name := range order {
			obj := objects[name]
			if !obj.alive {
				continue
			}
			l := loadByObj[name]
			l.Size = obj.size
			sum := periodSummary(l, true)
			obj.hist.Record(stats.Sample{
				Period: int64(p), Reads: l.Reads, Writes: l.Writes,
				BytesOut: l.Reads * obj.size, BytesIn: l.Writes * obj.size,
				StorageBytes: obj.size,
			})
			periodCost += placementPeriodCost(obj.placement, mkt, p, sum, cfg.PeriodHours)
			if cfg.TrackResources {
				overhead := float64(obj.placement.N()) / float64(obj.placement.M)
				point.StorageGB += float64(obj.size) / 1e9 * overhead
				point.BwInGB += float64(l.Writes) * float64(obj.size) / 1e9 * overhead
				if _, ok := reachablePlacement(obj.placement, mkt, p); ok {
					point.BwOutGB += float64(l.Reads) * float64(obj.size) / 1e9
				}
			}
			if l.Deleted {
				obj.alive = false
			}
		}

		// Adaptation pass: trend-gated recomputation, membership-change
		// recomputation, and active repair.
		migUSD, migIn, migOut := adaptScalia(objects, order, cfg, mkt, planner, search, p, membership, res)
		total += periodCost + migUSD
		res.MigrationUSD += migUSD
		if cfg.TrackResources {
			point.BwInGB += migIn
			point.BwOutGB += migOut
			res.Resources = append(res.Resources, point)
		}
		res.CumulativeScalia = append(res.CumulativeScalia, total)
	}
	res.ScaliaUSD = total
	st := planner.Stats()
	res.PlannerHits, res.PlannerMisses = st.Hits, st.Misses
	return nil
}

// adaptScalia runs the per-period optimization procedure over the
// simulated objects, returning the migration spend and traffic. Repair
// placements are planned through the shared core.Planner entry point —
// the same one the production Broker.Repair uses — so simulated and
// production repair decisions provably agree.
func adaptScalia(objects map[string]*simObject, order []string, cfg Config,
	mkt *market, planner *core.Planner, search *core.Search, p int, membership bool, res *Result) (usd, inGB, outGB float64) {
	_, up := mkt.specsAt(p)
	aliveAt := func(name string) bool { return mkt.isUp(name, p) }
	for _, name := range order {
		obj := objects[name]
		if !obj.alive {
			continue
		}
		var reachable []cloud.Spec
		downChunk := false
		for _, s := range obj.placement.Providers {
			if mkt.isUp(s.Name, p) {
				reachable = append(reachable, s)
			} else {
				downChunk = true
			}
		}
		// The degraded placement violates the rule when the surviving
		// providers can no longer support threshold m; that is what forces
		// a repair rather than waiting out the outage (§IV-E).
		degraded := downChunk &&
			core.FeasibleThreshold(reachable, cfg.Rule.Durability, cfg.Rule.Availability) < obj.placement.M
		repairing := cfg.ActiveRepair && degraded

		trigger := membership || repairing ||
			trendChanged(obj.hist, int64(p), cfg.DetectWindow, cfg.DetectLimit)
		if !trigger {
			continue
		}
		res.TrendRecomputations++

		d := updateDecision(obj, cfg, search, int64(p))
		sum := obj.hist.Summary(int64(p), d)
		sum.StorageBytes = float64(obj.size)

		var best core.Result
		if repairing {
			// The paper's cheap repair: keep m and n, swap the unreachable
			// provider(s) for the best spare(s); re-stripe only when no
			// feasible swap exists. Planner.Repair makes that choice.
			if plan, err := planner.Repair(mkt.epochAt(p), up, cfg.Rule,
				obj.placement, aliveAt, sum, 0, nil); err == nil {
				best = core.Result{Placement: plan.Placement, Feasible: true, Price: plan.Price}
			}
		} else {
			best = search.Best(sum, 0, nil)
		}
		if !best.Feasible || best.Placement.Equal(obj.placement) {
			continue
		}
		// Repair migrations are durability-driven and bypass economics;
		// cost-driven ones must pay back within the horizon.
		migCost := migrationCost(obj.placement, best.Placement, float64(obj.size)/1e9, cfg.MigrationBilling)
		if !repairing {
			horizon := d
			if cfg.MigrationHorizon > horizon {
				horizon = cfg.MigrationHorizon
			}
			curPrice := core.PeriodCost(obj.placement, sum, cfg.PeriodHours)
			if (curPrice-best.Price)*float64(horizon) <= migCost {
				continue
			}
		}
		// The migration read needs m reachable chunks.
		if _, ok := reachablePlacement(obj.placement, mkt, p); !ok {
			continue
		}
		usd += migCost
		moved := float64(obj.size) / 1e9 / float64(obj.placement.M) // per-chunk GB
		if obj.placement.M == best.Placement.M && obj.placement.N() == best.Placement.N() {
			diff := 0
			for _, s := range best.Placement.Providers {
				if !obj.placement.Has(s.Name) {
					diff++
				}
			}
			outGB += moved * float64(diff)
			inGB += moved * float64(diff)
		} else {
			outGB += float64(obj.size) / 1e9 // read m chunks
			inGB += float64(obj.size) / 1e9 / float64(best.Placement.M) * float64(best.Placement.N())
		}
		res.Changes = append(res.Changes, PlacementChange{
			Period: p, Object: obj.name,
			From: obj.placement.String(), To: best.Placement.String(),
			Reason: reason(membership, repairing),
		})
		res.Migrations++
		obj.placement = best.Placement
	}
	return usd, inGB, outGB
}

// migrationCost prices a migration under the configured billing mode.
// BillOpsOnly zeroes the bandwidth components by pricing against
// bandwidth-free copies of the provider specs.
func migrationCost(from, to core.Placement, sizeGB float64, mode MigrationBilling) float64 {
	if mode == BillFull {
		return core.MigrationCost(from, to, sizeGB)
	}
	return core.MigrationCost(zeroBandwidth(from), zeroBandwidth(to), sizeGB)
}

func zeroBandwidth(p core.Placement) core.Placement {
	out := core.Placement{M: p.M, Providers: make([]cloud.Spec, len(p.Providers))}
	for i, s := range p.Providers {
		s.Pricing.BandwidthInGB = 0
		s.Pricing.BandwidthOutGB = 0
		out.Providers[i] = s
	}
	return out
}

func reason(membership, repairing bool) string {
	switch {
	case repairing:
		return "active-repair"
	case membership:
		return "membership-change"
	default:
		return "trend-change"
	}
}

// updateDecision advances the object's decision-period controller,
// running the D/2, D, 2D coupling evaluation when due.
func updateDecision(obj *simObject, cfg Config, search *core.Search, now int64) int {
	if !obj.ctl.Tick() {
		return obj.ctl.D()
	}
	limit := obj.hist.Span(now)
	cands := obj.ctl.Candidates(limit)
	bestIdx, bestPrice := 1, 0.0
	for i, d := range cands {
		sum := obj.hist.Summary(now, d)
		sum.StorageBytes = float64(obj.size)
		r := search.Best(sum, 0, nil)
		if !r.Feasible {
			continue
		}
		if i == 0 || r.Price < bestPrice {
			bestIdx, bestPrice = i, r.Price
		}
	}
	obj.ctl.Update(bestIdx, cands)
	return obj.ctl.D()
}

// trendChanged is the stateless momentum gate over the recorded ops
// series (w-period SMA shift at the newest observation).
func trendChanged(h *stats.History, now int64, w int, limit float64) bool {
	series := h.OpsSeries(now, w+1)
	if len(series) < w+1 {
		return false
	}
	var prev, cur float64
	for i := 0; i < w; i++ {
		prev += series[i]
		cur += series[i+1]
	}
	return trend.Momentum(prev/float64(w), cur/float64(w)) > limit
}

// runIdeal prices the per-period cheapest feasible placement with the
// load known a priori — the paper's baseline.
func runIdeal(sc workload.Scenario, cfg Config, mkt *market, res *Result) error {
	// The baseline always prices with the exact search, even when
	// Scalia's engine runs the pruned heuristic — Pruned is an engine
	// ablation, not a change to the ideal cost.
	planner := core.NewPlanner(cfg.PeriodHours, false)
	sizes := make(map[string]int64)
	alive := make(map[string]bool)
	var order []string

	var total float64
	for p := 0; p < sc.Periods(); p++ {
		_, up := mkt.specsAt(p)
		search, err := planner.Search(mkt.epochAt(p), up, cfg.Rule)
		if err != nil {
			return err
		}
		loadByObj := make(map[string]workload.PeriodLoad)
		for _, l := range sc.Load(p) {
			loadByObj[l.Object] = l
			if !alive[l.Object] {
				if _, seen := sizes[l.Object]; !seen {
					order = append(order, l.Object)
				}
				alive[l.Object] = true
				sizes[l.Object] = l.Size
			}
		}
		for _, name := range order {
			if !alive[name] {
				continue
			}
			l := loadByObj[name]
			l.Size = sizes[name]
			sum := periodSummary(l, true)
			best := search.Best(sum, 0, nil)
			if !best.Feasible {
				return fmt.Errorf("sim: ideal infeasible for %s at %d", name, p)
			}
			total += best.Price
			if l.Deleted {
				alive[name] = false
			}
		}
	}
	res.IdealUSD = total
	return nil
}

// staticCumulative prices the scenario on one fixed provider set and
// returns the per-period cumulative cost series. Objects are placed at
// creation on the reachable members of the set with the largest feasible
// threshold; placements never change afterwards (chunks at a failed
// provider stay there, §IV-E).
func staticCumulative(sc workload.Scenario, cfg Config, mkt *market, set StaticSet) ([]float64, error) {
	specsByName := make(map[string]cloud.Spec)
	for _, s := range cfg.Specs {
		specsByName[s.Name] = s
	}
	for _, a := range cfg.Arrivals {
		specsByName[a.Spec.Name] = a.Spec
	}
	members := make([]cloud.Spec, 0, len(set.Names))
	for _, n := range set.Names {
		s, ok := specsByName[n]
		if !ok {
			return nil, fmt.Errorf("sim: static set references unknown provider %q", n)
		}
		members = append(members, s)
	}

	placements := make(map[string]core.Placement)
	sizes := make(map[string]int64)
	alive := make(map[string]bool)
	var order []string

	var total float64
	out := make([]float64, 0, sc.Periods())
	for p := 0; p < sc.Periods(); p++ {
		loadByObj := make(map[string]workload.PeriodLoad)
		for _, l := range sc.Load(p) {
			loadByObj[l.Object] = l
			if _, ok := placements[l.Object]; !ok {
				upMembers := make([]cloud.Spec, 0, len(members))
				for _, s := range members {
					if mkt.isUp(s.Name, p) {
						upMembers = append(upMembers, s)
					}
				}
				m := core.FeasibleThreshold(upMembers, cfg.Rule.Durability, cfg.Rule.Availability)
				if m <= 0 {
					// The degraded set cannot satisfy the rule; the static
					// deployment stores anyway at maximum striping (its
					// whole point is that it cannot adapt).
					m = len(upMembers)
					if m == 0 {
						return nil, fmt.Errorf("sim: static set %s entirely down at %d", set.Label(), p)
					}
				}
				placements[l.Object] = core.Placement{Providers: upMembers, M: m}
				sizes[l.Object] = l.Size
				alive[l.Object] = true
				order = append(order, l.Object)
			}
		}
		for _, name := range order {
			if !alive[name] {
				continue
			}
			l := loadByObj[name]
			l.Size = sizes[name]
			sum := periodSummary(l, true)
			total += placementPeriodCost(placements[name], mkt, p, sum, cfg.PeriodHours)
			if l.Deleted {
				alive[name] = false
			}
		}
		out = append(out, total)
	}
	return out, nil
}

// runStatic prices one fixed set, returning its total cost.
func runStatic(sc workload.Scenario, cfg Config, mkt *market, set StaticSet) (float64, error) {
	series, err := staticCumulative(sc, cfg, mkt, set)
	if err != nil {
		return 0, err
	}
	return series[len(series)-1], nil
}

// StaticCumulative prices one fixed set and returns the per-period
// cumulative cost series (Fig. 18's static curve).
func StaticCumulative(sc workload.Scenario, cfg Config, set StaticSet) ([]float64, error) {
	cfg.fill()
	mkt := &market{specs: cfg.Specs, arrivals: cfg.Arrivals, outages: cfg.Outages}
	return staticCumulative(sc, cfg, mkt, set)
}
