package engine

import (
	"context"
	"crypto/md5"
	"encoding/hex"
	"errors"
	"fmt"
	"hash"
	"io"
	"sort"
	"sync"
	"time"

	"scalia/internal/cloud"
	"scalia/internal/erasure"
	"scalia/internal/obs"
	"scalia/internal/stats"
)

// This file is the streaming read path: a stripe-pipelined, chunk-
// parallel object reader over the stripe-granular cache.
//
// A read of stripe s goes through three layers:
//
//  1. the stripe cache — a hit costs no provider traffic at all;
//  2. a bounded worker pool that fetches the stripe's m cheapest
//     chunks concurrently (first m successes win), falling back along
//     the ranked provider order when a fetch fails mid-read;
//  3. erasure decode, after which the stripe is written back to the
//     cache (user-facing reads only).
//
// Independently, the stream is pipelined: while stripe s drains to the
// client, a prefetcher works ahead on stripes s+1..s+k
// (k = Config.PrefetchStripes), fetching and decoding them
// concurrently and handing them to the consumer in order, so provider
// latency and decode cost overlap with client consumption. Cancelling
// the request context tears down the prefetcher and every in-flight
// chunk fetch.

// objectReader streams the stripes [start, end] of a stored object.
type objectReader struct {
	e      *Engine
	ctx    context.Context
	cancel context.CancelFunc
	meta   ObjectMeta
	obj    string
	// cacheID is the stripe-cache identity of this object VERSION:
	// objectName plus the version UUID. Versioned keys make the cache
	// immune to the invalidate-then-fill race — a slow reader of the
	// old version fills old-version keys, which a reader of the new
	// version can never hit. Superseded entries are invalidated
	// eagerly where the previous version is known and age out of the
	// LRU otherwise.
	cacheID string
	// order ranks chunk indexes by marginal read cost at their
	// provider, cheapest first; computed once at open. rankErr defers
	// an insufficient-providers error until a stripe actually needs a
	// provider fetch, so fully cached objects stay readable through an
	// outage.
	order   []int
	rankErr error
	coder   *erasure.Coder
	// userRead marks a client-facing stream: it fills the stripe cache
	// and logs the read event on completion. Internal streams
	// (migration, repair) do neither.
	userRead bool

	start, end int // inclusive stripe range

	// sum accumulates the whole-object checksum; hashAll stays true
	// only while every stripe so far was hashed in order, which makes
	// the final comparison meaningful. A stripe served from the cache
	// breaks the chain (cache entries are trusted: they were decoded by
	// a verified read and are invalidated on writes).
	sum     hash.Hash
	hashAll bool

	pipe chan stripeOut // prefetch pipeline; nil = unpipelined
	next int            // next stripe to load (unpipelined mode)

	cur     []byte // decoded, unconsumed bytes of the current stripe
	curSlot bool   // cur holds a stripe slot of the broker read budget
	fetched int64  // payload bytes delivered so far
	logged  bool   // read event emitted
	err     error  // sticky terminal state (io.EOF after full drain)
}

// stripeOut is one prefetched stripe (or the error that ended the
// pipeline). slot marks a stripe holding one slot of the broker-wide
// read-buffer budget; whoever drops the stripe must release it.
type stripeOut struct {
	data []byte
	slot bool
	err  error
}

// prodOut is one produced (fetched-or-cached, decoded) stripe before
// in-order finalization.
type prodOut struct {
	data   []byte
	cached bool
	slot   bool
	err    error
}

// openObjectReader builds the full-object stripe stream; see
// openObjectRange.
func (e *Engine) openObjectReader(ctx context.Context, meta ObjectMeta, userRead bool) (*objectReader, error) {
	return e.openObjectRange(ctx, meta, 0, meta.StripeCount()-1, userRead)
}

// openObjectRange builds the stripe stream for stripes [start, end] and
// eagerly produces the first stripe, so placement and availability
// errors surface at open rather than mid-stream. userRead selects
// client-read semantics: stripe-cache fill and a read statistics event
// when the stream completes.
func (e *Engine) openObjectRange(ctx context.Context, meta ObjectMeta, start, end int, userRead bool) (*objectReader, error) {
	n := len(meta.Chunks)
	// The coder is resolved through the package-level cache: it depends
	// only on (m, n), and rebuilding (and Gauss-inverting) the
	// generator matrix per stream would put a matrix inversion on the
	// hot read path.
	coder, err := erasure.Cached(meta.M, n)
	if err != nil {
		return nil, err
	}
	order, rankErr := e.rankChunks(meta, nil)
	ctx, cancel := context.WithCancel(ctx)
	or := &objectReader{
		e: e, ctx: ctx, cancel: cancel, meta: meta,
		obj:     objectName(meta.Container, meta.Key),
		cacheID: stripeCacheID(objectName(meta.Container, meta.Key), meta.UUID),
		order:   order, rankErr: rankErr, coder: coder,
		userRead: userRead, start: start, end: end,
		// The whole-object hash chain only pays off when the final
		// comparison can run, i.e. the stream covers every stripe.
		// Multipart versions opt out: their Checksum is an ETag-of-ETags
		// composite, not a body MD5 (per-stripe sums still verify every
		// fetched stripe).
		sum: md5.New(), hashAll: start == 0 && end == meta.StripeCount()-1 && !meta.Multipart(),
		next: start + 1,
	}
	first, slot, err := or.loadStripe(start)
	if err != nil {
		cancel()
		return nil, err
	}
	or.cur = first
	or.curSlot = slot
	or.fetched = int64(len(first))
	if prefetch := e.b.cfg.PrefetchStripes; prefetch > 0 && end > start {
		or.pipe = make(chan stripeOut, prefetch)
		go or.prefetch(start + 1)
	}
	return or, nil
}

// rankChunks orders a version's chunk indexes by marginal read cost at
// their provider, cheapest first — the paper's "chunks are read from
// the m cheapest providers" (§III-B). Slots in skip (nil = none) and
// unreachable providers are excluded; when fewer than m remain, the
// ranking plus an ErrNotEnoughChunks are both returned so the caller
// can still serve cached stripes. The repair path shares this ranking,
// skipping the slots it is replacing.
func (e *Engine) rankChunks(meta ObjectMeta, skip map[int]bool) ([]int, error) {
	type ranked struct {
		idx  int
		cost float64
	}
	n := len(meta.Chunks)
	chunkGB := cloud.GB((meta.Size + int64(meta.M) - 1) / int64(meta.M))
	order := make([]ranked, 0, n)
	for i, name := range meta.Chunks {
		if skip[i] {
			continue
		}
		store, ok := e.b.registry.Store(name)
		if !ok || !store.Available() {
			continue
		}
		pr := store.Spec().Pricing
		order = append(order, ranked{idx: i, cost: chunkGB*pr.BandwidthOutGB + pr.OpsPer1000/1000})
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].cost != order[j].cost {
			return order[i].cost < order[j].cost
		}
		return order[i].idx < order[j].idx
	})
	idxs := make([]int, len(order))
	for i, r := range order {
		idxs[i] = r.idx
	}
	if len(order) < meta.M {
		return idxs, fmt.Errorf("%w: %d of %d providers reachable, need %d",
			ErrNotEnoughChunks, len(order), n, meta.M)
	}
	return idxs, nil
}

// prefetch is the pipeline producer: it dispatches up to cap(pipe)
// concurrent stripe loads for stripes [from, end], finalizes them in
// stripe order (checksum chain, ErrChecksum on the last stripe) and
// hands them to the consuming Read. Fetch latency and decode cost of
// neighbouring stripes overlap; delivery order never changes. It exits
// — without blocking — when the stream context is cancelled or a
// stripe fails.
func (or *objectReader) prefetch(from int) {
	depth := cap(or.pipe)
	type pending struct {
		s  int
		ch chan prodOut
	}
	sem := make(chan struct{}, depth)    // bounds in-flight stripe loads
	queue := make(chan pending, depth+1) // preserves stripe order
	defer func() {
		// Early teardown leaves produced-but-undelivered stripes in the
		// queue; hand their read-budget slots back before closing the
		// pipe (the dispatcher exits on ctx.Done and closes the queue,
		// and every queued entry has a producer that will deliver).
		for p := range queue {
			out := <-p.ch
			if out.slot {
				or.e.b.releaseReadBuf()
			}
		}
		close(or.pipe)
	}()
	go func() { // dispatcher
		defer close(queue)
		for s := from; s <= or.end; s++ {
			select {
			case sem <- struct{}{}:
			case <-or.ctx.Done():
				return
			}
			// Acquire the read-budget slot here, in stripe order, before
			// the producer launches. Producers acquiring on their own can
			// deadlock the budget: out-of-order completions would hold
			// every slot while the earlier stripes they are queued behind
			// wait for one. Dispatcher-ordered acquisition means a held
			// slot always drains without needing another acquire first.
			if err := or.e.b.acquireReadBuf(or.ctx); err != nil {
				<-sem
				return
			}
			p := pending{s: s, ch: make(chan prodOut, 1)}
			select {
			case queue <- p:
			case <-or.ctx.Done():
				or.e.b.releaseReadBuf()
				<-sem
				return
			}
			go func(p pending) {
				defer func() { <-sem }()
				data, cached, slot, err := or.produceStripe(p.s, true)
				p.ch <- prodOut{data: data, cached: cached, slot: slot, err: err}
			}(p)
		}
	}()
	for p := range queue {
		out := <-p.ch
		data, slot, err := out.data, out.slot, out.err
		if err == nil {
			data, err = or.finalizeStripe(p.s, data, out.cached)
		}
		if err != nil && slot {
			or.e.b.releaseReadBuf()
			slot = false
		}
		select {
		case or.pipe <- stripeOut{data: data, slot: slot, err: err}:
		case <-or.ctx.Done():
			if slot {
				or.e.b.releaseReadBuf()
			}
			return
		}
		if err != nil {
			// Unblock the dispatcher and in-flight loads; the consumer
			// already holds the error.
			or.cancel()
			return
		}
		or.e.b.metrics.readPrefetched.Inc()
	}
}

// loadStripe produces and finalizes one stripe — the unpipelined path
// (the eager open fetch and sequential-mode Reads call it in stripe
// order). slot reports whether the stripe holds a read-budget slot the
// caller must release once the bytes drain.
func (or *objectReader) loadStripe(s int) (data []byte, slot bool, err error) {
	data, cached, slot, err := or.produceStripe(s, false)
	if err != nil {
		return nil, false, err
	}
	data, err = or.finalizeStripe(s, data, cached)
	if err != nil {
		if slot {
			or.e.b.releaseReadBuf()
		}
		return nil, false, err
	}
	return data, slot, nil
}

// produceStripe yields one decoded stripe: stripe cache first, then the
// parallel chunk fan-out. Only fully decoded stripes are ever written
// back to the cache, so a read torn down mid-fetch cannot poison it
// with a partial entry. Safe for concurrent use across different
// stripes — the pipeline overlaps neighbouring stripe loads.
//
// slotHeld says the caller (the pipeline dispatcher) already reserved a
// read-budget slot for this stripe; otherwise one is acquired here
// before the provider fetch. A cache hit or failure hands the slot
// back; on success the returned slot=true travels with the data, to be
// released once the bytes drain.
func (or *objectReader) produceStripe(s int, slotHeld bool) (data []byte, cached, slot bool, err error) {
	e := or.e
	release := func() {
		if slotHeld {
			slotHeld = false
			e.b.releaseReadBuf()
		}
	}
	if err := or.ctx.Err(); err != nil {
		release()
		return nil, false, false, err
	}
	data, cached = e.b.caches.GetStripe(e.dc, or.cacheID, s)
	if cached {
		// Cache hits do not consume the budget: their memory is the
		// cache's, capped by its own capacity.
		release()
		e.b.metrics.readCached.Inc()
		obs.TraceFrom(or.ctx).Count("stripes_cached", 1)
		return data, true, false, nil
	}
	if or.rankErr != nil {
		release()
		return nil, false, false, or.rankErr
	}
	if !slotHeld {
		if err := e.b.acquireReadBuf(or.ctx); err != nil {
			return nil, false, false, err
		}
		slotHeld = true
	}
	data, err = or.fetchStripe(s)
	if err != nil {
		release()
		return nil, false, false, err
	}
	// Verify the decoded stripe against its stored checksum BEFORE it
	// can enter the cache: a provider serving rotted chunk bytes must
	// fail the read, not poison the stripe cache. Metadata predating
	// per-stripe sums skips this; the whole-object chain in
	// finalizeStripe still catches corruption on full reads.
	verified := false
	if want := or.meta.stripeSum(s); want != "" {
		got := md5.Sum(data)
		if hex.EncodeToString(got[:]) != want {
			release()
			return nil, false, false, fmt.Errorf("%w: stripe %d", ErrChecksum, s)
		}
		verified = true
	}
	e.b.metrics.readFetched.Inc()
	obs.TraceFrom(or.ctx).Count("stripes_fetched", 1)
	// Only stripes the per-stripe checksum vouched for may enter the
	// cache. Legacy metadata without stripe sums is never cached: its
	// whole-object chain runs too late (and only on unmixed full
	// reads) to keep an unverified stripe out, and since metadata
	// lives in process memory such versions exist only until rewritten
	// — losing their cacheability costs nothing.
	if or.userRead && verified {
		e.b.caches.PutStripe(e.dc, or.cacheID, s, data)
	}
	return data, false, true, nil
}

// stripeCacheID builds the stripe-cache identity of one object version.
func stripeCacheID(obj, uuid string) string { return obj + "\x00" + uuid }

// finalizeStripe runs the in-order tail of stripe production: the
// whole-object checksum chain. It must be called in stripe order from
// one goroutine at a time (the open path, then either the pipeline's
// ordered stage or the consuming Read).
func (or *objectReader) finalizeStripe(s int, data []byte, cached bool) ([]byte, error) {
	if cached {
		or.hashAll = false
	} else if or.hashAll {
		or.sum.Write(data)
	}
	if or.hashAll && s == or.meta.StripeCount()-1 && or.fullObject() &&
		hex.EncodeToString(or.sum.Sum(nil)) != or.meta.Checksum {
		// Do not hand the condemned stripe to the caller: a Read retried
		// after ErrChecksum must not serve corrupted bytes. The stripes
		// this stream already cached are condemned with it — without
		// per-stripe sums (legacy metadata) there is no telling which
		// one is corrupt, and a poisoned cache would serve the
		// corruption silently on the next read.
		or.e.b.caches.InvalidateAll(or.cacheID)
		return nil, ErrChecksum
	}
	return data, nil
}

// fullObject reports whether the stream covers every stripe, which is
// when the whole-object checksum can be verified.
func (or *objectReader) fullObject() bool {
	return or.start == 0 && or.end == or.meta.StripeCount()-1
}

// fetchStripe retrieves one stripe's chunks from the providers and
// decodes it, over the shared ranked fan-out pool. Both halves are
// timed as serving-path stages ("fetch", "decode").
func (or *objectReader) fetchStripe(s int) ([]byte, error) {
	tr := obs.TraceFrom(or.ctx)
	t0 := time.Now()
	chunks, err := or.e.fetchRanked(or.ctx, or.meta, s, or.order, true)
	if err != nil {
		return nil, err
	}
	or.e.b.observeStage(tr, "fetch", t0)
	t1 := time.Now()
	data, err := or.coder.Decode(chunks, int(or.meta.stripeLen(s)))
	if err == nil {
		or.e.b.observeStage(tr, "decode", t1)
	}
	return data, err
}

// fetchRanked retrieves m of one stripe's chunks along the ranked
// candidate order. Fetches fan out over a bounded worker pool: the
// first m successes win, and a failed fetch falls back to the next
// (spare) candidate in the order (§III-D3: reads proceed without the
// faulty provider). countFallbacks feeds the serving-path fallback
// counter; internal readers (repair) pass false. The returned slice
// has length n with nil at every slot not fetched (the erasure coder
// reconstructs those).
func (e *Engine) fetchRanked(ctx context.Context, meta ObjectMeta, s int, order []int, countFallbacks bool) ([][]byte, error) {
	m := meta.M
	workers := e.b.cfg.ReadParallelism
	if workers > m {
		workers = m
	}
	if workers > len(order) {
		workers = len(order)
	}
	if workers < 1 {
		workers = 1
	}

	tr := obs.TraceFrom(ctx)
	fallback := func() {
		if countFallbacks {
			e.b.metrics.readFallbacks.Inc()
			tr.Count("fallbacks", 1)
		}
	}
	chunks := make([][]byte, len(meta.Chunks))
	var (
		mu   sync.Mutex
		got  int
		next int // next candidate position in order
	)
	fetchNext := func() bool {
		mu.Lock()
		if got >= m || next >= len(order) {
			mu.Unlock()
			return false
		}
		idx := order[next]
		next++
		mu.Unlock()
		if ctx.Err() != nil {
			return false
		}
		store, ok := e.b.registry.Store(meta.Chunks[idx])
		if !ok {
			fallback()
			return true // provider vanished; fall back to the next candidate
		}
		t0 := time.Now()
		data, err := store.Get(ctx, meta.chunkKey(s, idx))
		if ctx.Err() == nil {
			// Cancellation is stream teardown (a range read that got its
			// bytes), not a provider failure — keep it out of the series.
			e.b.observeProviderOp(meta.Chunks[idx], "get", t0, err)
		}
		if err != nil {
			if ctx.Err() != nil {
				return false
			}
			fallback()
			return true
		}
		mu.Lock()
		chunks[idx] = data
		got++
		mu.Unlock()
		return true
	}

	if workers <= 1 {
		for fetchNext() {
		}
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for fetchNext() {
				}
			}()
		}
		wg.Wait()
	}

	if got < m {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("%w: fetched %d, need %d", ErrNotEnoughChunks, got, m)
	}
	return chunks, nil
}

// Read implements io.Reader.
func (or *objectReader) Read(p []byte) (int, error) {
	for len(or.cur) == 0 {
		or.releaseCur()
		if or.err != nil {
			return 0, or.err
		}
		if or.pipe != nil {
			out, ok := <-or.pipe
			if !ok {
				// The pipeline closed: either the stream fully drained or
				// the context tore it down mid-flight.
				if err := or.ctx.Err(); err != nil {
					or.err = err
					return 0, err
				}
				or.finish()
				return 0, io.EOF
			}
			if out.err != nil {
				or.err = out.err
				return 0, out.err
			}
			or.cur = out.data
			or.curSlot = out.slot
		} else {
			if or.next > or.end {
				or.finish()
				return 0, io.EOF
			}
			data, slot, err := or.loadStripe(or.next)
			if err != nil {
				or.err = err
				return 0, err
			}
			or.next++
			or.cur = data
			or.curSlot = slot
		}
		or.fetched += int64(len(or.cur))
	}
	n := copy(p, or.cur)
	or.cur = or.cur[n:]
	if len(or.cur) == 0 {
		or.releaseCur()
	}
	return n, nil
}

// releaseCur returns the current stripe's read-budget slot once its
// bytes are gone (fully drained to the caller, or dropped at teardown).
func (or *objectReader) releaseCur() {
	if or.curSlot {
		or.curSlot = false
		or.e.b.releaseReadBuf()
	}
}

// finish marks the stream fully drained: sticky EOF, read event, and
// context release.
func (or *objectReader) finish() {
	or.err = io.EOF
	or.logRead()
	or.cancel()
}

// Close implements io.Closer; further Reads fail. Closing cancels the
// prefetcher and every in-flight chunk fetch. A stream closed before
// draining logs the bytes actually delivered, not the full size.
func (or *objectReader) Close() error {
	or.cancel()
	if or.err == nil {
		or.err = errors.New("engine: object stream closed")
	}
	or.cur = nil
	or.releaseCur()
	// Stripes already delivered into the pipe hold read-budget slots;
	// drain them so a torn-down stream cannot strand the budget. The
	// prefetcher exits promptly on the cancelled context and closes the
	// pipe, so this terminates.
	if or.pipe != nil {
		for out := range or.pipe {
			if out.slot {
				or.e.b.releaseReadBuf()
			}
		}
		or.pipe = nil
	}
	or.logRead()
	return nil
}

// logRead emits the read statistics event exactly once per user-facing
// stream, with the payload bytes that were actually delivered — an
// aborted download must not inflate the access statistics that drive
// placement.
func (or *objectReader) logRead() {
	if !or.userRead || or.logged {
		return
	}
	or.logged = true
	e, meta := or.e, or.meta
	e.agent.Log(stats.Event{
		Object: or.obj, Class: meta.Class,
		Kind: stats.EventRead, Bytes: or.fetched, StorageBytes: meta.Size,
		Period: e.b.clock.Period(),
	})
}

// rangeReader caps an objectReader at the requested byte length and
// tears the stream down as soon as the range is fully served, so the
// prefetcher does not keep fetching stripes nobody will read.
type rangeReader struct {
	or        *objectReader
	remaining int64
}

func (r *rangeReader) Read(p []byte) (int, error) {
	if r.remaining <= 0 {
		return 0, io.EOF
	}
	if int64(len(p)) > r.remaining {
		p = p[:r.remaining]
	}
	n, err := r.or.Read(p)
	r.remaining -= int64(n)
	if r.remaining == 0 {
		// The undelivered tail of the last stripe must not count toward
		// the read statistics; Close below emits the event.
		r.or.fetched -= int64(len(r.or.cur))
		r.or.cur = nil
		r.or.Close() //nolint:errcheck
		if err == nil || errors.Is(err, io.EOF) {
			err = nil
		}
	}
	return n, err
}

func (r *rangeReader) Close() error { return r.or.Close() }
