// Package cloud simulates the public cloud storage providers Scalia
// brokers across: S3-like blob stores with the paper's Fig. 3 pricing and
// SLA table, per-resource billing meters, capacity limits, chunk-size
// constraints, transient-failure injection, and a dynamic registry that
// supports provider arrival (the CheapStor experiment, §IV-D) and
// departure.
//
// The paper's evaluation is itself simulation-based: every reported
// quantity is a billed resource (GB stored, GB transferred in/out,
// operation counts) priced by the provider table. The simulated stores
// meter exactly those resources, so cost behaviour is preserved.
package cloud

import (
	"fmt"
	"sort"
	"strings"
)

// Zone is a coarse geographic region a provider stores data in.
type Zone string

// Zones used by the paper's provider table.
const (
	ZoneEU   Zone = "EU"
	ZoneUS   Zone = "US"
	ZoneAPAC Zone = "APAC"
)

// Pricing holds a provider's price sheet, in the units the paper uses:
// USD per GB for storage (per month) and bandwidth, USD per 1000 requests
// for operations.
type Pricing struct {
	StorageGBMonth float64 `json:"storageGBMonth"` // USD per GB-month stored
	BandwidthInGB  float64 `json:"bandwidthInGB"`  // USD per GB transferred in
	BandwidthOutGB float64 `json:"bandwidthOutGB"` // USD per GB transferred out
	OpsPer1000     float64 `json:"opsPer1000"`     // USD per 1000 operations
}

// HoursPerMonth converts GB-month storage prices to hourly accrual.
// The paper bills by sampling period (typically one hour).
const HoursPerMonth = 730.0

// Spec describes a storage provider: identity, SLA guarantees and prices.
type Spec struct {
	Name         string  `json:"name"`         // short label, e.g. "S3(h)"
	Description  string  `json:"description"`  // human-readable description
	Durability   float64 `json:"durability"`   // SLA durability as a probability, e.g. 0.99999999999
	Availability float64 `json:"availability"` // SLA availability as a probability, e.g. 0.999
	Zones        []Zone  `json:"zones,omitempty"`
	Pricing      Pricing `json:"pricing"`
	// MaxChunkBytes, when non-zero, is the provider's maximum object size.
	// Algorithm 1 handles constrained providers by comparing the
	// include-vs-exclude alternatives (paper §III-A2).
	MaxChunkBytes int64 `json:"maxChunkBytes,omitempty"`
	// CapacityBytes, when non-zero, bounds total stored bytes; used for
	// private storage resources (§III-E) which "never grow beyond the
	// limit set in the properties of the resource".
	CapacityBytes int64 `json:"capacityBytes,omitempty"`
	// Private marks corporate-owned resources registered through the
	// private storage web service.
	Private bool `json:"private,omitempty"`
}

// String implements fmt.Stringer.
func (s Spec) String() string {
	zones := make([]string, len(s.Zones))
	for i, z := range s.Zones {
		zones[i] = string(z)
	}
	return fmt.Sprintf("%s[dur=%.10g av=%.4g zones=%s]",
		s.Name, s.Durability, s.Availability, strings.Join(zones, ","))
}

// HasZone reports whether the provider serves zone z.
func (s Spec) HasZone(z Zone) bool {
	for _, have := range s.Zones {
		if have == z {
			return true
		}
	}
	return false
}

// ServesAny reports whether the provider serves at least one of the
// requested zones. An empty request means "all zones acceptable".
func (s Spec) ServesAny(zones []Zone) bool {
	if len(zones) == 0 {
		return true
	}
	for _, z := range zones {
		if s.HasZone(z) {
			return true
		}
	}
	return false
}

// Paper provider names (Fig. 3).
const (
	NameS3High    = "S3(h)"
	NameS3Low     = "S3(l)"
	NameRackspace = "RS"
	NameAzure     = "Azu"
	NameGoogle    = "Ggl"
	NameCheapStor = "CheapStor"
)

// PaperProviders returns the five provider profiles of Fig. 3, in the
// paper's row order.
func PaperProviders() []Spec {
	return []Spec{
		{
			Name:         NameS3High,
			Description:  "Amazon S3 (High)",
			Durability:   0.99999999999,
			Availability: 0.999,
			Zones:        []Zone{ZoneEU, ZoneUS, ZoneAPAC},
			Pricing:      Pricing{StorageGBMonth: 0.14, BandwidthInGB: 0.1, BandwidthOutGB: 0.15, OpsPer1000: 0.01},
		},
		{
			Name:         NameS3Low,
			Description:  "Amazon S3 (Low)",
			Durability:   0.9999,
			Availability: 0.999,
			Zones:        []Zone{ZoneEU, ZoneUS, ZoneAPAC},
			Pricing:      Pricing{StorageGBMonth: 0.093, BandwidthInGB: 0.1, BandwidthOutGB: 0.15, OpsPer1000: 0.01},
		},
		{
			Name:         NameRackspace,
			Description:  "Rackspace CloudFiles",
			Durability:   0.999999,
			Availability: 0.999,
			Zones:        []Zone{ZoneUS},
			Pricing:      Pricing{StorageGBMonth: 0.15, BandwidthInGB: 0.08, BandwidthOutGB: 0.18, OpsPer1000: 0.0},
		},
		{
			Name:         NameAzure,
			Description:  "Microsoft Azure",
			Durability:   0.999999,
			Availability: 0.999,
			Zones:        []Zone{ZoneUS},
			Pricing:      Pricing{StorageGBMonth: 0.15, BandwidthInGB: 0.1, BandwidthOutGB: 0.15, OpsPer1000: 0.01},
		},
		{
			Name:         NameGoogle,
			Description:  "Google Storage",
			Durability:   0.999999,
			Availability: 0.999,
			Zones:        []Zone{ZoneUS},
			Pricing:      Pricing{StorageGBMonth: 0.17, BandwidthInGB: 0.1, BandwidthOutGB: 0.15, OpsPer1000: 0.01},
		},
	}
}

// CheapStorProvider returns the provider that arrives at hour 400 in the
// §IV-D experiment: 0.09$/GB storage, 0.1$/GB in, 0.15$/GB out, 0.01$/1K
// operations.
func CheapStorProvider() Spec {
	return Spec{
		Name:         NameCheapStor,
		Description:  "CheapStor (arrives mid-experiment)",
		Durability:   0.999999,
		Availability: 0.999,
		Zones:        []Zone{ZoneUS},
		Pricing:      Pricing{StorageGBMonth: 0.09, BandwidthInGB: 0.1, BandwidthOutGB: 0.15, OpsPer1000: 0.01},
	}
}

// SortSpecs orders specs by name, for deterministic iteration.
func SortSpecs(specs []Spec) {
	sort.Slice(specs, func(i, j int) bool { return specs[i].Name < specs[j].Name })
}
