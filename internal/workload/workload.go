// Package workload generates the access patterns of the paper's
// evaluation (§IV): the Slashdot flash-crowd, the Pareto-popularity
// picture gallery driven by a diurnal three-region website trace, the
// periodic 40 MB backup stream of the provider-addition and active-
// repair experiments, and the website read series behind the trend-
// detection figures.
//
// The real website trace is private; the paper describes it only in
// aggregate (about 2500 visitors/day; Europe 62%, North America 27%,
// Asia 6%). Website synthesizes a deterministic diurnal mixture with
// those shares, which preserves the property the experiments rely on: a
// strong daily cycle with regional phase shifts.
package workload

import "math"

// PeriodLoad is one object's load during one sampling period.
type PeriodLoad struct {
	Object string
	Size   int64
	Reads  int64
	// Writes counts object writes in the period (1 on creation/update).
	Writes int64
	// Created marks the object's first write.
	Created bool
	// Deleted marks removal at the end of the period.
	Deleted bool
}

// Scenario produces per-period loads.
type Scenario interface {
	// Name labels the scenario in reports.
	Name() string
	// Periods is the scenario length in sampling periods.
	Periods() int
	// Load returns the loads of period p (0-based).
	Load(p int) []PeriodLoad
}

// --- Slashdot effect (§IV-B, Figs. 12 and 14) ---

// Slashdot is the flash-crowd scenario: a single 1 MB object, written at
// hour 0; after 2 days reads ramp from 0 to PeakReads within 3 hours,
// then decay by DecayPerHour.
type Slashdot struct {
	ObjectName   string
	SizeBytes    int64
	TotalHours   int
	QuietHours   int
	RampHours    int
	PeakReads    int64
	DecayPerHour int64
}

// NewSlashdot returns the paper's parameterization: 1 MB, 180 hours
// (7.5 days), spike at hour 48 reaching 150 reads/hour in 3 hours, then
// -2 reads/hour.
func NewSlashdot() *Slashdot {
	return &Slashdot{
		ObjectName:   "web/page",
		SizeBytes:    1 << 20,
		TotalHours:   180,
		QuietHours:   48,
		RampHours:    3,
		PeakReads:    150,
		DecayPerHour: 2,
	}
}

// Name implements Scenario.
func (s *Slashdot) Name() string { return "slashdot" }

// Periods implements Scenario.
func (s *Slashdot) Periods() int { return s.TotalHours }

// ReadsAt returns the read count of hour p.
func (s *Slashdot) ReadsAt(p int) int64 {
	switch {
	case p < s.QuietHours:
		return 0
	case p < s.QuietHours+s.RampHours:
		// Linear ramp 0 -> PeakReads over RampHours.
		return s.PeakReads * int64(p-s.QuietHours+1) / int64(s.RampHours)
	default:
		r := s.PeakReads - s.DecayPerHour*int64(p-s.QuietHours-s.RampHours+1)
		if r < 0 {
			r = 0
		}
		return r
	}
}

// Load implements Scenario.
func (s *Slashdot) Load(p int) []PeriodLoad {
	load := PeriodLoad{Object: s.ObjectName, Size: s.SizeBytes}
	if p == 0 {
		load.Writes = 1
		load.Created = true
	}
	load.Reads = s.ReadsAt(p)
	return []PeriodLoad{load}
}

// --- Website diurnal trace (Figs. 8, 9; drives the gallery) ---

// Website synthesizes the daily access pattern of the paper's reference
// website: VisitorsPerDay requests spread over three regional diurnal
// curves with the paper's regional shares.
type Website struct {
	VisitorsPerDay float64
	// Share and UTC peak hour per region {EU, NA, AS}.
	Shares [3]float64
	Peaks  [3]float64
}

// NewWebsite returns the paper's aggregate parameters.
func NewWebsite() *Website {
	return &Website{
		VisitorsPerDay: 2500,
		Shares:         [3]float64{0.62, 0.27, 0.06},
		Peaks:          [3]float64{13, 20, 6}, // UTC afternoon peaks per region
	}
}

// RateAt returns the expected requests during hour h (continuous hours
// since the trace start; fractional values sample within the hour).
func (w *Website) RateAt(h float64) float64 {
	hourOfDay := math.Mod(h, 24)
	var rate float64
	for i := range w.Shares {
		// A raised cosine peaked at the regional peak hour, mixed with a
		// constant floor (real sites never go fully quiet): non-negative
		// and integrating to 1 over the day.
		phase := 2 * math.Pi * (hourOfDay - w.Peaks[i]) / 24
		density := (0.35 + 0.65*(1+math.Cos(phase))) / 24
		rate += w.VisitorsPerDay * w.Shares[i] * density
	}
	// The paper's regional shares sum to 0.95; the remaining 5% (rest of
	// world) arrives uniformly around the clock.
	var regional float64
	for _, s := range w.Shares {
		regional += s
	}
	rate += w.VisitorsPerDay * (1 - regional) / 24
	return rate
}

// HourlySeries returns `hours` integer samples of the request rate.
func (w *Website) HourlySeries(hours int) []float64 {
	out := make([]float64, hours)
	for h := range out {
		out[h] = w.RateAt(float64(h))
	}
	return out
}

// DailySeries aggregates the trace into daily totals for `days` days,
// with a weekly modulation (weekends ~25% quieter) and occasional
// multi-day traffic bursts, so the daily series has the structure the
// paper's 3-month Fig. 9 trace shows (quiet weeks punctuated by peaks).
func (w *Website) DailySeries(days int) []float64 {
	out := make([]float64, days)
	for d := range out {
		total := 0.0
		for h := 0; h < 24; h++ {
			total += w.RateAt(float64(d*24 + h))
		}
		if wd := d % 7; wd == 5 || wd == 6 {
			total *= 0.75
		}
		// A one-day spike every three weeks (content going viral,
		// newsletter, campaign): x3 traffic, decaying the following day.
		switch d % 21 {
		case 9:
			total *= 3
		case 10:
			total *= 1.8
		}
		out[d] = total
	}
	return out
}

// --- Gallery (§IV-C, Figs. 15 and 16) ---

// Gallery is the picture-gallery scenario: PictureCount pictures of
// PictureBytes each, read following the website's daily pattern with
// popularity following a Pareto distribution across pictures.
type Gallery struct {
	PictureCount int
	PictureBytes int64
	TotalHours   int
	Site         *Website
	// ParetoShape is the popularity tail index (the paper's
	// "Pareto (1,50)" distribution, scale 1).
	ParetoShape float64

	weights []float64
}

// NewGallery returns the paper's parameterization: 200 pictures of
// 250 KB over 7.5 days.
func NewGallery() *Gallery {
	g := &Gallery{
		PictureCount: 200,
		PictureBytes: 250 << 10,
		TotalHours:   180,
		Site:         NewWebsite(),
		// The paper's "Pareto (1,50)" parameterization is ambiguous; what
		// its results require is a tail of pictures with near-zero reads
		// (they settle on the storage-optimal m:3 set) under a handful of
		// dominant pictures (m:1). Shape 0.5 (rank weights ~ rank^-2)
		// produces exactly that tiering.
		ParetoShape: 0.5,
	}
	g.computeWeights()
	return g
}

// computeWeights assigns each picture a popularity share via the
// rank-size rule for a Pareto(scale=1, shape=a) population:
// weight ~ rank^(-1/a), normalized to sum to 1.
func (g *Gallery) computeWeights() {
	g.weights = ZipfWeights(g.PictureCount, 1/g.ParetoShape)
}

// Name implements Scenario.
func (g *Gallery) Name() string { return "gallery" }

// Periods implements Scenario.
func (g *Gallery) Periods() int { return g.TotalHours }

// PictureName returns the object key of picture i.
func (g *Gallery) PictureName(i int) string {
	return "pictures/img" + itoa3(i)
}

func itoa3(i int) string {
	d := [3]byte{'0' + byte(i/100%10), '0' + byte(i/10%10), '0' + byte(i%10)}
	return string(d[:])
}

// Load implements Scenario: hour 0 uploads all pictures; every hour the
// site's request rate is split across pictures by popularity weight,
// rounding deterministically so aggregate volume is preserved.
func (g *Gallery) Load(p int) []PeriodLoad {
	rate := g.Site.RateAt(float64(p))
	loads := make([]PeriodLoad, 0, g.PictureCount)
	carry := 0.0
	for i := 0; i < g.PictureCount; i++ {
		load := PeriodLoad{
			Object: g.PictureName(i),
			Size:   g.PictureBytes,
			Reads:  roundCarry(rate*g.weights[i], &carry),
		}
		if p == 0 {
			load.Writes = 1
			load.Created = true
		}
		if load.Reads > 0 || load.Writes > 0 {
			loads = append(loads, load)
		}
	}
	return loads
}

// --- Backup stream (§IV-D and §IV-E, Figs. 17 and 18) ---

// Backup stores a new object of ObjectBytes every IntervalHours.
type Backup struct {
	ObjectBytes   int64
	IntervalHours int
	TotalHours    int
	// ReadsPerObjectPerDay models occasional restore/verification reads
	// (0 in the paper's scenarios).
	ReadsPerObjectPerDay float64
}

// NewBackup returns the paper's parameterization: 40 MB every 5 hours.
func NewBackup(totalHours int) *Backup {
	return &Backup{
		ObjectBytes:   40 << 20,
		IntervalHours: 5,
		TotalHours:    totalHours,
	}
}

// Name implements Scenario.
func (b *Backup) Name() string { return "backup" }

// Periods implements Scenario.
func (b *Backup) Periods() int { return b.TotalHours }

// ObjectName returns the key of the backup written at hour h.
func (b *Backup) ObjectName(h int) string {
	return "backups/obj" + itoa5(h)
}

func itoa5(i int) string {
	d := [5]byte{
		'0' + byte(i/10000%10), '0' + byte(i/1000%10), '0' + byte(i/100%10),
		'0' + byte(i/10%10), '0' + byte(i%10),
	}
	return string(d[:])
}

// Load implements Scenario.
func (b *Backup) Load(p int) []PeriodLoad {
	var loads []PeriodLoad
	if p%b.IntervalHours == 0 {
		loads = append(loads, PeriodLoad{
			Object:  b.ObjectName(p),
			Size:    b.ObjectBytes,
			Writes:  1,
			Created: true,
		})
	}
	return loads
}
