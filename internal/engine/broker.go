package engine

import (
	"context"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"scalia/internal/cache"
	"scalia/internal/cloud"
	"scalia/internal/core"
	"scalia/internal/metadata"
	"scalia/internal/stats"
	"scalia/internal/trend"
)

// DefaultStripeBytes is the default streaming stripe size: objects
// larger than this are erasure-coded stripe by stripe so the serving
// path never buffers a whole object.
const DefaultStripeBytes = 4 << 20

// DefaultReadParallelism is the default bound on concurrent chunk
// fetches per stripe read: the m cheapest chunks of a stripe are
// fetched together instead of one after another, so stripe latency
// approaches one provider round-trip instead of m.
const DefaultReadParallelism = 4

// DefaultPrefetchStripes is the default read-ahead depth of the
// streaming GET pipeline: while stripe s drains to the client, up to
// this many following stripes are fetched and decoded in the
// background.
const DefaultPrefetchStripes = 2

// DefaultMaxBufferBytes is the default broker-wide budget for stripe
// buffers held by the streaming serving paths: across every in-flight
// GET and PUT, at most this many bytes of stripe buffers are held at
// once (reads beyond the budget wait for earlier stripes to drain to
// their clients; writes wait for earlier stripes to finish fanning out
// to providers).
const DefaultMaxBufferBytes = 256 << 20

// DefaultMaxReadBufferBytes is the deprecated name of
// DefaultMaxBufferBytes, kept for callers predating the shared
// read/write budget.
const DefaultMaxReadBufferBytes = DefaultMaxBufferBytes

// DefaultWritePipelineDepth is the default encode-ahead depth of the
// streaming PUT pipeline: while stripe s's chunks fan out to providers,
// up to this many following stripes may be read, erasure-coded and
// fanned out concurrently.
const DefaultWritePipelineDepth = 4

// Config configures a Broker deployment.
type Config struct {
	// Datacenters lists datacenter names; default {"dc1", "dc2"} (the
	// paper's Fig. 4 setup).
	Datacenters []string
	// EnginesPerDC is the number of stateless engines per datacenter
	// (default 2).
	EnginesPerDC int
	// CacheBytes is each datacenter's cache capacity; 0 disables caching.
	CacheBytes int64
	// PeriodHours is the sampling-period length (default 1).
	PeriodHours float64
	// Clock drives periods; default a SimClock.
	Clock Clock
	// Registry provides the provider set; default NewPaperRegistry.
	Registry *cloud.Registry
	// DefaultRule applies when no finer rule matches.
	DefaultRule core.Rule
	// DetectWindow and DetectLimit parameterize trend detection
	// (defaults w = 3, limit = 0.1).
	DetectWindow int
	DetectLimit  float64
	// DecisionPeriod is the initial D_obj in sampling periods (default 24).
	DecisionPeriod int
	// MigrationHorizon is the minimum number of sampling periods over
	// which migration savings are amortized against migration cost. The
	// horizon defaults to max(D_obj, expected TTL); raising it makes the
	// broker migrate for slow-payback savings, which is how the paper's
	// provider-arrival experiment behaves (§IV-D migrates for a storage
	// price delta that pays back over months).
	MigrationHorizon int
	// Pruned selects the heuristic placement search.
	Pruned bool
	// StripeBytes bounds the per-stripe payload of streaming reads and
	// writes (default DefaultStripeBytes). Smaller stripes lower the
	// serving path's memory ceiling at the cost of more provider ops.
	StripeBytes int64
	// ReadParallelism bounds concurrent chunk fetches per stripe read
	// (default DefaultReadParallelism). Negative forces the sequential
	// ranked scan — one chunk at a time, cheapest provider first.
	ReadParallelism int
	// PrefetchStripes is the streaming GET read-ahead depth: how many
	// stripes beyond the one draining to the client are fetched and
	// decoded in the background (default DefaultPrefetchStripes).
	// Negative disables prefetching.
	PrefetchStripes int
	// WritePipelineDepth is the streaming PUT encode-ahead depth: up to
	// this many stripes may be in flight — encoded and fanning their
	// chunks out to providers — concurrently per write (default
	// DefaultWritePipelineDepth). Negative forces the sequential write
	// path: encode stripe s, fan it out, wait, then touch stripe s+1.
	WritePipelineDepth int
	// MaxBufferBytes bounds the stripe buffers all streaming reads AND
	// writes of the broker hold concurrently (default
	// DefaultMaxBufferBytes; negative removes the bound). One budget
	// governs both directions so worst-case serving-path memory has a
	// single knob. It is enforced as a semaphore of
	// MaxBufferBytes/StripeBytes (floor, minimum 1) stripe slots;
	// cached stripes do not consume the budget (the cache has its own
	// capacity).
	MaxBufferBytes int64
	// MaxReadBufferBytes is the deprecated name of MaxBufferBytes from
	// before the budget covered writes; it is honored when
	// MaxBufferBytes is unset.
	MaxReadBufferBytes int64
	// ForceRestripeRepair disables the chunk-swap repair fast path so
	// every active repair does a full re-placement — an ablation knob
	// for benchmarks and tests (BenchmarkRepairSwap compares the two
	// mechanisms on the same failure scenario).
	ForceRestripeRepair bool
	// ReoptWorkers is the number of background workers draining the
	// event-driven reoptimization queue (objects whose cached placement
	// a market event invalidated). 0 — the default — enqueues but does
	// not drain automatically: callers drain explicitly with
	// DrainMaintenance (deterministic for embedded deployments and
	// tests). scalia-server enables background draining with
	// -reopt-workers.
	ReoptWorkers int
	// ReoptQueueDepth bounds the maintenance queue (default
	// DefaultReoptQueueDepth); when full, further invalidations are
	// dropped and counted — the periodic trend-gated Optimize pass is
	// the backstop that eventually revisits them.
	ReoptQueueDepth int
	// SwapBatchSize is how many prepared single-stripe chunk swaps a
	// repair pass accumulates before flushing them to their target
	// providers in per-provider batches (default DefaultSwapBatchSize;
	// negative disables batching). Many small objects repaired onto the
	// same spare then cost one provider round-trip per batch instead of
	// one per chunk.
	SwapBatchSize int
}

// DefaultReoptQueueDepth bounds the event-driven reoptimization queue.
const DefaultReoptQueueDepth = 1 << 16

// DefaultSwapBatchSize is how many prepared small-object swaps a repair
// pass groups into one per-provider batched write.
const DefaultSwapBatchSize = 16

func (c *Config) fill() {
	if len(c.Datacenters) == 0 {
		c.Datacenters = []string{"dc1", "dc2"}
	}
	if c.EnginesPerDC <= 0 {
		c.EnginesPerDC = 2
	}
	if c.PeriodHours <= 0 {
		c.PeriodHours = 1
	}
	if c.Clock == nil {
		c.Clock = NewSimClock()
	}
	if c.Registry == nil {
		c.Registry = cloud.NewPaperRegistry()
	}
	if c.DetectWindow <= 0 {
		c.DetectWindow = trend.DefaultWindow
	}
	if c.DetectLimit <= 0 {
		c.DetectLimit = trend.DefaultLimit
	}
	if c.DecisionPeriod <= 0 {
		c.DecisionPeriod = core.DefaultDecisionPeriod
	}
	if c.StripeBytes <= 0 {
		c.StripeBytes = DefaultStripeBytes
	}
	switch {
	case c.ReadParallelism == 0:
		c.ReadParallelism = DefaultReadParallelism
	case c.ReadParallelism < 0:
		c.ReadParallelism = 1
	}
	switch {
	case c.PrefetchStripes == 0:
		c.PrefetchStripes = DefaultPrefetchStripes
	case c.PrefetchStripes < 0:
		c.PrefetchStripes = 0
	}
	switch {
	case c.WritePipelineDepth == 0:
		c.WritePipelineDepth = DefaultWritePipelineDepth
	case c.WritePipelineDepth < 0:
		c.WritePipelineDepth = 0 // sequential
	}
	if c.ReoptQueueDepth <= 0 {
		c.ReoptQueueDepth = DefaultReoptQueueDepth
	}
	switch {
	case c.SwapBatchSize == 0:
		c.SwapBatchSize = DefaultSwapBatchSize
	case c.SwapBatchSize < 0:
		c.SwapBatchSize = 1 // per-chunk writes
	}
	if c.MaxBufferBytes == 0 {
		c.MaxBufferBytes = c.MaxReadBufferBytes // honor the deprecated knob
	}
	switch {
	case c.MaxBufferBytes == 0:
		c.MaxBufferBytes = DefaultMaxBufferBytes
	case c.MaxBufferBytes < 0:
		c.MaxBufferBytes = 0 // unbounded
	}
	c.MaxReadBufferBytes = c.MaxBufferBytes // the two views stay consistent
}

// pendingDelete is a chunk deletion postponed because its provider was
// unreachable (§III-D3: "the deletion of the chunk residing at a faulty
// provider is postponed until the provider recovers").
type pendingDelete struct {
	Provider string
	ChunkKey string
}

// Broker is a full Scalia deployment: shared storage registry, metadata
// cluster, cache cluster, statistics pipeline and a set of stateless
// engines across datacenters.
type Broker struct {
	cfg      Config
	registry *cloud.Registry
	meta     *metadata.Cluster
	caches   *cache.Cluster
	statsDB  *stats.DB
	agg      *stats.Aggregator
	rules    *RuleStore
	clock    Clock
	engines  []*Engine
	// planner is the shared placement-planning layer: prepared searches
	// cached per (market epoch, rule fingerprint), used by every engine
	// for Put, re-optimization, decision coupling and repair.
	planner *core.Planner
	// next drives NextEngine's round-robin. The facade and the HTTP
	// gateway share this one counter, so mixed embedded/remote traffic
	// still spreads evenly across all engines of all datacenters.
	next atomic.Uint64
	// metrics is the broker's observability surface (see metrics.go):
	// the registry behind GET /metrics plus the registry-owned hot-path
	// counters — including the read-path counters (stripes served from
	// cache vs fetched, prefetched stripes, ranked fallbacks) that
	// ReadStats reports, so /v1/stats and /metrics share one
	// bookkeeping path.
	metrics *brokerMetrics
	// bufSem is the broker-wide stripe-buffer budget shared by the
	// streaming read and write paths: one token per stripe slot of
	// Config.MaxBufferBytes. nil = unbounded. The gauges track current
	// and peak slots in use per direction (write gauges are maintained
	// even when the budget is unbounded — they double as the
	// stripes-in-flight counters on /v1/stats).
	bufSem        chan struct{}
	readBufInUse  atomic.Int64
	readBufPeak   atomic.Int64
	writeBufInUse atomic.Int64
	writeBufPeak  atomic.Int64

	// now is the wall-clock source for multipart-session idle tracking.
	// Production brokers use time.Now; the TTL-sweep tests substitute a
	// fake clock.
	now func() time.Time

	// uploads holds the in-progress multipart upload sessions, keyed by
	// upload ID. Sessions are broker-level state: the gateway round-
	// robins parts across engines, and any engine must resolve any
	// upload.
	uploadsMu sync.Mutex
	uploads   map[string]*uploadSession
	// rowLocks serialize the precondition-check-and-commit step of
	// conditional writes per metadata row (striped to bound memory), so
	// two concurrent If-Match / create-only operations cannot both pass
	// the check and clobber each other. The scope is one process; cross-
	// datacenter concurrency remains last-write-wins MVCC (§III-D3).
	rowLocks [rowLockStripes]sync.Mutex

	// repairMu serializes repair passes: swap repairs write under the
	// live version's chunk keys, which two concurrent passes must not
	// race on.
	repairMu sync.Mutex

	// provIndex is the provider→objects inverted index behind
	// O(affected) maintenance: every placement commit keeps it in sync
	// with the placement cache, and repair/reoptimization enumerate
	// affected objects through it instead of scanning the whole store.
	provIndex *stats.ProviderIndex
	// maint is the event-driven reoptimization queue: a registry
	// subscriber enqueues the objects a market event invalidated; a
	// bounded worker pool (or an explicit drain) re-plans them.
	maint *maintQueue
	// jobs tracks asynchronous maintenance passes started through the
	// jobs API (POST /v1/repair|optimize without ?wait=true).
	jobs *jobRegistry

	mu           sync.Mutex
	lastOpt      int64
	pending      []pendingDelete
	decisions    map[string]*core.DecisionController
	placement    map[string]core.Placement // object -> current placement
	totals       OptimizeTotals
	repairTotals RepairTotals
}

// OptimizeTotals accumulates optimization activity over the broker's
// lifetime; the gateway surfaces it on GET /v1/stats.
type OptimizeTotals struct {
	Rounds       int     `json:"rounds"`
	Scanned      int     `json:"scanned"`
	TrendChanged int     `json:"trendChanged"`
	Recomputed   int     `json:"recomputed"`
	Migrated     int     `json:"migrated"`
	MigrationUSD float64 `json:"migrationUSD"`
	Evaluated    int     `json:"evaluated"`
}

// ReadPathStats is the operational counter snapshot of the streaming
// read path, served on GET /v1/stats.
type ReadPathStats struct {
	// StripesFromCache and StripesFetched split served stripes by
	// source: the stripe cache vs a provider chunk fan-out.
	StripesFromCache int64 `json:"stripesFromCache"`
	StripesFetched   int64 `json:"stripesFetched"`
	// PrefetchedStripes counts stripes delivered by the background
	// prefetcher rather than fetched on demand by a client Read.
	PrefetchedStripes int64 `json:"prefetchedStripes"`
	// FetchFallbacks counts chunk fetches that failed and fell back to
	// a spare provider in the ranked order.
	FetchFallbacks int64 `json:"fetchFallbacks"`
	// BufferedStripesPeak is the high-water mark of stripe buffers held
	// concurrently under the MaxReadBufferBytes budget (0 while the
	// budget is unbounded or untouched).
	BufferedStripesPeak int64 `json:"bufferedStripesPeak"`
	// BufferedStripes is the stripe buffers reads hold right now under
	// the shared budget. After every streaming GET has drained or been
	// torn down — including mid-stream provider flips — it must return
	// to 0: a non-zero resting value is a leaked budget slot (the
	// loadgen chaos suite asserts this invariant).
	BufferedStripes int64 `json:"bufferedStripes"`
}

// ReadStats returns the cumulative read-path counters. The values are
// read from the metric registry — /v1/stats is a view over the same
// counters /metrics serves.
func (b *Broker) ReadStats() ReadPathStats {
	return ReadPathStats{
		StripesFromCache:    b.metrics.readCached.Value(),
		StripesFetched:      b.metrics.readFetched.Value(),
		PrefetchedStripes:   b.metrics.readPrefetched.Value(),
		FetchFallbacks:      b.metrics.readFallbacks.Value(),
		BufferedStripesPeak: b.readBufPeak.Load(),
		BufferedStripes:     b.readBufInUse.Load(),
	}
}

// WritePathStats is the operational counter snapshot of the streaming
// write path, served on GET /v1/stats — the PR 5 read-path counters'
// mirror image.
type WritePathStats struct {
	// PipelineDepth is the configured encode-ahead depth (0 =
	// sequential writes).
	PipelineDepth int `json:"pipelineDepth"`
	// StripesWritten counts stripes fanned out to providers by
	// completed writes (regular PUTs and staged multipart parts).
	StripesWritten int64 `json:"stripesWritten"`
	// StripesInFlight is the number of stripe buffers writes hold right
	// now — read, encoded or fanning out.
	StripesInFlight int64 `json:"stripesInFlight"`
	// BufferedStripesPeak is the high-water mark of stripe buffers held
	// concurrently by writes under the shared MaxBufferBytes budget.
	BufferedStripesPeak int64 `json:"bufferedStripesPeak"`
	// ActiveUploads is the number of open multipart upload sessions.
	ActiveUploads int `json:"activeUploads"`
}

// WriteStats returns the cumulative write-path counters.
func (b *Broker) WriteStats() WritePathStats {
	return WritePathStats{
		PipelineDepth:       b.cfg.WritePipelineDepth,
		StripesWritten:      b.metrics.writeStripes.Value(),
		StripesInFlight:     b.writeBufInUse.Load(),
		BufferedStripesPeak: b.writeBufPeak.Load(),
		ActiveUploads:       b.activeUploads(),
	}
}

// acquireReadBuf reserves one stripe-buffer slot from the broker-wide
// budget for a read, blocking while the budget is exhausted. The slot
// is released when the stripe's bytes have drained to the client (or
// the stream is torn down). Draining never re-enters the budget, so a
// blocked acquire always unblocks once some client consumes its stripe.
func (b *Broker) acquireReadBuf(ctx context.Context) error {
	if b.bufSem == nil {
		return nil
	}
	select {
	case b.bufSem <- struct{}{}:
	case <-ctx.Done():
		return ctx.Err()
	}
	bumpPeak(&b.readBufPeak, b.readBufInUse.Add(1))
	return nil
}

// releaseReadBuf returns a read's stripe-buffer slot to the budget.
func (b *Broker) releaseReadBuf() {
	if b.bufSem == nil {
		return
	}
	b.readBufInUse.Add(-1)
	<-b.bufSem
}

// acquireWriteBuf reserves one stripe-buffer slot from the shared
// budget for a write, blocking while the budget is exhausted. The slot
// is released once the stripe's chunks have fanned out to providers
// (or the write is torn down); fan-out never re-enters the budget, so
// a blocked acquire always unblocks. Unlike the read side, the in-use
// and peak gauges are maintained even with an unbounded budget — they
// are the write path's stripes-in-flight counters.
func (b *Broker) acquireWriteBuf(ctx context.Context) error {
	if b.bufSem != nil {
		select {
		case b.bufSem <- struct{}{}:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	bumpPeak(&b.writeBufPeak, b.writeBufInUse.Add(1))
	return nil
}

// releaseWriteBuf returns a write's stripe-buffer slot to the budget.
func (b *Broker) releaseWriteBuf() {
	b.writeBufInUse.Add(-1)
	if b.bufSem != nil {
		<-b.bufSem
	}
}

// bumpPeak raises a peak gauge to n if it is behind.
func bumpPeak(peak *atomic.Int64, n int64) {
	for {
		p := peak.Load()
		if n <= p || peak.CompareAndSwap(p, n) {
			return
		}
	}
}

// rowLockStripes sizes the striped row-lock table.
const rowLockStripes = 64

// rowLock returns the stripe lock guarding a metadata row's
// check-and-commit step.
func (b *Broker) rowLock(row string) *sync.Mutex {
	h := fnv.New32a()
	h.Write([]byte(row)) //nolint:errcheck
	return &b.rowLocks[h.Sum32()%rowLockStripes]
}

// NewBroker builds a deployment from cfg.
func NewBroker(cfg Config) *Broker {
	cfg.fill()
	nodes := make([]*metadata.Store, len(cfg.Datacenters))
	caches := cache.NewCluster()
	for i, dc := range cfg.Datacenters {
		nodes[i] = metadata.NewStore(dc)
		caches.AddDatacenter(dc, cfg.CacheBytes)
	}
	b := &Broker{
		cfg:       cfg,
		registry:  cfg.Registry,
		meta:      metadata.NewCluster(nodes...),
		caches:    caches,
		statsDB:   stats.NewDB(cfg.PeriodHours),
		rules:     NewRuleStore(cfg.DefaultRule),
		clock:     cfg.Clock,
		now:       time.Now,
		decisions: make(map[string]*core.DecisionController),
		placement: make(map[string]core.Placement),
		uploads:   make(map[string]*uploadSession),
		planner:   core.NewPlanner(cfg.PeriodHours, cfg.Pruned),
		provIndex: stats.NewProviderIndex(),
		jobs:      newJobRegistry(),
	}
	if cfg.MaxBufferBytes > 0 {
		slots := cfg.MaxBufferBytes / cfg.StripeBytes
		if slots < 1 {
			slots = 1 // a deployment can always buffer one stripe
		}
		b.bufSem = make(chan struct{}, slots)
	}
	b.agg = stats.NewAggregator(b.statsDB, 0)
	id := 0
	for _, dc := range cfg.Datacenters {
		for i := 0; i < cfg.EnginesPerDC; i++ {
			b.engines = append(b.engines, &Engine{
				id:    fmt.Sprintf("engine%d", id),
				dc:    dc,
				b:     b,
				agent: b.agg.NewAgent(),
				alive: true,
			})
			id++
		}
	}
	// The maintenance queue subscribes to named market events before the
	// metric collectors are built, so its gauges are readable at scrape
	// time.
	b.maint = newMaintQueue(b, cfg.ReoptWorkers, cfg.ReoptQueueDepth)
	b.registry.Subscribe(b.maint.onMarketEvent)
	// Last: the metric collectors read the fields built above.
	b.metrics = newBrokerMetrics(b)
	return b
}

// Close releases the statistics pipeline and stops the maintenance
// queue workers.
func (b *Broker) Close() {
	b.maint.close()
	b.agg.Close()
}

// ProviderIndex exposes the provider→objects inverted index (tests and
// integrations; the serving path maintains it automatically).
func (b *Broker) ProviderIndex() *stats.ProviderIndex { return b.provIndex }

// MaintStats returns the maintenance-queue counter snapshot.
func (b *Broker) MaintStats() MaintStats { return b.maint.stats() }

// DrainMaintenance synchronously processes the queued invalidations
// until the queue is empty or ctx is cancelled, returning how many
// objects were re-planned. Deployments without background workers
// (ReoptWorkers == 0) call this from tests, periodic tick loops or the
// jobs API.
func (b *Broker) DrainMaintenance(ctx context.Context) int {
	return b.maint.drain(ctx)
}

// WaitMaintIdle blocks until the maintenance queue is empty and no
// worker is mid-object, or ctx is cancelled.
func (b *Broker) WaitMaintIdle(ctx context.Context) error {
	return b.maint.waitIdle(ctx)
}

// Engines returns all engines.
func (b *Broker) Engines() []*Engine { return b.engines }

// Engine returns engine i (requests are routed to engines indifferently;
// callers may pick any).
func (b *Broker) Engine(i int) *Engine { return b.engines[i%len(b.engines)] }

// NextEngine returns the next engine round-robin across all engines of
// all datacenters, matching the paper's "requests are routed to all
// datacenters indifferently". The counter is atomic: requests may race
// from many goroutines, and the modulo happens on the uint64 so the
// index never goes negative.
func (b *Broker) NextEngine() *Engine {
	n := b.next.Add(1) - 1
	return b.engines[n%uint64(len(b.engines))]
}

// OptimizeTotals returns the cumulative optimization counters.
func (b *Broker) OptimizeTotals() OptimizeTotals {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.totals
}

// recordOptimize folds one round's report into the lifetime totals.
func (b *Broker) recordOptimize(rep OptimizeReport) {
	b.mu.Lock()
	b.totals.Rounds++
	b.totals.Scanned += rep.Scanned
	b.totals.TrendChanged += rep.TrendChanged
	b.totals.Recomputed += rep.Recomputed
	b.totals.Migrated += rep.Migrated
	b.totals.MigrationUSD += rep.MigrationUSD
	b.totals.Evaluated += rep.Evaluated
	b.mu.Unlock()
}

// Registry exposes the provider registry.
func (b *Broker) Registry() *cloud.Registry { return b.registry }

// Planner exposes the shared placement planner (cache statistics,
// direct planning for integrations).
func (b *Broker) Planner() *core.Planner { return b.planner }

// Rules exposes the rule store.
func (b *Broker) Rules() *RuleStore { return b.rules }

// Stats exposes the statistics database.
func (b *Broker) Stats() *stats.DB { return b.statsDB }

// Metadata exposes the metadata cluster.
func (b *Broker) Metadata() *metadata.Cluster { return b.meta }

// Caches exposes the cache cluster.
func (b *Broker) Caches() *cache.Cluster { return b.caches }

// Clock exposes the deployment clock.
func (b *Broker) Clock() Clock { return b.clock }

// FlushStats drains the log pipeline and inter-DC replication; the
// simulator calls it at period boundaries.
func (b *Broker) FlushStats() {
	b.agg.Flush()
	b.meta.Flush()
}

// CurrentPlacement returns the last known placement of an object.
func (b *Broker) CurrentPlacement(object string) (core.Placement, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	p, ok := b.placement[object]
	return p, ok
}

// setPlacement is the single commit hook of every path that (re)places
// an object — Put, multipart complete, migrate, repair swap and
// re-stripe — so updating the provider index here keeps it in sync with
// the committed layout.
func (b *Broker) setPlacement(object string, p core.Placement) {
	b.mu.Lock()
	b.placement[object] = p
	b.mu.Unlock()
	names := make([]string, len(p.Providers))
	for i, spec := range p.Providers {
		names[i] = spec.Name
	}
	b.provIndex.Set(object, names)
}

func (b *Broker) dropPlacement(object string) {
	b.mu.Lock()
	delete(b.placement, object)
	delete(b.decisions, object)
	b.mu.Unlock()
	b.provIndex.Drop(object)
}

// market returns the registry's epoch-cached available-market view:
// epoch, reachable provider specs (shared slice — do not mutate) and
// free capacities of capacity-bounded providers (nil when none).
func (b *Broker) market() (epoch uint64, specs []cloud.Spec, free map[string]int64) {
	return b.registry.Market()
}

// planBest plans the cheapest feasible placement for one object through
// the shared planner.
func (b *Broker) planBest(rule core.Rule, load stats.Summary, objectBytes int64) (core.Result, error) {
	epoch, specs, free := b.market()
	return b.planner.Best(epoch, specs, rule, load, objectBytes, free)
}

// enqueuePendingDelete records a postponed chunk deletion.
func (b *Broker) enqueuePendingDelete(provider, chunkKey string) {
	b.mu.Lock()
	b.pending = append(b.pending, pendingDelete{Provider: provider, ChunkKey: chunkKey})
	b.mu.Unlock()
}

// PendingDeletes returns the number of postponed chunk deletions.
func (b *Broker) PendingDeletes() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.pending)
}

// ProcessPendingDeletes retries postponed deletions against recovered
// providers; it returns how many completed. Cancelling ctx stops the
// scan; unprocessed deletions stay queued.
func (b *Broker) ProcessPendingDeletes(ctx context.Context) int {
	b.mu.Lock()
	pending := b.pending
	b.pending = nil
	b.mu.Unlock()

	done := 0
	var still []pendingDelete
	for i, pd := range pending {
		if ctx.Err() != nil {
			still = append(still, pending[i:]...)
			break
		}
		store, ok := b.registry.Store(pd.Provider)
		if !ok {
			done++ // provider left the market; nothing to delete
			continue
		}
		if err := store.Delete(ctx, pd.ChunkKey); err == nil {
			done++
		} else {
			still = append(still, pd)
		}
	}
	if len(still) > 0 {
		b.mu.Lock()
		b.pending = append(b.pending, still...)
		b.mu.Unlock()
	}
	return done
}

// --- container index ---

const indexPrefix = "idx|"

func indexRow(container, key string) string {
	return indexPrefix + container + "|" + key
}

// writeIndex records (container, key) in the metadata store for listing.
func (b *Broker) writeIndex(dc, container, key, uuid string, ts int64) error {
	return b.meta.Put(dc, indexRow(container, key), metadata.Version{
		UUID: uuid, Timestamp: ts,
		Columns: map[string]string{"key": key},
	})
}

// removeIndex tombstones the listing entry.
func (b *Broker) removeIndex(dc, container, key, uuid string, ts int64) error {
	return b.meta.Put(dc, indexRow(container, key), metadata.Version{
		UUID: uuid, Timestamp: ts, Deleted: true,
	})
}

// listContainer returns the keys of a container from the dc's node,
// sorted so pagination cursors are stable.
func (b *Broker) listContainer(dc, container string) ([]string, error) {
	node := b.meta.Store(dc)
	if node == nil {
		return nil, fmt.Errorf("engine: unknown datacenter %q", dc)
	}
	prefix := indexPrefix + container + "|"
	var keys []string
	for _, row := range node.Rows() {
		if strings.HasPrefix(row, prefix) {
			keys = append(keys, strings.TrimPrefix(row, prefix))
		}
	}
	sort.Strings(keys)
	return keys, nil
}
