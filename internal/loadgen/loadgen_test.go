package loadgen_test

import (
	"bytes"
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"scalia"
	"scalia/client"
	"scalia/internal/loadgen"
	"scalia/internal/workload"
)

var ctx = context.Background()

// newDeployment boots an in-process broker behind the real HTTP
// gateway, exactly the stack scalia-loadgen drives in production.
func newDeployment(t *testing.T, opts scalia.Options) (*scalia.Client, *client.Client) {
	t.Helper()
	deployment, err := scalia.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(deployment.Close)
	ts := httptest.NewServer(deployment.NewGateway())
	t.Cleanup(ts.Close)
	return deployment, client.New(ts.URL, client.WithHTTPClient(ts.Client()))
}

func mustSchedule(t *testing.T, src string) *loadgen.Schedule {
	t.Helper()
	s, err := loadgen.ParseSchedule(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestDeterministicOpSequence: two runs against two fresh deployments
// with the same seed, scenario and chaos schedule dispatch a
// byte-identical op trace — the replayability contract behind every
// BENCH comparison.
func TestDeterministicOpSequence(t *testing.T) {
	const chaosSrc = `[
		{"at": "10ms", "action": "provider-down", "provider": "S3(l)"},
		{"at": "40ms", "action": "provider-up", "provider": "S3(l)"},
		{"at": "60ms", "action": "optimize"}
	]`
	run := func() []byte {
		_, c := newDeployment(t, scalia.Options{})
		var trace bytes.Buffer
		rep, err := loadgen.Run(ctx, loadgen.Config{
			Client:   c,
			Scenario: workload.Truncate(workload.NewZipf(1), 2),
			Seed:     7,
			Workers:  4,
			Rate:     2000,
			MaxOps:   400,
			Chaos:    mustSchedule(t, chaosSrc),
			OpTrace:  &trace,
		})
		if err != nil {
			t.Fatal(err)
		}
		if rep.TotalOps == 0 {
			t.Fatal("no ops executed")
		}
		return trace.Bytes()
	}
	first, second := run(), run()
	if !bytes.Equal(first, second) {
		t.Fatalf("op traces differ between identically-seeded runs:\n--- first (%d bytes)\n%.500s\n--- second (%d bytes)\n%.500s",
			len(first), first, len(second), second)
	}

	// A different seed must reorder the trace — determinism is not
	// "the seed is ignored".
	_, c := newDeployment(t, scalia.Options{})
	var other bytes.Buffer
	if _, err := loadgen.Run(ctx, loadgen.Config{
		Client:   c,
		Scenario: workload.Truncate(workload.NewZipf(1), 2),
		Seed:     8,
		Workers:  4,
		Rate:     2000,
		MaxOps:   400,
		OpTrace:  &other,
	}); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(first, other.Bytes()) {
		t.Fatal("different seeds produced identical op traces")
	}
}

// TestMixedScenarioUnderChaos runs a churn workload (puts, gets AND
// deletes) with repair and outage chaos mid-run — under -race in CI
// this is the generator's concurrency soak.
func TestMixedScenarioUnderChaos(t *testing.T) {
	_, c := newDeployment(t, scalia.Options{})
	rep, err := loadgen.Run(ctx, loadgen.Config{
		Client:   c,
		Scenario: workload.Truncate(workload.NewChurn(3), 24),
		Seed:     11,
		Workers:  4,
		Rate:     1500,
		MaxOps:   300,
		Chaos: mustSchedule(t, `
			{"at": "5ms", "action": "provider-down", "provider": "S3(h)"}
			{"at": "30ms", "action": "repair", "policy": "active"}
			{"at": "50ms", "action": "provider-up", "provider": "S3(h)"}
		`),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalOps == 0 {
		t.Fatal("no ops executed")
	}
	for _, kind := range []string{"put", "get", "delete"} {
		if rep.Ops[kind].Count == 0 {
			t.Fatalf("mixed scenario executed no %s ops: %+v", kind, rep.Ops)
		}
	}
	if rep.SeedErrors != 0 {
		t.Fatalf("seed phase (pre-chaos) had %d errors", rep.SeedErrors)
	}
	// Outage chaos may fail individual ops; wholesale failure means the
	// generator itself is broken.
	if rep.ErrorRate > 0.5 {
		t.Fatalf("error rate %.2f under mild chaos: %+v", rep.ErrorRate, rep.ErrorsByCode)
	}
	if len(rep.Chaos) != 3 {
		t.Fatalf("chaos events executed = %+v, want 3", rep.Chaos)
	}
	for _, ev := range rep.Chaos {
		if ev.Error != "" {
			t.Fatalf("chaos event %s failed: %s", ev.Action, ev.Error)
		}
	}
}

// TestChaosProviderFlipsDoNotLeakReadBudget reproduces the streaming
// regression with the loadgen harness: providers flipping availability
// under open multi-stripe GETs with a bounded prefetch budget must
// return every buffered stripe to the pool. A leaked slot would starve
// all later streaming reads.
func TestChaosProviderFlipsDoNotLeakReadBudget(t *testing.T) {
	z := workload.NewZipf(1)
	z.Objects = 4
	z.SizeBytes = 512 << 10 // 8 stripes per object: real streaming
	z.TotalPeriods = 2

	deployment, c := newDeployment(t, scalia.Options{
		StripeBytes:     64 << 10,
		MaxBufferBytes:  256 << 10, // 4 concurrent stripe buffers
		PrefetchStripes: 2,
		CacheBytes:      0, // every stripe takes the fetch path
	})
	rep, err := loadgen.Run(ctx, loadgen.Config{
		Client:         c,
		Scenario:       z,
		Seed:           5,
		Workers:        6,
		Rate:           3000,
		MaxOps:         200,
		MaxObjectBytes: -1, // keep the 512 KiB objects unclamped
		Chaos: mustSchedule(t, `
			{"at": "2ms",  "action": "provider-down", "provider": "S3(h)"}
			{"at": "10ms", "action": "provider-up",   "provider": "S3(h)"}
			{"at": "18ms", "action": "provider-down", "provider": "S3(h)"}
			{"at": "26ms", "action": "provider-up",   "provider": "S3(h)"}
			{"at": "34ms", "action": "provider-down", "provider": "Azu"}
			{"at": "42ms", "action": "provider-up",   "provider": "Azu"}
		`),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ops["get"].Count == 0 {
		t.Fatal("no streaming gets executed")
	}

	// All streams have drained or been torn down; the budget gauge must
	// settle back to zero. Brief poll: prefetcher teardown is async.
	deadline := time.Now().Add(5 * time.Second)
	for {
		rs := deployment.Broker().ReadStats()
		if rs.BufferedStripes == 0 {
			if rs.BufferedStripesPeak == 0 {
				t.Fatal("budget never engaged: the regression scenario did not stream")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("leaked read-budget slots: %d stripe buffers still held after chaos run (peak %d)",
				rs.BufferedStripes, rs.BufferedStripesPeak)
		}
		time.Sleep(10 * time.Millisecond)
	}

	if rep.StatsDelta == nil {
		t.Fatal("report missing stats delta")
	}
	if rep.StatsDelta.StripesFetched == 0 {
		t.Fatalf("stats delta recorded no fetched stripes: %+v", rep.StatsDelta)
	}
}
