package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"scalia/internal/cloud"
	"scalia/internal/stats"
)

func TestSearchMatchesBestPlacement(t *testing.T) {
	rule := Rule{Durability: 0.99999, Availability: 0.9999, LockIn: 1}
	search, err := NewSearch(cloud.PaperProviders(), rule, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		load := stats.Summary{
			Periods:      1,
			Reads:        float64(rng.Intn(200)),
			Writes:       float64(rng.Intn(3)),
			StorageBytes: float64(1+rng.Intn(100)) * 1e6,
		}
		load.BytesOut = load.Reads * load.StorageBytes
		load.BytesIn = load.Writes * load.StorageBytes

		want, err := BestPlacement(cloud.PaperProviders(), rule, load, Options{})
		if err != nil {
			t.Fatal(err)
		}
		got := search.Best(load, 0, nil)
		if !got.Placement.Equal(want.Placement) {
			t.Fatalf("trial %d: search %v != exact %v (load %+v)",
				trial, got.Placement, want.Placement, load)
		}
		if got.Price != want.Price {
			t.Fatalf("trial %d: price %v != %v", trial, got.Price, want.Price)
		}
	}
}

func TestSearchInfeasible(t *testing.T) {
	weak := []cloud.Spec{{Name: "w", Durability: 0.5, Availability: 0.5}}
	rule := Rule{Durability: 0.999999, Availability: 0.99, LockIn: 1}
	if _, err := NewSearch(weak, rule, Options{}); err == nil {
		t.Fatal("expected ErrNoProviders")
	}
}

func TestSearchCandidateCount(t *testing.T) {
	rule := Rule{Durability: 0.99999, Availability: 0.9999, LockIn: 1}
	search, err := NewSearch(cloud.PaperProviders(), rule, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Singletons fail availability; all multi-provider subsets of the
	// five paper providers are feasible: 2^5 - 1 - 5 = 26.
	if got := search.Candidates(); got != 26 {
		t.Fatalf("Candidates = %d, want 26", got)
	}
}

func TestSearchHonorsZoneFilter(t *testing.T) {
	rule := Rule{Durability: 0.9999, Availability: 0.9999,
		Zones: []cloud.Zone{cloud.ZoneEU}, LockIn: 1}
	search, err := NewSearch(cloud.PaperProviders(), rule, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res := search.Best(stats.Summary{Periods: 1, StorageBytes: 1e6}, 0, nil)
	for _, name := range res.Placement.Names() {
		if name != "S3(h)" && name != "S3(l)" {
			t.Fatalf("non-EU provider %s", name)
		}
	}
}

// prunedGreedyReference is the pre-incremental greedy growth loop: every
// trial provider is priced by re-running PeriodCost over the whole
// candidate (O(k) per trial). Kept as the differential oracle for the
// O(1) incremental pricing in prunedBest.
func prunedGreedyReference(specs, byStorage []cloud.Spec, rule Rule, load stats.Summary,
	periodHours float64, objectBytes int64, free map[string]int64) Result {
	n := len(specs)
	best := Result{Price: math.MaxFloat64}
	minK := rule.MinProviders()
	if minK < 1 {
		minK = 1
	}
	used := make([]bool, n)
	grown := make([]cloud.Spec, 0, n)
	cand := make([]cloud.Spec, 0, n)
	for k := minK; k <= n; k++ {
		grown = grown[:0]
		for i := range used {
			used[i] = false
		}
		for len(grown) < k {
			bestIdx, bestPrice := -1, math.MaxFloat64
			for i, s := range specs {
				if used[i] {
					continue
				}
				cand = append(cand[:0], grown...)
				cand = append(cand, s)
				p := Placement{Providers: cand, M: len(cand)}
				price := PeriodCost(p, load, periodHours)
				if price < bestPrice {
					bestPrice, bestIdx = price, i
				}
			}
			if bestIdx < 0 {
				break
			}
			used[bestIdx] = true
			grown = append(grown, specs[bestIdx])
		}
		if len(grown) == k {
			best.Evaluated++
			evaluatePruned(grown, rule, load, periodHours, objectBytes, free, &best)
		}
		best.Evaluated++
		evaluatePruned(byStorage[:k], rule, load, periodHours, objectBytes, free, &best)
	}
	return best
}

// randomMarket builds a synthetic provider market with realistic SLA
// and price ranges, for differential and property testing.
func randomMarket(rng *rand.Rand, n int) []cloud.Spec {
	durs := []float64{0.9999, 0.999999, 0.99999999, 0.99999999999}
	avs := []float64{0.99, 0.999, 0.9995}
	zoneSets := [][]cloud.Zone{
		{cloud.ZoneEU, cloud.ZoneUS, cloud.ZoneAPAC},
		{cloud.ZoneEU, cloud.ZoneUS},
		{cloud.ZoneUS},
		{cloud.ZoneEU},
	}
	specs := make([]cloud.Spec, n)
	for i := range specs {
		specs[i] = cloud.Spec{
			Name:         fmt.Sprintf("p%02d", i),
			Durability:   durs[rng.Intn(len(durs))],
			Availability: avs[rng.Intn(len(avs))],
			Zones:        zoneSets[rng.Intn(len(zoneSets))],
			Pricing: cloud.Pricing{
				StorageGBMonth: 0.05 + 0.15*rng.Float64(),
				BandwidthInGB:  0.12 * rng.Float64(),
				BandwidthOutGB: 0.05 + 0.15*rng.Float64(),
				OpsPer1000:     0.02 * rng.Float64(),
			},
		}
	}
	return specs
}

// TestPrunedIncrementalMatchesReference is the differential test for
// the incremental greedy pricing: over real and synthetic markets,
// rules and random loads, the O(1)-per-trial loop must pick the exact
// same placements as the O(k) reference, at the same candidate counts.
func TestPrunedIncrementalMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	markets := [][]cloud.Spec{
		cloud.PaperProviders(),
		append(cloud.PaperProviders(), cloud.CheapStorProvider()),
	}
	for i := 0; i < 6; i++ {
		markets = append(markets, randomMarket(rng, 4+rng.Intn(5)))
	}
	rules := []Rule{
		{Durability: 0.99999, Availability: 0.9999, LockIn: 1},
		{Durability: 0.9999, Availability: 0.99, LockIn: 0.5},
		{Durability: 0.999999, Availability: 0.999, LockIn: 0.3, Zones: []cloud.Zone{cloud.ZoneUS}},
	}
	checked := 0
	for mi, specs := range markets {
		for ri, rule := range rules {
			search, err := NewSearch(specs, rule, Options{Pruned: true})
			if err != nil {
				continue // no zone-feasible provider for this pair
			}
			for trial := 0; trial < 50; trial++ {
				load := randomLoad(uint16(rng.Intn(500)), uint16(rng.Intn(8)), uint8(rng.Intn(200)))
				got := search.Best(load, 0, nil)
				want := prunedGreedyReference(search.specs, search.byStorage, rule, load,
					search.periodHours, 0, nil)
				if got.Feasible != want.Feasible {
					t.Fatalf("market %d rule %d trial %d: feasible %v != %v",
						mi, ri, trial, got.Feasible, want.Feasible)
				}
				if !got.Feasible {
					continue
				}
				checked++
				if !got.Placement.Equal(want.Placement) {
					t.Fatalf("market %d rule %d trial %d: incremental %v != reference %v (load %+v)",
						mi, ri, trial, got.Placement, want.Placement, load)
				}
				if got.Evaluated != want.Evaluated {
					t.Fatalf("market %d rule %d trial %d: evaluated %d != %d",
						mi, ri, trial, got.Evaluated, want.Evaluated)
				}
				if math.Abs(got.Price-want.Price) > 1e-12*(1+math.Abs(want.Price)) {
					t.Fatalf("market %d rule %d trial %d: price %v != %v",
						mi, ri, trial, got.Price, want.Price)
				}
			}
		}
	}
	if checked < 100 {
		t.Fatalf("differential test only exercised %d feasible searches", checked)
	}
}

func TestFeasibleThresholdLowersMForAvailability(t *testing.T) {
	pset := pick("S3(h)", "Azu") // both >= 6 nines durability
	// Pure Algorithm 2 yields m = 2 for modest durability...
	if th := GetThreshold(pset, 0.999); th != 2 {
		t.Fatalf("GetThreshold = %d, want 2", th)
	}
	// ...which fails 99.99% availability (0.999^2 = 0.998); the feasible
	// threshold drops to 1 (av 0.999999).
	if m := FeasibleThreshold(pset, 0.999, 0.9999); m != 1 {
		t.Fatalf("FeasibleThreshold = %d, want 1", m)
	}
	// An impossible availability yields 0.
	if m := FeasibleThreshold(pset, 0.999, 0.99999999); m != 0 {
		t.Fatalf("FeasibleThreshold = %d, want 0", m)
	}
}
