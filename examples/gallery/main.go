// Gallery: the paper's §IV-C scenario on the cost simulator — 200
// pictures with Pareto popularity served on a diurnal three-region
// pattern. Prints the Fig. 15 resource series, the Fig. 16 over-cost
// table, and the popularity tiers Scalia settles on.
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	"scalia/internal/sim"
)

func main() {
	res, err := sim.GalleryExperiment()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Fig. 15 — total resources (one row per 12 hours):")
	fmt.Print(sim.FormatResources(res, 12))

	fmt.Println("\nFig. 16 — over-cost of every provider set vs the ideal:")
	fmt.Print(sim.FormatOverCost(res))

	// Show the tiering: the last placement of each migrated picture.
	final := map[string]string{}
	for _, ch := range res.Changes {
		final[ch.Object] = ch.To
	}
	tiers := map[string][]string{}
	for obj, placement := range final {
		tiers[placement] = append(tiers[placement], obj)
	}
	fmt.Println("\npopularity tiers (pictures that migrated off the default placement):")
	keys := make([]string, 0, len(tiers))
	for k := range tiers {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, placement := range keys {
		objs := tiers[placement]
		sort.Strings(objs)
		preview := objs
		if len(preview) > 6 {
			preview = preview[:6]
		}
		fmt.Printf("  %-34s %3d pictures (%s...)\n",
			placement, len(objs), strings.Join(preview, ", "))
	}
}
