package core

import (
	"math"
	"math/rand"
	"testing"

	"scalia/internal/cloud"
	"scalia/internal/stats"
)

// exhaustiveBest is Best without the branch-and-bound break: the
// reference oracle for the differential test. It shares the candidate
// list, pricing, and tie-break with Best so any divergence is the
// prune's fault.
func exhaustiveBest(s *Search, load stats.Summary, objectBytes int64, free map[string]int64) Result {
	best := Result{Price: math.MaxFloat64}
	for _, p := range s.feasible {
		best.Evaluated++
		if !chunkFits(p.Providers, p.M, objectBytes, free) {
			continue
		}
		price := PeriodCost(p, load, s.periodHours)
		if !best.Feasible || price < best.Price-1e-15 ||
			(math.Abs(price-best.Price) <= 1e-15 && tieBreak(p, best.Placement)) {
			best.Feasible = true
			best.Price = price
			best.Placement = p
		}
	}
	return best
}

// TestBestBranchAndBoundDifferential fuzzes random loads and per-object
// constraints against the exhaustive oracle: the pruned scan must pick
// the identical placement at the identical price while never evaluating
// more candidates, and must actually prune on storage-heavy loads.
func TestBestBranchAndBoundDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, rule := range []Rule{
		{Durability: 0.99999, Availability: 0.9999, LockIn: 1},
		{Durability: 0.999999, Availability: 0.9999, LockIn: 0.5},
		{Durability: 0.99999, Availability: 0.999, LockIn: 0.34, Zones: []cloud.Zone{cloud.ZoneUS, cloud.ZoneEU}},
	} {
		s, err := NewSearch(cloud.PaperProviders(), rule, Options{PeriodHours: 1})
		if err != nil {
			t.Fatal(err)
		}
		pruned := 0
		for trial := 0; trial < 300; trial++ {
			load := stats.Summary{
				Periods:      1,
				Reads:        rng.Float64() * 1e4,
				Writes:       rng.Float64() * 1e3,
				BytesOut:     rng.Float64() * 1e11,
				BytesIn:      rng.Float64() * 1e10,
				StorageBytes: math.Pow(10, 6+rng.Float64()*6), // 1 MB .. 1 TB
			}
			if trial%2 == 0 {
				// Storage-dominated (cold archive) load: the regime where the
				// storage floor actually bites and the scan should cut off.
				load.Reads, load.Writes, load.BytesOut, load.BytesIn = 0, 0, 0, 0
				load.StorageBytes = math.Pow(10, 11+rng.Float64()*3) // 100 GB .. 100 TB
			}
			var objectBytes int64
			var free map[string]int64
			if trial%3 == 1 {
				objectBytes = int64(load.StorageBytes)
				free = map[string]int64{}
				for _, spec := range s.specs {
					free[spec.Name] = int64(rng.Float64() * 2 * load.StorageBytes)
				}
			}
			got := s.Best(load, objectBytes, free)
			want := exhaustiveBest(s, load, objectBytes, free)
			if got.Feasible != want.Feasible || got.Price != want.Price ||
				got.Placement.M != want.Placement.M ||
				got.Placement.Key() != want.Placement.Key() {
				t.Fatalf("rule %+v trial %d: pruned %+v != exhaustive %+v", rule, trial, got, want)
			}
			if got.Evaluated > want.Evaluated {
				t.Fatalf("prune evaluated MORE candidates: %d > %d", got.Evaluated, want.Evaluated)
			}
			if got.Evaluated < want.Evaluated {
				pruned++
			}
		}
		if pruned == 0 {
			t.Fatalf("rule %+v: bound never pruned in 300 storage-heavy trials", rule)
		}
	}
}
