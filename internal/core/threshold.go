package core

import "scalia/internal/cloud"

// GetThreshold implements Algorithm 2: it returns the largest erasure
// threshold m for the provider set pset such that the probability of the
// object surviving provider failures (per each provider's SLA
// durability) is at least dr. A return value <= 0 means pset cannot
// satisfy the durability constraint.
//
// Starting from zero, the number of tolerated failed providers
// (failuresOK) is increased, accumulating the probability that exactly
// failuresOK providers fail, until the accumulated survival probability
// reaches dr. The threshold is |pset| - failuresOK: the object must
// remain reconstructable from the surviving providers.
func GetThreshold(pset []cloud.Spec, dr float64) int {
	n := len(pset)
	dura := 0.0
	failuresOK := -1
	for dura < dr && failuresOK < n {
		failuresOK++
		dura += probExactlyKFail(pset, failuresOK, func(s cloud.Spec) float64 { return s.Durability })
	}
	if dura < dr {
		return 0
	}
	if failuresOK < 0 {
		// dr == 0: no failures need tolerating; the threshold is maximal.
		return n
	}
	return n - failuresOK
}

// FeasibleThreshold returns the largest threshold m satisfying both the
// durability and the availability constraint, or 0 if none exists.
//
// Algorithm 1 as printed computes m from durability alone (Algorithm 2)
// and then rejects the set if availability falls short. Read literally,
// that would exclude most of the static sets of Fig. 13 (e.g. any pair
// of six-nines providers gets m = n from Algorithm 2 and then fails the
// 99.99% availability check), yet the paper's evaluation prices all 26.
// Lowering m strictly improves both durability and availability, so the
// operational reading — used here and evidently by the authors'
// simulator — is to lower m until availability holds.
func FeasibleThreshold(pset []cloud.Spec, dr, ar float64) int {
	th := GetThreshold(pset, dr)
	for m := th; m >= 1; m-- {
		if GetAvailability(pset, m) >= ar {
			return m
		}
	}
	return 0
}

// GetAvailability computes the availability the provider set offers for
// threshold m: the probability that the object can be reassembled, i.e.
// that at most |pset| - m providers are simultaneously unreachable,
// using each provider's SLA availability (Algorithm 1, line 9).
func GetAvailability(pset []cloud.Spec, m int) float64 {
	n := len(pset)
	if m <= 0 || m > n {
		return 0
	}
	av := 0.0
	for down := 0; down <= n-m; down++ {
		av += probExactlyKFail(pset, down, func(s cloud.Spec) float64 { return s.Availability })
	}
	return av
}

// probExactlyKFail returns the probability that exactly k providers of
// pset fail, where up(s) is each provider's per-SLA probability of NOT
// failing. It enumerates the C(n,k) failure combinations exactly, as
// Algorithm 2 does (n is small: the paper notes fewer than 15 providers
// exist on the market).
func probExactlyKFail(pset []cloud.Spec, k int, up func(cloud.Spec) float64) float64 {
	n := len(pset)
	if k < 0 || k > n {
		return 0
	}
	total := 0.0
	forEachCombination(n, k, func(comb []int) {
		p := 1.0
		inComb := make(map[int]bool, k)
		for _, i := range comb {
			inComb[i] = true
		}
		for i, s := range pset {
			if inComb[i] {
				p *= 1 - up(s)
			} else {
				p *= up(s)
			}
		}
		total += p
	})
	return total
}

// forEachCombination invokes fn with every k-combination of {0..n-1}.
// The slice passed to fn is reused across calls.
func forEachCombination(n, k int, fn func([]int)) {
	if k == 0 {
		fn(nil)
		return
	}
	if k > n {
		return
	}
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		fn(idx)
		// Advance to the next combination.
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			return
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}
