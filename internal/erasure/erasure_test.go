package erasure

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGaloisFieldAxioms(t *testing.T) {
	// Multiplicative identity and inverse for all non-zero elements.
	for a := 1; a < 256; a++ {
		b := byte(a)
		if got := gfMul(b, 1); got != b {
			t.Fatalf("gfMul(%d,1) = %d, want %d", b, got, b)
		}
		inv := gfInv(b)
		if got := gfMul(b, inv); got != 1 {
			t.Fatalf("gfMul(%d, inv) = %d, want 1", b, got)
		}
	}
	if gfMul(0, 77) != 0 || gfMul(77, 0) != 0 {
		t.Fatal("multiplication by zero must be zero")
	}
}

func TestGaloisMulCommutativeAssociative(t *testing.T) {
	f := func(a, b, c byte) bool {
		if gfMul(a, b) != gfMul(b, a) {
			return false
		}
		return gfMul(gfMul(a, b), c) == gfMul(a, gfMul(b, c))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGaloisDistributive(t *testing.T) {
	f := func(a, b, c byte) bool {
		return gfMul(a, gfAdd(b, c)) == gfAdd(gfMul(a, b), gfMul(a, c))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGaloisDivInvertsMul(t *testing.T) {
	f := func(a, b byte) bool {
		if b == 0 {
			return true
		}
		return gfDiv(gfMul(a, b), b) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGaloisExp(t *testing.T) {
	for a := 0; a < 256; a++ {
		want := byte(1)
		for p := 0; p < 10; p++ {
			if got := gfExp(byte(a), p); got != want {
				t.Fatalf("gfExp(%d,%d) = %d, want %d", a, p, got, want)
			}
			want = gfMul(want, byte(a))
		}
	}
}

func TestMatrixIdentityInvert(t *testing.T) {
	id := identityMatrix(5)
	inv, err := id.invert()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(inv.data, id.data) {
		t.Fatal("inverse of identity must be identity")
	}
}

func TestMatrixInvertRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(8)
		m := newMatrix(n, n)
		for i := range m.data {
			m.data[i] = byte(rng.Intn(256))
		}
		inv, err := m.invert()
		if err != nil {
			continue // singular random matrix; skip
		}
		prod := m.mul(inv)
		if !bytes.Equal(prod.data, identityMatrix(n).data) {
			t.Fatalf("trial %d: m * m^-1 != I", trial)
		}
	}
}

func TestMatrixSingular(t *testing.T) {
	m := newMatrix(2, 2)
	m.set(0, 0, 3)
	m.set(0, 1, 5)
	m.set(1, 0, 3)
	m.set(1, 1, 5)
	if _, err := m.invert(); err == nil {
		t.Fatal("expected singular matrix error")
	}
}

func TestNewParamValidation(t *testing.T) {
	cases := []struct{ m, n int }{{0, 4}, {5, 4}, {-1, 3}, {1, 257}}
	for _, c := range cases {
		if _, err := New(c.m, c.n); err == nil {
			t.Errorf("New(%d,%d): expected error", c.m, c.n)
		}
	}
	for _, c := range []struct{ m, n int }{{1, 1}, {1, 2}, {3, 4}, {4, 5}, {10, 14}} {
		if _, err := New(c.m, c.n); err != nil {
			t.Errorf("New(%d,%d): unexpected error %v", c.m, c.n, err)
		}
	}
}

func TestEncodeSystematic(t *testing.T) {
	c, err := New(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("hello, scalia world of chunks!")
	chunks, err := c.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) != 5 {
		t.Fatalf("got %d chunks, want 5", len(chunks))
	}
	// Systematic property: concatenating the first m chunks re-yields data.
	var cat []byte
	for i := 0; i < 3; i++ {
		cat = append(cat, chunks[i]...)
	}
	if !bytes.Equal(cat[:len(data)], data) {
		t.Fatal("first m chunks must contain the raw data")
	}
}

func TestEncodeDecodeAllErasurePatterns(t *testing.T) {
	c, err := New(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	data := make([]byte, 1000)
	rng.Read(data)
	orig, err := c.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	// Erase every possible pair of chunks (n-m = 2 tolerated failures).
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			chunks := make([][]byte, 5)
			for k := range chunks {
				if k != i && k != j {
					cp := make([]byte, len(orig[k]))
					copy(cp, orig[k])
					chunks[k] = cp
				}
			}
			got, err := c.Decode(chunks, len(data))
			if err != nil {
				t.Fatalf("erase (%d,%d): %v", i, j, err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("erase (%d,%d): decoded data mismatch", i, j)
			}
		}
	}
}

func TestReconstructRestoresParity(t *testing.T) {
	c, _ := New(2, 4)
	data := []byte("parity regeneration test payload")
	orig, _ := c.Encode(data)
	chunks := make([][]byte, 4)
	chunks[0] = append([]byte(nil), orig[0]...)
	chunks[1] = append([]byte(nil), orig[1]...)
	if err := c.Reconstruct(chunks); err != nil {
		t.Fatal(err)
	}
	for i := range orig {
		if !bytes.Equal(chunks[i], orig[i]) {
			t.Fatalf("chunk %d mismatch after reconstruct", i)
		}
	}
	ok, err := c.Verify(chunks)
	if err != nil || !ok {
		t.Fatalf("Verify = %v, %v; want true, nil", ok, err)
	}
}

func TestReconstructTooFew(t *testing.T) {
	c, _ := New(3, 5)
	data := make([]byte, 100)
	orig, _ := c.Encode(data)
	chunks := make([][]byte, 5)
	chunks[0] = orig[0]
	chunks[4] = orig[4]
	if err := c.Reconstruct(chunks); err == nil {
		t.Fatal("expected ErrTooFewChunks")
	}
}

func TestVerifyDetectsCorruption(t *testing.T) {
	c, _ := New(3, 6)
	data := []byte("integrity matters in multi-cloud storage")
	chunks, _ := c.Encode(data)
	ok, err := c.Verify(chunks)
	if err != nil || !ok {
		t.Fatalf("clean Verify = %v, %v", ok, err)
	}
	chunks[4][0] ^= 0xff
	ok, err = c.Verify(chunks)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("Verify must detect a corrupted parity chunk")
	}
}

func TestZeroLengthObject(t *testing.T) {
	c, _ := New(2, 3)
	chunks, err := c.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decode(chunks, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %d bytes, want 0", len(got))
	}
}

func TestMirroringM1(t *testing.T) {
	// RAID-1 equivalent: (m=1, n=3) — every chunk is a full replica.
	c, _ := New(1, 3)
	data := []byte("replica")
	chunks, _ := c.Encode(data)
	for i, ch := range chunks {
		if !bytes.Equal(ch[:len(data)], data) {
			t.Fatalf("chunk %d is not a full replica", i)
		}
	}
}

func TestRaid5Shape(t *testing.T) {
	// RAID-5 as described in §II-A: (m=k, n=k+1), k >= 3.
	for k := 3; k <= 6; k++ {
		c, err := New(k, k+1)
		if err != nil {
			t.Fatal(err)
		}
		data := make([]byte, 501)
		for i := range data {
			data[i] = byte(i * 31)
		}
		chunks, _ := c.Encode(data)
		chunks[k/2] = nil // lose one chunk
		got, err := c.Decode(chunks, len(data))
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("k=%d: data mismatch", k)
		}
	}
}

func TestEncodeDecodeProperty(t *testing.T) {
	// Property: for random data, parameters, and erasure patterns within
	// tolerance, Decode(Encode(data)) == data.
	rng := rand.New(rand.NewSource(99))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := 1 + r.Intn(6)
		n := m + r.Intn(5)
		c, err := New(m, n)
		if err != nil {
			return false
		}
		data := make([]byte, 1+r.Intn(2048))
		r.Read(data)
		chunks, err := c.Encode(data)
		if err != nil {
			return false
		}
		// Erase up to n-m random chunks.
		erasures := r.Intn(n - m + 1)
		perm := r.Perm(n)
		for i := 0; i < erasures; i++ {
			chunks[perm[i]] = nil
		}
		got, err := c.Decode(chunks, len(data))
		return err == nil && bytes.Equal(got, data)
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestChunkSize(t *testing.T) {
	c, _ := New(3, 5)
	cases := []struct{ data, want int }{
		{0, 0}, {1, 1}, {3, 1}, {4, 2}, {300, 100}, {301, 101},
	}
	for _, tc := range cases {
		if got := c.ChunkSize(tc.data); got != tc.want {
			t.Errorf("ChunkSize(%d) = %d, want %d", tc.data, got, tc.want)
		}
	}
}

func TestRateOverhead(t *testing.T) {
	c, _ := New(3, 4)
	if c.Rate() != 0.75 {
		t.Errorf("Rate = %v, want 0.75", c.Rate())
	}
	if got := c.Overhead(); got < 1.333 || got > 1.334 {
		t.Errorf("Overhead = %v, want ~1.333", got)
	}
}
