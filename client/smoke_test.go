package client_test

import (
	"bytes"
	"fmt"
	"os"
	"testing"
	"time"

	"scalia/client"
)

// TestGatewaySmoke exercises a real scalia-server process over TCP:
// put, get, head, list, stats, delete through the typed client. It is
// the CI gateway smoke job; locally it is skipped unless
// SCALIA_GATEWAY_ADDR points at a running server (e.g.
// "http://127.0.0.1:8080").
func TestGatewaySmoke(t *testing.T) {
	addr := os.Getenv("SCALIA_GATEWAY_ADDR")
	if addr == "" {
		t.Skip("SCALIA_GATEWAY_ADDR not set; start scalia-server and point it here")
	}
	c := client.New(addr)

	// The server may still be binding its listener; retry briefly.
	var lastErr error
	for i := 0; i < 50; i++ {
		if _, lastErr = c.Stats(ctx); lastErr == nil {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if lastErr != nil {
		t.Fatalf("gateway unreachable at %s: %v", addr, lastErr)
	}

	key := fmt.Sprintf("smoke-%d", time.Now().UnixNano())
	payload := bytes.Repeat([]byte("smoke"), 4096)
	meta, err := c.Put(ctx, "smoke", key, payload, client.WithMIME("application/octet-stream"))
	if err != nil {
		t.Fatalf("put: %v", err)
	}
	if meta.Size != int64(len(payload)) {
		t.Fatalf("put meta = %+v", meta)
	}

	got, _, err := c.Get(ctx, "smoke", key)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("get: %v (%d bytes)", err, len(got))
	}
	if _, err := c.Head(ctx, "smoke", key); err != nil {
		t.Fatalf("head: %v", err)
	}
	page, err := c.List(ctx, "smoke", client.ListOptions{Prefix: "smoke-"})
	if err != nil || len(page.Keys) == 0 {
		t.Fatalf("list: %v (%d keys)", err, len(page.Keys))
	}

	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if st.Planner.Hits+st.Planner.Misses == 0 {
		t.Fatalf("planner counters missing from stats: %+v", st)
	}
	if st.Usage.Ops == 0 {
		t.Fatalf("usage counters missing from stats: %+v", st)
	}

	if err := c.Delete(ctx, "smoke", key); err != nil {
		t.Fatalf("delete: %v", err)
	}
}
