package privstore

import (
	"context"
	"encoding/json"
	"net/http"
	"time"

	"scalia/internal/cloud"
)

// Backend adapts a private-store client to the registry's Backend
// interface so corporate resources participate in placement like any
// public provider (§III-E: "the placement algorithm will take into
// account these new resources").
type Backend struct {
	*Client
	spec cloud.Spec
}

// NewBackend wraps a client with the resource's registered properties
// (amount and price of available storage, bandwidth and operation
// prices).
func NewBackend(c *Client, spec cloud.Spec) *Backend {
	spec.Private = true
	return &Backend{Client: c, spec: spec}
}

// Spec implements cloud.Backend.
func (b *Backend) Spec() cloud.Spec { return b.spec }

// Available probes the service's stats endpoint.
func (b *Backend) Available() bool {
	_, err := b.stats()
	return err == nil
}

// UsedBytes implements cloud.Backend; it returns 0 when unreachable
// (the engine excludes unavailable backends before capacity checks).
func (b *Backend) UsedBytes() int64 {
	st, err := b.stats()
	if err != nil {
		return 0
	}
	return st.UsedBytes
}

type statsResponse struct {
	UsedBytes int64 `json:"usedBytes"`
}

// probeTimeout bounds the Available/UsedBytes liveness probes; they run
// under the registry's market rebuild, not a user request, so they get
// their own deadline instead of a caller context.
const probeTimeout = 10 * time.Second

func (b *Backend) stats() (statsResponse, error) {
	ctx, cancel := context.WithTimeout(context.Background(), probeTimeout)
	defer cancel()
	resp, err := b.do(ctx, http.MethodGet, "/stats", nil)
	if err != nil {
		return statsResponse{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return statsResponse{}, remoteErr(resp)
	}
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return statsResponse{}, err
	}
	return st, nil
}

var _ cloud.Backend = (*Backend)(nil)
