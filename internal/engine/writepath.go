package engine

import (
	"context"
	"crypto/md5"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"scalia/internal/cloud"
	"scalia/internal/core"
	"scalia/internal/erasure"
	"scalia/internal/obs"
)

// This file is the streaming write path: a stripe-pipelined, chunk-
// parallel object writer — readpath.go's mirror image.
//
// A write of stripe s goes through three layers:
//
//  1. the producer reads the stripe payload off the body, folds it into
//     the object and per-stripe checksums, and erasure-codes it into n
//     chunks (scratch drawn from the erasure pool);
//  2. a bounded set of fan-out workers writes the n chunks of up to
//     Config.WritePipelineDepth stripes to their providers
//     concurrently, so provider round-trips of neighbouring stripes
//     overlap with each other and with encoding;
//  3. after the last stripe lands, the caller commits the object's
//     metadata once under the row lock — one commit per object, not
//     per stripe.
//
// Every in-flight stripe holds one slot of the broker-wide
// MaxBufferBytes budget shared with the read path; the producer
// acquires slots in stripe order before reading, and a stripe's worker
// releases its slot when the fan-out finishes, so writes cannot
// deadlock the budget (a held slot always drains without needing
// another acquire first) and broker memory stays bounded under any mix
// of concurrent GETs and PUTs.
//
// On any failure — a provider error, a short body, ctx cancellation —
// the pipeline drains and every chunk already written is rolled back.

// stripeWritePlan describes one streaming write: the coder and resolved
// provider backends shared by every stripe, plus the stripe geometry
// and key layout. PutReader and multipart UploadPart build different
// plans over the same pipeline.
type stripeWritePlan struct {
	coder  *erasure.Coder
	stores []cloud.Backend
	names  []string // provider name per chunk index, for metrics and errors
	// stripes is how many stripes the body holds; stripeLen gives each
	// stripe's payload length and key its chunk keys.
	stripes   int
	stripeLen func(s int) int64
	key       func(s, i int) string
}

// resolvePlacement materializes a placement's provider backends and an
// (m, n) coder for it.
func (e *Engine) resolvePlacement(p core.Placement) (*erasure.Coder, []cloud.Backend, []string, error) {
	coder, err := erasure.Cached(p.M, p.N())
	if err != nil {
		return nil, nil, nil, err
	}
	stores := make([]cloud.Backend, p.N())
	names := make([]string, p.N())
	for i, spec := range p.Providers {
		store, ok := e.b.registry.Store(spec.Name)
		if !ok {
			return nil, nil, nil, fmt.Errorf("engine: provider %s vanished", spec.Name)
		}
		stores[i] = store
		names[i] = spec.Name
	}
	return coder, stores, names, nil
}

// writeChunksStream reads the body stripe by stripe, erasure-codes each
// stripe with (m, n) from the placement, and streams the chunks to the
// providers through the write pipeline. The object's checksum and per-
// stripe sums are computed as the body streams through and stored into
// meta. On any failure — including ctx cancellation mid-fan-out —
// every chunk already written is rolled back.
func (e *Engine) writeChunksStream(ctx context.Context, meta *ObjectMeta, p core.Placement, r io.Reader) error {
	coder, stores, names, err := e.resolvePlacement(p)
	if err != nil {
		return err
	}
	meta.Chunks = names
	sum, stripeSums, err := e.writeStripes(ctx, stripeWritePlan{
		coder: coder, stores: stores, names: names,
		stripes: meta.StripeCount(), stripeLen: meta.stripeLen, key: meta.chunkKey,
	}, r)
	if err != nil {
		return err
	}
	meta.Checksum, meta.StripeSums = sum, stripeSums
	return nil
}

// stripeJob is one encoded stripe travelling from the producer to a
// fan-out worker. The chunks are pool-owned; whoever drops the job
// must release them (and the stripe's budget slot).
type stripeJob struct {
	s      int
	chunks [][]byte
}

// writeStripes streams r through the write pipeline under plan,
// returning the payload's MD5 and per-stripe MD5s. All chunks already
// written are rolled back on error, so the providers never keep a
// partial write.
func (e *Engine) writeStripes(ctx context.Context, plan stripeWritePlan, r io.Reader) (string, []string, error) {
	if depth := e.b.cfg.WritePipelineDepth; depth > 0 && plan.stripes > 1 {
		return e.writeStripesPipelined(ctx, plan, r, depth)
	}
	return e.writeStripesSequential(ctx, plan, r)
}

// writeStripesSequential is the unpipelined write loop: encode stripe
// s, fan it out, wait, then touch stripe s+1. Single-stripe bodies and
// WritePipelineDepth <= 0 use it.
func (e *Engine) writeStripesSequential(ctx context.Context, plan stripeWritePlan, r io.Reader) (string, []string, error) {
	tr := obs.TraceFrom(ctx)
	objSum := md5.New()
	sums := make([]string, plan.stripes)
	var payload []byte
	for s := 0; s < plan.stripes; s++ {
		if err := ctx.Err(); err != nil {
			e.rollbackPlan(plan, s)
			return "", nil, err
		}
		if err := e.b.acquireWriteBuf(ctx); err != nil {
			e.rollbackPlan(plan, s)
			return "", nil, err
		}
		chunks, err := e.produceWriteStripe(tr, plan, s, r, &payload, objSum, sums)
		if err != nil {
			e.b.releaseWriteBuf()
			e.rollbackPlan(plan, s)
			return "", nil, err
		}
		fanoutStart := time.Now()
		err = e.fanOutStripe(ctx, plan, s, chunks)
		erasure.ReleaseChunks(chunks)
		e.b.releaseWriteBuf()
		if err != nil {
			e.rollbackPlan(plan, s+1)
			return "", nil, err
		}
		e.b.observeStage(tr, "fanout", fanoutStart)
	}
	e.b.metrics.writeStripes.Add(int64(plan.stripes))
	return hex.EncodeToString(objSum.Sum(nil)), sums, nil
}

// writeStripesPipelined overlaps reading/encoding of stripe s+1..s+depth
// with the provider fan-out of stripe s: the producer (this goroutine)
// reads, hashes and encodes in stripe order; depth workers fan encoded
// stripes out concurrently. The body is still consumed strictly in
// order, so r needs no seeking.
func (e *Engine) writeStripesPipelined(ctx context.Context, plan stripeWritePlan, r io.Reader, depth int) (string, []string, error) {
	tr := obs.TraceFrom(ctx)
	objSum := md5.New()
	sums := make([]string, plan.stripes)

	pctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		workErr  error
		jobs     = make(chan stripeJob)
		fail     = func(err error) { errOnce.Do(func() { workErr = err; cancel() }) }
		nworkers = depth
	)
	if nworkers > plan.stripes {
		nworkers = plan.stripes
	}
	for w := 0; w < nworkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for job := range jobs {
				fanoutStart := time.Now()
				err := e.fanOutStripe(pctx, plan, job.s, job.chunks)
				erasure.ReleaseChunks(job.chunks)
				e.b.releaseWriteBuf()
				if err != nil {
					fail(err)
					continue
				}
				e.b.observeStage(tr, "fanout", fanoutStart)
			}
		}()
	}

	// The producer: read, hash, encode, dispatch — in stripe order. The
	// budget slot acquired here travels with the stripe and is released
	// by the worker that fans it out.
	dispatched := 0
	var payload []byte
	prodErr := func() error {
		for s := 0; s < plan.stripes; s++ {
			if err := e.b.acquireWriteBuf(pctx); err != nil {
				return err
			}
			chunks, err := e.produceWriteStripe(tr, plan, s, r, &payload, objSum, sums)
			if err != nil {
				e.b.releaseWriteBuf()
				return err
			}
			select {
			case jobs <- stripeJob{s: s, chunks: chunks}:
				dispatched++
			case <-pctx.Done():
				erasure.ReleaseChunks(chunks)
				e.b.releaseWriteBuf()
				return pctx.Err()
			}
		}
		return nil
	}()
	close(jobs)
	wg.Wait()

	err := workErr
	if err == nil {
		err = prodErr
	}
	if err != nil {
		// Workers are done and every dispatched fan-out has returned;
		// stripes [0, dispatched) are the only ones that could have
		// touched a provider.
		e.rollbackPlan(plan, dispatched)
		return "", nil, err
	}
	e.b.metrics.writeStripes.Add(int64(plan.stripes))
	return hex.EncodeToString(objSum.Sum(nil)), sums, nil
}

// produceWriteStripe reads stripe s's payload from r (into *payload,
// grown as needed and reused across stripes), folds it into the object
// and per-stripe checksums, and erasure-codes it with pooled scratch.
// The returned chunks must be handed back via erasure.ReleaseChunks
// once their fan-out completes.
func (e *Engine) produceWriteStripe(tr *obs.Trace, plan stripeWritePlan, s int, r io.Reader, payload *[]byte, objSum io.Writer, sums []string) ([][]byte, error) {
	plen := plan.stripeLen(s)
	buf := *payload
	if int64(cap(buf)) < plen {
		buf = make([]byte, plen)
	}
	buf = buf[:plen]
	*payload = buf
	if _, err := io.ReadFull(r, buf); err != nil {
		// A short body is the caller's mistake; any other read error
		// (source-provider failure during migrate, client disconnect)
		// keeps its own identity for status mapping.
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, fmt.Errorf("%w: body ended before the declared size", ErrInvalidArgument)
		}
		return nil, fmt.Errorf("engine: object body read: %w", err)
	}
	objSum.Write(buf) //nolint:errcheck
	stripeSum := md5.Sum(buf)
	sums[s] = hex.EncodeToString(stripeSum[:])
	encodeStart := time.Now()
	chunks, err := plan.coder.EncodePooled(buf)
	if err != nil {
		return nil, err
	}
	e.b.observeStage(tr, "encode", encodeStart)
	return chunks, nil
}

// fanOutStripe writes one stripe's n chunks to their providers
// concurrently. The first error (a provider failure or ctx
// cancellation) is returned; the remaining writes run to completion so
// rollback sees a consistent picture.
func (e *Engine) fanOutStripe(ctx context.Context, plan stripeWritePlan, s int, chunks [][]byte) error {
	var wg sync.WaitGroup
	errs := make([]error, len(plan.stores))
	for i := range plan.stores {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			t0 := time.Now()
			err := plan.stores[i].Put(ctx, plan.key(s, i), chunks[i])
			e.b.observeProviderOp(plan.names[i], "put", t0, err)
			if err != nil {
				errs[i] = fmt.Errorf("engine: chunk write to %s: %w", plan.names[i], err)
			}
		}(i)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// rollbackPlan best-effort deletes the chunks of the plan's stripes
// [0, upto). Cleanup runs detached from the request context: a
// cancelled request must still release the chunks it managed to write.
func (e *Engine) rollbackPlan(plan stripeWritePlan, upto int) {
	for s := 0; s < upto; s++ {
		for i, name := range plan.names {
			e.deleteChunkAt(name, plan.key(s, i))
		}
	}
}
