package sim

import (
	"fmt"
	"strings"

	"scalia/internal/stats"
	"scalia/internal/trend"
	"scalia/internal/workload"
)

// FormatOverCost renders the Fig. 14/16-style table: one row per
// provider set plus Scalia as row 27, with cumulative cost and over-cost
// percentage versus the ideal placement.
func FormatOverCost(res *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-3s %-26s %12s %10s\n", "#", "set", "cost (USD)", "over-cost")
	for _, s := range res.Statics {
		fmt.Fprintf(&b, "%-3d %-26s %12.6f %9.3f%%\n", s.Index, s.Label, s.CostUSD, s.OverPct)
	}
	fmt.Fprintf(&b, "%-3d %-26s %12.6f %9.3f%%\n", ScaliaIndex, "Scalia", res.ScaliaUSD, res.ScaliaOverPct)
	fmt.Fprintf(&b, "ideal placement: %.6f USD | Scalia migrations: %d (%.6f USD)\n",
		res.IdealUSD, res.Migrations, res.MigrationUSD)
	fmt.Fprintf(&b, "planner: %d prepared-search hits, %d rebuilds (market epochs)\n",
		res.PlannerHits, res.PlannerMisses)
	return b.String()
}

// FormatResources renders the Fig. 12/15/17-style resource series.
func FormatResources(res *Result, every int) string {
	if every < 1 {
		every = 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%6s %14s %12s %12s\n", "hour", "storage (GB)", "bdw in (GB)", "bdw out (GB)")
	for i, pt := range res.Resources {
		if i%every != 0 && i != len(res.Resources)-1 {
			continue
		}
		fmt.Fprintf(&b, "%6d %14.6f %12.6f %12.6f\n", pt.Period, pt.StorageGB, pt.BwInGB, pt.BwOutGB)
	}
	return b.String()
}

// FormatChanges renders Scalia's placement-change log.
func FormatChanges(res *Result) string {
	var b strings.Builder
	for _, ch := range res.Changes {
		fmt.Fprintf(&b, "hour %4d  %-20s %s -> %s (%s)\n",
			ch.Period, ch.Object, ch.From, ch.To, ch.Reason)
	}
	if len(res.Changes) == 0 {
		b.WriteString("(no placement changes)\n")
	}
	return b.String()
}

// FormatCumulative renders the Fig. 18 cumulative-price comparison.
func FormatCumulative(scalia, static []float64, staticLabel string, every int) string {
	if every < 1 {
		every = 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%6s %14s %14s\n", "hour", "Scalia (USD)", staticLabel+" (USD)")
	for i := 0; i < len(scalia) && i < len(static); i++ {
		if i%every != 0 && i != len(scalia)-1 {
			continue
		}
		fmt.Fprintf(&b, "%6d %14.6f %14.6f\n", i, scalia[i], static[i])
	}
	return b.String()
}

// TrendFigure reproduces Figs. 8 and 9: the website read series with
// the detected trend-change markers.
type TrendFigure struct {
	Series  []float64
	Changes []int
}

// TrendHourly builds Fig. 8 (s = 1 h, 7 days, ma = 3, limit = 0.1).
func TrendHourly() TrendFigure {
	series := workload.NewWebsite().HourlySeries(7 * 24)
	return TrendFigure{Series: series, Changes: trend.Detect(series, 3, 0.1)}
}

// TrendDaily builds Fig. 9 (s = 1 d, 3 months, ma = 3, limit = 0.1).
func TrendDaily() TrendFigure {
	series := workload.NewWebsite().DailySeries(90)
	return TrendFigure{Series: series, Changes: trend.Detect(series, 3, 0.1)}
}

// FormatTrend renders a trend figure as rows of period, ops and marker.
func FormatTrend(fig TrendFigure) string {
	marks := make(map[int]bool, len(fig.Changes))
	for _, c := range fig.Changes {
		marks[c] = true
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%6s %10s %s\n", "period", "ops", "trend-change")
	for i, v := range fig.Series {
		mark := ""
		if marks[i] {
			mark = "  *** recompute placement"
		}
		fmt.Fprintf(&b, "%6d %10.1f%s\n", i, v, mark)
	}
	fmt.Fprintf(&b, "detected %d trend changes over %d periods\n", len(fig.Changes), len(fig.Series))
	return b.String()
}

// LifetimeFigure reproduces Fig. 5: a 20-object class with lifetimes
// spread over 0-6 hours, its deletion-time histogram and the expected
// time-left-to-live curve.
func LifetimeFigure() (*stats.LifetimeDist, string) {
	d := stats.NewLifetimeDist(0)
	for i := 0; i < 20; i++ {
		d.Observe(6 * float64(i) / 19)
	}
	var b strings.Builder
	b.WriteString("deletion-time histogram (1 h bins):\n")
	for i, c := range d.Histogram(1, 6) {
		fmt.Fprintf(&b, "  %d-%dh: %s (%d)\n", i, i+1, strings.Repeat("#", c), c)
	}
	b.WriteString("expected time left to live by age:\n")
	for age := 0.0; age <= 6.0; age += 0.5 {
		ttl, ok := d.ExpectedTTL(age)
		if !ok {
			break
		}
		fmt.Fprintf(&b, "  age %.1fh -> E[TTL] = %.2fh\n", age, ttl)
	}
	return d, b.String()
}
