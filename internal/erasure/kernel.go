//go:build !erasure_ref

package erasure

// Table-driven GF(2^8) slice kernels. Each coefficient's full 256-entry
// product table is precomputed (mulTable, galois.go), so the inner loop
// is a single branch-free lookup-and-xor per byte. The loops walk
// 64-byte blocks through fixed-size array views: converting a slice to
// *[64]byte hoists the bounds check out of the block, and indexing a
// [256]byte table with a byte needs no check at all.
//
// kernRow is the entry point the encode, reconstruct and verify paths
// use: it computes one output row out = sum_k coefs[k]*in[k] over a
// span, fusing up to four inputs per pass so the accumulator stays in
// a register instead of being re-loaded and re-stored once per input.
// kernel_ref.go swaps in the scalar reference path under
// -tags erasure_ref.

// kernRow computes dst = sum_k coefs[k] * ins[k][lo:hi], where dst has
// length hi-lo. The first term assigns rather than accumulates, so dst
// may arrive dirty (pooled scratch needs no pre-zeroing).
func kernRow(coefs []byte, ins [][]byte, lo, hi int, dst []byte) {
	switch len(ins) {
	case 0:
		clear(dst)
	case 1:
		kernMul(coefs[0], ins[0][lo:hi], dst)
	case 2:
		mul2(coefs, ins[0][lo:hi], ins[1][lo:hi], dst)
	case 3:
		mul3(coefs, ins[0][lo:hi], ins[1][lo:hi], ins[2][lo:hi], dst)
	default:
		mul4(coefs, ins[0][lo:hi], ins[1][lo:hi], ins[2][lo:hi], ins[3][lo:hi], dst)
		k := 4
		for ; k+4 <= len(ins); k += 4 {
			mul4add(coefs[k:], ins[k][lo:hi], ins[k+1][lo:hi], ins[k+2][lo:hi], ins[k+3][lo:hi], dst)
		}
		switch len(ins) - k {
		case 1:
			kernMulAdd(coefs[k], ins[k][lo:hi], dst)
		case 2:
			mul2add(coefs[k:], ins[k][lo:hi], ins[k+1][lo:hi], dst)
		case 3:
			mul3add(coefs[k:], ins[k][lo:hi], ins[k+1][lo:hi], ins[k+2][lo:hi], dst)
		}
	}
}

// runJobSpan computes all jobs over one span, batching groups of four
// rows that share an input set through the 4x4 micro-kernel and
// falling back to row-at-a-time fused kernels for the rest. Encode,
// reconstruct and verify all build their job batches over one shared
// input set, so the fast grouping is the common case.
func runJobSpan(jobs []rsJob, lo, hi int) {
	i := 0
	for i+4 <= len(jobs) && sameChunks(jobs[i].in, jobs[i+1].in) &&
		sameChunks(jobs[i].in, jobs[i+2].in) && sameChunks(jobs[i].in, jobs[i+3].in) {
		coefs := [4][]byte{jobs[i].row, jobs[i+1].row, jobs[i+2].row, jobs[i+3].row}
		outs := [4][]byte{jobs[i].out, jobs[i+1].out, jobs[i+2].out, jobs[i+3].out}
		kernRows4(&coefs, jobs[i].in, lo, hi, &outs)
		i += 4
	}
	for ; i < len(jobs); i++ {
		kernRow(jobs[i].row, jobs[i].in, lo, hi, jobs[i].out[lo:hi])
	}
}

// sameChunks reports whether two job input sets are the same slice.
func sameChunks(a, b [][]byte) bool {
	return len(a) == len(b) && (len(a) == 0 || &a[0] == &b[0])
}

// kernRows4 computes four output rows over one span in a single pass:
// outs[r][lo:hi] = sum_k coefs[r][k] * ins[k][lo:hi]. Fusing rows on
// top of inputs amortizes every input-byte load across four outputs —
// the 4x4 micro-kernel touches 16 product tables (4 KiB, L1-resident)
// and performs one input load per four output bytes, where row-at-a-
// time fusion performs four.
func kernRows4(coefs *[4][]byte, ins [][]byte, lo, hi int, outs *[4][]byte) {
	o0, o1, o2, o3 := outs[0][lo:hi], outs[1][lo:hi], outs[2][lo:hi], outs[3][lo:hi]
	k := 0
	for ; k+4 <= len(ins); k += 4 {
		var cs [4][4]byte
		for r := 0; r < 4; r++ {
			copy(cs[r][:], coefs[r][k:k+4])
		}
		if k == 0 {
			mul4x4(&cs, ins[k][lo:hi], ins[k+1][lo:hi], ins[k+2][lo:hi], ins[k+3][lo:hi], o0, o1, o2, o3, true)
		} else {
			mul4x4(&cs, ins[k][lo:hi], ins[k+1][lo:hi], ins[k+2][lo:hi], ins[k+3][lo:hi], o0, o1, o2, o3, false)
		}
	}
	if k == 0 {
		// Fewer than four inputs: fall back to row-at-a-time for the
		// whole batch (assign semantics preserved).
		for r := 0; r < 4; r++ {
			kernRow(coefs[r], ins, lo, hi, outs[r][lo:hi])
		}
		return
	}
	// Remaining 1..3 inputs accumulate row by row.
	for r := 0; r < 4; r++ {
		switch len(ins) - k {
		case 1:
			kernMulAdd(coefs[r][k], ins[k][lo:hi], outs[r][lo:hi])
		case 2:
			mul2add(coefs[r][k:], ins[k][lo:hi], ins[k+1][lo:hi], outs[r][lo:hi])
		case 3:
			mul3add(coefs[r][k:], ins[k][lo:hi], ins[k+1][lo:hi], ins[k+2][lo:hi], outs[r][lo:hi])
		}
	}
}

// mul4x4 is the 4-row x 4-input micro-kernel: one pass over four input
// spans producing four output spans. assign selects whether the first
// input group overwrites (dirty buffers) or accumulates.
func mul4x4(cs *[4][4]byte, a, b, c, d []byte, o0, o1, o2, o3 []byte, assign bool) {
	// The 16 product tables are copied onto the stack: a fixed-offset
	// stack array resolves each lookup with one load, where 16 table
	// pointers would spill and cost a pointer reload per lookup. The
	// 4 KiB copy amortizes over the span (kernRows4 calls this once
	// per input group per span).
	var tt [16][fieldSize]byte
	for r := 0; r < 4; r++ {
		for k := 0; k < 4; k++ {
			tt[r*4+k] = mulTable[cs[r][k]]
		}
	}
	t00, t01, t02, t03 := &tt[0], &tt[1], &tt[2], &tt[3]
	t10, t11, t12, t13 := &tt[4], &tt[5], &tt[6], &tt[7]
	t20, t21, t22, t23 := &tt[8], &tt[9], &tt[10], &tt[11]
	t30, t31, t32, t33 := &tt[12], &tt[13], &tt[14], &tt[15]
	size := len(o0)
	a, b, c, d = a[:size], b[:size], c[:size], d[:size]
	n := size - size%kernBlock
	for i := 0; i < n; i += kernBlock {
		ab := (*[kernBlock]byte)(a[i:])
		bb := (*[kernBlock]byte)(b[i:])
		cb := (*[kernBlock]byte)(c[i:])
		db := (*[kernBlock]byte)(d[i:])
		x0 := (*[kernBlock]byte)(o0[i:])
		x1 := (*[kernBlock]byte)(o1[i:])
		x2 := (*[kernBlock]byte)(o2[i:])
		x3 := (*[kernBlock]byte)(o3[i:])
		if assign {
			for j := range x0 {
				va, vb, vc, vd := ab[j], bb[j], cb[j], db[j]
				x0[j] = t00[va] ^ t01[vb] ^ t02[vc] ^ t03[vd]
				x1[j] = t10[va] ^ t11[vb] ^ t12[vc] ^ t13[vd]
				x2[j] = t20[va] ^ t21[vb] ^ t22[vc] ^ t23[vd]
				x3[j] = t30[va] ^ t31[vb] ^ t32[vc] ^ t33[vd]
			}
		} else {
			for j := range x0 {
				va, vb, vc, vd := ab[j], bb[j], cb[j], db[j]
				x0[j] ^= t00[va] ^ t01[vb] ^ t02[vc] ^ t03[vd]
				x1[j] ^= t10[va] ^ t11[vb] ^ t12[vc] ^ t13[vd]
				x2[j] ^= t20[va] ^ t21[vb] ^ t22[vc] ^ t23[vd]
				x3[j] ^= t30[va] ^ t31[vb] ^ t32[vc] ^ t33[vd]
			}
		}
	}
	for i := n; i < size; i++ {
		va, vb, vc, vd := a[i], b[i], c[i], d[i]
		if assign {
			o0[i] = t00[va] ^ t01[vb] ^ t02[vc] ^ t03[vd]
			o1[i] = t10[va] ^ t11[vb] ^ t12[vc] ^ t13[vd]
			o2[i] = t20[va] ^ t21[vb] ^ t22[vc] ^ t23[vd]
			o3[i] = t30[va] ^ t31[vb] ^ t32[vc] ^ t33[vd]
		} else {
			o0[i] ^= t00[va] ^ t01[vb] ^ t02[vc] ^ t03[vd]
			o1[i] ^= t10[va] ^ t11[vb] ^ t12[vc] ^ t13[vd]
			o2[i] ^= t20[va] ^ t21[vb] ^ t22[vc] ^ t23[vd]
			o3[i] ^= t30[va] ^ t31[vb] ^ t32[vc] ^ t33[vd]
		}
	}
}

// kernMul sets out[i] = c*in[i]. len(in) must be >= len(out).
func kernMul(c byte, in, out []byte) {
	switch c {
	case 0:
		clear(out)
		return
	case 1:
		copy(out, in)
		return
	}
	tbl := &mulTable[c]
	in = in[:len(out)] // hoist: every in[i] below is in range
	n := len(out) - len(out)%kernBlock
	for i := 0; i < n; i += kernBlock {
		ib := (*[kernBlock]byte)(in[i:])
		ob := (*[kernBlock]byte)(out[i:])
		for j := range ob {
			ob[j] = tbl[ib[j]]
		}
	}
	for i := n; i < len(out); i++ {
		out[i] = tbl[in[i]]
	}
}

// kernMulAdd sets out[i] ^= c*in[i]. len(in) must be >= len(out).
func kernMulAdd(c byte, in, out []byte) {
	switch c {
	case 0:
		return
	case 1:
		xorSlice(in, out)
		return
	}
	tbl := &mulTable[c]
	in = in[:len(out)]
	n := len(out) - len(out)%kernBlock
	for i := 0; i < n; i += kernBlock {
		ib := (*[kernBlock]byte)(in[i:])
		ob := (*[kernBlock]byte)(out[i:])
		for j := range ob {
			ob[j] ^= tbl[ib[j]]
		}
	}
	for i := n; i < len(out); i++ {
		out[i] ^= tbl[in[i]]
	}
}

// xorSlice sets out[i] ^= in[i] — the c == 1 accumulate, common in
// decode matrices and low-order Vandermonde columns.
func xorSlice(in, out []byte) {
	in = in[:len(out)]
	n := len(out) - len(out)%kernBlock
	for i := 0; i < n; i += kernBlock {
		ib := (*[kernBlock]byte)(in[i:])
		ob := (*[kernBlock]byte)(out[i:])
		for j := range ob {
			ob[j] ^= ib[j]
		}
	}
	for i := n; i < len(out); i++ {
		out[i] ^= in[i]
	}
}

// The fused multi-input kernels below keep the output byte in a
// register across all terms of the row sum: a two-input fuse halves,
// and a four-input fuse quarters, the out-row load/store traffic of
// term-at-a-time accumulation. Working-set per four-input pass is four
// 256-byte tables plus five streams — comfortably L1-resident.

func mul2(coefs []byte, a, b, out []byte) {
	t0, t1 := &mulTable[coefs[0]], &mulTable[coefs[1]]
	a, b = a[:len(out)], b[:len(out)]
	n := len(out) - len(out)%kernBlock
	for i := 0; i < n; i += kernBlock {
		ab := (*[kernBlock]byte)(a[i:])
		bb := (*[kernBlock]byte)(b[i:])
		ob := (*[kernBlock]byte)(out[i:])
		for j := range ob {
			ob[j] = t0[ab[j]] ^ t1[bb[j]]
		}
	}
	for i := n; i < len(out); i++ {
		out[i] = t0[a[i]] ^ t1[b[i]]
	}
}

func mul2add(coefs []byte, a, b, out []byte) {
	t0, t1 := &mulTable[coefs[0]], &mulTable[coefs[1]]
	a, b = a[:len(out)], b[:len(out)]
	n := len(out) - len(out)%kernBlock
	for i := 0; i < n; i += kernBlock {
		ab := (*[kernBlock]byte)(a[i:])
		bb := (*[kernBlock]byte)(b[i:])
		ob := (*[kernBlock]byte)(out[i:])
		for j := range ob {
			ob[j] ^= t0[ab[j]] ^ t1[bb[j]]
		}
	}
	for i := n; i < len(out); i++ {
		out[i] ^= t0[a[i]] ^ t1[b[i]]
	}
}

func mul3(coefs []byte, a, b, c, out []byte) {
	t0, t1, t2 := &mulTable[coefs[0]], &mulTable[coefs[1]], &mulTable[coefs[2]]
	a, b, c = a[:len(out)], b[:len(out)], c[:len(out)]
	n := len(out) - len(out)%kernBlock
	for i := 0; i < n; i += kernBlock {
		ab := (*[kernBlock]byte)(a[i:])
		bb := (*[kernBlock]byte)(b[i:])
		cb := (*[kernBlock]byte)(c[i:])
		ob := (*[kernBlock]byte)(out[i:])
		for j := range ob {
			ob[j] = t0[ab[j]] ^ t1[bb[j]] ^ t2[cb[j]]
		}
	}
	for i := n; i < len(out); i++ {
		out[i] = t0[a[i]] ^ t1[b[i]] ^ t2[c[i]]
	}
}

func mul3add(coefs []byte, a, b, c, out []byte) {
	t0, t1, t2 := &mulTable[coefs[0]], &mulTable[coefs[1]], &mulTable[coefs[2]]
	a, b, c = a[:len(out)], b[:len(out)], c[:len(out)]
	n := len(out) - len(out)%kernBlock
	for i := 0; i < n; i += kernBlock {
		ab := (*[kernBlock]byte)(a[i:])
		bb := (*[kernBlock]byte)(b[i:])
		cb := (*[kernBlock]byte)(c[i:])
		ob := (*[kernBlock]byte)(out[i:])
		for j := range ob {
			ob[j] ^= t0[ab[j]] ^ t1[bb[j]] ^ t2[cb[j]]
		}
	}
	for i := n; i < len(out); i++ {
		out[i] ^= t0[a[i]] ^ t1[b[i]] ^ t2[c[i]]
	}
}

func mul4(coefs []byte, a, b, c, d, out []byte) {
	// Stack-resident tables, as in mul4x4: one load per lookup.
	var tt [4][fieldSize]byte
	tt[0], tt[1], tt[2], tt[3] = mulTable[coefs[0]], mulTable[coefs[1]], mulTable[coefs[2]], mulTable[coefs[3]]
	t0, t1, t2, t3 := &tt[0], &tt[1], &tt[2], &tt[3]
	a, b, c, d = a[:len(out)], b[:len(out)], c[:len(out)], d[:len(out)]
	n := len(out) - len(out)%kernBlock
	for i := 0; i < n; i += kernBlock {
		ab := (*[kernBlock]byte)(a[i:])
		bb := (*[kernBlock]byte)(b[i:])
		cb := (*[kernBlock]byte)(c[i:])
		db := (*[kernBlock]byte)(d[i:])
		ob := (*[kernBlock]byte)(out[i:])
		for j := range ob {
			ob[j] = t0[ab[j]] ^ t1[bb[j]] ^ t2[cb[j]] ^ t3[db[j]]
		}
	}
	for i := n; i < len(out); i++ {
		out[i] = t0[a[i]] ^ t1[b[i]] ^ t2[c[i]] ^ t3[d[i]]
	}
}

func mul4add(coefs []byte, a, b, c, d, out []byte) {
	var tt [4][fieldSize]byte
	tt[0], tt[1], tt[2], tt[3] = mulTable[coefs[0]], mulTable[coefs[1]], mulTable[coefs[2]], mulTable[coefs[3]]
	t0, t1, t2, t3 := &tt[0], &tt[1], &tt[2], &tt[3]
	a, b, c, d = a[:len(out)], b[:len(out)], c[:len(out)], d[:len(out)]
	n := len(out) - len(out)%kernBlock
	for i := 0; i < n; i += kernBlock {
		ab := (*[kernBlock]byte)(a[i:])
		bb := (*[kernBlock]byte)(b[i:])
		cb := (*[kernBlock]byte)(c[i:])
		db := (*[kernBlock]byte)(d[i:])
		ob := (*[kernBlock]byte)(out[i:])
		for j := range ob {
			ob[j] ^= t0[ab[j]] ^ t1[bb[j]] ^ t2[cb[j]] ^ t3[db[j]]
		}
	}
	for i := n; i < len(out); i++ {
		out[i] ^= t0[a[i]] ^ t1[b[i]] ^ t2[c[i]] ^ t3[d[i]]
	}
}
