package engine

import (
	"context"
	"sync"
	"time"

	"scalia/internal/cloud"
)

// This file is the event-driven reoptimization queue: the O(affected)
// replacement for periodic full scans. A subscriber to cloud.Registry
// market events looks up — through the provider→objects inverted index —
// exactly the objects whose cached placement decision the event
// invalidated (they hold a chunk on the changed provider) and enqueues
// them. A bounded worker pool (Config.ReoptWorkers) drains the queue
// through the same reoptimizeObject entry point the periodic optimizer
// uses; deployments without workers drain explicitly via
// Broker.DrainMaintenance.
//
// Scope note: a price *drop* on a provider an object is NOT placed on
// can also make its placement suboptimal. Those opportunities are not
// invalidations of a cached decision and stay with the periodic
// trend-gated Optimize pass; the queue only guarantees that no object
// keeps a placement whose inputs changed.

// MaintStats is the maintenance-queue counter snapshot, served on
// GET /v1/stats and mirrored on /metrics.
type MaintStats struct {
	// QueueDepth is the number of invalidated objects waiting right now.
	QueueDepth int `json:"queueDepth"`
	// Workers is the configured background drain pool size (0 = manual
	// drain).
	Workers int `json:"workers"`
	// Enqueued counts objects accepted into the queue since start.
	Enqueued int64 `json:"enqueued"`
	// Drained counts objects re-planned (by workers or DrainMaintenance).
	Drained int64 `json:"drained"`
	// Dropped counts invalidations discarded because the queue was full;
	// the periodic Optimize pass is the backstop that revisits them.
	Dropped int64 `json:"dropped"`
	// Migrated counts drained objects that actually moved.
	Migrated int64 `json:"migrated"`
	// Events counts market events received from the registry.
	Events int64 `json:"events"`
}

type maintQueue struct {
	b       *Broker
	workers int
	depth   int

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu       sync.Mutex
	cond     *sync.Cond
	queue    []string
	queued   map[string]struct{}
	inflight int
	closed   bool
	enqueued int64
	drained  int64
	dropped  int64
	migrated int64
	events   int64
}

func newMaintQueue(b *Broker, workers, depth int) *maintQueue {
	if workers < 0 {
		workers = 0
	}
	m := &maintQueue{
		b:       b,
		workers: workers,
		depth:   depth,
		queued:  make(map[string]struct{}),
	}
	m.cond = sync.NewCond(&m.mu)
	m.ctx, m.cancel = context.WithCancel(context.Background())
	for i := 0; i < workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// onMarketEvent is the registry subscriber: it runs synchronously on
// whatever goroutine mutated the market, so it only does index lookup
// and queue bookkeeping — never provider I/O.
func (m *maintQueue) onMarketEvent(ev cloud.MarketEvent) {
	if ev.Provider == "" {
		return
	}
	// The invalidated set: objects with at least one chunk on the
	// changed provider. A freshly registered provider indexes nothing,
	// so registration events are naturally free.
	objs := m.b.provIndex.Objects(ev.Provider)
	m.mu.Lock()
	m.events++
	if !m.closed {
		for _, obj := range objs {
			if _, dup := m.queued[obj]; dup {
				continue
			}
			if len(m.queue) >= m.depth {
				m.dropped++
				continue
			}
			m.queued[obj] = struct{}{}
			m.queue = append(m.queue, obj)
			m.enqueued++
		}
	}
	m.cond.Broadcast()
	m.mu.Unlock()
}

// worker drains the queue until close.
func (m *maintQueue) worker() {
	defer m.wg.Done()
	for {
		m.mu.Lock()
		for len(m.queue) == 0 && !m.closed {
			m.cond.Wait()
		}
		if len(m.queue) == 0 && m.closed {
			m.mu.Unlock()
			return
		}
		obj := m.pop()
		m.inflight++
		m.mu.Unlock()

		migrated := m.process(m.ctx, obj)

		m.mu.Lock()
		m.inflight--
		m.drained++
		if migrated {
			m.migrated++
		}
		m.cond.Broadcast()
		m.mu.Unlock()
	}
}

// pop removes the queue head. Callers hold m.mu and have checked the
// queue is non-empty.
func (m *maintQueue) pop() string {
	obj := m.queue[0]
	m.queue = m.queue[1:]
	if len(m.queue) == 0 {
		m.queue = nil // let the backing array go once drained
	}
	delete(m.queued, obj)
	return obj
}

// process re-plans one invalidated object. The trend gate is skipped on
// purpose: the market changed, not the workload, so the cached decision
// is stale regardless of the access trend.
func (m *maintQueue) process(ctx context.Context, obj string) (migrated bool) {
	e := m.b.NextEngine()
	now := m.b.clock.Period()
	migrated, _, _, _ = e.reoptimizeObject(ctx, obj, now)
	return migrated
}

// drain synchronously processes queued invalidations until the queue is
// empty or ctx is cancelled, returning how many objects it re-planned.
// Safe to run alongside background workers.
func (m *maintQueue) drain(ctx context.Context) int {
	n := 0
	for ctx.Err() == nil {
		m.mu.Lock()
		if len(m.queue) == 0 || m.closed {
			m.mu.Unlock()
			break
		}
		obj := m.pop()
		m.inflight++
		m.mu.Unlock()

		migrated := m.process(ctx, obj)

		m.mu.Lock()
		m.inflight--
		m.drained++
		if migrated {
			m.migrated++
		}
		m.cond.Broadcast()
		m.mu.Unlock()
		n++
	}
	return n
}

// waitIdle blocks until the queue is empty and no object is mid-flight.
func (m *maintQueue) waitIdle(ctx context.Context) error {
	for {
		m.mu.Lock()
		idle := len(m.queue) == 0 && m.inflight == 0
		m.mu.Unlock()
		if idle {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(2 * time.Millisecond):
		}
	}
}

func (m *maintQueue) stats() MaintStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return MaintStats{
		QueueDepth: len(m.queue),
		Workers:    m.workers,
		Enqueued:   m.enqueued,
		Drained:    m.drained,
		Dropped:    m.dropped,
		Migrated:   m.migrated,
		Events:     m.events,
	}
}

// close stops the workers (mid-object work is cancelled) and rejects
// further enqueues.
func (m *maintQueue) close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.cond.Broadcast()
	m.mu.Unlock()
	m.cancel()
	m.wg.Wait()
}
