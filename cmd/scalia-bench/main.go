// Command scalia-bench runs the serving micro-benchmarks and (by
// default) every paper evaluation experiment, prints a paper-versus-
// measured summary, and writes a machine-readable BENCH_<name>.json —
// the per-PR perf trajectory consumed by CI and EXPERIMENTS.md.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"testing"

	"scalia"
	typedclient "scalia/client"
	"scalia/internal/obs"
	"scalia/internal/sim"
)

// benchReport is the schema of the BENCH_*.json artifact.
type benchReport struct {
	Schema      string             `json:"schema"`
	GoVersion   string             `json:"goVersion"`
	GOOS        string             `json:"goos"`
	GOARCH      string             `json:"goarch"`
	Benchmarks  []benchResult      `json:"benchmarks"`
	Experiments []experimentResult `json:"experiments,omitempty"`
}

// benchResult is one serving benchmark: testing.Benchmark throughput
// numbers plus request-latency percentiles for the bench's window,
// derived by diffing the gateway's scalia_http_request_duration_seconds
// histogram before and after the run.
type benchResult struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	SecPerOp    float64 `json:"secPerOp"`
	MBPerSec    float64 `json:"mbPerSec"`
	AllocsPerOp int64   `json:"allocsPerOp"`
	BytesPerOp  int64   `json:"bytesPerOp"`
	P50Ms       float64 `json:"p50Ms,omitempty"`
	P90Ms       float64 `json:"p90Ms,omitempty"`
	P99Ms       float64 `json:"p99Ms,omitempty"`
}

// experimentResult is one paper-versus-measured line of the evaluation
// experiments (Figs. 8/9, 14, 16, 17, 18).
type experimentResult struct {
	Figure   string `json:"figure"`
	Metric   string `json:"metric"`
	Paper    string `json:"paper"`
	Measured string `json:"measured"`
}

func main() {
	out := flag.String("out", "BENCH_local.json", "benchmark report path (empty = don't write)")
	paper := flag.Bool("paper", true, "run the paper evaluation experiments")
	benchTime := flag.String("benchtime", "",
		"per-benchmark budget, duration or iteration count (e.g. 500ms, 20x; empty = testing default)")
	testing.Init() // register test.* flags so -benchtime can map onto them
	flag.Parse()
	if *benchTime != "" {
		if err := flag.Set("test.benchtime", *benchTime); err != nil {
			log.Fatal(err)
		}
	}

	rep := benchReport{
		Schema:    "scalia-bench/v1",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}

	rep.Benchmarks = runServingBenchmarks()
	if *paper {
		rep.Experiments = runPaperExperiments()
	}

	if *out != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d benchmarks, %d experiment rows)\n",
			*out, len(rep.Benchmarks), len(rep.Experiments))
	}
}

// --- serving benchmarks ---

const benchObjectBytes = 4 << 20 // 4 MiB object, 4 stripes at 1 MiB

func runServingBenchmarks() []benchResult {
	client, err := scalia.New(scalia.Options{
		CacheBytes:  64 << 20,
		StripeBytes: 1 << 20,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	ts := httptest.NewServer(client.NewGateway())
	defer ts.Close()
	hc := ts.Client()
	reg := client.Broker().Metrics()

	// httpSnap merges every {method,route} series of the request
	// histogram into one snapshot; per-benchmark windows are the Sub of
	// two such snapshots.
	httpSnap := func() obs.HistogramSnapshot {
		var merged obs.HistogramSnapshot
		for _, lh := range reg.Histograms("scalia_http_request_duration_seconds") {
			merged = merged.Merge(lh.Snapshot)
		}
		return merged
	}

	payload := bytes.Repeat([]byte("b"), benchObjectBytes)
	url := ts.URL + "/v1/objects/bench/obj"
	do := func(req *http.Request) {
		resp, err := hc.Do(req)
		if err != nil {
			log.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode >= 300 {
			log.Fatalf("%s %s = %d", req.Method, req.URL.Path, resp.StatusCode)
		}
	}

	benches := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"http-put-4MB", func(b *testing.B) {
			b.SetBytes(benchObjectBytes)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				req, _ := http.NewRequest(http.MethodPut, url, bytes.NewReader(payload))
				do(req)
			}
		}},
		{"http-get-4MB-cached", func(b *testing.B) {
			b.SetBytes(benchObjectBytes)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				req, _ := http.NewRequest(http.MethodGet, url, nil)
				do(req)
			}
		}},
		{"http-get-range-1MB", func(b *testing.B) {
			b.SetBytes(1 << 20)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				req, _ := http.NewRequest(http.MethodGet, url, nil)
				req.Header.Set("Range", "bytes=1048576-2097151")
				do(req)
			}
		}},
		{"http-multipart-put-4MB", func(b *testing.B) {
			// The same 4 MiB object as http-put-4MB, staged as four
			// stripe-aligned parts through the resumable-upload protocol:
			// the per-part overhead versus one streamed PUT.
			tc := typedclient.New(ts.URL, typedclient.WithHTTPClient(hc))
			ctx := context.Background()
			b.SetBytes(benchObjectBytes)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				up, err := tc.CreateUpload(ctx, "bench", "mp", benchObjectBytes)
				if err != nil {
					b.Fatal(err)
				}
				parts := make([]scalia.CompletedPart, 4)
				for p := range parts {
					pi, err := tc.UploadPart(ctx, up, p+1,
						bytes.NewReader(payload[p<<20:(p+1)<<20]), 1<<20)
					if err != nil {
						b.Fatal(err)
					}
					parts[p] = scalia.CompletedPart{PartNumber: p + 1, ETag: pi.ETag}
				}
				if _, err := tc.CompleteUpload(ctx, up, parts); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}

	// Seed the object once so the first GET bench doesn't race the PUT
	// bench's final body.
	seed, _ := http.NewRequest(http.MethodPut, url, bytes.NewReader(payload))
	do(seed)

	var out []benchResult
	for _, bm := range benches {
		before := httpSnap()
		r := testing.Benchmark(bm.fn)
		window := httpSnap().Sub(before)

		res := benchResult{
			Name:        bm.name,
			N:           r.N,
			SecPerOp:    r.T.Seconds() / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if r.Bytes > 0 && r.T > 0 {
			res.MBPerSec = float64(r.Bytes) * float64(r.N) / r.T.Seconds() / 1e6
		}
		if window.Count > 0 {
			res.P50Ms = window.Quantile(0.50) * 1000
			res.P90Ms = window.Quantile(0.90) * 1000
			res.P99Ms = window.Quantile(0.99) * 1000
		}
		out = append(out, res)
		fmt.Printf("%-22s %8d ops  %10.4f ms/op  %8.1f MB/s  %6d allocs/op  p50=%.2fms p99=%.2fms\n",
			res.Name, res.N, res.SecPerOp*1000, res.MBPerSec, res.AllocsPerOp, res.P50Ms, res.P99Ms)
	}
	fmt.Println()
	return out
}

// --- paper experiments ---

func runPaperExperiments() []experimentResult {
	var all []experimentResult
	collect := func(figure string, rows []row) {
		report(figure, rows)
		for _, r := range rows {
			all = append(all, experimentResult{
				Figure: figure, Metric: r.name, Paper: r.paper, Measured: r.measured,
			})
		}
	}

	fmt.Println("Scalia reproduction — paper vs measured")
	fmt.Println()

	slash, err := sim.SlashdotExperiment()
	if err != nil {
		log.Fatal(err)
	}
	collect("Fig. 14 Slashdot over-cost", []row{
		{"Scalia over ideal", "0.12%", pct(slash.ScaliaOverPct)},
		{"best static over ideal", "0.40%", pct(slash.BestStatic().OverPct) + " (" + slash.BestStatic().Label + ")"},
		{"worst static over ideal", "16%", pct(slash.WorstStatic().OverPct) + " (" + slash.WorstStatic().Label + ")"},
	})

	gal, err := sim.GalleryExperiment()
	if err != nil {
		log.Fatal(err)
	}
	collect("Fig. 16 gallery over-cost", []row{
		{"Scalia over ideal", "1.06%", pct(gal.ScaliaOverPct)},
		{"best static over ideal", "4.14%", pct(gal.BestStatic().OverPct) + " (" + gal.BestStatic().Label + ")"},
		{"worst static over ideal", "31.58%", pct(gal.WorstStatic().OverPct) + " (" + gal.WorstStatic().Label + ")"},
	})

	add, err := sim.AddProviderExperiment()
	if err != nil {
		log.Fatal(err)
	}
	migrated := 0
	for _, ch := range add.Changes {
		if ch.Period >= 400 {
			migrated++
		}
	}
	collect("Fig. 17 provider addition", []row{
		{"Scalia over ideal", "0.35%", pct(add.ScaliaOverPct)},
		{"best static over ideal", "7.88%", pct(add.BestStatic().OverPct) + " (" + add.BestStatic().Label + ")"},
		{"worst static over ideal", "96.35%", pct(add.WorstStatic().OverPct) + " (" + add.WorstStatic().Label + ")"},
		{"objects migrated to CheapStor", "all stored", fmt.Sprintf("%d", migrated)},
	})

	rep, static, err := sim.RepairExperiment()
	if err != nil {
		log.Fatal(err)
	}
	repairs := 0
	for _, ch := range rep.Changes {
		if ch.Reason == "active-repair" {
			repairs++
		}
	}
	collect("Fig. 18 active repair", []row{
		{"Scalia final cumulative", "below static", fmt.Sprintf("%.4f USD", rep.CumulativeScalia[len(rep.CumulativeScalia)-1])},
		{"static final cumulative", "above Scalia", fmt.Sprintf("%.4f USD", static[len(static)-1])},
		{"active repairs during outage", ">0", fmt.Sprintf("%d", repairs)},
	})

	hourly, daily := sim.TrendHourly(), sim.TrendDaily()
	collect("Figs. 8/9 trend detection", []row{
		{"hourly detections / periods", "sparse", fmt.Sprintf("%d / %d", len(hourly.Changes), len(hourly.Series))},
		{"daily detections / periods", "sparse", fmt.Sprintf("%d / %d", len(daily.Changes), len(daily.Series))},
	})

	return all
}

type row struct{ name, paper, measured string }

func report(title string, rows []row) {
	fmt.Println(title)
	fmt.Printf("  %-32s %-14s %s\n", "metric", "paper", "measured")
	for _, r := range rows {
		fmt.Printf("  %-32s %-14s %s\n", r.name, r.paper, r.measured)
	}
	fmt.Println()
}

func pct(v float64) string { return fmt.Sprintf("%.2f%%", v) }
