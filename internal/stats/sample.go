// Package stats implements Scalia's access-statistics layer (paper
// §III-C2): per-object access histories aggregated over sampling periods,
// object classes keyed by MD5(mime | discretized size), per-class
// resource and lifetime distributions (Fig. 5/6), and the log
// agent/aggregator pipeline that moves request logs from engines into the
// statistics database.
package stats

import "fmt"

// Sample aggregates one object's access statistics over one sampling
// period s_i: the used storage s_i[storage], incoming bandwidth
// s_i[bwdin], outgoing bandwidth s_i[bwdout] and the number of operations
// s_i[ops] (paper §III-A2). All byte quantities are logical object bytes;
// chunk expansion is applied by the pricing code for a candidate
// placement.
type Sample struct {
	Period       int64 // sampling-period index
	Reads        int64 // read operations on the object
	Writes       int64 // write (put/update) operations
	Deletes      int64 // delete operations
	BytesOut     int64 // logical bytes served to clients
	BytesIn      int64 // logical bytes written by clients
	StorageBytes int64 // logical bytes held during the period
}

// Ops returns the total operation count of the period.
func (s Sample) Ops() int64 { return s.Reads + s.Writes + s.Deletes }

// Merge folds another sample for the same period into s. StorageBytes
// takes the maximum, since it is a gauge rather than a counter.
func (s *Sample) Merge(other Sample) {
	s.Reads += other.Reads
	s.Writes += other.Writes
	s.Deletes += other.Deletes
	s.BytesOut += other.BytesOut
	s.BytesIn += other.BytesIn
	if other.StorageBytes > s.StorageBytes {
		s.StorageBytes = other.StorageBytes
	}
}

// String implements fmt.Stringer.
func (s Sample) String() string {
	return fmt.Sprintf("s[%d]{r=%d w=%d d=%d out=%dB in=%dB st=%dB}",
		s.Period, s.Reads, s.Writes, s.Deletes, s.BytesOut, s.BytesIn, s.StorageBytes)
}

// Summary is the aggregate of a window of samples, used by the placement
// engine to price candidate provider sets. Per-period averages keep the
// price comparison independent of window length.
type Summary struct {
	Periods      int     // number of sampling periods aggregated
	Reads        float64 // average reads per period
	Writes       float64 // average writes per period
	BytesOut     float64 // average logical bytes served per period
	BytesIn      float64 // average logical bytes written per period
	StorageBytes float64 // average logical bytes stored
}

// Summarize aggregates a window of samples. Missing periods (gaps in the
// slice) count as zero-access periods when total is > len(samples);
// passing total = 0 uses len(samples).
func Summarize(samples []Sample, total int) Summary {
	if total <= 0 {
		total = len(samples)
	}
	if total == 0 {
		return Summary{}
	}
	var sum Summary
	sum.Periods = total
	var storagePeriods int
	for _, s := range samples {
		sum.Reads += float64(s.Reads)
		sum.Writes += float64(s.Writes)
		sum.BytesOut += float64(s.BytesOut)
		sum.BytesIn += float64(s.BytesIn)
		if s.StorageBytes > 0 {
			sum.StorageBytes += float64(s.StorageBytes)
			storagePeriods++
		}
	}
	n := float64(total)
	sum.Reads /= n
	sum.Writes /= n
	sum.BytesOut /= n
	sum.BytesIn /= n
	if storagePeriods > 0 {
		sum.StorageBytes /= float64(storagePeriods)
	}
	return sum
}
