// Package cache implements Scalia's caching layer (paper §III-B): a
// byte-capacity LRU cache per datacenter, plus a cluster wrapper that
// invalidates entries in every datacenter on writes so reads stay
// consistent. The layer is optional; when present it serves popular
// reads without fetching chunks from the remote providers, cutting both
// latency and bandwidth-out cost.
//
// Entries are stripe-granular: the unit of caching is one decoded
// stripe of an object, keyed by (object, stripe index). Multi-stripe
// objects are therefore cacheable piece by piece — a partially cached
// object fetches only its missing stripes from the providers — and
// eviction works at stripe granularity, so one huge object cannot
// monopolize the cache all-or-nothing. Whole small objects are simply
// stripe 0. Invalidation stays object-granular: a write removes every
// cached stripe of the object in every datacenter.
package cache

import (
	"container/list"
	"sync"
)

// Stats is a point-in-time snapshot of one cache's (or a whole
// cluster's) counters, serialized onto GET /v1/stats.
type Stats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Entries   int64 `json:"entries"`   // cached stripes
	UsedBytes int64 `json:"usedBytes"` // cached byte volume
}

// add folds another snapshot in (cluster aggregation).
func (s *Stats) add(o Stats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Evictions += o.Evictions
	s.Entries += o.Entries
	s.UsedBytes += o.UsedBytes
}

// stripeID identifies one cached stripe.
type stripeID struct {
	obj    string
	stripe int
}

// LRU is a byte-bounded least-recently-used stripe cache. It is safe
// for concurrent use.
type LRU struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	order    *list.List                  // front = most recent
	items    map[stripeID]*list.Element  // stripe -> element whose Value is *entry
	byObject map[string]map[int]struct{} // object -> cached stripe indexes

	hits, misses, evictions int64
}

type entry struct {
	id   stripeID
	data []byte
}

// NewLRU returns a cache bounded to capacity bytes. A non-positive
// capacity yields a disabled cache that stores nothing.
func NewLRU(capacity int64) *LRU {
	return &LRU{
		capacity: capacity,
		order:    list.New(),
		items:    make(map[stripeID]*list.Element),
		byObject: make(map[string]map[int]struct{}),
	}
}

// GetStripe returns a copy of the cached stripe and marks it recently
// used.
func (c *LRU) GetStripe(obj string, stripe int) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[stripeID{obj, stripe}]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	data := el.Value.(*entry).data
	cp := make([]byte, len(data))
	copy(cp, data)
	return cp, true
}

// PutStripe stores a copy of one decoded stripe, evicting
// least-recently-used stripes as needed. Stripes larger than the
// capacity are not cached.
func (c *LRU) PutStripe(obj string, stripe int, data []byte) {
	size := int64(len(data))
	if c.capacity <= 0 || size > c.capacity {
		return
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	id := stripeID{obj, stripe}

	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[id]; ok {
		old := el.Value.(*entry)
		c.used += size - int64(len(old.data))
		old.data = cp
		c.order.MoveToFront(el)
	} else {
		c.items[id] = c.order.PushFront(&entry{id: id, data: cp})
		stripes, ok := c.byObject[obj]
		if !ok {
			stripes = make(map[int]struct{})
			c.byObject[obj] = stripes
		}
		stripes[stripe] = struct{}{}
		c.used += size
	}
	for c.used > c.capacity {
		c.evictOldestLocked()
	}
}

// Get returns the cached whole object (stripe 0); a convenience for
// single-stripe callers.
func (c *LRU) Get(key string) ([]byte, bool) { return c.GetStripe(key, 0) }

// Put caches a whole object as stripe 0; a convenience for
// single-stripe callers.
func (c *LRU) Put(key string, data []byte) { c.PutStripe(key, 0, data) }

func (c *LRU) evictOldestLocked() {
	el := c.order.Back()
	if el == nil {
		return
	}
	e := el.Value.(*entry)
	c.removeLocked(el, e)
	c.evictions++
}

// removeLocked unlinks one entry from the LRU order, the stripe table
// and the per-object index.
func (c *LRU) removeLocked(el *list.Element, e *entry) {
	c.order.Remove(el)
	delete(c.items, e.id)
	c.used -= int64(len(e.data))
	if stripes, ok := c.byObject[e.id.obj]; ok {
		delete(stripes, e.id.stripe)
		if len(stripes) == 0 {
			delete(c.byObject, e.id.obj)
		}
	}
}

// Invalidate removes every cached stripe of an object (writes are
// object-granular even though caching is stripe-granular).
func (c *LRU) Invalidate(obj string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for stripe := range c.byObject[obj] {
		if el, ok := c.items[stripeID{obj, stripe}]; ok {
			c.removeLocked(el, el.Value.(*entry))
		}
	}
}

// Len returns the number of cached stripes.
func (c *LRU) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

// UsedBytes returns the cached byte volume.
func (c *LRU) UsedBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

// Stats reports the cache's counters and current footprint.
func (c *LRU) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   int64(len(c.items)),
		UsedBytes: c.used,
	}
}

// Cluster is the multi-datacenter cache fabric: one LRU per datacenter,
// with write-triggered invalidation broadcast to all datacenters ("the
// cache has to be invalidated in all datacenters in order to guarantee
// the consistency of the read operations", §III-B).
type Cluster struct {
	mu     sync.RWMutex
	caches map[string]*LRU
}

// NewCluster returns an empty cache cluster.
func NewCluster() *Cluster {
	return &Cluster{caches: make(map[string]*LRU)}
}

// AddDatacenter creates (or replaces) the cache of a datacenter.
func (cc *Cluster) AddDatacenter(dc string, capacity int64) *LRU {
	c := NewLRU(capacity)
	cc.mu.Lock()
	cc.caches[dc] = c
	cc.mu.Unlock()
	return c
}

// Datacenter returns the cache of a datacenter, or nil.
func (cc *Cluster) Datacenter(dc string) *LRU {
	cc.mu.RLock()
	defer cc.mu.RUnlock()
	return cc.caches[dc]
}

// GetStripe reads one stripe from the named datacenter's cache.
func (cc *Cluster) GetStripe(dc, obj string, stripe int) ([]byte, bool) {
	c := cc.Datacenter(dc)
	if c == nil {
		return nil, false
	}
	return c.GetStripe(obj, stripe)
}

// PutStripe fills one stripe into the named datacenter's cache (reads
// fill only locally).
func (cc *Cluster) PutStripe(dc, obj string, stripe int, data []byte) {
	if c := cc.Datacenter(dc); c != nil {
		c.PutStripe(obj, stripe, data)
	}
}

// Get reads a whole object (stripe 0) from the named datacenter's cache.
func (cc *Cluster) Get(dc, key string) ([]byte, bool) {
	return cc.GetStripe(dc, key, 0)
}

// Put fills a whole object (stripe 0) into the named datacenter's cache.
func (cc *Cluster) Put(dc, key string, data []byte) {
	cc.PutStripe(dc, key, 0, data)
}

// InvalidateAll removes every cached stripe of an object from every
// datacenter's cache.
func (cc *Cluster) InvalidateAll(obj string) {
	cc.mu.RLock()
	defer cc.mu.RUnlock()
	for _, c := range cc.caches {
		c.Invalidate(obj)
	}
}

// Stats aggregates the counters of every datacenter's cache.
func (cc *Cluster) Stats() Stats {
	cc.mu.RLock()
	defer cc.mu.RUnlock()
	var total Stats
	for _, c := range cc.caches {
		total.add(c.Stats())
	}
	return total
}

// StatsByDC reports each datacenter's counters separately, for
// per-datacenter metric series (the aggregate Stats loses which cache
// is hot and which is thrashing).
func (cc *Cluster) StatsByDC() map[string]Stats {
	cc.mu.RLock()
	defer cc.mu.RUnlock()
	out := make(map[string]Stats, len(cc.caches))
	for dc, c := range cc.caches {
		out[dc] = c.Stats()
	}
	return out
}
