package erasure

import (
	"bytes"
	"testing"
)

// TestEncodePooledMatchesEncode drives the pooled encoder through
// several rounds of differently-sized payloads (so recycled backing is
// both grown and reused dirty) and checks every round decodes and
// verifies exactly like the allocating path.
func TestEncodePooledMatchesEncode(t *testing.T) {
	c, err := New(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	sizes := []int{0, 1, 100, 1 << 10, 17, 1 << 10, 3}
	for round, size := range sizes {
		data := bytes.Repeat([]byte{byte(round + 1)}, size)
		want, err := c.Encode(data)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.EncodePooled(data)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("round %d: %d chunks, want %d", round, len(got), len(want))
		}
		for i := range got {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("round %d: chunk %d differs from allocating Encode", round, i)
			}
		}
		if ok, err := c.Verify(got); err != nil || !ok {
			t.Fatalf("round %d: pooled parity inconsistent (ok=%v err=%v)", round, ok, err)
		}
		// Drop two chunks and decode to prove padding of recycled
		// buffers was re-zeroed (garbage padding would corrupt parity
		// math on reconstruction paths).
		got[0], got[4] = nil, nil
		back, err := c.Decode(got, size)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(back, data) {
			t.Fatalf("round %d: decode mismatch after pooled encode", round)
		}
		ReleaseChunks(got)
	}
}

// BenchmarkEncodePooled measures the steady-state pooled encode; the
// interesting number is allocs/op, which should be zero.
func BenchmarkEncodePooled(b *testing.B) {
	c, err := New(4, 5)
	if err != nil {
		b.Fatal(err)
	}
	data := bytes.Repeat([]byte("s"), 1<<20)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		chunks, err := c.EncodePooled(data)
		if err != nil {
			b.Fatal(err)
		}
		ReleaseChunks(chunks)
	}
}
