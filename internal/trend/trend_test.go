package trend

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaults(t *testing.T) {
	d := NewDetector(0, 0)
	if d.Window() != 3 || d.Limit() != 0.1 {
		t.Fatalf("defaults = w%d l%v, want w3 l0.1", d.Window(), d.Limit())
	}
}

func TestNoDetectionWhileFilling(t *testing.T) {
	d := NewDetector(3, 0.1)
	if d.Observe(100) || d.Observe(0) {
		t.Fatal("no detection before the window is primed")
	}
}

func TestFlatSeriesNeverFires(t *testing.T) {
	d := NewDetector(3, 0.1)
	for i := 0; i < 50; i++ {
		if d.Observe(42) && i >= 3 {
			t.Fatalf("flat series fired at %d", i)
		}
	}
}

func TestStepChangeFires(t *testing.T) {
	d := NewDetector(3, 0.1)
	for i := 0; i < 10; i++ {
		d.Observe(10)
	}
	// A jump from 10 to 100 moves the SMA by (100-10)/3 = 30 over base 10:
	// momentum 3.0 >> 0.1.
	if !d.Observe(100) {
		t.Fatal("step change must fire")
	}
}

func TestSlowDriftUnderLimitSilent(t *testing.T) {
	d := NewDetector(3, 0.1)
	v := 100.0
	fired := 0
	for i := 0; i < 100; i++ {
		if d.Observe(v) && i >= 3 {
			fired++
		}
		v *= 1.01 // 1% per period, SMA momentum ~1% < 10%
	}
	if fired != 0 {
		t.Fatalf("slow drift fired %d times", fired)
	}
}

func TestWakeUpFromSilence(t *testing.T) {
	// A cold object receiving its first requests (the Slashdot onset)
	// must fire despite a zero baseline.
	d := NewDetector(3, 0.1)
	for i := 0; i < 48; i++ {
		d.Observe(0)
	}
	if !d.Observe(50) {
		t.Fatal("wake-up from zero must fire")
	}
}

func TestMomentum(t *testing.T) {
	cases := []struct {
		prev, cur, want float64
	}{
		{100, 110, 0.1},
		{100, 90, 0.1},
		{0, 5, 5},     // clamped base 1
		{0.5, 2, 1.5}, // clamped base 1
		{200, 200, 0},
	}
	for _, c := range cases {
		if got := Momentum(c.prev, c.cur); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Momentum(%v,%v) = %v, want %v", c.prev, c.cur, got, c.want)
		}
	}
}

func TestMomentumNonNegativeProperty(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		return Momentum(a, b) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDetectSlashdotShape(t *testing.T) {
	// Synthetic flash crowd: 48 quiet periods, a 3-period ramp to 150,
	// then a slow decay of 2/period. Detection must fire at the onset,
	// and total detections must be far fewer than the series length
	// (that sparsity is the point of trend gating, Fig. 8).
	var series []float64
	for i := 0; i < 48; i++ {
		series = append(series, 0)
	}
	series = append(series, 50, 100, 150)
	v := 150.0
	for v > 0 {
		v -= 2
		series = append(series, v)
	}
	changes := Detect(series, 3, 0.1)
	if len(changes) == 0 {
		t.Fatal("no changes detected")
	}
	if changes[0] < 48 || changes[0] > 50 {
		t.Fatalf("first detection at %d, want onset near 48", changes[0])
	}
	if len(changes) > len(series)/3 {
		t.Fatalf("%d detections for %d periods: gating too chatty", len(changes), len(series))
	}
}

func TestDetectHigherLimitFiresLess(t *testing.T) {
	var series []float64
	for i := 0; i < 200; i++ {
		series = append(series, 50+40*math.Sin(float64(i)/5))
	}
	loose := Detect(series, 3, 0.05)
	tight := Detect(series, 3, 0.5)
	if len(tight) > len(loose) {
		t.Fatalf("limit 0.5 fired %d > limit 0.05 fired %d", len(tight), len(loose))
	}
}

func TestLargerWindowSmoothes(t *testing.T) {
	// Alternating spikes: a wide window averages them out.
	var series []float64
	for i := 0; i < 100; i++ {
		if i%2 == 0 {
			series = append(series, 100)
		} else {
			series = append(series, 60)
		}
	}
	narrow := Detect(series, 2, 0.15)
	wide := Detect(series, 10, 0.15)
	if len(wide) > len(narrow) {
		t.Fatalf("wide window fired %d > narrow %d", len(wide), len(narrow))
	}
}

func TestSetLimit(t *testing.T) {
	d := NewDetector(3, 0.1)
	d.SetLimit(0.4)
	if d.Limit() != 0.4 {
		t.Fatal("SetLimit ignored")
	}
	d.SetLimit(-1)
	if d.Limit() != 0.4 {
		t.Fatal("invalid limit must be rejected")
	}
}

func TestMinimumMomentum(t *testing.T) {
	// The decision flips once load grows by more than 37%.
	flips := func(scale float64) bool { return scale > 0.37 }
	got, ok := MinimumMomentum(flips, 0, 4, 40)
	if !ok {
		t.Fatal("expected a flip point")
	}
	if math.Abs(got-0.37) > 1e-6 {
		t.Fatalf("MinimumMomentum = %v, want ~0.37", got)
	}
	// No flip anywhere within range.
	if _, ok := MinimumMomentum(func(float64) bool { return false }, 0, 4, 40); ok {
		t.Fatal("expected no flip")
	}
}
