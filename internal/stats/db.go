package stats

import (
	"sort"
	"sync"
	"sync/atomic"
)

// EventKind classifies an access event.
type EventKind int

// Event kinds.
const (
	EventRead EventKind = iota
	EventWrite
	EventDelete
)

// Event is one logged client request, as emitted by an engine's log
// agent. Bytes is the transferred payload; StorageBytes the logical
// object size after the operation.
type Event struct {
	Object       string
	Class        string
	Kind         EventKind
	Bytes        int64
	StorageBytes int64
	Period       int64
}

// DB is the statistics database: per-object access histories, per-class
// aggregates, and the accessed-object index the periodic optimizer reads
// ("the set A of object keys that have been accessed or modified after
// the last optimization procedure", §III-A3). It is safe for concurrent
// use by many engines.
type DB struct {
	periodHours float64

	mu       sync.RWMutex
	hist     map[string]*History
	class    map[string]string // object -> class key
	accessed map[string]int64  // object -> last access period
	created  map[string]int64  // object -> creation period

	classes *ClassStats

	// objectsCalls counts Objects() full-table scans, so tests and
	// metrics can assert the O(affected) maintenance paths never fall
	// back to a full scan.
	objectsCalls atomic.Uint64
}

// NewDB returns an empty statistics database. periodHours is the wall
// duration of one sampling period (1.0 in the paper's default).
func NewDB(periodHours float64) *DB {
	if periodHours <= 0 {
		periodHours = 1
	}
	return &DB{
		periodHours: periodHours,
		hist:        make(map[string]*History),
		class:       make(map[string]string),
		accessed:    make(map[string]int64),
		created:     make(map[string]int64),
		classes:     NewClassStats(),
	}
}

// PeriodHours returns the sampling-period duration in hours.
func (db *DB) PeriodHours() float64 { return db.periodHours }

// Apply folds one event into the database.
func (db *DB) Apply(ev Event) {
	s := Sample{Period: ev.Period, StorageBytes: ev.StorageBytes}
	switch ev.Kind {
	case EventRead:
		s.Reads = 1
		s.BytesOut = ev.Bytes
	case EventWrite:
		s.Writes = 1
		s.BytesIn = ev.Bytes
	case EventDelete:
		s.Deletes = 1
	}

	db.mu.Lock()
	h, ok := db.hist[ev.Object]
	if !ok {
		h = NewHistory(0)
		db.hist[ev.Object] = h
		db.created[ev.Object] = ev.Period
	}
	if ev.Class != "" {
		db.class[ev.Object] = ev.Class
	}
	db.accessed[ev.Object] = ev.Period
	created := db.created[ev.Object]
	class := db.class[ev.Object]
	db.mu.Unlock()

	h.Record(s)
	if class != "" {
		db.classes.Class(class).ObserveSample(s)
		if ev.Kind == EventDelete {
			lifetime := float64(ev.Period-created) * db.periodHours
			db.classes.Class(class).ObserveDeletion(lifetime)
		}
	}
}

// History returns the access history of an object, or nil if unknown.
func (db *DB) History(object string) *History {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.hist[object]
}

// ObjectClass returns the recorded class of an object.
func (db *DB) ObjectClass(object string) (string, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	c, ok := db.class[object]
	return c, ok
}

// Classes exposes the per-class aggregates.
func (db *DB) Classes() *ClassStats { return db.classes }

// AccessedSince returns the sorted keys of objects accessed or modified
// at or after the given period — the optimizer's working set A.
func (db *DB) AccessedSince(period int64) []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out []string
	for obj, last := range db.accessed {
		if last >= period {
			out = append(out, obj)
		}
	}
	sort.Strings(out)
	return out
}

// Objects returns all known object keys, sorted (the full-table-scan
// baseline the paper argues against; used by the ablation bench). Every
// call is counted; see ObjectsCalls.
func (db *DB) Objects() []string {
	db.objectsCalls.Add(1)
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.hist))
	for obj := range db.hist {
		out = append(out, obj)
	}
	sort.Strings(out)
	return out
}

// ObjectsCalls returns how many times Objects() — the full-table scan —
// has been invoked since the DB was created. The O(affected)
// maintenance tests assert a zero delta across indexed repair and
// event-driven reoptimization passes.
func (db *DB) ObjectsCalls() uint64 { return db.objectsCalls.Load() }

// CreatedAt returns the creation period of an object.
func (db *DB) CreatedAt(object string) (int64, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	p, ok := db.created[object]
	return p, ok
}

// AgeHours returns the object's age at the given period, in hours.
func (db *DB) AgeHours(object string, now int64) float64 {
	created, ok := db.CreatedAt(object)
	if !ok || now < created {
		return 0
	}
	return float64(now-created) * db.periodHours
}

// Forget drops an object's history (after deletion has been fully
// processed and its lifetime folded into the class statistics).
func (db *DB) Forget(object string) {
	db.mu.Lock()
	defer db.mu.Unlock()
	delete(db.hist, object)
	delete(db.class, object)
	delete(db.accessed, object)
	delete(db.created, object)
}

// RefreshClasses rebuilds the class aggregates from the retained
// per-object histories, sharded across workers — the in-process
// equivalent of the paper's periodic map-reduce refresh job. Lifetime
// distributions are preserved (they derive from deletions, which are no
// longer present in histories of deleted objects).
func (db *DB) RefreshClasses(workers int) {
	if workers <= 0 {
		workers = 4
	}
	db.mu.RLock()
	type job struct {
		class string
		hist  *History
	}
	jobs := make([]job, 0, len(db.hist))
	for obj, h := range db.hist {
		if c, ok := db.class[obj]; ok {
			jobs = append(jobs, job{class: c, hist: h})
		}
	}
	db.mu.RUnlock()

	fresh := NewClassStats()
	var wg sync.WaitGroup
	ch := make(chan job)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range ch {
				rec := fresh.Class(j.class)
				for _, p := range j.hist.Periods() {
					for _, s := range j.hist.Window(p, 1) {
						rec.ObserveSample(s)
					}
				}
			}
		}()
	}
	for _, j := range jobs {
		ch <- j
	}
	close(ch)
	wg.Wait()

	// Carry lifetime distributions over from the live table.
	db.classes.mu.RLock()
	for key, old := range db.classes.classes {
		fresh.Class(key).lifetimes = old.lifetimes
	}
	db.classes.mu.RUnlock()

	db.classes.mu.Lock()
	db.classes.classes = fresh.classes
	db.classes.mu.Unlock()
}
