package engine

import (
	"bytes"
	"context"
	"crypto/md5"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"testing"

	"scalia/internal/cloud"
	"scalia/internal/core"
)

// TestWriteCancellationRollsBackAcrossModes drives the
// cancel-mid-upload property through every write-path mode: the
// sequential loop, a shallow pipeline and a pipeline deeper than the
// stripe count. In all of them a cancelled context must surface
// context.Canceled, commit no metadata and leave no orphan chunk at
// any provider.
func TestWriteCancellationRollsBackAcrossModes(t *testing.T) {
	for _, tc := range []struct {
		name  string
		depth int
	}{
		{"sequential", -1},
		{"pipeline-depth-2", 2},
		{"pipeline-deeper-than-object", 64},
	} {
		t.Run(tc.name, func(t *testing.T) {
			b := newTestBroker(t, Config{StripeBytes: 1024, WritePipelineDepth: tc.depth})
			e := b.Engine(0)
			cctx, cancel := context.WithCancel(context.Background())
			defer cancel()

			src := &cancelAfterReader{n: 3 * 1024, cancel: cancel}
			_, err := e.PutReader(cctx, "c", "big", src, 64*1024, PutOptions{})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("PutReader after cancel = %v, want context.Canceled", err)
			}
			if _, err := e.Head(context.Background(), "c", "big"); !errors.Is(err, ErrObjectNotFound) {
				t.Fatalf("metadata committed despite cancellation: %v", err)
			}
			for _, s := range b.Registry().Snapshot() {
				if bs, ok := s.(*cloud.BlobStore); ok && bs.ObjectCount() != 0 {
					t.Fatalf("%s holds %d orphan chunks after cancel", bs.Spec().Name, bs.ObjectCount())
				}
			}
			// The budget and in-flight gauges must drain back to zero.
			if ws := b.WriteStats(); ws.StripesInFlight != 0 {
				t.Fatalf("stripes still in flight after cancel: %+v", ws)
			}
		})
	}
}

// TestWriteBudgetBoundsPeakBuffers asserts the acceptance criterion:
// the peak number of write stripe buffers held concurrently — across
// ALL concurrent streaming writes of the broker — never exceeds the
// shared MaxBufferBytes budget, and the pipeline still produces
// correct objects while squeezed through it.
func TestWriteBudgetBoundsPeakBuffers(t *testing.T) {
	const (
		stripeBytes = 1024
		stripes     = 8
		writers     = 4
	)
	// Two budget slots for four concurrent 8-stripe pipelined writes.
	b := newTestBroker(t, Config{StripeBytes: stripeBytes, MaxBufferBytes: 2 * stripeBytes})
	e := b.Engine(0)

	payloads := make([][]byte, writers)
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for g := 0; g < writers; g++ {
		payloads[g] = bytes.Repeat([]byte{byte('a' + g)}, stripes*stripeBytes)
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			_, errs[g] = e.PutReader(context.Background(), "c", fmt.Sprintf("k%d", g),
				bytes.NewReader(payloads[g]), int64(stripes*stripeBytes), PutOptions{})
		}(g)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		t.Fatal(err)
	}

	ws := b.WriteStats()
	if ws.BufferedStripesPeak > 2 {
		t.Fatalf("write buffer peak = %d stripes, budget allows 2: %+v", ws.BufferedStripesPeak, ws)
	}
	if ws.BufferedStripesPeak < 1 {
		t.Fatalf("write buffer peak gauge never moved: %+v", ws)
	}
	if ws.StripesInFlight != 0 {
		t.Fatalf("stripes still in flight after all writes returned: %+v", ws)
	}
	if want := int64(writers * stripes); ws.StripesWritten != want {
		t.Fatalf("stripes written = %d, want %d", ws.StripesWritten, want)
	}
	for g := 0; g < writers; g++ {
		got, _, err := e.Get(context.Background(), "c", fmt.Sprintf("k%d", g))
		if err != nil || !bytes.Equal(got, payloads[g]) {
			t.Fatalf("k%d round-trip under budget contention: %v (%d bytes)", g, err, len(got))
		}
	}
}

// TestWriteGaugesWithUnboundedBudget: a negative MaxBufferBytes removes
// the budget but the in-flight/peak gauges must keep reporting, since
// they double as the pipeline observability on /v1/stats.
func TestWriteGaugesWithUnboundedBudget(t *testing.T) {
	b := newTestBroker(t, Config{StripeBytes: 1024, MaxBufferBytes: -1})
	if b.bufSem != nil {
		t.Fatal("negative MaxBufferBytes must disable the budget semaphore")
	}
	e := b.Engine(0)
	payload := bytes.Repeat([]byte{7}, 6*1024)
	if _, err := e.PutReader(context.Background(), "c", "k",
		bytes.NewReader(payload), int64(len(payload)), PutOptions{}); err != nil {
		t.Fatal(err)
	}
	ws := b.WriteStats()
	if ws.BufferedStripesPeak < 1 || ws.StripesWritten != 6 || ws.StripesInFlight != 0 {
		t.Fatalf("write gauges with unbounded budget = %+v", ws)
	}
	if ws.PipelineDepth != DefaultWritePipelineDepth {
		t.Fatalf("pipeline depth = %d, want default %d", ws.PipelineDepth, DefaultWritePipelineDepth)
	}
}

// TestConcurrentPutGetRepair hammers one object with a writer, a
// reader and a repairer concurrently — the torn-state hunt for the
// write pipeline, the versioned read path and repair sharing one row.
// Run under -race; the invariant checked on every successful read is
// that body, size and checksum belong to ONE committed version.
func TestConcurrentPutGetRepair(t *testing.T) {
	b := newTestBroker(t, Config{StripeBytes: 1024, CacheBytes: 1 << 20})
	e := b.Engine(0)
	mkPayload := func(gen int) []byte {
		return bytes.Repeat([]byte{byte(gen)}, 4*1024)
	}
	if _, err := e.Put(context.Background(), "c", "k", mkPayload(0), PutOptions{}); err != nil {
		t.Fatal(err)
	}

	const iters = 25
	var wg sync.WaitGroup
	fail := make(chan error, 3)
	report := func(err error) {
		select {
		case fail <- err:
		default:
		}
	}

	wg.Add(3)
	go func() { // writer: overwrite the object with new generations
		defer wg.Done()
		for i := 1; i <= iters; i++ {
			p := mkPayload(i)
			_, err := e.PutReader(context.Background(), "c", "k", bytes.NewReader(p), int64(len(p)), PutOptions{})
			if err != nil && !errors.Is(err, core.ErrNoProviders) && !errors.Is(err, cloud.ErrUnavailable) {
				// Placement may be briefly infeasible while the repairer
				// holds a provider down; anything else is a real failure.
				report(fmt.Errorf("put gen %d: %w", i, err))
				return
			}
		}
	}()
	go func() { // reader: every successful read must be self-consistent
		defer wg.Done()
		for i := 0; i < iters; i++ {
			data, meta, err := e.Get(context.Background(), "c", "k")
			if err != nil {
				if errors.Is(err, ErrNotEnoughChunks) || errors.Is(err, cloud.ErrUnavailable) {
					continue
				}
				report(fmt.Errorf("get: %w", err))
				return
			}
			if int64(len(data)) != meta.Size {
				report(fmt.Errorf("torn read: %d bytes, meta says %d", len(data), meta.Size))
				return
			}
			sum := md5.Sum(data)
			if got := hex.EncodeToString(sum[:]); got != meta.Checksum {
				report(fmt.Errorf("read of version %s does not match its checksum", meta.UUID))
				return
			}
		}
	}()
	go func() { // repairer: rotate provider outages through repair passes
		defer wg.Done()
		providers := b.Registry().Snapshot()
		for i := 0; i < 4; i++ {
			name := providers[i%len(providers)].Spec().Name
			b.Registry().SetAvailable(name, false)
			if _, err := b.Repair(context.Background(), RepairActive); err != nil {
				report(fmt.Errorf("repair with %s down: %w", name, err))
				return
			}
			b.Registry().SetAvailable(name, true)
			b.ProcessPendingDeletes(context.Background())
		}
	}()
	wg.Wait()
	select {
	case err := <-fail:
		t.Fatal(err)
	default:
	}

	data, meta, err := e.Get(context.Background(), "c", "k")
	if err != nil || int64(len(data)) != meta.Size {
		t.Fatalf("final read: %v (%d bytes)", err, len(data))
	}
}
