package loadgen

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"

	"scalia"
)

// ReportSchema identifies the BENCH JSON layout emitted by a loadgen
// run; bump on breaking changes.
const ReportSchema = "scalia-loadgen/v1"

// OpStats is the per-op-type slice of a run: volume, latency quantiles
// (measured against the scheduled dispatch time, so queueing delay from
// a saturated deployment is charged to the op — no coordinated
// omission), and errors bucketed by typed error code.
type OpStats struct {
	Count        int64            `json:"count"`
	Errors       int64            `json:"errors"`
	P50Ms        float64          `json:"p50Ms"`
	P90Ms        float64          `json:"p90Ms"`
	P99Ms        float64          `json:"p99Ms"`
	ErrorsByCode map[string]int64 `json:"errorsByCode,omitempty"`
}

// StatsDelta is the deployment-side view of the run: /v1/stats scraped
// before and after, differenced for the cumulative counters and
// reported raw for the gauges whose resting values are the interesting
// part.
type StatsDelta struct {
	CacheHits         int64   `json:"cacheHits"`
	CacheMisses       int64   `json:"cacheMisses"`
	StripesFromCache  int64   `json:"stripesFromCache"`
	StripesFetched    int64   `json:"stripesFetched"`
	PrefetchedStripes int64   `json:"prefetchedStripes"`
	FetchFallbacks    int64   `json:"fetchFallbacks"`
	StripesWritten    int64   `json:"stripesWritten"`
	RepairPasses      int     `json:"repairPasses"`
	RepairRepaired    int     `json:"repairRepaired"`
	RepairSwapped     int     `json:"repairSwapped"`
	RepairRestriped   int     `json:"repairRestriped"`
	OptimizerRounds   int     `json:"optimizerRounds"`
	OptimizerMigrated int     `json:"optimizerMigrated"`
	CostUSD           float64 `json:"costUSD"`

	// Gauges sampled after the run (not differenced).
	ReadBufferedStripesPeak  int64 `json:"readBufferedStripesPeak"`
	WriteBufferedStripesPeak int64 `json:"writeBufferedStripesPeak"`
	// ReadBufferedStripes must be 0 at rest — anything else is a leaked
	// prefetch-budget slot.
	ReadBufferedStripes int64 `json:"readBufferedStripes"`
	ActiveUploads       int   `json:"activeUploads"`
	PendingDeletes      int   `json:"pendingDeletes"`
}

// diffStats builds the delta between two /v1/stats scrapes.
func diffStats(before, after scalia.Stats) *StatsDelta {
	return &StatsDelta{
		CacheHits:         int64(after.StripeCache.Hits) - int64(before.StripeCache.Hits),
		CacheMisses:       int64(after.StripeCache.Misses) - int64(before.StripeCache.Misses),
		StripesFromCache:  after.ReadPath.StripesFromCache - before.ReadPath.StripesFromCache,
		StripesFetched:    after.ReadPath.StripesFetched - before.ReadPath.StripesFetched,
		PrefetchedStripes: after.ReadPath.PrefetchedStripes - before.ReadPath.PrefetchedStripes,
		FetchFallbacks:    after.ReadPath.FetchFallbacks - before.ReadPath.FetchFallbacks,
		StripesWritten:    after.WritePath.StripesWritten - before.WritePath.StripesWritten,
		RepairPasses:      after.Repair.Passes - before.Repair.Passes,
		RepairRepaired:    after.Repair.Repaired - before.Repair.Repaired,
		RepairSwapped:     after.Repair.Swapped - before.Repair.Swapped,
		RepairRestriped:   after.Repair.Restriped - before.Repair.Restriped,
		OptimizerRounds:   after.Optimizer.Rounds - before.Optimizer.Rounds,
		OptimizerMigrated: after.Optimizer.Migrated - before.Optimizer.Migrated,
		CostUSD:           after.CostUSD - before.CostUSD,

		ReadBufferedStripesPeak:  after.ReadPath.BufferedStripesPeak,
		WriteBufferedStripesPeak: after.WritePath.BufferedStripesPeak,
		ReadBufferedStripes:      after.ReadPath.BufferedStripes,
		ActiveUploads:            after.WritePath.ActiveUploads,
		PendingDeletes:           after.PendingDeletes,
	}
}

// Report is the BENCH_loadgen JSON artifact for one run.
type Report struct {
	Schema   string `json:"schema"`
	Scenario string `json:"scenario"`
	Seed     uint64 `json:"seed"`
	Workers  int    `json:"workers"`

	// OfferedRatePerSec is what the open-loop pacer scheduled;
	// AchievedRatePerSec is what the deployment absorbed. A gap means
	// the deployment could not keep up with the offered load.
	OfferedRatePerSec  float64 `json:"offeredRatePerSec"`
	AchievedRatePerSec float64 `json:"achievedRatePerSec"`
	DurationSeconds    float64 `json:"durationSeconds"`

	// SeedOps populates the namespace before pacing starts so Get and
	// Delete target objects the run wrote; it is untimed.
	SeedOps    int64 `json:"seedOps"`
	SeedErrors int64 `json:"seedErrors"`

	TotalOps    int64   `json:"totalOps"`
	TotalErrors int64   `json:"totalErrors"`
	ErrorRate   float64 `json:"errorRate"`

	Ops          map[string]OpStats `json:"ops"`
	ErrorsByCode map[string]int64   `json:"errorsByCode,omitempty"`

	Chaos      []ExecutedEvent `json:"chaos,omitempty"`
	StatsDelta *StatsDelta     `json:"statsDelta,omitempty"`
}

// WriteFile writes the report as indented JSON.
func (r *Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Summary renders a short human-readable digest for terminal output.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario=%s seed=%d workers=%d\n", r.Scenario, r.Seed, r.Workers)
	fmt.Fprintf(&b, "offered=%.1f/s achieved=%.1f/s elapsed=%.1fs\n",
		r.OfferedRatePerSec, r.AchievedRatePerSec, r.DurationSeconds)
	fmt.Fprintf(&b, "ops=%d errors=%d (%.3f%%) seed-ops=%d\n",
		r.TotalOps, r.TotalErrors, r.ErrorRate*100, r.SeedOps)
	kinds := make([]string, 0, len(r.Ops))
	for k := range r.Ops {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		s := r.Ops[k]
		fmt.Fprintf(&b, "  %-6s n=%-7d err=%-5d p50=%.1fms p90=%.1fms p99=%.1fms\n",
			k, s.Count, s.Errors, s.P50Ms, s.P90Ms, s.P99Ms)
	}
	for _, ev := range r.Chaos {
		status := "ok"
		if ev.Error != "" {
			status = "ERR " + ev.Error
		}
		fmt.Fprintf(&b, "  chaos t=%.1fs %s %s [%s]\n", ev.AtSeconds, ev.Action, ev.Provider, status)
	}
	if d := r.StatsDelta; d != nil {
		fmt.Fprintf(&b, "  stats: cache-hits=%d stripes-fetched=%d fallbacks=%d repairs=%d migrated=%d buffered-stripes=%d (must be 0)\n",
			d.CacheHits, d.StripesFetched, d.FetchFallbacks, d.RepairRepaired, d.OptimizerMigrated, d.ReadBufferedStripes)
	}
	return b.String()
}
