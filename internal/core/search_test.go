package core

import (
	"math/rand"
	"testing"

	"scalia/internal/cloud"
	"scalia/internal/stats"
)

func TestSearchMatchesBestPlacement(t *testing.T) {
	rule := Rule{Durability: 0.99999, Availability: 0.9999, LockIn: 1}
	search, err := NewSearch(cloud.PaperProviders(), rule, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		load := stats.Summary{
			Periods:      1,
			Reads:        float64(rng.Intn(200)),
			Writes:       float64(rng.Intn(3)),
			StorageBytes: float64(1+rng.Intn(100)) * 1e6,
		}
		load.BytesOut = load.Reads * load.StorageBytes
		load.BytesIn = load.Writes * load.StorageBytes

		want, err := BestPlacement(cloud.PaperProviders(), rule, load, Options{})
		if err != nil {
			t.Fatal(err)
		}
		got := search.Best(load, 0, nil)
		if !got.Placement.Equal(want.Placement) {
			t.Fatalf("trial %d: search %v != exact %v (load %+v)",
				trial, got.Placement, want.Placement, load)
		}
		if got.Price != want.Price {
			t.Fatalf("trial %d: price %v != %v", trial, got.Price, want.Price)
		}
	}
}

func TestSearchInfeasible(t *testing.T) {
	weak := []cloud.Spec{{Name: "w", Durability: 0.5, Availability: 0.5}}
	rule := Rule{Durability: 0.999999, Availability: 0.99, LockIn: 1}
	if _, err := NewSearch(weak, rule, Options{}); err == nil {
		t.Fatal("expected ErrNoProviders")
	}
}

func TestSearchCandidateCount(t *testing.T) {
	rule := Rule{Durability: 0.99999, Availability: 0.9999, LockIn: 1}
	search, err := NewSearch(cloud.PaperProviders(), rule, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Singletons fail availability; all multi-provider subsets of the
	// five paper providers are feasible: 2^5 - 1 - 5 = 26.
	if got := search.Candidates(); got != 26 {
		t.Fatalf("Candidates = %d, want 26", got)
	}
}

func TestSearchHonorsZoneFilter(t *testing.T) {
	rule := Rule{Durability: 0.9999, Availability: 0.9999,
		Zones: []cloud.Zone{cloud.ZoneEU}, LockIn: 1}
	search, err := NewSearch(cloud.PaperProviders(), rule, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res := search.Best(stats.Summary{Periods: 1, StorageBytes: 1e6}, 0, nil)
	for _, name := range res.Placement.Names() {
		if name != "S3(h)" && name != "S3(l)" {
			t.Fatalf("non-EU provider %s", name)
		}
	}
}

func TestFeasibleThresholdLowersMForAvailability(t *testing.T) {
	pset := pick("S3(h)", "Azu") // both >= 6 nines durability
	// Pure Algorithm 2 yields m = 2 for modest durability...
	if th := GetThreshold(pset, 0.999); th != 2 {
		t.Fatalf("GetThreshold = %d, want 2", th)
	}
	// ...which fails 99.99% availability (0.999^2 = 0.998); the feasible
	// threshold drops to 1 (av 0.999999).
	if m := FeasibleThreshold(pset, 0.999, 0.9999); m != 1 {
		t.Fatalf("FeasibleThreshold = %d, want 1", m)
	}
	// An impossible availability yields 0.
	if m := FeasibleThreshold(pset, 0.999, 0.99999999); m != 0 {
		t.Fatalf("FeasibleThreshold = %d, want 0", m)
	}
}
