package core

import (
	"scalia/internal/cloud"
	"scalia/internal/stats"
)

// RepairMode says how a degraded placement is to be repaired.
type RepairMode int

// Repair modes: the paper's cheap same-(m,n) chunk swap, or a full
// re-placement that re-stripes the object.
const (
	// RepairSwap keeps the placement's threshold m and chunk count n and
	// replaces only the dead providers — "only the faulty chunk needs to
	// be written, which corresponds to the cheapest case" (§IV-E).
	RepairSwap RepairMode = iota
	// RepairRestripe re-places the object from scratch: read m chunks,
	// re-encode under the new (m, n) and rewrite everything.
	RepairRestripe
)

// RepairPlan is the outcome of planning a repair for a degraded
// placement (Planner.Repair / PlanSwap).
type RepairPlan struct {
	Mode RepairMode
	// Placement is the repaired placement. In swap mode it has the same
	// threshold and chunk count as the degraded one, with survivors kept
	// at their slots; in re-stripe mode it is the best full re-placement.
	Placement Placement
	// Replaced lists the chunk slots a swap rewrites (indexes into the
	// degraded placement's provider list, ascending). Nil in re-stripe
	// mode: every chunk is rewritten.
	Replaced []int
	// Price is the expected per-period cost of the repaired placement.
	Price float64
	// Evaluated counts candidate placements priced while planning.
	Evaluated int
}

// PlanSwap builds the cheapest same-(m,n) swap repair for the degraded
// placement cur: every slot whose provider is not alive is filled with
// the spare (alive, not already used, zone- and capacity-feasible)
// market provider that minimizes the expected period cost, greedily per
// slot. Surviving assignments are never touched. The second return is
// false when cur has no dead slot, when a dead slot has no usable
// spare, or when the swapped set no longer satisfies the rule at
// threshold cur.M — the callers then fall back to a full re-placement.
//
// market is the current available-provider view (a planner market
// snapshot); alive is the ground-truth reachability predicate, so a
// provider that died after the snapshot was cut is neither kept nor
// chosen as a spare. objectBytes and free apply the §III-A2 chunk-size
// and capacity constraints to the incoming spares (zero / nil skip
// them).
func PlanSwap(cur Placement, market []cloud.Spec, alive func(string) bool,
	rule Rule, load stats.Summary, periodHours float64,
	objectBytes int64, free map[string]int64) (RepairPlan, bool) {
	if cur.M <= 0 || cur.N() == 0 {
		return RepairPlan{}, false
	}
	used := make(map[string]bool, cur.N())
	for _, s := range cur.Providers {
		used[s.Name] = true
	}
	var chunk int64
	if objectBytes > 0 {
		chunk = (objectBytes + int64(cur.M) - 1) / int64(cur.M)
	}
	var spares []cloud.Spec
	for _, s := range market {
		if used[s.Name] || !alive(s.Name) || !s.ServesAny(rule.Zones) {
			continue
		}
		if chunk > 0 {
			if s.MaxChunkBytes > 0 && chunk > s.MaxChunkBytes {
				continue
			}
			if f, ok := free[s.Name]; ok && chunk > f {
				continue
			}
		}
		spares = append(spares, s)
	}

	plan := RepairPlan{Mode: RepairSwap}
	swapped := Placement{M: cur.M, Providers: append([]cloud.Spec(nil), cur.Providers...)}
	for i, s := range swapped.Providers {
		if alive(s.Name) {
			continue
		}
		bestIdx := -1
		bestPrice := 0.0
		for j, spare := range spares {
			cand := Placement{M: cur.M, Providers: append([]cloud.Spec(nil), swapped.Providers...)}
			cand.Providers[i] = spare
			plan.Evaluated++
			price := PeriodCost(cand, load, periodHours)
			if bestIdx < 0 || price < bestPrice {
				bestIdx, bestPrice = j, price
			}
		}
		if bestIdx < 0 {
			return RepairPlan{}, false // no spare left for this slot
		}
		swapped.Providers[i] = spares[bestIdx]
		spares = append(spares[:bestIdx], spares[bestIdx+1:]...)
		plan.Replaced = append(plan.Replaced, i)
	}
	if len(plan.Replaced) == 0 {
		return RepairPlan{}, false // nothing is dead; not a repair
	}
	if FeasibleThreshold(swapped.Providers, rule.Durability, rule.Availability) < cur.M {
		return RepairPlan{}, false
	}
	plan.Placement = swapped
	plan.Price = PeriodCost(swapped, load, periodHours)
	return plan, true
}

// Repair plans the repair of a degraded placement on the market at
// epoch: the cheap same-(m,n) chunk swap when one is feasible (§IV-E's
// "only the faulty chunk needs to be written"), otherwise the best full
// re-placement through the epoch-cached prepared search. The production
// broker and the cost simulator both plan repairs through this one
// entry point, so their repair decisions provably agree.
func (p *Planner) Repair(epoch uint64, specs []cloud.Spec, rule Rule,
	cur Placement, alive func(string) bool, load stats.Summary,
	objectBytes int64, free map[string]int64) (RepairPlan, error) {
	if plan, ok := PlanSwap(cur, specs, alive, rule, load, p.periodHours, objectBytes, free); ok {
		return plan, nil
	}
	res, err := p.Best(epoch, specs, rule, load, objectBytes, free)
	if err != nil {
		return RepairPlan{}, err
	}
	return RepairPlan{
		Mode:      RepairRestripe,
		Placement: res.Placement,
		Price:     res.Price,
		Evaluated: res.Evaluated,
	}, nil
}
