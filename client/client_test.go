package client_test

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"scalia"
	"scalia/client"
)

var ctx = context.Background()

// newRemote stands up a full deployment behind the v1 gateway and a
// typed client against it — the same topology as scalia-server plus a
// remote caller.
func newRemote(t *testing.T, opts scalia.Options) (*scalia.Client, *client.Client) {
	t.Helper()
	deployment, err := scalia.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(deployment.Close)
	ts := httptest.NewServer(deployment.NewGateway())
	t.Cleanup(ts.Close)
	return deployment, client.New(ts.URL, client.WithHTTPClient(ts.Client()))
}

func TestClientRoundTrip(t *testing.T) {
	_, c := newRemote(t, scalia.Options{})

	payload := bytes.Repeat([]byte("remote"), 1000)
	meta, err := c.Put(ctx, "docs", "readme.md", payload,
		client.WithMIME("text/markdown"), client.WithTTL(24))
	if err != nil {
		t.Fatal(err)
	}
	if meta.Size != int64(len(payload)) || meta.M < 1 || meta.TTLHours != 24 {
		t.Fatalf("meta = %+v", meta)
	}

	got, gotMeta, err := c.Get(ctx, "docs", "readme.md")
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("Get: %v", err)
	}
	if gotMeta.MIME != "text/markdown" || gotMeta.Checksum != meta.Checksum {
		t.Fatalf("wire meta = %+v", gotMeta)
	}

	head, err := c.Head(ctx, "docs", "readme.md")
	if err != nil || head.Size != meta.Size || head.Checksum != meta.Checksum {
		t.Fatalf("Head = %+v, %v", head, err)
	}

	// Zero-byte objects round-trip (the empty body must not be sent
	// chunked, which the gateway would refuse with 411).
	if _, err := c.PutReader(ctx, "docs", "empty", bytes.NewReader(nil), 0); err != nil {
		t.Fatalf("zero-byte put: %v", err)
	}
	if got, _, err := c.Get(ctx, "docs", "empty"); err != nil || len(got) != 0 {
		t.Fatalf("zero-byte get: %v (%d bytes)", err, len(got))
	}

	if err := c.Delete(ctx, "docs", "readme.md"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Get(ctx, "docs", "readme.md"); !errors.Is(err, scalia.ErrObjectNotFound) {
		t.Fatalf("Get after delete = %v, want ErrObjectNotFound", err)
	}
	if _, err := c.Head(ctx, "docs", "readme.md"); !errors.Is(err, scalia.ErrObjectNotFound) {
		t.Fatalf("Head after delete = %v, want ErrObjectNotFound", err)
	}
}

func TestClientStreamsLargeObject(t *testing.T) {
	_, c := newRemote(t, scalia.Options{StripeBytes: 2048})

	payload := make([]byte, 32*1024+5)
	rand.New(rand.NewSource(7)).Read(payload)
	meta, err := c.PutReader(ctx, "big", "blob", bytes.NewReader(payload), int64(len(payload)))
	if err != nil {
		t.Fatal(err)
	}
	if meta.Stripes < 2 {
		t.Fatalf("Stripes = %d, want a striped object", meta.Stripes)
	}

	rc, rmeta, err := c.GetReader(ctx, "big", "blob")
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	if rmeta.Size != int64(len(payload)) || rmeta.Stripes != meta.Stripes {
		t.Fatalf("stream meta = %+v", rmeta)
	}
	got, err := io.ReadAll(rc)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("streamed read: %v, %d bytes", err, len(got))
	}
}

func TestClientGetRange(t *testing.T) {
	_, c := newRemote(t, scalia.Options{StripeBytes: 2048, CacheBytes: 1 << 20})

	payload := make([]byte, 16*1024+9)
	rand.New(rand.NewSource(11)).Read(payload)
	if _, err := c.Put(ctx, "big", "blob", payload); err != nil {
		t.Fatal(err)
	}

	rc, meta, err := c.GetRange(ctx, "big", "blob", 3000, 5000)
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(rc)
	rc.Close()
	if err != nil || !bytes.Equal(got, payload[3000:8000]) {
		t.Fatalf("ranged read: %v, %d bytes", err, len(got))
	}
	if meta.Size != int64(len(payload)) {
		t.Fatalf("range meta = %+v", meta)
	}

	// Open-ended tail.
	rc, _, err = c.GetRange(ctx, "big", "blob", int64(len(payload))-100, -1)
	if err != nil {
		t.Fatal(err)
	}
	got, err = io.ReadAll(rc)
	rc.Close()
	if err != nil || !bytes.Equal(got, payload[len(payload)-100:]) {
		t.Fatalf("tail read: %v, %d bytes", err, len(got))
	}

	// Past the end: the sentinel must round-trip the wire.
	if _, _, err := c.GetRange(ctx, "big", "blob", int64(len(payload)), 10); !errors.Is(err, scalia.ErrRangeNotSatisfiable) {
		t.Fatalf("past-end range = %v, want ErrRangeNotSatisfiable", err)
	}

	// Lengths the wire form cannot express fail fast, matching the
	// embedded facade, instead of degrading into a full-body fetch.
	for _, length := range []int64{0, -2} {
		if _, _, err := c.GetRange(ctx, "big", "blob", 100, length); !errors.Is(err, scalia.ErrInvalidArgument) {
			t.Fatalf("GetRange length %d = %v, want ErrInvalidArgument", length, err)
		}
	}
	if _, _, err := c.GetRange(ctx, "big", "blob", -5, 10); !errors.Is(err, scalia.ErrInvalidArgument) {
		t.Fatalf("negative offset = %v, want ErrInvalidArgument", err)
	}
}

// TestClientGetRangeFullBodyFallback: when a server (or intermediary)
// ignores the Range header and answers 200 with the whole body, the
// client must carve out the requested window instead of silently
// returning the full object from byte 0.
func TestClientGetRangeFullBodyFallback(t *testing.T) {
	payload := []byte("0123456789abcdefghij")
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK) // Range ignored on purpose
		w.Write(payload)             //nolint:errcheck
	}))
	t.Cleanup(ts.Close)
	c := client.New(ts.URL, client.WithHTTPClient(ts.Client()))

	rc, _, err := c.GetRange(ctx, "c", "k", 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(rc)
	rc.Close()
	if err != nil || string(got) != "5678" {
		t.Fatalf("windowed fallback = %q, %v; want \"5678\"", got, err)
	}

	// Open-ended tail through the same degraded path.
	rc, _, err = c.GetRange(ctx, "c", "k", 15, -1)
	if err != nil {
		t.Fatal(err)
	}
	got, err = io.ReadAll(rc)
	rc.Close()
	if err != nil || string(got) != "fghij" {
		t.Fatalf("open-ended fallback = %q, %v; want \"fghij\"", got, err)
	}
}

func TestClientConditional(t *testing.T) {
	_, c := newRemote(t, scalia.Options{})

	meta, err := c.Put(ctx, "c", "k", []byte("v1"))
	if err != nil {
		t.Fatal(err)
	}
	etag := `"` + meta.Checksum + `"`

	// 304 on matching ETag.
	rc, _, notModified, err := c.GetIfNoneMatch(ctx, "c", "k", etag)
	if err != nil || !notModified || rc != nil {
		t.Fatalf("conditional get = %v, notModified=%v", err, notModified)
	}

	// Conditional update paths.
	if _, err := c.Put(ctx, "c", "k", []byte("v2"), client.WithIfMatch(`"bogus"`)); !errors.Is(err, scalia.ErrPreconditionFailed) {
		t.Fatalf("stale If-Match = %v", err)
	}
	if _, err := c.Put(ctx, "c", "k", []byte("v2"), client.WithIfMatch(etag)); err != nil {
		t.Fatalf("fresh If-Match = %v", err)
	}
	if _, err := c.Put(ctx, "c", "k", []byte("v3"), client.WithIfAbsent()); !errors.Is(err, scalia.ErrPreconditionFailed) {
		t.Fatalf("create-only over existing = %v", err)
	}
	if err := c.DeleteIf(ctx, "c", "k", `"bogus"`); !errors.Is(err, scalia.ErrPreconditionFailed) {
		t.Fatalf("stale delete = %v", err)
	}
}

func TestClientListPagination(t *testing.T) {
	_, c := newRemote(t, scalia.Options{})
	for _, k := range []string{"x1", "x2", "x3", "y1"} {
		if _, err := c.Put(ctx, "c", k, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	page, err := c.List(ctx, "c", client.ListOptions{Prefix: "x", Limit: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Keys) != 2 || !page.Truncated || page.Next != "x2" {
		t.Fatalf("page = %+v", page)
	}
	all, err := c.ListAll(ctx, "c", "x")
	if err != nil || len(all) != 3 {
		t.Fatalf("ListAll = %v, %v", all, err)
	}
}

func TestClientAdmin(t *testing.T) {
	_, c := newRemote(t, scalia.Options{})

	provs, err := c.Providers(ctx)
	if err != nil || len(provs) != 5 {
		t.Fatalf("Providers = %d, %v", len(provs), err)
	}
	if err := c.AddProvider(ctx, scalia.Provider{
		Name: "budget", Durability: 0.999999, Availability: 0.999,
		Zones:   []scalia.Zone{scalia.ZoneUS},
		Pricing: scalia.Pricing{StorageGBMonth: 0.01, BandwidthInGB: 0.01, BandwidthOutGB: 0.01},
	}); err != nil {
		t.Fatal(err)
	}
	provs, _ = c.Providers(ctx)
	if len(provs) != 6 {
		t.Fatalf("Providers after add = %d", len(provs))
	}

	// Rules: a valid rule lands, an invalid one maps to the sentinel.
	if err := c.SetContainerRule(ctx, "eu", scalia.Rule{
		Name: "eu", Durability: 0.9999, Availability: 0.999,
		Zones: []scalia.Zone{scalia.ZoneEU}, LockIn: 1,
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.SetContainerRule(ctx, "bad", scalia.Rule{LockIn: 7}); !errors.Is(err, scalia.ErrInvalidArgument) {
		t.Fatalf("invalid rule = %v", err)
	}
	meta, err := c.Put(ctx, "eu", "doc", []byte("bytes"))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range meta.Chunks {
		if p != "S3(h)" && p != "S3(l)" {
			t.Fatalf("non-EU provider %s for EU container", p)
		}
	}

	rep, err := c.Optimize(ctx)
	if err != nil || rep.Leader == "" {
		t.Fatalf("Optimize = %+v, %v", rep, err)
	}
	if _, err := c.Repair(ctx, scalia.RepairActive); err != nil {
		t.Fatal(err)
	}

	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Planner.Hits+st.Planner.Misses == 0 {
		t.Fatalf("planner counters missing: %+v", st)
	}
	if st.Optimizer.Rounds == 0 {
		t.Fatalf("optimizer totals missing: %+v", st)
	}
	if st.Repair.Passes == 0 {
		t.Fatalf("repair totals missing: %+v", st.Repair)
	}
	if st.Providers != 6 || st.Usage.Ops == 0 {
		t.Fatalf("stats = %+v", st)
	}

	if err := c.RemoveProvider(ctx, "budget"); err != nil {
		t.Fatal(err)
	}
	if err := c.RemoveProvider(ctx, "budget"); !errors.Is(err, scalia.ErrObjectNotFound) {
		t.Fatalf("double remove = %v", err)
	}
}

// TestClientMultipart drives the resumable-upload protocol through the
// typed client: open, stage parts, list, complete, read back, plus the
// abort path and the upload_not_found sentinel mapping.
func TestClientMultipart(t *testing.T) {
	_, c := newRemote(t, scalia.Options{StripeBytes: 2048})

	part1 := make([]byte, 6*1024) // three whole stripes
	part2 := make([]byte, 1500)   // ragged final part
	rand.New(rand.NewSource(42)).Read(part1)
	rand.New(rand.NewSource(43)).Read(part2)
	whole := append(append([]byte(nil), part1...), part2...)

	up, err := c.CreateUpload(ctx, "mp", "resumable", int64(len(whole)))
	if err != nil {
		t.Fatal(err)
	}
	if up.UploadID == "" || up.Container != "mp" || up.Key != "resumable" {
		t.Fatalf("upload info = %+v", up)
	}

	p1, err := c.UploadPart(ctx, up, 1, bytes.NewReader(part1), int64(len(part1)))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := c.UploadPart(ctx, up, 2, bytes.NewReader(part2), int64(len(part2)))
	if err != nil {
		t.Fatal(err)
	}
	if p1.Stripes != 3 || p1.ETag == "" || p2.Size != int64(len(part2)) {
		t.Fatalf("parts = %+v, %+v", p1, p2)
	}

	parts, err := c.ListParts(ctx, up)
	if err != nil || len(parts) != 2 || parts[1].ETag != p2.ETag {
		t.Fatalf("ListParts = %+v, %v", parts, err)
	}

	meta, err := c.CompleteUpload(ctx, up, []scalia.CompletedPart{
		{PartNumber: 1, ETag: p1.ETag}, {PartNumber: 2, ETag: p2.ETag},
	})
	if err != nil {
		t.Fatal(err)
	}
	if meta.Size != int64(len(whole)) || !meta.Multipart() {
		t.Fatalf("completed meta = %+v", meta)
	}
	got, _, err := c.Get(ctx, "mp", "resumable")
	if err != nil || !bytes.Equal(got, whole) {
		t.Fatalf("round-trip: %v (%d bytes)", err, len(got))
	}

	// The session is gone once completed: the wire code maps back to the
	// dedicated sentinel.
	if _, err := c.ListParts(ctx, up); !errors.Is(err, scalia.ErrUploadNotFound) {
		t.Fatalf("ListParts after complete = %v, want ErrUploadNotFound", err)
	}

	// Abort path: staged chunks vanish and the session stops answering.
	up2, err := c.CreateUpload(ctx, "mp", "doomed", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.UploadPart(ctx, up2, 1, bytes.NewReader(part1), int64(len(part1))); err != nil {
		t.Fatal(err)
	}
	if err := c.AbortUpload(ctx, up2); err != nil {
		t.Fatal(err)
	}
	if err := c.AbortUpload(ctx, up2); !errors.Is(err, scalia.ErrUploadNotFound) {
		t.Fatalf("double abort = %v, want ErrUploadNotFound", err)
	}
	if _, _, err := c.Get(ctx, "mp", "doomed"); !errors.Is(err, scalia.ErrObjectNotFound) {
		t.Fatalf("aborted object = %v, want ErrObjectNotFound", err)
	}
}

// TestClientMatchesEmbeddedFacade: the same object written remotely is
// readable through the embedded facade and vice versa — one deployment,
// two interchangeable surfaces.
func TestClientMatchesEmbeddedFacade(t *testing.T) {
	deployment, c := newRemote(t, scalia.Options{})

	if _, err := c.Put(ctx, "c", "via-wire", []byte("remote write")); err != nil {
		t.Fatal(err)
	}
	got, _, err := deployment.Get(ctx, "c", "via-wire")
	if err != nil || string(got) != "remote write" {
		t.Fatalf("embedded read of remote write: %q, %v", got, err)
	}

	if _, err := deployment.Put(ctx, "c", "via-facade", []byte("embedded write")); err != nil {
		t.Fatal(err)
	}
	got2, _, err := c.Get(ctx, "c", "via-facade")
	if err != nil || string(got2) != "embedded write" {
		t.Fatalf("remote read of embedded write: %q, %v", got2, err)
	}
}
