// Private-store: hybrid placement across public providers and a
// corporate private storage resource (§III-E). A real HTTP web service
// exposes a local directory with HMAC-signed requests; Scalia registers
// it with its capacity and prices and the placement engine uses it like
// any public provider — until it fills up, after which demand spills to
// the public clouds.
package main

import (
	"context"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"

	"scalia"
)

func main() {
	ctx := context.Background()
	dir, err := os.MkdirTemp("", "scalia-private-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// The corporate NAS: 64 KB of capacity, effectively free.
	token := []byte("corp-private-token")
	const capacity = 64 << 10
	server, err := scalia.NewPrivateStoreServer(dir, token, capacity)
	if err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(server)
	defer ts.Close()
	fmt.Printf("private store serving %s at %s\n", dir, ts.URL)

	client, err := scalia.New(scalia.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	client.AddPrivateResource(ts.URL, token, scalia.Provider{
		Name:          "corp-nas",
		Description:   "corporate NAS behind the privstore web service",
		Durability:    0.999999,
		Availability:  0.999,
		Zones:         []scalia.Zone{scalia.ZoneEU},
		Pricing:       scalia.Pricing{StorageGBMonth: 0.001, BandwidthInGB: 0, BandwidthOutGB: 0},
		CapacityBytes: capacity,
	})

	rule := scalia.Rule{Name: "hybrid", Durability: 0.99999, Availability: 0.9999, LockIn: 1}
	// Small objects fit the NAS and the engine prefers its near-zero
	// prices; once it is full, placement spills to public providers only.
	for i := 0; i < 6; i++ {
		key := fmt.Sprintf("doc-%d", i)
		meta, err := client.Put(ctx, "corp", key, make([]byte, 20<<10), scalia.WithRule(rule))
		if err != nil {
			log.Fatal(err)
		}
		private := false
		for _, p := range meta.Chunks {
			if p == "corp-nas" {
				private = true
			}
		}
		fmt.Printf("%s: m=%d placement=%v private=%v\n", key, meta.M, meta.Chunks, private)
	}

	// The data is really on disk, behind authenticated HTTP.
	resp, err := http.Get(ts.URL + "/list")
	if err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("unauthenticated /list request -> HTTP %d (signature required)\n", resp.StatusCode)

	entries, _ := os.ReadDir(dir)
	fmt.Printf("private store holds %d chunk files, %d bytes used\n",
		len(entries), server.UsedBytes())

	// Round-trip through the broker still works.
	data, _, err := client.Get(ctx, "corp", "doc-0")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read doc-0 back: %d bytes\n", len(data))
}
