// Package client is the typed Go client for the Scalia v1 HTTP gateway
// (cmd/scalia-server, engine.NewGateway). It speaks the same wire
// protocol the gateway serves and offers the same method set as the
// in-process scalia.Client facade, so embedded and remote callers are
// interchangeable: Put/PutReader, Get/GetReader, Head, Delete, List
// with pagination, resumable multipart uploads
// (CreateUpload/UploadPart/ListParts/CompleteUpload/AbortUpload), rule
// and provider administration, optimization, repair and operational
// stats.
//
// Wire errors are mapped back onto the facade's sentinel errors, so
// errors.Is(err, scalia.ErrObjectNotFound) works identically against a
// remote deployment.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"mime/multipart"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"scalia"
	"scalia/internal/obs"
)

// Client talks to one Scalia gateway. It is safe for concurrent use.
type Client struct {
	base string
	http *http.Client
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient substitutes the transport (timeouts, TLS, test
// servers).
func WithHTTPClient(h *http.Client) Option {
	return func(c *Client) { c.http = h }
}

// New returns a client for the gateway at baseURL (e.g.
// "http://localhost:8080").
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		base: strings.TrimSuffix(baseURL, "/"),
		http: http.DefaultClient,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// do sends the request, stamping a generated X-Request-ID first unless
// the caller set one, so client-side errors can be correlated with the
// gateway's access log (the gateway echoes the ID on the response).
func (c *Client) do(req *http.Request) (*http.Response, error) {
	if req.Header.Get("X-Request-ID") == "" {
		req.Header.Set("X-Request-ID", obs.NewRequestID())
	}
	return c.http.Do(req)
}

// ErrRemote wraps gateway errors whose code has no sentinel mapping.
var ErrRemote = errors.New("scalia client: remote error")

// wireError is the typed JSON error envelope of the v1 protocol.
type wireError struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

// sentinelFor maps wire error codes back onto the facade's sentinels.
func sentinelFor(code string) error {
	switch code {
	case "not_found":
		return scalia.ErrObjectNotFound
	case "upload_not_found":
		return scalia.ErrUploadNotFound
	case "precondition_failed", "already_exists":
		return scalia.ErrPreconditionFailed
	case "invalid_argument", "invalid_rule", "length_required":
		return scalia.ErrInvalidArgument
	case "infeasible_placement":
		return scalia.ErrInfeasiblePlacement
	case "range_not_satisfiable":
		return scalia.ErrRangeNotSatisfiable
	case "unavailable":
		return scalia.ErrNotEnoughChunks
	case "provider_unavailable":
		return scalia.ErrProviderUnavailable
	case "too_large":
		return scalia.ErrObjectTooLarge
	case "over_capacity":
		return scalia.ErrProviderOverCapacity
	case "unknown_provider":
		return scalia.ErrUnknownProvider
	case "unsupported_mutation":
		return scalia.ErrUnsupportedMutation
	case "job_not_found":
		return scalia.ErrObjectNotFound
	default:
		return ErrRemote
	}
}

// decodeErr turns a non-2xx response into a sentinel-wrapped error.
func decodeErr(resp *http.Response) error {
	var we wireError
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if err := json.Unmarshal(raw, &we); err != nil || we.Error.Code == "" {
		return fmt.Errorf("%w: %s: %s", ErrRemote, resp.Status, bytes.TrimSpace(raw))
	}
	return fmt.Errorf("%w: %s", sentinelFor(we.Error.Code), we.Error.Message)
}

func (c *Client) objectURL(container, key string) string {
	u := c.base + "/v1/objects/" + url.PathEscape(container)
	if key != "" {
		// Keys may contain slashes; escape each segment so the path
		// round-trips.
		segs := strings.Split(key, "/")
		for i, s := range segs {
			segs[i] = url.PathEscape(s)
		}
		u += "/" + strings.Join(segs, "/")
	}
	return u
}

// PutOption customizes a write, mirroring the facade's options.
type PutOption func(http.Header)

// WithMIME sets the object's MIME type (classification input).
func WithMIME(mime string) PutOption {
	return func(h http.Header) { h.Set("Content-Type", mime) }
}

// WithTTL hints the object's expected lifetime in hours.
func WithTTL(hours float64) PutOption {
	return func(h http.Header) {
		h.Set("X-Scalia-TTL-Hours", strconv.FormatFloat(hours, 'g', -1, 64))
	}
}

// WithIfMatch makes the write conditional on the stored ETag ("*" = any
// existing version).
func WithIfMatch(etag string) PutOption {
	return func(h http.Header) { h.Set("If-Match", etag) }
}

// WithIfAbsent makes the write create-only: it fails with
// ErrPreconditionFailed when the object already exists.
func WithIfAbsent() PutOption {
	return func(h http.Header) { h.Set("If-None-Match", "*") }
}

// Put stores or updates an object from an in-memory payload.
func (c *Client) Put(ctx context.Context, container, key string, data []byte, opts ...PutOption) (scalia.ObjectMeta, error) {
	return c.PutReader(ctx, container, key, bytes.NewReader(data), int64(len(data)), opts...)
}

// PutReader stores or updates an object streamed from r; size must be
// the exact body length. The body streams to the gateway, which stripes
// it to the providers without buffering the whole object.
func (c *Client) PutReader(ctx context.Context, container, key string, r io.Reader, size int64, opts ...PutOption) (scalia.ObjectMeta, error) {
	if size == 0 {
		// A zero ContentLength with an arbitrary non-nil body would be
		// sent chunked (unknown length) and refused with 411; NoBody
		// keeps the declared empty length on the wire.
		r = http.NoBody
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, c.objectURL(container, key), r)
	if err != nil {
		return scalia.ObjectMeta{}, err
	}
	req.ContentLength = size
	for _, o := range opts {
		o(req.Header)
	}
	resp, err := c.do(req)
	if err != nil {
		return scalia.ObjectMeta{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return scalia.ObjectMeta{}, decodeErr(resp)
	}
	var meta scalia.ObjectMeta
	if err := json.NewDecoder(resp.Body).Decode(&meta); err != nil {
		return scalia.ObjectMeta{}, fmt.Errorf("%w: malformed meta: %v", ErrRemote, err)
	}
	return meta, nil
}

// CreateUpload opens a resumable multipart upload for an object
// (POST …?uploads). sizeHint (0 = unknown) feeds the gateway's
// placement planning; the write options mirror PutReader's.
func (c *Client) CreateUpload(ctx context.Context, container, key string, sizeHint int64, opts ...PutOption) (scalia.UploadInfo, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.objectURL(container, key)+"?uploads", nil)
	if err != nil {
		return scalia.UploadInfo{}, err
	}
	for _, o := range opts {
		o(req.Header)
	}
	if sizeHint > 0 {
		req.Header.Set("X-Scalia-Size-Hint", strconv.FormatInt(sizeHint, 10))
	}
	resp, err := c.do(req)
	if err != nil {
		return scalia.UploadInfo{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return scalia.UploadInfo{}, decodeErr(resp)
	}
	var info scalia.UploadInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return scalia.UploadInfo{}, fmt.Errorf("%w: malformed upload info: %v", ErrRemote, err)
	}
	return info, nil
}

// UploadPart streams one part of an open upload
// (PUT …?partNumber=N&uploadId=…). size must be the exact part length;
// every part except the upload's final one must be a whole multiple of
// the deployment's stripe size. Re-sending a part number replaces the
// earlier attempt.
func (c *Client) UploadPart(ctx context.Context, info scalia.UploadInfo, partNumber int, r io.Reader, size int64) (scalia.PartInfo, error) {
	if size == 0 {
		r = http.NoBody
	}
	u := fmt.Sprintf("%s?partNumber=%d&uploadId=%s",
		c.objectURL(info.Container, info.Key), partNumber, url.QueryEscape(info.UploadID))
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, u, r)
	if err != nil {
		return scalia.PartInfo{}, err
	}
	req.ContentLength = size
	resp, err := c.do(req)
	if err != nil {
		return scalia.PartInfo{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return scalia.PartInfo{}, decodeErr(resp)
	}
	var part scalia.PartInfo
	if err := json.NewDecoder(resp.Body).Decode(&part); err != nil {
		return scalia.PartInfo{}, fmt.Errorf("%w: malformed part info: %v", ErrRemote, err)
	}
	return part, nil
}

// ListParts reports the staged parts of an open upload, sorted by part
// number (GET …?uploadId=…) — what survived a dropped connection, so a
// resume re-sends only the missing parts.
func (c *Client) ListParts(ctx context.Context, info scalia.UploadInfo) ([]scalia.PartInfo, error) {
	var res struct {
		Upload scalia.UploadInfo `json:"upload"`
		Parts  []scalia.PartInfo `json:"parts"`
	}
	u := c.objectURL(info.Container, info.Key) + "?uploadId=" + url.QueryEscape(info.UploadID)
	if err := c.getJSON(ctx, u, &res); err != nil {
		return nil, err
	}
	return res.Parts, nil
}

// CompleteUpload assembles the staged parts into the live object
// version (POST …?uploadId=… with the part list). A mismatched or
// missing part fails with scalia.ErrInvalidArgument and leaves the
// upload open for a retry.
func (c *Client) CompleteUpload(ctx context.Context, info scalia.UploadInfo, parts []scalia.CompletedPart) (scalia.ObjectMeta, error) {
	body, err := json.Marshal(struct {
		Parts []scalia.CompletedPart `json:"parts"`
	}{Parts: parts})
	if err != nil {
		return scalia.ObjectMeta{}, err
	}
	u := c.objectURL(info.Container, info.Key) + "?uploadId=" + url.QueryEscape(info.UploadID)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, bytes.NewReader(body))
	if err != nil {
		return scalia.ObjectMeta{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.do(req)
	if err != nil {
		return scalia.ObjectMeta{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return scalia.ObjectMeta{}, decodeErr(resp)
	}
	var meta scalia.ObjectMeta
	if err := json.NewDecoder(resp.Body).Decode(&meta); err != nil {
		return scalia.ObjectMeta{}, fmt.Errorf("%w: malformed meta: %v", ErrRemote, err)
	}
	return meta, nil
}

// AbortUpload tears an upload down and garbage-collects its staged
// parts (DELETE …?uploadId=…).
func (c *Client) AbortUpload(ctx context.Context, info scalia.UploadInfo) error {
	u := c.objectURL(info.Container, info.Key) + "?uploadId=" + url.QueryEscape(info.UploadID)
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, u, nil)
	if err != nil {
		return err
	}
	resp, err := c.do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return decodeErr(resp)
	}
	return nil
}

// Get fetches an object fully buffered, with its metadata.
func (c *Client) Get(ctx context.Context, container, key string) ([]byte, scalia.ObjectMeta, error) {
	rc, meta, err := c.GetReader(ctx, container, key)
	if err != nil {
		return nil, scalia.ObjectMeta{}, err
	}
	defer rc.Close()
	data, err := io.ReadAll(rc)
	if err != nil {
		return nil, scalia.ObjectMeta{}, err
	}
	return data, meta, nil
}

// GetReader fetches an object as a stream. The returned metadata is
// reconstructed from response headers (size, checksum, placement); the
// caller must Close the reader.
func (c *Client) GetReader(ctx context.Context, container, key string) (io.ReadCloser, scalia.ObjectMeta, error) {
	rc, meta, _, err := c.getConditional(ctx, container, key, "")
	return rc, meta, err
}

// GetRange fetches the byte range [offset, offset+length) of an object
// as a stream via a Range request; the gateway maps the range onto
// whole stripes so only the overlapped stripes are fetched or served
// from its stripe cache. length < 0 requests everything from offset to
// the object end; otherwise it is clamped to the object end. A range
// starting at or past the end fails with scalia.ErrRangeNotSatisfiable.
// Should a server or intermediary ignore the Range header and answer
// 200, the requested window is carved out of the full body client-side
// — the caller always receives exactly the bytes asked for.
func (c *Client) GetRange(ctx context.Context, container, key string, offset, length int64) (io.ReadCloser, scalia.ObjectMeta, error) {
	// Reject what the wire form cannot express before building a header:
	// length 0 would serialize as the malformed "bytes=N-(N-1)", which
	// the gateway ignores, silently serving the whole object. The
	// embedded facade fails the same call with ErrInvalidArgument.
	if offset < 0 || length == 0 || length < -1 {
		return nil, scalia.ObjectMeta{}, fmt.Errorf("%w: range offset %d length %d",
			scalia.ErrInvalidArgument, offset, length)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.objectURL(container, key), nil)
	if err != nil {
		return nil, scalia.ObjectMeta{}, err
	}
	if length < 0 {
		req.Header.Set("Range", fmt.Sprintf("bytes=%d-", offset))
	} else {
		req.Header.Set("Range", fmt.Sprintf("bytes=%d-%d", offset, offset+length-1))
	}
	resp, err := c.do(req)
	if err != nil {
		return nil, scalia.ObjectMeta{}, err
	}
	switch resp.StatusCode {
	case http.StatusPartialContent:
		return resp.Body, metaFromHeaders(container, key, resp.Header), nil
	case http.StatusOK:
		// The gateway — or an intermediary that stripped the Range
		// header — served the whole body, which RFC 9110 permits. Carve
		// the requested window out client-side so the caller still gets
		// exactly [offset, offset+length).
		return &windowReadCloser{rc: resp.Body, skip: offset, remaining: length},
			metaFromHeaders(container, key, resp.Header), nil
	default:
		defer resp.Body.Close()
		return nil, scalia.ObjectMeta{}, decodeErr(resp)
	}
}

// windowReadCloser recovers a byte range from a full-body stream:
// it discards the first skip bytes, then serves at most remaining
// bytes (remaining < 0 = to the end).
type windowReadCloser struct {
	rc        io.ReadCloser
	skip      int64
	remaining int64
}

func (w *windowReadCloser) Read(p []byte) (int, error) {
	if w.skip > 0 {
		if _, err := io.CopyN(io.Discard, w.rc, w.skip); err != nil {
			if errors.Is(err, io.EOF) {
				err = io.EOF // the range starts past the served body
			}
			w.skip = 0
			w.remaining = 0
			return 0, err
		}
		w.skip = 0
	}
	if w.remaining == 0 {
		return 0, io.EOF
	}
	if w.remaining > 0 && int64(len(p)) > w.remaining {
		p = p[:w.remaining]
	}
	n, err := w.rc.Read(p)
	if w.remaining > 0 {
		w.remaining -= int64(n)
	}
	return n, err
}

func (w *windowReadCloser) Close() error { return w.rc.Close() }

// ByteRange names one byte window of a multi-range GET: [Offset,
// Offset+Length), with Length -1 standing for "to the object end".
type ByteRange struct {
	Offset int64
	Length int64
}

// RangePart is one returned window of GetRanges: the bytes served plus
// the offset the server actually resolved them at.
type RangePart struct {
	Offset int64
	Data   []byte
}

// GetRanges fetches several byte windows of one object in a single
// request (Range: bytes=a-b,c-d), decoding the gateway's
// multipart/byteranges 206 body (RFC 9110 §14.6). Parts return in the
// server's serving order — request order, minus windows the object is
// too small to satisfy (the gateway serves the satisfiable subset). A
// plain single-range 206 wraps into one part; a server or intermediary
// that ignores the Range header and ships the full 200 body has every
// window carved out client-side. Bodies buffer in memory: multi-range
// reads are for collections of small slices, not bulk transfer — use
// GetRange to stream one large window.
func (c *Client) GetRanges(ctx context.Context, container, key string, ranges []ByteRange) ([]RangePart, scalia.ObjectMeta, error) {
	if len(ranges) == 0 {
		return nil, scalia.ObjectMeta{}, fmt.Errorf("%w: empty range list", scalia.ErrInvalidArgument)
	}
	var hdr strings.Builder
	hdr.WriteString("bytes=")
	for i, r := range ranges {
		if r.Offset < 0 || r.Length == 0 || r.Length < -1 {
			return nil, scalia.ObjectMeta{}, fmt.Errorf("%w: range offset %d length %d",
				scalia.ErrInvalidArgument, r.Offset, r.Length)
		}
		if i > 0 {
			hdr.WriteByte(',')
		}
		if r.Length < 0 {
			fmt.Fprintf(&hdr, "%d-", r.Offset)
		} else {
			fmt.Fprintf(&hdr, "%d-%d", r.Offset, r.Offset+r.Length-1)
		}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.objectURL(container, key), nil)
	if err != nil {
		return nil, scalia.ObjectMeta{}, err
	}
	req.Header.Set("Range", hdr.String())
	resp, err := c.do(req)
	if err != nil {
		return nil, scalia.ObjectMeta{}, err
	}
	defer resp.Body.Close()
	meta := metaFromHeaders(container, key, resp.Header)
	switch resp.StatusCode {
	case http.StatusPartialContent:
		mediatype, params, merr := mime.ParseMediaType(resp.Header.Get("Content-Type"))
		if merr != nil || mediatype != "multipart/byteranges" {
			// A single-range 206: one window, offset from Content-Range.
			offset, ok := contentRangeStart(resp.Header.Get("Content-Range"))
			if !ok {
				offset = ranges[0].Offset
			}
			data, rerr := io.ReadAll(resp.Body)
			if rerr != nil {
				return nil, meta, rerr
			}
			return []RangePart{{Offset: offset, Data: data}}, meta, nil
		}
		mr := multipart.NewReader(resp.Body, params["boundary"])
		var parts []RangePart
		for {
			p, perr := mr.NextPart()
			if errors.Is(perr, io.EOF) {
				return parts, meta, nil
			}
			if perr != nil {
				return nil, meta, fmt.Errorf("%w: malformed byteranges body: %v", ErrRemote, perr)
			}
			offset, ok := contentRangeStart(p.Header.Get("Content-Range"))
			if !ok {
				return nil, meta, fmt.Errorf("%w: part without Content-Range", ErrRemote)
			}
			data, rerr := io.ReadAll(p)
			if rerr != nil {
				return nil, meta, rerr
			}
			parts = append(parts, RangePart{Offset: offset, Data: data})
		}
	case http.StatusOK:
		data, rerr := io.ReadAll(resp.Body)
		if rerr != nil {
			return nil, meta, rerr
		}
		size := int64(len(data))
		parts := make([]RangePart, 0, len(ranges))
		for _, r := range ranges {
			if r.Offset >= size {
				continue
			}
			end := size
			if r.Length >= 0 && r.Offset+r.Length < size {
				end = r.Offset + r.Length
			}
			parts = append(parts, RangePart{Offset: r.Offset, Data: data[r.Offset:end]})
		}
		return parts, meta, nil
	default:
		return nil, scalia.ObjectMeta{}, decodeErr(resp)
	}
}

// contentRangeStart parses the first-byte position out of a
// "bytes a-b/size" Content-Range header.
func contentRangeStart(h string) (int64, bool) {
	h = strings.TrimPrefix(h, "bytes ")
	dash := strings.IndexByte(h, '-')
	if dash < 0 {
		return 0, false
	}
	start, err := strconv.ParseInt(h[:dash], 10, 64)
	if err != nil || start < 0 {
		return 0, false
	}
	return start, true
}

// GetIfNoneMatch is a conditional fetch: when the stored ETag equals
// etag the gateway answers 304 and notModified is true with a nil
// reader.
func (c *Client) GetIfNoneMatch(ctx context.Context, container, key, etag string) (rc io.ReadCloser, meta scalia.ObjectMeta, notModified bool, err error) {
	return c.getConditional(ctx, container, key, etag)
}

func (c *Client) getConditional(ctx context.Context, container, key, ifNoneMatch string) (io.ReadCloser, scalia.ObjectMeta, bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.objectURL(container, key), nil)
	if err != nil {
		return nil, scalia.ObjectMeta{}, false, err
	}
	if ifNoneMatch != "" {
		req.Header.Set("If-None-Match", ifNoneMatch)
	}
	resp, err := c.do(req)
	if err != nil {
		return nil, scalia.ObjectMeta{}, false, err
	}
	switch resp.StatusCode {
	case http.StatusOK:
		return resp.Body, metaFromHeaders(container, key, resp.Header), false, nil
	case http.StatusNotModified:
		resp.Body.Close()
		return nil, metaFromHeaders(container, key, resp.Header), true, nil
	default:
		defer resp.Body.Close()
		return nil, scalia.ObjectMeta{}, false, decodeErr(resp)
	}
}

// Head fetches an object's metadata only.
func (c *Client) Head(ctx context.Context, container, key string) (scalia.ObjectMeta, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodHead, c.objectURL(container, key), nil)
	if err != nil {
		return scalia.ObjectMeta{}, err
	}
	resp, err := c.do(req)
	if err != nil {
		return scalia.ObjectMeta{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// HEAD responses carry no body; synthesize the sentinel from the
		// status code alone.
		switch resp.StatusCode {
		case http.StatusNotFound:
			return scalia.ObjectMeta{}, fmt.Errorf("%w: %s/%s", scalia.ErrObjectNotFound, container, key)
		default:
			return scalia.ObjectMeta{}, fmt.Errorf("%w: %s", ErrRemote, resp.Status)
		}
	}
	return metaFromHeaders(container, key, resp.Header), nil
}

// metaFromHeaders rebuilds the wire-visible ObjectMeta subset from the
// gateway's response headers.
func metaFromHeaders(container, key string, h http.Header) scalia.ObjectMeta {
	meta := scalia.ObjectMeta{
		Container: container,
		Key:       key,
		MIME:      h.Get("Content-Type"),
		Checksum:  strings.Trim(h.Get("ETag"), `"`),
	}
	meta.Size, _ = strconv.ParseInt(h.Get("X-Scalia-Size"), 10, 64)
	meta.M, _ = strconv.Atoi(h.Get("X-Scalia-M"))
	meta.Stripes, _ = strconv.Atoi(h.Get("X-Scalia-Stripes"))
	if provs := h.Get("X-Scalia-Providers"); provs != "" {
		meta.Chunks = strings.Split(provs, ",")
	}
	return meta
}

// Delete removes an object.
func (c *Client) Delete(ctx context.Context, container, key string) error {
	return c.DeleteIf(ctx, container, key, "")
}

// DeleteIf removes an object only if its stored ETag matches ifMatch.
func (c *Client) DeleteIf(ctx context.Context, container, key, ifMatch string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.objectURL(container, key), nil)
	if err != nil {
		return err
	}
	if ifMatch != "" {
		req.Header.Set("If-Match", ifMatch)
	}
	resp, err := c.do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return decodeErr(resp)
	}
	return nil
}

// ListOptions parameterize a container listing.
type ListOptions struct {
	// Prefix filters keys.
	Prefix string
	// Limit caps one page (gateway default and maximum: 1000).
	Limit int
	// After resumes after the given cursor (ListResult.Next).
	After string
}

// List returns one page of a container's keys.
func (c *Client) List(ctx context.Context, container string, opts ListOptions) (scalia.ListResult, error) {
	q := url.Values{}
	if opts.Prefix != "" {
		q.Set("prefix", opts.Prefix)
	}
	if opts.Limit > 0 {
		q.Set("limit", strconv.Itoa(opts.Limit))
	}
	if opts.After != "" {
		q.Set("after", opts.After)
	}
	u := c.objectURL(container, "")
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	var res scalia.ListResult
	err := c.getJSON(ctx, u, &res)
	return res, err
}

// ListAll walks every page and returns the container's full key set.
func (c *Client) ListAll(ctx context.Context, container, prefix string) ([]string, error) {
	var keys []string
	opts := ListOptions{Prefix: prefix}
	for {
		page, err := c.List(ctx, container, opts)
		if err != nil {
			return nil, err
		}
		keys = append(keys, page.Keys...)
		if !page.Truncated {
			return keys, nil
		}
		opts.After = page.Next
	}
}

// SetContainerRule pins a placement rule to a container.
func (c *Client) SetContainerRule(ctx context.Context, container string, rule scalia.Rule) error {
	body, err := json.Marshal(rule)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPut,
		c.base+"/v1/rules/"+url.PathEscape(container), bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return decodeErr(resp)
	}
	return nil
}

// Providers returns the provider market with availability and usage.
func (c *Client) Providers(ctx context.Context) ([]scalia.ProviderStatus, error) {
	var out []scalia.ProviderStatus
	err := c.getJSON(ctx, c.base+"/v1/providers", &out)
	return out, err
}

// AddProvider registers a provider at runtime (the CheapStor scenario).
func (c *Client) AddProvider(ctx context.Context, spec scalia.Provider) error {
	body, err := json.Marshal(spec)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.base+"/v1/providers", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return decodeErr(resp)
	}
	return nil
}

// RemoveProvider deregisters a provider (market exit).
func (c *Client) RemoveProvider(ctx context.Context, name string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete,
		c.base+"/v1/providers/"+url.PathEscape(name), nil)
	if err != nil {
		return err
	}
	resp, err := c.do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return decodeErr(resp)
	}
	return nil
}

// UpdateProviderAvailability injects or clears a transient provider
// outage through the admin API (PUT /v1/providers/{name}/availability)
// and returns the market epoch the mutation advanced the deployment to.
// Unknown providers surface as scalia.ErrUnknownProvider; backends
// without failure injection as scalia.ErrUnsupportedMutation.
func (c *Client) UpdateProviderAvailability(ctx context.Context, name string, up bool) (scalia.ProviderMutation, error) {
	body := struct {
		Available bool `json:"available"`
	}{Available: up}
	var mut scalia.ProviderMutation
	err := c.putJSON(ctx,
		c.base+"/v1/providers/"+url.PathEscape(name)+"/availability", body, &mut)
	return mut, err
}

// SetProviderAvailable is UpdateProviderAvailability without the
// epoch-echoing response — the error-only convenience chaos schedules
// use.
func (c *Client) SetProviderAvailable(ctx context.Context, name string, up bool) error {
	_, err := c.UpdateProviderAvailability(ctx, name, up)
	return err
}

// UpdateProviderPricing replaces a provider's price sheet at runtime
// (PUT /v1/providers/{name}/pricing) — a scripted market price event;
// the response echoes the new market epoch, so the caller can correlate
// the event with subsequent placement decisions. Error contract as
// UpdateProviderAvailability.
func (c *Client) UpdateProviderPricing(ctx context.Context, name string, p scalia.Pricing) (scalia.ProviderMutation, error) {
	body := struct {
		Pricing scalia.Pricing `json:"pricing"`
	}{Pricing: p}
	var mut scalia.ProviderMutation
	err := c.putJSON(ctx,
		c.base+"/v1/providers/"+url.PathEscape(name)+"/pricing", body, &mut)
	return mut, err
}

// SetProviderPricing is UpdateProviderPricing without the epoch-echoing
// response.
func (c *Client) SetProviderPricing(ctx context.Context, name string, p scalia.Pricing) error {
	_, err := c.UpdateProviderPricing(ctx, name, p)
	return err
}

// putJSON PUTs a JSON body and decodes a 200 JSON response into v.
func (c *Client) putJSON(ctx context.Context, u string, body, v any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, u, bytes.NewReader(buf))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.doJSONStatus(req, http.StatusOK, v)
}

// Optimize runs one optimization round synchronously (?wait=true) and
// returns the final report — the pre-jobs blocking contract. Large
// deployments should prefer StartOptimize + WaitForJob so no HTTP
// request stays open across a full scan.
func (c *Client) Optimize(ctx context.Context) (scalia.OptimizeReport, error) {
	var rep scalia.OptimizeReport
	err := c.postJSON(ctx, c.base+"/v1/optimize?wait=true", &rep)
	return rep, err
}

// Repair runs a repair pass synchronously (?wait=true) with the given
// policy and returns the final report.
func (c *Client) Repair(ctx context.Context, policy scalia.RepairPolicy) (scalia.RepairReport, error) {
	var rep scalia.RepairReport
	err := c.postJSON(ctx, c.base+"/v1/repair?wait=true&policy="+policyName(policy), &rep)
	return rep, err
}

func policyName(policy scalia.RepairPolicy) string {
	if policy == scalia.RepairActive {
		return "active"
	}
	return "wait"
}

// StartOptimize dispatches an asynchronous optimization round (POST
// /v1/optimize, 202 Accepted) and returns the job resource to poll.
func (c *Client) StartOptimize(ctx context.Context) (scalia.Job, error) {
	var job scalia.Job
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/optimize", nil)
	if err != nil {
		return job, err
	}
	err = c.doJSONStatus(req, http.StatusAccepted, &job)
	return job, err
}

// StartRepair dispatches an asynchronous repair pass (POST /v1/repair,
// 202 Accepted) and returns the job resource to poll.
func (c *Client) StartRepair(ctx context.Context, policy scalia.RepairPolicy) (scalia.Job, error) {
	var job scalia.Job
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.base+"/v1/repair?policy="+policyName(policy), nil)
	if err != nil {
		return job, err
	}
	err = c.doJSONStatus(req, http.StatusAccepted, &job)
	return job, err
}

// Job fetches one maintenance job: state, live progress, and the final
// report once the pass finishes. Unknown jobs surface as
// scalia.ErrObjectNotFound.
func (c *Client) Job(ctx context.Context, id string) (scalia.Job, error) {
	var job scalia.Job
	err := c.getJSON(ctx, c.base+"/v1/jobs/"+url.PathEscape(id), &job)
	return job, err
}

// Jobs pages through the deployment's maintenance jobs with the same
// prefix/limit/after shape as the object listing. Zero values mean no
// prefix filter, first page, server default page size.
func (c *Client) Jobs(ctx context.Context, prefix, after string, limit int) (scalia.JobList, error) {
	q := url.Values{}
	if prefix != "" {
		q.Set("prefix", prefix)
	}
	if after != "" {
		q.Set("after", after)
	}
	if limit > 0 {
		q.Set("limit", strconv.Itoa(limit))
	}
	u := c.base + "/v1/jobs"
	if enc := q.Encode(); enc != "" {
		u += "?" + enc
	}
	var list scalia.JobList
	err := c.getJSON(ctx, u, &list)
	return list, err
}

// WaitForJob polls a job every interval (default 50ms when <= 0) until
// it leaves the running state or ctx is cancelled. A job that finishes
// in the failed state is returned with a non-nil error wrapping its
// message.
func (c *Client) WaitForJob(ctx context.Context, id string, interval time.Duration) (scalia.Job, error) {
	if interval <= 0 {
		interval = 50 * time.Millisecond
	}
	for {
		job, err := c.Job(ctx, id)
		if err != nil {
			return job, err
		}
		switch job.State {
		case scalia.JobDone:
			return job, nil
		case scalia.JobFailed:
			return job, fmt.Errorf("%w: job %s failed: %s", ErrRemote, id, job.Error)
		}
		select {
		case <-ctx.Done():
			return job, ctx.Err()
		case <-time.After(interval):
		}
	}
}

// Stats returns the deployment's operational counters: planner cache
// hits/misses, optimizer totals, billed usage and cost.
func (c *Client) Stats(ctx context.Context) (scalia.Stats, error) {
	var st scalia.Stats
	err := c.getJSON(ctx, c.base+"/v1/stats", &st)
	return st, err
}

func (c *Client) getJSON(ctx context.Context, u string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	return c.doJSON(req, v)
}

func (c *Client) postJSON(ctx context.Context, u string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, nil)
	if err != nil {
		return err
	}
	return c.doJSON(req, v)
}

func (c *Client) doJSON(req *http.Request, v any) error {
	return c.doJSONStatus(req, http.StatusOK, v)
}

func (c *Client) doJSONStatus(req *http.Request, want int, v any) error {
	resp, err := c.do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != want {
		return decodeErr(resp)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		return fmt.Errorf("%w: malformed response: %v", ErrRemote, err)
	}
	return nil
}
