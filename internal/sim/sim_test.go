package sim

import (
	"strings"
	"testing"

	"scalia/internal/cloud"
	"scalia/internal/workload"
)

func TestStaticSetsMatchFig13(t *testing.T) {
	sets := StaticSets()
	if len(sets) != 26 {
		t.Fatalf("got %d sets, want 26", len(sets))
	}
	// Spot-check the paper's numbering.
	want := map[int]string{
		1:  "S3(h)-S3(l)",
		2:  "S3(h)-S3(l)-Azu",
		4:  "S3(h)-S3(l)-Azu-Ggl-RS",
		9:  "S3(h)-Azu",
		13: "S3(h)-Ggl",
		16: "S3(l)-Azu",
		22: "S3(l)-RS",
		26: "Ggl-RS",
	}
	for idx, label := range want {
		if got := sets[idx-1].Label(); got != label {
			t.Errorf("set %d = %q, want %q", idx, got, label)
		}
		if sets[idx-1].Index != idx {
			t.Errorf("set %d mis-indexed as %d", idx, sets[idx-1].Index)
		}
	}
}

func TestSetByLabel(t *testing.T) {
	s, err := SetByLabel("S3(h)-S3(l)-Azu")
	if err != nil || s.Index != 2 {
		t.Fatalf("SetByLabel = %+v, %v", s, err)
	}
	if _, err := SetByLabel("nope"); err == nil {
		t.Fatal("expected error for unknown label")
	}
}

func TestSlashdotExperimentShape(t *testing.T) {
	res, err := SlashdotExperiment()
	if err != nil {
		t.Fatal(err)
	}
	if res.Periods != 180 || len(res.Statics) != 26 {
		t.Fatalf("result shape: periods=%d statics=%d", res.Periods, len(res.Statics))
	}
	// Paper (Fig. 14): Scalia ~0.12% over ideal, best static 0.4%, worst
	// 16%. Shape requirements: Scalia close to ideal, below the best
	// static, and the static spread must be wide.
	if res.ScaliaOverPct < 0 {
		t.Fatalf("Scalia cannot beat the ideal: %v", res.ScaliaOverPct)
	}
	if res.ScaliaOverPct > 2 {
		t.Fatalf("Scalia over-cost = %.2f%%, want ~0.1%%", res.ScaliaOverPct)
	}
	// Scalia must beat every static set that is not itself near-ideal:
	// in this pricing model the m:1 pairs all price within ~0.01% of the
	// ideal for a read-dominated single object (see EXPERIMENTS.md), so
	// Scalia's unavoidable detection lag cannot strictly undercut them —
	// but any set that loses more than 1% to the ideal must lose to
	// Scalia as well.
	for _, s := range res.Statics {
		if s.OverPct < res.ScaliaOverPct && s.OverPct > 1 {
			t.Errorf("non-degenerate static %s (%.3f%%) beats Scalia (%.3f%%)",
				s.Label, s.OverPct, res.ScaliaOverPct)
		}
	}
	if worst := res.WorstStatic(); worst.OverPct < 5 {
		t.Fatalf("worst static = %.2f%%, want a wide spread (paper: 16%%)", worst.OverPct)
	}
	// The object must migrate to a read-optimized set during the spike.
	foundHot := false
	for _, ch := range res.Changes {
		if strings.Contains(ch.To, "m:1") && ch.Period >= 47 && ch.Period <= 60 {
			foundHot = true
		}
	}
	if !foundHot {
		t.Fatalf("no migration to an m:1 set during the flash crowd; changes: %+v", res.Changes)
	}
	// Resource series (Fig. 12): bandwidth-out peaks around the spike.
	var peakOut float64
	var peakAt int
	for _, pt := range res.Resources {
		if pt.BwOutGB > peakOut {
			peakOut, peakAt = pt.BwOutGB, pt.Period
		}
	}
	if peakAt < 48 || peakAt > 55 {
		t.Fatalf("bandwidth-out peak at %d, want near hour 50", peakAt)
	}
	if peakOut < 0.10 || peakOut > 0.20 {
		t.Fatalf("peak bw-out = %.3f GB, want ~0.15 (150 reads x 1 MB)", peakOut)
	}
}

func TestGalleryExperimentShape(t *testing.T) {
	res, err := GalleryExperiment()
	if err != nil {
		t.Fatal(err)
	}
	// Paper (Fig. 16): Scalia 1.06%, best static 4.14%, worst 31.58%.
	if res.ScaliaOverPct < 0 || res.ScaliaOverPct > 4 {
		t.Fatalf("Scalia over-cost = %.2f%%, want small (~1%%)", res.ScaliaOverPct)
	}
	// Any static losing more than 2% to the ideal must also lose to
	// Scalia; near-ideal degenerate pairs may tie (see EXPERIMENTS.md).
	for _, s := range res.Statics {
		if s.OverPct < res.ScaliaOverPct && s.OverPct > 2 {
			t.Errorf("non-degenerate static %s (%.3f%%) beats Scalia (%.3f%%)",
				s.Label, s.OverPct, res.ScaliaOverPct)
		}
	}
	if worst := res.WorstStatic(); worst.OverPct < 10 {
		t.Fatalf("worst static = %.2f%%, want a wide spread (paper: 31.6%%)", worst.OverPct)
	}
	// Tiering: popular pictures end on low-m sets, unpopular on high-m.
	placements := map[string]string{}
	for _, ch := range res.Changes {
		placements[ch.Object] = ch.To
	}
	if len(res.Changes) == 0 {
		t.Fatal("the gallery must trigger migrations")
	}
}

func TestAddProviderExperimentShape(t *testing.T) {
	res, err := AddProviderExperiment()
	if err != nil {
		t.Fatal(err)
	}
	// Paper (§IV-D): Scalia 0.35%, best static 7.88%, worst 96.35%.
	if res.ScaliaOverPct < 0 || res.ScaliaOverPct > 5 {
		t.Fatalf("Scalia over-cost = %.2f%%, want ~0.35%%", res.ScaliaOverPct)
	}
	best, worst := res.BestStatic(), res.WorstStatic()
	if res.ScaliaOverPct >= best.OverPct {
		t.Fatalf("Scalia (%.3f%%) must beat the best static (%.3f%% %s)",
			res.ScaliaOverPct, best.OverPct, best.Label)
	}
	if worst.OverPct < 30 {
		t.Fatalf("worst static = %.2f%%, want a wide spread (paper: 96%%)", worst.OverPct)
	}
	// The already-stored objects must migrate to CheapStor after hour 400.
	migratedToCheap := 0
	for _, ch := range res.Changes {
		if ch.Period >= 400 && strings.Contains(ch.To, cloud.NameCheapStor) {
			migratedToCheap++
		}
	}
	if migratedToCheap == 0 {
		t.Fatal("no object migrated to CheapStor after its arrival")
	}
	// New objects after hour 400 must be born on CheapStor sets; verify
	// via the final cost advantage over the best static (which cannot use
	// CheapStor for old objects).
	if res.ScaliaUSD >= res.Statics[3].CostUSD {
		t.Fatalf("Scalia (%f) must undercut the pre-arrival optimum set #4 (%f)",
			res.ScaliaUSD, res.Statics[3].CostUSD)
	}
}

func TestRepairExperimentShape(t *testing.T) {
	res, static, err := RepairExperiment()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CumulativeScalia) != 180 || len(static) != 180 {
		t.Fatalf("series lengths: %d, %d", len(res.CumulativeScalia), len(static))
	}
	// Both series must be non-decreasing.
	for i := 1; i < 180; i++ {
		if res.CumulativeScalia[i] < res.CumulativeScalia[i-1] {
			t.Fatalf("Scalia cumulative decreases at %d", i)
		}
		if static[i] < static[i-1] {
			t.Fatalf("static cumulative decreases at %d", i)
		}
	}
	// Active repair must actually move chunks off S3(l) during the outage.
	repairs := 0
	for _, ch := range res.Changes {
		if ch.Reason == "active-repair" && ch.Period >= 60 && ch.Period < 120 {
			repairs++
		}
	}
	if repairs == 0 {
		t.Fatal("no active repair during the outage")
	}
	// Fig. 18 shape: Scalia's total stays at or below the static set's.
	if res.CumulativeScalia[179] > static[179] {
		t.Fatalf("Scalia (%f) must end at or below the static set (%f)",
			res.CumulativeScalia[179], static[179])
	}
}

func TestCustomExperimentRegistryWorkloads(t *testing.T) {
	// The custom experiment must run any registered workload through the
	// full Scalia-vs-static comparison. zipf-flashcrowd exercises the
	// combinator layer; churn exercises deletes inside the simulator.
	for _, name := range []string{"zipf-flashcrowd", "churn"} {
		res, err := CustomExperiment(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Periods <= 0 || len(res.Statics) != 26 {
			t.Fatalf("%s: shape periods=%d statics=%d", name, res.Periods, len(res.Statics))
		}
		if res.ScaliaOverPct < 0 {
			t.Fatalf("%s: Scalia cannot beat the ideal: %v", name, res.ScaliaOverPct)
		}
		if res.IdealUSD <= 0 || res.ScaliaUSD <= 0 {
			t.Fatalf("%s: degenerate costs: ideal=%v scalia=%v", name, res.IdealUSD, res.ScaliaUSD)
		}
	}
	if _, err := CustomExperiment("no-such-workload"); err == nil {
		t.Fatal("unknown workload must error")
	}
}

func TestMarketMembership(t *testing.T) {
	mkt := &market{
		specs:    cloud.PaperProviders(),
		arrivals: []Arrival{{Spec: cloud.CheapStorProvider(), AtPeriod: 10}},
		outages:  []Outage{{Provider: cloud.NameAzure, From: 5, To: 8}},
	}
	all, up := mkt.specsAt(0)
	if len(all) != 5 || len(up) != 5 {
		t.Fatalf("t=0: all=%d up=%d", len(all), len(up))
	}
	_, up = mkt.specsAt(5)
	if len(up) != 4 {
		t.Fatalf("t=5 (outage): up=%d", len(up))
	}
	if !mkt.membershipChanged(5) {
		t.Fatal("outage start must register as membership change")
	}
	if !mkt.membershipChanged(8) {
		t.Fatal("recovery must register as membership change")
	}
	if mkt.membershipChanged(6) {
		t.Fatal("mid-outage must not register as change")
	}
	all, _ = mkt.specsAt(10)
	if len(all) != 6 {
		t.Fatalf("t=10 (arrival): all=%d", len(all))
	}
	if !mkt.membershipChanged(10) {
		t.Fatal("arrival must register as membership change")
	}
}

func TestIdealNeverAboveScalia(t *testing.T) {
	res, err := Run(workload.NewSlashdot(), Config{Rule: SlashdotRule})
	if err != nil {
		t.Fatal(err)
	}
	if res.IdealUSD > res.ScaliaUSD+1e-12 {
		t.Fatalf("ideal (%f) above Scalia (%f)", res.IdealUSD, res.ScaliaUSD)
	}
}

func TestTrendGatingSparse(t *testing.T) {
	// The whole point of trend gating: recomputation count far below
	// objects x periods.
	res, err := GalleryExperiment()
	if err != nil {
		t.Fatal(err)
	}
	totalObjectPeriods := 200 * 180
	if res.TrendRecomputations >= totalObjectPeriods/2 {
		t.Fatalf("trend gate too chatty: %d of %d object-periods",
			res.TrendRecomputations, totalObjectPeriods)
	}
}
