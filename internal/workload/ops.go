package workload

// This file maps scenarios onto executable operation sequences: the
// bridge between the simulator-facing Load(p) aggregates and a load
// generator that must issue one HTTP request per operation against a
// live gateway. CompileOps is pure — the same scenario and seed always
// compile to the identical sequence, which is what makes loadgen runs
// replayable and diffable.

// OpKind is the operation class of a compiled Op.
type OpKind uint8

const (
	// OpPut writes (creates or updates) an object.
	OpPut OpKind = iota
	// OpGet reads an object in full.
	OpGet
	// OpDelete removes an object.
	OpDelete
)

// String returns the wire-friendly lowercase name.
func (k OpKind) String() string {
	switch k {
	case OpPut:
		return "put"
	case OpGet:
		return "get"
	case OpDelete:
		return "delete"
	default:
		return "unknown"
	}
}

// Op is one executable operation compiled from a scenario period.
type Op struct {
	// Period is the scenario period the op was compiled from.
	Period int
	// Kind is the operation class.
	Kind OpKind
	// Object is the scenario-scoped object name (the executor prefixes
	// its own container).
	Object string
	// Size is the object size in bytes (payload length for OpPut,
	// expected length for OpGet).
	Size int64
}

// DefaultMaxOps bounds CompileOps when the caller passes maxOps <= 0: a
// week-long scenario can expand to millions of reads, and the load
// generator almost never wants more than this in one pass.
const DefaultMaxOps = 100_000

// CompileOps flattens a scenario into a deterministic operation
// sequence. Per period it emits writes first (in Load order), then the
// period's reads in a seeded shuffle (so concurrent workers don't hammer
// one object back-to-back), then deletes. A live-object set guarantees
// the namespace invariant the load generator relies on: every OpGet and
// OpDelete targets an object a preceding OpPut in the same sequence
// created and no later OpDelete has removed. Reads or deletes of
// objects the scenario never wrote (possible under Shift/Truncate
// compositions) are silently dropped.
//
// The result is capped at maxOps (DefaultMaxOps when <= 0). Identical
// (scenario, seed, maxOps) inputs always yield the identical sequence.
func CompileOps(s Scenario, seed uint64, maxOps int) []Op {
	if maxOps <= 0 {
		maxOps = DefaultMaxOps
	}
	live := make(map[string]bool)
	var ops []Op
	for p := 0; p < s.Periods() && len(ops) < maxOps; p++ {
		loads := s.Load(p)

		var puts, gets, deletes []Op
		for _, l := range loads {
			if l.Created || l.Writes > 0 {
				puts = append(puts, Op{Period: p, Kind: OpPut, Object: l.Object, Size: l.Size})
				live[l.Object] = true
			}
		}
		for _, l := range loads {
			if !live[l.Object] {
				continue
			}
			for r := int64(0); r < l.Reads; r++ {
				gets = append(gets, Op{Period: p, Kind: OpGet, Object: l.Object, Size: l.Size})
			}
		}
		// Seeded Fisher-Yates over the period's reads. Only reads are
		// shuffled: write/delete order within a period is part of the
		// namespace invariant.
		for i := len(gets) - 1; i > 0; i-- {
			j := int(mix64(seed^mix64(uint64(p)<<24|uint64(i))) % uint64(i+1))
			gets[i], gets[j] = gets[j], gets[i]
		}
		for _, l := range loads {
			if l.Deleted && live[l.Object] {
				deletes = append(deletes, Op{Period: p, Kind: OpDelete, Object: l.Object, Size: l.Size})
				delete(live, l.Object)
			}
		}

		ops = append(ops, puts...)
		ops = append(ops, gets...)
		ops = append(ops, deletes...)
	}
	if len(ops) > maxOps {
		ops = ops[:maxOps]
	}
	return ops
}
