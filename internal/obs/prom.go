package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ContentType is the value to serve with the output of
// WritePrometheus (Prometheus text exposition format, version 0.0.4).
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus encodes every family in the registry in Prometheus
// text format. Families appear sorted by name and series sorted by
// label signature, so output is deterministic for a fixed state.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	families := append([]*family(nil), r.families...)
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range families {
		b.Reset()
		encodeFamily(&b, f)
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

func encodeFamily(b *strings.Builder, f *family) {
	if f.help != "" {
		fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	}
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.kind)

	if f.collect != nil {
		samples := f.collect()
		sort.Slice(samples, func(i, j int) bool {
			return strings.Join(samples[i].LabelValues, seriesSep) <
				strings.Join(samples[j].LabelValues, seriesSep)
		})
		for _, s := range samples {
			writeSample(b, f.name, f.labelNames, s.LabelValues, "", "", s.Value)
		}
		return
	}

	f.mu.RLock()
	keys := append([]string(nil), f.keys...)
	series := make([]any, len(keys))
	for i, k := range keys {
		series[i] = f.series[k]
	}
	f.mu.RUnlock()
	// Sort series with the keys for deterministic output.
	idx := make([]int, len(keys))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return keys[idx[i]] < keys[idx[j]] })

	for _, i := range idx {
		var values []string
		if keys[i] != "" || len(f.labelNames) > 0 {
			values = strings.Split(keys[i], seriesSep)
		}
		switch m := series[i].(type) {
		case *Counter:
			writeSample(b, f.name, f.labelNames, values, "", "", float64(m.Value()))
		case *Gauge:
			writeSample(b, f.name, f.labelNames, values, "", "", float64(m.Value()))
		case *Histogram:
			s := m.Snapshot()
			var cum uint64
			for bi, bound := range s.Bounds {
				cum += s.Counts[bi]
				writeSample(b, f.name+"_bucket", f.labelNames, values,
					"le", formatBound(bound), float64(cum))
			}
			writeSample(b, f.name+"_bucket", f.labelNames, values, "le", "+Inf", float64(s.Count))
			writeSample(b, f.name+"_sum", f.labelNames, values, "", "", s.Sum)
			writeSample(b, f.name+"_count", f.labelNames, values, "", "", float64(s.Count))
		}
	}
}

// writeSample emits one line: name{labels,extraName="extraValue"} value.
func writeSample(b *strings.Builder, name string, labelNames, labelValues []string, extraName, extraValue string, v float64) {
	b.WriteString(name)
	if len(labelNames) > 0 || extraName != "" {
		b.WriteByte('{')
		sep := false
		for i, ln := range labelNames {
			if sep {
				b.WriteByte(',')
			}
			sep = true
			lv := ""
			if i < len(labelValues) {
				lv = labelValues[i]
			}
			b.WriteString(ln)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(lv))
			b.WriteByte('"')
		}
		if extraName != "" {
			if sep {
				b.WriteByte(',')
			}
			b.WriteString(extraName)
			b.WriteString(`="`)
			b.WriteString(extraValue)
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatValue(v))
	b.WriteByte('\n')
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// formatBound renders a histogram "le" bound the way Prometheus
// clients do: shortest round-trip float.
func formatBound(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabel(s string) string { return labelEscaper.Replace(s) }

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeHelp(s string) string { return helpEscaper.Replace(s) }
