// Package core implements Scalia's placement engine: the best-provider-
// set search of Algorithm 1, the durability threshold computation of
// Algorithm 2, SLA availability evaluation, expected-price computation
// over access histories, migration-cost accounting, and the adaptive
// decision-period controller (paper §III-A).
package core

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"scalia/internal/cloud"
)

// Rule is the per-object (or per-class, or default) customer rule set:
// minimum durability and availability, acceptable geographic zones and
// the vendor lock-in factor obj[lockin] = 1/N_obj where N_obj is the
// minimum number of distinct providers (paper Eq. 1 and Fig. 2).
type Rule struct {
	Name         string       `json:"name"`
	Durability   float64      `json:"durability"`      // minimum durability, e.g. 0.99999
	Availability float64      `json:"availability"`    // minimum availability, e.g. 0.9999
	Zones        []cloud.Zone `json:"zones,omitempty"` // acceptable zones; empty = all
	LockIn       float64      `json:"lockIn"`          // max lock-in factor in (0,1]; 1 = single provider OK
}

// Validation errors.
var (
	ErrBadLockIn      = errors.New("core: lock-in factor must be in (0,1]")
	ErrBadProbability = errors.New("core: durability/availability must be in [0,1)")
	ErrNoProviders    = errors.New("core: no feasible provider set satisfies the rule")
)

// Validate checks rule parameter ranges.
func (r Rule) Validate() error {
	if r.LockIn <= 0 || r.LockIn > 1 {
		return fmt.Errorf("%w: %v", ErrBadLockIn, r.LockIn)
	}
	if r.Durability < 0 || r.Durability >= 1 {
		return fmt.Errorf("%w: durability %v", ErrBadProbability, r.Durability)
	}
	if r.Availability < 0 || r.Availability >= 1 {
		return fmt.Errorf("%w: availability %v", ErrBadProbability, r.Availability)
	}
	return nil
}

// MinProviders returns N_obj, the minimum number of distinct providers
// implied by the lock-in factor (Eq. 1: lockin = 1/N).
func (r Rule) MinProviders() int {
	if r.LockIn <= 0 {
		return 1
	}
	n := int(1/r.LockIn + 1e-9)
	if n < 1 {
		n = 1
	}
	return n
}

// Fingerprint returns a canonical identity string for the rule's
// placement-relevant parameters. Two rules with equal fingerprints have
// identical feasible candidate sets on any provider market, so planners
// use the fingerprint (not the display Name) as a cache key.
func (r Rule) Fingerprint() string {
	zones := make([]string, len(r.Zones))
	for i, z := range r.Zones {
		zones[i] = string(z)
	}
	sort.Strings(zones)
	var sb strings.Builder
	sb.WriteString(strconv.FormatFloat(r.Durability, 'g', -1, 64))
	sb.WriteByte('|')
	sb.WriteString(strconv.FormatFloat(r.Availability, 'g', -1, 64))
	sb.WriteByte('|')
	sb.WriteString(strconv.FormatFloat(r.LockIn, 'g', -1, 64))
	sb.WriteByte('|')
	sb.WriteString(strings.Join(zones, ","))
	return sb.String()
}

// PaperRules returns the three example rules of Fig. 2.
func PaperRules() []Rule {
	return []Rule{
		{Name: "Rule 1", Durability: 0.999999, Availability: 0.9999,
			Zones: []cloud.Zone{cloud.ZoneEU, cloud.ZoneUS}, LockIn: 0.3},
		{Name: "Rule 2", Durability: 0.99999, Availability: 0.9999,
			Zones: []cloud.Zone{cloud.ZoneEU}, LockIn: 1},
		{Name: "Rule 3", Durability: 0.9999, Availability: 0.9999,
			Zones: nil, LockIn: 0.2},
	}
}
