package erasure

import (
	"math/rand"
	"testing"
)

// Kernel-level benchmarks at the acceptance geometry (m=4, n=8, 4 MiB
// stripe): the table-driven path against the retained scalar
// reference. The root-package BenchmarkEncode/BenchmarkDecode feed the
// CI bench-gate; these two exist to measure the kernel speedup itself.

func benchStripe(b *testing.B, size int) (*Coder, []byte) {
	b.Helper()
	c, err := New(4, 8)
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, size)
	rand.New(rand.NewSource(1)).Read(data)
	b.SetBytes(int64(size))
	b.ReportAllocs()
	return c, data
}

func BenchmarkEncodeTable4MiB(b *testing.B) {
	c, data := benchStripe(b, 4<<20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		chunks, err := c.EncodePooled(data)
		if err != nil {
			b.Fatal(err)
		}
		ReleaseChunks(chunks)
	}
}

func BenchmarkEncodeScalarRef4MiB(b *testing.B) {
	c, data := benchStripe(b, 4<<20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.encodeRef(data)
	}
}

// BenchmarkEncodeSerial4MiB isolates the table kernels from the span
// fan-out by disabling parallelism, so table-vs-scalar and
// serial-vs-parallel contributions can be read separately.
func BenchmarkEncodeSerial4MiB(b *testing.B) {
	old := SpanThreshold()
	SetSpanThreshold(0)
	defer SetSpanThreshold(old)
	c, data := benchStripe(b, 4<<20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		chunks, err := c.EncodePooled(data)
		if err != nil {
			b.Fatal(err)
		}
		ReleaseChunks(chunks)
	}
}
