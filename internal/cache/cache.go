// Package cache implements Scalia's caching layer (paper §III-B): a
// byte-capacity LRU cache per datacenter, plus a cluster wrapper that
// invalidates entries in every datacenter on writes so reads stay
// consistent. The layer is optional; when present it serves popular
// reads without fetching chunks from the remote providers, cutting both
// latency and bandwidth-out cost.
package cache

import (
	"container/list"
	"sync"
)

// LRU is a byte-bounded least-recently-used cache. It is safe for
// concurrent use.
type LRU struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	order    *list.List               // front = most recent
	items    map[string]*list.Element // key -> element whose Value is *entry

	hits, misses, evictions int64
}

type entry struct {
	key  string
	data []byte
}

// NewLRU returns a cache bounded to capacity bytes. A non-positive
// capacity yields a disabled cache that stores nothing.
func NewLRU(capacity int64) *LRU {
	return &LRU{
		capacity: capacity,
		order:    list.New(),
		items:    make(map[string]*list.Element),
	}
}

// Get returns a copy of the cached object and marks it recently used.
func (c *LRU) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	data := el.Value.(*entry).data
	cp := make([]byte, len(data))
	copy(cp, data)
	return cp, true
}

// Put stores a copy of data under key, evicting least-recently-used
// entries as needed. Objects larger than the capacity are not cached.
func (c *LRU) Put(key string, data []byte) {
	size := int64(len(data))
	if c.capacity <= 0 || size > c.capacity {
		return
	}
	cp := make([]byte, len(data))
	copy(cp, data)

	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		old := el.Value.(*entry)
		c.used += size - int64(len(old.data))
		old.data = cp
		c.order.MoveToFront(el)
	} else {
		c.items[key] = c.order.PushFront(&entry{key: key, data: cp})
		c.used += size
	}
	for c.used > c.capacity {
		c.evictOldestLocked()
	}
}

func (c *LRU) evictOldestLocked() {
	el := c.order.Back()
	if el == nil {
		return
	}
	e := el.Value.(*entry)
	c.order.Remove(el)
	delete(c.items, e.key)
	c.used -= int64(len(e.data))
	c.evictions++
}

// Invalidate removes key from the cache.
func (c *LRU) Invalidate(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		e := el.Value.(*entry)
		c.order.Remove(el)
		delete(c.items, key)
		c.used -= int64(len(e.data))
	}
}

// Len returns the number of cached objects.
func (c *LRU) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

// UsedBytes returns the cached byte volume.
func (c *LRU) UsedBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

// Stats reports hit/miss/eviction counters.
func (c *LRU) Stats() (hits, misses, evictions int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions
}

// Cluster is the multi-datacenter cache fabric: one LRU per datacenter,
// with write-triggered invalidation broadcast to all datacenters ("the
// cache has to be invalidated in all datacenters in order to guarantee
// the consistency of the read operations", §III-B).
type Cluster struct {
	mu     sync.RWMutex
	caches map[string]*LRU
}

// NewCluster returns an empty cache cluster.
func NewCluster() *Cluster {
	return &Cluster{caches: make(map[string]*LRU)}
}

// AddDatacenter creates (or replaces) the cache of a datacenter.
func (cc *Cluster) AddDatacenter(dc string, capacity int64) *LRU {
	c := NewLRU(capacity)
	cc.mu.Lock()
	cc.caches[dc] = c
	cc.mu.Unlock()
	return c
}

// Datacenter returns the cache of a datacenter, or nil.
func (cc *Cluster) Datacenter(dc string) *LRU {
	cc.mu.RLock()
	defer cc.mu.RUnlock()
	return cc.caches[dc]
}

// Get reads from the named datacenter's cache.
func (cc *Cluster) Get(dc, key string) ([]byte, bool) {
	c := cc.Datacenter(dc)
	if c == nil {
		return nil, false
	}
	return c.Get(key)
}

// Put fills the named datacenter's cache (reads fill only locally).
func (cc *Cluster) Put(dc, key string, data []byte) {
	if c := cc.Datacenter(dc); c != nil {
		c.Put(key, data)
	}
}

// InvalidateAll removes key from every datacenter's cache.
func (cc *Cluster) InvalidateAll(key string) {
	cc.mu.RLock()
	defer cc.mu.RUnlock()
	for _, c := range cc.caches {
		c.Invalidate(key)
	}
}
