package client_test

import (
	"bytes"
	"fmt"
	"os"
	"testing"
	"time"

	"scalia"
	"scalia/client"
)

// TestGatewaySmoke exercises a real scalia-server process over TCP:
// put, get, head, list, stats, delete through the typed client. It is
// the CI gateway smoke job; locally it is skipped unless
// SCALIA_GATEWAY_ADDR points at a running server (e.g.
// "http://127.0.0.1:8080").
func TestGatewaySmoke(t *testing.T) {
	addr := os.Getenv("SCALIA_GATEWAY_ADDR")
	if addr == "" {
		t.Skip("SCALIA_GATEWAY_ADDR not set; start scalia-server and point it here")
	}
	c := client.New(addr)

	// The server may still be binding its listener; retry briefly.
	var lastErr error
	for i := 0; i < 50; i++ {
		if _, lastErr = c.Stats(ctx); lastErr == nil {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if lastErr != nil {
		t.Fatalf("gateway unreachable at %s: %v", addr, lastErr)
	}

	key := fmt.Sprintf("smoke-%d", time.Now().UnixNano())
	payload := bytes.Repeat([]byte("smoke"), 4096)
	meta, err := c.Put(ctx, "smoke", key, payload, client.WithMIME("application/octet-stream"))
	if err != nil {
		t.Fatalf("put: %v", err)
	}
	if meta.Size != int64(len(payload)) {
		t.Fatalf("put meta = %+v", meta)
	}

	got, _, err := c.Get(ctx, "smoke", key)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("get: %v (%d bytes)", err, len(got))
	}
	if _, err := c.Head(ctx, "smoke", key); err != nil {
		t.Fatalf("head: %v", err)
	}
	page, err := c.List(ctx, "smoke", client.ListOptions{Prefix: "smoke-"})
	if err != nil || len(page.Keys) == 0 {
		t.Fatalf("list: %v (%d keys)", err, len(page.Keys))
	}

	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if st.Planner.Hits+st.Planner.Misses == 0 {
		t.Fatalf("planner counters missing from stats: %+v", st)
	}
	if st.Usage.Ops == 0 {
		t.Fatalf("usage counters missing from stats: %+v", st)
	}

	if err := c.Delete(ctx, "smoke", key); err != nil {
		t.Fatalf("delete: %v", err)
	}
}

// TestGatewaySmokeMultipart runs a multipart round-trip against the
// same live server (the -run TestGatewaySmoke prefix picks it up in
// CI): open, stage two parts, complete, read back, delete.
func TestGatewaySmokeMultipart(t *testing.T) {
	addr := os.Getenv("SCALIA_GATEWAY_ADDR")
	if addr == "" {
		t.Skip("SCALIA_GATEWAY_ADDR not set; start scalia-server and point it here")
	}
	c := client.New(addr)

	var lastErr error
	for i := 0; i < 50; i++ {
		if _, lastErr = c.Stats(ctx); lastErr == nil {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if lastErr != nil {
		t.Fatalf("gateway unreachable at %s: %v", addr, lastErr)
	}

	// The default server stripe is 4 MB and non-final parts must be
	// stripe-aligned, so part 1 is exactly one stripe.
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	part1 := bytes.Repeat([]byte{0xA5}, int(st.StripeBytes))
	part2 := bytes.Repeat([]byte{0x5A}, 100*1024)

	key := fmt.Sprintf("smoke-mp-%d", time.Now().UnixNano())
	up, err := c.CreateUpload(ctx, "smoke", key, int64(len(part1)+len(part2)))
	if err != nil {
		t.Fatalf("create upload: %v", err)
	}
	p1, err := c.UploadPart(ctx, up, 1, bytes.NewReader(part1), int64(len(part1)))
	if err != nil {
		t.Fatalf("part 1: %v", err)
	}
	p2, err := c.UploadPart(ctx, up, 2, bytes.NewReader(part2), int64(len(part2)))
	if err != nil {
		t.Fatalf("part 2: %v", err)
	}
	parts, err := c.ListParts(ctx, up)
	if err != nil || len(parts) != 2 {
		t.Fatalf("list parts: %v (%d parts)", err, len(parts))
	}
	meta, err := c.CompleteUpload(ctx, up, []scalia.CompletedPart{
		{PartNumber: 1, ETag: p1.ETag}, {PartNumber: 2, ETag: p2.ETag},
	})
	if err != nil {
		t.Fatalf("complete: %v", err)
	}
	if meta.Size != int64(len(part1)+len(part2)) || !meta.Multipart() {
		t.Fatalf("completed meta = %+v", meta)
	}
	got, _, err := c.Get(ctx, "smoke", key)
	if err != nil || !bytes.Equal(got, append(append([]byte(nil), part1...), part2...)) {
		t.Fatalf("multipart round-trip: %v (%d bytes)", err, len(got))
	}
	if err := c.Delete(ctx, "smoke", key); err != nil {
		t.Fatalf("delete: %v", err)
	}
}
