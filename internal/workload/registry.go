package workload

import (
	"fmt"
	"sort"
	"sync"
)

// The scenario registry maps stable names to scenario constructors so
// CLIs and experiments can enumerate and build workloads without
// compile-time knowledge of them. Constructors, not instances, are
// registered: scenarios may carry internal state and every run deserves
// a fresh one.

// Entry is one registered scenario constructor.
type Entry struct {
	Name  string
	Desc  string
	Build func() Scenario
}

var (
	regMu    sync.RWMutex
	registry = map[string]Entry{}
)

// Register adds a named scenario constructor; it panics on a duplicate
// name, which is a programming error (registration happens at init).
func Register(name, desc string, build func() Scenario) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("workload: duplicate scenario %q", name))
	}
	registry[name] = Entry{Name: name, Desc: desc, Build: build}
}

// Names lists the registered scenario names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Describe returns a registered entry.
func Describe(name string) (Entry, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	e, ok := registry[name]
	return e, ok
}

// New builds a fresh instance of a registered scenario.
func New(name string) (Scenario, error) {
	e, ok := Describe(name)
	if !ok {
		return nil, fmt.Errorf("workload: unknown scenario %q (have %v)", name, Names())
	}
	return e.Build(), nil
}

func init() {
	Register("slashdot", "paper §IV-B: 1 MB page, flash crowd at hour 48 (Figs. 12, 14)",
		func() Scenario { return NewSlashdot() })
	Register("gallery", "paper §IV-C: 200 pictures, Pareto popularity on a diurnal site (Figs. 15, 16)",
		func() Scenario { return NewGallery() })
	Register("backup", "paper §IV-D: 40 MB backup every 5 h for 4 weeks (Fig. 17)",
		func() Scenario { return NewBackup(600) })
	Register("backup-repair", "paper §IV-E: 40 MB backup every 5 h for 7.5 days (Fig. 18)",
		func() Scenario { return NewBackup(180) })
	Register("zipf", "synthetic: 40 objects, Zipf(1.1) popularity, 400 reads/h for a week",
		func() Scenario { return NewZipf(1) })
	Register("flashcrowd", "synthetic: 8 pages, one seeded flash crowd each over a week",
		func() Scenario { return NewFlashCrowd(2) })
	Register("churn", "synthetic: Poisson arrivals, exponential lifetimes, deletes on expiry",
		func() Scenario { return NewChurn(3) })
	Register("zipf-flashcrowd", "combinator demo: zipf steady state mixed with flash crowds",
		func() Scenario { return Mix(NewZipf(1), NewFlashCrowd(2)) })
	Register("churn-doubled", "combinator demo: churn at twice the read rate, delayed a day",
		func() Scenario { return Shift(Scale(NewChurn(3), 2), 24) })
}
