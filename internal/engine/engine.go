package engine

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"scalia/internal/cloud"
	"scalia/internal/core"
	"scalia/internal/metadata"
	"scalia/internal/obs"
	"scalia/internal/stats"
)

// Engine errors. They are sentinel values so API layers can map them to
// protocol status codes (the v1 gateway's statusFromErr).
var (
	ErrObjectNotFound  = errors.New("engine: object not found")
	ErrChecksum        = errors.New("engine: checksum mismatch after reconstruction")
	ErrNotEnoughChunks = errors.New("engine: not enough reachable chunks to reconstruct")
	// ErrInvalidArgument marks malformed requests (missing container or
	// key, negative size, short body); gateways map it to 400.
	ErrInvalidArgument = errors.New("engine: invalid argument")
	// ErrPreconditionFailed is returned when a conditional operation's
	// expected ETag does not match the stored version; mapped to 412.
	ErrPreconditionFailed = errors.New("engine: precondition failed")
	// ErrRangeNotSatisfiable marks a byte-range request that lies
	// entirely outside the object; gateways map it to 416.
	ErrRangeNotSatisfiable = errors.New("engine: range not satisfiable")
)

// Engine is one stateless broker engine. All state lives in the shared
// metadata, cache and statistics layers, so engines scale by addition
// (§III-A). Each engine belongs to one datacenter and serves requests
// against that datacenter's metadata node and cache.
type Engine struct {
	id    string
	dc    string
	b     *Broker
	agent *stats.Agent

	mu    sync.Mutex
	alive bool
}

// ID returns the engine identifier.
func (e *Engine) ID() string { return e.id }

// Datacenter returns the engine's datacenter.
func (e *Engine) Datacenter() string { return e.dc }

// SetAlive marks the engine up or down (for leader-election tests and
// failure injection).
func (e *Engine) SetAlive(up bool) {
	e.mu.Lock()
	e.alive = up
	e.mu.Unlock()
}

// Alive reports whether the engine participates in optimization.
func (e *Engine) Alive() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.alive
}

// PutOptions carries optional write parameters.
type PutOptions struct {
	MIME string
	// TTLHours is the user's lifetime hint (§III-A: "an indication of the
	// object lifetime may be provided by the end user at write time").
	TTLHours float64
	// Rule overrides rule resolution for this object.
	Rule *core.Rule
	// IfMatch, when non-empty, makes the write conditional: it succeeds
	// only if the stored version's ETag equals IfMatch ("*" matches any
	// existing version). A mismatch fails with ErrPreconditionFailed.
	IfMatch string
	// IfAbsent makes the write create-only: it fails with
	// ErrPreconditionFailed when a live version already exists.
	IfAbsent bool
}

// objectName joins container and key into the statistics identity.
func objectName(container, key string) string { return container + "/" + key }

// Put stores (or updates) an object from an in-memory payload. It is a
// thin compatibility wrapper over PutReader.
func (e *Engine) Put(ctx context.Context, container, key string, data []byte, opts PutOptions) (ObjectMeta, error) {
	return e.PutReader(ctx, container, key, bytes.NewReader(data), int64(len(data)), opts)
}

// PutReader stores (or updates) an object streamed from r: it picks the
// best provider set for the object's class and rule, splits the body
// into stripes of at most the deployment's stripe size, erasure-codes
// each stripe into chunks written under a fresh UUID-derived storage
// key, records metadata via MVCC, invalidates caches and logs
// statistics (§III-D1). The body is never materialized whole: at most
// one stripe is buffered at a time, so arbitrarily large objects stream
// through in constant memory. size must be the exact body length.
// Cancelling ctx aborts the in-flight chunk fan-out and rolls back the
// chunks already written.
func (e *Engine) PutReader(ctx context.Context, container, key string, r io.Reader, size int64, opts PutOptions) (ObjectMeta, error) {
	if container == "" || key == "" {
		return ObjectMeta{}, fmt.Errorf("%w: container and key are required", ErrInvalidArgument)
	}
	if size < 0 {
		return ObjectMeta{}, fmt.Errorf("%w: object size must be declared up front", ErrInvalidArgument)
	}
	class := stats.ClassKey(opts.MIME, size)
	rule := e.b.rules.Resolve(container, key, class)
	if opts.Rule != nil {
		rule = *opts.Rule
		if err := rule.Validate(); err != nil {
			return ObjectMeta{}, err
		}
	}
	obj := objectName(container, key)
	now := e.b.clock.Period()

	tr := obs.TraceFrom(ctx)
	load := e.writeLoad(obj, class, size)
	planStart := time.Now()
	res, err := e.placeWithRetry(rule, load, size)
	if err != nil {
		return ObjectMeta{}, err
	}
	e.b.observeStage(tr, "plan", planStart)

	// Fast-fail the precondition before any chunk traffic; the
	// authoritative check repeats under the row lock at commit time.
	row := RowKey(container, key)
	prev, losers := e.currentVersion(row)
	e.cleanupVersions(losers)
	if err := checkWriteConditions(opts, prev); err != nil {
		return ObjectMeta{}, err
	}

	uuid := NewUUID()
	meta := ObjectMeta{
		Container:   container,
		Key:         key,
		MIME:        opts.MIME,
		Size:        size,
		RuleName:    rule.Name,
		Class:       class,
		SKey:        StorageKey(container, key, uuid),
		M:           res.Placement.M,
		UUID:        uuid,
		TTLHours:    opts.TTLHours,
		CreatedAt:   now,
		Stripes:     stripeCount(size, e.b.cfg.StripeBytes),
		StripeBytes: e.b.cfg.StripeBytes,
	}
	if err := e.writeChunksStream(ctx, &meta, res.Placement, r); err != nil {
		return ObjectMeta{}, err
	}

	// Commit under the row lock — one batched metadata commit per
	// object, no matter how many stripes streamed through above.
	commitStart := time.Now()
	prev, err = e.commitObject(&meta, opts)
	e.b.observeStage(tr, "commit", commitStart)
	if err != nil {
		return ObjectMeta{}, err
	}

	// Update is in place: discard the superseded version's chunks and
	// cached stripes (outside the lock — chunk deletion may hit remote
	// providers). Cache keys are versioned, so the new version can
	// never hit a stale entry even before this invalidation lands; the
	// eager purge just frees the space.
	if prev != nil {
		e.deleteChunks(*prev)
		e.invalidateCached(*prev)
	}
	e.b.setPlacement(obj, res.Placement)
	e.agent.Log(stats.Event{
		Object: obj, Class: class, Kind: stats.EventWrite,
		Bytes: size, StorageBytes: size, Period: now,
	})
	return meta, nil
}

// commitObject publishes meta as its row's live version under the row
// lock: the stored version is re-read and the write preconditions
// re-checked inside the lock, so two concurrent conditional writes
// cannot both pass the check-then-act window. The body transfer runs
// unlocked; only this metadata commit serializes. On success the
// superseded version (nil if none) is returned for the caller to clean
// up; on failure meta's staged chunks are rolled back — except after a
// listing-index failure, where the object itself committed and the
// chunks must survive.
func (e *Engine) commitObject(meta *ObjectMeta, opts PutOptions) (*ObjectMeta, error) {
	row := RowKey(meta.Container, meta.Key)
	lk := e.b.rowLock(row)
	lk.Lock()
	prev, losers := e.currentVersion(row)
	if err := checkWriteConditions(opts, prev); err != nil {
		lk.Unlock()
		e.deleteChunks(*meta) // the loser's chunks, staged above
		e.cleanupVersions(losers)
		return nil, err
	}
	if prev != nil {
		meta.CreatedAt = prev.CreatedAt
	}
	ts := e.b.clock.Timestamp()
	version, err := encodeMeta(*meta, ts)
	if err != nil {
		lk.Unlock()
		e.deleteChunks(*meta) // commit never happened; reclaim the chunks
		return nil, err
	}
	if err := e.b.meta.Put(e.dc, row, version); err != nil {
		lk.Unlock()
		e.deleteChunks(*meta)
		return nil, fmt.Errorf("engine: metadata write: %w", err)
	}
	if err := e.b.writeIndex(e.dc, meta.Container, meta.Key, meta.UUID, ts); err != nil {
		// The object itself committed; only the listing entry failed.
		// Keep the chunks — deleting them now would corrupt a readable
		// object.
		lk.Unlock()
		return nil, err
	}
	lk.Unlock()
	e.cleanupVersions(losers)
	return prev, nil
}

// currentVersion reads a row's live version. Conflict losers are
// returned for the caller to clean up outside any row lock (their
// chunk deletions may hit remote providers).
func (e *Engine) currentVersion(row string) (prev *ObjectMeta, losers []metadata.Version) {
	node := e.b.meta.Store(e.dc)
	v, losers, err := node.Get(row)
	if err != nil {
		return nil, nil
	}
	if m, err := decodeMeta(v); err == nil {
		prev = &m
	}
	return prev, losers
}

// checkWriteConditions evaluates a write's If-Match / create-only
// preconditions against the stored version (nil = absent).
func checkWriteConditions(opts PutOptions, prev *ObjectMeta) error {
	if opts.IfAbsent && prev != nil {
		return fmt.Errorf("%w: object already exists", ErrPreconditionFailed)
	}
	return checkPrecondition(opts.IfMatch, prev)
}

// checkPrecondition evaluates an If-Match condition against the stored
// version (nil = absent).
func checkPrecondition(ifMatch string, prev *ObjectMeta) error {
	if ifMatch == "" {
		return nil
	}
	if prev == nil {
		return fmt.Errorf("%w: no stored version to match", ErrPreconditionFailed)
	}
	if ifMatch != "*" && ifMatch != prev.ETag() && ifMatch != prev.Checksum {
		return fmt.Errorf("%w: stored version is %s", ErrPreconditionFailed, prev.ETag())
	}
	return nil
}

// stripeCount returns how many stripes an object of the given size
// occupies under the configured stripe size (at least 1).
func stripeCount(size, stripeBytes int64) int {
	if stripeBytes <= 0 || size <= stripeBytes {
		return 1
	}
	return int((size + stripeBytes - 1) / stripeBytes)
}

// writeLoad builds the pricing summary for a write: the object's own
// history when present, otherwise the class expectation (Fig. 6),
// otherwise just this write.
func (e *Engine) writeLoad(obj, class string, size int64) stats.Summary {
	if h := e.b.statsDB.History(obj); h != nil && h.Len() > 0 {
		now := e.b.clock.Period()
		d := e.decisionWindow(obj, now)
		sum := h.Summary(now, d)
		sum.StorageBytes = float64(size)
		return sum
	}
	if rec, ok := e.b.statsDB.Classes().Lookup(class); ok {
		if sum, ok := rec.ExpectedSummary(); ok {
			sum.StorageBytes = float64(size)
			return sum
		}
	}
	return stats.Summary{
		Periods: 1, Writes: 1,
		BytesIn: float64(size), StorageBytes: float64(size),
	}
}

// placeWithRetry plans the placement through the broker's shared
// planner, excluding providers that fail mid-write ("Scalia will choose
// the best placement that does not include the faulty provider",
// §III-D3). The common case is a single planner hit; a provider found
// unreachable after the decision (including one whose outage was
// injected directly on the backend, bypassing the registry's market
// epoch) drops to an ad-hoc search over the reduced market. The retry
// loop is bounded by the provider count.
func (e *Engine) placeWithRetry(rule core.Rule, load stats.Summary, size int64) (core.Result, error) {
	epoch, specs, free := e.b.market()
	planned := true
	for len(specs) > 0 {
		var res core.Result
		var err error
		if planned {
			res, err = e.b.planner.Best(epoch, specs, rule, load, size, free)
		} else {
			res, err = core.BestPlacement(specs, rule, load, core.Options{
				PeriodHours: e.b.cfg.PeriodHours,
				Pruned:      e.b.cfg.Pruned,
				FreeBytes:   free,
				ObjectBytes: size,
			})
		}
		if err != nil {
			return core.Result{}, err
		}
		// Verify reachability now (a provider may have gone down between
		// the snapshot and the placement decision).
		ok := true
		for _, spec := range res.Placement.Providers {
			if s, found := e.b.registry.Store(spec.Name); !found || !s.Available() {
				specs = removeSpec(specs, spec.Name)
				planned = false
				ok = false
				break
			}
		}
		if ok {
			return res, nil
		}
	}
	return core.Result{}, core.ErrNoProviders
}

// removeSpec returns specs without the named provider. It copies: the
// input may be the registry's shared market snapshot.
func removeSpec(specs []cloud.Spec, name string) []cloud.Spec {
	out := make([]cloud.Spec, 0, len(specs))
	for _, s := range specs {
		if s.Name != name {
			out = append(out, s)
		}
	}
	return out
}

// Get serves an object fully buffered: stripes come from the stripe
// cache where present, otherwise they are reconstructed from the m
// cheapest reachable chunks, cached, and the read is logged (§III-D2).
// It is a thin wrapper over GetReader.
func (e *Engine) Get(ctx context.Context, container, key string) ([]byte, ObjectMeta, error) {
	rc, meta, err := e.GetReader(ctx, container, key)
	if err != nil {
		return nil, ObjectMeta{}, err
	}
	defer rc.Close()
	data, err := io.ReadAll(rc)
	if err != nil {
		return nil, ObjectMeta{}, err
	}
	return data, meta, nil
}

// GetReader serves an object as a stream. Each stripe is consulted in
// the stripe-granular cache first; missing stripes are fetched from the
// m cheapest reachable providers with a bounded parallel chunk fan-out
// and decoded, and the stream is pipelined: while one stripe drains to
// the caller, the next ones prefetch in the background
// (Config.ReadParallelism / Config.PrefetchStripes). The first stripe
// is produced eagerly so placement and availability errors surface on
// the call itself rather than mid-stream; the content checksum is
// verified as the last stripe drains (on fully provider-fetched
// streams). Cancelling ctx tears down the prefetcher and all in-flight
// chunk fetches.
func (e *Engine) GetReader(ctx context.Context, container, key string) (io.ReadCloser, ObjectMeta, error) {
	meta, err := e.headMeta(container, key)
	if err != nil {
		return nil, ObjectMeta{}, err
	}
	// The read event is logged by the reader itself once the stream
	// completes (or with the bytes actually delivered, on early Close),
	// so aborted downloads do not inflate the statistics that drive
	// placement.
	or, err := e.openObjectReader(ctx, meta, true)
	if err != nil {
		return nil, ObjectMeta{}, err
	}
	return or, meta, nil
}

// GetRangeReader serves the byte range [offset, offset+length) of an
// object as a stream. The range maps onto whole stripes: only the
// stripes it overlaps are consulted in the cache or fetched, so a
// ranged read of a huge object touches a handful of stripes instead of
// all of them. length is clamped to the object end; length -1 means
// "to the object end" (matching the remote client's GetRange). A range
// starting at or past the object end fails with ErrRangeNotSatisfiable.
func (e *Engine) GetRangeReader(ctx context.Context, container, key string, offset, length int64) (io.ReadCloser, ObjectMeta, error) {
	if offset < 0 || length == 0 || length < -1 {
		return nil, ObjectMeta{}, fmt.Errorf("%w: range offset %d length %d", ErrInvalidArgument, offset, length)
	}
	meta, err := e.headMeta(container, key)
	if err != nil {
		return nil, ObjectMeta{}, err
	}
	if offset >= meta.Size {
		return nil, ObjectMeta{}, fmt.Errorf("%w: offset %d of %d-byte object",
			ErrRangeNotSatisfiable, offset, meta.Size)
	}
	if rest := meta.Size - offset; length < 0 || length > rest {
		length = rest
	}
	span := meta.stripeSpan()
	start := int(offset / span)
	end := int((offset + length - 1) / span)
	or, err := e.openObjectRange(ctx, meta, start, end, true)
	if err != nil {
		return nil, ObjectMeta{}, err
	}
	// Discard the lead-in of the first stripe — the eager open already
	// decoded it — and keep it out of the read statistics: only bytes
	// the client can actually receive drive placement.
	or.cur = or.cur[offset-int64(start)*span:]
	or.fetched = int64(len(or.cur))
	return &rangeReader{or: or, remaining: length}, meta, nil
}

// headMeta resolves an object's live metadata from the engine's
// datacenter node, garbage-collecting MVCC conflict losers on the way.
func (e *Engine) headMeta(container, key string) (ObjectMeta, error) {
	node := e.b.meta.Store(e.dc)
	v, losers, err := node.Get(RowKey(container, key))
	if err != nil {
		if errors.Is(err, metadata.ErrRowNotFound) {
			return ObjectMeta{}, ErrObjectNotFound
		}
		return ObjectMeta{}, err
	}
	e.cleanupVersions(losers)
	return decodeMeta(v)
}

// Delete removes an object: tombstones its metadata, deletes chunks
// (postponing those at faulty providers), invalidates caches and logs
// the deletion for lifetime statistics. A non-empty ifMatch in opts
// makes the delete conditional on the stored ETag.
func (e *Engine) Delete(ctx context.Context, container, key string) error {
	return e.DeleteIf(ctx, container, key, "")
}

// DeleteIf is Delete with an optional If-Match precondition ("" = none).
// The precondition check and the tombstone write run under the row
// lock, so a concurrent conditional write cannot slip between them.
func (e *Engine) DeleteIf(ctx context.Context, container, key, ifMatch string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	obj := objectName(container, key)
	row := RowKey(container, key)

	lk := e.b.rowLock(row)
	lk.Lock()
	prev, losers := e.currentVersion(row)
	if prev == nil {
		lk.Unlock()
		e.cleanupVersions(losers)
		return ErrObjectNotFound
	}
	if err := checkPrecondition(ifMatch, prev); err != nil {
		lk.Unlock()
		e.cleanupVersions(losers)
		return err
	}
	ts := e.b.clock.Timestamp()
	if err := e.b.meta.Put(e.dc, row, metadata.Version{
		UUID: NewUUID(), Timestamp: ts, Deleted: true,
	}); err != nil {
		lk.Unlock()
		return err
	}
	if err := e.b.removeIndex(e.dc, container, key, NewUUID(), ts); err != nil {
		lk.Unlock()
		return err
	}
	lk.Unlock()
	e.cleanupVersions(losers)
	meta := *prev
	e.deleteChunks(meta)
	e.invalidateCached(meta)
	e.b.dropPlacement(obj)
	e.agent.Log(stats.Event{
		Object: obj, Class: meta.Class, Kind: stats.EventDelete,
		StorageBytes: 0, Period: e.b.clock.Period(),
	})
	return nil
}

// List returns the keys stored in a container, sorted.
func (e *Engine) List(ctx context.Context, container string) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return e.b.listContainer(e.dc, container)
}

// Head returns an object's metadata without transferring the payload.
func (e *Engine) Head(ctx context.Context, container, key string) (ObjectMeta, error) {
	if err := ctx.Err(); err != nil {
		return ObjectMeta{}, err
	}
	return e.headMeta(container, key)
}

// deleteChunks removes every chunk of every stripe of a version,
// postponing deletions at unreachable providers.
func (e *Engine) deleteChunks(meta ObjectMeta) {
	for s := 0; s < meta.StripeCount(); s++ {
		for i, name := range meta.Chunks {
			e.deleteChunkAt(name, meta.chunkKey(s, i))
		}
	}
}

// deleteChunkAt removes one chunk. Chunk deletion is cleanup that must
// survive request cancellation, so it runs on a background context.
func (e *Engine) deleteChunkAt(provider, chunkKey string) {
	store, ok := e.b.registry.Store(provider)
	if !ok {
		return // provider gone; chunks die with it
	}
	t0 := time.Now()
	err := store.Delete(context.Background(), chunkKey)
	e.b.observeProviderOp(provider, "delete", t0, err)
	if err != nil {
		if errors.Is(err, cloud.ErrUnavailable) {
			e.b.enqueuePendingDelete(provider, chunkKey)
		}
		// Missing chunks are already gone; nothing to do.
	}
}

// cleanupVersions garbage-collects MVCC conflict losers: their chunks
// are removed from the storage providers and their stripes from the
// caches (Fig. 10).
func (e *Engine) cleanupVersions(losers []metadata.Version) {
	for _, v := range losers {
		if v.Deleted {
			continue
		}
		if m, err := decodeMeta(v); err == nil {
			e.deleteChunks(m)
			e.invalidateCached(m)
		}
	}
}

// invalidateCached drops a version's stripes from every datacenter's
// cache.
func (e *Engine) invalidateCached(meta ObjectMeta) {
	e.b.caches.InvalidateAll(stripeCacheID(objectName(meta.Container, meta.Key), meta.UUID))
}

// decisionWindow returns the object's current decision period D_obj.
func (e *Engine) decisionWindow(obj string, now int64) int {
	e.b.mu.Lock()
	defer e.b.mu.Unlock()
	if dc, ok := e.b.decisions[obj]; ok {
		return dc.D()
	}
	return e.b.cfg.DecisionPeriod
}
