package metadata

import (
	"errors"
	"sort"
	"sync"
)

// Version is one MVCC version of a row, as in the paper's Fig. 10: the
// row key maps to one or more versions keyed by UUID, each carrying a
// timestamp used for freshest-wins conflict resolution. Columns hold the
// file metadata and striping metadata (Fig. 11) as opaque strings.
type Version struct {
	UUID      string
	Timestamp int64 // engines are NTP-synchronized; ties break on UUID
	Clock     VectorClock
	Columns   map[string]string
	Deleted   bool // tombstone
}

// Clone returns a deep copy of the version.
func (v Version) Clone() Version {
	out := v
	out.Clock = v.Clock.Clone()
	out.Columns = make(map[string]string, len(v.Columns))
	for k, c := range v.Columns {
		out.Columns[k] = c
	}
	return out
}

// Newer reports whether v wins conflict resolution against other
// (freshest timestamp, UUID as the deterministic tie-break).
func (v Version) Newer(other Version) bool {
	if v.Timestamp != other.Timestamp {
		return v.Timestamp > other.Timestamp
	}
	return v.UUID > other.UUID
}

// Store errors.
var (
	ErrRowNotFound = errors.New("metadata: row not found")
	ErrNodeDown    = errors.New("metadata: database node is down")
)

// Store is a single datacenter's database node. Rows hold every
// non-superseded version; concurrent versions coexist until resolved.
// It is safe for concurrent use by many engines.
type Store struct {
	node string

	mu   sync.RWMutex
	rows map[string][]Version
	down bool
	seq  uint64
}

// NewStore returns an empty node named node (e.g. "dc1").
func NewStore(node string) *Store {
	return &Store{node: node, rows: make(map[string][]Version)}
}

// Node returns the node identifier.
func (s *Store) Node() string { return s.node }

// SetAvailable injects or clears a node outage.
func (s *Store) SetAvailable(up bool) {
	s.mu.Lock()
	s.down = !up
	s.mu.Unlock()
}

// Available reports whether the node accepts requests.
func (s *Store) Available() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return !s.down
}

// Put writes a new version of row. The version's clock is advanced with
// this node's counter (merged over the row's current heads so causally
// later writes dominate earlier ones seen here).
func (s *Store) Put(row string, v Version) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.down {
		return ErrNodeDown
	}
	v = v.Clone()
	if v.Clock == nil {
		v.Clock = VectorClock{}
	}
	for _, head := range s.rows[row] {
		v.Clock.Merge(head.Clock)
	}
	s.seq++
	v.Clock.Tick(s.node)
	s.insertLocked(row, v)
	return nil
}

// insertLocked merges v into the row's version set, dropping any version
// v dominates and ignoring v if dominated.
func (s *Store) insertLocked(row string, v Version) {
	heads := s.rows[row][:0]
	for _, head := range s.rows[row] {
		switch head.Clock.Compare(v.Clock) {
		case After, Equal:
			// Existing version dominates the incoming one: keep the set.
			s.rows[row] = append(heads, s.rows[row][len(heads):]...)
			return
		case Before:
			// Incoming dominates: drop this head.
		case Concurrent:
			heads = append(heads, head)
		}
	}
	s.rows[row] = append(heads, v)
}

// merge applies a replicated version without ticking the local clock.
func (s *Store) merge(row string, v Version) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.down {
		return ErrNodeDown
	}
	s.insertLocked(row, v.Clone())
	return nil
}

// Heads returns all current (mutually concurrent) versions of a row,
// newest first. A single head means no conflict. Tombstoned rows with a
// single deleted head report ErrRowNotFound.
func (s *Store) Heads(row string) ([]Version, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.down {
		return nil, ErrNodeDown
	}
	heads := s.rows[row]
	if len(heads) == 0 {
		return nil, ErrRowNotFound
	}
	out := make([]Version, len(heads))
	for i, h := range heads {
		out[i] = h.Clone()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Newer(out[j]) })
	if out[0].Deleted {
		return nil, ErrRowNotFound
	}
	return out, nil
}

// Get returns the winning version of a row, resolving any conflict by
// freshest timestamp, plus the deprecated versions the caller must
// garbage-collect (delete chunks at providers and drop statistics; the
// paper's Fig. 10 procedure). The losing versions are removed.
func (s *Store) Get(row string) (Version, []Version, error) {
	heads, err := s.Heads(row)
	if err != nil {
		return Version{}, nil, err
	}
	if len(heads) == 1 {
		return heads[0], nil, nil
	}
	winner := heads[0]
	losers := heads[1:]
	// Collapse the row to the winner; its clock absorbs the losers' so
	// replication converges.
	s.mu.Lock()
	if !s.down {
		merged := winner.Clone()
		for _, l := range losers {
			merged.Clock.Merge(l.Clock)
		}
		merged.Clock.Tick(s.node)
		s.rows[row] = []Version{merged}
		winner = merged
	}
	s.mu.Unlock()
	return winner, losers, nil
}

// Delete writes a tombstone version for the row.
func (s *Store) Delete(row string, uuid string, timestamp int64) error {
	return s.Put(row, Version{UUID: uuid, Timestamp: timestamp, Deleted: true})
}

// Purge physically removes a row (after chunk cleanup completes).
func (s *Store) Purge(row string) {
	s.mu.Lock()
	delete(s.rows, row)
	s.mu.Unlock()
}

// Rows returns all row keys with at least one live (non-tombstone)
// head, sorted.
func (s *Store) Rows() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.rows))
	for row, heads := range s.rows {
		live := false
		for _, h := range heads {
			if !h.Deleted {
				live = true
				break
			}
		}
		if live {
			out = append(out, row)
		}
	}
	sort.Strings(out)
	return out
}

// Len returns the number of rows (including tombstoned ones).
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.rows)
}

// dump snapshots every version of every row for anti-entropy exchange.
func (s *Store) dump() map[string][]Version {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string][]Version, len(s.rows))
	for row, heads := range s.rows {
		vs := make([]Version, len(heads))
		for i, h := range heads {
			vs[i] = h.Clone()
		}
		out[row] = vs
	}
	return out
}
