package client_test

import (
	"errors"
	"testing"

	"scalia"
)

// TestClientAsyncJobs drives the jobs API end to end over the wire:
// dispatch returns a registered job, WaitForJob polls it to a terminal
// state with the report attached, the listing pages dispatched jobs in
// creation order, and unknown IDs surface the not-found sentinel.
func TestClientAsyncJobs(t *testing.T) {
	_, c := newRemote(t, scalia.Options{})

	if _, err := c.Put(ctx, "c", "k", []byte("async")); err != nil {
		t.Fatal(err)
	}

	job, err := c.StartRepair(ctx, scalia.RepairActive)
	if err != nil {
		t.Fatal(err)
	}
	if job.ID == "" || job.Kind != scalia.JobRepair || job.Policy != "active" {
		t.Fatalf("dispatched job = %+v", job)
	}
	job, err = c.WaitForJob(ctx, job.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	// All providers are healthy, so the indexed pass enumerates nothing.
	if job.State != scalia.JobDone || job.Repair == nil || job.Repair.Checked != 0 {
		t.Fatalf("finished repair job = %+v", job)
	}

	job2, err := c.StartOptimize(ctx)
	if err != nil {
		t.Fatal(err)
	}
	job2, err = c.WaitForJob(ctx, job2.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if job2.State != scalia.JobDone || job2.Optimize == nil || job2.Optimize.Leader == "" {
		t.Fatalf("finished optimize job = %+v", job2)
	}

	// Both dispatched jobs page back in creation order.
	page, err := c.Jobs(ctx, "", "", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Jobs) != 1 || page.Jobs[0].ID != job.ID || !page.Truncated {
		t.Fatalf("first page = %+v", page)
	}
	page, err = c.Jobs(ctx, "", page.Next, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Jobs) != 1 || page.Jobs[0].ID != job2.ID || page.Truncated {
		t.Fatalf("second page = %+v", page)
	}

	if _, err := c.Job(ctx, "j99999999"); !errors.Is(err, scalia.ErrObjectNotFound) {
		t.Fatalf("unknown job = %v, want not-found sentinel", err)
	}
}
