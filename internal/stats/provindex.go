package stats

import (
	"sort"
	"sync"
)

// ProviderIndex is the provider→objects inverted index behind
// O(affected) maintenance: instead of scanning every known object after
// a market event, repair and reoptimization enumerate only the objects
// that actually hold a chunk on the affected provider. The index is
// maintained on every placement commit (Put, multipart complete,
// migrate, repair swap/restripe) and teardown (Delete), so it always
// mirrors the committed metadata.
//
// It is safe for concurrent use: commits happen under per-row engine
// locks but from many engines at once, while maintenance passes read it
// concurrently.
type ProviderIndex struct {
	mu sync.RWMutex
	// byProvider maps provider name -> set of objects with >=1 chunk
	// there.
	byProvider map[string]map[string]struct{}
	// byObject maps object -> the provider set it was last committed
	// with, so re-placement (migrate, repair) can diff out stale entries
	// without a full index walk.
	byObject map[string][]string
}

// NewProviderIndex returns an empty index.
func NewProviderIndex() *ProviderIndex {
	return &ProviderIndex{
		byProvider: make(map[string]map[string]struct{}),
		byObject:   make(map[string][]string),
	}
}

// Set records that object is now placed on exactly the given providers,
// replacing any previous placement. Provider names may repeat (an
// object can hold several chunks at one provider); duplicates collapse.
func (ix *ProviderIndex) Set(object string, providers []string) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	// Diff out the old placement first.
	for _, p := range ix.byObject[object] {
		if set, ok := ix.byProvider[p]; ok {
			delete(set, object)
			if len(set) == 0 {
				delete(ix.byProvider, p)
			}
		}
	}
	dedup := make([]string, 0, len(providers))
	seen := make(map[string]struct{}, len(providers))
	for _, p := range providers {
		if _, dup := seen[p]; dup || p == "" {
			continue
		}
		seen[p] = struct{}{}
		dedup = append(dedup, p)
		set, ok := ix.byProvider[p]
		if !ok {
			set = make(map[string]struct{})
			ix.byProvider[p] = set
		}
		set[object] = struct{}{}
	}
	if len(dedup) == 0 {
		delete(ix.byObject, object)
		return
	}
	ix.byObject[object] = dedup
}

// Drop removes an object from the index (object deleted).
func (ix *ProviderIndex) Drop(object string) {
	ix.Set(object, nil)
}

// Objects returns the sorted objects holding at least one chunk on the
// named provider.
func (ix *ProviderIndex) Objects(provider string) []string {
	ix.mu.RLock()
	set := ix.byProvider[provider]
	out := make([]string, 0, len(set))
	for obj := range set {
		out = append(out, obj)
	}
	ix.mu.RUnlock()
	sort.Strings(out)
	return out
}

// ObjectsOn returns the sorted union of objects holding chunks on any
// of the named providers — the affected set of a multi-provider event.
func (ix *ProviderIndex) ObjectsOn(providers []string) []string {
	union := make(map[string]struct{})
	ix.mu.RLock()
	for _, p := range providers {
		for obj := range ix.byProvider[p] {
			union[obj] = struct{}{}
		}
	}
	ix.mu.RUnlock()
	out := make([]string, 0, len(union))
	for obj := range union {
		out = append(out, obj)
	}
	sort.Strings(out)
	return out
}

// Providers returns the providers of one object as last committed
// (unsorted, in commit order), or nil if unknown.
func (ix *ProviderIndex) Providers(object string) []string {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	ps := ix.byObject[object]
	if ps == nil {
		return nil
	}
	out := make([]string, len(ps))
	copy(out, ps)
	return out
}

// Count returns the number of objects indexed on the named provider
// without materializing the key list.
func (ix *ProviderIndex) Count(provider string) int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.byProvider[provider])
}

// Len returns the number of indexed objects.
func (ix *ProviderIndex) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.byObject)
}

// ProviderNames returns every provider currently carrying at least one
// indexed object, sorted — including providers since deregistered from
// the market, which is exactly the set repair must consider.
func (ix *ProviderIndex) ProviderNames() []string {
	ix.mu.RLock()
	out := make([]string, 0, len(ix.byProvider))
	for p := range ix.byProvider {
		out = append(out, p)
	}
	ix.mu.RUnlock()
	sort.Strings(out)
	return out
}
