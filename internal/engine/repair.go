package engine

import (
	"context"
	"crypto/md5"
	"encoding/hex"
	"fmt"
	"sync"
	"time"

	"scalia/internal/cloud"
	"scalia/internal/core"
	"scalia/internal/erasure"
	"scalia/internal/obs"
	"scalia/internal/stats"
)

// This file is the production repair path (§IV-E). A repair pass scans
// for objects with chunks at unreachable providers and, under the
// active policy, fixes each one the cheapest way the market allows:
//
//  1. chunk swap — when a same-(m,n) replacement set is feasible, m
//     surviving chunks are read, ONLY the missing chunks are re-encoded
//     and written to the swap targets, and the metadata is updated in
//     place ("only the faulty chunk needs to be written, which
//     corresponds to the cheapest case");
//  2. re-stripe — otherwise the object is fully re-placed through the
//     planner and migrated, rewriting every chunk.
//
// Swap plans come from core.Planner.Repair — the same entry point the
// cost simulator uses — so simulated and production repair decisions
// provably agree.

// RepairReport summarizes an active-repair pass (§IV-E).
type RepairReport struct {
	Checked  int
	Affected int // objects with chunks at unreachable providers
	Repaired int
	Waited   int // objects left for the provider to recover (wait policy)
	// Swapped and Restriped split Repaired by mechanism: same-(m,n)
	// chunk swaps versus full re-placements.
	Swapped   int
	Restriped int
	// Skipped counts active-policy objects left unrepaired: no feasible
	// plan on the current market, or the repair write failed.
	Skipped int
	// ChunksWritten and BytesWritten total the replacement chunks the
	// pass wrote — a swap writes only the missing chunks, a re-stripe
	// all n of every stripe.
	ChunksWritten int
	BytesWritten  int64
}

// RepairPolicy selects how to treat chunks at failed providers.
type RepairPolicy int

// Repair policies: wait for recovery, or actively move chunks.
const (
	RepairWait RepairPolicy = iota
	RepairActive
)

// RepairTotals accumulates repair activity over the broker's lifetime;
// the gateway surfaces it on GET /v1/stats.
type RepairTotals struct {
	Passes        int   `json:"passes"`
	Repaired      int   `json:"repaired"`
	Swapped       int   `json:"swapped"`
	Restriped     int   `json:"restriped"`
	Skipped       int   `json:"skipped"`
	ChunksWritten int   `json:"chunksWritten"`
	BytesWritten  int64 `json:"bytesWritten"`
}

// RepairTotals returns the cumulative repair counters.
func (b *Broker) RepairTotals() RepairTotals {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.repairTotals
}

// recordRepair folds one pass's report into the lifetime totals.
func (b *Broker) recordRepair(rep RepairReport) {
	b.mu.Lock()
	b.repairTotals.Passes++
	b.repairTotals.Repaired += rep.Repaired
	b.repairTotals.Swapped += rep.Swapped
	b.repairTotals.Restriped += rep.Restriped
	b.repairTotals.Skipped += rep.Skipped
	b.repairTotals.ChunksWritten += rep.ChunksWritten
	b.repairTotals.BytesWritten += rep.BytesWritten
	b.mu.Unlock()
}

// Repair applies the policy to objects with chunks at unreachable
// providers. The candidate set is enumerated through the provider→
// objects inverted index — only objects holding a chunk on an
// unreachable (or deregistered) provider are examined, so a
// single-provider outage costs O(affected), not O(store). Under
// RepairActive each affected object is repaired by the cheapest
// feasible mechanism — chunk swap first, full re-placement as the
// fallback. Like Optimize, the scan is sharded across all alive engines
// and runs in parallel.
func (b *Broker) Repair(ctx context.Context, policy RepairPolicy) (RepairReport, error) {
	affected := b.provIndex.ObjectsOn(b.unreachableProviders())
	b.metrics.repairIndexed.Add(int64(len(affected)))
	return b.repairScan(ctx, policy, affected)
}

// RepairFullScan is the pre-index repair pass: every known object is
// checked, whether or not any of its providers changed. Kept as the
// ablation baseline BenchmarkRepairAffected compares the indexed
// enumeration against.
func (b *Broker) RepairFullScan(ctx context.Context, policy RepairPolicy) (RepairReport, error) {
	return b.repairScan(ctx, policy, b.statsDB.Objects())
}

// unreachableProviders returns the indexed providers that are currently
// unregistered or unavailable — the providers whose objects a repair
// pass must examine. Cost is O(providers carrying data), not O(objects).
func (b *Broker) unreachableProviders() []string {
	var down []string
	for _, name := range b.provIndex.ProviderNames() {
		s, ok := b.registry.Store(name)
		if !ok || !s.Available() {
			down = append(down, name)
		}
	}
	return down
}

// repairScan runs one repair pass over the given candidate objects.
func (b *Broker) repairScan(ctx context.Context, policy RepairPolicy, objs []string) (RepairReport, error) {
	// One pass at a time: swap repairs reuse the live version's chunk
	// keys, so two concurrent passes planning the same deterministic
	// swap would race commit-vs-rollback on the same keys. (The commit
	// failure path additionally refuses to roll back chunks the live
	// version references — see commitSwap — but serializing the passes
	// keeps the race from arising at all.)
	b.repairMu.Lock()
	defer b.repairMu.Unlock()
	defer b.observeStage(obs.TraceFrom(ctx), "repair", time.Now())
	leader := b.electLeader()
	if leader == nil {
		return RepairReport{}, ErrNoLeader
	}
	b.FlushStats()
	now := b.clock.Period()

	alive := b.aliveEngines()
	shards := shardObjects(objs, len(alive))

	var report RepairReport
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i, e := range alive {
		if len(shards[i]) == 0 {
			continue
		}
		wg.Add(1)
		go func(e *Engine, objs []string) {
			defer wg.Done()
			local := e.repairShard(ctx, objs, policy, now)
			mu.Lock()
			report.Checked += local.Checked
			report.Affected += local.Affected
			report.Repaired += local.Repaired
			report.Waited += local.Waited
			report.Swapped += local.Swapped
			report.Restriped += local.Restriped
			report.Skipped += local.Skipped
			report.ChunksWritten += local.ChunksWritten
			report.BytesWritten += local.BytesWritten
			mu.Unlock()
		}(e, shards[i])
	}
	wg.Wait()
	b.recordRepair(report)
	return report, ctx.Err()
}

// repairShard applies the repair policy to one engine's share of the
// object population.
func (e *Engine) repairShard(ctx context.Context, objs []string, policy RepairPolicy, now int64) (report RepairReport) {
	aliveFn := func(name string) bool {
		s, ok := e.b.registry.Store(name)
		return ok && s.Available()
	}
	// Prepared single-stripe swaps are batched per target provider so
	// many small objects repaired onto the same spare cost one provider
	// round-trip per batch. The deferred flush writes into the named
	// return value, so swaps still pending at loop exit are counted.
	batch := newSwapBatcher(e, e.b.cfg.SwapBatchSize)
	defer batch.flush(ctx, &report)
	for _, obj := range objs {
		if ctx.Err() != nil {
			break
		}
		noteProgress(ctx, 1)
		container, key, ok := splitObjectName(obj)
		if !ok {
			continue
		}
		meta, err := e.Head(ctx, container, key)
		if err != nil {
			continue
		}
		report.Checked++
		affected := false
		for _, name := range meta.Chunks {
			if !aliveFn(name) {
				affected = true
				break
			}
		}
		if !affected {
			continue
		}
		report.Affected++
		if policy == RepairWait {
			report.Waited++
			continue
		}
		rule := e.b.rules.Resolve(container, key, meta.Class)
		h := e.b.statsDB.History(obj)
		sum := stats.Summary{Periods: 1, StorageBytes: float64(meta.Size)}
		if h != nil {
			sum = h.Summary(now, e.decisionWindow(obj, now))
			sum.StorageBytes = float64(meta.Size)
		}
		// Plan through the shared planner — the same entry point the
		// simulator uses: a same-(m,n) swap when feasible, the best full
		// re-placement otherwise. ForceRestripeRepair (the benchmark
		// ablation) skips straight to the re-placement.
		var restripeTo core.Placement
		if !e.b.cfg.ForceRestripeRepair {
			epoch, specs, free := e.b.market()
			plan, perr := e.b.planner.Repair(epoch, specs, rule,
				e.placementFromChunks(meta), aliveFn, sum, meta.Size, free)
			if perr == nil && plan.Mode == core.RepairSwap {
				if batch.size > 1 && meta.StripeCount() == 1 {
					// Small object: prepare the replacement chunks now,
					// defer the provider writes to a per-provider batch.
					ps, serr := e.prepareSwap(ctx, meta, plan)
					if serr == nil {
						batch.add(ctx, ps, &report)
						continue
					}
					if ctx.Err() != nil {
						break
					}
					// Preparation failed (a survivor died mid-fetch, rot);
					// fall through to the full re-placement.
				} else {
					written, wbytes, serr := e.swapRepair(ctx, meta, plan)
					if serr == nil {
						e.b.setPlacement(obj, plan.Placement)
						report.Repaired++
						report.Swapped++
						report.ChunksWritten += written
						report.BytesWritten += wbytes
						continue
					}
					if ctx.Err() != nil {
						break
					}
					// The swap failed at execution (a target died
					// mid-write); fall through to the full re-placement.
				}
			} else if perr == nil && e.placementReachable(plan.Placement) {
				// Reuse the planner's re-stripe plan rather than running
				// the same search again; the reachability re-check mirrors
				// placeWithRetry's.
				restripeTo = plan.Placement
			}
		}
		if restripeTo.N() == 0 {
			// placeWithRetry plans through the shared planner and
			// guarantees every chosen provider is reachable right now.
			res, err := e.placeWithRetry(rule, sum, meta.Size)
			if err != nil {
				report.Skipped++
				continue
			}
			restripeTo = res.Placement
		}
		if err := e.migrate(ctx, meta, restripeTo); err != nil {
			if ctx.Err() != nil {
				break
			}
			report.Skipped++
			continue
		}
		e.b.setPlacement(obj, restripeTo)
		report.Repaired++
		report.Restriped++
		chunks, wbytes := restripeWritten(meta, restripeTo)
		report.ChunksWritten += chunks
		report.BytesWritten += wbytes
	}
	return report
}

// placementReachable reports whether every provider of p is currently
// registered and available — the re-check placeWithRetry performs on
// freshly planned placements.
func (e *Engine) placementReachable(p core.Placement) bool {
	for _, spec := range p.Providers {
		s, ok := e.b.registry.Store(spec.Name)
		if !ok || !s.Available() {
			return false
		}
	}
	return true
}

// placementFromChunks rebuilds the slot-ordered placement from stored
// chunk locations: index i of the result is the provider holding chunk
// i, which is the alignment the swap planner and executor need (unlike
// the broker's placement cache, whose provider order is arbitrary).
// Providers that left the registry are represented by name alone; the
// alive predicate reports them dead and the planner replaces them.
func (e *Engine) placementFromChunks(meta ObjectMeta) core.Placement {
	p := core.Placement{M: meta.M, Providers: make([]cloud.Spec, len(meta.Chunks))}
	for i, name := range meta.Chunks {
		if s, ok := e.b.registry.Store(name); ok {
			p.Providers[i] = s.Spec()
		} else {
			p.Providers[i] = cloud.Spec{Name: name}
		}
	}
	return p
}

// restripeWritten accounts the chunk writes of a full re-placement:
// every stripe is re-encoded under the target (m, n) and all n chunks
// are written.
func restripeWritten(meta ObjectMeta, to core.Placement) (chunks int, bytes int64) {
	stripes := meta.StripeCount()
	chunks = stripes * to.N()
	for s := 0; s < stripes; s++ {
		c := (meta.stripeLen(s) + int64(to.M) - 1) / int64(to.M)
		if c == 0 {
			c = 1 // zero-length stripes still produce 1-byte chunks
		}
		bytes += c * int64(to.N())
	}
	return chunks, bytes
}

// swapRepair executes a chunk-swap repair plan: stripe by stripe it
// fetches m surviving chunks, reconstructs only the missing ones and
// writes them to the plan's replacement providers; then the metadata is
// updated in place under the row lock. The object version's identity
// (UUID, storage key, per-stripe MD5s) is preserved — chunk keys and
// cached stripes stay valid, and only the MVCC version advances — so
// concurrent readers are never cut off: pre-commit readers fall back
// from the dead provider to the survivors, post-commit readers find the
// replacement chunk already written. On any failure, including ctx
// cancellation mid-swap, every replacement chunk already written is
// rolled back and the old metadata stays live.
func (e *Engine) swapRepair(ctx context.Context, meta ObjectMeta, plan core.RepairPlan) (chunksWritten int, bytesWritten int64, err error) {
	n := len(meta.Chunks)
	if plan.Placement.N() != n || plan.Placement.M != meta.M || len(plan.Replaced) == 0 {
		return 0, 0, fmt.Errorf("engine: swap plan does not match the stored layout")
	}
	coder, err := erasure.Cached(meta.M, n)
	if err != nil {
		return 0, 0, err
	}
	replaced := make(map[int]bool, len(plan.Replaced))
	targets := make(map[int]cloud.Backend, len(plan.Replaced))
	for _, i := range plan.Replaced {
		if i < 0 || i >= n {
			return 0, 0, fmt.Errorf("engine: swap plan slot %d out of range", i)
		}
		name := plan.Placement.Providers[i].Name
		st, ok := e.b.registry.Store(name)
		if !ok || !st.Available() {
			return 0, 0, fmt.Errorf("%w: swap target %s", cloud.ErrUnavailable, name)
		}
		replaced[i] = true
		targets[i] = st
	}
	// The repair read follows the serving path's "m cheapest providers"
	// ranking, with the replaced slots excluded.
	order, err := e.rankChunks(meta, replaced)
	if err != nil {
		return 0, 0, err
	}

	// Stripes are independent — each one is fetched, reconstructed,
	// verified and written on its own — so the repair fans whole stripes
	// out over a bounded worker pool instead of serializing one provider
	// round-trip after another. The first failure cancels the rest and
	// rolls every written replacement chunk back.
	stripes := meta.StripeCount()
	swapCtx, cancelSwap := context.WithCancel(ctx)
	defer cancelSwap()
	workers := e.b.cfg.ReadParallelism
	if workers < 1 {
		workers = 1
	}
	if workers > stripes {
		workers = stripes
	}
	var (
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	sem := make(chan struct{}, workers)
	for s := 0; s < stripes; s++ {
		if swapCtx.Err() != nil {
			break
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			defer func() { <-sem }()
			wrote, err := e.repairStripe(swapCtx, meta, plan, coder, order, targets, s)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
					cancelSwap()
				}
				return
			}
			chunksWritten += len(plan.Replaced)
			bytesWritten += wrote
		}(s)
	}
	wg.Wait()
	if firstErr == nil {
		firstErr = ctx.Err()
	}
	if firstErr != nil {
		e.rollbackSwap(meta, plan, stripes, nil)
		return 0, 0, firstErr
	}

	if err := e.commitSwap(meta, plan, stripes); err != nil {
		return 0, 0, err
	}
	return chunksWritten, bytesWritten, nil
}

// commitSwap installs a completed chunk swap's metadata under the row
// lock, and only if the version repaired is still the live one: a
// client write or delete that landed while the replacement chunks were
// copying must win. On failure every replacement chunk of stripes
// [0, stripes) is rolled back; on success the dead providers' stale
// copies become postponed deletes (§III-D3).
func (e *Engine) commitSwap(meta ObjectMeta, plan core.RepairPlan, stripes int) error {
	row := RowKey(meta.Container, meta.Key)
	lk := e.b.rowLock(row)
	lk.Lock()
	cur, losers := e.currentVersion(row)
	if cur == nil || cur.UUID != meta.UUID || cur.SKey != meta.SKey || !sameChunks(cur.Chunks, meta.Chunks) {
		lk.Unlock()
		// Roll back only slots the live version does not reference: if a
		// concurrent pass committed the same swap (same version, same
		// chunk keys), deleting "our" replacement chunks would destroy
		// the chunks its metadata now points at.
		e.rollbackSwap(meta, plan, stripes, func(slot int) bool {
			return cur == nil || cur.UUID != meta.UUID || cur.SKey != meta.SKey ||
				cur.Chunks[slot] != plan.Placement.Providers[slot].Name
		})
		e.cleanupVersions(losers)
		return fmt.Errorf("engine: swap repair: object changed mid-repair")
	}
	newMeta := *cur
	newMeta.Chunks = append([]string(nil), cur.Chunks...)
	for _, i := range plan.Replaced {
		newMeta.Chunks[i] = plan.Placement.Providers[i].Name
	}
	ts := e.b.clock.Timestamp()
	version, err := encodeMeta(newMeta, ts)
	if err != nil {
		lk.Unlock()
		e.rollbackSwap(meta, plan, stripes, nil)
		return err
	}
	if err := e.b.meta.Put(e.dc, row, version); err != nil {
		lk.Unlock()
		e.rollbackSwap(meta, plan, stripes, nil)
		return fmt.Errorf("engine: swap repair metadata write: %w", err)
	}
	lk.Unlock()
	e.cleanupVersions(losers)
	// The dead providers' stale copies of the replaced chunks: deletion
	// is postponed until the provider recovers (§III-D3).
	for _, i := range plan.Replaced {
		for s := 0; s < stripes; s++ {
			e.deleteChunkAt(meta.Chunks[i], meta.chunkKey(s, i))
		}
	}
	return nil
}

// repairStripe repairs one stripe: fetch m surviving chunks, let the
// erasure coder reconstruct the missing slots, verify the stripe
// payload against its stored MD5 (a surviving provider serving rotted
// bytes must fail the repair, not propagate the rot into the
// replacement chunks), and write the replacement chunks to their
// targets. Returns the bytes written.
func (e *Engine) repairStripe(ctx context.Context, meta ObjectMeta, plan core.RepairPlan,
	coder *erasure.Coder, order []int, targets map[int]cloud.Backend, s int) (int64, error) {
	chunks, err := e.fetchRanked(ctx, meta, s, order, false)
	if err != nil {
		return 0, err
	}
	payload, err := coder.Decode(chunks, int(meta.stripeLen(s)))
	if err != nil {
		return 0, err
	}
	if want := meta.stripeSum(s); want != "" {
		got := md5.Sum(payload)
		if hex.EncodeToString(got[:]) != want {
			return 0, fmt.Errorf("%w: stripe %d during swap repair", ErrChecksum, s)
		}
	}
	if err := e.writeSwapChunks(ctx, meta, s, chunks, plan.Replaced, targets); err != nil {
		return 0, err
	}
	var wrote int64
	for _, i := range plan.Replaced {
		wrote += int64(len(chunks[i]))
	}
	return wrote, nil
}

// writeSwapChunks fans out one stripe's replacement chunks to their
// target providers concurrently. The first error (a target failure or
// ctx cancellation) is returned; the remaining writes run to completion
// so rollback sees a consistent picture.
func (e *Engine) writeSwapChunks(ctx context.Context, meta ObjectMeta, s int, chunks [][]byte, slots []int, targets map[int]cloud.Backend) error {
	var wg sync.WaitGroup
	errs := make([]error, len(slots))
	for j, i := range slots {
		wg.Add(1)
		go func(j, i int) {
			defer wg.Done()
			t0 := time.Now()
			err := targets[i].Put(ctx, meta.chunkKey(s, i), chunks[i])
			e.b.observeProviderOp(targets[i].Spec().Name, "put", t0, err)
			if err != nil {
				errs[j] = fmt.Errorf("engine: swap chunk write to %s: %w",
					targets[i].Spec().Name, err)
			}
		}(j, i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// rollbackSwap best-effort deletes the replacement chunks of stripes
// [0, upto) from the swap targets, limited to the slots safe reports
// true for (nil = all). Cleanup runs detached from the request context:
// a cancelled repair must still release the chunks it managed to write.
func (e *Engine) rollbackSwap(meta ObjectMeta, plan core.RepairPlan, upto int, safe func(slot int) bool) {
	for _, i := range plan.Replaced {
		if safe != nil && !safe(i) {
			continue
		}
		for s := 0; s < upto; s++ {
			e.deleteChunkAt(plan.Placement.Providers[i].Name, meta.chunkKey(s, i))
		}
	}
}

// sameChunks reports whether two chunk->provider maps are identical.
func sameChunks(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// --- batched swap writes ---

// pendingSwap is one single-stripe object's prepared chunk swap: the
// replacement chunks are reconstructed and verified but not yet written.
type pendingSwap struct {
	obj  string
	meta ObjectMeta
	plan core.RepairPlan
	// data holds the replacement chunk per replaced slot.
	data  map[int][]byte
	bytes int64
}

// prepareSwap reconstructs and verifies a single-stripe object's
// replacement chunks without writing them, so the writes can be batched
// with other objects repairing onto the same providers. Validation
// mirrors swapRepair's.
func (e *Engine) prepareSwap(ctx context.Context, meta ObjectMeta, plan core.RepairPlan) (*pendingSwap, error) {
	n := len(meta.Chunks)
	if plan.Placement.N() != n || plan.Placement.M != meta.M || len(plan.Replaced) == 0 {
		return nil, fmt.Errorf("engine: swap plan does not match the stored layout")
	}
	coder, err := erasure.Cached(meta.M, n)
	if err != nil {
		return nil, err
	}
	replaced := make(map[int]bool, len(plan.Replaced))
	for _, i := range plan.Replaced {
		if i < 0 || i >= n {
			return nil, fmt.Errorf("engine: swap plan slot %d out of range", i)
		}
		name := plan.Placement.Providers[i].Name
		st, ok := e.b.registry.Store(name)
		if !ok || !st.Available() {
			return nil, fmt.Errorf("%w: swap target %s", cloud.ErrUnavailable, name)
		}
		replaced[i] = true
	}
	order, err := e.rankChunks(meta, replaced)
	if err != nil {
		return nil, err
	}
	chunks, err := e.fetchRanked(ctx, meta, 0, order, false)
	if err != nil {
		return nil, err
	}
	payload, err := coder.Decode(chunks, int(meta.stripeLen(0)))
	if err != nil {
		return nil, err
	}
	if want := meta.stripeSum(0); want != "" {
		got := md5.Sum(payload)
		if hex.EncodeToString(got[:]) != want {
			return nil, fmt.Errorf("%w: stripe 0 during swap repair", ErrChecksum)
		}
	}
	ps := &pendingSwap{
		obj:  objectName(meta.Container, meta.Key),
		meta: meta,
		plan: plan,
		data: make(map[int][]byte, len(plan.Replaced)),
	}
	for _, i := range plan.Replaced {
		ps.data[i] = chunks[i]
		ps.bytes += int64(len(chunks[i]))
	}
	return ps, nil
}

// swapBatcher accumulates prepared single-stripe swaps and flushes
// their replacement-chunk writes grouped per target provider: one
// PutBatch round-trip per provider per flush, instead of one Put per
// chunk. Metadata commits stay per-object (row lock, live-version
// check) after the writes land.
type swapBatcher struct {
	e    *Engine
	size int
	pend []*pendingSwap
}

func newSwapBatcher(e *Engine, size int) *swapBatcher {
	if size < 1 {
		size = 1
	}
	return &swapBatcher{e: e, size: size}
}

// add appends a prepared swap, flushing when the batch is full.
func (sb *swapBatcher) add(ctx context.Context, ps *pendingSwap, report *RepairReport) {
	sb.pend = append(sb.pend, ps)
	if len(sb.pend) >= sb.size {
		sb.flush(ctx, report)
	}
}

// flush writes every pending replacement chunk, one batch per target
// provider, then commits each object whose writes all landed. Objects
// with a failed target are rolled back (best effort, succeeded
// providers only) and counted Skipped.
func (sb *swapBatcher) flush(ctx context.Context, report *RepairReport) {
	if len(sb.pend) == 0 {
		return
	}
	pend := sb.pend
	sb.pend = nil

	// Group the chunk writes by target provider.
	groups := make(map[string][]cloud.BatchItem)
	for _, ps := range pend {
		for slot, data := range ps.data {
			name := ps.plan.Placement.Providers[slot].Name
			groups[name] = append(groups[name], cloud.BatchItem{
				Key:  ps.meta.chunkKey(0, slot),
				Data: data,
			})
		}
	}
	failed := make(map[string]error)
	for name, items := range groups {
		failed[name] = sb.e.putBatch(ctx, name, items)
	}

	for _, ps := range pend {
		bad := false
		for slot := range ps.data {
			if failed[ps.plan.Placement.Providers[slot].Name] != nil {
				bad = true
				break
			}
		}
		if bad {
			// Roll back this object's chunks on the providers that did
			// accept their batch; the failed provider wrote nothing
			// (PutBatch validates before landing anything).
			for slot := range ps.data {
				name := ps.plan.Placement.Providers[slot].Name
				if failed[name] == nil {
					sb.e.deleteChunkAt(name, ps.meta.chunkKey(0, slot))
				}
			}
			report.Skipped++
			continue
		}
		if err := sb.e.commitSwap(ps.meta, ps.plan, 1); err != nil {
			report.Skipped++
			continue
		}
		sb.e.b.setPlacement(ps.obj, ps.plan.Placement)
		report.Repaired++
		report.Swapped++
		report.ChunksWritten += len(ps.plan.Replaced)
		report.BytesWritten += ps.bytes
	}
}

// putBatch writes one provider's batch: through cloud.BatchWriter when
// the backend supports it (one simulated round-trip), item by item
// otherwise. On a per-item failure the already-written items of the
// batch are rolled back so the batch is all-or-nothing either way.
func (e *Engine) putBatch(ctx context.Context, provider string, items []cloud.BatchItem) error {
	st, ok := e.b.registry.Store(provider)
	if !ok {
		return fmt.Errorf("%w: %s", cloud.ErrUnavailable, provider)
	}
	t0 := time.Now()
	if bw, isBatch := st.(cloud.BatchWriter); isBatch {
		err := bw.PutBatch(ctx, items)
		e.b.observeProviderOp(provider, "put-batch", t0, err)
		return err
	}
	for i, it := range items {
		if err := st.Put(ctx, it.Key, it.Data); err != nil {
			e.b.observeProviderOp(provider, "put-batch", t0, err)
			for j := 0; j < i; j++ {
				e.deleteChunkAt(provider, items[j].Key)
			}
			return err
		}
	}
	e.b.observeProviderOp(provider, "put-batch", t0, nil)
	return nil
}
