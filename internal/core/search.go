package core

import (
	"math"
	"sort"

	"scalia/internal/cloud"
	"scalia/internal/stats"
)

// Search is a prepared placement search: the feasibility work of
// Algorithm 1 (lock-in, durability threshold, availability, chunk-size
// constraints) depends only on the rule and the provider market, so it
// is computed once; Best then re-prices the surviving candidates for any
// load. The simulator and the periodic optimizer call Best thousands of
// times per provider-market epoch.
type Search struct {
	feasible []Placement
	opts     Options
}

// NewSearch prepares the feasible candidate placements for the given
// providers and rule.
func NewSearch(specs []cloud.Spec, rule Rule, opts Options) (*Search, error) {
	if err := rule.Validate(); err != nil {
		return nil, err
	}
	if opts.PeriodHours <= 0 {
		opts.PeriodHours = 1
	}
	filtered := make([]cloud.Spec, 0, len(specs))
	for _, s := range specs {
		if s.ServesAny(rule.Zones) {
			filtered = append(filtered, s)
		}
	}
	sort.Slice(filtered, func(i, j int) bool { return filtered[i].Name < filtered[j].Name })

	s := &Search{opts: opts}
	n := len(filtered)
	pset := make([]cloud.Spec, 0, n)
	for mask := 1; mask < 1<<uint(n); mask++ {
		pset = pset[:0]
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				pset = append(pset, filtered[i])
			}
		}
		if 1.0/float64(len(pset)) > rule.LockIn+1e-12 {
			continue
		}
		th := FeasibleThreshold(pset, rule.Durability, rule.Availability)
		if th <= 0 {
			continue
		}
		if opts.ObjectBytes > 0 {
			chunk := (opts.ObjectBytes + int64(th) - 1) / int64(th)
			bad := false
			for _, spec := range pset {
				if spec.MaxChunkBytes > 0 && chunk > spec.MaxChunkBytes {
					bad = true
					break
				}
				if opts.FreeBytes != nil {
					if free, ok := opts.FreeBytes[spec.Name]; ok && chunk > free {
						bad = true
						break
					}
				}
			}
			if bad {
				continue
			}
		}
		s.feasible = append(s.feasible, Placement{
			Providers: append([]cloud.Spec(nil), pset...),
			M:         th,
		})
	}
	if len(s.feasible) == 0 {
		return nil, ErrNoProviders
	}
	return s, nil
}

// Candidates returns the number of feasible placements.
func (s *Search) Candidates() int { return len(s.feasible) }

// Best returns the cheapest feasible placement for the load.
func (s *Search) Best(load stats.Summary) Result {
	best := Result{Price: math.MaxFloat64}
	for _, p := range s.feasible {
		best.Evaluated++
		price := PeriodCost(p, load, s.opts.PeriodHours)
		if !best.Feasible || price < best.Price-1e-15 ||
			(math.Abs(price-best.Price) <= 1e-15 && tieBreak(p, best.Placement)) {
			best.Feasible = true
			best.Price = price
			best.Placement = p
		}
	}
	return best
}
