package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"scalia/internal/cloud"
	"scalia/internal/stats"
)

// randomLoad derives a well-formed load summary from fuzz inputs.
func randomLoad(reads, writes uint16, sizeMB uint8) stats.Summary {
	size := float64(sizeMB)*1e6 + 1
	return stats.Summary{
		Periods:      1,
		Reads:        float64(reads),
		Writes:       float64(writes % 4),
		BytesOut:     float64(reads) * size,
		BytesIn:      float64(writes%4) * size,
		StorageBytes: size,
	}
}

func TestPeriodCostNonNegativeProperty(t *testing.T) {
	specs := cloud.PaperProviders()
	f := func(reads, writes uint16, sizeMB uint8, mSel, nSel uint8) bool {
		n := int(nSel%5) + 1
		m := int(mSel%uint8(n)) + 1
		p := Placement{Providers: specs[:n], M: m}
		return PeriodCost(p, randomLoad(reads, writes, sizeMB), 1) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPeriodCostMonotoneInLoadProperty(t *testing.T) {
	specs := cloud.PaperProviders()
	p := Placement{Providers: specs[:3], M: 2}
	f := func(reads, writes uint16, sizeMB uint8) bool {
		load := randomLoad(reads, writes, sizeMB)
		base := PeriodCost(p, load, 1)
		// More reads cannot be cheaper.
		more := load
		more.Reads += 10
		more.BytesOut += 10 * load.StorageBytes
		if PeriodCost(p, more, 1) < base {
			return false
		}
		// More stored bytes cannot be cheaper.
		bigger := load
		bigger.StorageBytes *= 2
		return PeriodCost(p, bigger, 1) >= base
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBestPlacementNeverBeatenByCandidateProperty(t *testing.T) {
	// The optimizer's result must price at or below every feasible
	// candidate it can choose from — cross-checked by re-evaluating a
	// random subset against the returned optimum.
	specs := cloud.PaperProviders()
	rule := Rule{Durability: 0.99999, Availability: 0.9999, LockIn: 1}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		load := randomLoad(uint16(rng.Intn(500)), uint16(rng.Intn(4)), uint8(rng.Intn(200)))
		best, err := BestPlacement(specs, rule, load, Options{})
		if err != nil {
			t.Fatal(err)
		}
		// Random candidate subset.
		var pset []cloud.Spec
		for _, s := range specs {
			if rng.Intn(2) == 1 {
				pset = append(pset, s)
			}
		}
		if len(pset) < 2 {
			continue
		}
		th := FeasibleThreshold(pset, rule.Durability, rule.Availability)
		if th <= 0 {
			continue
		}
		cand := Placement{Providers: pset, M: th}
		if price := PeriodCost(cand, load, 1); price < best.Price-1e-12 {
			t.Fatalf("trial %d: candidate %v (%v) beats optimum %v (%v)",
				trial, cand, price, best.Placement, best.Price)
		}
	}
}

func TestMigrationCostNonNegativeProperty(t *testing.T) {
	specs := cloud.PaperProviders()
	f := func(fromSel, toSel uint8, sizeMB uint8) bool {
		fn := int(fromSel%4) + 2
		tn := int(toSel%4) + 2
		from := Placement{Providers: specs[:fn], M: fn - 1}
		to := Placement{Providers: specs[5-tn:], M: tn - 1}
		return MigrationCost(from, to, float64(sizeMB)/100) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestThresholdAvailabilityConsistencyProperty(t *testing.T) {
	// For any subset and any constraints, the feasible threshold (when
	// positive) must satisfy both constraints, and threshold+1 must
	// violate at least one.
	specs := cloud.PaperProviders()
	rng := rand.New(rand.NewSource(17))
	durs := []float64{0.999, 0.99999, 0.9999999, 0.999999999999}
	avs := []float64{0.99, 0.999, 0.9999, 0.999995}
	for trial := 0; trial < 300; trial++ {
		var pset []cloud.Spec
		for _, s := range specs {
			if rng.Intn(2) == 1 {
				pset = append(pset, s)
			}
		}
		if len(pset) == 0 {
			continue
		}
		dr := durs[rng.Intn(len(durs))]
		ar := avs[rng.Intn(len(avs))]
		m := FeasibleThreshold(pset, dr, ar)
		if m <= 0 {
			continue
		}
		if GetAvailability(pset, m) < ar {
			t.Fatalf("threshold %d violates availability %v for %v", m, ar, pset)
		}
		if th := GetThreshold(pset, dr); m > th {
			t.Fatalf("feasible threshold %d exceeds durability threshold %d", m, th)
		}
		if m < len(pset) {
			// Maximality: m+1 must violate availability or durability.
			durOK := m+1 <= GetThreshold(pset, dr)
			avOK := GetAvailability(pset, m+1) >= ar
			if durOK && avOK {
				t.Fatalf("threshold %d not maximal for %v (dr=%v ar=%v)", m, pset, dr, ar)
			}
		}
	}
}

// TestPlanSwapSingleFailureProperty drives PlanSwap over random
// markets, rules and loads with one provider of the placement failed.
// Wherever a feasible swap exists it must: keep (m, n); keep every
// surviving assignment at its slot; replace only the dead slot, with an
// alive provider not already in the set; still satisfy the rule at
// threshold m; pick the cheapest possible spare; and never write more
// repair bytes than the best full re-placement would.
func TestPlanSwapSingleFailureProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	rules := []Rule{
		{Durability: 0.99999, Availability: 0.99, LockIn: 1},
		{Durability: 0.9999, Availability: 0.99, LockIn: 0.5},
		{Durability: 0.999999, Availability: 0.99, LockIn: 0.3},
	}
	swaps := 0
	for trial := 0; trial < 300; trial++ {
		specs := randomMarket(rng, 5+rng.Intn(4))
		rule := rules[rng.Intn(len(rules))]
		load := randomLoad(uint16(rng.Intn(500)), uint16(rng.Intn(8)), uint8(rng.Intn(200)))
		best, err := BestPlacement(specs, rule, load, Options{})
		if err != nil {
			continue
		}
		cur := best.Placement
		deadSlot := rng.Intn(cur.N())
		dead := cur.Providers[deadSlot].Name
		alive := func(name string) bool { return name != dead }

		plan, ok := PlanSwap(cur, specs, alive, rule, load, 1, 0, nil)
		if !ok {
			continue
		}
		swaps++
		if plan.Mode != RepairSwap {
			t.Fatalf("trial %d: mode = %v, want RepairSwap", trial, plan.Mode)
		}
		// Shape: same threshold, same chunk count.
		if plan.Placement.M != cur.M || plan.Placement.N() != cur.N() {
			t.Fatalf("trial %d: swap changed shape: %v -> %v", trial, cur, plan.Placement)
		}
		// Slots: survivors untouched, only the dead slot replaced.
		if len(plan.Replaced) != 1 || plan.Replaced[0] != deadSlot {
			t.Fatalf("trial %d: replaced %v, want [%d]", trial, plan.Replaced, deadSlot)
		}
		for i, s := range plan.Placement.Providers {
			if i == deadSlot {
				if s.Name == dead || cur.Has(s.Name) {
					t.Fatalf("trial %d: slot %d replacement %q is dead or already used", trial, i, s.Name)
				}
				if !s.ServesAny(rule.Zones) {
					t.Fatalf("trial %d: replacement %q violates the zone rule", trial, s.Name)
				}
				continue
			}
			if s.Name != cur.Providers[i].Name {
				t.Fatalf("trial %d: surviving slot %d changed %q -> %q",
					trial, i, cur.Providers[i].Name, s.Name)
			}
		}
		// The swapped set still satisfies the rule at the original m.
		if th := FeasibleThreshold(plan.Placement.Providers, rule.Durability, rule.Availability); th < cur.M {
			t.Fatalf("trial %d: swapped set threshold %d < m %d", trial, th, cur.M)
		}
		// Greedy optimality for a single failure: no other spare yields a
		// cheaper swapped placement.
		for _, spare := range specs {
			if spare.Name == dead || cur.Has(spare.Name) || !spare.ServesAny(rule.Zones) {
				continue
			}
			alt := Placement{M: cur.M, Providers: append([]cloud.Spec(nil), cur.Providers...)}
			alt.Providers[deadSlot] = spare
			if price := PeriodCost(alt, load, 1); price < plan.Price-1e-12 {
				t.Fatalf("trial %d: spare %q (%v) beats chosen swap (%v)",
					trial, spare.Name, price, plan.Price)
			}
		}
		// Repair traffic: the swap writes one chunk (size/m); a full
		// re-placement re-stripes and writes n'/m' >= 1 >= 1/m of the
		// size. Never more.
		full, err := BestPlacement(removeByName(specs, dead), rule, load, Options{})
		if err == nil {
			swapWrite := float64(len(plan.Replaced)) / float64(cur.M)
			fullWrite := float64(full.Placement.N()) / float64(full.Placement.M)
			if swapWrite > fullWrite+1e-12 {
				t.Fatalf("trial %d: swap writes %.3fx object size, re-placement %.3fx",
					trial, swapWrite, fullWrite)
			}
		}
	}
	if swaps < 50 {
		t.Fatalf("property test found only %d feasible swaps", swaps)
	}
}

// TestPlanSwapMultiFailureProperty fails up to n-m providers at once:
// any feasible plan must replace exactly the dead slots and keep the
// rule satisfied; infeasibility (spares exhausted) must be reported,
// never a placement that still contains a dead provider.
func TestPlanSwapMultiFailureProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	rule := Rule{Durability: 0.9999, Availability: 0.99, LockIn: 0.5}
	swaps := 0
	for trial := 0; trial < 300; trial++ {
		specs := randomMarket(rng, 6+rng.Intn(4))
		load := randomLoad(uint16(rng.Intn(300)), uint16(rng.Intn(4)), uint8(rng.Intn(100)))
		best, err := BestPlacement(specs, rule, load, Options{})
		if err != nil {
			continue
		}
		cur := best.Placement
		spare := cur.N() - cur.M
		if spare < 1 {
			continue
		}
		deadCount := 1 + rng.Intn(spare)
		deadSet := make(map[string]bool, deadCount)
		for len(deadSet) < deadCount {
			deadSet[cur.Providers[rng.Intn(cur.N())].Name] = true
		}
		alive := func(name string) bool { return !deadSet[name] }

		plan, ok := PlanSwap(cur, specs, alive, rule, load, 1, 0, nil)
		if !ok {
			continue
		}
		swaps++
		if len(plan.Replaced) != len(deadSet) {
			t.Fatalf("trial %d: replaced %d slots, want %d", trial, len(plan.Replaced), len(deadSet))
		}
		seen := make(map[string]bool, plan.Placement.N())
		for i, s := range plan.Placement.Providers {
			if seen[s.Name] {
				t.Fatalf("trial %d: duplicate provider %q after swap", trial, s.Name)
			}
			seen[s.Name] = true
			if deadSet[s.Name] {
				t.Fatalf("trial %d: dead provider %q still at slot %d", trial, s.Name, i)
			}
			if !deadSet[cur.Providers[i].Name] && s.Name != cur.Providers[i].Name {
				t.Fatalf("trial %d: surviving slot %d changed", trial, i)
			}
		}
		if th := FeasibleThreshold(plan.Placement.Providers, rule.Durability, rule.Availability); th < cur.M {
			t.Fatalf("trial %d: swapped set threshold %d < m %d", trial, th, cur.M)
		}
	}
	if swaps < 30 {
		t.Fatalf("property test found only %d feasible multi-swaps", swaps)
	}
}

// TestPlannerRepairFallsBackToRestripe exhausts the spare pool so no
// swap is feasible: Planner.Repair must return a re-stripe plan over
// the surviving market rather than failing or keeping the dead slot.
func TestPlannerRepairFallsBackToRestripe(t *testing.T) {
	specs := cloud.PaperProviders()
	rule := Rule{Durability: 0.99999, Availability: 0.99, LockIn: 1.0 / float64(len(specs))}
	load := randomLoad(10, 1, 50)
	planner := NewPlanner(1, false)
	best, err := planner.Best(1, specs, rule, load, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if best.Placement.N() != len(specs) {
		t.Fatalf("lock-in rule should use every provider, got %v", best.Placement)
	}
	dead := best.Placement.Providers[0].Name
	aliveSpecs := removeByName(specs, dead)
	alive := func(name string) bool { return name != dead }
	plan, err := planner.Repair(2, aliveSpecs, rule, best.Placement, alive, load, 0, nil)
	if err == nil {
		t.Fatalf("no market subset satisfies lock-in 1/%d with %d providers; want error, got %+v",
			len(specs), len(aliveSpecs), plan)
	}

	// With a looser rule the fallback must be a re-stripe plan.
	loose := Rule{Durability: 0.99999, Availability: 0.99, LockIn: 0.5}
	best, err = planner.Best(2, aliveSpecs, loose, load, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Build a degraded placement over every surviving provider plus the
	// dead one, so no spare exists.
	cur := Placement{M: best.Placement.M, Providers: append([]cloud.Spec(nil), specs...)}
	plan, err = planner.Repair(2, aliveSpecs, loose, cur, alive, load, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Mode != RepairRestripe {
		t.Fatalf("spare-less market must re-stripe, got mode %v", plan.Mode)
	}
	for _, s := range plan.Placement.Providers {
		if s.Name == dead {
			t.Fatalf("re-stripe placement still contains the dead provider: %v", plan.Placement)
		}
	}
}

func removeByName(specs []cloud.Spec, name string) []cloud.Spec {
	out := make([]cloud.Spec, 0, len(specs))
	for _, s := range specs {
		if s.Name != name {
			out = append(out, s)
		}
	}
	return out
}

func TestStoredGBAccountsOverheadProperty(t *testing.T) {
	f := func(mSel, nSel uint8, sizeMB uint8) bool {
		n := int(nSel%5) + 1
		m := int(mSel%uint8(n)) + 1
		p := Placement{Providers: cloud.PaperProviders()[:n], M: m}
		size := float64(sizeMB) / 100
		stored := p.StoredGB(size)
		// Stored volume is size * n/m, always >= the logical size.
		return stored >= size-1e-12 && stored <= size*float64(n)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
