package core

import (
	"fmt"
	"sort"
	"strings"

	"scalia/internal/cloud"
	"scalia/internal/stats"
)

// Placement is a chosen provider set together with the erasure threshold
// m: the object is split into n = len(Providers) chunks, any m of which
// reconstruct it.
type Placement struct {
	Providers []cloud.Spec
	M         int
}

// N returns the number of chunks (= providers).
func (p Placement) N() int { return len(p.Providers) }

// Names returns the provider names, sorted.
func (p Placement) Names() []string {
	out := make([]string, len(p.Providers))
	for i, s := range p.Providers {
		out[i] = s.Name
	}
	sort.Strings(out)
	return out
}

// String renders the paper's notation, e.g. "[S3(h), S3(l); m:1]".
func (p Placement) String() string {
	return fmt.Sprintf("[%s; m:%d]", strings.Join(p.Names(), ", "), p.M)
}

// Key returns a canonical identity string for map keys and comparisons.
func (p Placement) Key() string { return p.String() }

// Equal reports whether two placements use the same provider names and
// threshold.
func (p Placement) Equal(other Placement) bool {
	if p.M != other.M || len(p.Providers) != len(other.Providers) {
		return false
	}
	a, b := p.Names(), other.Names()
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Has reports whether the placement includes the named provider.
func (p Placement) Has(name string) bool {
	for _, s := range p.Providers {
		if s.Name == name {
			return true
		}
	}
	return false
}

// ChunkGB returns the per-chunk size in GB for an object of the given
// logical size.
func (p Placement) ChunkGB(storageGB float64) float64 {
	if p.M <= 0 {
		return 0
	}
	return storageGB / float64(p.M)
}

// StoredGB returns the total stored volume including erasure overhead.
func (p Placement) StoredGB(storageGB float64) float64 {
	return p.ChunkGB(storageGB) * float64(p.N())
}

// PeriodCost implements computePrice (Algorithm 1, line 11): the
// expected USD cost of one sampling period on placement p for an object
// with the given per-period average load.
//
// Cost model, per the paper's billing dimensions:
//   - storage: each provider holds one chunk of size/m for the period;
//   - writes: every write uploads all n chunks (bandwidth-in at each
//     provider, one PUT operation each);
//   - reads: every read downloads m chunks from the cheapest m providers
//     of the set, ranked by marginal read cost (bandwidth-out price plus
//     per-operation price) — "retrieves the m out of |P(obj)| chunks from
//     the cheapest providers" (§III-D2);
//   - deletes: one DELETE operation per provider.
func PeriodCost(p Placement, load stats.Summary, periodHours float64) float64 {
	if p.M <= 0 || p.N() == 0 {
		return 0
	}
	if periodHours <= 0 {
		periodHours = 1
	}
	m := float64(p.M)
	storageGB := load.StorageBytes / 1e9
	chunkGB := storageGB / m
	bytesInGB := load.BytesIn / 1e9 / m   // per-provider upload share
	bytesOutGB := load.BytesOut / 1e9 / m // per-serving-provider share

	var cost float64

	// Storage and write path: all n providers participate.
	for _, s := range p.Providers {
		cost += chunkGB * s.Pricing.StorageGBMonth * periodHours / cloud.HoursPerMonth
		cost += bytesInGB * s.Pricing.BandwidthInGB
		cost += load.Writes * s.Pricing.OpsPer1000 / 1000
	}

	// Read path: the m cheapest providers serve chunks. Markets are
	// small (|P| < 15 per the paper), so a fixed-size stack buffer
	// avoids a heap allocation on this per-candidate hot path.
	if load.Reads > 0 && load.BytesOut >= 0 {
		var buf [16]float64
		costs := buf[:0]
		if p.N() > len(buf) {
			costs = make([]float64, 0, p.N())
		}
		for _, s := range p.Providers {
			costs = append(costs, bytesOutGB*s.Pricing.BandwidthOutGB+load.Reads*s.Pricing.OpsPer1000/1000)
		}
		sort.Float64s(costs)
		for i := 0; i < p.M; i++ {
			cost += costs[i]
		}
	}
	return cost
}

// WindowCost prices the placement over an entire decision period of
// `periods` sampling periods.
func WindowCost(p Placement, load stats.Summary, periodHours float64, periods int) float64 {
	if periods < 1 {
		periods = 1
	}
	return PeriodCost(p, load, periodHours) * float64(periods)
}

// MigrationCost estimates the one-off USD cost of moving an object of
// the given logical size from placement `from` to placement `to`
// (§III-A3: migration happens only "if the cost of migration is covered
// by the benefits"):
//   - if threshold and chunk count are unchanged, moved chunks keep
//     their stripe identity and are copied provider-to-provider (§IV-E:
//     "if m is the same, then only the faulty chunk needs to be
//     written, which corresponds to the cheapest case");
//   - otherwise the object is reconstructed by reading m chunks from the
//     cheapest source providers, re-striped, and fully rewritten.
//
// Chunks abandoned at providers leaving the set cost one DELETE each.
func MigrationCost(from, to Placement, storageGB float64) float64 {
	if from.M <= 0 || to.M <= 0 {
		return 0
	}
	// Cheapest case (§IV-E): threshold and chunk count unchanged, so a
	// chunk keeps its stripe identity and moves by a direct copy from the
	// leaving provider to the incoming one — no reconstruction.
	if from.M == to.M && from.N() == to.N() {
		chunkGB := from.ChunkGB(storageGB)
		var leaving, incoming []cloud.Spec
		for _, s := range from.Providers {
			if !to.Has(s.Name) {
				leaving = append(leaving, s)
			}
		}
		for _, s := range to.Providers {
			if !from.Has(s.Name) {
				incoming = append(incoming, s)
			}
		}
		sort.Slice(leaving, func(i, j int) bool { return leaving[i].Name < leaving[j].Name })
		sort.Slice(incoming, func(i, j int) bool { return incoming[i].Name < incoming[j].Name })
		var cost float64
		for i := range incoming {
			src, dst := leaving[i], incoming[i]
			cost += chunkGB*src.Pricing.BandwidthOutGB + src.Pricing.OpsPer1000/1000 // read
			cost += chunkGB*dst.Pricing.BandwidthInGB + dst.Pricing.OpsPer1000/1000  // write
			cost += src.Pricing.OpsPer1000 / 1000                                    // delete
		}
		return cost
	}

	// Re-stripe: reconstruct from m chunks, rewrite everything, delete all
	// old chunks.
	var cost float64
	chunkGB := from.ChunkGB(storageGB)
	reads := make([]float64, 0, from.N())
	for _, s := range from.Providers {
		reads = append(reads, chunkGB*s.Pricing.BandwidthOutGB+s.Pricing.OpsPer1000/1000)
	}
	sort.Float64s(reads)
	for i := 0; i < from.M && i < len(reads); i++ {
		cost += reads[i]
	}
	newChunkGB := to.ChunkGB(storageGB)
	for _, s := range to.Providers {
		cost += newChunkGB*s.Pricing.BandwidthInGB + s.Pricing.OpsPer1000/1000
	}
	for _, s := range from.Providers {
		cost += s.Pricing.OpsPer1000 / 1000
	}
	return cost
}
