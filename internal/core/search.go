package core

import (
	"math"
	"sort"

	"scalia/internal/cloud"
	"scalia/internal/stats"
)

// Search is a prepared placement search: the feasibility work of
// Algorithm 1 that depends only on the rule and the provider market
// (zone filtering, lock-in, durability threshold, availability) is
// computed once; Best then applies the per-object constraints
// (chunk-size limits, remaining capacity) and re-prices the surviving
// candidates for any load. One prepared Search serves every object of a
// rule until the market changes, which is what keeps the periodic
// optimization procedure cheap at scale (§III-A3) — the Planner caches
// Searches per (market epoch, rule fingerprint).
type Search struct {
	rule        Rule
	periodHours float64
	pruned      bool

	// specs is the zone-filtered market, sorted by name.
	specs []cloud.Spec
	// feasible holds the market-feasible candidate sets (exact mode),
	// sorted ascending by storFloor so Best can stop scanning at the
	// first candidate whose load-independent lower bound already exceeds
	// the best price found (branch and bound).
	feasible []Placement
	// storFloor[i] is feasible[i]'s storage-cost floor per stored GB and
	// period-hour fraction: (Σ StorageGBMonth over the set) / m. Every
	// PeriodCost component except storage is ≥ 0, so
	// storFloor × storageGB × periodHours/HoursPerMonth lower-bounds the
	// candidate's price at ANY load.
	storFloor []float64
	// byStorage is the storage-cheapest ordering of specs (pruned mode).
	byStorage []cloud.Spec
}

// NewSearch prepares the market-scoped part of Algorithm 1 for the
// given providers and rule. Per-object constraints (Options.ObjectBytes
// and Options.FreeBytes) are deliberately not baked in — they are
// evaluated by Best, so one Search is shared across objects of any
// size. Options.Pruned selects a prepared variant of the polynomial
// heuristic instead of the precomputed exponential enumeration.
func NewSearch(specs []cloud.Spec, rule Rule, opts Options) (*Search, error) {
	if err := rule.Validate(); err != nil {
		return nil, err
	}
	if opts.PeriodHours <= 0 {
		opts.PeriodHours = 1
	}
	filtered := make([]cloud.Spec, 0, len(specs))
	for _, s := range specs {
		if s.ServesAny(rule.Zones) {
			filtered = append(filtered, s)
		}
	}
	sort.Slice(filtered, func(i, j int) bool { return filtered[i].Name < filtered[j].Name })

	s := &Search{rule: rule, periodHours: opts.PeriodHours, pruned: opts.Pruned, specs: filtered}
	if opts.Pruned {
		if len(filtered) == 0 {
			return nil, ErrNoProviders
		}
		s.byStorage = storageCheapest(filtered)
		return s, nil
	}

	n := len(filtered)
	pset := make([]cloud.Spec, 0, n)
	for mask := 1; mask < 1<<uint(n); mask++ {
		pset = pset[:0]
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				pset = append(pset, filtered[i])
			}
		}
		if 1.0/float64(len(pset)) > rule.LockIn+1e-12 {
			continue
		}
		th := FeasibleThreshold(pset, rule.Durability, rule.Availability)
		if th <= 0 {
			continue
		}
		s.feasible = append(s.feasible, Placement{
			Providers: append([]cloud.Spec(nil), pset...),
			M:         th,
		})
	}
	if len(s.feasible) == 0 {
		return nil, ErrNoProviders
	}
	// Order candidates by their load-independent storage floor so Best's
	// scan can branch-and-bound: once the floor exceeds the running best
	// price, no later candidate can win. Stable sort + name tie-break
	// keeps the scan order (and hence tieBreak resolution) deterministic.
	s.storFloor = make([]float64, len(s.feasible))
	for i, p := range s.feasible {
		var sum float64
		for _, spec := range p.Providers {
			sum += spec.Pricing.StorageGBMonth
		}
		s.storFloor[i] = sum / float64(p.M)
	}
	order := make([]int, len(s.feasible))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		if s.storFloor[order[a]] != s.storFloor[order[b]] {
			return s.storFloor[order[a]] < s.storFloor[order[b]]
		}
		return tieBreak(s.feasible[order[a]], s.feasible[order[b]])
	})
	feas := make([]Placement, len(order))
	floors := make([]float64, len(order))
	for i, idx := range order {
		feas[i] = s.feasible[idx]
		floors[i] = s.storFloor[idx]
	}
	s.feasible, s.storFloor = feas, floors
	return s, nil
}

// Candidates returns the number of market-feasible placements (exact
// mode; zero in pruned mode, which enumerates lazily).
func (s *Search) Candidates() int { return len(s.feasible) }

// Best returns the cheapest feasible placement for the load,
// applying the per-object chunk-size and capacity constraints
// (§III-A2) at evaluation time: objectBytes is the logical object size
// (zero skips the checks) and free caps the chunk a provider can
// accept (nil means uncapped). The returned Placement shares its
// Providers slice with the Search; callers must not mutate it.
func (s *Search) Best(load stats.Summary, objectBytes int64, free map[string]int64) Result {
	if s.pruned {
		return prunedBest(s.specs, s.byStorage, s.rule, load, s.periodHours, objectBytes, free)
	}
	best := Result{Price: math.MaxFloat64}
	// Load-dependent scale of the per-candidate storage floor: floor(p) =
	// storFloor[p] × floorScale lower-bounds PeriodCost(p, load) because
	// every other cost component is non-negative.
	floorScale := load.StorageBytes / 1e9 * s.periodHours / cloud.HoursPerMonth
	for i, p := range s.feasible {
		if best.Feasible && s.storFloor[i]*floorScale > best.Price+1e-15 {
			// Candidates are sorted by storage floor: every remaining one
			// is bounded below the same way and cannot beat (or epsilon-tie)
			// the incumbent. This prune is what keeps Best cheap on large
			// markets — the exponential candidate list is scanned only up
			// to the bound.
			break
		}
		best.Evaluated++
		if !chunkFits(p.Providers, p.M, objectBytes, free) {
			continue
		}
		price := PeriodCost(p, load, s.periodHours)
		if !best.Feasible || price < best.Price-1e-15 ||
			(math.Abs(price-best.Price) <= 1e-15 && tieBreak(p, best.Placement)) {
			best.Feasible = true
			best.Price = price
			best.Placement = p
		}
	}
	return best
}
