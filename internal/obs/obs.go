// Package obs is Scalia's dependency-free observability core: a metric
// registry of atomic counters, gauges and fixed-bucket latency
// histograms (plain and labeled families), func-backed collectors that
// expose counters other subsystems already keep (so /metrics and
// /v1/stats read the same bookkeeping instead of two parallel ones), a
// hand-rolled Prometheus text encoder, and per-request tracing (request
// IDs, span timings and per-request counts threaded via
// context.Context).
//
// Everything in this package is safe for concurrent use and allocates
// nothing on the metric hot paths (Counter.Inc, Gauge.Set,
// Histogram.Observe on a resolved series).
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind is the Prometheus metric type of a family.
type Kind int

// Metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Sample is one value of a func-backed family: label values (aligned
// with the family's label names) and the current reading.
type Sample struct {
	LabelValues []string
	Value       float64
}

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increases the counter by n; negative deltas are dropped (a
// counter only goes up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an integer gauge (float-valued gauges are exposed through
// GaugeFunc, reading whatever source owns the value).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current reading.
func (g *Gauge) Value() int64 { return g.v.Load() }

// family is one named metric family: either a set of owned series
// (Counter/Gauge/Histogram, keyed by label values) or a func-backed
// collector read at scrape time.
type family struct {
	name       string
	help       string
	kind       Kind
	labelNames []string
	buckets    []float64 // histogram families

	mu     sync.RWMutex
	series map[string]any // label signature -> *Counter | *Gauge | *Histogram
	keys   []string       // insertion-ordered signatures (sorted at encode)

	collect func() []Sample // exclusive with series
}

// seriesSep joins label values into a map key; 0x1f (unit separator)
// cannot appear in reasonable label values.
const seriesSep = "\x1f"

func (f *family) get(values []string) any {
	if len(values) != len(f.labelNames) {
		panic(fmt.Sprintf("obs: %s expects %d label values, got %d",
			f.name, len(f.labelNames), len(values)))
	}
	key := strings.Join(values, seriesSep)
	f.mu.RLock()
	s, ok := f.series[key]
	f.mu.RUnlock()
	if ok {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	var m any
	switch f.kind {
	case KindCounter:
		m = &Counter{}
	case KindGauge:
		m = &Gauge{}
	case KindHistogram:
		m = newHistogram(f.buckets)
	}
	f.series[key] = m
	f.keys = append(f.keys, key)
	return m
}

// Registry is a set of metric families. Each Broker owns one, so tests
// and embedded deployments never share counters through global state.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

func (r *Registry) add(f *family) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.byName[f.name]; ok {
		if prev.kind != f.kind {
			panic("obs: metric " + f.name + " re-registered with a different kind")
		}
		return prev
	}
	r.byName[f.name] = f
	r.families = append(r.families, f)
	sort.Slice(r.families, func(i, j int) bool { return r.families[i].name < r.families[j].name })
	return f
}

// Counter registers (or returns) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.add(&family{name: name, help: help, kind: KindCounter, series: map[string]any{}})
	return f.get(nil).(*Counter)
}

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	f := r.add(&family{name: name, help: help, kind: KindCounter,
		labelNames: labelNames, series: map[string]any{}})
	return &CounterVec{f: f}
}

// Gauge registers (or returns) an unlabeled integer gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.add(&family{name: name, help: help, kind: KindGauge, series: map[string]any{}})
	return f.get(nil).(*Gauge)
}

// GaugeFunc registers a gauge whose value is read from fn at scrape
// time — the bridge for values another subsystem already owns (cache
// footprints, cost totals, buffer high-water marks).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.add(&family{name: name, help: help, kind: KindGauge,
		collect: func() []Sample { return []Sample{{Value: fn()}} }})
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time (for lifetime totals kept by another subsystem).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.add(&family{name: name, help: help, kind: KindCounter,
		collect: func() []Sample { return []Sample{{Value: fn()}} }})
}

// CollectFunc registers a labeled func-backed family: fn is called at
// scrape time and returns one Sample per series. kind must be
// KindCounter or KindGauge.
func (r *Registry) CollectFunc(name, help string, kind Kind, labelNames []string, fn func() []Sample) {
	if kind == KindHistogram {
		panic("obs: func-backed histogram families are not supported")
	}
	r.add(&family{name: name, help: help, kind: kind, labelNames: labelNames, collect: fn})
}

// Histogram registers (or returns) an unlabeled histogram with the
// given bucket upper bounds (strictly increasing; +Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.add(&family{name: name, help: help, kind: KindHistogram,
		buckets: buckets, series: map[string]any{}})
	return f.get(nil).(*Histogram)
}

// HistogramVec registers a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	f := r.add(&family{name: name, help: help, kind: KindHistogram,
		buckets: buckets, labelNames: labelNames, series: map[string]any{}})
	return &HistogramVec{f: f}
}

// CounterVec is a labeled counter family.
type CounterVec struct{ f *family }

// With returns the counter for the given label values, creating it on
// first use.
func (v *CounterVec) With(labelValues ...string) *Counter {
	return v.f.get(labelValues).(*Counter)
}

// HistogramVec is a labeled histogram family.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values, creating it
// on first use.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	return v.f.get(labelValues).(*Histogram)
}

// LabeledHistogram is one histogram series of a family with its label
// values resolved, as returned by Registry.Histograms.
type LabeledHistogram struct {
	Labels   map[string]string
	Snapshot HistogramSnapshot
}

// Histograms snapshots every series of the named histogram family (nil
// when the name is unknown or not a histogram). Consumers like the
// health endpoint merge the snapshots they care about.
func (r *Registry) Histograms(name string) []LabeledHistogram {
	r.mu.Lock()
	f := r.byName[name]
	r.mu.Unlock()
	if f == nil || f.kind != KindHistogram || f.series == nil {
		return nil
	}
	f.mu.RLock()
	keys := append([]string(nil), f.keys...)
	f.mu.RUnlock()
	out := make([]LabeledHistogram, 0, len(keys))
	for _, key := range keys {
		f.mu.RLock()
		s := f.series[key]
		f.mu.RUnlock()
		h, ok := s.(*Histogram)
		if !ok {
			continue
		}
		labels := make(map[string]string, len(f.labelNames))
		if len(f.labelNames) > 0 {
			values := strings.Split(key, seriesSep)
			for i, n := range f.labelNames {
				if i < len(values) {
					labels[n] = values[i]
				}
			}
		}
		out = append(out, LabeledHistogram{Labels: labels, Snapshot: h.Snapshot()})
	}
	return out
}
