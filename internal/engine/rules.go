package engine

import (
	"sync"

	"scalia/internal/core"
)

// RuleStore resolves the placement rule for an object, in the paper's
// precedence order (§II-B): a per-object rule, then a per-container
// rule, then a per-class rule, then the default rule.
type RuleStore struct {
	mu          sync.RWMutex
	def         core.Rule
	byObject    map[string]core.Rule // "container/key"
	byContainer map[string]core.Rule
	byClass     map[string]core.Rule
}

// DefaultRule is used when the customer sets nothing: two providers
// minimum is implied by the availability requirement.
var DefaultRule = core.Rule{
	Name:         "default",
	Durability:   0.99999,
	Availability: 0.9999,
	LockIn:       1,
}

// NewRuleStore returns a store with the given default rule (zero value
// selects DefaultRule).
func NewRuleStore(def core.Rule) *RuleStore {
	if def.LockIn == 0 {
		def = DefaultRule
	}
	return &RuleStore{
		def:         def,
		byObject:    make(map[string]core.Rule),
		byContainer: make(map[string]core.Rule),
		byClass:     make(map[string]core.Rule),
	}
}

// SetDefault replaces the default rule.
func (rs *RuleStore) SetDefault(r core.Rule) {
	rs.mu.Lock()
	rs.def = r
	rs.mu.Unlock()
}

// SetObjectRule pins a rule to one object.
func (rs *RuleStore) SetObjectRule(container, key string, r core.Rule) {
	rs.mu.Lock()
	rs.byObject[container+"/"+key] = r
	rs.mu.Unlock()
}

// SetContainerRule pins a rule to every object of a container.
func (rs *RuleStore) SetContainerRule(container string, r core.Rule) {
	rs.mu.Lock()
	rs.byContainer[container] = r
	rs.mu.Unlock()
}

// SetClassRule pins a rule to an object class.
func (rs *RuleStore) SetClassRule(classKey string, r core.Rule) {
	rs.mu.Lock()
	rs.byClass[classKey] = r
	rs.mu.Unlock()
}

// Resolve returns the rule governing the object.
func (rs *RuleStore) Resolve(container, key, classKey string) core.Rule {
	rs.mu.RLock()
	defer rs.mu.RUnlock()
	if r, ok := rs.byObject[container+"/"+key]; ok {
		return r
	}
	if r, ok := rs.byContainer[container]; ok {
		return r
	}
	if r, ok := rs.byClass[classKey]; ok {
		return r
	}
	return rs.def
}
