package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("scalia_test_total", "test counter")
	c.Inc()
	c.Add(4)
	c.Add(-10) // dropped: counters only go up
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	// Re-registering the same name returns the same counter.
	if again := r.Counter("scalia_test_total", "test counter"); again != c {
		t.Error("re-registration returned a different counter")
	}

	g := r.Gauge("scalia_test_gauge", "test gauge")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Errorf("gauge = %d, want 5", g.Value())
	}
}

func TestVecSeriesIdentity(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("scalia_ops_total", "ops", "provider", "op")
	v.With("s3", "get").Add(3)
	v.With("s3", "put").Inc()
	if got := v.With("s3", "get").Value(); got != 3 {
		t.Errorf("series value = %d, want 3", got)
	}
	// Concurrent With on the same labels must resolve to one series.
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v.With("gcs", "get").Inc()
		}()
	}
	wg.Wait()
	if got := v.With("gcs", "get").Value(); got != 16 {
		t.Errorf("concurrent series = %d, want 16", got)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("scalia_requests_total", "Total requests.")
	c.Add(3)
	v := r.CounterVec("scalia_provider_ops_total", "Per-provider ops.", "provider")
	v.With(`we"ird\pro` + "\n" + `vider`).Inc()
	r.GaugeFunc("scalia_uptime_seconds", "Uptime.", func() float64 { return 12.5 })
	h := r.Histogram("scalia_latency_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		"# HELP scalia_requests_total Total requests.\n",
		"# TYPE scalia_requests_total counter\n",
		"scalia_requests_total 3\n",
		"# TYPE scalia_latency_seconds histogram\n",
		`scalia_latency_seconds_bucket{le="0.1"} 1` + "\n",
		`scalia_latency_seconds_bucket{le="1"} 2` + "\n",
		`scalia_latency_seconds_bucket{le="+Inf"} 3` + "\n",
		"scalia_latency_seconds_count 3\n",
		"scalia_uptime_seconds 12.5\n",
		`scalia_provider_ops_total{provider="we\"ird\\pro\nvider"} 1` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n--- got ---\n%s", want, out)
		}
	}
	// Families must be sorted by name.
	if strings.Index(out, "scalia_latency_seconds") > strings.Index(out, "scalia_requests_total") {
		t.Error("families not sorted by name")
	}
	// Sum line present and parseable ordering: bucket lines precede sum/count.
	if !strings.Contains(out, "scalia_latency_seconds_sum") {
		t.Error("missing histogram _sum line")
	}
}

func TestRegistryHistograms(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("scalia_op_seconds", "op latency", []float64{1, 2}, "provider", "op")
	v.With("a", "get").Observe(0.5)
	v.With("a", "get").Observe(0.7)
	v.With("b", "get").Observe(1.5)

	hs := r.Histograms("scalia_op_seconds")
	if len(hs) != 2 {
		t.Fatalf("got %d series, want 2", len(hs))
	}
	var total uint64
	merged := HistogramSnapshot{}
	for _, lh := range hs {
		if lh.Labels["op"] != "get" {
			t.Errorf("unexpected labels %v", lh.Labels)
		}
		total += lh.Snapshot.Count
		merged = merged.Merge(lh.Snapshot)
	}
	if total != 3 || merged.Count != 3 {
		t.Errorf("merged count = %d (sum %d), want 3", merged.Count, total)
	}
	if r.Histograms("nope") != nil {
		t.Error("unknown family should return nil")
	}
	if r.Histograms("scalia_op_seconds_bogus") != nil {
		t.Error("unknown family should return nil")
	}
}

func TestTraceNilSafety(t *testing.T) {
	var tr *Trace
	tr.AddSpan("plan", time.Millisecond) // must not panic
	tr.Count("fallbacks", 1)
	if tr.Counts() != nil {
		t.Error("nil trace Counts should be nil")
	}
	if tr.SpanSummary() != "" {
		t.Error("nil trace SpanSummary should be empty")
	}
	if tr.Elapsed() != 0 {
		t.Error("nil trace Elapsed should be zero")
	}
	if got := TraceFrom(context.Background()); got != nil {
		t.Error("TraceFrom on bare context should be nil")
	}
}

func TestTraceRoundTrip(t *testing.T) {
	tr := NewTrace(NewRequestID())
	if len(tr.ID) != 32 {
		t.Errorf("request ID %q, want 32 hex chars", tr.ID)
	}
	ctx := WithTrace(context.Background(), tr)
	got := TraceFrom(ctx)
	if got != tr {
		t.Fatal("trace did not round-trip through context")
	}
	got.AddSpan("fetch", 2*time.Millisecond)
	got.AddSpan("fetch", 3*time.Millisecond)
	got.AddSpan("decode", time.Millisecond)
	got.Count("stripes_fetched", 2)
	got.Count("stripes_fetched", 1)

	counts := tr.Counts()
	if counts["stripes_fetched"] != 3 {
		t.Errorf("counts = %v, want stripes_fetched=3", counts)
	}
	sum := tr.SpanSummary()
	if !strings.Contains(sum, "fetch=2x5ms") || !strings.Contains(sum, "decode=1x1ms") {
		t.Errorf("span summary = %q", sum)
	}
	// Sorted: decode before fetch.
	if strings.Index(sum, "decode") > strings.Index(sum, "fetch") {
		t.Errorf("span summary not sorted: %q", sum)
	}
}

func TestTraceConcurrent(t *testing.T) {
	tr := NewTrace("t")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				tr.AddSpan("fetch", time.Microsecond)
				tr.Count("n", 1)
			}
		}()
	}
	wg.Wait()
	if got := tr.Counts()["n"]; got != 4000 {
		t.Errorf("count = %d, want 4000", got)
	}
	if !strings.Contains(tr.SpanSummary(), "fetch=4000x") {
		t.Errorf("summary = %q", tr.SpanSummary())
	}
}

func TestRegistryKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("scalia_x", "x")
	defer func() {
		if recover() == nil {
			t.Error("expected panic re-registering counter as gauge")
		}
	}()
	r.Gauge("scalia_x", "x")
}
