package engine

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the asynchronous maintenance-jobs layer behind
// POST /v1/repair and /v1/optimize: a pass over millions of objects
// cannot hold an HTTP request open, so dispatch returns a job resource
// immediately (202 + Location) and the pass runs on a broker-owned
// goroutine. GET /v1/jobs/{id} serves live progress and, once the pass
// completes, the final RepairReport/OptimizeReport.

// JobKind names what a job runs.
type JobKind string

// Job kinds.
const (
	JobRepair   JobKind = "repair"
	JobOptimize JobKind = "optimize"
)

// JobState is a job's lifecycle state.
type JobState string

// Job states.
const (
	JobRunning JobState = "running"
	JobDone    JobState = "done"
	JobFailed  JobState = "failed"
)

// JobView is the wire representation of one maintenance job.
type JobView struct {
	ID    string   `json:"id"`
	Kind  JobKind  `json:"kind"`
	State JobState `json:"state"`
	// Policy is the repair policy ("wait" or "active"); empty for
	// optimize jobs.
	Policy     string     `json:"policy,omitempty"`
	StartedAt  time.Time  `json:"startedAt"`
	FinishedAt *time.Time `json:"finishedAt,omitempty"`
	// Processed counts objects the running pass has examined so far —
	// the live progress counter.
	Processed int64           `json:"processed"`
	Error     string          `json:"error,omitempty"`
	Repair    *RepairReport   `json:"repair,omitempty"`
	Optimize  *OptimizeReport `json:"optimize,omitempty"`
}

// JobList is the paginated job listing, shaped like the object listing
// (prefix/limit/after → truncated/next).
type JobList struct {
	Jobs      []JobView `json:"jobs"`
	Truncated bool      `json:"truncated"`
	Next      string    `json:"next,omitempty"`
}

type jobRecord struct {
	mu        sync.Mutex
	view      JobView
	processed atomic.Int64
}

func (r *jobRecord) snapshot() JobView {
	r.mu.Lock()
	v := r.view
	r.mu.Unlock()
	v.Processed = r.processed.Load()
	return v
}

type jobRegistry struct {
	mu   sync.Mutex
	seq  uint64
	jobs map[string]*jobRecord
}

func newJobRegistry() *jobRegistry {
	return &jobRegistry{jobs: make(map[string]*jobRecord)}
}

// add registers a new running job. IDs are zero-padded sequence numbers
// so lexicographic order — the pagination order — is creation order.
func (jr *jobRegistry) add(kind JobKind, policy string, now time.Time) *jobRecord {
	jr.mu.Lock()
	jr.seq++
	rec := &jobRecord{view: JobView{
		ID:        fmt.Sprintf("j%08d", jr.seq),
		Kind:      kind,
		State:     JobRunning,
		Policy:    policy,
		StartedAt: now,
	}}
	jr.jobs[rec.view.ID] = rec
	jr.mu.Unlock()
	return rec
}

func (jr *jobRegistry) get(id string) (*jobRecord, bool) {
	jr.mu.Lock()
	defer jr.mu.Unlock()
	rec, ok := jr.jobs[id]
	return rec, ok
}

// list returns jobs whose ID has the given prefix, sorted by ID,
// starting strictly after the cursor, at most limit entries.
func (jr *jobRegistry) list(prefix, after string, limit int) JobList {
	jr.mu.Lock()
	ids := make([]string, 0, len(jr.jobs))
	for id := range jr.jobs {
		if prefix != "" && !strings.HasPrefix(id, prefix) {
			continue
		}
		if after != "" && id <= after {
			continue
		}
		ids = append(ids, id)
	}
	jr.mu.Unlock()
	sort.Strings(ids)

	out := JobList{}
	for _, id := range ids {
		if limit > 0 && len(out.Jobs) == limit {
			out.Truncated = true
			out.Next = out.Jobs[len(out.Jobs)-1].ID
			break
		}
		if rec, ok := jr.get(id); ok {
			out.Jobs = append(out.Jobs, rec.snapshot())
		}
	}
	return out
}

// --- live progress plumbing ---

// progressKey threads the running job's progress counter through the
// pass context, so repairShard/optimizeShard increment it per object
// without the broker tracking "the current job".
type progressKey struct{}

func withProgress(ctx context.Context, rec *jobRecord) context.Context {
	return context.WithValue(ctx, progressKey{}, rec)
}

// noteProgress bumps the enclosing job's processed counter by n, if the
// pass runs under a job.
func noteProgress(ctx context.Context, n int64) {
	if rec, ok := ctx.Value(progressKey{}).(*jobRecord); ok {
		rec.processed.Add(n)
	}
}

// --- broker surface ---

// StartRepair dispatches an asynchronous repair pass and returns its
// job resource immediately. The pass runs under the broker's lifetime
// context: Close cancels it.
func (b *Broker) StartRepair(policy RepairPolicy) JobView {
	name := "active"
	if policy == RepairWait {
		name = "wait"
	}
	rec := b.jobs.add(JobRepair, name, b.now())
	go func() {
		rep, err := b.Repair(withProgress(b.maint.ctx, rec), policy)
		if err == nil {
			// Same post-pass metadata flush the synchronous (?wait=true)
			// handler performs.
			b.meta.Flush()
		}
		b.finishJob(rec, func(v *JobView) { v.Repair = &rep }, err)
	}()
	return rec.snapshot()
}

// StartOptimize dispatches an asynchronous optimization round and
// returns its job resource immediately.
func (b *Broker) StartOptimize() JobView {
	rec := b.jobs.add(JobOptimize, "", b.now())
	go func() {
		rep, err := b.Optimize(withProgress(b.maint.ctx, rec))
		if err == nil {
			b.FlushStats()
		}
		b.finishJob(rec, func(v *JobView) { v.Optimize = &rep }, err)
	}()
	return rec.snapshot()
}

func (b *Broker) finishJob(rec *jobRecord, attach func(*JobView), err error) {
	done := b.now()
	rec.mu.Lock()
	attach(&rec.view)
	rec.view.FinishedAt = &done
	if err != nil {
		rec.view.State = JobFailed
		rec.view.Error = err.Error()
	} else {
		rec.view.State = JobDone
	}
	rec.mu.Unlock()
}

// Job returns one job by ID.
func (b *Broker) Job(id string) (JobView, bool) {
	rec, ok := b.jobs.get(id)
	if !ok {
		return JobView{}, false
	}
	return rec.snapshot(), true
}

// Jobs lists jobs with the object-listing pagination shape.
func (b *Broker) Jobs(prefix, after string, limit int) JobList {
	return b.jobs.list(prefix, after, limit)
}
